package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

const (
	testSpecFP = "aaaa1111bbbb2222"
	testPlanFP = "cccc3333dddd4444"
)

// writeJournal creates a journal in a fresh temp dir with n contiguous
// shard records of a 10-trial plan and returns the directory.
func writeJournal(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	j, err := Create(dir, []byte(`{"kind":"campaign"}`), testSpecFP)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		payload, _ := json.Marshal(map[string]int{"lo": i * 2, "hi": i*2 + 2})
		err := j.Append(Record{
			PlanFP: testPlanFP, Lo: i * 2, Hi: i*2 + 2, Total: 10,
			ElapsedMS: int64(10 * (i + 1)), Payload: payload,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func readJournal(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRoundTrip(t *testing.T) {
	dir := writeJournal(t, 3)
	j, rp, err := Open(dir, testSpecFP)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if rp.Header.SpecFP != testSpecFP {
		t.Errorf("header spec fingerprint %q, want %q", rp.Header.SpecFP, testSpecFP)
	}
	if got := string(rp.Header.Spec); got != `{"kind":"campaign"}` {
		t.Errorf("header spec %q", got)
	}
	recs := rp.Plan(testPlanFP)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Lo != i*2 || rec.Hi != i*2+2 || rec.Total != 10 {
			t.Errorf("record %d range [%d, %d) of %d", i, rec.Lo, rec.Hi, rec.Total)
		}
		if rec.ElapsedMS != int64(10*(i+1)) {
			t.Errorf("record %d elapsed %d", i, rec.ElapsedMS)
		}
	}
	if rp.Dropped != 0 {
		t.Errorf("dropped %d records from an intact journal", rp.Dropped)
	}
	// Appends on the reopened journal continue past the replayed state.
	payload := []byte(`{"lo":6,"hi":10}`)
	if err := j.Append(Record{PlanFP: testPlanFP, Lo: 6, Hi: 10, Total: 10, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rp2, err := Parse(readJournal(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(rp2.Shards) != 4 {
		t.Fatalf("after append: %d records, want 4", len(rp2.Shards))
	}
}

func TestNamedErrors(t *testing.T) {
	t.Run("create over existing", func(t *testing.T) {
		dir := writeJournal(t, 1)
		if _, err := Create(dir, []byte(`{}`), testSpecFP); !errors.Is(err, ErrExists) {
			t.Fatalf("Create over existing journal: %v, want ErrExists", err)
		}
	})
	t.Run("open missing", func(t *testing.T) {
		if _, _, err := Open(t.TempDir(), testSpecFP); !errors.Is(err, ErrNoJournal) {
			t.Fatalf("Open on empty dir: %v, want ErrNoJournal", err)
		}
	})
	t.Run("spec mismatch", func(t *testing.T) {
		dir := writeJournal(t, 1)
		if _, _, err := Open(dir, "ffff0000eeee9999"); !errors.Is(err, ErrSpecMismatch) {
			t.Fatalf("Open with wrong spec fingerprint: %v, want ErrSpecMismatch", err)
		}
	})
	t.Run("empty file", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, FileName), nil, 0o666); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, testSpecFP); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open on empty file: %v, want ErrCorrupt", err)
		}
	})
	t.Run("garbage header", func(t *testing.T) {
		if _, err := Parse([]byte("not json\n")); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Parse garbage: %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad record before tail", func(t *testing.T) {
		data := readJournal(t, writeJournal(t, 3))
		lines := bytes.SplitAfter(data, []byte("\n"))
		lines[1] = []byte("{\"v\":1,\"kind\":\"shard\"}\n") // shape-invalid, not last
		if _, err := Parse(bytes.Join(lines, nil)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bad interior record: %v, want ErrCorrupt", err)
		}
	})
	t.Run("duplicate record", func(t *testing.T) {
		data := readJournal(t, writeJournal(t, 2))
		lines := bytes.SplitAfter(data, []byte("\n"))
		// A byte-exact duplicate has a valid checksum: semantic corruption
		// even at the tail, never silently merged twice.
		dup := append(data, lines[1]...)
		if _, err := Parse(dup); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("duplicated record: %v, want ErrCorrupt", err)
		}
	})
}

// TestTruncationProperty cuts the journal at every byte offset and
// asserts each cut is either a valid resume point (the whole records
// before the cut, nothing more) or refused with ErrCorrupt — never a
// panic, never records past the cut.
func TestTruncationProperty(t *testing.T) {
	data := readJournal(t, writeJournal(t, 4))
	var ends []int // byte offsets where each record's line ends
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		ends = append(ends, off+nl+1)
		off += nl + 1
	}
	wholeBefore := func(cut int) int {
		n := 0
		for _, e := range ends {
			if e <= cut {
				n++
			}
		}
		return n
	}
	for cut := 0; cut <= len(data); cut++ {
		rp, err := Parse(data[:cut])
		whole := wholeBefore(cut)
		if whole == 0 {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut %d (no complete header): err %v, want ErrCorrupt", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d after %d whole records: %v", cut, whole, err)
		}
		if len(rp.Shards) != whole-1 {
			t.Fatalf("cut %d: replayed %d shard records, want %d", cut, len(rp.Shards), whole-1)
		}
		if rp.ValidLen != ends[whole-1] {
			t.Fatalf("cut %d: ValidLen %d, want %d", cut, rp.ValidLen, ends[whole-1])
		}
		if torn := cut > ends[whole-1]; torn != (rp.Dropped == 1) {
			t.Fatalf("cut %d: torn %v but Dropped %d", cut, torn, rp.Dropped)
		}
	}
}

// TestByteFlipSweep flips every byte of a journal in turn; Parse must
// never panic and must either refuse with a named error or return a
// replay whose records all carry valid checksums and non-overlapping
// ranges (the Parse invariants — a flip can drop the tail, never forge
// coverage).
func TestByteFlipSweep(t *testing.T) {
	data := readJournal(t, writeJournal(t, 3))
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x20
		rp, err := Parse(mut)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at %d: unnamed error %v", i, err)
			}
			continue
		}
		checkReplayInvariants(t, rp, mut)
	}
}

// checkReplayInvariants asserts the guarantees every successful Parse
// must uphold, whatever the input bytes were.
func checkReplayInvariants(t *testing.T, rp *Replay, data []byte) {
	t.Helper()
	if rp.Header.Kind != "header" || rp.Header.SpecFP == "" {
		t.Fatalf("replay without a valid header: %+v", rp.Header)
	}
	if rp.ValidLen < 0 || rp.ValidLen > len(data) {
		t.Fatalf("ValidLen %d outside input of %d bytes", rp.ValidLen, len(data))
	}
	type spanT struct{ lo, hi int }
	seen := map[string][]spanT{}
	for _, rec := range rp.Shards {
		if err := rec.checkShard(); err != nil {
			t.Fatalf("replayed record fails validation: %v", err)
		}
		for _, s := range seen[rec.PlanFP] {
			if rec.Lo < s.hi && s.lo < rec.Hi {
				t.Fatalf("replayed overlapping ranges [%d, %d) and [%d, %d)", s.lo, s.hi, rec.Lo, rec.Hi)
			}
		}
		seen[rec.PlanFP] = append(seen[rec.PlanFP], spanT{rec.Lo, rec.Hi})
	}
	// Re-parsing the valid prefix must reproduce the replay exactly.
	rp2, err := Parse(data[:rp.ValidLen])
	if err != nil {
		t.Fatalf("re-parse of valid prefix failed: %v", err)
	}
	if len(rp2.Shards) != len(rp.Shards) || rp2.ValidLen != rp.ValidLen {
		t.Fatalf("re-parse of valid prefix: %d records / %d bytes, want %d / %d",
			len(rp2.Shards), rp2.ValidLen, len(rp.Shards), rp.ValidLen)
	}
}

// TestOpenTruncatesTornTail checks a crash's torn tail is physically
// removed on resume, so new appends extend a valid prefix.
func TestOpenTruncatesTornTail(t *testing.T) {
	dir := writeJournal(t, 2)
	path := filepath.Join(dir, FileName)
	data := readJournal(t, dir)
	if err := os.WriteFile(path, data[:len(data)-7], 0o666); err != nil {
		t.Fatal(err)
	}
	j, rp, err := Open(dir, testSpecFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Shards) != 1 || rp.Dropped != 1 {
		t.Fatalf("replayed %d records (dropped %d), want 1 (dropped 1)", len(rp.Shards), rp.Dropped)
	}
	payload := []byte(`{"lo":2,"hi":4}`)
	if err := j.Append(Record{PlanFP: testPlanFP, Lo: 2, Hi: 4, Total: 10, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rp2, err := Parse(readJournal(t, dir))
	if err != nil {
		t.Fatalf("journal after torn-tail resume is not valid: %v", err)
	}
	if len(rp2.Shards) != 2 {
		t.Fatalf("journal holds %d records after resume append, want 2", len(rp2.Shards))
	}
}

func TestAppendRejectsOverlap(t *testing.T) {
	dir := writeJournal(t, 1) // covers [0, 2)
	j, _, err := Open(dir, testSpecFP)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	err = j.Append(Record{PlanFP: testPlanFP, Lo: 1, Hi: 3, Total: 10, Payload: []byte(`{}`)})
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlapping append: %v, want overlap rejection", err)
	}
	// Disagreeing totals for the same plan are corruption at the source.
	err = j.Append(Record{PlanFP: testPlanFP, Lo: 4, Hi: 6, Total: 11, Payload: []byte(`{}`)})
	if err == nil || !strings.Contains(err.Error(), "trial count") {
		t.Fatalf("total-mismatch append: %v, want trial-count rejection", err)
	}
	// A different plan's ranges are independent.
	if err := j.Append(Record{PlanFP: "eeee5555", Lo: 0, Hi: 2, Total: 4, Payload: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
}

// TestWriterShutdownLeaksNoGoroutine closes journals and asserts the
// writer goroutines exit.
func TestWriterShutdownLeaksNoGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		dir := t.TempDir()
		j, err := Create(dir, []byte(`{}`), testSpecFP)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{PlanFP: testPlanFP, Lo: 0, Hi: 1, Total: 1, Payload: []byte(`{}`)}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j.Close() // idempotent
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines grew from %d to %d after journal shutdown", before, n)
	}
}
