package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds Parse arbitrary bytes — including mutated,
// truncated, reordered, and duplicated journal lines — and asserts it
// never panics and, when it accepts the input, upholds the replay
// invariants: a valid header, checksummed records, no overlapping
// coverage, and a ValidLen whose prefix re-parses to the same replay.
// Anything else must be refused with the named ErrCorrupt.
func FuzzJournalReplay(f *testing.F) {
	valid := validJournalBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not json\n"))
	f.Add(valid[:len(valid)-9]) // torn tail
	lines := bytes.SplitAfter(valid, []byte("\n"))
	if len(lines) > 2 {
		f.Add(bytes.Join([][]byte{lines[0], lines[2], lines[1]}, nil)) // reordered
		f.Add(append(append([]byte(nil), valid...), lines[1]...))      // duplicated
	}
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		rp, err := Parse(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Parse returned an unnamed error: %v", err)
			}
			return
		}
		checkReplayInvariants(t, rp, data)
	})
}

func validJournalBytes(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	j, err := Create(dir, []byte(`{"kind":"campaign"}`), testSpecFP)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		payload, _ := json.Marshal(map[string]int{"lo": i * 2, "hi": i*2 + 2})
		if err := j.Append(Record{PlanFP: testPlanFP, Lo: i * 2, Hi: i*2 + 2, Total: 6, Payload: payload}); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		f.Fatal(err)
	}
	return data
}
