package journal

// Degraded-mode drills: failpoint-injected append/fsync failures must
// downgrade the journal to the named lossy state — the campaign's
// appends keep succeeding (dropped, not fatal), the degradation is
// named and durable, and a later resume is refused by name.

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpmr/internal/failpt"
)

func armFP(t *testing.T, sched string) {
	t.Helper()
	if err := failpt.Arm(sched); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpt.Disarm)
}

func appendN(t *testing.T, j *Journal, lo, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		payload, _ := json.Marshal(map[string]int{"lo": lo + i*2, "hi": lo + i*2 + 2})
		if err := j.Append(Record{
			PlanFP: testPlanFP, Lo: lo + i*2, Hi: lo + i*2 + 2, Total: 10, Payload: payload,
		}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestFsyncENOSPCDegrades(t *testing.T) {
	armFP(t, "journal/fsync=err(ENOSPC)@2")
	dir := t.TempDir()
	j, err := Create(dir, []byte(`{"kind":"campaign"}`), testSpecFP)
	if err != nil {
		t.Fatal(err)
	}
	// Record 1 lands; record 2's fsync blows up with ENOSPC; record 3
	// is silently dropped. None of the three appends may fail — the
	// campaign completes, only resumability is lost.
	appendN(t, j, 0, 3)

	d := j.Degraded()
	if !errors.Is(d, ErrDegraded) {
		t.Fatalf("Degraded() = %v, want ErrDegraded", d)
	}
	if !errors.Is(d, ErrNoSpace) {
		t.Errorf("Degraded() = %v does not name ENOSPC distinctly (ErrNoSpace)", d)
	}

	// Close propagates the lossy state instead of pretending all is well.
	if cerr := j.Close(); !errors.Is(cerr, ErrDegraded) {
		t.Errorf("Close() = %v, want ErrDegraded propagated", cerr)
	}

	// The marker is durable and a resume is refused by name.
	if _, err := os.Stat(filepath.Join(dir, DegradedName)); err != nil {
		t.Fatalf("no degraded marker: %v", err)
	}
	if _, _, err := Open(dir, testSpecFP); !errors.Is(err, ErrDegraded) {
		t.Errorf("Open of a degraded journal = %v, want ErrDegraded", err)
	}
}

func TestGenericIOFailureIsNotENOSPC(t *testing.T) {
	armFP(t, "journal/append=err(EIO)@1")
	dir := t.TempDir()
	j, err := Create(dir, []byte(`{}`), testSpecFP)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 1)
	d := j.Degraded()
	if !errors.Is(d, ErrDegraded) {
		t.Fatalf("Degraded() = %v, want ErrDegraded", d)
	}
	if errors.Is(d, ErrNoSpace) {
		t.Errorf("generic I/O failure %v classified as ErrNoSpace", d)
	}
	_ = j.Close()
}

func TestTornAppendDegradesAndLeavesValidPrefix(t *testing.T) {
	armFP(t, "journal/append=torn(5)@2")
	dir := t.TempDir()
	j, err := Create(dir, []byte(`{}`), testSpecFP)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 2)
	if j.Degraded() == nil {
		t.Fatal("torn append did not degrade the journal")
	}
	_ = j.Close()

	// The file itself is still a valid journal plus a droppable torn
	// tail — exactly crash residue — even though resume refuses on the
	// marker before ever parsing it.
	rp, err := Parse(readJournal(t, dir))
	if err != nil {
		t.Fatalf("torn-degraded journal does not parse: %v", err)
	}
	if len(rp.Shards) != 1 || rp.Dropped != 1 {
		t.Errorf("parsed %d shards, %d dropped; want 1 shard and 1 dropped torn tail", len(rp.Shards), rp.Dropped)
	}
}

func TestDegradedAppendsDropWithoutTouchingDisk(t *testing.T) {
	armFP(t, "journal/fsync=err(ENOSPC)@1")
	dir := t.TempDir()
	j, err := Create(dir, []byte(`{}`), testSpecFP)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 5)
	_ = j.Close()
	// Only the degrading record's bytes (its write preceded the failed
	// fsync) may follow the header; the four later appends were dropped.
	lines := strings.Count(string(readJournal(t, dir)), "\n")
	if lines > 2 {
		t.Errorf("degraded journal holds %d records; appends after degradation were not dropped", lines-1)
	}
	if got := failpt.Hits("journal/fsync"); got != 1 {
		t.Errorf("journal/fsync evaluated %d times after degradation, want 1 (degraded appends skip I/O)", got)
	}
}

func TestWriteReportRenameFailpoint(t *testing.T) {
	armFP(t, "journal/rename=err(EIO)@1")
	dir := t.TempDir()
	err := WriteReport(dir, func(w io.Writer) error {
		_, werr := w.Write([]byte("partial report\n"))
		return werr
	})
	if err == nil || !strings.Contains(err.Error(), "progressive report") {
		t.Fatalf("WriteReport under an injected rename failure = %v, want a named error", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, ReportName)); !os.IsNotExist(serr) {
		t.Error("a failed rename still left a report behind")
	}
	// No temp litter either: the atomic-replace contract holds under the fault.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Errorf("failed WriteReport left %d files behind", len(entries))
	}
}
