// Package journal persists completed campaign shards to a crash-safe
// append-only JSON-lines file, so an interrupted campaign can be resumed
// by re-running only the trial ranges the journal does not cover.
//
// The durable state per shard is deliberately tiny and self-validating —
// (plan fingerprint, trial range, wall-clock, payload checksum) plus the
// payload itself — in the metadata-light coordination style the harness
// already uses: the plan fingerprint and exact-tiling merge remain the
// end-to-end safety net, the journal only decides *what still needs to
// run*. Records are appended with one write+fsync each, so after a crash
// the file is a valid journal followed by at most one torn record; Parse
// drops a torn tail (it is a valid resume point) and refuses anything
// worse with a named error. A record whose checksum validates can only
// have been written whole, so semantic violations — overlapping ranges,
// duplicated shards, a plan whose trial count shifts mid-file — are
// corruption (or a foreign file), never crash residue, and are rejected
// rather than repaired.
package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"dpmr/internal/failpt"
)

// FileName is the journal file inside the -journal directory.
const FileName = "campaign.jnl"

// ReportName is the progressive report file written next to the journal:
// the current best rendering of the campaign, re-emitted as shards land.
const ReportName = "report.txt"

// DegradedName is the marker file recording that the journal entered
// the degraded lossy state (an append or fsync failed mid-campaign):
// the campaign itself completed, but the journal no longer covers it,
// so a resume is refused by name instead of silently re-running — or
// worse, silently trusting — a lossy record set.
const DegradedName = "degraded"

// Failpoint sites on the journal's durability path (internal/failpt):
// deterministic fault drills inject ENOSPC, generic I/O failure, and
// torn writes exactly where a real disk would.
var (
	siteAppend = failpt.Register("journal/append", failpt.KindErr, failpt.KindTorn)
	siteFsync  = failpt.Register("journal/fsync", failpt.KindErr)
	siteRename = failpt.Register("journal/rename", failpt.KindErr)
)

// Version is the journal record format version this package writes.
const Version = 1

// Named error classes. Callers match with errors.Is; the wrapped
// messages carry the offending record or byte offset.
var (
	// ErrNoJournal: Open on a directory holding no journal file.
	ErrNoJournal = errors.New("journal: no journal found")
	// ErrExists: Create on a directory that already holds a journal.
	ErrExists = errors.New("journal: journal already exists")
	// ErrSpecMismatch: the journal was written for a different Spec
	// fingerprint than the one being resumed.
	ErrSpecMismatch = errors.New("journal: spec fingerprint mismatch")
	// ErrCorrupt: the journal body is damaged beyond the droppable torn
	// tail — a bad record followed by more records, a checksum or shape
	// violation, or semantically impossible coverage (overlap, duplicate,
	// shifting trial totals). Resume refuses rather than guessing.
	ErrCorrupt = errors.New("journal: corrupt")
	// ErrNoSpace: an append or sync failed with ENOSPC. Named apart
	// from generic I/O failure because the operator's remedy differs —
	// free disk space versus replace a failing device.
	ErrNoSpace = errors.New("journal: no space left on device")
	// ErrDegraded: the journal is (or was found) in the degraded lossy
	// state — a mid-campaign append or fsync failure downgraded it from
	// crash-safe to advisory. The campaign that degraded it still
	// completed (results live in memory and in the final report); only
	// resumability was lost, so Open refuses a degraded journal by name.
	ErrDegraded = errors.New("journal: degraded (lossy)")
)

// classify names ENOSPC distinctly from generic I/O failure, wrapping
// real and failpoint-injected disk-full errors alike under ErrNoSpace.
func classify(err error) error {
	if errors.Is(err, syscall.ENOSPC) {
		return fmt.Errorf("%w: %v", ErrNoSpace, err)
	}
	return err
}

// Record is one JSON line of the journal. The first record of a file is
// the header (Kind "header": canonical Spec JSON + Spec fingerprint);
// every following record is a completed shard (Kind "shard": plan
// fingerprint, trial range, elapsed wall-clock, and the serialized
// partial result guarded by a SHA-256 checksum).
type Record struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`

	// Header fields.
	Spec   json.RawMessage `json:"spec,omitempty"`
	SpecFP string          `json:"specFP,omitempty"`

	// Shard fields. [Lo, Hi) is the covered trial range of the
	// Total-trial plan PlanFP; Payload is the shard's serialized partial
	// result and Sum its hex SHA-256.
	PlanFP    string          `json:"planFP,omitempty"`
	Lo        int             `json:"lo,omitempty"`
	Hi        int             `json:"hi,omitempty"`
	Total     int             `json:"total,omitempty"`
	ElapsedMS int64           `json:"elapsedMS,omitempty"`
	Payload   json.RawMessage `json:"payload,omitempty"`
	Sum       string          `json:"sum,omitempty"`
}

// checkShard validates a shard record's self-contained shape and
// checksum (not its relation to other records).
func (rec *Record) checkShard() error {
	if rec.Kind != "shard" {
		return fmt.Errorf("record kind %q, want \"shard\"", rec.Kind)
	}
	if rec.PlanFP == "" {
		return errors.New("shard record missing plan fingerprint")
	}
	if rec.Lo < 0 || rec.Hi <= rec.Lo || rec.Total < rec.Hi {
		return fmt.Errorf("shard record covers invalid trial range [%d, %d) of %d", rec.Lo, rec.Hi, rec.Total)
	}
	if len(rec.Payload) == 0 {
		return errors.New("shard record missing payload")
	}
	if rec.Sum != payloadSum(rec.Payload) {
		return errors.New("shard record payload checksum mismatch")
	}
	return nil
}

func payloadSum(payload []byte) string {
	h := sha256.Sum256(payload)
	return hex.EncodeToString(h[:])
}

// Replay is the validated content of a journal file: the header plus
// every intact shard record, with the byte length of the valid prefix
// (a torn tail past ValidLen was dropped and is safe to truncate away).
type Replay struct {
	Header Record
	Shards []Record
	// ValidLen is the byte offset just past the last valid record.
	ValidLen int
	// Dropped counts torn tail records discarded by Parse (0 or 1).
	Dropped int

	// covered maps plan fingerprint → recorded ranges, for overlap
	// rejection on both replayed and live-appended records.
	covered map[string][]span
	totals  map[string]int
}

type span struct{ lo, hi int }

// Plan returns the replayed shard records of one plan fingerprint, in
// ascending range order.
func (rp *Replay) Plan(planFP string) []Record {
	var recs []Record
	for _, rec := range rp.Shards {
		if rec.PlanFP == planFP {
			recs = append(recs, rec)
		}
	}
	sort.SliceStable(recs, func(a, b int) bool { return recs[a].Lo < recs[b].Lo })
	return recs
}

// admit records a shard's range in the coverage index, rejecting
// overlaps with already-recorded ranges of the same plan and trial
// totals that disagree with earlier records of the plan. Used by Parse
// (replayed records) and Journal.Append (live records) alike, so a
// journal can never come to hold double-counted trials.
func (rp *Replay) admit(rec Record) error {
	if t, ok := rp.totals[rec.PlanFP]; ok && t != rec.Total {
		return fmt.Errorf("plan %.12s trial count changed from %d to %d", rec.PlanFP, t, rec.Total)
	}
	for _, s := range rp.covered[rec.PlanFP] {
		if rec.Lo < s.hi && s.lo < rec.Hi {
			return fmt.Errorf("plan %.12s trials [%d, %d) overlap already-journaled [%d, %d)", rec.PlanFP, rec.Lo, rec.Hi, s.lo, s.hi)
		}
	}
	if rp.covered == nil {
		rp.covered = make(map[string][]span)
		rp.totals = make(map[string]int)
	}
	rp.covered[rec.PlanFP] = append(rp.covered[rec.PlanFP], span{rec.Lo, rec.Hi})
	rp.totals[rec.PlanFP] = rec.Total
	return nil
}

// Parse validates raw journal bytes into a Replay. It never panics on
// arbitrary input. A torn tail — a final record fragment without its
// newline, or a final line that fails to parse or checksum — is dropped
// (that is exactly the residue of a crash mid-append, and everything
// before it is a valid resume point). Any invalid record *before* the
// tail, and any semantic violation even in a well-formed record
// (overlapping ranges, inconsistent totals), is ErrCorrupt: a crash
// cannot forge a record whose checksum validates.
func Parse(data []byte) (*Replay, error) {
	rp := &Replay{}
	offset := 0
	idx := 0
	for offset < len(data) {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			// Final fragment without its newline: torn mid-write.
			rp.Dropped++
			break
		}
		line := data[offset : offset+nl]
		lineEnd := offset + nl + 1
		final := lineEnd == len(data)
		var rec Record
		reject := func(cause string) (*Replay, error) {
			if final && idx > 0 {
				// A damaged *last* record is indistinguishable from a torn
				// append; drop it and resume from the prefix. (The header
				// itself gets no such grace: without it nothing resumes.)
				rp.Dropped++
				return rp, nil
			}
			return nil, fmt.Errorf("%w: record %d (byte %d): %s", ErrCorrupt, idx, offset, cause)
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return reject(fmt.Sprintf("bad JSON: %v", err))
		}
		if rec.V != Version {
			return reject(fmt.Sprintf("record version %d, want %d", rec.V, Version))
		}
		if idx == 0 {
			if rec.Kind != "header" || rec.SpecFP == "" || len(rec.Spec) == 0 {
				return nil, fmt.Errorf("%w: first record is not a valid journal header", ErrCorrupt)
			}
			rp.Header = rec
		} else {
			if err := rec.checkShard(); err != nil {
				return reject(err.Error())
			}
			// Past the checksum, violations are semantic — reject even at
			// the tail: torn writes produce garbage, not valid checksums.
			if err := rp.admit(rec); err != nil {
				return nil, fmt.Errorf("%w: record %d: %s", ErrCorrupt, idx, err)
			}
			rp.Shards = append(rp.Shards, rec)
		}
		rp.ValidLen = lineEnd
		offset = lineEnd
		idx++
	}
	if idx == 0 {
		return nil, fmt.Errorf("%w: journal holds no complete record", ErrCorrupt)
	}
	return rp, nil
}

// Journal is an open journal accepting appends. One background writer
// goroutine serializes write+fsync per record; Append blocks until its
// record is durable. Close shuts the writer down and closes the file.
//
// A journal that hits an I/O failure mid-campaign (ENOSPC, a failing
// device, an injected fault) does not abort the campaign: it degrades.
// The failed append — and every append after it — is dropped, Append
// returns nil, and the run completes on in-memory results exactly as
// an unjournaled run would; what is lost is resumability, which is why
// the degradation is recorded durably (the DegradedName marker) and
// surfaced by name from Degraded, Close, and any later Open.
type Journal struct {
	path string
	f    *os.File

	state *Replay // live coverage index (overlap rejection)

	reqs chan appendReq
	wg   sync.WaitGroup

	mu       sync.Mutex
	degraded error

	closeOnce sync.Once
	closeErr  error
}

type appendReq struct {
	line []byte
	done chan error
}

// Create initialises a fresh journal in dir for the campaign described
// by the canonical Spec JSON and its fingerprint, creating dir if
// needed. A directory that already holds a journal is refused with
// ErrExists (resume it, or pick a fresh directory).
func Create(dir string, specCanonical []byte, specFP string) (*Journal, error) {
	if specFP == "" || len(specCanonical) == 0 {
		return nil, errors.New("journal: Create needs the canonical spec and its fingerprint")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("%w at %s: pass -resume to continue it, or choose a fresh -journal directory", ErrExists, path)
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	header := Record{V: Version, Kind: "header", Spec: json.RawMessage(specCanonical), SpecFP: specFP}
	line, err := json.Marshal(header)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: encoding header: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: writing header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: syncing header: %w", err)
	}
	syncDir(dir)
	j := &Journal{path: path, f: f, state: &Replay{Header: header}}
	j.startWriter()
	return j, nil
}

// Open resumes the journal in dir, validating it against the Spec
// fingerprint of the campaign being resumed. The returned Replay holds
// every intact shard record; a torn tail is truncated away before the
// file is reopened for append, so later records land after valid bytes.
func Open(dir, specFP string) (*Journal, *Replay, error) {
	path := filepath.Join(dir, FileName)
	if cause, err := os.ReadFile(filepath.Join(dir, DegradedName)); err == nil {
		return nil, nil, fmt.Errorf("%w: journal at %s lost records mid-campaign (%s) — it cannot be resumed; remove the directory and start fresh",
			ErrDegraded, path, strings.TrimSpace(string(cause)))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("%w at %s: nothing to resume", ErrNoJournal, path)
		}
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	rp, err := Parse(data)
	if err != nil {
		return nil, nil, err
	}
	if specFP != "" && rp.Header.SpecFP != specFP {
		return nil, nil, fmt.Errorf("%w: journal at %s was written for spec %.12s, resuming spec %.12s — the spec must be identical to resume",
			ErrSpecMismatch, path, rp.Header.SpecFP, specFP)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if rp.ValidLen < len(data) {
		// Drop the torn tail so appends extend a valid prefix.
		if err := f.Truncate(int64(rp.ValidLen)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(rp.ValidLen), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{path: path, f: f, state: rp}
	j.startWriter()
	return j, rp, nil
}

// Path returns the journal file's path.
func (j *Journal) Path() string { return j.path }

// Dir returns the directory holding the journal.
func (j *Journal) Dir() string { return filepath.Dir(j.path) }

// Append journals one completed shard and blocks until the record is
// written and fsynced. V, Kind, and Sum are filled in; the caller
// provides plan fingerprint, range, elapsed time, and payload. Ranges
// that overlap an already-journaled record of the same plan are refused
// — a journal never double-counts a trial.
//
// An I/O failure does not propagate: it flips the journal into the
// degraded lossy state (see Degraded) and Append returns nil, so the
// campaign completes instead of aborting mid-run. Semantic refusals
// (invalid record, overlapping range) still error — those are caller
// bugs, not disk weather.
func (j *Journal) Append(rec Record) error {
	if j.Degraded() != nil {
		return nil // lossy state: the record is dropped, the campaign goes on
	}
	rec.V = Version
	rec.Kind = "shard"
	// Compact the payload first: json.Marshal embeds a RawMessage in
	// compact form, so the checksum must cover the bytes that actually
	// land in the file, not whatever whitespace the caller's encoder
	// added.
	if len(rec.Payload) > 0 {
		var compacted bytes.Buffer
		if err := json.Compact(&compacted, rec.Payload); err != nil {
			return fmt.Errorf("journal: payload is not valid JSON: %w", err)
		}
		rec.Payload = compacted.Bytes()
	}
	rec.Sum = payloadSum(rec.Payload)
	if err := rec.checkShard(); err != nil {
		return fmt.Errorf("journal: %s", err)
	}
	if err := j.state.admit(rec); err != nil {
		return fmt.Errorf("journal: %s", err)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding record: %w", err)
	}
	req := appendReq{line: append(line, '\n'), done: make(chan error, 1)}
	j.reqs <- req
	return <-req.done
}

// Degraded reports the journal's lossy state: nil while every append
// has been made durable, otherwise the named cause (wrapping
// ErrDegraded, and ErrNoSpace when the cause was a full disk). Drivers
// check it after a journaled run to tell the operator the campaign
// finished but cannot be resumed.
func (j *Journal) Degraded() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// degrade flips the journal into the lossy state (first cause wins)
// and records the cause in a durable marker file so a resume attempt
// in a later process is refused by name. On a genuinely full disk the
// marker write may itself fail; the journal then merely looks
// interrupted and a resume re-runs the missing spans — safe either
// way, the marker only sharpens the refusal.
func (j *Journal) degrade(cause error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded != nil {
		return
	}
	j.degraded = fmt.Errorf("%w: %w", ErrDegraded, cause)
	_ = os.WriteFile(filepath.Join(filepath.Dir(j.path), DegradedName), []byte(cause.Error()+"\n"), 0o666)
}

// Close shuts the writer goroutine down, makes a final fsync (its
// error propagates — a durability failure at close is a failure, not
// a detail to swallow), and closes the file. A degraded journal's
// cause is part of the return, so even a caller that only checks
// Close learns the journal went lossy. Safe to call more than once.
func (j *Journal) Close() error {
	j.closeOnce.Do(func() {
		close(j.reqs)
		j.wg.Wait()
		var errs []error
		if j.Degraded() == nil {
			if err := j.f.Sync(); err != nil {
				err = classify(fmt.Errorf("journal: final sync: %w", err))
				j.degrade(err)
				errs = append(errs, err)
			}
		}
		if err := j.f.Close(); err != nil {
			errs = append(errs, fmt.Errorf("journal: close: %w", err))
		}
		if d := j.Degraded(); d != nil {
			errs = append(errs, d)
		}
		j.closeErr = errors.Join(errs...)
	})
	return j.closeErr
}

// startWriter launches the single append goroutine: one write + fsync
// per record keeps the crash residue to at most one torn tail record.
// An I/O failure (real or failpoint-injected) degrades the journal
// instead of failing the append — see the type comment.
func (j *Journal) startWriter() {
	j.reqs = make(chan appendReq)
	j.wg.Add(1)
	go func() {
		defer j.wg.Done()
		for req := range j.reqs {
			if err := j.writeDurable(req.line); err != nil {
				j.degrade(err)
			}
			req.done <- nil
		}
	}()
}

// writeDurable lands one record line: write, then fsync, with the
// journal/append and journal/fsync failpoint sites standing in for the
// disk's real failure modes (a torn append writes the scheduled prefix
// before failing, exactly the residue of a crash or full disk).
func (j *Journal) writeDurable(line []byte) error {
	if act := failpt.Eval(siteAppend); act != nil {
		if act.Kind == failpt.KindTorn {
			n := act.N
			if n > len(line) {
				n = len(line)
			}
			_, _ = j.f.Write(line[:n])
			return classify(fmt.Errorf("journal: torn append after %d of %d bytes: %w", n, len(line), act.Err()))
		}
		return classify(fmt.Errorf("journal: appending record: %w", act.Err()))
	}
	if _, err := j.f.Write(line); err != nil {
		return classify(fmt.Errorf("journal: appending record: %w", err))
	}
	if err := failpt.Err(siteFsync); err != nil {
		return classify(fmt.Errorf("journal: syncing record: %w", err))
	}
	if err := j.f.Sync(); err != nil {
		return classify(fmt.Errorf("journal: syncing record: %w", err))
	}
	return nil
}

// syncDir best-effort fsyncs a directory so a freshly created journal
// file survives a crash of the directory entry itself.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// WriteReport atomically replaces the progressive report next to the
// journal: render writes the report into a temp file, which then renames
// over ReportName — a reader (or a crash) never observes a half-written
// report.
func WriteReport(dir string, render func(w io.Writer) error) error {
	tmp, err := os.CreateTemp(dir, ReportName+".tmp*")
	if err != nil {
		return fmt.Errorf("journal: progressive report: %w", err)
	}
	if err := render(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: rendering progressive report: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: progressive report: %w", err)
	}
	if err := failpt.Err(siteRename); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: progressive report: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ReportName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: progressive report: %w", err)
	}
	return nil
}
