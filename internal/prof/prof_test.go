package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestRegisterAndStartWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	heap := filepath.Join(dir, "mem.out")

	var f Flags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", heap}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to say.
	buf := make([]byte, 1<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	_ = buf
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, heap} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

func TestStartNoFlagsIsNoOp(t *testing.T) {
	var f Flags
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPathFails(t *testing.T) {
	f := Flags{CPUPath: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	if _, err := f.Start(); err == nil {
		t.Fatal("want error for uncreatable profile path")
	}
}
