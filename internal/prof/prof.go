// Package prof wires the standard runtime/pprof CPU and heap profilers
// into the CLIs behind shared -cpuprofile/-memprofile flags, so perf work
// on the interpreter and campaign engine can attach pprof evidence to any
// real run (dpmr-run, dpmr-exp) instead of synthetic benchmarks only.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds one command invocation's profiling flag values.
type Flags struct {
	CPUPath string
	MemPath string
}

// Register installs the -cpuprofile and -memprofile flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUPath, "cpuprofile", "", "write a pprof CPU profile to `file`")
	fs.StringVar(&f.MemPath, "memprofile", "", "write a pprof heap profile to `file` at exit")
}

// Start begins CPU profiling if requested and returns a stop function
// that finishes the CPU profile and writes the heap profile. The stop
// function must be called exactly once, after the profiled work; it is a
// no-op when no profiling flag was set.
func (f *Flags) Start() (stop func() error, err error) {
	var cpu *os.File
	if f.CPUPath != "" {
		cpu, err = os.Create(f.CPUPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if f.MemPath != "" {
			mf, err := os.Create(f.MemPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(mf); err != nil {
				mf.Close()
				return fmt.Errorf("prof: %w", err)
			}
			if err := mf.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
