// Package sched runs concurrent multi-VM workloads under a seeded,
// deterministic interleaving scheduler.
//
// A concurrent group is N interpreter VMs sharing one mem.Space: thread 0
// runs main(), threads 1..N-1 run worker(tid). Execution is cooperative —
// every VM yields at each load, store, atomic, and fence (Config.Yield in
// interp) — and strictly serialized: exactly one VM executes at any
// instant, with control handed over through unbuffered channels, so the
// group contains no Go-level data races even though the simulated threads
// race freely over shared simulated memory. At every yield the scheduler
// draws the next runnable thread from a PRNG seeded with the schedule
// seed, making the interleaving a pure function of (seed, program): the
// same trial replays bit-identically at any host parallelism, which is
// what extends the harness's byte-identity guarantees (shard/merge/
// journal/coordinator) to the concurrent kind.
//
// The first thread to exit abnormally (trap, DPMR detection, timeout)
// aborts the group: remaining threads are resumed once to unwind via a
// sentinel panic and the failing thread's exit classifies the trial.
// Because the walker is the oracle for concurrent execution (the Yield
// hook routes every VM through the tree-walking loop), compiled-engine
// divergence cannot leak into concurrent results.
package sched

import (
	"fmt"
	"math/rand"

	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/mem"
)

// WorkerFunc is the entry point worker threads run: worker(tid).
const WorkerFunc = "worker"

// Config configures one concurrent group run.
type Config struct {
	// Threads is the total VM count (>= 1): one main plus Threads-1
	// workers. A module without a worker function admits only Threads=1.
	Threads int
	// Seed seeds the interleaving PRNG. It is independent of the VM
	// PRNG seed (Config.VM.Seed): the same program can be explored under
	// many schedules and vice versa.
	Seed int64
	// TraceLimit caps each thread's recorded shared-tier accesses
	// (0 = mem.NewTraceRec's default). Overflow marks the trace
	// truncated rather than failing the run.
	TraceLimit int
	// TraceDisabled skips trace recording entirely (benchmarks).
	TraceDisabled bool
	// VM is the per-thread VM configuration. Mem sizes the one shared
	// space; Seed seeds thread 0, with worker seeds derived per thread;
	// SpacePool, SharedSpace, SharedGlobals, Yield, and ThreadID are
	// managed by the scheduler and must be unset. StepLimit bounds each
	// thread separately.
	VM interp.Config
}

// Result is the outcome of one concurrent group run.
type Result struct {
	// Combined classifies the whole group: the first abnormal thread
	// exit, or a normal exit carrying thread 0's code. Steps and Cycles
	// sum over threads (interleaving is serial, so the sum is the
	// group's clock); Output concatenates per-thread output in thread
	// order; Mem is the shared space's statistics.
	Combined *interp.Result
	// Threads holds each thread's own result; aborted threads (unwound
	// after another thread failed first) are nil.
	Threads []*interp.Result
	// FailedThread is the thread whose exit classified an abnormal
	// Combined (-1 when the group exited normally).
	FailedThread int
	// Trace is the shared-tier access trace (nil when disabled).
	Trace *mem.TraceRec
	// Switches counts scheduler handovers (context switches).
	Switches uint64
}

// abortUnwind is the sentinel panic that unwinds a parked thread after
// the group has aborted.
type abortUnwind struct{}

// thread is one scheduled VM's control block.
type thread struct {
	id     int
	resume chan struct{}
	parked chan struct{} // signaled at every yield and at exit
	done   bool
	res    *interp.Result
}

// yield hands control back to the scheduler; it returns when the
// scheduler next picks this thread, or panics the abort sentinel if the
// group failed in between.
func (t *thread) yield(aborted *bool) {
	t.parked <- struct{}{}
	<-t.resume
	if *aborted {
		panic(abortUnwind{})
	}
}

// derivedSeed spreads the base VM seed across worker threads (splitmix
// increment) so threads draw independent RandInt streams.
func derivedSeed(base int64, tid int) int64 {
	return base + int64(tid)*-0x61C8864680B583EB
}

// Run executes one concurrent group of m and returns its outcome. Setup
// failures (bad config, missing worker function) are reported as an
// ExitError Combined result, mirroring interp.Run.
func Run(m *ir.Module, cfg Config) *Result {
	fail := func(format string, args ...any) *Result {
		return &Result{
			Combined:     &interp.Result{Kind: interp.ExitError, Reason: fmt.Sprintf(format, args...)},
			FailedThread: -1,
		}
	}
	n := cfg.Threads
	if n < 1 {
		return fail("sched: Threads must be >= 1, got %d", n)
	}
	if cfg.VM.SharedSpace != nil || cfg.VM.SharedGlobals != nil || cfg.VM.SpacePool != nil || cfg.VM.Yield != nil {
		return fail("sched: Config.VM space and yield fields are scheduler-managed")
	}
	mainFn := m.Func("main")
	if mainFn == nil {
		return fail("sched: no main function")
	}
	workerFn := m.Func(WorkerFunc)
	if n > 1 {
		if workerFn == nil {
			return fail("sched: %d threads but module has no %s function", n, WorkerFunc)
		}
		if len(workerFn.Params) != 1 {
			return fail("sched: %s must take one (tid) parameter, has %d", WorkerFunc, len(workerFn.Params))
		}
	}

	space := mem.NewSpace(cfg.VM.Mem)
	if err := space.PartitionStack(n); err != nil {
		return fail("sched: %v", err)
	}
	var trace *mem.TraceRec
	if !cfg.TraceDisabled {
		trace = mem.NewTraceRec(n, cfg.TraceLimit)
		space.SetTrace(trace)
	}

	aborted := false
	threads := make([]*thread, n)
	vms := make([]*interp.VM, n)
	for tid := 0; tid < n; tid++ {
		t := &thread{id: tid, resume: make(chan struct{}), parked: make(chan struct{})}
		threads[tid] = t
		vcfg := cfg.VM
		vcfg.SharedSpace = space
		vcfg.ThreadID = tid
		vcfg.Yield = func() { t.yield(&aborted) }
		if tid > 0 {
			vcfg.Seed = derivedSeed(cfg.VM.Seed, tid)
			vcfg.SharedGlobals = vms[0].GlobalTable()
		}
		// Globals must land in thread 0's part of the setup, so build VMs
		// in thread order with window 0 current (allocas during argv
		// materialization land in thread 0's window; workloads take no
		// args, so in practice setup allocates globals only).
		vm, err := interp.NewVM(m, vcfg)
		if err != nil {
			return fail("sched: thread %d: %v", tid, err)
		}
		vms[tid] = vm
	}

	// One goroutine per thread, each parked until its first resume. The
	// unbuffered handover (parked/resume) means the scheduler and all
	// threads form a single logical thread of control.
	for tid := range threads {
		t := threads[tid]
		vm := vms[tid]
		go func() {
			<-t.resume
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortUnwind); !ok {
						panic(r)
					}
					t.res = nil // unwound after the group aborted
				}
				t.done = true
				t.parked <- struct{}{}
			}()
			if t.id == 0 {
				t.res = vm.Run()
			} else {
				t.res = vm.RunEntry(workerFn, []uint64{uint64(t.id)})
			}
		}()
	}

	// The interleaving loop: repeatedly pick a live thread, hand it the
	// space (stack window + trace labeling), run it to its next yield.
	rng := rand.New(rand.NewSource(cfg.Seed))
	live := make([]*thread, n)
	copy(live, threads)
	res := &Result{Threads: make([]*interp.Result, n), FailedThread: -1, Trace: trace}
	runOne := func(t *thread) {
		space.SwitchStack(t.id)
		if trace != nil {
			trace.SetThread(t.id)
		}
		t.resume <- struct{}{}
		<-t.parked
		res.Switches++
	}
	for len(live) > 0 {
		i := rng.Intn(len(live))
		t := live[i]
		runOne(t)
		if !t.done {
			continue
		}
		live = append(live[:i], live[i+1:]...)
		res.Threads[t.id] = t.res
		if t.res != nil && t.res.Kind != interp.ExitNormal && !aborted {
			// First abnormal exit: classify the group and unwind the rest.
			aborted = true
			res.FailedThread = t.id
			for len(live) > 0 {
				u := live[0]
				live = live[1:]
				runOne(u) // resumes into the abort sentinel
				res.Threads[u.id] = u.res
			}
		}
	}

	// Combine per-thread results into the group classification.
	comb := &interp.Result{Kind: interp.ExitNormal}
	if res.FailedThread >= 0 {
		f := res.Threads[res.FailedThread]
		comb.Kind = f.Kind
		comb.Reason = fmt.Sprintf("thread %d: %s", res.FailedThread, f.Reason)
	} else {
		// A normal group exit carries the first nonzero thread exit code
		// (in thread order), so a worker's error-signalling exit(2) is as
		// visible to natural-detection classification as main's.
		for _, r := range res.Threads {
			if r != nil && r.Code != 0 {
				comb.Code = r.Code
				break
			}
		}
	}
	for _, r := range res.Threads {
		if r == nil {
			continue
		}
		comb.Steps += r.Steps
		comb.Cycles += r.Cycles
		comb.Output = append(comb.Output, r.Output...)
		if r.FaultSeen && (!comb.FaultSeen || r.FaultCycle < comb.FaultCycle) {
			comb.FaultSeen = true
			comb.FaultCycle = r.FaultCycle
		}
	}
	comb.Mem = space.Stats()
	res.Combined = comb
	return res
}
