package sched

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"dpmr/internal/consist"
	"dpmr/internal/dpmr"
	"dpmr/internal/failpt"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/opt"
	"dpmr/internal/workloads"
)

const testStepLimit = 100_000_000

// runClean executes one group and fails the test on any abnormal exit.
func runClean(t *testing.T, m *ir.Module, threads int, seed int64) *Result {
	t.Helper()
	res := Run(m, Config{
		Threads: threads,
		Seed:    seed,
		VM:      interp.Config{StepLimit: testStepLimit, Seed: 7},
	})
	c := res.Combined
	if c.Kind != interp.ExitNormal || c.Code != 0 {
		t.Fatalf("%s threads=%d: %v code %d (%s)", m.Name, threads, c.Kind, c.Code, c.Reason)
	}
	return res
}

func TestConcurrentWorkloadsRunClean(t *testing.T) {
	for _, w := range workloads.Concurrent() {
		for _, threads := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/%d", w.Name, threads), func(t *testing.T) {
				m := w.Build(threads)
				m.Freeze()
				res := runClean(t, m, threads, 42)
				rep := consist.Check(res.Trace)
				if !rep.Clean() {
					t.Fatalf("consistency violations: %v", rep.Violations)
				}
				if rep.Truncated {
					t.Fatalf("trace truncated at default limit (%d events)", rep.Events)
				}
				if rep.Events == 0 {
					t.Fatal("no shared-tier accesses recorded")
				}
			})
		}
	}
}

// TestScheduleDeterminism: the whole group outcome — per-thread results,
// combined result, trace stream, and switch count — must be a pure
// function of (seed, module, config).
func TestScheduleDeterminism(t *testing.T) {
	w := workloads.Concurrent()[0]
	m := w.Build(3)
	m.Freeze()
	a := runClean(t, m, 3, 1234)
	b := runClean(t, m, 3, 1234)
	if !reflect.DeepEqual(a.Combined, b.Combined) {
		t.Fatalf("combined results differ:\n%+v\n%+v", a.Combined, b.Combined)
	}
	if a.Switches != b.Switches {
		t.Fatalf("switch counts differ: %d vs %d", a.Switches, b.Switches)
	}
	for tid := range a.Threads {
		if !reflect.DeepEqual(a.Threads[tid], b.Threads[tid]) {
			t.Fatalf("thread %d results differ", tid)
		}
	}
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", a.Trace.Len(), b.Trace.Len())
	}
	for tid := 0; tid < a.Trace.Threads(); tid++ {
		if !reflect.DeepEqual(a.Trace.Thread(tid), b.Trace.Thread(tid)) {
			t.Fatalf("thread %d traces differ", tid)
		}
	}
}

// TestScheduleSeedVaries: different schedule seeds should still verify
// clean with identical program output (the workloads' interleaving-
// independence), while actually exploring different interleavings.
func TestScheduleSeedVaries(t *testing.T) {
	w := workloads.Concurrent()[2]
	m := w.Build(3)
	m.Freeze()
	var out []byte
	sawDifferentSchedule := false
	var firstSwitches uint64
	for i, seed := range []int64{1, 2, 3, 99} {
		res := runClean(t, m, 3, seed)
		if rep := consist.Check(res.Trace); !rep.Clean() {
			t.Fatalf("seed %d: violations: %v", seed, rep.Violations)
		}
		if i == 0 {
			out = res.Combined.Output
			firstSwitches = res.Switches
			continue
		}
		if !bytes.Equal(res.Combined.Output, out) {
			t.Fatalf("seed %d: output diverged across schedules", seed)
		}
		if res.Switches != firstSwitches {
			sawDifferentSchedule = true
		}
	}
	if !sawDifferentSchedule {
		t.Fatal("all seeds produced identical switch counts: scheduler seed seems inert")
	}
}

// TestDPMRTransformedConcurrent: the SDS/MDS-transformed workloads must
// run without spurious DPMR detections under interleaving — the fused
// replica binding on atomics is what makes the instrumentation itself
// race-free.
func TestDPMRTransformedConcurrent(t *testing.T) {
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		for _, w := range workloads.Concurrent() {
			t.Run(fmt.Sprintf("%v/%s", design, w.Name), func(t *testing.T) {
				base := w.Build(3)
				base.Freeze()
				golden := runClean(t, base, 3, 5)

				xm, err := dpmr.Transform(w.Build(3), dpmr.Config{Design: design, Seed: 11})
				if err != nil {
					t.Fatal(err)
				}
				opt.Run(xm)
				xm.Freeze()
				res := runClean(t, xm, 3, 5)
				if !bytes.Equal(res.Combined.Output, golden.Combined.Output) {
					t.Fatalf("transformed output diverges from golden")
				}
				if rep := consist.Check(res.Trace); !rep.Clean() {
					t.Fatalf("violations on transformed run: %v", rep.Violations)
				}
			})
		}
	}
}

// TestAbortOnThreadFailure: a worker trap aborts the whole group and
// classifies the combined result.
func TestAbortOnThreadFailure(t *testing.T) {
	m := ir.NewModule("crashworker")
	b := ir.NewBuilder(m)
	m.AddGlobal("sink", ir.I64)

	b.Function("worker", ir.Void, []string{"tid"}, ir.I64)
	// Store through a null pointer: an immediate trap.
	null := b.IntToPtr(b.I64(0), ir.Ptr(ir.I64))
	b.Store(null, b.I64(1))
	b.Ret(nil)

	b.Function("main", ir.I64, nil)
	g := b.GlobalAddr("sink")
	b.While("spin", func() *ir.Reg {
		return b.Cmp(ir.CmpEQ, b.AtomicRMW(ir.AtomicAdd, g, b.I64(0)), b.I64(0))
	}, func() {})
	b.Ret(b.I64(0))
	m.Freeze()

	res := Run(m, Config{Threads: 2, Seed: 9, VM: interp.Config{StepLimit: testStepLimit}})
	if res.Combined.Kind != interp.ExitTrap {
		t.Fatalf("want trap, got %v (%s)", res.Combined.Kind, res.Combined.Reason)
	}
	if res.FailedThread != 1 {
		t.Fatalf("want failed thread 1, got %d", res.FailedThread)
	}
	if res.Threads[0] != nil {
		t.Fatalf("main should have been unwound, got %+v", res.Threads[0])
	}
}

// TestWalkerIsOracle: a concurrent run must refuse the compiled fast
// path; binding a Program changes nothing because Yield forces the
// walker.
func TestWalkerIsOracle(t *testing.T) {
	w := workloads.Concurrent()[0]
	m := w.Build(2)
	m.Freeze()
	prog, err := interp.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	plain := runClean(t, m, 2, 77)
	res := Run(m, Config{
		Threads: 2,
		Seed:    77,
		VM:      interp.Config{StepLimit: testStepLimit, Seed: 7, Prog: prog},
	})
	if res.Combined.Kind != interp.ExitNormal {
		t.Fatalf("with Prog bound: %v (%s)", res.Combined.Kind, res.Combined.Reason)
	}
	if !reflect.DeepEqual(plain.Combined, res.Combined) {
		t.Fatalf("Prog-bound group diverged from walker group")
	}
}

// The two new failpoint sites must be registered so failpt's random
// torture schedules automatically include them.
func TestConcurrencyFailpointSitesRegistered(t *testing.T) {
	sites := failpt.Sites()
	for _, name := range []string{"mem/trace-drop", "interp/yield-stall"} {
		if _, ok := sites[name]; !ok {
			t.Errorf("site %s not registered", name)
		}
	}
}

// TestTraceDropFailpoint: dropped trace events are counted as metadata
// and never crash the run. (Lost writes may legitimately surface as
// thin-air reads downstream — that is the checker doing its job — so
// only run health and the drop count are asserted here.)
func TestTraceDropFailpoint(t *testing.T) {
	if err := failpt.Arm("mem/trace-drop=drop@2+"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpt.Disarm)
	w := workloads.Concurrent()[0]
	m := w.Build(2)
	m.Freeze()
	res := runClean(t, m, 2, 13)
	if res.Trace.Dropped() == 0 {
		t.Fatal("armed drop failpoint discarded nothing")
	}
	if rep := consist.Check(res.Trace); rep.Dropped != res.Trace.Dropped() {
		t.Fatalf("report drop count %d != recorder %d", rep.Dropped, res.Trace.Dropped())
	}
}

// TestYieldStallFailpoint: a stalled yield delays but never corrupts the
// handover — the group still runs to a clean deterministic finish.
func TestYieldStallFailpoint(t *testing.T) {
	if err := failpt.Arm("interp/yield-stall=stall(1)@3"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpt.Disarm)
	w := workloads.Concurrent()[1]
	m := w.Build(2)
	m.Freeze()
	res := runClean(t, m, 2, 21)
	if failpt.Hits("interp/yield-stall") < 3 {
		t.Fatalf("yield-stall site hit only %d times", failpt.Hits("interp/yield-stall"))
	}
	if rep := consist.Check(res.Trace); !rep.Clean() {
		t.Fatalf("stall must not corrupt anything: %v", rep.Violations)
	}
}
