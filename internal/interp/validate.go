// Compile-time validation of the invariants the executor's unchecked
// accesses rely on. exec.go fetches instructions and register slots
// through raw pointer arithmetic (no per-dispatch bounds checks), which
// is sound only if every register operand of every instruction lies
// inside the function's frame and every pc control can reach lies inside
// its code. decode and packFrame establish these invariants by
// construction; validateFunc re-proves them over the finished code so a
// compiler bug cannot silently become an out-of-bounds access — a
// function that fails validation fails the whole compilation (via panic,
// recovered in Compile), and the caller falls back to the tree-walker,
// which checks everything dynamically.
package interp

import "fmt"

// validateFunc checks one compiled internal function. It panics (caught
// by Compile's recover) rather than returning an error so a violation
// anywhere aborts the whole program compilation.
func validateFunc(cf *compiledFunc) {
	n := len(cf.code)
	if n == 0 {
		// Internal functions always carry at least a fell-off guard; empty
		// code would let the executor fetch instruction 0 out of bounds.
		panic(fmt.Sprintf("validate %s: empty code", cf.name))
	}
	regs := int32(cf.numRegs)
	fail := func(pc int, what string) {
		panic(fmt.Sprintf("validate %s: pc %d: %s", cf.name, pc, what))
	}
	for _, p := range cf.params {
		if p < 0 || p >= regs {
			panic(fmt.Sprintf("validate %s: param register %d outside frame [0,%d)", cf.name, p, regs))
		}
	}
	var refs []regRef
	var succ []int32
	for pc := 0; pc < n; pc++ {
		in := &cf.code[pc]
		// Table indices consulted before any register math.
		switch in.op {
		case opCall, opCallIndirect:
			if in.imm >= uint64(len(cf.calls)) {
				fail(pc, "call site index out of range")
			}
		case opErr, opFellOff:
			if in.imm >= uint64(len(cf.errs)) {
				fail(pc, "error index out of range")
			}
		}
		// Every register operand, via the same execution-ordered model the
		// frame packer uses (appendRefs panics on an unmodeled opcode).
		refs = appendRefs(refs[:0], in, cf.calls)
		for _, ref := range refs {
			if ref.reg >= regs {
				fail(pc, fmt.Sprintf("register %d outside frame [0,%d)", ref.reg, regs))
			}
		}
		// Every successor pc: branch targets and sequential fallthrough
		// (fused heads step over their constituents' slots). Blocks end in
		// terminators or the synthetic fell-off guard, so even the final
		// slot never falls through past the end.
		succ = successors(cf.code, pc, succ[:0])
		for _, t := range succ {
			if t < 0 || int(t) >= n {
				fail(pc, fmt.Sprintf("successor pc %d outside code [0,%d)", t, n))
			}
		}
	}
}
