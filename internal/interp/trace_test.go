package interp

import (
	"strings"
	"testing"

	"dpmr/internal/ir"
)

func TestTraceStreamsInstructions(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	x := b.I64(1)
	y := b.I64(2)
	b.Ret(b.Add(x, y))
	var sb strings.Builder
	res := Run(m, Config{Trace: &sb})
	if res.Code != 3 {
		t.Fatalf("code %d", res.Code)
	}
	out := sb.String()
	for _, want := range []string{"@main.entry", "const i64 1", "add", "ret"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestTraceLimitCaps(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	b.ForRange("i", b.I64(0), b.I64(100), func(i *ir.Reg) {})
	b.Ret(b.I64(0))
	var sb strings.Builder
	Run(m, Config{Trace: &sb, TraceLimit: 5})
	lines := strings.Count(sb.String(), "\n")
	if lines != 5 {
		t.Errorf("traced %d lines, want 5", lines)
	}
}
