// Compilation of frozen modules to a pre-decoded register bytecode.
//
// The tree-walking loop in interp.go pays a type-switch over ir.Instr
// interface values on every executed instruction, re-derives struct
// offsets, array strides, and normalization widths from the type tree,
// restarts blocks at ip=0 on every branch, and looks the callee of every
// direct call up in a name map. Campaign modules are built once, frozen,
// and executed by thousands of trial VMs, so that per-execution work is
// pure waste. Compile pays it once: each function is lowered to a flat
// []decodedInstr of compact opcode structs with branch targets resolved
// to instruction indices, direct callees resolved to *compiledFunc
// pointers, field offsets / strides / sizes / normalization modes
// precomputed, and frame sizes recorded so register frames come from a
// reusable arena (exec.go) instead of make per call.
//
// The contract is bit-identical semantics: a Program must produce exactly
// the Result the tree-walker produces — same cycle clock, traps,
// detections, RNG draws, step budget, and output — for every module,
// which is what keeps golden reports, shard fingerprints, and merge
// byte-identity guarantees intact. Decode therefore never "fixes" IR: a
// construct the walker would fault on at execution time becomes an opErr
// instruction carrying the identical error, executed only if reached, and
// a construct the walker would panic on makes Compile itself fail (the
// caller then simply runs the reference loop).
package interp

import (
	"fmt"

	"dpmr/internal/ir"
)

// opcode enumerates the compiled instruction set. The executor dispatches
// with a single dense switch over these values.
type opcode uint8

const (
	opInvalid opcode = iota
	// opFellOff is the synthetic guard appended after a block that does
	// not end in a terminator (including empty blocks): executing it
	// reproduces the walker's "fell off block" error without counting a
	// step, and keeps control from sliding into the next block's code.
	opFellOff
	// opErr carries a decode-time-proven runtime failure (unknown
	// instruction, fieldaddr through a non-aggregate, ...) that fires only
	// if the instruction is actually executed, exactly like the walker.
	opErr
	opConst
	opGlobalAddr
	opMove
	opMoveNorm
	opAdd
	opSub
	opMul
	opSDiv
	opUDiv
	opSRem
	opURem
	opAnd
	opOr
	opXor
	opShl
	opLShr
	opAShr
	opFAdd64 // all-f64 float binops, specialized for inline dispatch
	opFSub64
	opFMul64
	opFDiv64
	opFBin // mixed-width float binop (and unknown float kinds)
	opCmp
	opCmpBr // fused Cmp + CondBr (imm/imm2 = true/false arm pcs)
	opConvert
	opAlloc
	opFree
	opLoad
	opStore
	opFieldAddr
	opIndexAddr
	// Fused address-compute + memory-op pairs (sub = width, norm = load
	// normalization, imm2 = load destination / store value register). The
	// address register is still written, and both instructions' counting
	// replays exactly.
	opFieldLoad
	opIndexLoad
	opFieldStore
	opIndexStore
	// Fused DPMR instrumentation patterns: the load/load/assert triple
	// every checked load lowers to (Table 2.6), and the duplicated store
	// pair of replicated writes. Widths pack into sub as two nibbles.
	opLoadLoadAssert
	opStore2
	// Profile-selected superinstructions (fusion.go): the top unfused
	// opcode pairs/triples of the workloads' -opstats histograms. Register
	// ids and pc targets of the second (and third) constituent pack into
	// imm2 as 16/32-bit fields; see each fusion rule for the layout.
	opConstAdd   // const K; add (the loop-increment pair)
	opConstAddBr // const K; add; br (the full loop-increment tail)
	opConstLoad  // const K; load (constant-address loads)
	opIndexAddr2 // indexaddr; indexaddr (SDS app+replica address pair)
	opFMulAdd64  // fmul64; fadd64 (the FP multiply-accumulate)
	opCall
	opCallIndirect
	opRet
	opBr
	opCondBr
	opAssert
	opFaultPoint
	opRandInt
	opHeapBufSize
	opOutput
	opExit
	// Atomic memory operations (sub = AtomicOp for RMW, imm = width, norm =
	// result normalization). The optional DPMR replica slot packs as
	// register+1 (0 = unbound) into imm2 — RMW uses all of imm2, CAS packs
	// its New register into the low half and replica+1 into the high half.
	// Both execute through the same VM helpers as the tree-walker, so
	// cycles, traps, and fused replica detections replay bit-identically.
	opAtomicRMW
	opAtomicCAS
	opFence
)

// Operand-width flags (decodedInstr.flags).
const (
	flagX32 uint8 = 1 << iota // first/source operand holds f32 bits
	flagY32                   // second operand holds f32 bits
	flagD32                   // destination holds f32 bits
)

// Convert sub-kinds (decodedInstr.sub for opConvert), mirroring the rule
// order of convert() in interp.go.
const (
	convIdentity uint8 = iota
	convIntToInt
	convIntToFloat
	convFloatToInt
	convFloatToFloat
)

// decodedInstr is one pre-decoded instruction: an opcode plus register
// indices and immediates with every type-tree lookup already performed.
// The struct is kept to 32 bytes — two instructions per cache line — by
// routing the bulky payloads of rare instructions (call descriptors,
// prebuilt errors) through per-function side tables indexed by imm.
//
// Field overloading: branches reuse the register fields as pc targets
// (Br: dst = target; CondBr: a = condition, dst = true arm, b = false
// arm), and RandInt uses imm/imm2 as its Lo/Hi bounds.
type decodedInstr struct {
	op    opcode
	sub   uint8 // BinKind (opFBin), CmpKind (opCmp), convert kind, OutputMode, AllocKind
	norm  uint8 // destination normalization mode (normReg), 0 = identity
	flags uint8
	dst   int32 // destination register, -1 = none (or branch target pc)
	a     int32 // first operand register (count/cond/value), -1 = none
	b     int32 // second operand register (or CondBr false-arm pc), -1 = none
	imm   uint64
	imm2  uint64
}

// callSite is the out-of-line descriptor of one call instruction.
type callSite struct {
	fn     *ir.Func      // target (externs and walker fallback); nil for indirect
	callee *compiledFunc // target when internal (fast path)
	args   []int32       // argument registers
}

// compiledFunc is one lowered function: its flat code array plus the
// frame geometry the executor needs to carve a register frame from the
// arena, and the side tables its code indexes.
type compiledFunc struct {
	fn       *ir.Func
	name     string
	numRegs  int
	params   []int32 // parameter register ids, in signature order
	code     []decodedInstr
	calls    []callSite // opCall/opCallIndirect descriptors, by imm
	errs     []error    // opErr/opFellOff payloads, by imm
	addr     uint64     // synthetic function address (funcAddrOf)
	external bool
}

// addCall appends a call descriptor and returns its index.
func (cf *compiledFunc) addCall(cs callSite) uint64 {
	cf.calls = append(cf.calls, cs)
	return uint64(len(cf.calls) - 1)
}

// addErr appends a prebuilt error and returns its index.
func (cf *compiledFunc) addErr(err error) uint64 {
	cf.errs = append(cf.errs, err)
	return uint64(len(cf.errs) - 1)
}

// Program is the executable form of one frozen module. It is immutable
// after Compile and, like the module it was compiled from, may back any
// number of concurrently running VMs.
type Program struct {
	mod       *ir.Module
	funcs     []*compiledFunc // parallel to mod.Funcs
	byFn      map[*ir.Func]*compiledFunc
	byAddr    map[uint64]*compiledFunc // synthetic address → function
	globalIdx map[string]int           // global name → module order
	// indirectSites counts opCallIndirect instructions across the program;
	// each one's imm2 is its index into the per-VM inline-cache arrays
	// (exec.go), assigned in compile order.
	indirectSites int
}

// Module returns the module the program was compiled from.
func (p *Program) Module() *ir.Module { return p.mod }

// Compile lowers a frozen module to its executable Program. The module
// must be frozen: the program aliases its types and functions and assumes
// they never change. Compilation failures (malformed IR the tree-walker
// would only fault on dynamically) are reported as errors; callers are
// expected to fall back to the reference interpreter, which remains
// semantically authoritative.
func Compile(m *ir.Module) (p *Program, err error) {
	if m == nil {
		return nil, fmt.Errorf("interp: Compile of nil module")
	}
	if !m.Frozen() {
		return nil, fmt.Errorf("interp: Compile requires a frozen module (call Freeze first)")
	}
	// Malformed IR can panic the type-tree math (e.g. an out-of-range
	// struct field offset) exactly as it would panic the walker at run
	// time; surface it as a compile error so the caller can tree-walk.
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("interp: compiling %s: %v", m.Name, r)
		}
	}()
	p = &Program{
		mod:       m,
		funcs:     make([]*compiledFunc, len(m.Funcs)),
		byFn:      make(map[*ir.Func]*compiledFunc, len(m.Funcs)),
		byAddr:    make(map[uint64]*compiledFunc, len(m.Funcs)),
		globalIdx: make(map[string]int, len(m.Globals)),
	}
	for i, g := range m.Globals {
		p.globalIdx[g.Name] = i
	}
	for i, f := range m.Funcs {
		cf := &compiledFunc{
			fn:       f,
			name:     f.Name,
			numRegs:  f.NumRegs(),
			addr:     funcAddrOf(i),
			external: f.External,
			params:   make([]int32, len(f.Params)),
		}
		for k, pr := range f.Params {
			cf.params[k] = int32(pr.ID)
		}
		p.funcs[i] = cf
		p.byFn[f] = cf
		p.byAddr[cf.addr] = cf
	}
	for i, f := range m.Funcs {
		if f.External {
			continue
		}
		p.compileFunc(p.funcs[i], f)
	}
	return p, nil
}

// needsGuard reports whether a block needs the synthetic fell-off guard.
func needsGuard(b *ir.Block) bool {
	return len(b.Instrs) == 0 || !ir.IsTerminator(b.Instrs[len(b.Instrs)-1])
}

func (p *Program) compileFunc(cf *compiledFunc, f *ir.Func) {
	// Pass 1: lay blocks out contiguously and record each block's first pc
	// so branches resolve to instruction indices.
	start := make(map[*ir.Block]int32, len(f.Blocks))
	n := 0
	for _, b := range f.Blocks {
		start[b] = int32(n)
		n += len(b.Instrs)
		if needsGuard(b) {
			n++
		}
	}
	// Pass 2: decode every instruction plain (one decodedInstr per ir
	// instruction, guards appended where blocks lack terminators).
	code := make([]decodedInstr, 0, n)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			code = append(code, p.decode(cf, f, in, start))
		}
		if needsGuard(b) {
			code = append(code, decodedInstr{
				op:  opFellOff,
				imm: cf.addErr(fmt.Errorf("fell off block %s in %s", b.Name, f.Name)),
			})
		}
	}
	// Pass 3: superinstruction fusion (fusion.go). Fused heads replay each
	// constituent's step/cycle/budget accounting exactly and the pair's
	// layout is preserved — the constituents still occupy their own,
	// now-unreachable slots, so pc assignment is unchanged.
	fuseCode(code)
	cf.code = code
	// Pass 4: live-range frame narrowing (liveness.go) — pack registers to
	// live width so the executor clears and carves smaller frames.
	packFrame(cf)
	// Pass 5: re-prove the frame- and code-bounds invariants the unchecked
	// executor relies on (validate.go); failure aborts compilation and the
	// caller tree-walks.
	validateFunc(cf)
}

func rid(r *ir.Reg) int32 { return int32(r.ID) }

func (p *Program) decode(cf *compiledFunc, f *ir.Func, in ir.Instr, start map[*ir.Block]int32) decodedInstr {
	blockPC := func(b *ir.Block) int32 {
		pc, ok := start[b]
		if !ok {
			// A branch out of the function: the walker would tree-walk the
			// foreign block, which flat code cannot express. Fail the whole
			// compilation (recovered in Compile) so the caller tree-walks.
			panic(fmt.Sprintf("branch to foreign block %s in %s", b.Name, f.Name))
		}
		return pc
	}
	switch i := in.(type) {
	case *ir.ConstInt:
		return decodedInstr{op: opConst, dst: rid(i.Dst), imm: normInt(uint64(i.Val), i.Dst.Type)}
	case *ir.ConstFloat:
		return decodedInstr{op: opConst, dst: rid(i.Dst), imm: floatBits(i.Val, i.Dst.Type)}
	case *ir.ConstNull:
		return decodedInstr{op: opConst, dst: rid(i.Dst)}
	case *ir.Move:
		return decodedInstr{op: opMove, dst: rid(i.Dst), a: rid(i.Src)}
	case *ir.Bitcast:
		// Pointer reinterpretation is a register copy at run time.
		return decodedInstr{op: opMove, dst: rid(i.Dst), a: rid(i.Src)}
	case *ir.IntToPtr:
		return decodedInstr{op: opMove, dst: rid(i.Dst), a: rid(i.Src)}
	case *ir.PtrToInt:
		return decodedInstr{op: opMoveNorm, dst: rid(i.Dst), a: rid(i.Src), norm: normModeOf(i.Dst.Type)}
	case *ir.BinOp:
		return decodeBinOp(cf, i)
	case *ir.Cmp:
		d := decodedInstr{op: opCmp, sub: uint8(i.Op), dst: rid(i.Dst), a: rid(i.X), b: rid(i.Y)}
		if isF32(i.X.Type) {
			d.flags |= flagX32
		}
		if isF32(i.Y.Type) {
			d.flags |= flagY32
		}
		return d
	case *ir.Convert:
		return decodeConvert(i)
	case *ir.Alloc:
		d := decodedInstr{op: opAlloc, sub: uint8(i.Kind), dst: rid(i.Dst), a: -1, imm: uint64(PaddedSize(i.Elem))}
		if i.Count != nil {
			d.a = rid(i.Count)
		}
		return d
	case *ir.Free:
		return decodedInstr{op: opFree, a: rid(i.Ptr)}
	case *ir.Load:
		return decodedInstr{op: opLoad, dst: rid(i.Dst), a: rid(i.Ptr),
			imm: uint64(i.Dst.Type.Size()), norm: normModeOf(i.Dst.Type)}
	case *ir.Store:
		return decodedInstr{op: opStore, a: rid(i.Ptr), b: rid(i.Val), imm: uint64(i.Val.Type.Size())}
	case *ir.FieldAddr:
		off, err := fieldOffset(i.Ptr.Elem(), i.Field)
		if err != nil {
			return decodedInstr{op: opErr, imm: cf.addErr(err)}
		}
		return decodedInstr{op: opFieldAddr, dst: rid(i.Dst), a: rid(i.Ptr), imm: uint64(off)}
	case *ir.IndexAddr:
		return decodedInstr{op: opIndexAddr, dst: rid(i.Dst), a: rid(i.Ptr), b: rid(i.Index),
			imm: uint64(Stride(i.Ptr.Elem()))}
	case *ir.FuncAddr:
		// Function addresses are a pure function of module order; an
		// unknown name reads as address 0, exactly like the walker's map
		// miss.
		var addr uint64
		if target := p.mod.Func(i.Fn); target != nil {
			addr = p.byFn[target].addr
		}
		return decodedInstr{op: opConst, dst: rid(i.Dst), imm: addr}
	case *ir.GlobalAddr:
		if gi, ok := p.globalIdx[i.G]; ok {
			return decodedInstr{op: opGlobalAddr, dst: rid(i.Dst), imm: uint64(gi)}
		}
		return decodedInstr{op: opConst, dst: rid(i.Dst)} // walker map miss = 0
	case *ir.Call:
		d := decodedInstr{dst: -1, a: -1}
		if i.Dst != nil {
			d.dst = rid(i.Dst)
		}
		cs := callSite{args: make([]int32, len(i.Args))}
		for k, a := range i.Args {
			cs.args[k] = rid(a)
		}
		if i.Callee != "" {
			d.op = opCall
			cs.fn = p.mod.Func(i.Callee) // nil reproduces the walker's nil-callee panic
			if cs.fn != nil && !cs.fn.External {
				cs.callee = p.byFn[cs.fn]
			}
		} else {
			d.op = opCallIndirect
			d.a = rid(i.CalleePtr)
			// imm2 is this site's index into the per-VM inline-cache arrays:
			// a monomorphic site resolves its target through one tag compare
			// instead of the byAddr map (exec.go).
			d.imm2 = uint64(p.indirectSites)
			p.indirectSites++
		}
		d.imm = cf.addCall(cs)
		return d
	case *ir.Ret:
		d := decodedInstr{op: opRet, a: -1}
		if i.Val != nil {
			d.a = rid(i.Val)
		}
		return d
	case *ir.Br:
		return decodedInstr{op: opBr, dst: blockPC(i.Target)}
	case *ir.CondBr:
		return decodedInstr{op: opCondBr, a: rid(i.Cond), dst: blockPC(i.True), b: blockPC(i.False)}
	case *ir.Assert:
		return decodedInstr{op: opAssert, a: rid(i.X), b: rid(i.Y)}
	case *ir.FaultPoint:
		return decodedInstr{op: opFaultPoint}
	case *ir.RandInt:
		return decodedInstr{op: opRandInt, dst: rid(i.Dst), imm: uint64(i.Lo), imm2: uint64(i.Hi)}
	case *ir.HeapBufSize:
		return decodedInstr{op: opHeapBufSize, dst: rid(i.Dst), a: rid(i.Ptr)}
	case *ir.AtomicRMW:
		d := decodedInstr{op: opAtomicRMW, sub: uint8(i.Op), norm: normModeOf(i.Dst.Type),
			dst: rid(i.Dst), a: rid(i.Ptr), b: rid(i.Val), imm: uint64(i.Dst.Type.Size())}
		if i.RPtr != nil {
			d.imm2 = uint64(rid(i.RPtr)) + 1
		}
		return d
	case *ir.AtomicCAS:
		d := decodedInstr{op: opAtomicCAS, norm: normModeOf(i.Dst.Type),
			dst: rid(i.Dst), a: rid(i.Ptr), b: rid(i.Old), imm: uint64(i.Dst.Type.Size()),
			imm2: uint64(uint32(rid(i.New)))}
		if i.RPtr != nil {
			d.imm2 |= (uint64(rid(i.RPtr)) + 1) << 32
		}
		return d
	case *ir.Fence:
		return decodedInstr{op: opFence, dst: -1, a: -1, b: -1}
	case *ir.Output:
		d := decodedInstr{op: opOutput, sub: uint8(i.Mode), a: rid(i.Val)}
		if isF32(i.Val.Type) {
			d.flags |= flagX32
		}
		return d
	case *ir.Exit:
		d := decodedInstr{op: opExit, a: -1}
		if i.Val != nil {
			d.a = rid(i.Val)
		}
		return d
	}
	return decodedInstr{op: opErr, imm: cf.addErr(fmt.Errorf("unknown instruction %T in %s", in, f.Name))}
}

func decodeBinOp(cf *compiledFunc, i *ir.BinOp) decodedInstr {
	t := i.Dst.Type
	d := decodedInstr{dst: rid(i.Dst), a: rid(i.X), b: rid(i.Y), norm: normModeOf(t)}
	if i.Op.IsFloat() {
		d.op = opFBin
		d.sub = uint8(i.Op)
		if isF32(i.X.Type) {
			d.flags |= flagX32
		}
		if isF32(i.Y.Type) {
			d.flags |= flagY32
		}
		if isF32(t) {
			d.flags |= flagD32
		}
		if d.flags == 0 {
			// All-f64 operations (the common case) get dedicated opcodes
			// whose float conversions inline into the dispatch switch.
			switch i.Op {
			case ir.OpFAdd:
				d.op = opFAdd64
			case ir.OpFSub:
				d.op = opFSub64
			case ir.OpFMul:
				d.op = opFMul64
			case ir.OpFDiv:
				d.op = opFDiv64
			}
		}
		return d
	}
	switch i.Op {
	case ir.OpAdd:
		d.op = opAdd
	case ir.OpSub:
		d.op = opSub
	case ir.OpMul:
		d.op = opMul
	case ir.OpSDiv:
		d.op = opSDiv
	case ir.OpSRem:
		d.op = opSRem
	case ir.OpUDiv:
		d.op = opUDiv
		d.imm = uint64(t.Size() * 8) // operand mask width
	case ir.OpURem:
		d.op = opURem
		d.imm = uint64(t.Size() * 8)
	case ir.OpAnd:
		d.op = opAnd
	case ir.OpOr:
		d.op = opOr
	case ir.OpXor:
		d.op = opXor
	case ir.OpShl:
		d.op = opShl
	case ir.OpLShr:
		d.op = opLShr
		d.imm = uint64(t.Size() * 8)
	case ir.OpAShr:
		d.op = opAShr
	default:
		return decodedInstr{op: opErr, imm: cf.addErr(fmt.Errorf("unknown binop %v", i.Op))}
	}
	return d
}

func decodeConvert(i *ir.Convert) decodedInstr {
	from, to := i.Src.Type, i.Dst.Type
	d := decodedInstr{op: opConvert, sub: convIdentity, dst: rid(i.Dst), a: rid(i.Src)}
	switch {
	case from.Kind() == ir.KindInt && to.Kind() == ir.KindInt:
		d.sub = convIntToInt
		d.norm = normModeOf(to)
	case from.Kind() == ir.KindInt && to.Kind() == ir.KindFloat:
		d.sub = convIntToFloat
		if isF32(to) {
			d.flags |= flagD32
		}
	case from.Kind() == ir.KindFloat && to.Kind() == ir.KindInt:
		d.sub = convFloatToInt
		if isF32(from) {
			d.flags |= flagX32
		}
		d.norm = normModeOf(to)
	case from.Kind() == ir.KindFloat && to.Kind() == ir.KindFloat:
		d.sub = convFloatToFloat
		if isF32(from) {
			d.flags |= flagX32
		}
		if isF32(to) {
			d.flags |= flagD32
		}
	}
	return d
}
