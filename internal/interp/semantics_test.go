package interp

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"dpmr/internal/ir"
)

// evalBin runs a two-constant binary operation through the interpreter
// and returns the 64-bit register image of the result.
func evalBin(t *testing.T, typ ir.Type, op ir.BinKind, x, y uint64) (uint64, ExitKind) {
	t.Helper()
	m := ir.NewModule("sem")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	xr := b.F.NewReg("x", typ)
	yr := b.F.NewReg("y", typ)
	zr := b.F.NewReg("z", typ)
	b.B.Append(&ir.ConstInt{Dst: xr, Val: int64(x)})
	b.B.Append(&ir.ConstInt{Dst: yr, Val: int64(y)})
	b.B.Append(&ir.BinOp{Dst: zr, X: xr, Y: yr, Op: op})
	out := b.Convert(zr, ir.I64)
	b.Ret(out)
	res := Run(m, Config{})
	return uint64(res.Code), res.Kind
}

// Property: i64 arithmetic matches Go's int64 semantics exactly.
func TestPropertyI64MatchesGo(t *testing.T) {
	ops := []struct {
		op ir.BinKind
		fn func(a, b int64) int64
	}{
		{ir.OpAdd, func(a, b int64) int64 { return a + b }},
		{ir.OpSub, func(a, b int64) int64 { return a - b }},
		{ir.OpMul, func(a, b int64) int64 { return a * b }},
		{ir.OpAnd, func(a, b int64) int64 { return a & b }},
		{ir.OpOr, func(a, b int64) int64 { return a | b }},
		{ir.OpXor, func(a, b int64) int64 { return a ^ b }},
	}
	f := func(a, b int64, pick uint8) bool {
		o := ops[int(pick)%len(ops)]
		got, kind := evalBin(t, ir.I64, o.op, uint64(a), uint64(b))
		return kind == ExitNormal && int64(got) == o.fn(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: narrow integer arithmetic wraps exactly like Go's sized types.
func TestPropertyNarrowWidthsWrap(t *testing.T) {
	f := func(a, b int32, pick uint8) bool {
		switch pick % 3 {
		case 0:
			got, _ := evalBin(t, ir.I8, ir.OpAdd, uint64(int64(a)), uint64(int64(b)))
			return int64(got) == int64(int8(int8(a)+int8(b)))
		case 1:
			got, _ := evalBin(t, ir.I16, ir.OpMul, uint64(int64(a)), uint64(int64(b)))
			return int64(got) == int64(int16(int16(a)*int16(b)))
		default:
			got, _ := evalBin(t, ir.I32, ir.OpSub, uint64(int64(a)), uint64(int64(b)))
			return int64(got) == int64(int32(a-b))
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: signed/unsigned division and remainder match Go, and division
// by zero traps rather than panicking.
func TestPropertyDivisionSemantics(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 {
			_, kind := evalBin(t, ir.I64, ir.OpSDiv, uint64(a), 0)
			return kind == ExitTrap
		}
		if a == math.MinInt64 && b == -1 {
			return true // Go panics on this overflow; skip the case
		}
		gotS, _ := evalBin(t, ir.I64, ir.OpSDiv, uint64(a), uint64(b))
		if int64(gotS) != a/b {
			return false
		}
		gotR, _ := evalBin(t, ir.I64, ir.OpSRem, uint64(a), uint64(b))
		if int64(gotR) != a%b {
			return false
		}
		gotU, _ := evalBin(t, ir.I64, ir.OpUDiv, uint64(a), uint64(b))
		return gotU == uint64(a)/uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: shifts mask their count to 6 bits like x86-64.
func TestPropertyShiftMasking(t *testing.T) {
	f := func(a int64, count uint8) bool {
		got, _ := evalBin(t, ir.I64, ir.OpShl, uint64(a), uint64(count))
		want := a << (count & 63)
		if int64(got) != want {
			return false
		}
		gotR, _ := evalBin(t, ir.I64, ir.OpAShr, uint64(a), uint64(count))
		return int64(gotR) == a>>(count&63)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: float64 arithmetic through memory round-trips bit-exactly and
// matches Go.
func TestPropertyFloatSemantics(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		m := ir.NewModule("fsem")
		bb := ir.NewBuilder(m)
		bb.Function("main", ir.I64, nil)
		p := bb.Malloc(ir.F64)
		x := bb.F64c(a)
		y := bb.F64c(b)
		s := bb.Bin(ir.OpFMul, x, y)
		bb.Store(p, s)
		back := bb.Load(p)
		// Compare bits via xor: equal iff result 0.
		bi := bb.PtrToInt(p) // keep p alive; not essential
		_ = bi
		bb.Out(back, ir.OutFloat)
		bb.Ret(bb.I64(0))
		res := Run(m, Config{})
		if res.Kind != ExitNormal {
			return false
		}
		want := ir.NewModule("want") // compute expected text the same way
		_ = want
		return string(res.Output) == formatG(a*b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// formatG mirrors the Output instruction's float formatting.
func formatG(v float64) string {
	b := strconv.AppendFloat(nil, v, 'g', 6, 64)
	return string(append(b, '\n'))
}

// Property: integer conversions match Go conversions.
func TestPropertyConvertMatchesGo(t *testing.T) {
	f := func(a int64, pick uint8) bool {
		m := ir.NewModule("conv")
		b := ir.NewBuilder(m)
		b.Function("main", ir.I64, nil)
		src := b.I64(a)
		var mid *ir.Reg
		var want int64
		switch pick % 4 {
		case 0:
			mid = b.Convert(src, ir.I8)
			want = int64(int8(a))
		case 1:
			mid = b.Convert(src, ir.I16)
			want = int64(int16(a))
		case 2:
			mid = b.Convert(src, ir.I32)
			want = int64(int32(a))
		default:
			mid = b.Convert(src, ir.F64)
			back := b.Convert(mid, ir.I64)
			b.Ret(back)
			res := Run(m, Config{})
			return res.Kind == ExitNormal && res.Code == int64(float64(a))
		}
		b.Ret(b.Convert(mid, ir.I64))
		res := Run(m, Config{})
		return res.Kind == ExitNormal && res.Code == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: memory round-trips preserve values at every width for any
// value (store low bytes, load sign-extends).
func TestPropertyMemoryRoundTrip(t *testing.T) {
	f := func(v int64, pick uint8) bool {
		widths := []struct {
			t    ir.Type
			norm func(int64) int64
		}{
			{ir.I8, func(x int64) int64 { return int64(int8(x)) }},
			{ir.I16, func(x int64) int64 { return int64(int16(x)) }},
			{ir.I32, func(x int64) int64 { return int64(int32(x)) }},
			{ir.I64, func(x int64) int64 { return x }},
		}
		w := widths[int(pick)%len(widths)]
		m := ir.NewModule("rt")
		b := ir.NewBuilder(m)
		b.Function("main", ir.I64, nil)
		p := b.Malloc(w.t)
		val := b.Const(w.t, v)
		b.Store(p, val)
		got := b.Load(p)
		b.Ret(b.Convert(got, ir.I64))
		res := Run(m, Config{})
		return res.Kind == ExitNormal && res.Code == w.norm(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
