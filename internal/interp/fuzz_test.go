package interp_test

import (
	"reflect"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/workloads"
)

// compileFuzzSeeds are FuzzCompile's handwritten seed modules, aimed at
// the fusion table's edges. TestCompileFuzzSeedsValid pins them as
// parse-and-verify clean so a grammar drift cannot silently turn them
// into skipped inputs.
var compileFuzzSeeds = []string{
	// A loop whose header is cmp+condbr and whose latch is const+add+br —
	// the two control-flow fusion rules — with the back edge landing on a
	// fused head (never a mid-pair slot).
	"module m\nfunc @main() i64 {\n.entry:\n  %i = const i64 0\n  br .head\n.head:\n  %lim = const i64 10\n  %c = cmp slt %i, %lim\n  condbr %c, .body, .done\n.body:\n  %one = const i64 1\n  %i = add %i, %one\n  br .head\n.done:\n  ret %i\n}\n",
	// Back-to-back loads of one cell feeding an assert (the DPMR check
	// pattern) and a double store (the replicated-write pattern), plus
	// the indexaddr pair.
	"module m\nfunc @main() i64 {\n.entry:\n  %n = const i64 4\n  %zero = const i64 0\n  %p = malloc [4 x i64], count %n ; site 1\n  %q = indexaddr %p, %zero\n  %v = const i64 7\n  store %v, %q\n  store %v, %q\n  %a = load i64, %q\n  %b = load i64, %q\n  assert %a == %b\n  free %p\n  ret %a\n}\n",
	// Trap path: division by zero right after a fusible const+add.
	"module m\nfunc @main() i64 {\n.entry:\n  %z = const i64 0\n  %x = const i64 1\n  %y = add %x, %z\n  %d = sdiv %y, %z\n  ret %d\n}\n",
	// Indirect call through a function address (inline-cache path).
	"module m\nfunc @f() i64 {\n.entry:\n  %r = const i64 3\n  ret %r\n}\nfunc @main() i64 {\n.entry:\n  %p = funcaddr @f\n  %v = call %p()\n  ret %v\n}\n",
}

// compileDifferential runs text under the tree-walker and the compiled
// engine and reports a fatal error on any Result divergence. It returns
// false when the module never reached execution (parse/verify/compile
// rejection — all legitimate).
func compileDifferential(t *testing.T, text string) bool {
	t.Helper()
	m, err := ir.Parse(text)
	if err != nil {
		return false
	}
	if err := ir.Verify(m); err != nil {
		return false
	}
	// Bound runaway loops; the limit applies identically to both engines,
	// so a limit-exit Result still has to match exactly.
	cfg := interp.Config{StepLimit: 50_000}
	ref := interp.Run(m, cfg)
	m.Freeze()
	prog, err := interp.Compile(m)
	if err != nil {
		// Compile may reject a module (production falls back to the
		// walker); it may not crash or mis-execute an accepted one.
		return false
	}
	ccfg := cfg
	ccfg.Prog = prog
	got := interp.Run(m, ccfg)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("compiled result diverges from reference:\nref: %+v\ngot: %+v\n--- module ---\n%s", ref, got, text)
	}
	return true
}

// TestCompileFuzzSeedsValid: every handwritten fuzz seed parses,
// verifies, compiles, and executes identically on both engines — the
// deterministic half of FuzzCompile's contract.
func TestCompileFuzzSeedsValid(t *testing.T) {
	for i, text := range compileFuzzSeeds {
		if !compileDifferential(t, text) {
			t.Errorf("seed %d no longer reaches execution:\n%s", i, text)
		}
	}
}

// FuzzCompile is the compiled engine's native fuzz target: any module
// the verifier accepts must produce a compiled Result bit-identical to
// the tree-walker's — cycles, traps, detections, RNG sequence, output,
// everything reflect.DeepEqual can see. The compile pipeline (decode →
// fuse → packFrame → validate) may also reject a module outright
// (falling back to the walker in production); what it must never do is
// accept one and execute it differently, panic, or fault — validateFunc
// exists so the executor's unchecked accesses stay inside proven bounds
// even on adversarial control and operand layouts.
//
// Seeds are the workloads and a DPMR transform (the richest real
// modules, together exercising every fusion rule) plus the handwritten
// edge-case modules above.
func FuzzCompile(f *testing.F) {
	for _, w := range workloads.All() {
		f.Add(w.Build().String())
	}
	if xm, err := dpmr.Transform(workloads.All()[0].Build(), dpmr.Config{
		Design: dpmr.SDS, Diversity: dpmr.RearrangeHeap{}, Policy: dpmr.AllLoads{}, Seed: 1,
	}); err == nil {
		f.Add(xm.String())
	}
	for _, s := range compileFuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		compileDifferential(t, text)
	})
}
