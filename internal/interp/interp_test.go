package interp

import (
	"strings"
	"testing"

	"dpmr/internal/ir"
	"dpmr/internal/mem"
)

func runMain(t *testing.T, build func(b *ir.Builder)) *Result {
	t.Helper()
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	build(b)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return Run(m, Config{})
}

func TestArithmeticAndReturn(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		x := b.I64(21)
		y := b.I64(2)
		b.Ret(b.Mul(x, y))
	})
	if res.Kind != ExitNormal || res.Code != 42 {
		t.Fatalf("got %v code %d (%s)", res.Kind, res.Code, res.Reason)
	}
}

func TestSignedNarrowArithmetic(t *testing.T) {
	// i8 127 + 1 wraps to -128 under two's complement.
	res := runMain(t, func(b *ir.Builder) {
		x := b.I8(127)
		y := b.I8(1)
		s := b.Add(x, y)
		b.Ret(b.Convert(s, ir.I64))
	})
	if res.Code != -128 {
		t.Fatalf("i8 overflow: got %d, want -128", res.Code)
	}
}

func TestUnsignedDivisionMasksWidth(t *testing.T) {
	// In i8, -2 is 0xFE = 254 unsigned; 254 udiv 2 = 127.
	res := runMain(t, func(b *ir.Builder) {
		x := b.I8(-2)
		y := b.I8(2)
		d := b.Bin(ir.OpUDiv, x, y)
		b.Ret(b.Convert(d, ir.I64))
	})
	if res.Code != 127 {
		t.Fatalf("udiv: got %d, want 127", res.Code)
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		b.Ret(b.Bin(ir.OpSDiv, b.I64(1), b.I64(0)))
	})
	if res.Kind != ExitTrap {
		t.Fatalf("got %v, want trap", res.Kind)
	}
}

func TestFloatArithmetic(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		x := b.F64c(1.5)
		y := b.F64c(2.25)
		s := b.Bin(ir.OpFMul, x, y)
		b.Ret(b.Convert(s, ir.I64)) // 3.375 → 3
	})
	if res.Code != 3 {
		t.Fatalf("float mul: got %d, want 3", res.Code)
	}
}

func TestFloat32RoundTripThroughMemory(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		p := b.Malloc(ir.F32)
		v := b.Float(ir.F32, 2.5)
		b.Store(p, v)
		got := b.Load(p)
		wide := b.Convert(got, ir.F64)
		scaled := b.Bin(ir.OpFMul, wide, b.F64c(4))
		b.Ret(b.Convert(scaled, ir.I64)) // 10
	})
	if res.Code != 10 {
		t.Fatalf("f32 roundtrip: got %d, want 10", res.Code)
	}
}

func TestHeapLoadStoreAndStructFields(t *testing.T) {
	node := ir.NamedStruct("Node")
	node.SetBody(ir.I32, ir.Ptr(node))
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	n1 := b.Malloc(node)
	n2 := b.Malloc(node)
	b.Store(b.Field(n1, 0), b.I32(7))
	b.Store(b.Field(n1, 1), n2)
	b.Store(b.Field(n2, 0), b.I32(35))
	b.Store(b.Field(n2, 1), b.Null(ir.Ptr(node)))
	// Walk: sum = n1.data + n1.nxt->data
	d1 := b.Load(b.Field(n1, 0))
	nxt := b.Load(b.Field(n1, 1))
	d2 := b.Load(b.Field(nxt, 0))
	sum := b.Add(b.Convert(d1, ir.I64), b.Convert(d2, ir.I64))
	b.Ret(sum)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if res.Kind != ExitNormal || res.Code != 42 {
		t.Fatalf("got %v code %d (%s)", res.Kind, res.Code, res.Reason)
	}
}

func TestArrayIndexing(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		arr := b.MallocN(ir.I64, b.I64(10))
		b.ForRange("i", b.I64(0), b.I64(10), func(i *ir.Reg) {
			b.Store(b.Index(arr, i), i)
		})
		s := b.Reg("s", ir.I64)
		b.MoveTo(s, b.I64(0))
		b.ForRange("j", b.I64(0), b.I64(10), func(j *ir.Reg) {
			b.BinTo(s, ir.OpAdd, s, b.Load(b.Index(arr, j)))
		})
		b.Free(arr)
		b.Ret(s)
	})
	if res.Code != 45 {
		t.Fatalf("array sum: got %d, want 45", res.Code)
	}
}

func TestNullDereferenceTraps(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		p := b.Null(ir.Ptr(ir.I64))
		b.Ret(b.Load(p))
	})
	if res.Kind != ExitTrap {
		t.Fatalf("got %v, want trap", res.Kind)
	}
	if !strings.Contains(res.Reason, "unmapped or protected") {
		t.Errorf("reason: %s", res.Reason)
	}
}

func TestUseAfterFreeReadsStaleOrMetadata(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		p := b.Malloc(ir.I64)
		b.Store(p, b.I64(111))
		b.Free(p)
		b.Ret(b.Load(p)) // dangling read: no trap, garbage value
	})
	if res.Kind != ExitNormal {
		t.Fatalf("dangling read should not trap, got %v (%s)", res.Kind, res.Reason)
	}
	if res.Code == 111 {
		t.Error("free should have clobbered the first word with metadata")
	}
}

func TestDoubleFreeTrap(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		p := b.Malloc(ir.I64)
		b.Free(p)
		b.Free(p)
		b.Ret(b.I64(0))
	})
	if res.Kind != ExitTrap {
		t.Fatalf("got %v, want trap", res.Kind)
	}
}

func TestGlobalsInitAndRefs(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal("counter", ir.I64)
	g.Init = []byte{5, 0, 0, 0, 0, 0, 0, 0}
	holder := m.AddGlobal("holder", ir.Ptr(ir.I64))
	holder.Refs = []ir.RefInit{{Offset: 0, Global: "counter"}}
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	hp := b.GlobalAddr("holder")
	cp := b.Load(hp) // pointer to counter via ref fixup
	v := b.Load(cp)
	b.Store(cp, b.Add(v, b.I64(1)))
	b.Ret(b.Load(b.GlobalAddr("counter")))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if res.Kind != ExitNormal || res.Code != 6 {
		t.Fatalf("got %v code %d (%s)", res.Kind, res.Code, res.Reason)
	}
}

func TestFunctionCallsAndRecursion(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	fib := b.Function("fib", ir.I64, []string{"n"}, ir.I64)
	n := fib.Params[0]
	c := b.Cmp(ir.CmpSLT, n, b.I64(2))
	base := b.Block("base")
	rec := b.Block("rec")
	b.CondBr(c, base, rec)
	b.SetBlock(base)
	b.Ret(n)
	b.SetBlock(rec)
	a := b.Call("fib", b.Sub(n, b.I64(1)))
	d := b.Call("fib", b.Sub(n, b.I64(2)))
	b.Ret(b.Add(a, d))

	b.Function("main", ir.I64, nil)
	b.Ret(b.Call("fib", b.I64(15)))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if res.Code != 610 {
		t.Fatalf("fib(15): got %d, want 610", res.Code)
	}
}

func TestIndirectCallThroughFunctionPointer(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	b.Function("double", ir.I64, []string{"x"}, ir.I64)
	b.Ret(b.Mul(b.F.Params[0], b.I64(2)))
	b.Function("main", ir.I64, nil)
	fp := b.FuncAddr("double")
	b.Ret(b.CallPtr(fp, b.I64(21)))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if res.Code != 42 {
		t.Fatalf("got %d, want 42", res.Code)
	}
}

func TestIndirectCallThroughBadPointerTraps(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	p := b.Malloc(ir.I64) // not a function address
	fp := b.Cast(p, ir.FuncOf(ir.I64))
	b.Ret(b.CallPtr(fp))
	res := Run(m, Config{})
	if res.Kind != ExitTrap {
		t.Fatalf("got %v, want trap", res.Kind)
	}
}

func TestOutputStream(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		b.OutInt(b.I64(7))
		b.Out(b.F64c(1.5), ir.OutFloat)
		b.Out(b.I8('A'), ir.OutByte)
		b.Ret(b.I64(0))
	})
	want := "7\n1.5\nA"
	if string(res.Output) != want {
		t.Fatalf("output %q, want %q", res.Output, want)
	}
}

func TestExitInstruction(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		b.Exit(b.I64(3))
	})
	if res.Kind != ExitNormal || res.Code != 3 {
		t.Fatalf("got %v code %d", res.Kind, res.Code)
	}
}

func TestAssertDetection(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		b.Assert(b.I64(1), b.I64(1)) // passes
		b.Assert(b.I64(1), b.I64(2)) // detects
		b.Ret(b.I64(0))
	})
	if res.Kind != ExitDetect {
		t.Fatalf("got %v, want detect", res.Kind)
	}
}

func TestTimeoutBudget(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	loop := b.Block("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	res := Run(m, Config{StepLimit: 1000})
	if res.Kind != ExitTimeout {
		t.Fatalf("got %v, want timeout", res.Kind)
	}
}

func TestFaultPointRecordsFirstExecution(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		b.ForRange("i", b.I64(0), b.I64(5), func(i *ir.Reg) {
			b.B.Append(&ir.FaultPoint{Site: 0})
		})
		b.Ret(b.I64(0))
	})
	if !res.FaultSeen {
		t.Fatal("fault point not recorded")
	}
	if res.FaultCycle == 0 || res.FaultCycle >= res.Cycles {
		t.Errorf("fault cycle %d out of range (total %d)", res.FaultCycle, res.Cycles)
	}
}

func TestExternCall(t *testing.T) {
	m := ir.NewModule("t")
	m.AddExtern("add3", ir.FuncOf(ir.I64, ir.I64))
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	b.Ret(b.Call("add3", b.I64(39)))
	res := Run(m, Config{Externs: map[string]Extern{
		"add3": func(vm *VM, args []uint64) (uint64, error) { return args[0] + 3, nil },
	}})
	if res.Code != 42 {
		t.Fatalf("got %d, want 42 (%s)", res.Code, res.Reason)
	}
}

func TestUnresolvedExternErrors(t *testing.T) {
	m := ir.NewModule("t")
	m.AddExtern("mystery", ir.FuncOf(ir.I64))
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	b.Ret(b.Call("mystery"))
	res := Run(m, Config{})
	if res.Kind != ExitError {
		t.Fatalf("got %v, want error", res.Kind)
	}
}

func TestDeterministicCyclesAndRand(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule("t")
		b := ir.NewBuilder(m)
		b.Function("main", ir.I64, nil)
		r := b.RandInt(1, 20)
		arr := b.MallocN(ir.I64, b.I64(100))
		b.ForRange("i", b.I64(0), b.I64(100), func(i *ir.Reg) {
			b.Store(b.Index(arr, i), r)
		})
		b.Ret(b.Load(b.Index(arr, b.I64(50))))
		return m
	}
	m1, m2 := build(), build()
	r1 := Run(m1, Config{Seed: 7})
	r2 := Run(m2, Config{Seed: 7})
	if r1.Cycles != r2.Cycles || r1.Code != r2.Code {
		t.Error("same seed must give identical cycles and results")
	}
	r3 := Run(build(), Config{Seed: 8})
	if r3.Code == r1.Code {
		t.Log("different seeds gave same rand value (possible but unlikely)")
	}
	if r1.Code < 1 || r1.Code > 20 {
		t.Errorf("randint out of range: %d", r1.Code)
	}
}

func TestStackFramesPopOnReturn(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	b.Function("leaf", ir.I64, nil)
	p := b.Alloca(ir.I64)
	b.Store(p, b.I64(9))
	b.Ret(b.Load(p))

	b.Function("main", ir.I64, nil)
	s := b.Reg("s", ir.I64)
	b.MoveTo(s, b.I64(0))
	b.ForRange("i", b.I64(0), b.I64(10000), func(i *ir.Reg) {
		b.BinTo(s, ir.OpAdd, s, b.Call("leaf"))
	})
	b.Ret(s)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	// With a tiny stack this only survives if frames pop.
	res := Run(m, Config{Mem: mem.Config{StackBytes: 4096, HeapBytes: 64 * 1024, GlobalBytes: 4096}})
	if res.Kind != ExitNormal || res.Code != 90000 {
		t.Fatalf("got %v code %d (%s)", res.Kind, res.Code, res.Reason)
	}
}

func TestHeapBufSizeIntrinsic(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		p := b.MallocN(ir.I8, b.I64(100))
		b.Ret(b.HeapBufSize(p))
	})
	if res.Code != 128 {
		t.Fatalf("heapbufsize: got %d, want 128", res.Code)
	}
}

func TestPtrToIntAndBack(t *testing.T) {
	res := runMain(t, func(b *ir.Builder) {
		p := b.Malloc(ir.I64)
		b.Store(p, b.I64(77))
		raw := b.PtrToInt(p)
		q := b.IntToPtr(raw, ir.I64)
		b.Ret(b.Load(q))
	})
	if res.Code != 77 {
		t.Fatalf("got %d, want 77", res.Code)
	}
}

func TestOverflowCorruptsNeighborObject(t *testing.T) {
	// Two adjacent 24-byte buffers: writing past the first lands in the
	// second (through the 16-byte header).
	res := runMain(t, func(b *ir.Builder) {
		a := b.MallocN(ir.I64, b.I64(3)) // 24 bytes
		c := b.MallocN(ir.I64, b.I64(3))
		b.Store(b.Index(c, b.I64(0)), b.I64(1234))
		// a[5] = offset 40 = 24 payload + 16 header → c[0]
		b.Store(b.Index(a, b.I64(5)), b.I64(999))
		b.Ret(b.Load(b.Index(c, b.I64(0))))
	})
	if res.Code != 999 {
		t.Fatalf("overflow should corrupt neighbour: got %d", res.Code)
	}
}
