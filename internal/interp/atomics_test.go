package interp

import (
	"testing"

	"dpmr/internal/ir"
)

// TestCompiledMatchesWalkerAtomics: every atomic combining op, CAS in
// both outcomes, and fence execute identically in the walker and the
// compiled engine — same results, same cycle clock.
func TestCompiledMatchesWalkerAtomics(t *testing.T) {
	m := buildMain(func(b *ir.Builder) {
		p := b.Malloc(ir.I64)
		b.Store(p, b.I64(0x0F0))
		s := b.Reg("s", ir.I64)
		b.MoveTo(s, b.I64(0))
		acc := func(v *ir.Reg) { b.BinTo(s, ir.OpAdd, s, v) }
		acc(b.AtomicRMW(ir.AtomicAdd, p, b.I64(5)))    // old 240, cell 245
		acc(b.AtomicRMW(ir.AtomicAnd, p, b.I64(0xFF))) // old 245, cell 245
		acc(b.AtomicRMW(ir.AtomicOr, p, b.I64(0x100))) // old 245, cell 501
		acc(b.AtomicRMW(ir.AtomicXor, p, b.I64(0xFF))) // old 501, cell 266
		acc(b.AtomicRMW(ir.AtomicXchg, p, b.I64(42)))  // old 266, cell 42
		b.Fence()
		acc(b.AtomicCAS(p, b.I64(42), b.I64(7))) // succeeds: old 42, cell 7
		acc(b.AtomicCAS(p, b.I64(42), b.I64(9))) // fails: returns current 7
		acc(b.Load(p))                           // 7
		b.Free(p)

		// Narrow-width atomics exercise result normalization.
		q := b.Malloc(ir.I32)
		b.Store(q, b.I32(-16))
		acc(b.Convert(b.AtomicRMW(ir.AtomicAdd, q, b.I32(1)), ir.I64))
		acc(b.Convert(b.AtomicCAS(q, b.I32(-15), b.I32(3)), ir.I64))
		acc(b.Convert(b.Load(q), ir.I64))
		b.Free(q)
		b.Ret(s)
	})
	res := runBoth(t, m, Config{})
	if res.Kind != ExitNormal {
		t.Fatalf("got %v (%s)", res.Kind, res.Reason)
	}
	// i64 part sums to 1553; i32 part adds -16 + -15 + 3.
	if want := int64(1553 - 16 - 15 + 3); res.Code != want {
		t.Fatalf("code = %d, want %d", res.Code, want)
	}
}

// bindReplicas points every atomic in main at a replica cell, the way
// the DPMR transform does, by rewriting RPtr in place.
func bindReplicas(m *ir.Module, rptr *ir.Reg) {
	for _, blk := range m.Func("main").Blocks {
		for _, in := range blk.Instrs {
			switch a := in.(type) {
			case *ir.AtomicRMW:
				a.RPtr = rptr
			case *ir.AtomicCAS:
				a.RPtr = rptr
			}
		}
	}
}

// buildReplicaMain builds a main whose single shared cell and replica
// start at the given values, then runs one bound RMW and one bound CAS.
func buildReplicaMain(appInit, repInit int64) *ir.Module {
	var rptr *ir.Reg
	m := buildMain(func(b *ir.Builder) {
		p := b.Malloc(ir.I64)
		r := b.Malloc(ir.I64)
		rptr = r
		b.Store(p, b.I64(appInit))
		b.Store(r, b.I64(repInit))
		s := b.AtomicRMW(ir.AtomicAdd, p, b.I64(10))
		c := b.AtomicCAS(p, b.Add(s, b.I64(10)), b.I64(99))
		b.Ret(b.Add(s, c))
	})
	bindReplicas(m, rptr)
	return m
}

// TestCompiledMatchesWalkerReplicaAtomics: replica-bound atomics update
// both copies in one indivisible step and agree across engines — clean
// when the copies agree, an ExitDetect when they diverge.
func TestCompiledMatchesWalkerReplicaAtomics(t *testing.T) {
	clean := runBoth(t, buildReplicaMain(30, 30), Config{})
	if clean.Kind != ExitNormal {
		t.Fatalf("matched replicas: %v (%s)", clean.Kind, clean.Reason)
	}
	if want := int64(30 + 40); clean.Code != want {
		t.Fatalf("code = %d, want %d", clean.Code, want)
	}

	div := runBoth(t, buildReplicaMain(30, 31), Config{})
	if div.Kind != ExitDetect {
		t.Fatalf("diverged replicas: got %v (%s), want ExitDetect", div.Kind, div.Reason)
	}
}

// TestReplicaAtomicKeepsCopiesInSync: after a bound RMW, the replica
// cell holds the same updated value as the app cell.
func TestReplicaAtomicKeepsCopiesInSync(t *testing.T) {
	var rptr *ir.Reg
	m := buildMain(func(b *ir.Builder) {
		p := b.Malloc(ir.I64)
		r := b.Malloc(ir.I64)
		rptr = r
		b.Store(p, b.I64(5))
		b.Store(r, b.I64(5))
		b.AtomicRMW(ir.AtomicAdd, p, b.I64(2))
		app := b.Load(p)
		rep := b.Load(r)
		// 7*100 + 7 = 707 proves both cells advanced.
		b.Ret(b.Add(b.Mul(app, b.I64(100)), rep))
	})
	bindReplicas(m, rptr)
	res := runBoth(t, m, Config{})
	if res.Kind != ExitNormal || res.Code != 707 {
		t.Fatalf("got %v code %d (%s)", res.Kind, res.Code, res.Reason)
	}
}
