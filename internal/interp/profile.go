// Opcode-pair/triple profiling: the measurement side of profile-guided
// superinstruction selection. An OpStats-carrying VM runs the reference
// tree-walker (like a traced VM — the compiled loop keeps every hook out
// of its dispatch) and records, for each executed instruction, the
// compiled opcode it would decode to, paired with its within-block
// predecessors. The resulting histogram is exactly the quantity the
// fusion table in fusion.go is chosen from: a (a, b) pair that dominates
// the dynamic instruction stream is a superinstruction candidate, because
// fusing it removes one dispatch per execution; pairs split across a
// block boundary never fuse, so the walker resets its window on every
// branch, mirroring the fusion pass's own reach.
//
// `dpmr-run -opstats prof.json ...` dumps the histogram of one run as
// JSON; docs/perf.md shows how to read it.
package interp

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dpmr/internal/ir"
)

// numOpcodes bounds the opcode enumeration for flat histogram arrays.
const numOpcodes = int(opFence) + 1

// opNames names each opcode for -opstats output and diagnostics.
var opNames = [numOpcodes]string{
	opInvalid:        "invalid",
	opFellOff:        "fell-off",
	opErr:            "err",
	opConst:          "const",
	opGlobalAddr:     "globaladdr",
	opMove:           "move",
	opMoveNorm:       "movenorm",
	opAdd:            "add",
	opSub:            "sub",
	opMul:            "mul",
	opSDiv:           "sdiv",
	opUDiv:           "udiv",
	opSRem:           "srem",
	opURem:           "urem",
	opAnd:            "and",
	opOr:             "or",
	opXor:            "xor",
	opShl:            "shl",
	opLShr:           "lshr",
	opAShr:           "ashr",
	opFAdd64:         "fadd64",
	opFSub64:         "fsub64",
	opFMul64:         "fmul64",
	opFDiv64:         "fdiv64",
	opFBin:           "fbin",
	opCmp:            "cmp",
	opCmpBr:          "cmp+br",
	opConvert:        "convert",
	opAlloc:          "alloc",
	opFree:           "free",
	opLoad:           "load",
	opStore:          "store",
	opFieldAddr:      "fieldaddr",
	opIndexAddr:      "indexaddr",
	opFieldLoad:      "fieldaddr+load",
	opIndexLoad:      "indexaddr+load",
	opFieldStore:     "fieldaddr+store",
	opIndexStore:     "indexaddr+store",
	opLoadLoadAssert: "load+load+assert",
	opStore2:         "store+store",
	opConstAdd:       "const+add",
	opConstAddBr:     "const+add+br",
	opConstLoad:      "const+load",
	opIndexAddr2:     "indexaddr+indexaddr",
	opFMulAdd64:      "fmul64+fadd64",
	opCall:           "call",
	opCallIndirect:   "callindirect",
	opRet:            "ret",
	opBr:             "br",
	opCondBr:         "condbr",
	opAssert:         "assert",
	opFaultPoint:     "faultpoint",
	opRandInt:        "randint",
	opHeapBufSize:    "heapbufsize",
	opOutput:         "output",
	opExit:           "exit",
	opAtomicRMW:      "atomicrmw",
	opAtomicCAS:      "atomiccas",
	opFence:          "fence",
}

func (op opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("opcode(%d)", uint8(op))
}

// OpStats is a dynamic opcode histogram: executed-instruction counts for
// single opcodes, within-block adjacent pairs, and within-block adjacent
// triples. Collect one by setting Config.OpStats (which routes the run
// through the instrumented tree-walker); it is not safe for concurrent
// VMs.
type OpStats struct {
	singles [numOpcodes]uint64
	pairs   map[[2]opcode]uint64
	triples map[[3]opcode]uint64
}

// NewOpStats returns an empty histogram.
func NewOpStats() *OpStats {
	return &OpStats{
		pairs:   make(map[[2]opcode]uint64),
		triples: make(map[[3]opcode]uint64),
	}
}

// record notes one executed instruction whose within-block predecessors
// were prev2, prev1 (opInvalid at a block start, where no pair can fuse).
func (s *OpStats) record(prev2, prev1, op opcode) {
	s.singles[op]++
	if prev1 != opInvalid {
		s.pairs[[2]opcode{prev1, op}]++
		if prev2 != opInvalid {
			s.triples[[3]opcode{prev2, prev1, op}]++
		}
	}
}

// Total returns the executed-instruction count.
func (s *OpStats) Total() uint64 {
	var n uint64
	for _, c := range s.singles {
		n += c
	}
	return n
}

// opCount is one histogram row of the JSON dump.
type opCount struct {
	Ops   []string `json:"ops"`
	Count uint64   `json:"count"`
	// Share is Count over the total executed-instruction count: the
	// fraction of all dispatches a fusion of Ops could touch.
	Share float64 `json:"share"`
}

// opStatsJSON is the -opstats document: the per-opcode counts plus the
// pair and triple histograms, each sorted by descending count.
type opStatsJSON struct {
	Total   uint64    `json:"total"`
	Singles []opCount `json:"singles"`
	Pairs   []opCount `json:"pairs"`
	Triples []opCount `json:"triples"`
}

// WriteJSON dumps the histogram as indented JSON, rows sorted by
// descending count (ties by name, so output is deterministic).
func (s *OpStats) WriteJSON(w io.Writer) error {
	total := s.Total()
	share := func(c uint64) float64 {
		if total == 0 {
			return 0
		}
		return float64(c) / float64(total)
	}
	doc := opStatsJSON{Total: total}
	for op, c := range s.singles {
		if c > 0 {
			doc.Singles = append(doc.Singles, opCount{Ops: []string{opcode(op).String()}, Count: c, Share: share(c)})
		}
	}
	for k, c := range s.pairs {
		doc.Pairs = append(doc.Pairs, opCount{Ops: []string{k[0].String(), k[1].String()}, Count: c, Share: share(c)})
	}
	for k, c := range s.triples {
		doc.Triples = append(doc.Triples, opCount{Ops: []string{k[0].String(), k[1].String(), k[2].String()}, Count: c, Share: share(c)})
	}
	for _, rows := range [][]opCount{doc.Singles, doc.Pairs, doc.Triples} {
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Count != rows[j].Count {
				return rows[i].Count > rows[j].Count
			}
			return fmt.Sprint(rows[i].Ops) < fmt.Sprint(rows[j].Ops)
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// opcodeOfInstr maps an IR instruction to the unfused opcode decode would
// assign it — the vocabulary the pair/triple histogram is expressed in.
// It mirrors decode's opcode selection (including the all-f64 float
// specializations) without touching operands, so profile rows line up
// with the fusion table's entries.
func opcodeOfInstr(in ir.Instr) opcode {
	switch i := in.(type) {
	case *ir.ConstInt, *ir.ConstFloat, *ir.ConstNull, *ir.FuncAddr:
		return opConst
	case *ir.Move, *ir.Bitcast, *ir.IntToPtr:
		return opMove
	case *ir.PtrToInt:
		return opMoveNorm
	case *ir.BinOp:
		return binOpcodeOf(i)
	case *ir.Cmp:
		return opCmp
	case *ir.Convert:
		return opConvert
	case *ir.Alloc:
		return opAlloc
	case *ir.Free:
		return opFree
	case *ir.Load:
		return opLoad
	case *ir.Store:
		return opStore
	case *ir.FieldAddr:
		return opFieldAddr
	case *ir.IndexAddr:
		return opIndexAddr
	case *ir.GlobalAddr:
		return opGlobalAddr
	case *ir.Call:
		if i.Callee != "" {
			return opCall
		}
		return opCallIndirect
	case *ir.Ret:
		return opRet
	case *ir.Br:
		return opBr
	case *ir.CondBr:
		return opCondBr
	case *ir.Assert:
		return opAssert
	case *ir.FaultPoint:
		return opFaultPoint
	case *ir.RandInt:
		return opRandInt
	case *ir.HeapBufSize:
		return opHeapBufSize
	case *ir.Output:
		return opOutput
	case *ir.Exit:
		return opExit
	case *ir.AtomicRMW:
		return opAtomicRMW
	case *ir.AtomicCAS:
		return opAtomicCAS
	case *ir.Fence:
		return opFence
	}
	return opErr
}

// binOpcodeOf mirrors decodeBinOp's opcode selection.
func binOpcodeOf(i *ir.BinOp) opcode {
	if i.Op.IsFloat() {
		if !isF32(i.X.Type) && !isF32(i.Y.Type) && !isF32(i.Dst.Type) {
			switch i.Op {
			case ir.OpFAdd:
				return opFAdd64
			case ir.OpFSub:
				return opFSub64
			case ir.OpFMul:
				return opFMul64
			case ir.OpFDiv:
				return opFDiv64
			}
		}
		return opFBin
	}
	switch i.Op {
	case ir.OpAdd:
		return opAdd
	case ir.OpSub:
		return opSub
	case ir.OpMul:
		return opMul
	case ir.OpSDiv:
		return opSDiv
	case ir.OpSRem:
		return opSRem
	case ir.OpUDiv:
		return opUDiv
	case ir.OpURem:
		return opURem
	case ir.OpAnd:
		return opAnd
	case ir.OpOr:
		return opOr
	case ir.OpXor:
		return opXor
	case ir.OpShl:
		return opShl
	case ir.OpLShr:
		return opLShr
	case ir.OpAShr:
		return opAShr
	}
	return opErr
}
