package interp

import "testing"

// TestFuseCodeBranchIntoPairGuard pins the fusion pass's mid-sequence
// guard over flat code the IR lowering cannot produce today: a branch
// target landing on the second or third slot of a fusible sequence must
// keep it unfused, because control entering there executes the original
// tail instructions. A target on the head slot must NOT block fusion —
// control entering at the head executes the whole fused sequence.
func TestFuseCodeBranchIntoPairGuard(t *testing.T) {
	pair := func() []decodedInstr {
		return []decodedInstr{
			// Both condbr arms target the head: a self-loop, so neither arm
			// marks the pair's second slot.
			{op: opCmp, dst: 2, a: 0, b: 1},
			{op: opCondBr, a: 2, dst: 0, b: 0},
		}
	}
	triple := func() []decodedInstr {
		return []decodedInstr{
			{op: opLoad, dst: 1, a: 0, imm: 8},
			{op: opLoad, dst: 2, a: 0, imm: 8},
			{op: opAssert, a: 1, b: 2},
			{op: opRet},
		}
	}
	cases := []struct {
		name string
		code []decodedInstr
		br   int32 // extra opBr appended, targeting this pc (-1 = none)
		want opcode
	}{
		{"pair-fuses", pair(), -1, opCmpBr},
		{"pair-head-target-still-fuses", pair(), 0, opCmpBr},
		{"pair-blocked-by-target-on-second", pair(), 1, opCmp},
		{"triple-fuses", triple(), -1, opLoadLoadAssert},
		{"triple-head-target-still-fuses", triple(), 0, opLoadLoadAssert},
		{"triple-blocked-by-target-on-second", triple(), 1, opLoad},
		{"triple-blocked-by-target-on-third", triple(), 2, opLoad},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code := tc.code
			if tc.br >= 0 {
				code = append(code, decodedInstr{op: opBr, dst: tc.br})
			}
			orig := append([]decodedInstr(nil), code...)
			fuseCode(code)
			if code[0].op != tc.want {
				t.Fatalf("head opcode after fusion = %v, want %v", code[0].op, tc.want)
			}
			// Layout preservation: fusion rewrites only the head slot; the
			// constituents keep their own slots so mid-sequence entry (and
			// pc-based branch targets anywhere) still see the original code.
			for pc := 1; pc < len(code); pc++ {
				if code[pc] != orig[pc] {
					t.Errorf("slot %d changed by fusion: %+v -> %+v", pc, orig[pc], code[pc])
				}
			}
		})
	}
}

// TestFuseCodeBlockedTailStillFusable: when a target blocks a triple's
// third slot, the pass may still fuse the shorter pair inside it if a
// pair rule matches the tail — but never across the blocked boundary.
// With load;load;assert there is no pair rule for load;load, so the
// whole window must stay unfused; this pins that no rule accidentally
// claims it.
func TestFuseCodeBlockedTailStillFusable(t *testing.T) {
	code := []decodedInstr{
		{op: opLoad, dst: 1, a: 0, imm: 8},
		{op: opLoad, dst: 2, a: 0, imm: 8},
		{op: opAssert, a: 1, b: 2},
		{op: opBr, dst: 2},
	}
	fuseCode(code)
	for pc, in := range code[:3] {
		if in.op != []opcode{opLoad, opLoad, opAssert}[pc] {
			t.Fatalf("slot %d fused to %s despite target on slot 2", pc, in.op)
		}
	}
}
