// Superinstruction fusion: the data-table-driven pass that rewrites a
// function's flat decoded code, collapsing hot opcode sequences into one
// dispatch each. The table below generalizes the hand-chosen fusions the
// first-generation compiler wired directly into decode (cmp+condbr, the
// DPMR load/load/assert and store/store patterns, addr-compute+memory-op)
// and extends them with the top unfused pairs/triples of the workloads'
// -opstats histograms (profile.go; aggregate dynamic shares over all four
// workloads × {golden, SDS} in the rule comments).
//
// Every fusion is layout-preserving: the rule rewrites only the head slot,
// and the constituents keep their own — now unreachable — slots, so pc
// assignment, branch targets, and the walker's view of the module are all
// unchanged. The fused executor cases (exec.go) replay each constituent's
// step/cycle/budget accounting in sequence, which is what keeps compiled
// Results bit-identical to the tree-walker.
//
// A sequence only fuses when no branch target lands on its second or
// third slot: control entering mid-pair must execute the original unfused
// tail. With today's IR that bitmap guard cannot fire — branch targets are
// always block starts, and a block's last instruction is a terminator or
// is followed by the synthetic fell-off guard, so no fusible sequence
// spans a block boundary — but the pass's own contract is over flat code,
// and the guard keeps it correct for any control layout (fusion_test.go
// exercises it directly).
package interp

// fusionRule is one entry of the fusion table: the unfused opcode
// sequence to match, an optional operand predicate, and the rewrite of
// the head slot.
type fusionRule struct {
	name  string
	ops   []opcode // unfused opcode sequence, len 2 or 3
	match func(code []decodedInstr, pc int) bool
	fuse  func(code []decodedInstr, pc int) decodedInstr
}

// fitsU16 reports whether every id fits a packed 16-bit imm2 field.
func fitsU16(ids ...int32) bool {
	for _, id := range ids {
		if id < 0 || id > 0xFFFF {
			return false
		}
	}
	return true
}

// nibbleWidths reports whether both memory-access widths pack into one
// byte as two nibbles.
func nibbleWidths(w1, w2 uint64) bool { return w1 < 16 && w2 < 16 }

// fusionRules is the fusion table, in match-priority order: triples
// before the pairs they extend, DPMR instrumentation patterns before
// generic ones. The dynamic-share annotations are the aggregate -opstats
// measurements that selected each rule.
var fusionRules = []fusionRule{
	{
		// load ; load ; assert — 5.6% of executed instructions: the checked
		// load every DPMR read lowers to (Table 2.6). Strictly shaped: the
		// assert compares exactly the two loads' distinct destinations.
		name: "load+load+assert",
		ops:  []opcode{opLoad, opLoad, opAssert},
		match: func(c []decodedInstr, pc int) bool {
			l1, l2, as := &c[pc], &c[pc+1], &c[pc+2]
			return as.a == l1.dst && as.b == l2.dst && l1.dst != l2.dst &&
				nibbleWidths(l1.imm, l2.imm)
		},
		fuse: func(c []decodedInstr, pc int) decodedInstr {
			d, l2 := c[pc], &c[pc+1]
			d.op = opLoadLoadAssert
			d.b = l2.a
			d.sub = uint8(d.imm) | uint8(l2.imm)<<4
			d.flags = l2.norm // norm holds load1's mode, flags load2's
			d.imm = uint64(uint32(l2.dst))
			return d
		},
	},
	{
		// const ; add ; br — 4.9%: the loop-increment tail (i = i + K,
		// back edge). imm2 packs the add destination (u16) and the branch
		// target pc (u32 at bit 32).
		name: "const+add+br",
		ops:  []opcode{opConst, opAdd, opBr},
		match: func(c []decodedInstr, pc int) bool {
			return fitsU16(c[pc+1].dst)
		},
		fuse: func(c []decodedInstr, pc int) decodedInstr {
			d, ad, br := c[pc], &c[pc+1], &c[pc+2]
			d.op = opConstAddBr
			d.a, d.b, d.norm = ad.a, ad.b, ad.norm
			d.imm2 = uint64(uint16(ad.dst)) | uint64(uint32(br.dst))<<32
			return d
		},
	},
	{
		// cmp ; condbr — 5.8%: the loop-header pair, a compare feeding the
		// conditional branch. imm/imm2 become the true/false arm pcs.
		name: "cmp+br",
		ops:  []opcode{opCmp, opCondBr},
		match: func(c []decodedInstr, pc int) bool {
			return c[pc+1].a == c[pc].dst
		},
		fuse: func(c []decodedInstr, pc int) decodedInstr {
			d, cbr := c[pc], &c[pc+1]
			d.op = opCmpBr
			d.imm = uint64(uint32(cbr.dst))
			d.imm2 = uint64(uint32(cbr.b))
			return d
		},
	},
	{
		// store ; store — 1.0% golden but the defining MDS/SDS replicated
		// write; widths pack into sub as two nibbles.
		name: "store+store",
		ops:  []opcode{opStore, opStore},
		match: func(c []decodedInstr, pc int) bool {
			return nibbleWidths(c[pc].imm, c[pc+1].imm)
		},
		fuse: func(c []decodedInstr, pc int) decodedInstr {
			d, s2 := c[pc], &c[pc+1]
			d.op = opStore2
			d.sub = uint8(d.imm) | uint8(s2.imm)<<4
			d.imm = uint64(uint32(s2.a))
			d.imm2 = uint64(uint32(s2.b))
			return d
		},
	},
	{
		// fieldaddr ; load — 3.4%: struct-field reads.
		name: "fieldaddr+load",
		ops:  []opcode{opFieldAddr, opLoad},
		match: func(c []decodedInstr, pc int) bool {
			return c[pc+1].a == c[pc].dst && c[pc+1].imm < 256
		},
		fuse: func(c []decodedInstr, pc int) decodedInstr {
			return fuseAddrLoad(c, pc, opFieldLoad)
		},
	},
	{
		// indexaddr ; load — 4.8%: array-element reads.
		name: "indexaddr+load",
		ops:  []opcode{opIndexAddr, opLoad},
		match: func(c []decodedInstr, pc int) bool {
			return c[pc+1].a == c[pc].dst && c[pc+1].imm < 256
		},
		fuse: func(c []decodedInstr, pc int) decodedInstr {
			return fuseAddrLoad(c, pc, opIndexLoad)
		},
	},
	{
		// fieldaddr ; store — struct-field writes.
		name: "fieldaddr+store",
		ops:  []opcode{opFieldAddr, opStore},
		match: func(c []decodedInstr, pc int) bool {
			return c[pc+1].a == c[pc].dst && c[pc+1].imm < 256
		},
		fuse: func(c []decodedInstr, pc int) decodedInstr {
			return fuseAddrStore(c, pc, opFieldStore)
		},
	},
	{
		// indexaddr ; store — array-element writes.
		name: "indexaddr+store",
		ops:  []opcode{opIndexAddr, opStore},
		match: func(c []decodedInstr, pc int) bool {
			return c[pc+1].a == c[pc].dst && c[pc+1].imm < 256
		},
		fuse: func(c []decodedInstr, pc int) decodedInstr {
			return fuseAddrStore(c, pc, opIndexStore)
		},
	},
	{
		// indexaddr ; indexaddr — 5.3%: SDS computes the app and replica
		// element addresses back to back. The second compute's registers
		// and stride pack into imm2 as four u16 fields.
		name: "indexaddr+indexaddr",
		ops:  []opcode{opIndexAddr, opIndexAddr},
		match: func(c []decodedInstr, pc int) bool {
			x := &c[pc+1]
			return fitsU16(x.dst, x.a, x.b) && x.imm < 1<<16
		},
		fuse: func(c []decodedInstr, pc int) decodedInstr {
			d, x := c[pc], &c[pc+1]
			d.op = opIndexAddr2
			d.imm2 = uint64(uint16(x.dst)) | uint64(uint16(x.a))<<16 |
				uint64(uint16(x.b))<<32 | x.imm<<48
			return d
		},
	},
	{
		// const ; add — 5.0%: increment/offset arithmetic against an
		// immediate. The executor writes the constant first and then reads
		// the add's operands from the frame, so the dependent and
		// independent shapes both replay exactly.
		name: "const+add",
		ops:  []opcode{opConst, opAdd},
		match: func(c []decodedInstr, pc int) bool {
			return fitsU16(c[pc+1].dst)
		},
		fuse: func(c []decodedInstr, pc int) decodedInstr {
			d, ad := c[pc], &c[pc+1]
			d.op = opConstAdd
			d.a, d.b, d.norm = ad.a, ad.b, ad.norm
			d.imm2 = uint64(uint16(ad.dst))
			return d
		},
	},
	{
		// const ; load — 4.7%: a materialized address (or an unrelated
		// constant) ahead of a load. sub/norm take the load's width and
		// normalization; a takes its pointer register; imm2 its destination.
		name: "const+load",
		ops:  []opcode{opConst, opLoad},
		match: func(c []decodedInstr, pc int) bool {
			return fitsU16(c[pc+1].dst) && c[pc+1].imm < 256
		},
		fuse: func(c []decodedInstr, pc int) decodedInstr {
			d, ld := c[pc], &c[pc+1]
			d.op = opConstLoad
			d.a = ld.a
			d.sub = uint8(ld.imm)
			d.norm = ld.norm
			d.imm2 = uint64(uint16(ld.dst))
			return d
		},
	},
	{
		// fmul64 ; fadd64 — 3.5%: the multiply-accumulate inner loops of
		// art and equake. The add's registers pack into imm2 as u16 fields;
		// operands are read from the frame after the product lands, so a
		// dependent add sees it exactly as the unfused sequence would.
		name: "fmul64+fadd64",
		ops:  []opcode{opFMul64, opFAdd64},
		match: func(c []decodedInstr, pc int) bool {
			x := &c[pc+1]
			return fitsU16(x.dst, x.a, x.b)
		},
		fuse: func(c []decodedInstr, pc int) decodedInstr {
			d, x := c[pc], &c[pc+1]
			d.op = opFMulAdd64
			d.imm2 = uint64(uint16(x.dst)) | uint64(uint16(x.a))<<16 |
				uint64(uint16(x.b))<<32
			return d
		},
	},
}

// fuseAddrLoad rewrites an addr-compute head into its fused-load form.
func fuseAddrLoad(c []decodedInstr, pc int, op opcode) decodedInstr {
	d, ld := c[pc], &c[pc+1]
	d.op = op
	d.sub = uint8(ld.imm)
	d.norm = ld.norm
	d.imm2 = uint64(uint32(ld.dst))
	return d
}

// fuseAddrStore rewrites an addr-compute head into its fused-store form.
func fuseAddrStore(c []decodedInstr, pc int, op opcode) decodedInstr {
	d, st := c[pc], &c[pc+1]
	d.op = op
	d.sub = uint8(st.imm)
	d.imm2 = uint64(uint32(st.b))
	return d
}

// fuseCode applies the fusion table to one function's flat code in place.
// Branch targets are collected first: a sequence whose second or third
// slot is a target must stay unfused, because control entering there
// executes the original tail instructions.
func fuseCode(code []decodedInstr) {
	isTarget := make([]bool, len(code))
	mark := func(pc int32) {
		if 0 <= int(pc) && int(pc) < len(code) {
			isTarget[pc] = true
		}
	}
	for i := range code {
		switch code[i].op {
		case opBr:
			mark(code[i].dst)
		case opCondBr:
			mark(code[i].dst)
			mark(code[i].b)
		}
	}
scan:
	for pc := 0; pc < len(code); pc++ {
		for ri := range fusionRules {
			r := &fusionRules[ri]
			if code[pc].op != r.ops[0] || pc+len(r.ops) > len(code) {
				continue
			}
			ok := true
			for k := 1; k < len(r.ops); k++ {
				if code[pc+k].op != r.ops[k] || isTarget[pc+k] {
					ok = false
					break
				}
			}
			if !ok || (r.match != nil && !r.match(code, pc)) {
				continue
			}
			code[pc] = r.fuse(code, pc)
			pc += len(r.ops) - 1
			continue scan
		}
	}
}
