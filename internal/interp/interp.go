// Package interp executes IR modules over the simulated address space.
// It is the runtime substrate for both untransformed ("golden"/"stdapp")
// and DPMR-transformed program variants, and implements the observable
// behaviours the paper's evaluation measures: normal exits, crashes
// (traps), DPMR detections, timeouts, program output, a deterministic
// cycle clock, and the time of first execution of injected fault code.
//
// # Concurrency
//
// A VM never mutates its module: instructions, blocks, registers, types,
// and global descriptors are only read during execution. All mutable run
// state — the address space, register files, PRNG, output stream, and the
// cycle/step clocks — lives in the VM (or on its Go stack). One frozen
// ir.Module may therefore back any number of VMs running concurrently,
// which is what the harness's parallel campaign engine relies on: each
// distinct (workload, site, variant) module is built once and shared
// read-only across all worker goroutines. Extern maps passed in Config
// must not be shared between concurrently running VMs unless their
// implementations are themselves stateless or synchronized (the extlib
// constructors return a fresh map per call).
package interp

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"dpmr/internal/failpt"
	"dpmr/internal/ir"
	"dpmr/internal/mem"
)

// ExitKind classifies how a program run ended.
type ExitKind uint8

// Exit kinds. ExitNormal covers both falling off main and explicit exit;
// the harness inspects Code to distinguish error-signalling exits
// (application-level natural detection, §3.6).
const (
	ExitNormal  ExitKind = iota + 1
	ExitTrap             // simulated hardware fault: the paper's signal exit
	ExitDetect           // DPMR detection (replica comparison mismatch)
	ExitTimeout          // exceeded the step budget (§3.6 timeout exits)
	ExitError            // harness/runtime configuration error
)

func (k ExitKind) String() string {
	switch k {
	case ExitNormal:
		return "normal"
	case ExitTrap:
		return "trap"
	case ExitDetect:
		return "dpmr-detect"
	case ExitTimeout:
		return "timeout"
	case ExitError:
		return "error"
	default:
		return "unknown"
	}
}

// Result describes one program run.
type Result struct {
	Kind       ExitKind
	Code       int64  // exit code for ExitNormal
	Reason     string // trap/detection/error detail
	Steps      uint64 // instructions executed
	Cycles     uint64 // deterministic cycle clock
	Output     []byte // program output stream
	FaultSeen  bool   // a FaultPoint executed ("successful fault injection")
	FaultCycle uint64 // cycle count at first FaultPoint execution
	Mem        mem.Stats
}

// Extern is a Go-implemented external function (§2.8). It receives raw
// argument scalars and returns a raw result. It may return a *mem.Trap, a
// *Detection, or an *ExitRequest to stop the program.
type Extern func(vm *VM, args []uint64) (uint64, error)

// Detection is returned by externs (and raised by Assert) when DPMR state
// comparison finds a mismatch.
type Detection struct{ Reason string }

func (d *Detection) Error() string { return "dpmr detection: " + d.Reason }

// ExitRequest terminates the program from inside an extern.
type ExitRequest struct{ Code int64 }

func (e *ExitRequest) Error() string { return fmt.Sprintf("exit(%d)", e.Code) }

// timeoutErr is an internal sentinel.
type timeoutErr struct{}

func (timeoutErr) Error() string { return "step budget exhausted" }

// Config configures a VM.
type Config struct {
	Mem       mem.Config
	StepLimit uint64 // 0 = effectively unlimited
	Seed      int64  // PRNG seed (RandInt instruction, rearrange-heap)
	Externs   map[string]Extern
	MaxDepth  int // call depth limit; 0 = default 4096
	// Args are command-line arguments (argv[1:]; argv[0] is the module
	// name), materialized on the heap when main has an (argc, argv)
	// signature.
	Args []string
	// Trace, when non-nil, receives one line per executed instruction
	// ("cycle fn.block: instr"). Intended for debugging small programs;
	// tracing a workload produces megabytes.
	Trace io.Writer
	// TraceLimit caps traced instructions (0 = unlimited).
	TraceLimit uint64
	// OpStats, when non-nil, accumulates the executed opcode-pair/triple
	// histogram that drives superinstruction selection (profile.go). Like
	// Trace, it routes the run through the tree-walking loop so the
	// compiled dispatch never pays for the hook.
	OpStats *OpStats
	// Prog, when non-nil, is the module's compiled form (Compile): the VM
	// executes the pre-decoded register bytecode instead of tree-walking
	// the IR. Results — cycles, traps, detections, RNG sequence, output —
	// are bit-identical either way. Prog must have been compiled from the
	// same *ir.Module the VM runs. When Trace is also set, the VM uses the
	// tree-walking loop, whose per-instruction hook produces the exact
	// trace format; the compiled loop keeps that check out of its fast
	// path entirely.
	Prog *Program
	// SpacePool, when non-nil, supplies the VM's address space and
	// receives it back when Run completes (after memory statistics are
	// captured). Pooled spaces are Reset to a pristine state, so results
	// are identical to fresh allocation; the pool only removes the
	// per-trial cost of allocating and zeroing multi-megabyte spaces.
	// SpacePool's config must match Mem.
	SpacePool *mem.Pool
	// Yield, when non-nil, is invoked before every load, store, atomic,
	// and fence — the cooperative scheduling points of the interleaving
	// scheduler (internal/sched). Like Trace and OpStats it routes the
	// run through the tree-walking loop, so the compiled dispatch never
	// pays for the hook; the walker stays the oracle for concurrent
	// execution.
	Yield func()
	// ThreadID labels this VM's accesses in the shared Space's trace
	// recorder (see mem.TraceRec). Only meaningful under a scheduler.
	ThreadID int
	// SharedSpace, when non-nil, is an externally owned address space the
	// VM joins instead of allocating its own: globals are not re-created
	// (the primary VM of the scheduler group already laid them out and
	// shares its symbol tables via SharedGlobals), and the space is not
	// pooled or released by Run. Secondary VMs of a concurrent group set
	// this together with a per-thread stack window.
	SharedSpace *mem.Space
	// SharedGlobals maps module-order global indices to their addresses
	// in SharedSpace, as built by the primary VM (GlobalTable).
	SharedGlobals []uint64
}

// Instruction cycle costs beyond the base cost of 1.
const (
	costLoadBase  = 1
	costStoreBase = 1
	costBranch    = 2
	costCall      = 6
	costRet       = 3
	costMallocOp  = 30
	costFreeOp    = 20
	costAlloca    = 4
	costDiv       = 10
	costFloatOp   = 3
	costOutput    = 20
	costAssert    = 2
	costIntrinsic = 5
	costFence     = 1
)

// YieldStallSite is the interpreter-layer failpoint: a stall scheduled
// here delays the cooperative yield path (the handover between VMs of a
// concurrent group), drilling scheduler robustness against slow
// threads. Evaluated only when a Yield hook is installed, so
// single-threaded execution never pays for it.
var YieldStallSite = failpt.Register("interp/yield-stall", failpt.KindStall)

// VM is one executing program instance.
type VM struct {
	Module *ir.Module
	Space  *mem.Space

	cfg     Config
	rng     *rand.Rand
	output  []byte
	steps   uint64
	cycles  uint64
	limit   uint64
	depth   int
	maxDep  int
	globals map[string]uint64

	faultSeen  bool
	faultCycle uint64

	funcAddr map[string]uint64
	addrFunc map[uint64]*ir.Func

	// Compiled-execution state: the bound program (nil = tree-walk), the
	// per-module-order global addresses its GlobalAddr instructions index,
	// and the register/argument arenas its call frames are carved from.
	prog        *Program
	globalAddrs []uint64
	regStack    []uint64
	argStack    []uint64

	// Indirect-call inline caches, indexed by each opCallIndirect's imm2
	// slot: a monomorphic site resolves its target with one tag compare.
	// Per-VM because the Program is shared read-only across concurrent
	// VMs; allocated lazily on the first indirect call (exec.go).
	icTags  []uint64
	icFuncs []*compiledFunc
}

const funcAddrBase = 0x7F00_0000_0000_0000

// funcAddrOf is the synthetic address of the module's i-th function. The
// compiler and the VM derive function addresses from the same formula, so
// a Program's precomputed addresses match every VM of its module.
func funcAddrOf(i int) uint64 { return uint64(funcAddrBase) + uint64(i)*16 }

// NewVM builds a VM for module m, allocating and initializing globals.
func NewVM(m *ir.Module, cfg Config) (*VM, error) {
	limit := cfg.StepLimit
	if limit == 0 {
		limit = math.MaxUint64
	}
	maxDep := cfg.MaxDepth
	if maxDep == 0 {
		maxDep = 4096
	}
	var space *mem.Space
	switch {
	case cfg.SharedSpace != nil:
		if cfg.SpacePool != nil {
			return nil, fmt.Errorf("interp: Config.SharedSpace and Config.SpacePool are mutually exclusive")
		}
		space = cfg.SharedSpace
	case cfg.SpacePool != nil:
		if got := cfg.SpacePool.Config(); got != cfg.Mem.WithDefaults() {
			return nil, fmt.Errorf("interp: Config.SpacePool built for %+v, but Config.Mem wants %+v", got, cfg.Mem.WithDefaults())
		}
		space = cfg.SpacePool.Get()
	default:
		space = mem.NewSpace(cfg.Mem)
	}
	// On setup failure a pooled space goes straight back to the pool.
	fail := func(err error) (*VM, error) {
		if cfg.SpacePool != nil {
			cfg.SpacePool.Put(space)
		}
		return nil, err
	}
	vm := &VM{
		Module: m,
		Space:  space,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		limit:  limit,
		maxDep: maxDep,
	}
	if cfg.Prog != nil {
		if cfg.Prog.mod != m {
			return fail(fmt.Errorf("interp: Config.Prog was compiled from module %q, not %q", cfg.Prog.mod.Name, m.Name))
		}
		if cfg.Trace == nil && cfg.OpStats == nil && cfg.Yield == nil {
			vm.prog = cfg.Prog
		}
	}
	if vm.prog == nil {
		// The per-VM symbol maps back the tree-walker's FuncAddr /
		// GlobalAddr / indirect-call lookups. A program-bound VM skips
		// building them: the Program carries shared, immutable equivalents
		// (byAddr, globalIdx), so the per-trial setup cost disappears.
		vm.globals = make(map[string]uint64, len(m.Globals))
		vm.funcAddr = make(map[string]uint64, len(m.Funcs))
		vm.addrFunc = make(map[uint64]*ir.Func, len(m.Funcs))
		for i, f := range m.Funcs {
			a := funcAddrOf(i)
			vm.funcAddr[f.Name] = a
			vm.addrFunc[a] = f
		}
	}
	if cfg.SharedGlobals != nil {
		// A secondary VM of a concurrent group: the primary already laid
		// the globals out in the shared space and initialized them; adopt
		// its address table instead of allocating a second copy.
		if len(cfg.SharedGlobals) != len(m.Globals) {
			return fail(fmt.Errorf("interp: SharedGlobals has %d entries, module has %d globals", len(cfg.SharedGlobals), len(m.Globals)))
		}
		vm.globalAddrs = cfg.SharedGlobals
		if vm.globals != nil {
			for i, g := range m.Globals {
				vm.globals[g.Name] = vm.globalAddrs[i]
			}
		}
		return vm, nil
	}
	// Module-order global addresses: the canonical table (compiled
	// GlobalAddr instructions index it directly; the name map, when built,
	// mirrors it).
	vm.globalAddrs = make([]uint64, len(m.Globals))
	for i, g := range m.Globals {
		addr, err := vm.Space.AllocGlobal(g.Elem.Size())
		if err != nil {
			return fail(fmt.Errorf("interp: global %s: %w", g.Name, err))
		}
		vm.globalAddrs[i] = addr
		if vm.globals != nil {
			vm.globals[g.Name] = addr
		}
	}
	// Apply initial images and pointer fixups after all addresses exist.
	for gi, g := range m.Globals {
		addr := vm.globalAddrs[gi]
		if g.Init != nil {
			if len(g.Init) != g.Elem.Size() {
				return fail(fmt.Errorf("interp: global %s init size %d, want %d", g.Name, len(g.Init), g.Elem.Size()))
			}
			if trap := vm.Space.WriteBytes(addr, g.Init); trap != nil {
				return fail(fmt.Errorf("interp: global %s init: %w", g.Name, trap))
			}
		}
		for _, ref := range g.Refs {
			var target uint64
			switch {
			case ref.Global != "":
				target, _ = vm.GlobalAddr(ref.Global)
			case ref.Func != "":
				target, _ = vm.FuncAddr(ref.Func)
			}
			if target == 0 {
				return fail(fmt.Errorf("interp: global %s ref to unknown symbol", g.Name))
			}
			if trap := vm.Space.Store(addr+uint64(ref.Offset), 8, target); trap != nil {
				return fail(fmt.Errorf("interp: global %s ref fixup: %w", g.Name, trap))
			}
		}
	}
	return vm, nil
}

// Run executes main() and returns the run result. It never returns an
// error for program-level failures — those are encoded in the Result.
func Run(m *ir.Module, cfg Config) *Result {
	vm, err := NewVM(m, cfg)
	if err != nil {
		return &Result{Kind: ExitError, Reason: err.Error()}
	}
	return vm.Run()
}

// Run executes main() on an initialized VM. With Config.SpacePool set,
// the VM's address space is recycled when Run returns; the VM must not be
// used again.
func (vm *VM) Run() *Result {
	release := func() {
		if vm.cfg.SpacePool != nil {
			vm.cfg.SpacePool.Put(vm.Space)
			vm.Space = nil
		}
	}
	mainFn := vm.Module.Func("main")
	res := &Result{}
	if mainFn == nil {
		res.Kind = ExitError
		res.Reason = "no main function"
		release()
		return res
	}
	args, err := vm.mainArgs(mainFn)
	if err != nil {
		res.Kind = ExitError
		res.Reason = err.Error()
		release()
		return res
	}
	res = vm.RunEntry(mainFn, args)
	// The run is over and its statistics are captured: recycle the space.
	release()
	return res
}

// RunEntry executes fn(args) on an initialized VM and classifies the
// outcome exactly like Run, without the main-specific setup or space
// recycling. The interleaving scheduler uses it to run worker-thread
// entry points on secondary VMs of a concurrent group.
func (vm *VM) RunEntry(fn *ir.Func, args []uint64) *Result {
	res := &Result{}
	ret, err := vm.Call(fn, args)
	switch e := err.(type) {
	case nil:
		res.Kind = ExitNormal
		if fn.Sig.Ret.Kind() != ir.KindVoid {
			res.Code = int64(ret)
		}
	case *mem.Trap:
		res.Kind = ExitTrap
		res.Reason = e.Reason
	case *Detection:
		res.Kind = ExitDetect
		res.Reason = e.Reason
	case *ExitRequest:
		res.Kind = ExitNormal
		res.Code = e.Code
	case timeoutErr:
		res.Kind = ExitTimeout
		res.Reason = "timeout"
	default:
		res.Kind = ExitError
		res.Reason = err.Error()
	}
	res.Steps = vm.steps
	res.Cycles = vm.cycles
	res.Output = vm.output
	res.FaultSeen = vm.faultSeen
	res.FaultCycle = vm.faultCycle
	res.Mem = vm.Space.Stats()
	return res
}

// mainArgs materializes argc/argv for main(argc, argv)-style entry points
// (empty for parameterless main). argv[0] is the module name.
func (vm *VM) mainArgs(mainFn *ir.Func) ([]uint64, error) {
	switch len(mainFn.Params) {
	case 0:
		return nil, nil
	case 2:
		argvStrings := append([]string{vm.Module.Name}, vm.cfg.Args...)
		argc := uint64(len(argvStrings))
		arr, trap := vm.Space.Malloc(argc * 8)
		if trap != nil {
			return nil, trap
		}
		for i, s := range argvStrings {
			buf, trap := vm.Space.Malloc(uint64(len(s)) + 1)
			if trap != nil {
				return nil, trap
			}
			if trap := vm.Space.WriteBytes(buf, append([]byte(s), 0)); trap != nil {
				return nil, trap
			}
			if trap := vm.Space.Store(arr+uint64(i)*8, 8, buf); trap != nil {
				return nil, trap
			}
		}
		return []uint64{argc, arr}, nil
	default:
		return nil, fmt.Errorf("unsupported main signature with %d params", len(mainFn.Params))
	}
}

// Cycles returns the current cycle clock.
func (vm *VM) Cycles() uint64 { return vm.cycles }

// Charge adds cycles to the clock (used by extern implementations).
func (vm *VM) Charge(c uint64) { vm.cycles += c }

// Rand exposes the deterministic PRNG to externs.
func (vm *VM) Rand() *rand.Rand { return vm.rng }

// AppendOutput adds bytes to the program output stream.
func (vm *VM) AppendOutput(b []byte) { vm.output = append(vm.output, b...) }

// GlobalAddr returns the runtime address of a global.
func (vm *VM) GlobalAddr(name string) (uint64, bool) {
	if vm.prog != nil {
		i, ok := vm.prog.globalIdx[name]
		if !ok {
			return 0, false
		}
		return vm.globalAddrs[i], true
	}
	a, ok := vm.globals[name]
	return a, ok
}

// FuncByAddr resolves a function pointer value.
func (vm *VM) FuncByAddr(addr uint64) (*ir.Func, bool) {
	if vm.prog != nil {
		cf, ok := vm.prog.byAddr[addr]
		if !ok {
			return nil, false
		}
		return cf.fn, true
	}
	f, ok := vm.addrFunc[addr]
	return f, ok
}

// FuncAddr returns the synthetic address of a function.
func (vm *VM) FuncAddr(name string) (uint64, bool) {
	if vm.prog != nil {
		f := vm.Module.Func(name)
		if f == nil {
			return 0, false
		}
		return vm.prog.byFn[f].addr, true
	}
	a, ok := vm.funcAddr[name]
	return a, ok
}

// Call invokes fn with raw argument scalars. Used for main and by extern
// wrappers that need to call back into IR (e.g. qsort's comparator).
// When the VM has a compiled program bound, internal functions execute
// their pre-decoded bytecode; otherwise (and for any function outside the
// program's module) the tree-walking loop below runs.
func (vm *VM) Call(fn *ir.Func, args []uint64) (uint64, error) {
	if fn.External {
		impl, ok := vm.cfg.Externs[fn.Name]
		if !ok {
			return 0, fmt.Errorf("unresolved external function %s", fn.Name)
		}
		if len(args) != len(fn.Params) {
			return 0, fmt.Errorf("call of %s with %d args, want %d", fn.Name, len(args), len(fn.Params))
		}
		vm.cycles += costCall
		return impl(vm, args)
	}
	if vm.prog != nil {
		if cf := vm.prog.byFn[fn]; cf != nil {
			return vm.execCompiled(cf, args)
		}
	}
	if vm.depth >= vm.maxDep {
		return 0, &mem.Trap{Reason: "call stack depth exceeded"}
	}
	if len(args) != len(fn.Params) {
		return 0, fmt.Errorf("call of %s with %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	vm.depth++
	mark := vm.Space.PushFrame()
	defer func() {
		vm.Space.PopFrame(mark)
		vm.depth--
	}()

	regs := make([]uint64, fn.NumRegs())
	for i, p := range fn.Params {
		regs[p.ID] = args[i]
	}
	block := fn.Entry()
	ip := 0
	// Within-block opcode window for OpStats: reset to opInvalid at every
	// block transition, because fusion (fusion.go) only ever reaches across
	// instructions that are adjacent inside one block.
	prev1, prev2 := opInvalid, opInvalid
	for {
		if ip >= len(block.Instrs) {
			return 0, fmt.Errorf("fell off block %s in %s", block.Name, fn.Name)
		}
		in := block.Instrs[ip]
		vm.steps++
		vm.cycles++
		if vm.steps > vm.limit {
			return 0, timeoutErr{}
		}
		if vm.cfg.Trace != nil && (vm.cfg.TraceLimit == 0 || vm.steps <= vm.cfg.TraceLimit) {
			fmt.Fprintf(vm.cfg.Trace, "%10d @%s.%s: %s\n", vm.cycles, fn.Name, block.Name, in)
		}
		if s := vm.cfg.OpStats; s != nil {
			op := opcodeOfInstr(in)
			s.record(prev2, prev1, op)
			prev2, prev1 = prev1, op
		}
		switch i := in.(type) {
		case *ir.ConstInt:
			regs[i.Dst.ID] = normInt(uint64(i.Val), i.Dst.Type)
		case *ir.ConstFloat:
			regs[i.Dst.ID] = floatBits(i.Val, i.Dst.Type)
		case *ir.ConstNull:
			regs[i.Dst.ID] = 0
		case *ir.Move:
			regs[i.Dst.ID] = regs[i.Src.ID]
		case *ir.BinOp:
			v, err := vm.binop(i, regs[i.X.ID], regs[i.Y.ID])
			if err != nil {
				return 0, err
			}
			regs[i.Dst.ID] = v
		case *ir.Cmp:
			regs[i.Dst.ID] = cmp(i, regs[i.X.ID], regs[i.Y.ID])
		case *ir.Convert:
			regs[i.Dst.ID] = convert(regs[i.Src.ID], i.Src.Type, i.Dst.Type)
		case *ir.Alloc:
			addr, err := vm.alloc(i, regs)
			if err != nil {
				return 0, err
			}
			regs[i.Dst.ID] = addr
		case *ir.Free:
			vm.cycles += costFreeOp
			if trap := vm.Space.Free(regs[i.Ptr.ID]); trap != nil {
				return 0, trap
			}
		case *ir.Load:
			vm.yield()
			addr := regs[i.Ptr.ID]
			n := i.Dst.Type.Size()
			vm.cycles += costLoadBase + vm.Space.AccessCost(addr)
			raw, trap := vm.Space.Load(addr, n)
			if trap != nil {
				return 0, trap
			}
			regs[i.Dst.ID] = normLoaded(raw, i.Dst.Type)
		case *ir.Store:
			vm.yield()
			addr := regs[i.Ptr.ID]
			n := i.Val.Type.Size()
			vm.cycles += costStoreBase + vm.Space.AccessCost(addr)
			if trap := vm.Space.Store(addr, n, regs[i.Val.ID]); trap != nil {
				return 0, trap
			}
		case *ir.FieldAddr:
			off, err := fieldOffset(i.Ptr.Elem(), i.Field)
			if err != nil {
				return 0, err
			}
			regs[i.Dst.ID] = regs[i.Ptr.ID] + uint64(off)
		case *ir.IndexAddr:
			stride := Stride(i.Ptr.Elem())
			idx := int64(regs[i.Index.ID])
			regs[i.Dst.ID] = uint64(int64(regs[i.Ptr.ID]) + idx*int64(stride))
		case *ir.Bitcast:
			regs[i.Dst.ID] = regs[i.Src.ID]
		case *ir.PtrToInt:
			regs[i.Dst.ID] = normInt(regs[i.Src.ID], i.Dst.Type)
		case *ir.IntToPtr:
			regs[i.Dst.ID] = regs[i.Src.ID]
		case *ir.FuncAddr:
			// Resolve through the prog-aware accessors, not the raw maps:
			// a program-bound VM tree-walking a foreign function (the
			// documented fallback) has no per-VM symbol maps. A miss reads
			// as address 0, as it always has.
			a, _ := vm.FuncAddr(i.Fn)
			regs[i.Dst.ID] = a
		case *ir.GlobalAddr:
			a, _ := vm.GlobalAddr(i.G)
			regs[i.Dst.ID] = a
		case *ir.Call:
			vm.cycles += costCall
			var callee *ir.Func
			if i.Callee != "" {
				callee = vm.Module.Func(i.Callee)
			} else {
				fp := regs[i.CalleePtr.ID]
				f, ok := vm.FuncByAddr(fp)
				if !ok {
					return 0, &mem.Trap{Reason: "indirect call through invalid function pointer", Addr: fp}
				}
				callee = f
			}
			callArgs := make([]uint64, len(i.Args))
			for k, a := range i.Args {
				callArgs[k] = regs[a.ID]
			}
			rv, err := vm.Call(callee, callArgs)
			if err != nil {
				return 0, err
			}
			if i.Dst != nil {
				regs[i.Dst.ID] = rv
			}
		case *ir.Ret:
			vm.cycles += costRet
			if i.Val != nil {
				return regs[i.Val.ID], nil
			}
			return 0, nil
		case *ir.Br:
			vm.cycles += costBranch
			block = i.Target
			ip = 0
			prev1, prev2 = opInvalid, opInvalid
			continue
		case *ir.CondBr:
			vm.cycles += costBranch
			if regs[i.Cond.ID] != 0 {
				block = i.True
			} else {
				block = i.False
			}
			ip = 0
			prev1, prev2 = opInvalid, opInvalid
			continue
		case *ir.Assert:
			vm.cycles += costAssert
			if regs[i.X.ID] != regs[i.Y.ID] {
				return 0, &Detection{Reason: fmt.Sprintf("replica mismatch in %s: %#x != %#x", fn.Name, regs[i.X.ID], regs[i.Y.ID])}
			}
		case *ir.FaultPoint:
			if !vm.faultSeen {
				vm.faultSeen = true
				vm.faultCycle = vm.cycles
			}
		case *ir.RandInt:
			vm.cycles += costIntrinsic
			v, err := randInRange(vm.rng, i.Lo, i.Hi)
			if err != nil {
				return 0, err
			}
			regs[i.Dst.ID] = v
		case *ir.HeapBufSize:
			vm.cycles += costIntrinsic
			size, trap := vm.Space.HeapPayloadSize(regs[i.Ptr.ID])
			if trap != nil {
				return 0, trap
			}
			regs[i.Dst.ID] = size
		case *ir.Output:
			vm.cycles += costOutput
			vm.emitOutput(i, regs[i.Val.ID])
		case *ir.AtomicRMW:
			vm.yield()
			raddr := uint64(0)
			if i.RPtr != nil {
				raddr = regs[i.RPtr.ID]
			}
			old, err := vm.atomicRMW(i.Op, regs[i.Ptr.ID], regs[i.Val.ID],
				i.Dst.Type.Size(), normModeOf(i.Dst.Type), raddr, i.RPtr != nil)
			if err != nil {
				return 0, err
			}
			regs[i.Dst.ID] = old
		case *ir.AtomicCAS:
			vm.yield()
			raddr := uint64(0)
			if i.RPtr != nil {
				raddr = regs[i.RPtr.ID]
			}
			old, err := vm.atomicCAS(regs[i.Ptr.ID], regs[i.Old.ID], regs[i.New.ID],
				i.Dst.Type.Size(), normModeOf(i.Dst.Type), raddr, i.RPtr != nil)
			if err != nil {
				return 0, err
			}
			regs[i.Dst.ID] = old
		case *ir.Fence:
			vm.yield()
			vm.cycles += costFence
		case *ir.Exit:
			code := int64(0)
			if i.Val != nil {
				code = int64(regs[i.Val.ID])
			}
			return 0, &ExitRequest{Code: code}
		default:
			return 0, fmt.Errorf("unknown instruction %T in %s", in, fn.Name)
		}
		ip++
	}
}

func (vm *VM) alloc(i *ir.Alloc, regs []uint64) (uint64, error) {
	count := int64(1)
	if i.Count != nil {
		count = int64(regs[i.Count.ID])
	}
	return vm.allocMem(i.Kind, count, uint64(PaddedSize(i.Elem)))
}

// allocMem is the allocation path shared by the tree-walker and the
// compiled loop: identical count validation, cycle charges, and traps.
func (vm *VM) allocMem(kind ir.AllocKind, count int64, elemSize uint64) (uint64, error) {
	if count < 0 {
		return 0, &mem.Trap{Reason: "negative allocation count"}
	}
	size := uint64(count) * elemSize
	if kind == ir.AllocHeap {
		vm.cycles += costMallocOp
		addr, trap := vm.Space.Malloc(size)
		if trap != nil {
			return 0, trap
		}
		return addr, nil
	}
	vm.cycles += costAlloca
	addr, trap := vm.Space.Alloca(size)
	if trap != nil {
		return 0, trap
	}
	return addr, nil
}

// yield hands control to the interleaving scheduler at a cooperative
// scheduling point. No-op (one nil check) outside concurrent execution.
func (vm *VM) yield() {
	if vm.cfg.Yield == nil {
		return
	}
	if act := failpt.Eval(YieldStallSite); act != nil {
		act.Sleep()
	}
	vm.cfg.Yield()
}

// GlobalTable exposes the module-order global address table, which the
// scheduler hands to secondary VMs joining this VM's address space
// (Config.SharedGlobals).
func (vm *VM) GlobalTable() []uint64 { return vm.globalAddrs }

// atomicCombine evaluates an atomic read-modify-write's combining
// function on the value read.
func atomicCombine(op ir.AtomicOp, old, val uint64) uint64 {
	switch op {
	case ir.AtomicAdd:
		return old + val
	case ir.AtomicAnd:
		return old & val
	case ir.AtomicOr:
		return old | val
	case ir.AtomicXor:
		return old ^ val
	default: // AtomicXchg
		return val
	}
}

// atomicRMW is the atomic read-modify-write path shared by the
// tree-walker and the compiled loop: identical cycle charges, traps,
// and replica handling, so compiled and reference execution stay
// bit-identical. The whole operation — including the replica update and
// check when bound — is one indivisible step: the caller yields before
// it, never inside. A replica mismatch on the value read is a DPMR
// detection fused into the atomic (see ir.AtomicRMW).
func (vm *VM) atomicRMW(op ir.AtomicOp, addr, val uint64, n int, mode uint8, raddr uint64, replica bool) (uint64, error) {
	vm.cycles += costLoadBase + costStoreBase + vm.Space.AccessCost(addr)
	raw, trap := vm.Space.Load(addr, n)
	if trap != nil {
		return 0, trap
	}
	old := normReg(raw, mode)
	if trap := vm.Space.Store(addr, n, atomicCombine(op, old, val)); trap != nil {
		return 0, trap
	}
	if replica {
		vm.cycles += costLoadBase + costStoreBase + costAssert + vm.Space.AccessCost(raddr)
		rraw, trap := vm.Space.Load(raddr, n)
		if trap != nil {
			return 0, trap
		}
		rold := normReg(rraw, mode)
		if rold != old {
			return 0, &Detection{Reason: fmt.Sprintf("atomic replica mismatch: %#x != %#x", old, rold)}
		}
		if trap := vm.Space.Store(raddr, n, atomicCombine(op, rold, val)); trap != nil {
			return 0, trap
		}
	}
	return old, nil
}

// atomicCAS is the compare-and-swap path shared by both loops; see
// atomicRMW for the replica semantics.
func (vm *VM) atomicCAS(addr, oldv, newv uint64, n int, mode uint8, raddr uint64, replica bool) (uint64, error) {
	vm.cycles += costLoadBase + costStoreBase + vm.Space.AccessCost(addr)
	raw, trap := vm.Space.Load(addr, n)
	if trap != nil {
		return 0, trap
	}
	cur := normReg(raw, mode)
	if cur == oldv {
		if trap := vm.Space.Store(addr, n, newv); trap != nil {
			return 0, trap
		}
	}
	if replica {
		vm.cycles += costLoadBase + costStoreBase + costAssert + vm.Space.AccessCost(raddr)
		rraw, trap := vm.Space.Load(raddr, n)
		if trap != nil {
			return 0, trap
		}
		rcur := normReg(rraw, mode)
		if rcur != cur {
			return 0, &Detection{Reason: fmt.Sprintf("atomic replica mismatch: %#x != %#x", cur, rcur)}
		}
		if rcur == oldv {
			if trap := vm.Space.Store(raddr, n, newv); trap != nil {
				return 0, trap
			}
		}
	}
	return cur, nil
}

func (vm *VM) emitOutput(i *ir.Output, raw uint64) {
	vm.emitOutputRaw(i.Mode, isF32(i.Val.Type), raw)
}

// emitOutputRaw formats raw onto the output stream; shared by both loops.
func (vm *VM) emitOutputRaw(mode ir.OutputMode, f32 bool, raw uint64) {
	switch mode {
	case ir.OutInt:
		vm.output = strconv.AppendInt(vm.output, int64(raw), 10)
		vm.output = append(vm.output, '\n')
	case ir.OutFloat:
		v := bitsToFloatF(raw, f32)
		vm.output = strconv.AppendFloat(vm.output, v, 'g', 6, 64)
		vm.output = append(vm.output, '\n')
	case ir.OutByte:
		vm.output = append(vm.output, byte(raw))
	}
}

// randInRange draws a uniform integer in [lo, hi]. The common case (a
// span representable as a positive int64) must consume exactly one Int63n
// call — recorded cycle counts and rearrange-heap layouts depend on the
// draw sequence. The degenerate cases, which previously panicked inside
// math/rand, are guarded: an empty range is a runtime error (and rejected
// by ir.Verify), and a span of 2^63 values or more — where hi-lo+1
// overflows int64 — draws from the full-width generator instead.
func randInRange(rng *rand.Rand, lo, hi int64) (uint64, error) {
	if hi < lo {
		return 0, fmt.Errorf("randint with empty range [%d, %d]", lo, hi)
	}
	if span := hi - lo + 1; span > 0 {
		return uint64(lo + rng.Int63n(span)), nil
	}
	v := rng.Uint64()
	if size := uint64(hi) - uint64(lo) + 1; size != 0 {
		v %= size
	}
	return uint64(lo) + v, nil
}

// floatBinScalar evaluates a floating-point binary operation on raw
// register bits; shared by both loops. An out-of-range BinKind produces
// 0.0, matching the tree-walker's historical fall-through.
func floatBinScalar(op ir.BinKind, x, y uint64, xf32, yf32, df32 bool) uint64 {
	a := bitsToFloatF(x, xf32)
	b := bitsToFloatF(y, yf32)
	var r float64
	switch op {
	case ir.OpFAdd:
		r = a + b
	case ir.OpFSub:
		r = a - b
	case ir.OpFMul:
		r = a * b
	case ir.OpFDiv:
		r = a / b
	}
	return floatBitsF(r, df32)
}

func (vm *VM) binop(i *ir.BinOp, x, y uint64) (uint64, error) {
	t := i.Dst.Type
	if i.Op.IsFloat() {
		vm.cycles += costFloatOp
		return floatBinScalar(i.Op, x, y, isF32(i.X.Type), isF32(i.Y.Type), isF32(t)), nil
	}
	width := uint(t.Size() * 8)
	switch i.Op {
	case ir.OpAdd:
		return normInt(x+y, t), nil
	case ir.OpSub:
		return normInt(x-y, t), nil
	case ir.OpMul:
		return normInt(x*y, t), nil
	case ir.OpSDiv:
		vm.cycles += costDiv
		if y == 0 {
			return 0, &mem.Trap{Reason: "integer division by zero"}
		}
		return normInt(uint64(int64(x)/int64(y)), t), nil
	case ir.OpUDiv:
		vm.cycles += costDiv
		if maskTo(y, width) == 0 {
			return 0, &mem.Trap{Reason: "integer division by zero"}
		}
		return normInt(maskTo(x, width)/maskTo(y, width), t), nil
	case ir.OpSRem:
		vm.cycles += costDiv
		if y == 0 {
			return 0, &mem.Trap{Reason: "integer division by zero"}
		}
		return normInt(uint64(int64(x)%int64(y)), t), nil
	case ir.OpURem:
		vm.cycles += costDiv
		if maskTo(y, width) == 0 {
			return 0, &mem.Trap{Reason: "integer division by zero"}
		}
		return normInt(maskTo(x, width)%maskTo(y, width), t), nil
	case ir.OpAnd:
		return normInt(x&y, t), nil
	case ir.OpOr:
		return normInt(x|y, t), nil
	case ir.OpXor:
		return normInt(x^y, t), nil
	case ir.OpShl:
		return normInt(x<<(y&63), t), nil
	case ir.OpLShr:
		return normInt(maskTo(x, width)>>(y&63), t), nil
	case ir.OpAShr:
		return normInt(uint64(int64(x)>>(y&63)), t), nil
	}
	return 0, fmt.Errorf("unknown binop %v", i.Op)
}

func cmp(i *ir.Cmp, x, y uint64) uint64 {
	return cmpScalar(i.Op, x, y, isF32(i.X.Type), isF32(i.Y.Type))
}

// cmpScalar evaluates a comparison predicate on raw register bits; shared
// by both loops. An out-of-range CmpKind yields 0, matching the
// tree-walker's historical fall-through.
func cmpScalar(op ir.CmpKind, x, y uint64, xf32, yf32 bool) uint64 {
	var b bool
	switch op {
	case ir.CmpEQ:
		b = x == y
	case ir.CmpNE:
		b = x != y
	case ir.CmpSLT:
		b = int64(x) < int64(y)
	case ir.CmpSLE:
		b = int64(x) <= int64(y)
	case ir.CmpSGT:
		b = int64(x) > int64(y)
	case ir.CmpSGE:
		b = int64(x) >= int64(y)
	case ir.CmpULT:
		b = x < y
	case ir.CmpULE:
		b = x <= y
	case ir.CmpUGT:
		b = x > y
	case ir.CmpUGE:
		b = x >= y
	default:
		a := bitsToFloatF(x, xf32)
		c := bitsToFloatF(y, yf32)
		switch op {
		case ir.CmpFEQ:
			b = a == c
		case ir.CmpFNE:
			b = a != c
		case ir.CmpFLT:
			b = a < c
		case ir.CmpFLE:
			b = a <= c
		case ir.CmpFGT:
			b = a > c
		case ir.CmpFGE:
			b = a >= c
		}
	}
	if b {
		return 1
	}
	return 0
}

func convert(v uint64, from, to ir.Type) uint64 {
	switch {
	case from.Kind() == ir.KindInt && to.Kind() == ir.KindInt:
		return normInt(v, to)
	case from.Kind() == ir.KindInt && to.Kind() == ir.KindFloat:
		return floatBits(float64(int64(v)), to)
	case from.Kind() == ir.KindFloat && to.Kind() == ir.KindInt:
		return normInt(uint64(int64(bitsToFloat(v, from))), to)
	case from.Kind() == ir.KindFloat && to.Kind() == ir.KindFloat:
		return floatBits(bitsToFloat(v, from), to)
	}
	return v
}

// normInt sign-extends v to the canonical 64-bit register representation
// of integer type t.
func normInt(v uint64, t ir.Type) uint64 {
	return normReg(v, normModeOf(t))
}

// normModeOf reduces a destination type to the normalization mode the
// compiled bytecode stores per instruction: the narrow integer width to
// sign-extend from, or 0 for the identity (i64, pointers, floats).
func normModeOf(t ir.Type) uint8 {
	it, ok := t.(*ir.IntType)
	if !ok {
		return 0
	}
	switch it.Bits {
	case 1, 8, 16, 32:
		return uint8(it.Bits)
	default:
		return 0
	}
}

// normReg applies a precomputed normalization mode; shared by both loops.
func normReg(v uint64, mode uint8) uint64 {
	switch mode {
	case 1:
		return v & 1
	case 8:
		return uint64(int64(int8(v)))
	case 16:
		return uint64(int64(int16(v)))
	case 32:
		return uint64(int64(int32(v)))
	default:
		return v
	}
}

// normLoaded normalizes a freshly loaded raw value for register storage.
func normLoaded(raw uint64, t ir.Type) uint64 {
	if t.Kind() == ir.KindInt {
		return normInt(raw, t)
	}
	return raw // pointers and floats are stored raw
}

func maskTo(v uint64, width uint) uint64 {
	if width >= 64 {
		return v
	}
	return v & ((1 << width) - 1)
}

// isF32 reports whether t is the 32-bit float type (whose register bits
// are an f32 pattern rather than f64).
func isF32(t ir.Type) bool {
	ft, ok := t.(*ir.FloatType)
	return ok && ft.Bits == 32
}

func floatBits(f float64, t ir.Type) uint64 { return floatBitsF(f, isF32(t)) }

func floatBitsF(f float64, f32 bool) uint64 {
	if f32 {
		return uint64(math.Float32bits(float32(f)))
	}
	return math.Float64bits(f)
}

func bitsToFloat(v uint64, t ir.Type) float64 { return bitsToFloatF(v, isF32(t)) }

func bitsToFloatF(v uint64, f32 bool) float64 {
	if f32 {
		return float64(math.Float32frombits(uint32(v)))
	}
	return math.Float64frombits(v)
}

func fieldOffset(elem ir.Type, field int) (int, error) {
	switch et := elem.(type) {
	case *ir.StructType:
		return et.Offset(field), nil
	case *ir.UnionType:
		return 0, nil
	default:
		return 0, fmt.Errorf("fieldaddr through pointer to %s", elem)
	}
}

// PaddedSize returns sizeof(t) rounded up to t's alignment, i.e. the
// per-element footprint in arrays and array allocations. Exported so
// transforms and the fault injector share the VM's layout math.
func PaddedSize(t ir.Type) int {
	size := t.Size()
	a := t.Align()
	if a > 1 {
		size = (size + a - 1) / a * a
	}
	if size == 0 {
		size = 1
	}
	return size
}

// Stride returns the stride IndexAddr advances by: indexing a pointer
// to an array steps over the array's element type; indexing any other
// pointer steps over the pointee (C-style pointer arithmetic).
func Stride(elem ir.Type) int {
	if at, ok := elem.(*ir.ArrayType); ok {
		elem = at.Elem
	}
	return PaddedSize(elem)
}
