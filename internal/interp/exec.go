// The compiled-bytecode execution loop: the fast counterpart of the
// tree-walking VM.Call body in interp.go. Dispatch is a single dense
// switch over pre-decoded opcodes; register frames and call-argument
// slices are carved from per-VM arenas instead of allocated per call; the
// step/cycle clocks are kept in locals; the trace hook is absent entirely
// (a traced VM never binds a Program — see Config.Prog). Every cycle
// charge, trap, and error below mirrors the tree-walker exactly; the
// differential tests assert bit-identical Results across both loops.
package interp

import (
	"fmt"
	"math"

	"dpmr/internal/ir"
	"dpmr/internal/mem"
)

// execCompiled runs one compiled internal function. It is the compiled
// analogue of the tree-walking VM.Call body and preserves its exact
// check order: depth, then arity, then frame setup.
func (vm *VM) execCompiled(cf *compiledFunc, args []uint64) (uint64, error) {
	if vm.depth >= vm.maxDep {
		return 0, &mem.Trap{Reason: "call stack depth exceeded"}
	}
	if len(args) != len(cf.params) {
		return 0, fmt.Errorf("call of %s with %d args, want %d", cf.name, len(args), len(cf.params))
	}
	vm.depth++
	mark := vm.Space.PushFrame()
	rbase := len(vm.regStack)
	if n := rbase + cf.numRegs; n <= cap(vm.regStack) {
		vm.regStack = vm.regStack[:n]
	} else {
		vm.regStack = append(vm.regStack, make([]uint64, cf.numRegs)...)
	}
	frame := vm.regStack[rbase : rbase+cf.numRegs]
	// Frames are recycled arena space: zero them so an unwritten register
	// reads 0, exactly like the walker's fresh make.
	clear(frame)
	for i, p := range cf.params {
		frame[p] = args[i]
	}

	// The step and cycle clocks live in locals for the duration of the
	// loop, avoiding two VM-field read-modify-writes per instruction. They
	// are flushed to the VM around anything that can observe or advance
	// them from outside — nested calls, externs (vm.Charge), the shared
	// allocation helper — and on every exit path by the deferred cleanup.
	steps, cycles := vm.steps, vm.cycles
	defer func() {
		vm.steps, vm.cycles = steps, cycles
		vm.regStack = vm.regStack[:rbase]
		vm.Space.PopFrame(mark)
		vm.depth--
	}()
	flush := func() { vm.steps, vm.cycles = steps, cycles }

	limit := vm.limit
	space := vm.Space
	code := cf.code
	pc := 0
	for {
		in := &code[pc]
		steps++
		cycles++
		if steps > limit {
			// The fell-off guard is exempt: the walker's ip-past-end check
			// fires before the step is counted or the budget consulted
			// (its case below un-counts the step for the same reason).
			if in.op != opFellOff {
				return 0, timeoutErr{}
			}
		}
		switch in.op {
		case opFellOff:
			steps--
			cycles--
			return 0, cf.errs[in.imm]
		case opConst:
			frame[in.dst] = in.imm
		case opGlobalAddr:
			frame[in.dst] = vm.globalAddrs[in.imm]
		case opMove:
			frame[in.dst] = frame[in.a]
		case opMoveNorm:
			frame[in.dst] = normReg(frame[in.a], in.norm)
		case opAdd:
			frame[in.dst] = normReg(frame[in.a]+frame[in.b], in.norm)
		case opSub:
			frame[in.dst] = normReg(frame[in.a]-frame[in.b], in.norm)
		case opMul:
			frame[in.dst] = normReg(frame[in.a]*frame[in.b], in.norm)
		case opSDiv:
			cycles += costDiv
			if frame[in.b] == 0 {
				return 0, &mem.Trap{Reason: "integer division by zero"}
			}
			frame[in.dst] = normReg(uint64(int64(frame[in.a])/int64(frame[in.b])), in.norm)
		case opUDiv:
			cycles += costDiv
			w := uint(in.imm)
			if maskTo(frame[in.b], w) == 0 {
				return 0, &mem.Trap{Reason: "integer division by zero"}
			}
			frame[in.dst] = normReg(maskTo(frame[in.a], w)/maskTo(frame[in.b], w), in.norm)
		case opSRem:
			cycles += costDiv
			if frame[in.b] == 0 {
				return 0, &mem.Trap{Reason: "integer division by zero"}
			}
			frame[in.dst] = normReg(uint64(int64(frame[in.a])%int64(frame[in.b])), in.norm)
		case opURem:
			cycles += costDiv
			w := uint(in.imm)
			if maskTo(frame[in.b], w) == 0 {
				return 0, &mem.Trap{Reason: "integer division by zero"}
			}
			frame[in.dst] = normReg(maskTo(frame[in.a], w)%maskTo(frame[in.b], w), in.norm)
		case opAnd:
			frame[in.dst] = normReg(frame[in.a]&frame[in.b], in.norm)
		case opOr:
			frame[in.dst] = normReg(frame[in.a]|frame[in.b], in.norm)
		case opXor:
			frame[in.dst] = normReg(frame[in.a]^frame[in.b], in.norm)
		case opShl:
			frame[in.dst] = normReg(frame[in.a]<<(frame[in.b]&63), in.norm)
		case opLShr:
			frame[in.dst] = normReg(maskTo(frame[in.a], uint(in.imm))>>(frame[in.b]&63), in.norm)
		case opAShr:
			frame[in.dst] = normReg(uint64(int64(frame[in.a])>>(frame[in.b]&63)), in.norm)
		case opFAdd64:
			cycles += costFloatOp
			frame[in.dst] = math.Float64bits(math.Float64frombits(frame[in.a]) + math.Float64frombits(frame[in.b]))
		case opFSub64:
			cycles += costFloatOp
			frame[in.dst] = math.Float64bits(math.Float64frombits(frame[in.a]) - math.Float64frombits(frame[in.b]))
		case opFMul64:
			cycles += costFloatOp
			frame[in.dst] = math.Float64bits(math.Float64frombits(frame[in.a]) * math.Float64frombits(frame[in.b]))
		case opFDiv64:
			cycles += costFloatOp
			frame[in.dst] = math.Float64bits(math.Float64frombits(frame[in.a]) / math.Float64frombits(frame[in.b]))
		case opFBin:
			cycles += costFloatOp
			frame[in.dst] = floatBinScalar(ir.BinKind(in.sub), frame[in.a], frame[in.b],
				in.flags&flagX32 != 0, in.flags&flagY32 != 0, in.flags&flagD32 != 0)
		case opCmp:
			frame[in.dst] = cmpScalar(ir.CmpKind(in.sub), frame[in.a], frame[in.b],
				in.flags&flagX32 != 0, in.flags&flagY32 != 0)
		case opCmpBr:
			// Fused compare + conditional branch (the dominant loop-header
			// pair). Steps, cycles, and the budget check replay exactly as
			// the two separate instructions would: the compare was counted
			// by the loop header above; the branch is counted here.
			v := cmpScalar(ir.CmpKind(in.sub), frame[in.a], frame[in.b],
				in.flags&flagX32 != 0, in.flags&flagY32 != 0)
			frame[in.dst] = v
			steps++
			cycles++
			if steps > limit {
				return 0, timeoutErr{}
			}
			cycles += costBranch
			if v != 0 {
				pc = int(int32(in.imm))
			} else {
				pc = int(int32(in.imm2))
			}
			continue
		case opConvert:
			v := frame[in.a]
			switch in.sub {
			case convIntToInt:
				v = normReg(v, in.norm)
			case convIntToFloat:
				v = floatBitsF(float64(int64(v)), in.flags&flagD32 != 0)
			case convFloatToInt:
				v = normReg(uint64(int64(bitsToFloatF(v, in.flags&flagX32 != 0))), in.norm)
			case convFloatToFloat:
				v = floatBitsF(bitsToFloatF(v, in.flags&flagX32 != 0), in.flags&flagD32 != 0)
			}
			frame[in.dst] = v
		case opAlloc:
			count := int64(1)
			if in.a >= 0 {
				count = int64(frame[in.a])
			}
			flush()
			addr, err := vm.allocMem(ir.AllocKind(in.sub), count, in.imm)
			cycles = vm.cycles
			if err != nil {
				return 0, err
			}
			frame[in.dst] = addr
		case opFree:
			cycles += costFreeOp
			if trap := space.Free(frame[in.a]); trap != nil {
				return 0, trap
			}
		case opLoad:
			raw, cost, trap := space.LoadCosted(frame[in.a], int(in.imm))
			cycles += costLoadBase + cost
			if trap != nil {
				return 0, trap
			}
			frame[in.dst] = normReg(raw, in.norm)
		case opStore:
			cost, trap := space.StoreCosted(frame[in.a], int(in.imm), frame[in.b])
			cycles += costStoreBase + cost
			if trap != nil {
				return 0, trap
			}
		case opLoadLoadAssert:
			// Fused DPMR check triple: app load, replica load, equality
			// assert. Each constituent counts its own step and budget check
			// in sequence, so traps, timeouts, and cycles replay exactly.
			raw, cost, trap := space.LoadCosted(frame[in.a], int(in.sub&0xF))
			cycles += costLoadBase + cost
			if trap != nil {
				return 0, trap
			}
			x := normReg(raw, in.norm)
			frame[in.dst] = x
			steps++
			cycles++
			if steps > limit {
				return 0, timeoutErr{}
			}
			raw, cost, trap = space.LoadCosted(frame[in.b], int(in.sub>>4))
			cycles += costLoadBase + cost
			if trap != nil {
				return 0, trap
			}
			y := normReg(raw, in.flags)
			frame[int32(in.imm)] = y
			steps++
			cycles++
			if steps > limit {
				return 0, timeoutErr{}
			}
			cycles += costAssert
			if x != y {
				return 0, &Detection{Reason: fmt.Sprintf("replica mismatch in %s: %#x != %#x", cf.name, x, y)}
			}
			pc += 3
			continue
		case opStore2:
			// Fused replicated store pair.
			cost, trap := space.StoreCosted(frame[in.a], int(in.sub&0xF), frame[in.b])
			cycles += costStoreBase + cost
			if trap != nil {
				return 0, trap
			}
			steps++
			cycles++
			if steps > limit {
				return 0, timeoutErr{}
			}
			cost, trap = space.StoreCosted(frame[int32(in.imm)], int(in.sub>>4), frame[int32(in.imm2)])
			cycles += costStoreBase + cost
			if trap != nil {
				return 0, trap
			}
			pc += 2
			continue
		case opFieldAddr:
			frame[in.dst] = frame[in.a] + in.imm
		case opIndexAddr:
			frame[in.dst] = uint64(int64(frame[in.a]) + int64(frame[in.b])*int64(in.imm))
		case opFieldLoad, opIndexLoad:
			// Fused address-compute + load. The address instruction was
			// counted by the loop header; the load counts itself below,
			// replaying the separate instructions' accounting exactly.
			var addr uint64
			if in.op == opFieldLoad {
				addr = frame[in.a] + in.imm
			} else {
				addr = uint64(int64(frame[in.a]) + int64(frame[in.b])*int64(in.imm))
			}
			frame[in.dst] = addr
			steps++
			cycles++
			if steps > limit {
				return 0, timeoutErr{}
			}
			raw, cost, trap := space.LoadCosted(addr, int(in.sub))
			cycles += costLoadBase + cost
			if trap != nil {
				return 0, trap
			}
			frame[int32(in.imm2)] = normReg(raw, in.norm)
			pc += 2
			continue
		case opFieldStore, opIndexStore:
			// Fused address-compute + store, mirroring opFieldLoad.
			var addr uint64
			if in.op == opFieldStore {
				addr = frame[in.a] + in.imm
			} else {
				addr = uint64(int64(frame[in.a]) + int64(frame[in.b])*int64(in.imm))
			}
			frame[in.dst] = addr
			steps++
			cycles++
			if steps > limit {
				return 0, timeoutErr{}
			}
			cost, trap := space.StoreCosted(addr, int(in.sub), frame[int32(in.imm2)])
			cycles += costStoreBase + cost
			if trap != nil {
				return 0, trap
			}
			pc += 2
			continue
		case opCall:
			cycles += costCall
			cs := &cf.calls[in.imm]
			ab := len(vm.argStack)
			for _, r := range cs.args {
				vm.argStack = append(vm.argStack, frame[r])
			}
			var rv uint64
			var err error
			flush()
			if cs.callee != nil {
				rv, err = vm.execCompiled(cs.callee, vm.argStack[ab:])
			} else {
				rv, err = vm.Call(cs.fn, vm.argStack[ab:])
			}
			steps, cycles = vm.steps, vm.cycles
			vm.argStack = vm.argStack[:ab]
			if err != nil {
				return 0, err
			}
			if in.dst >= 0 {
				frame[in.dst] = rv
			}
		case opCallIndirect:
			cycles += costCall
			fp := frame[in.a]
			target, ok := vm.prog.byAddr[fp]
			if !ok {
				return 0, &mem.Trap{Reason: "indirect call through invalid function pointer", Addr: fp}
			}
			cs := &cf.calls[in.imm]
			ab := len(vm.argStack)
			for _, r := range cs.args {
				vm.argStack = append(vm.argStack, frame[r])
			}
			var rv uint64
			var err error
			flush()
			if target.external {
				rv, err = vm.Call(target.fn, vm.argStack[ab:])
			} else {
				rv, err = vm.execCompiled(target, vm.argStack[ab:])
			}
			steps, cycles = vm.steps, vm.cycles
			vm.argStack = vm.argStack[:ab]
			if err != nil {
				return 0, err
			}
			if in.dst >= 0 {
				frame[in.dst] = rv
			}
		case opRet:
			cycles += costRet
			if in.a >= 0 {
				return frame[in.a], nil
			}
			return 0, nil
		case opBr:
			cycles += costBranch
			pc = int(in.dst)
			continue
		case opCondBr:
			cycles += costBranch
			if frame[in.a] != 0 {
				pc = int(in.dst)
			} else {
				pc = int(in.b)
			}
			continue
		case opAssert:
			cycles += costAssert
			if frame[in.a] != frame[in.b] {
				return 0, &Detection{Reason: fmt.Sprintf("replica mismatch in %s: %#x != %#x", cf.name, frame[in.a], frame[in.b])}
			}
		case opFaultPoint:
			if !vm.faultSeen {
				vm.faultSeen = true
				vm.faultCycle = cycles
			}
		case opRandInt:
			cycles += costIntrinsic
			v, err := randInRange(vm.rng, int64(in.imm), int64(in.imm2))
			if err != nil {
				return 0, err
			}
			frame[in.dst] = v
		case opHeapBufSize:
			cycles += costIntrinsic
			size, trap := space.HeapPayloadSize(frame[in.a])
			if trap != nil {
				return 0, trap
			}
			frame[in.dst] = size
		case opOutput:
			cycles += costOutput
			vm.emitOutputRaw(ir.OutputMode(in.sub), in.flags&flagX32 != 0, frame[in.a])
		case opExit:
			code := int64(0)
			if in.a >= 0 {
				code = int64(frame[in.a])
			}
			return 0, &ExitRequest{Code: code}
		case opErr:
			return 0, cf.errs[in.imm]
		default:
			return 0, fmt.Errorf("interp: corrupt program: opcode %d in %s", in.op, cf.name)
		}
		pc++
	}
}
