// The compiled-bytecode execution loop: the fast counterpart of the
// tree-walking VM.Call body in interp.go. Dispatch is a single dense
// switch over pre-decoded opcodes; register frames and call-argument
// slices are carved from per-VM arenas instead of allocated per call; the
// step/cycle clocks are kept in locals; the trace hook is absent entirely
// (a traced VM never binds a Program — see Config.Prog). Every cycle
// charge, trap, and error below mirrors the tree-walker exactly; the
// differential tests assert bit-identical Results across both loops.
package interp

import (
	"fmt"
	"math"
	"unsafe"

	"dpmr/internal/ir"
	"dpmr/internal/mem"
)

// execCompiled runs one compiled internal function. It is the compiled
// analogue of the tree-walking VM.Call body and preserves its exact
// check order: depth, then arity, then frame setup.
func (vm *VM) execCompiled(cf *compiledFunc, args []uint64) (uint64, error) {
	if vm.depth >= vm.maxDep {
		return 0, &mem.Trap{Reason: "call stack depth exceeded"}
	}
	if len(args) != len(cf.params) {
		return 0, fmt.Errorf("call of %s with %d args, want %d", cf.name, len(args), len(cf.params))
	}
	vm.depth++
	mark := vm.Space.PushFrame()
	rbase := len(vm.regStack)
	if n := rbase + cf.numRegs; n <= cap(vm.regStack) {
		vm.regStack = vm.regStack[:n]
	} else {
		vm.regStack = append(vm.regStack, make([]uint64, cf.numRegs)...)
	}
	frame := vm.regStack[rbase : rbase+cf.numRegs]
	// Frames are recycled arena space: zero them so an unwritten register
	// reads 0, exactly like the walker's fresh make.
	clear(frame)
	for i, p := range cf.params {
		frame[p] = args[i]
	}
	// Unchecked base pointers for the dispatch loop: validateFunc proved
	// every register operand inside the frame and every reachable pc inside
	// the code, so the per-access bounds checks the slice forms would pay
	// (several per dispatched instruction) carry no information. The frame
	// pointer stays valid even if a nested call grows vm.regStack onto a
	// new backing array: this frame's slice keeps the old array alive, and
	// only this invocation touches its region.
	var fp unsafe.Pointer
	if len(frame) > 0 {
		fp = unsafe.Pointer(&frame[0])
	}

	// The step and cycle clocks live in locals for the duration of the
	// loop, avoiding VM-field read-modify-writes per instruction. Because
	// every instruction charges one base cycle alongside its step, the loop
	// keeps only steps and the cycles-beyond-steps surplus (extra): one
	// increment per dispatch instead of two, with cycles = steps + extra
	// reconstructed at every point the clocks are observable from outside —
	// nested calls, externs (vm.Charge), the shared allocation helper — and
	// on every exit path by the deferred cleanup.
	steps, extra := vm.steps, vm.cycles-vm.steps
	defer func() {
		vm.steps, vm.cycles = steps, steps+extra
		vm.regStack = vm.regStack[:rbase]
		vm.Space.PopFrame(mark)
		vm.depth--
	}()
	flush := func() { vm.steps, vm.cycles = steps, steps+extra }

	limit := vm.limit
	space := vm.Space
	codeBase := unsafe.Pointer(&cf.code[0])
	pc := 0
	for {
		in := (*decodedInstr)(unsafe.Add(codeBase, uintptr(pc)*instrSize))
		steps++
		if steps > limit {
			// The fell-off guard is exempt: the walker's ip-past-end check
			// fires before the step is counted or the budget consulted
			// (its case below un-counts the step for the same reason).
			if in.op != opFellOff {
				return 0, timeoutErr{}
			}
		}
		switch in.op {
		case opFellOff:
			steps--
			return 0, cf.errs[in.imm]
		case opConst:
			*reg(fp, in.dst) = in.imm
		case opGlobalAddr:
			*reg(fp, in.dst) = vm.globalAddrs[in.imm]
		case opMove:
			*reg(fp, in.dst) = *reg(fp, in.a)
		case opMoveNorm:
			*reg(fp, in.dst) = normReg(*reg(fp, in.a), in.norm)
		case opAdd:
			*reg(fp, in.dst) = normReg(*reg(fp, in.a)+*reg(fp, in.b), in.norm)
		case opSub:
			*reg(fp, in.dst) = normReg(*reg(fp, in.a)-*reg(fp, in.b), in.norm)
		case opMul:
			*reg(fp, in.dst) = normReg(*reg(fp, in.a)**reg(fp, in.b), in.norm)
		case opSDiv:
			extra += costDiv
			if *reg(fp, in.b) == 0 {
				return 0, &mem.Trap{Reason: "integer division by zero"}
			}
			*reg(fp, in.dst) = normReg(uint64(int64(*reg(fp, in.a))/int64(*reg(fp, in.b))), in.norm)
		case opUDiv:
			extra += costDiv
			w := uint(in.imm)
			if maskTo(*reg(fp, in.b), w) == 0 {
				return 0, &mem.Trap{Reason: "integer division by zero"}
			}
			*reg(fp, in.dst) = normReg(maskTo(*reg(fp, in.a), w)/maskTo(*reg(fp, in.b), w), in.norm)
		case opSRem:
			extra += costDiv
			if *reg(fp, in.b) == 0 {
				return 0, &mem.Trap{Reason: "integer division by zero"}
			}
			*reg(fp, in.dst) = normReg(uint64(int64(*reg(fp, in.a))%int64(*reg(fp, in.b))), in.norm)
		case opURem:
			extra += costDiv
			w := uint(in.imm)
			if maskTo(*reg(fp, in.b), w) == 0 {
				return 0, &mem.Trap{Reason: "integer division by zero"}
			}
			*reg(fp, in.dst) = normReg(maskTo(*reg(fp, in.a), w)%maskTo(*reg(fp, in.b), w), in.norm)
		case opAnd:
			*reg(fp, in.dst) = normReg(*reg(fp, in.a)&*reg(fp, in.b), in.norm)
		case opOr:
			*reg(fp, in.dst) = normReg(*reg(fp, in.a)|*reg(fp, in.b), in.norm)
		case opXor:
			*reg(fp, in.dst) = normReg(*reg(fp, in.a)^*reg(fp, in.b), in.norm)
		case opShl:
			*reg(fp, in.dst) = normReg(*reg(fp, in.a)<<(*reg(fp, in.b)&63), in.norm)
		case opLShr:
			*reg(fp, in.dst) = normReg(maskTo(*reg(fp, in.a), uint(in.imm))>>(*reg(fp, in.b)&63), in.norm)
		case opAShr:
			*reg(fp, in.dst) = normReg(uint64(int64(*reg(fp, in.a))>>(*reg(fp, in.b)&63)), in.norm)
		case opFAdd64:
			extra += costFloatOp
			*reg(fp, in.dst) = math.Float64bits(math.Float64frombits(*reg(fp, in.a)) + math.Float64frombits(*reg(fp, in.b)))
		case opFSub64:
			extra += costFloatOp
			*reg(fp, in.dst) = math.Float64bits(math.Float64frombits(*reg(fp, in.a)) - math.Float64frombits(*reg(fp, in.b)))
		case opFMul64:
			extra += costFloatOp
			*reg(fp, in.dst) = math.Float64bits(math.Float64frombits(*reg(fp, in.a)) * math.Float64frombits(*reg(fp, in.b)))
		case opFDiv64:
			extra += costFloatOp
			*reg(fp, in.dst) = math.Float64bits(math.Float64frombits(*reg(fp, in.a)) / math.Float64frombits(*reg(fp, in.b)))
		case opFBin:
			extra += costFloatOp
			*reg(fp, in.dst) = floatBinScalar(ir.BinKind(in.sub), *reg(fp, in.a), *reg(fp, in.b),
				in.flags&flagX32 != 0, in.flags&flagY32 != 0, in.flags&flagD32 != 0)
		case opCmp:
			*reg(fp, in.dst) = cmpScalar(ir.CmpKind(in.sub), *reg(fp, in.a), *reg(fp, in.b),
				in.flags&flagX32 != 0, in.flags&flagY32 != 0)
		case opCmpBr:
			// Fused compare + conditional branch (the dominant loop-header
			// pair). Steps, cycles, and the budget check replay exactly as
			// the two separate instructions would: the compare was counted
			// by the loop header above; the branch is counted here.
			v := cmpScalar(ir.CmpKind(in.sub), *reg(fp, in.a), *reg(fp, in.b),
				in.flags&flagX32 != 0, in.flags&flagY32 != 0)
			*reg(fp, in.dst) = v
			steps++
			if steps > limit {
				return 0, timeoutErr{}
			}
			extra += costBranch
			if v != 0 {
				pc = int(int32(in.imm))
			} else {
				pc = int(int32(in.imm2))
			}
			continue
		case opConvert:
			v := *reg(fp, in.a)
			switch in.sub {
			case convIntToInt:
				v = normReg(v, in.norm)
			case convIntToFloat:
				v = floatBitsF(float64(int64(v)), in.flags&flagD32 != 0)
			case convFloatToInt:
				v = normReg(uint64(int64(bitsToFloatF(v, in.flags&flagX32 != 0))), in.norm)
			case convFloatToFloat:
				v = floatBitsF(bitsToFloatF(v, in.flags&flagX32 != 0), in.flags&flagD32 != 0)
			}
			*reg(fp, in.dst) = v
		case opAlloc:
			count := int64(1)
			if in.a >= 0 {
				count = int64(*reg(fp, in.a))
			}
			flush()
			addr, err := vm.allocMem(ir.AllocKind(in.sub), count, in.imm)
			extra = vm.cycles - steps
			if err != nil {
				return 0, err
			}
			*reg(fp, in.dst) = addr
		case opFree:
			extra += costFreeOp
			if trap := space.Free(*reg(fp, in.a)); trap != nil {
				return 0, trap
			}
		case opLoad:
			raw, cost, trap := space.LoadCosted(*reg(fp, in.a), int(in.imm))
			extra += costLoadBase + cost
			if trap != nil {
				return 0, trap
			}
			*reg(fp, in.dst) = normReg(raw, in.norm)
		case opStore:
			cost, trap := space.StoreCosted(*reg(fp, in.a), int(in.imm), *reg(fp, in.b))
			extra += costStoreBase + cost
			if trap != nil {
				return 0, trap
			}
		case opLoadLoadAssert:
			// Fused DPMR check triple: app load, replica load, equality
			// assert. Each constituent counts its own step and budget check
			// in sequence, so traps, timeouts, and cycles replay exactly.
			raw, cost, trap := space.LoadCosted(*reg(fp, in.a), int(in.sub&0xF))
			extra += costLoadBase + cost
			if trap != nil {
				return 0, trap
			}
			x := normReg(raw, in.norm)
			*reg(fp, in.dst) = x
			steps++
			if steps > limit {
				return 0, timeoutErr{}
			}
			raw, cost, trap = space.LoadCosted(*reg(fp, in.b), int(in.sub>>4))
			extra += costLoadBase + cost
			if trap != nil {
				return 0, trap
			}
			y := normReg(raw, in.flags)
			*reg(fp, int32(in.imm)) = y
			steps++
			if steps > limit {
				return 0, timeoutErr{}
			}
			extra += costAssert
			if x != y {
				return 0, &Detection{Reason: fmt.Sprintf("replica mismatch in %s: %#x != %#x", cf.name, x, y)}
			}
			pc += 3
			continue
		case opStore2:
			// Fused replicated store pair.
			cost, trap := space.StoreCosted(*reg(fp, in.a), int(in.sub&0xF), *reg(fp, in.b))
			extra += costStoreBase + cost
			if trap != nil {
				return 0, trap
			}
			steps++
			if steps > limit {
				return 0, timeoutErr{}
			}
			cost, trap = space.StoreCosted(*reg(fp, int32(in.imm)), int(in.sub>>4), *reg(fp, int32(in.imm2)))
			extra += costStoreBase + cost
			if trap != nil {
				return 0, trap
			}
			pc += 2
			continue
		case opFieldAddr:
			*reg(fp, in.dst) = *reg(fp, in.a) + in.imm
		case opIndexAddr:
			*reg(fp, in.dst) = uint64(int64(*reg(fp, in.a)) + int64(*reg(fp, in.b))*int64(in.imm))
		case opFieldLoad, opIndexLoad:
			// Fused address-compute + load. The address instruction was
			// counted by the loop header; the load counts itself below,
			// replaying the separate instructions' accounting exactly.
			var addr uint64
			if in.op == opFieldLoad {
				addr = *reg(fp, in.a) + in.imm
			} else {
				addr = uint64(int64(*reg(fp, in.a)) + int64(*reg(fp, in.b))*int64(in.imm))
			}
			*reg(fp, in.dst) = addr
			steps++
			if steps > limit {
				return 0, timeoutErr{}
			}
			raw, cost, trap := space.LoadCosted(addr, int(in.sub))
			extra += costLoadBase + cost
			if trap != nil {
				return 0, trap
			}
			*reg(fp, int32(in.imm2)) = normReg(raw, in.norm)
			pc += 2
			continue
		case opFieldStore, opIndexStore:
			// Fused address-compute + store, mirroring opFieldLoad.
			var addr uint64
			if in.op == opFieldStore {
				addr = *reg(fp, in.a) + in.imm
			} else {
				addr = uint64(int64(*reg(fp, in.a)) + int64(*reg(fp, in.b))*int64(in.imm))
			}
			*reg(fp, in.dst) = addr
			steps++
			if steps > limit {
				return 0, timeoutErr{}
			}
			cost, trap := space.StoreCosted(addr, int(in.sub), *reg(fp, int32(in.imm2)))
			extra += costStoreBase + cost
			if trap != nil {
				return 0, trap
			}
			pc += 2
			continue
		case opConstAdd:
			// Fused const + add (profile-selected, fusion.go). The constant
			// lands first, then the add reads its operands from the frame,
			// so a dependent add sees exactly what the unfused pair computes.
			*reg(fp, in.dst) = in.imm
			steps++
			if steps > limit {
				return 0, timeoutErr{}
			}
			*reg(fp, int32(uint32(in.imm2))) = normReg(*reg(fp, in.a)+*reg(fp, in.b), in.norm)
			pc += 2
			continue
		case opConstAddBr:
			// Fused const + add + br: the loop-increment tail.
			*reg(fp, in.dst) = in.imm
			steps++
			if steps > limit {
				return 0, timeoutErr{}
			}
			*reg(fp, int32(in.imm2&0xFFFF)) = normReg(*reg(fp, in.a)+*reg(fp, in.b), in.norm)
			steps++
			if steps > limit {
				return 0, timeoutErr{}
			}
			extra += costBranch
			pc = int(uint32(in.imm2 >> 32))
			continue
		case opConstLoad:
			// Fused const + load (the load's pointer register is read after
			// the constant lands, covering the materialized-address shape).
			*reg(fp, in.dst) = in.imm
			steps++
			if steps > limit {
				return 0, timeoutErr{}
			}
			raw, cost, trap := space.LoadCosted(*reg(fp, in.a), int(in.sub))
			extra += costLoadBase + cost
			if trap != nil {
				return 0, trap
			}
			*reg(fp, int32(uint32(in.imm2))) = normReg(raw, in.norm)
			pc += 2
			continue
		case opIndexAddr2:
			// Fused back-to-back element-address computes (SDS's app+replica
			// address pair); the second compute's regs/stride unpack from
			// imm2 as four u16 fields.
			*reg(fp, in.dst) = uint64(int64(*reg(fp, in.a)) + int64(*reg(fp, in.b))*int64(in.imm))
			steps++
			if steps > limit {
				return 0, timeoutErr{}
			}
			p2 := in.imm2
			*reg(fp, int32(p2&0xFFFF)) = uint64(int64(*reg(fp, int32((p2>>16)&0xFFFF))) +
				int64(*reg(fp, int32((p2>>32)&0xFFFF)))*int64(p2>>48))
			pc += 2
			continue
		case opFMulAdd64:
			// Fused all-f64 multiply + add; operands are re-read from the
			// frame after the product lands, so dependent adds chain exactly.
			extra += costFloatOp
			*reg(fp, in.dst) = math.Float64bits(math.Float64frombits(*reg(fp, in.a)) * math.Float64frombits(*reg(fp, in.b)))
			steps++
			if steps > limit {
				return 0, timeoutErr{}
			}
			extra += costFloatOp
			p2 := in.imm2
			*reg(fp, int32(p2&0xFFFF)) = math.Float64bits(math.Float64frombits(*reg(fp, int32((p2>>16)&0xFFFF))) +
				math.Float64frombits(*reg(fp, int32((p2>>32)&0xFFFF))))
			pc += 2
			continue
		case opCall:
			extra += costCall
			cs := &cf.calls[in.imm]
			ab := len(vm.argStack)
			for _, r := range cs.args {
				vm.argStack = append(vm.argStack, *reg(fp, r))
			}
			var rv uint64
			var err error
			flush()
			if cs.callee != nil {
				rv, err = vm.execCompiled(cs.callee, vm.argStack[ab:])
			} else {
				rv, err = vm.Call(cs.fn, vm.argStack[ab:])
			}
			steps, extra = vm.steps, vm.cycles-vm.steps
			vm.argStack = vm.argStack[:ab]
			if err != nil {
				return 0, err
			}
			if in.dst >= 0 {
				*reg(fp, in.dst) = rv
			}
		case opCallIndirect:
			extra += costCall
			fnp := *reg(fp, in.a)
			// Monomorphic inline cache, keyed by this site's imm2 slot: one
			// tag compare replaces the byAddr map lookup on repeat targets.
			// Tags start 0 and valid function addresses are all nonzero
			// (funcAddrBase), so the fp != 0 guard makes the empty slot a
			// guaranteed miss; a null pointer falls through to the map and
			// traps exactly like the walker.
			if vm.icTags == nil {
				vm.icTags = make([]uint64, vm.prog.indirectSites)
				vm.icFuncs = make([]*compiledFunc, vm.prog.indirectSites)
			}
			slot := in.imm2
			var target *compiledFunc
			if fnp != 0 && vm.icTags[slot] == fnp {
				target = vm.icFuncs[slot]
			} else {
				t, ok := vm.prog.byAddr[fnp]
				if !ok {
					return 0, &mem.Trap{Reason: "indirect call through invalid function pointer", Addr: fnp}
				}
				vm.icTags[slot] = fnp
				vm.icFuncs[slot] = t
				target = t
			}
			cs := &cf.calls[in.imm]
			ab := len(vm.argStack)
			for _, r := range cs.args {
				vm.argStack = append(vm.argStack, *reg(fp, r))
			}
			var rv uint64
			var err error
			flush()
			if target.external {
				rv, err = vm.Call(target.fn, vm.argStack[ab:])
			} else {
				rv, err = vm.execCompiled(target, vm.argStack[ab:])
			}
			steps, extra = vm.steps, vm.cycles-vm.steps
			vm.argStack = vm.argStack[:ab]
			if err != nil {
				return 0, err
			}
			if in.dst >= 0 {
				*reg(fp, in.dst) = rv
			}
		case opRet:
			extra += costRet
			if in.a >= 0 {
				return *reg(fp, in.a), nil
			}
			return 0, nil
		case opBr:
			extra += costBranch
			pc = int(in.dst)
			continue
		case opCondBr:
			extra += costBranch
			if *reg(fp, in.a) != 0 {
				pc = int(in.dst)
			} else {
				pc = int(in.b)
			}
			continue
		case opAssert:
			extra += costAssert
			if *reg(fp, in.a) != *reg(fp, in.b) {
				return 0, &Detection{Reason: fmt.Sprintf("replica mismatch in %s: %#x != %#x", cf.name, *reg(fp, in.a), *reg(fp, in.b))}
			}
		case opFaultPoint:
			if !vm.faultSeen {
				vm.faultSeen = true
				vm.faultCycle = steps + extra
			}
		case opRandInt:
			extra += costIntrinsic
			v, err := randInRange(vm.rng, int64(in.imm), int64(in.imm2))
			if err != nil {
				return 0, err
			}
			*reg(fp, in.dst) = v
		case opHeapBufSize:
			extra += costIntrinsic
			size, trap := space.HeapPayloadSize(*reg(fp, in.a))
			if trap != nil {
				return 0, trap
			}
			*reg(fp, in.dst) = size
		case opOutput:
			extra += costOutput
			vm.emitOutputRaw(ir.OutputMode(in.sub), in.flags&flagX32 != 0, *reg(fp, in.a))
		case opExit:
			code := int64(0)
			if in.a >= 0 {
				code = int64(*reg(fp, in.a))
			}
			return 0, &ExitRequest{Code: code}
		case opAtomicRMW:
			// The shared helper charges cycles on the VM fields, so the
			// local clocks flush around it exactly like opAlloc.
			raddr, replica := uint64(0), in.imm2 != 0
			if replica {
				raddr = *reg(fp, int32(in.imm2-1))
			}
			addr, val := *reg(fp, in.a), *reg(fp, in.b)
			flush()
			old, err := vm.atomicRMW(ir.AtomicOp(in.sub), addr, val, int(in.imm), in.norm, raddr, replica)
			extra = vm.cycles - steps
			if err != nil {
				return 0, err
			}
			*reg(fp, in.dst) = old
		case opAtomicCAS:
			raddr, replica := uint64(0), in.imm2>>32 != 0
			if replica {
				raddr = *reg(fp, int32(in.imm2>>32)-1)
			}
			addr, oldv := *reg(fp, in.a), *reg(fp, in.b)
			newv := *reg(fp, int32(uint32(in.imm2)))
			flush()
			cur, err := vm.atomicCAS(addr, oldv, newv, int(in.imm), in.norm, raddr, replica)
			extra = vm.cycles - steps
			if err != nil {
				return 0, err
			}
			*reg(fp, in.dst) = cur
		case opFence:
			extra += costFence
		case opErr:
			return 0, cf.errs[in.imm]
		default:
			return 0, fmt.Errorf("interp: corrupt program: opcode %d in %s", in.op, cf.name)
		}
		pc++
	}
}

// instrSize is the byte stride of the flat code array.
const instrSize = unsafe.Sizeof(decodedInstr{})

// reg returns frame slot r through the unchecked base pointer; sound for
// every register operand validateFunc admitted.
func reg(fp unsafe.Pointer, r int32) *uint64 {
	return (*uint64)(unsafe.Add(fp, uintptr(uint32(r))*8))
}
