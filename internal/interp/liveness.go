// Live-range frame narrowing: the linear-scan pass that packs each
// compiled function's register frame to live width. ir register ids are
// allocated monotonically by the front end and the DPMR transformer, so a
// function's NumRegs is usually far larger than the number of values live
// at any point; since the executor zeroes the whole frame on every call
// (exec.go's clear) and frames stack in the per-VM arena, the dead width
// is pure per-call cost. This pass computes register liveness over the
// fused flat code, derives one conservative [lo, hi] interval per
// register, assigns intervals to frame slots linear-scan style, and
// rewrites every register reference — instruction fields, call argument
// lists, parameter ids — to the packed slots.
//
// Soundness leans on two properties. First, liveness is a real backward
// dataflow over the flat code's control edges, so a register that is live
// around a loop has its interval extended across the whole loop body by
// propagation — two intervals that do not overlap can never hold live
// values at the same time, at any execution point. Second, a register
// that is live into the function entry (readable before any write: the
// walker semantics give such reads 0) keeps the zero guarantee by only
// accepting a virgin slot — one no earlier tenant or parameter has
// written.
package interp

import "math/bits"

// regRef is one register reference of an instruction, in execution order.
type regRef struct {
	reg int32
	def bool
}

// instrLength is the number of code slots op owns: fused superinstructions
// carry their constituents' now-unreachable slots with them.
func instrLength(op opcode) int {
	switch op {
	case opLoadLoadAssert, opConstAddBr:
		return 3
	case opStore2, opFieldLoad, opIndexLoad, opFieldStore, opIndexStore,
		opConstAdd, opConstLoad, opIndexAddr2, opFMulAdd64, opCmpBr:
		return 2
	}
	return 1
}

// successors appends the pcs control can reach from code[pc].
func successors(code []decodedInstr, pc int, dst []int32) []int32 {
	in := &code[pc]
	switch in.op {
	case opBr:
		return append(dst, in.dst)
	case opCondBr:
		return append(dst, in.dst, in.b)
	case opCmpBr:
		return append(dst, int32(uint32(in.imm)), int32(uint32(in.imm2)))
	case opConstAddBr:
		return append(dst, int32(uint32(in.imm2>>32)))
	case opRet, opExit, opErr, opFellOff:
		return dst
	}
	return append(dst, int32(pc+instrLength(in.op)))
}

// use and def wrap a register id as an execution-ordered reference;
// negative ids (absent operands) are dropped by appendRefs' callers via
// the reg >= 0 filter below.
func use(r int32) regRef { return regRef{reg: r} }
func def(r int32) regRef { return regRef{reg: r, def: true} }

// appendRefs appends code[pc]'s register references in the exact order
// the executor performs them. This is the one place the packing pass
// models each opcode's operand usage; exec.go's cases are the authority
// it mirrors.
func appendRefs(refs []regRef, in *decodedInstr, calls []callSite) []regRef {
	add := func(rs ...regRef) {
		for _, r := range rs {
			if r.reg >= 0 {
				refs = append(refs, r)
			}
		}
	}
	switch in.op {
	case opInvalid, opFellOff, opErr, opFaultPoint, opBr:
		// no registers
	case opConst, opGlobalAddr, opRandInt:
		add(def(in.dst))
	case opMove, opMoveNorm, opConvert, opHeapBufSize, opLoad, opFieldAddr:
		add(use(in.a), def(in.dst))
	case opAdd, opSub, opMul, opSDiv, opUDiv, opSRem, opURem,
		opAnd, opOr, opXor, opShl, opLShr, opAShr,
		opFAdd64, opFSub64, opFMul64, opFDiv64, opFBin,
		opCmp, opIndexAddr:
		add(use(in.a), use(in.b), def(in.dst))
	case opCmpBr:
		add(use(in.a), use(in.b), def(in.dst))
	case opStore:
		add(use(in.a), use(in.b))
	case opFieldLoad:
		add(use(in.a), def(in.dst), def(int32(uint32(in.imm2))))
	case opIndexLoad:
		add(use(in.a), use(in.b), def(in.dst), def(int32(uint32(in.imm2))))
	case opFieldStore:
		add(use(in.a), def(in.dst), use(int32(uint32(in.imm2))))
	case opIndexStore:
		add(use(in.a), use(in.b), def(in.dst), use(int32(uint32(in.imm2))))
	case opLoadLoadAssert:
		add(use(in.a), def(in.dst), use(in.b), def(int32(uint32(in.imm))))
	case opStore2:
		add(use(in.a), use(in.b), use(int32(uint32(in.imm))), use(int32(uint32(in.imm2))))
	case opConstAdd:
		add(def(in.dst), use(in.a), use(in.b), def(int32(uint32(in.imm2))))
	case opConstAddBr:
		add(def(in.dst), use(in.a), use(in.b), def(int32(in.imm2&0xFFFF)))
	case opConstLoad:
		add(def(in.dst), use(in.a), def(int32(uint32(in.imm2))))
	case opIndexAddr2:
		add(use(in.a), use(in.b), def(in.dst),
			use(int32((in.imm2>>16)&0xFFFF)), use(int32((in.imm2>>32)&0xFFFF)),
			def(int32(in.imm2&0xFFFF)))
	case opFMulAdd64:
		add(use(in.a), use(in.b), def(in.dst),
			use(int32((in.imm2>>16)&0xFFFF)), use(int32((in.imm2>>32)&0xFFFF)),
			def(int32(in.imm2&0xFFFF)))
	case opAlloc:
		add(use(in.a), def(in.dst))
	case opAtomicRMW:
		add(use(in.a), use(in.b))
		if in.imm2 != 0 {
			add(use(int32(in.imm2 - 1)))
		}
		add(def(in.dst))
	case opAtomicCAS:
		add(use(in.a), use(in.b), use(int32(uint32(in.imm2))))
		if r := in.imm2 >> 32; r != 0 {
			add(use(int32(r - 1)))
		}
		add(def(in.dst))
	case opFence:
		// no registers
	case opFree, opOutput, opCondBr, opRet, opExit:
		add(use(in.a))
	case opAssert:
		add(use(in.a), use(in.b))
	case opCall, opCallIndirect:
		if in.op == opCallIndirect {
			add(use(in.a)) // imm2 is the IC slot index, not a register
		}
		for _, r := range calls[in.imm].args {
			add(use(r))
		}
		add(def(in.dst))
	default:
		// An opcode this pass cannot model would make packing unsound;
		// corrupt programs already fail in Compile's recover.
		panic("interp: packFrame: unmodeled opcode")
	}
	return refs
}

// bitset is a dense register set.
type bitset []uint64

func newBitset(n int) bitset       { return make(bitset, (n+63)/64) }
func (s bitset) has(r int32) bool  { return s[r>>6]&(1<<(uint(r)&63)) != 0 }
func (s bitset) add(r int32)       { s[r>>6] |= 1 << (uint(r) & 63) }
func (s bitset) remove(r int32)    { s[r>>6] &^= 1 << (uint(r) & 63) }
func (s bitset) copyFrom(o bitset) { copy(s, o) }

// orWith ors o into s and reports whether s changed.
func (s bitset) orWith(o bitset) bool {
	changed := false
	for i, w := range o {
		if n := s[i] | w; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (s bitset) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// packFrame rewrites cf's code, call argument lists, and parameter ids so
// registers occupy a minimal frame of linear-scan-packed slots, and sets
// cf.numRegs to the packed width. External functions have no code and are
// left untouched.
func packFrame(cf *compiledFunc) {
	n := len(cf.code)
	if n == 0 || cf.numRegs == 0 {
		return
	}
	regs := int32(cf.numRegs)

	// Reachability from entry: unreachable slots (fused constituents, dead
	// code) contribute nothing to liveness and are remapped with a fallback
	// afterwards.
	reachable := make([]bool, n)
	var succBuf []int32
	stack := []int32{0}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if pc < 0 || int(pc) >= n || reachable[pc] {
			continue
		}
		reachable[pc] = true
		succBuf = successors(cf.code, int(pc), succBuf[:0])
		stack = append(stack, succBuf...)
	}

	// Per-pc use/def sets from the execution-ordered references: a use only
	// counts if the register was not already defined earlier in the same
	// instruction (fused ops read their own fresh writes). All bitsets come
	// from one backing allocation — this pass runs per compiled function
	// and its footprint shows up in campaign build cost.
	words := (int(regs) + 63) / 64
	backing := make([]uint64, 3*n*words)
	carve := func(pc, bank int) bitset { return bitset(backing[(bank*n+pc)*words : (bank*n+pc+1)*words]) }
	uses := make([]bitset, n)
	defs := make([]bitset, n)
	var refBuf []regRef
	for pc := 0; pc < n; pc++ {
		if !reachable[pc] {
			continue
		}
		u, d := carve(pc, 0), carve(pc, 1)
		refBuf = appendRefs(refBuf[:0], &cf.code[pc], cf.calls)
		for _, ref := range refBuf {
			if ref.reg >= regs {
				// A register id out of the declared range would make the
				// mapping tables unsound; bail out, keeping the unpacked
				// (always-correct) frame.
				return
			}
			if ref.def {
				d.add(ref.reg)
			} else if !d.has(ref.reg) {
				u.add(ref.reg)
			}
		}
		uses[pc], defs[pc] = u, d
	}

	// Backward liveness to fixpoint: liveIn = uses ∪ (∪ liveIn(succ) − defs).
	liveIn := make([]bitset, n)
	for pc := range liveIn {
		liveIn[pc] = carve(pc, 2)
	}
	out := newBitset(int(regs))
	for changed := true; changed; {
		changed = false
		for pc := n - 1; pc >= 0; pc-- {
			if !reachable[pc] {
				continue
			}
			clear(out)
			succBuf = successors(cf.code, pc, succBuf[:0])
			for _, s := range succBuf {
				if int(s) < n && s >= 0 {
					out.orWith(liveIn[s])
				}
			}
			for i := range out {
				out[i] = (out[i] &^ defs[pc][i]) | uses[pc][i]
			}
			if liveIn[pc].orWith(out) {
				changed = true
			}
		}
	}

	// Conservative intervals: [lo, hi] spans every pc where the register is
	// referenced or live-in. Entry liveness and parameters anchor at -1.
	const unset = int32(-2)
	lo := make([]int32, regs)
	hi := make([]int32, regs)
	for r := range lo {
		lo[r], hi[r] = unset, unset
	}
	touch := func(r, pc int32) {
		if lo[r] == unset || pc < lo[r] {
			lo[r] = pc
		}
		if hi[r] == unset || pc > hi[r] {
			hi[r] = pc
		}
	}
	for _, p := range cf.params {
		touch(p, -1)
	}
	entryLive := newBitset(int(regs))
	entryLive.copyFrom(liveIn[0])
	for pc := 0; pc < n; pc++ {
		if !reachable[pc] {
			continue
		}
		for wi, w := range liveIn[pc] {
			for w != 0 {
				touch(int32(wi*64+bits.TrailingZeros64(w)), int32(pc))
				w &= w - 1
			}
		}
		refBuf = appendRefs(refBuf[:0], &cf.code[pc], cf.calls)
		for _, ref := range refBuf {
			touch(ref.reg, int32(pc))
		}
	}
	// needZero: live into entry without being a parameter — the walker
	// gives such reads 0 from the fresh frame, so the packed slot must be
	// virgin (never written by a parameter or an earlier tenant).
	needZero := newBitset(int(regs))
	needZero.copyFrom(entryLive)
	for _, p := range cf.params {
		needZero.remove(p)
		touch(p, -1)
		lo[p] = -1
	}
	for wi, w := range needZero {
		for w != 0 {
			lo[wi*64+bits.TrailingZeros64(w)] = -1
			w &= w - 1
		}
	}

	// Linear scan: order intervals by start, reuse any slot whose previous
	// tenant's interval has ended (virgin slots only for needZero regs).
	order := make([]int32, 0, regs)
	for r := int32(0); r < regs; r++ {
		if lo[r] != unset {
			order = append(order, r)
		}
	}
	// Insertion sort by lo (register count per function is modest).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && lo[order[j]] < lo[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	type slotState struct {
		end     int32 // current tenant's interval end
		written bool  // ever had a tenant or parameter (not virgin)
	}
	var slots []slotState
	slotOf := make([]int32, regs)
	for r := range slotOf {
		slotOf[r] = -1
	}
	for _, r := range order {
		assigned := int32(-1)
		for si := range slots {
			if slots[si].end < lo[r] && !(needZero.has(r) && slots[si].written) {
				assigned = int32(si)
				break
			}
		}
		if assigned < 0 {
			slots = append(slots, slotState{})
			assigned = int32(len(slots) - 1)
		}
		slots[assigned].end = hi[r]
		slots[assigned].written = true
		slotOf[r] = assigned
	}
	packed := len(slots)
	if packed == 0 {
		packed = 1 // degenerate: keep frames non-empty for simplicity
	}
	if packed >= int(regs) {
		return // nothing gained; keep identity ids
	}

	// Rewrite every register reference. Registers referenced only from
	// unreachable slots (fused constituents) have no interval; they can
	// never execute, so they fold onto slot 0.
	mapReg := func(r int32) int32 {
		if r < 0 {
			return r
		}
		if r < regs && slotOf[r] >= 0 {
			return slotOf[r]
		}
		return 0
	}
	for i := range cf.params {
		cf.params[i] = mapReg(cf.params[i])
	}
	for i := range cf.calls {
		for k := range cf.calls[i].args {
			cf.calls[i].args[k] = mapReg(cf.calls[i].args[k])
		}
	}
	for pc := 0; pc < n; pc++ {
		remapInstr(&cf.code[pc], mapReg)
	}
	cf.numRegs = packed
}

// remapInstr rewrites in's register fields through mapReg, leaving pc
// targets, immediates, widths, and IC slot indices untouched. The field
// roles here mirror appendRefs exactly.
func remapInstr(in *decodedInstr, mapReg func(int32) int32) {
	mapU16 := func(v uint64) uint64 { return uint64(uint16(mapReg(int32(v & 0xFFFF)))) }
	switch in.op {
	case opInvalid, opFellOff, opErr, opFaultPoint, opBr:
		// no registers (opBr's dst is a pc)
	case opConst, opGlobalAddr, opRandInt:
		in.dst = mapReg(in.dst)
	case opMove, opMoveNorm, opConvert, opHeapBufSize, opLoad, opFieldAddr, opAlloc:
		in.dst, in.a = mapReg(in.dst), mapReg(in.a)
	case opAdd, opSub, opMul, opSDiv, opUDiv, opSRem, opURem,
		opAnd, opOr, opXor, opShl, opLShr, opAShr,
		opFAdd64, opFSub64, opFMul64, opFDiv64, opFBin,
		opCmp, opIndexAddr, opCmpBr:
		// opCmpBr's imm/imm2 are pc targets, not registers.
		in.dst, in.a, in.b = mapReg(in.dst), mapReg(in.a), mapReg(in.b)
	case opStore, opAssert:
		in.a, in.b = mapReg(in.a), mapReg(in.b)
	case opFieldLoad, opFieldStore:
		in.dst, in.a = mapReg(in.dst), mapReg(in.a)
		in.imm2 = uint64(uint32(mapReg(int32(uint32(in.imm2)))))
	case opIndexLoad, opIndexStore:
		in.dst, in.a, in.b = mapReg(in.dst), mapReg(in.a), mapReg(in.b)
		in.imm2 = uint64(uint32(mapReg(int32(uint32(in.imm2)))))
	case opLoadLoadAssert:
		in.dst, in.a, in.b = mapReg(in.dst), mapReg(in.a), mapReg(in.b)
		in.imm = uint64(uint32(mapReg(int32(uint32(in.imm)))))
	case opStore2:
		in.a, in.b = mapReg(in.a), mapReg(in.b)
		in.imm = uint64(uint32(mapReg(int32(uint32(in.imm)))))
		in.imm2 = uint64(uint32(mapReg(int32(uint32(in.imm2)))))
	case opConstAdd:
		in.dst, in.a, in.b = mapReg(in.dst), mapReg(in.a), mapReg(in.b)
		in.imm2 = uint64(uint32(mapReg(int32(uint32(in.imm2)))))
	case opConstAddBr:
		in.dst, in.a, in.b = mapReg(in.dst), mapReg(in.a), mapReg(in.b)
		in.imm2 = in.imm2&^0xFFFF | mapU16(in.imm2)
	case opConstLoad:
		in.dst, in.a = mapReg(in.dst), mapReg(in.a)
		in.imm2 = uint64(uint32(mapReg(int32(uint32(in.imm2)))))
	case opIndexAddr2, opFMulAdd64:
		in.dst, in.a, in.b = mapReg(in.dst), mapReg(in.a), mapReg(in.b)
		in.imm2 = in.imm2&^0xFFFFFFFFFFFF |
			mapU16(in.imm2) | mapU16(in.imm2>>16)<<16 | mapU16(in.imm2>>32)<<32
	case opAtomicRMW:
		in.dst, in.a, in.b = mapReg(in.dst), mapReg(in.a), mapReg(in.b)
		if in.imm2 != 0 {
			in.imm2 = uint64(uint32(mapReg(int32(in.imm2-1)))) + 1
		}
	case opAtomicCAS:
		in.dst, in.a, in.b = mapReg(in.dst), mapReg(in.a), mapReg(in.b)
		packed := uint64(uint32(mapReg(int32(uint32(in.imm2)))))
		if r := in.imm2 >> 32; r != 0 {
			packed |= (uint64(uint32(mapReg(int32(r-1)))) + 1) << 32
		}
		in.imm2 = packed
	case opFence:
		// no registers
	case opCall:
		in.dst = mapReg(in.dst) // args live in the callSite, remapped once
	case opCallIndirect:
		in.dst, in.a = mapReg(in.dst), mapReg(in.a) // imm2 is the IC slot
	case opFree, opOutput, opCondBr, opRet, opExit:
		// opCondBr's dst/b are pc targets; only the condition is a register.
		in.a = mapReg(in.a)
	}
}
