package interp

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"dpmr/internal/ir"
	"dpmr/internal/mem"
)

// runBoth executes the module under the reference tree-walker and the
// compiled bytecode and asserts the complete Results are identical,
// returning the (shared) result.
func runBoth(t *testing.T, m *ir.Module, cfg Config) *Result {
	t.Helper()
	ref := Run(m, cfg)
	m.Freeze()
	prog, err := Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ccfg := cfg
	ccfg.Prog = prog
	got := Run(m, ccfg)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("compiled result diverges from reference:\nref: %+v\ngot: %+v", ref, got)
	}
	return got
}

func buildMain(build func(b *ir.Builder)) *ir.Module {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	build(b)
	return m
}

func TestCompiledMatchesWalkerBasics(t *testing.T) {
	// Arithmetic across widths, branches, loops, memory, intrinsics.
	m := buildMain(func(b *ir.Builder) {
		arr := b.MallocN(ir.I64, b.I64(32))
		b.ForRange("i", b.I64(0), b.I64(32), func(i *ir.Reg) {
			b.Store(b.Index(arr, i), b.Mul(i, i))
		})
		s := b.Reg("s", ir.I64)
		b.MoveTo(s, b.I64(0))
		b.ForRange("j", b.I64(0), b.I64(32), func(j *ir.Reg) {
			b.BinTo(s, ir.OpAdd, s, b.Load(b.Index(arr, j)))
		})
		f := b.Bin(ir.OpFMul, b.F64c(1.5), b.F64c(4))
		b.BinTo(s, ir.OpAdd, s, b.Convert(f, ir.I64))
		n := b.I8(127)
		b.BinTo(s, ir.OpAdd, s, b.Convert(b.Add(n, b.I8(1)), ir.I64))
		b.BinTo(s, ir.OpAdd, s, b.HeapBufSize(arr))
		b.Free(arr)
		b.Ret(s)
	})
	res := runBoth(t, m, Config{})
	if res.Kind != ExitNormal {
		t.Fatalf("got %v (%s)", res.Kind, res.Reason)
	}
}

func TestCompiledMatchesWalkerTrapsAndDetections(t *testing.T) {
	cases := map[string]func(b *ir.Builder){
		"divzero":       func(b *ir.Builder) { b.Ret(b.Bin(ir.OpSDiv, b.I64(1), b.I64(0))) },
		"nullload":      func(b *ir.Builder) { b.Ret(b.Load(b.Null(ir.Ptr(ir.I64)))) },
		"doublefree":    func(b *ir.Builder) { p := b.Malloc(ir.I64); b.Free(p); b.Free(p); b.Ret(b.I64(0)) },
		"assertdetect":  func(b *ir.Builder) { b.Assert(b.I64(1), b.I64(2)); b.Ret(b.I64(0)) },
		"exitcode":      func(b *ir.Builder) { b.Exit(b.I64(9)) },
		"negativecount": func(b *ir.Builder) { b.Ret(b.Load(b.MallocN(ir.I64, b.I64(-4)))) },
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			runBoth(t, buildMain(build), Config{})
		})
	}
}

func TestCompiledMatchesWalkerCallsAndIndirect(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	fib := b.Function("fib", ir.I64, []string{"n"}, ir.I64)
	n := fib.Params[0]
	c := b.Cmp(ir.CmpSLT, n, b.I64(2))
	base := b.Block("base")
	rec := b.Block("rec")
	b.CondBr(c, base, rec)
	b.SetBlock(base)
	b.Ret(n)
	b.SetBlock(rec)
	a := b.Call("fib", b.Sub(n, b.I64(1)))
	d := b.Call("fib", b.Sub(n, b.I64(2)))
	b.Ret(b.Add(a, d))

	b.Function("twice", ir.I64, []string{"x"}, ir.I64)
	b.Ret(b.Mul(b.F.Params[0], b.I64(2)))

	b.Function("main", ir.I64, nil)
	fp := b.FuncAddr("twice")
	v := b.CallPtr(fp, b.Call("fib", b.I64(14)))
	b.Ret(v)
	res := runBoth(t, m, Config{})
	if res.Code != 754 { // 2 * fib(14)
		t.Fatalf("got %d, want 754", res.Code)
	}
}

func TestCompiledMatchesWalkerBadIndirectCall(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	p := b.Malloc(ir.I64)
	fp := b.Cast(p, ir.FuncOf(ir.I64))
	b.Ret(b.CallPtr(fp))
	res := runBoth(t, m, Config{})
	if res.Kind != ExitTrap {
		t.Fatalf("got %v, want trap", res.Kind)
	}
}

func TestCompiledMatchesWalkerGlobalsAndOutput(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal("counter", ir.I64)
	g.Init = []byte{5, 0, 0, 0, 0, 0, 0, 0}
	holder := m.AddGlobal("holder", ir.Ptr(ir.I64))
	holder.Refs = []ir.RefInit{{Offset: 0, Global: "counter"}}
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	cp := b.Load(b.GlobalAddr("holder"))
	b.Store(cp, b.Add(b.Load(cp), b.I64(37)))
	b.OutInt(b.Load(b.GlobalAddr("counter")))
	b.Out(b.F64c(2.5), ir.OutFloat)
	b.Out(b.I8('x'), ir.OutByte)
	b.Ret(b.I64(0))
	res := runBoth(t, m, Config{})
	if want := "42\n2.5\nx"; string(res.Output) != want {
		t.Fatalf("output %q, want %q", res.Output, want)
	}
}

func TestCompiledMatchesWalkerTimeout(t *testing.T) {
	m := buildMain(func(b *ir.Builder) {
		b.ForRange("i", b.I64(0), b.I64(1000000), func(i *ir.Reg) {})
		b.Ret(b.I64(0))
	})
	res := runBoth(t, m, Config{StepLimit: 777})
	if res.Kind != ExitTimeout {
		t.Fatalf("got %v, want timeout", res.Kind)
	}
}

func TestCompiledMatchesWalkerRandSequence(t *testing.T) {
	m := buildMain(func(b *ir.Builder) {
		s := b.Reg("s", ir.I64)
		b.MoveTo(s, b.I64(0))
		b.ForRange("i", b.I64(0), b.I64(100), func(i *ir.Reg) {
			b.BinTo(s, ir.OpAdd, s, b.RandInt(1, 1000))
		})
		b.Ret(s)
	})
	runBoth(t, m, Config{Seed: 99})
}

// TestCompiledFellOffBlock asserts the synthetic guard reproduces the
// walker's fell-off error (an unterminated block is malformed IR, but
// executable).
func TestCompiledFellOffBlock(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	b.B.Append(&ir.ConstInt{Dst: b.Reg("x", ir.I64), Val: 1}) // no terminator
	res := runBoth(t, m, Config{})
	if res.Kind != ExitError || !strings.Contains(res.Reason, "fell off block") {
		t.Fatalf("got %v (%s), want fell-off error", res.Kind, res.Reason)
	}
}

// TestExternArityChecked is the extern-arity bugfix test: calling an
// external function with the wrong argument count must fail cleanly (it
// previously invoked the implementation, which would index out of
// bounds), on both engines.
func TestExternArityChecked(t *testing.T) {
	m := ir.NewModule("t")
	m.AddExtern("add2", ir.FuncOf(ir.I64, ir.I64, ir.I64))
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	b.Ret(b.Call("add2", b.I64(1), b.I64(2)))
	m.Freeze()
	externs := map[string]Extern{
		"add2": func(vm *VM, args []uint64) (uint64, error) { return args[0] + args[1], nil },
	}
	for _, compiled := range []bool{false, true} {
		cfg := Config{Externs: externs}
		if compiled {
			prog, err := Compile(m)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Prog = prog
		}
		vm, err := NewVM(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Well-formed call path still works.
		if v, err := vm.Call(m.Func("add2"), []uint64{30, 12}); err != nil || v != 42 {
			t.Fatalf("compiled=%v: good call got (%d, %v)", compiled, v, err)
		}
		// Under-supplied arguments must error, not panic inside the impl.
		_, err = vm.Call(m.Func("add2"), []uint64{30})
		if err == nil || !strings.Contains(err.Error(), "call of add2 with 1 args, want 2") {
			t.Fatalf("compiled=%v: arity error = %v", compiled, err)
		}
	}
}

// TestRandIntDegenerateRanges is the RandInt overflow bugfix test: the
// previously-panicking extreme ranges now produce a deterministic value
// or a clean error, identically on both engines.
func TestRandIntDegenerateRanges(t *testing.T) {
	build := func(lo, hi int64) *ir.Module {
		return buildMain(func(b *ir.Builder) {
			b.Ret(b.RandInt(lo, hi))
		})
	}
	// Full int64 range: span overflows to 0; draws from the full-width
	// generator instead of panicking.
	res := runBoth(t, build(math.MinInt64, math.MaxInt64), Config{Seed: 3})
	if res.Kind != ExitNormal {
		t.Fatalf("full range: %v (%s)", res.Kind, res.Reason)
	}
	// Half-open overflow: hi-lo+1 < 0.
	res = runBoth(t, build(math.MinInt64, 5), Config{Seed: 3})
	if res.Kind != ExitNormal {
		t.Fatalf("overflowing span: %v (%s)", res.Kind, res.Reason)
	}
	// Empty range: runtime error (and rejected by ir.Verify).
	res = runBoth(t, build(10, 9), Config{Seed: 3})
	if res.Kind != ExitError || !strings.Contains(res.Reason, "empty range") {
		t.Fatalf("empty range: %v (%s)", res.Kind, res.Reason)
	}
	// Unchanged common case: single Int63n draw, in range.
	res = runBoth(t, build(5, 6), Config{Seed: 3})
	if res.Code != 5 && res.Code != 6 {
		t.Fatalf("in-range draw: %d", res.Code)
	}
}

// TestCompileRequiresFrozen and friends: Compile's contract.
func TestCompileRequiresFrozen(t *testing.T) {
	m := buildMain(func(b *ir.Builder) { b.Ret(b.I64(0)) })
	if _, err := Compile(m); err == nil {
		t.Fatal("Compile of unfrozen module must fail")
	}
	m.Freeze()
	if _, err := Compile(m); err != nil {
		t.Fatalf("Compile of frozen module: %v", err)
	}
}

func TestProgModuleMismatchRejected(t *testing.T) {
	m1 := buildMain(func(b *ir.Builder) { b.Ret(b.I64(1)) })
	m2 := buildMain(func(b *ir.Builder) { b.Ret(b.I64(2)) })
	m1.Freeze()
	m2.Freeze()
	prog, err := Compile(m1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVM(m2, Config{Prog: prog}); err == nil {
		t.Fatal("NewVM must reject a program compiled from a different module")
	}
}

// TestTraceFallsBackToWalker: a traced run uses the tree-walking loop (so
// the trace format is exact) and still produces the identical Result.
func TestTraceFallsBackToWalker(t *testing.T) {
	m := buildMain(func(b *ir.Builder) {
		b.OutInt(b.Add(b.I64(40), b.I64(2)))
		b.Ret(b.I64(0))
	})
	var refTrace bytes.Buffer
	ref := Run(m, Config{Trace: &refTrace})
	m.Freeze()
	prog, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	var gotTrace bytes.Buffer
	got := Run(m, Config{Trace: &gotTrace, Prog: prog})
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("traced results diverge:\nref: %+v\ngot: %+v", ref, got)
	}
	if refTrace.String() != gotTrace.String() || refTrace.Len() == 0 {
		t.Fatalf("trace output diverges")
	}
}

// TestCompiledWithSpacePool: pooled spaces replay identically across
// compiled runs (and to unpooled runs).
func TestCompiledWithSpacePool(t *testing.T) {
	m := buildMain(func(b *ir.Builder) {
		p := b.MallocN(ir.I64, b.I64(100))
		b.ForRange("i", b.I64(0), b.I64(100), func(i *ir.Reg) {
			b.Store(b.Index(p, i), b.RandInt(1, 50))
		})
		b.Free(p)
		b.Ret(b.Load(b.Index(p, b.I64(7)))) // dangling read: deterministic garbage
	})
	m.Freeze()
	prog, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	pool := mem.NewPool(mem.Config{})
	base := Run(m, Config{Seed: 4, Prog: prog})
	for i := 0; i < 3; i++ {
		got := Run(m, Config{Seed: 4, Prog: prog, SpacePool: pool})
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("pooled run %d diverges:\nref: %+v\ngot: %+v", i, base, got)
		}
	}
}

// TestCompiledExternCallback: an extern calling back into IR (the qsort
// pattern) runs the callee compiled and bit-identically.
func TestCompiledExternCallback(t *testing.T) {
	m := ir.NewModule("t")
	m.AddExtern("apply", ir.FuncOf(ir.I64, ir.Ptr(ir.FuncOf(ir.I64, ir.I64)), ir.I64))
	b := ir.NewBuilder(m)
	b.Function("inc", ir.I64, []string{"x"}, ir.I64)
	b.Ret(b.Add(b.F.Params[0], b.I64(1)))
	b.Function("main", ir.I64, nil)
	b.Ret(b.Call("apply", b.FuncAddr("inc"), b.I64(41)))
	externs := map[string]Extern{
		"apply": func(vm *VM, args []uint64) (uint64, error) {
			fn, ok := vm.FuncByAddr(args[0])
			if !ok {
				return 0, &mem.Trap{Reason: "bad function pointer", Addr: args[0]}
			}
			return vm.Call(fn, []uint64{args[1]})
		},
	}
	res := runBoth(t, m, Config{Externs: externs})
	if res.Code != 42 {
		t.Fatalf("got %d, want 42 (%s)", res.Code, res.Reason)
	}
}

// TestSpacePoolConfigMismatchRejected: a pool built for a different
// memory geometry than Config.Mem is refused rather than silently
// running the VM in the wrong address space.
func TestSpacePoolConfigMismatchRejected(t *testing.T) {
	m := buildMain(func(b *ir.Builder) { b.Ret(b.I64(0)) })
	small := mem.NewPool(mem.Config{HeapBytes: 64 * 1024, StackBytes: 8 * 1024, GlobalBytes: 4096})
	if _, err := NewVM(m, Config{SpacePool: small}); err == nil {
		t.Fatal("NewVM must reject a pool whose config differs from Config.Mem")
	}
	// A zero Mem config and a pool of spelled-out defaults are the same
	// geometry and must be accepted.
	def := mem.NewPool(mem.Config{})
	if _, err := NewVM(m, Config{SpacePool: def}); err != nil {
		t.Fatalf("defaults-vs-zero pool rejected: %v", err)
	}
}
