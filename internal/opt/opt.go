// Package opt implements the post-transformation optimizer stage of the
// paper's tool chain (Figure 3.4: DPMR-transformed bitcode is passed
// through the LLVM optimizer before the backend; Figure 3.5 shows
// "optimize" stages in every variant build). Two conservative passes are
// provided:
//
//   - constant folding: block-local evaluation of integer arithmetic,
//     comparisons, and conversions whose operands are known constants;
//   - dead code elimination: global liveness analysis removes pure
//     instructions whose results are never used (the DPMR transformation
//     leaves a tail of unused companion registers — null NSOPs, shadow
//     address computations for skipped checks — that this pass cleans up).
//
// Instructions that can trap (loads, stores, divisions, frees, calls,
// heapbufsize) or perturb hidden state (RandInt advances the diversity
// PRNG) are never removed or folded away, so optimized and unoptimized
// variants remain observationally equivalent — asserted by the
// differential tests.
package opt

import (
	"dpmr/internal/ir"
)

// Stats reports what the optimizer did.
type Stats struct {
	Folded  int // instructions replaced by constants
	Removed int // dead instructions eliminated
}

// Run optimizes the module in place until a fixpoint (at most a few
// rounds) and returns cumulative statistics.
func Run(m *ir.Module) Stats {
	var total Stats
	for round := 0; round < 8; round++ {
		var st Stats
		for _, f := range m.Funcs {
			if f.External {
				continue
			}
			st.Folded += foldConstants(f)
			st.Removed += eliminateDead(f)
		}
		total.Folded += st.Folded
		total.Removed += st.Removed
		if st.Folded == 0 && st.Removed == 0 {
			break
		}
	}
	return total
}

// ---------------------------------------------------------------------------
// Constant folding (block-local)

type constVal struct {
	known bool
	val   int64
}

func foldConstants(f *ir.Func) int {
	folded := 0
	for _, blk := range f.Blocks {
		known := map[int]constVal{}
		for idx, in := range blk.Instrs {
			switch i := in.(type) {
			case *ir.ConstInt:
				known[i.Dst.ID] = constVal{known: true, val: normInt(i.Val, i.Dst.Type)}
			case *ir.Move:
				if cv, ok := known[i.Src.ID]; ok && cv.known && i.Dst.Type.Kind() == ir.KindInt {
					blk.Instrs[idx] = &ir.ConstInt{Dst: i.Dst, Val: cv.val}
					known[i.Dst.ID] = cv
					folded++
				} else {
					delete(known, i.Dst.ID)
				}
			case *ir.BinOp:
				x, xok := known[i.X.ID]
				y, yok := known[i.Y.ID]
				if xok && x.known && yok && y.known && i.Dst.Type.Kind() == ir.KindInt {
					if v, ok := evalBin(i.Op, x.val, y.val, i.Dst.Type); ok {
						blk.Instrs[idx] = &ir.ConstInt{Dst: i.Dst, Val: v}
						known[i.Dst.ID] = constVal{known: true, val: v}
						folded++
						continue
					}
				}
				delete(known, i.Dst.ID)
			case *ir.Cmp:
				x, xok := known[i.X.ID]
				y, yok := known[i.Y.ID]
				if xok && x.known && yok && y.known {
					if v, ok := evalCmp(i.Op, x.val, y.val); ok {
						blk.Instrs[idx] = &ir.ConstInt{Dst: i.Dst, Val: v}
						known[i.Dst.ID] = constVal{known: true, val: v}
						folded++
						continue
					}
				}
				delete(known, i.Dst.ID)
			case *ir.Convert:
				if cv, ok := known[i.Src.ID]; ok && cv.known &&
					i.Src.Type.Kind() == ir.KindInt && i.Dst.Type.Kind() == ir.KindInt {
					v := normInt(cv.val, i.Dst.Type)
					blk.Instrs[idx] = &ir.ConstInt{Dst: i.Dst, Val: v}
					known[i.Dst.ID] = constVal{known: true, val: v}
					folded++
					continue
				}
				delete(known, i.Dst.ID)
			default:
				if d := ir.Def(in); d != nil {
					delete(known, d.ID)
				}
			}
		}
	}
	return folded
}

func evalBin(op ir.BinKind, x, y int64, t ir.Type) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return normInt(x+y, t), true
	case ir.OpSub:
		return normInt(x-y, t), true
	case ir.OpMul:
		return normInt(x*y, t), true
	case ir.OpAnd:
		return normInt(x&y, t), true
	case ir.OpOr:
		return normInt(x|y, t), true
	case ir.OpXor:
		return normInt(x^y, t), true
	case ir.OpShl:
		return normInt(x<<(uint64(y)&63), t), true
	case ir.OpLShr:
		return normInt(int64(maskTo(uint64(x), t)>>(uint64(y)&63)), t), true
	case ir.OpAShr:
		return normInt(x>>(uint64(y)&63), t), true
	case ir.OpSDiv, ir.OpSRem:
		// Folding away a potential trap would change behaviour; fold only
		// well-defined cases.
		if y == 0 {
			return 0, false
		}
		if op == ir.OpSDiv {
			return normInt(x/y, t), true
		}
		return normInt(x%y, t), true
	case ir.OpUDiv, ir.OpURem:
		uy := maskTo(uint64(y), t)
		if uy == 0 {
			return 0, false
		}
		ux := maskTo(uint64(x), t)
		if op == ir.OpUDiv {
			return normInt(int64(ux/uy), t), true
		}
		return normInt(int64(ux%uy), t), true
	default:
		return 0, false // float ops: not folded (formatting/rounding fidelity)
	}
}

func evalCmp(op ir.CmpKind, x, y int64) (int64, bool) {
	var b bool
	switch op {
	case ir.CmpEQ:
		b = x == y
	case ir.CmpNE:
		b = x != y
	case ir.CmpSLT:
		b = x < y
	case ir.CmpSLE:
		b = x <= y
	case ir.CmpSGT:
		b = x > y
	case ir.CmpSGE:
		b = x >= y
	case ir.CmpULT:
		b = uint64(x) < uint64(y)
	case ir.CmpULE:
		b = uint64(x) <= uint64(y)
	case ir.CmpUGT:
		b = uint64(x) > uint64(y)
	case ir.CmpUGE:
		b = uint64(x) >= uint64(y)
	default:
		return 0, false
	}
	if b {
		return 1, true
	}
	return 0, true
}

func normInt(v int64, t ir.Type) int64 {
	it, ok := t.(*ir.IntType)
	if !ok {
		return v
	}
	switch it.Bits {
	case 1:
		return v & 1
	case 8:
		return int64(int8(v))
	case 16:
		return int64(int16(v))
	case 32:
		return int64(int32(v))
	default:
		return v
	}
}

func maskTo(v uint64, t ir.Type) uint64 {
	it, ok := t.(*ir.IntType)
	if !ok || it.Bits >= 64 {
		return v
	}
	return v & ((1 << uint(it.Bits)) - 1)
}

// ---------------------------------------------------------------------------
// Dead code elimination (global liveness)

// pure reports whether an instruction has no effect beyond defining its
// destination register: safe to delete when the destination is dead.
func pure(in ir.Instr) bool {
	switch i := in.(type) {
	case *ir.ConstInt, *ir.ConstFloat, *ir.ConstNull, *ir.Move, *ir.Cmp,
		*ir.Convert, *ir.FieldAddr, *ir.IndexAddr, *ir.Bitcast,
		*ir.PtrToInt, *ir.IntToPtr, *ir.FuncAddr, *ir.GlobalAddr:
		return true
	case *ir.BinOp:
		// Divisions may trap; everything else is pure.
		switch i.Op {
		case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem:
			return false
		}
		return true // float arithmetic never traps in this VM
	default:
		return false
	}
}

// uses appends the operand registers of in to buf.
func uses(in ir.Instr, buf []*ir.Reg) []*ir.Reg {
	switch i := in.(type) {
	case *ir.Move:
		buf = append(buf, i.Src)
	case *ir.BinOp:
		buf = append(buf, i.X, i.Y)
	case *ir.Cmp:
		buf = append(buf, i.X, i.Y)
	case *ir.Convert:
		buf = append(buf, i.Src)
	case *ir.Alloc:
		if i.Count != nil {
			buf = append(buf, i.Count)
		}
	case *ir.Free:
		buf = append(buf, i.Ptr)
	case *ir.Load:
		buf = append(buf, i.Ptr)
	case *ir.Store:
		buf = append(buf, i.Ptr, i.Val)
	case *ir.FieldAddr:
		buf = append(buf, i.Ptr)
	case *ir.IndexAddr:
		buf = append(buf, i.Ptr, i.Index)
	case *ir.Bitcast:
		buf = append(buf, i.Src)
	case *ir.PtrToInt:
		buf = append(buf, i.Src)
	case *ir.IntToPtr:
		buf = append(buf, i.Src)
	case *ir.Call:
		if i.CalleePtr != nil {
			buf = append(buf, i.CalleePtr)
		}
		buf = append(buf, i.Args...)
	case *ir.Ret:
		if i.Val != nil {
			buf = append(buf, i.Val)
		}
	case *ir.CondBr:
		buf = append(buf, i.Cond)
	case *ir.Assert:
		buf = append(buf, i.X, i.Y)
	case *ir.RandInt:
		// no operands
	case *ir.HeapBufSize:
		buf = append(buf, i.Ptr)
	case *ir.Output:
		buf = append(buf, i.Val)
	case *ir.Exit:
		if i.Val != nil {
			buf = append(buf, i.Val)
		}
	case *ir.AtomicRMW:
		buf = append(buf, i.Ptr, i.Val)
		if i.RPtr != nil {
			buf = append(buf, i.RPtr)
		}
	case *ir.AtomicCAS:
		buf = append(buf, i.Ptr, i.Old, i.New)
		if i.RPtr != nil {
			buf = append(buf, i.RPtr)
		}
	}
	return buf
}

// succs returns the successor blocks of a block's terminator.
func succs(blk *ir.Block) []*ir.Block {
	if len(blk.Instrs) == 0 {
		return nil
	}
	switch t := blk.Instrs[len(blk.Instrs)-1].(type) {
	case *ir.Br:
		return []*ir.Block{t.Target}
	case *ir.CondBr:
		return []*ir.Block{t.True, t.False}
	default:
		return nil
	}
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }
func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << uint(i%64) }

func (b bitset) orInto(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

// eliminateDead removes pure instructions whose destinations are dead.
func eliminateDead(f *ir.Func) int {
	n := f.NumRegs()
	liveIn := make(map[*ir.Block]bitset, len(f.Blocks))
	liveOut := make(map[*ir.Block]bitset, len(f.Blocks))
	for _, blk := range f.Blocks {
		liveIn[blk] = newBitset(n)
		liveOut[blk] = newBitset(n)
	}
	var scratch []*ir.Reg
	// Backwards dataflow to fixpoint.
	for changed := true; changed; {
		changed = false
		for bi := len(f.Blocks) - 1; bi >= 0; bi-- {
			blk := f.Blocks[bi]
			out := liveOut[blk]
			for _, s := range succs(blk) {
				if out.orInto(liveIn[s]) {
					changed = true
				}
			}
			in := out.clone()
			for k := len(blk.Instrs) - 1; k >= 0; k-- {
				inr := blk.Instrs[k]
				if d := ir.Def(inr); d != nil {
					in.clear(d.ID)
				}
				scratch = uses(inr, scratch[:0])
				for _, u := range scratch {
					in.set(u.ID)
				}
			}
			if liveIn[blk].orInto(in) {
				changed = true
			}
		}
	}
	// Sweep: walk each block backwards tracking liveness, dropping pure
	// instructions with dead destinations.
	removed := 0
	for _, blk := range f.Blocks {
		live := liveOut[blk].clone()
		keep := make([]bool, len(blk.Instrs))
		for k := len(blk.Instrs) - 1; k >= 0; k-- {
			inr := blk.Instrs[k]
			d := ir.Def(inr)
			if d != nil && !live.get(d.ID) && pure(inr) {
				keep[k] = false
				removed++
				continue
			}
			keep[k] = true
			if d != nil {
				live.clear(d.ID)
			}
			scratch = uses(inr, scratch[:0])
			for _, u := range scratch {
				live.set(u.ID)
			}
		}
		if removed > 0 {
			out := blk.Instrs[:0]
			for k, inr := range blk.Instrs {
				if keep[k] {
					out = append(out, inr)
				}
			}
			blk.Instrs = out
		}
	}
	return removed
}
