package opt_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/opt"
	"dpmr/internal/workloads"
)

func TestConstantFoldingChain(t *testing.T) {
	m := ir.NewModule("fold")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	x := b.I64(6)
	y := b.I64(7)
	z := b.Mul(x, y)
	w := b.Add(z, b.I64(0))
	b.Ret(w)
	st := opt.Run(m)
	if st.Folded < 2 {
		t.Errorf("folded = %d, want >= 2", st.Folded)
	}
	res := interp.Run(m, interp.Config{})
	if res.Code != 42 {
		t.Fatalf("result changed: %d", res.Code)
	}
	// After folding + DCE only constants feeding the return remain.
	instrs := m.Func("main").Blocks[0].Instrs
	for _, in := range instrs[:len(instrs)-1] {
		if _, ok := in.(*ir.ConstInt); !ok {
			t.Errorf("residual non-constant instruction %s", in)
		}
	}
}

func TestDeadCodeElimination(t *testing.T) {
	m := ir.NewModule("dce")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	dead := b.Add(b.I64(1), b.I64(2)) // never used
	_ = dead
	deadPtr := b.Null(ir.Ptr(ir.I64)) // never used
	_ = deadPtr
	live := b.I64(9)
	b.Ret(live)
	before := m.CollectStats().Instrs
	st := opt.Run(m)
	after := m.CollectStats().Instrs
	if st.Removed == 0 || after >= before {
		t.Errorf("removed=%d, instrs %d→%d", st.Removed, before, after)
	}
	res := interp.Run(m, interp.Config{})
	if res.Code != 9 {
		t.Fatalf("result changed: %d", res.Code)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := ir.NewModule("keep")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	p := b.Malloc(ir.I64) // result used only by store/free
	b.Store(p, b.I64(5))
	v := b.Load(p) // load result unused — but loads may trap: kept
	_ = v
	div := b.Bin(ir.OpSDiv, b.I64(10), b.I64(0)) // unused but trapping
	_ = div
	b.Free(p)
	b.Ret(b.I64(0))
	opt.Run(m)
	res := interp.Run(m, interp.Config{})
	if res.Kind != interp.ExitTrap {
		t.Errorf("the trapping division must survive DCE: %v", res.Kind)
	}
}

func TestDCEKeepsRandIntStream(t *testing.T) {
	// RandInt advances the diversity PRNG: removing an "unused" draw
	// would shift later draws.
	m := ir.NewModule("rng")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	first := b.RandInt(1, 1000)
	_ = first // unused, but must not be removed
	second := b.RandInt(1, 1000)
	b.Ret(second)
	golden := interp.Run(m, interp.Config{Seed: 4})
	opt.Run(m)
	res := interp.Run(m, interp.Config{Seed: 4})
	if res.Code != golden.Code {
		t.Error("DCE changed the PRNG stream")
	}
}

func TestOptimizerOnTransformedWorkloadsPreservesBehaviour(t *testing.T) {
	// The paper's Figure 3.4 pipeline: transform, then optimize. The
	// optimized DPMR variant must behave identically and run no slower.
	for _, wname := range []string{"mcf", "bzip2"} {
		w, err := workloads.ByName(wname)
		if err != nil {
			t.Fatal(err)
		}
		xm, err := dpmr.Transform(w.Build(), dpmr.Config{
			Design: dpmr.SDS, Policy: dpmr.StaticLoadChecking{Percent: 10}, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := interp.Config{Externs: extlib.Wrapped(dpmr.SDS), Seed: 2}
		before := interp.Run(xm, cfg)
		st := opt.Run(xm)
		if err := ir.Verify(xm); err != nil {
			t.Fatalf("%s: optimized module invalid: %v", wname, err)
		}
		after := interp.Run(xm, cfg)
		if after.Kind != before.Kind || after.Code != before.Code || !bytes.Equal(after.Output, before.Output) {
			t.Fatalf("%s: optimizer changed behaviour", wname)
		}
		if st.Removed == 0 {
			t.Errorf("%s: expected the optimizer to find dead DPMR residue", wname)
		}
		if after.Cycles > before.Cycles {
			t.Errorf("%s: optimized run slower: %d > %d", wname, after.Cycles, before.Cycles)
		}
		t.Logf("%s: folded %d, removed %d, cycles %d → %d",
			wname, st.Folded, st.Removed, before.Cycles, after.Cycles)
	}
}

func TestOptimizerIdempotent(t *testing.T) {
	w, _ := workloads.ByName("art")
	m := w.Build()
	opt.Run(m)
	text1 := m.String()
	st := opt.Run(m)
	if st.Folded != 0 || st.Removed != 0 {
		t.Errorf("second run not a no-op: %+v", st)
	}
	if m.String() != text1 {
		t.Error("second run changed the module")
	}
}

func TestPropertyOptimizerPreservesRandomPrograms(t *testing.T) {
	// Differential: optimizing any generated workload-like module must
	// not change observable behaviour.
	f := func(seed int64) bool {
		seed &= 0xFFF
		w := workloads.All()[int(seed)%4]
		m := w.Build()
		golden := interp.Run(m, interp.Config{Externs: extlib.Base()})
		opt.Run(m)
		if err := ir.Verify(m); err != nil {
			return false
		}
		res := interp.Run(m, interp.Config{Externs: extlib.Base()})
		return res.Kind == golden.Kind && res.Code == golden.Code &&
			bytes.Equal(res.Output, golden.Output)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
