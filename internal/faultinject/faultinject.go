// Package faultinject implements the paper's compiler-based fault
// injection framework (§3.4). Faults simulate software bugs: injected
// faulty code executes every time the injected location executes, unlike
// runtime injectors that fire once. Injections are applied to the input
// program *before* the DPMR transformation, just as real bugs would be.
//
// Two fault types are provided:
//
//   - heap array resize — the number of objects requested at a heap array
//     allocation site is reduced by 50%, leading to out-of-bounds accesses;
//   - immediate free — a heap buffer is deallocated immediately after its
//     allocation, leading to reads, writes, and frees after free.
//
// A FaultPoint marker is inserted with the faulty code so the interpreter
// records the cycle of first execution ("successful fault injection").
package faultinject

import (
	"fmt"

	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/mem"
)

// Kind is a fault-injection type.
type Kind uint8

// The evaluated fault types (§3.4).
const (
	HeapArrayResize Kind = iota + 1
	ImmediateFree
)

func (k Kind) String() string {
	switch k {
	case HeapArrayResize:
		return "heap-array-resize"
	case ImmediateFree:
		return "immediate-free"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Site identifies one injectable location.
type Site struct {
	Kind Kind
	ID   int // allocation-site id (ir.Alloc.Site)
	Fn   string
}

func (s Site) String() string {
	return fmt.Sprintf("%s@%s/site%d", s.Kind, s.Fn, s.ID)
}

// Enumerate lists the injectable sites of the given kind in deterministic
// order. Heap array resizes target heap array allocation sites; immediate
// frees target all heap allocation sites. Statically non-manifestable
// resizes (the halved request rounds to the same allocator size class,
// §3.4) are filtered out.
func Enumerate(m *ir.Module, kind Kind) []Site {
	var sites []Site
	for _, as := range m.HeapAllocSites() {
		a := as.Alloc
		switch kind {
		case HeapArrayResize:
			if a.Count == nil {
				continue
			}
			if v, ok := staticCount(as.Fn, a.Count); ok {
				stride := uint64(interp.PaddedSize(a.Elem))
				if mem.ClassFor(v*stride) == mem.ClassFor(v/2*stride) {
					continue // provably benign
				}
			}
			sites = append(sites, Site{Kind: kind, ID: a.Site, Fn: as.Fn.Name})
		case ImmediateFree:
			sites = append(sites, Site{Kind: kind, ID: a.Site, Fn: as.Fn.Name})
		}
	}
	return sites
}

// staticCount reports the constant value of reg if it is defined exactly
// once in fn, by an integer constant.
func staticCount(fn *ir.Func, reg *ir.Reg) (uint64, bool) {
	var val uint64
	defs := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			d := ir.Def(in)
			if d != reg {
				continue
			}
			defs++
			ci, ok := in.(*ir.ConstInt)
			if !ok {
				return 0, false
			}
			val = uint64(ci.Val)
		}
	}
	if defs != 1 {
		return 0, false
	}
	return val, true
}

// Apply injects the fault at site s and returns the faulty module. The
// input module is never modified: Apply deep-clones m and rewrites the
// clone, so one built module (possibly frozen and shared across
// concurrent VMs) can back many injections. Allocation-site IDs are
// preserved by the clone, which is what keeps Site values portable
// between the enumeration module and the injected module.
func Apply(m *ir.Module, s Site) (*ir.Module, error) {
	out := m.Clone()
	if err := applyInPlace(out, s); err != nil {
		return nil, err
	}
	return out, nil
}

func applyInPlace(m *ir.Module, s Site) error {
	fn := m.Func(s.Fn)
	if fn == nil {
		return fmt.Errorf("faultinject: no function %s", s.Fn)
	}
	for _, blk := range fn.Blocks {
		for idx, in := range blk.Instrs {
			a, ok := in.(*ir.Alloc)
			if !ok || a.Site != s.ID || a.Kind != ir.AllocHeap {
				continue
			}
			switch s.Kind {
			case HeapArrayResize:
				if a.Count == nil {
					return fmt.Errorf("faultinject: site %d is not an array site", s.ID)
				}
				// count' = count / 2, inserted before the allocation.
				two := fn.NewReg("fi.two", a.Count.Type)
				half := fn.NewReg("fi.half", a.Count.Type)
				pre := []ir.Instr{
					&ir.FaultPoint{Site: s.ID},
					&ir.ConstInt{Dst: two, Val: 2},
					&ir.BinOp{Dst: half, X: a.Count, Y: two, Op: ir.OpUDiv},
				}
				blk.Instrs = spliceBefore(blk.Instrs, idx, pre)
				a.Count = half
			case ImmediateFree:
				post := []ir.Instr{
					&ir.FaultPoint{Site: s.ID},
					&ir.Free{Ptr: a.Dst},
				}
				blk.Instrs = spliceBefore(blk.Instrs, idx+1, post)
			}
			return nil
		}
	}
	return fmt.Errorf("faultinject: site %d not found in %s", s.ID, s.Fn)
}

func spliceBefore(instrs []ir.Instr, idx int, ins []ir.Instr) []ir.Instr {
	out := make([]ir.Instr, 0, len(instrs)+len(ins))
	out = append(out, instrs[:idx]...)
	out = append(out, ins...)
	out = append(out, instrs[idx:]...)
	return out
}
