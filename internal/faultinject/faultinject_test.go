package faultinject

import (
	"testing"

	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

// buildProgram: allocates a 6-element array with a dynamic-ish count,
// fills it, sums it, frees it.
func buildProgram() *ir.Module {
	m := ir.NewModule("fi")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	n := b.I64(6)
	arr := b.MallocN(ir.I64, n) // site 0: 48-byte class
	small := b.Malloc(ir.I64)   // site 1: scalar
	b.Store(small, b.I64(1))
	b.ForRange("i", b.I64(0), n, func(i *ir.Reg) {
		b.Store(b.Index(arr, i), i)
	})
	s := b.Reg("s", ir.I64)
	b.MoveTo(s, b.I64(0))
	b.ForRange("j", b.I64(0), n, func(j *ir.Reg) {
		b.BinTo(s, ir.OpAdd, s, b.Load(b.Index(arr, j)))
	})
	b.BinTo(s, ir.OpAdd, s, b.Load(small))
	b.Free(arr)
	b.Free(small)
	b.Ret(s)
	return m
}

func TestEnumerateResizeSitesOnlyArrays(t *testing.T) {
	m := buildProgram()
	sites := Enumerate(m, HeapArrayResize)
	if len(sites) != 1 {
		t.Fatalf("resize sites = %d, want 1 (scalar site excluded)", len(sites))
	}
	if sites[0].ID != 0 {
		t.Errorf("site id = %d, want 0", sites[0].ID)
	}
}

func TestEnumerateImmediateFreeAllHeapSites(t *testing.T) {
	m := buildProgram()
	sites := Enumerate(m, ImmediateFree)
	if len(sites) != 2 {
		t.Fatalf("immediate-free sites = %d, want 2", len(sites))
	}
}

func TestStaticFilterDropsBenignResizes(t *testing.T) {
	m := ir.NewModule("benign")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	// 3 i64s = 24 bytes; halved to 1 → 8 bytes → still the 24-byte class:
	// the resize provably cannot manifest (§3.4's example).
	arr := b.MallocN(ir.I64, b.I64(3))
	b.Store(b.Index(arr, b.I64(0)), b.I64(1))
	b.Ret(b.Load(b.Index(arr, b.I64(0))))
	sites := Enumerate(m, HeapArrayResize)
	if len(sites) != 0 {
		t.Errorf("benign resize must be filtered, got %d sites", len(sites))
	}
}

func TestApplyResizeFaultManifests(t *testing.T) {
	m := buildProgram()
	sites := Enumerate(m, HeapArrayResize)
	fm, err := Apply(m, sites[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(fm); err != nil {
		t.Fatalf("injected module fails verify: %v", err)
	}
	res := interp.Run(fm, interp.Config{})
	if !res.FaultSeen {
		t.Fatal("fault point never executed")
	}
	// 6 i64 halved to 3 → 24-byte class instead of 48: writes to arr[3..5]
	// overflow into the next buffer. The run proceeds (no trap) but the
	// result is corrupted relative to golden 16.
	golden := interp.Run(buildProgram(), interp.Config{})
	if golden.Code != 16 {
		t.Fatalf("golden = %d", golden.Code)
	}
	if res.Kind == interp.ExitNormal && res.Code == golden.Code {
		t.Error("resize fault did not change observable behaviour")
	}
}

func TestApplyImmediateFreeManifests(t *testing.T) {
	m := buildProgram()
	site := Site{Kind: ImmediateFree, ID: 0, Fn: "main"}
	fm, err := Apply(m, site)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(fm); err != nil {
		t.Fatalf("injected module fails verify: %v", err)
	}
	res := interp.Run(fm, interp.Config{})
	if !res.FaultSeen {
		t.Fatal("fault point never executed")
	}
	// The array is freed immediately; the later legitimate free is a
	// double free (allocator trap) unless the buffer was reallocated.
	if res.Kind != interp.ExitTrap {
		t.Errorf("expected trap from double free, got %v code %d", res.Kind, res.Code)
	}
}

func TestApplyUnknownSiteErrors(t *testing.T) {
	m := buildProgram()
	if _, err := Apply(m, Site{Kind: ImmediateFree, ID: 99, Fn: "main"}); err == nil {
		t.Error("unknown site must error")
	}
	if _, err := Apply(m, Site{Kind: ImmediateFree, ID: 0, Fn: "nope"}); err == nil {
		t.Error("unknown function must error")
	}
}

func TestFaultCycleRecorded(t *testing.T) {
	m := buildProgram()
	fm, err := Apply(m, Site{Kind: ImmediateFree, ID: 1, Fn: "main"})
	if err != nil {
		t.Fatal(err)
	}
	res := interp.Run(fm, interp.Config{})
	if !res.FaultSeen || res.FaultCycle == 0 {
		t.Error("fault cycle must be recorded for time-to-detection")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	m := buildProgram()
	before := m.String()
	m.Freeze() // Apply must work on frozen (cached, shared) modules
	for _, kind := range []Kind{HeapArrayResize, ImmediateFree} {
		for _, s := range Enumerate(m, kind) {
			fm, err := Apply(m, s)
			if err != nil {
				t.Fatal(err)
			}
			if fm.String() == before {
				t.Errorf("%s: injected module is identical to the input", s)
			}
		}
	}
	if got := m.String(); got != before {
		t.Errorf("Apply mutated its input module:\n--- before ---\n%s\n--- after ---\n%s", before, got)
	}
}
