package mem

import "sync"

// Pool recycles Spaces of one configuration across program runs. A
// campaign executes thousands of short trial VMs against identically
// sized address spaces; allocating (and zeroing) a multi-megabyte Space
// per trial dominates short runs and hammers the garbage collector.
// Get/Put instead reuse Reset spaces, whose re-zeroing cost is
// proportional to the bytes the previous run actually dirtied.
//
// A reset Space replays any run exactly like a fresh one (see
// Space.Reset), so pooling is invisible in every recorded result. Pool is
// safe for concurrent use; at most one goroutine may use a given Space at
// a time, as always.
type Pool struct {
	cfg  Config
	mu   sync.Mutex
	free []*Space
}

// NewPool returns an empty pool producing Spaces of cfg.
func NewPool(cfg Config) *Pool { return &Pool{cfg: cfg.WithDefaults()} }

// Config returns the configuration the pool's spaces are built with,
// normalized (WithDefaults) — compare it against another normalized
// config to decide whether a pool can serve it.
func (p *Pool) Config() Config { return p.cfg }

// Get returns a pristine Space: a recycled one when available, otherwise
// a newly allocated one.
func (p *Pool) Get() *Space {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return s
	}
	p.mu.Unlock()
	return NewSpace(p.cfg)
}

// Put resets s and makes it available to future Get calls. The caller
// must not use s afterwards. Put(nil) is a no-op.
func (p *Pool) Put(s *Space) {
	if s == nil {
		return
	}
	s.Reset()
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}
