package mem

import "encoding/binary"

// heapAlloc is a segregated-fit boundary-tag allocator. Every buffer is
// preceded by a 16-byte inline header:
//
//	[size:8][magic:8] [payload ...]
//
// Freed buffers keep their header (magic switched to magicFree) and the
// first 8 payload bytes are reused as the free-list link — real allocators
// store heap metadata in freed buffers, which is exactly the corruption
// channel the paper's free-error analysis relies on (§2.5.3).
//
// Requests are rounded up to fixed size classes with a minimum payload of
// 24 bytes, reproducing the over-allocation effect that makes some heap
// array resizes benign (§3.4, §3.7).
type heapAlloc struct {
	base     uint64            // segment start
	end      uint64            // segment end
	cur      uint64            // wilderness pointer
	freeList map[uint64]uint64 // size class → head of free list (payload addr)
}

const (
	headerBytes = 16
	minPayload  = 24

	magicInUse uint64 = 0xA110C8ED0BADF00D
	magicFree  uint64 = 0xF4EEB10CDEADBEEF
)

// sizeClasses are the fixed payload sizes the allocator hands out. Larger
// requests are rounded to 4 KiB multiples.
var sizeClasses = []uint64{
	24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768,
	1024, 1536, 2048, 3072, 4096,
}

// ClassFor returns the allocator's rounded payload size for a request.
// Exported so the fault injector can statically filter injections that
// cannot manifest (same class before and after the resize, §3.4).
func ClassFor(size uint64) uint64 {
	for _, c := range sizeClasses {
		if size <= c {
			return c
		}
	}
	return (size + 4095) &^ 4095
}

func (h *heapAlloc) init(base, end uint64) {
	h.base = base
	h.end = end
	h.cur = base
	h.freeList = make(map[uint64]uint64)
}

// reset empties the allocator without reallocating its free-list map;
// Space.Reset separately re-zeroes the dirtied heap bytes.
func (h *heapAlloc) reset() {
	h.cur = h.base
	clear(h.freeList)
}

func (h *heapAlloc) header(s *Space, payload uint64) (size, magic uint64, ok bool) {
	if payload < h.base+headerBytes || payload+8 > h.end {
		return 0, 0, false
	}
	hdr := payload - headerBytes
	size = binary.LittleEndian.Uint64(s.data[hdr : hdr+8])
	magic = binary.LittleEndian.Uint64(s.data[hdr+8 : hdr+16])
	return size, magic, true
}

func (h *heapAlloc) setHeader(s *Space, payload, size, magic uint64) {
	hdr := payload - headerBytes
	s.noteWrite(hdr, headerBytes)
	binary.LittleEndian.PutUint64(s.data[hdr:hdr+8], size)
	binary.LittleEndian.PutUint64(s.data[hdr+8:hdr+16], magic)
}

func (h *heapAlloc) malloc(s *Space, request uint64) (uint64, *Trap) {
	class := ClassFor(request)
	if class < minPayload {
		class = minPayload
	}
	// Pop the free list for this class if possible. The link word lives
	// in the freed payload, so a use-after-free write can corrupt it; a
	// link that no longer points into the heap is metadata corruption and
	// crashes the allocator, as a real malloc would.
	if head, ok := h.freeList[class]; ok && head != 0 {
		if head < h.base+headerBytes || head+8 > h.end {
			return 0, &Trap{Reason: "heap metadata corruption detected at allocation", Addr: head}
		}
		next := binary.LittleEndian.Uint64(s.data[head : head+8])
		h.freeList[class] = next
		h.setHeader(s, head, class, magicInUse)
		return head, nil
	}
	// Otherwise carve from the wilderness.
	payload := h.cur + headerBytes
	newCur := payload + class
	if newCur > h.end {
		return 0, &Trap{Reason: "out of heap memory", Addr: h.cur}
	}
	h.cur = newCur
	h.setHeader(s, payload, class, magicInUse)
	return payload, nil
}

// free releases payload and returns its class size. Sanity checking
// mirrors a real allocator: a header that does not carry the in-use magic
// is rejected (double free or invalid free), and a header whose size field
// is not a valid class means the inline metadata was corrupted.
func (h *heapAlloc) free(s *Space, payload uint64) (uint64, *Trap) {
	size, magic, ok := h.header(s, payload)
	if !ok {
		return 0, &Trap{Reason: "free of pointer outside heap", Addr: payload}
	}
	switch magic {
	case magicInUse:
		// fall through to the actual free
	case magicFree:
		return 0, &Trap{Reason: "double free detected by allocator", Addr: payload}
	default:
		return 0, &Trap{Reason: "invalid free (no allocation header)", Addr: payload}
	}
	if !validClass(size) || payload+size > h.end {
		return 0, &Trap{Reason: "heap metadata corruption detected at free", Addr: payload}
	}
	h.setHeader(s, payload, size, magicFree)
	// Thread onto the free list: the link lives in the payload itself.
	head := h.freeList[size]
	s.noteWrite(payload, 8)
	binary.LittleEndian.PutUint64(s.data[payload:payload+8], head)
	h.freeList[size] = payload
	return size, nil
}

func (h *heapAlloc) payloadSize(s *Space, payload uint64) uint64 {
	size, _, ok := h.header(s, payload)
	if !ok {
		return 0
	}
	return size
}

func (h *heapAlloc) inUsePayload(s *Space, payload uint64) (uint64, *Trap) {
	size, magic, ok := h.header(s, payload)
	if !ok || magic != magicInUse {
		return 0, &Trap{Reason: "heapbufsize of non-live buffer", Addr: payload}
	}
	return size, nil
}

func validClass(size uint64) bool {
	for _, c := range sizeClasses {
		if size == c {
			return true
		}
	}
	return size > 4096 && size%4096 == 0
}
