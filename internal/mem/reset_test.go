package mem

import (
	"bytes"
	"testing"
)

// workout drives one space through a representative mix of dirtying
// operations — allocation, wild and in-bounds stores, frees (free-list
// metadata), allocas, cached accesses — and returns a transcript of every
// observable value so two spaces can be compared operation by operation.
func workout(t *testing.T, s *Space) []uint64 {
	t.Helper()
	var log []uint64
	note := func(vs ...uint64) { log = append(log, vs...) }

	ga, err := s.AllocGlobal(64)
	if err != nil {
		t.Fatal(err)
	}
	note(ga)
	if trap := s.Store(ga+8, 8, 0xDEAD); trap != nil {
		t.Fatal(trap)
	}
	p1, trap := s.Malloc(40)
	if trap != nil {
		t.Fatal(trap)
	}
	p2, trap := s.Malloc(200)
	if trap != nil {
		t.Fatal(trap)
	}
	note(p1, p2)
	for i := uint64(0); i < 64; i += 8 {
		if trap := s.Store(p2+i, 8, i); trap != nil {
			t.Fatal(trap)
		}
	}
	// Overflow write past p1 into p2's header region (the fault model the
	// paper relies on) plus a dangling read after free.
	if trap := s.Store(p1+56, 8, 0xBADF00D); trap != nil {
		t.Fatal(trap)
	}
	if trap := s.Free(p1); trap != nil {
		t.Fatal(trap)
	}
	v, trap := s.Load(p1, 8) // dangling read sees free-list metadata
	if trap != nil {
		t.Fatal(trap)
	}
	note(v)
	p3, trap := s.Malloc(40) // recycles p1's class
	if trap != nil {
		t.Fatal(trap)
	}
	note(p3)
	mark := s.PushFrame()
	a1, trap := s.Alloca(128)
	if trap != nil {
		t.Fatal(trap)
	}
	note(a1)
	if trap := s.Store(a1, 4, 77); trap != nil {
		t.Fatal(trap)
	}
	for i := 0; i < 64; i++ {
		note(s.AccessCost(p2 + uint64(i*64)))
	}
	s.PopFrame(mark)
	hs, ms := uint64(0), uint64(0)
	if s.cache != nil {
		hs, ms = s.cache.Counts()
	}
	st := s.Stats()
	note(hs, ms, st.HeapAllocs, st.HeapFrees, st.HeapLive, st.HeapPeak, st.Loads, st.Stores)
	return log
}

// TestResetRestoresPristineState runs a dirtying workout, resets, and
// asserts the space is byte-for-byte and behavior-for-behavior identical
// to a freshly allocated one — the property that makes pooled spaces
// invisible in recorded results.
func TestResetRestoresPristineState(t *testing.T) {
	cfg := Config{GlobalBytes: 8 * 1024, HeapBytes: 256 * 1024, StackBytes: 32 * 1024}
	fresh := NewSpace(cfg)
	used := NewSpace(cfg)
	first := workout(t, used)
	used.Reset()

	if !bytes.Equal(used.data, fresh.data) {
		for i := range used.data {
			if used.data[i] != fresh.data[i] {
				t.Fatalf("reset space differs from fresh at byte %#x: %d != %d", i, used.data[i], fresh.data[i])
			}
		}
	}
	if used.Stats() != (Stats{}) {
		t.Errorf("reset stats = %+v, want zero", used.Stats())
	}
	// A second workout on the reset space must replay the first exactly
	// (addresses, dangling-read garbage, cache costs, counters).
	second := workout(t, used)
	if len(first) != len(second) {
		t.Fatalf("workout transcripts differ in length: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("workout transcript differs at %d: %#x vs %#x", i, first[i], second[i])
		}
	}
	// And a fresh space produces the same transcript too.
	if third := workout(t, fresh); len(third) != len(first) {
		t.Fatalf("fresh transcript length %d, want %d", len(third), len(first))
	} else {
		for i := range first {
			if first[i] != third[i] {
				t.Fatalf("fresh transcript differs at %d", i)
			}
		}
	}
}

func TestResetDisabledCache(t *testing.T) {
	s := NewSpace(Config{GlobalBytes: 4096, HeapBytes: 64 * 1024, StackBytes: 8 * 1024, DisableCache: true})
	if _, trap := s.Malloc(32); trap != nil {
		t.Fatal(trap)
	}
	s.Reset() // must not panic with the cache model off
	if got := s.AccessCost(0x2000); got != CacheHitCost {
		t.Errorf("disabled-cache access cost %d, want %d", got, CacheHitCost)
	}
}

// TestPoolRecycles checks Get/Put reuse and that a recycled space is
// pristine.
func TestPoolRecycles(t *testing.T) {
	cfg := Config{GlobalBytes: 4096, HeapBytes: 64 * 1024, StackBytes: 8 * 1024}
	p := NewPool(cfg)
	s1 := p.Get()
	addr, trap := s1.Malloc(100)
	if trap != nil {
		t.Fatal(trap)
	}
	if trap := s1.Store(addr, 8, 42); trap != nil {
		t.Fatal(trap)
	}
	p.Put(s1)
	s2 := p.Get()
	if s2 != s1 {
		t.Fatalf("pool did not recycle the space")
	}
	if s2.Stats() != (Stats{}) {
		t.Errorf("recycled stats = %+v", s2.Stats())
	}
	if v, trap := s2.Load(addr, 8); trap == nil && v != 0 {
		t.Errorf("recycled space leaked previous contents: %#x", v)
	}
	addr2, trap := s2.Malloc(100)
	if trap != nil {
		t.Fatal(trap)
	}
	if addr2 != addr {
		t.Errorf("recycled allocation address %#x, want %#x (deterministic layout)", addr2, addr)
	}
	p.Put(s2)
	p.Put(nil) // no-op
	if got := p.Get(); got != s2 {
		t.Errorf("second recycle failed")
	}
}

// TestLoadStoreCostedMatchSeparateCalls drives identical access sequences
// through the fused and separate entry points and asserts equal costs,
// values, traps, statistics, and cache state evolution.
func TestLoadStoreCostedMatchSeparateCalls(t *testing.T) {
	cfg := Config{GlobalBytes: 4096, HeapBytes: 128 * 1024, StackBytes: 8 * 1024}
	a := NewSpace(cfg)
	b := NewSpace(cfg)
	pa, _ := a.Malloc(4096)
	pb, _ := b.Malloc(4096)
	if pa != pb {
		t.Fatalf("layouts diverge: %#x vs %#x", pa, pb)
	}
	addrs := []uint64{pa, pa + 8, pa + 64, pa + 8, pa + 4096*3, 0, pa + 1024, pa + 64}
	for i, addr := range addrs {
		costA := a.AccessCost(addr)
		valA, trapA := a.Load(addr, 8)
		valB, costB, trapB := b.LoadCosted(addr, 8)
		if costA != costB || valA != valB || (trapA == nil) != (trapB == nil) {
			t.Fatalf("load %d at %#x: separate (%d, %d, %v) vs fused (%d, %d, %v)",
				i, addr, valA, costA, trapA, valB, costB, trapB)
		}
		costA = a.AccessCost(addr)
		trapA = a.Store(addr, 8, uint64(i))
		costB, trapB = b.StoreCosted(addr, 8, uint64(i))
		if costA != costB || (trapA == nil) != (trapB == nil) {
			t.Fatalf("store %d at %#x: separate (%d, %v) vs fused (%d, %v)", i, addr, costA, trapA, costB, trapB)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
	ha, ma := a.cache.Counts()
	hb, mb := b.cache.Counts()
	if ha != hb || ma != mb {
		t.Errorf("cache counters diverge: %d/%d vs %d/%d", ha, ma, hb, mb)
	}
}
