// Per-thread access traces for concurrent execution: the raw material of
// the offline consistency checker (internal/consist). While a TraceRec is
// attached to a Space (SetTrace), every successful scalar load and store
// to the shared tiers — globals and heap; thread-private stack windows
// are skipped — is appended to the current thread's buffer together with
// a global sequence number. The interleaving scheduler serializes all
// execution, so sequence numbers are assigned without synchronization and
// totally order every recorded access across threads; within one thread
// the buffer order is exactly program order.
//
// Buffers are bounded: once a thread's buffer is full the recorder stops
// recording for that thread and sets the truncated flag, so a runaway
// trial degrades to "trace incomplete" rather than unbounded memory. The
// mem/trace-drop failpoint silently discards events, simulating recorder
// data loss for torture drills (a dropped store typically surfaces
// downstream as a thin-air read verdict).
package mem

import "dpmr/internal/failpt"

// TraceOp distinguishes the two recorded access kinds.
type TraceOp uint8

const (
	TraceLoad TraceOp = iota + 1
	TraceStore
)

func (op TraceOp) String() string {
	if op == TraceLoad {
		return "load"
	}
	return "store"
}

// TraceDropSite drops trace events when armed (kind drop): the recorder
// pretends the access never happened, leaving a hole the consistency
// checker may surface as a violation.
var TraceDropSite = failpt.Register("mem/trace-drop", failpt.KindDrop)

// TraceEvent is one recorded shared-tier access.
type TraceEvent struct {
	Seq   uint64 // global total-order position (dense across threads)
	Op    TraceOp
	Addr  uint64
	Width uint8
	Val   uint64 // value loaded / value stored, truncated to Width bytes
}

// TraceRec records per-thread, bounded access traces. It is not safe for
// concurrent use; the interleaving scheduler's one-runner-at-a-time
// discipline is what makes the unsynchronized global sequence sound.
type TraceRec struct {
	threads   [][]TraceEvent
	limit     int // per-thread event cap
	seq       uint64
	thread    int
	truncated bool
	dropped   uint64
}

// NewTraceRec sizes a recorder for the given thread count, bounding each
// thread's buffer at limit events (<= 0 selects a default).
func NewTraceRec(threads, limit int) *TraceRec {
	if threads < 1 {
		threads = 1
	}
	if limit <= 0 {
		limit = 1 << 16
	}
	return &TraceRec{threads: make([][]TraceEvent, threads), limit: limit}
}

// SetThread labels subsequent events with thread tid; the scheduler calls
// this before every resume. Out-of-range tids are clamped to 0.
func (t *TraceRec) SetThread(tid int) {
	if tid < 0 || tid >= len(t.threads) {
		tid = 0
	}
	t.thread = tid
}

// record appends one event to the current thread's buffer. Sequence
// numbers advance only for events actually kept, so a retained trace is
// dense; failpoint-dropped and truncated events are counted instead.
func (t *TraceRec) record(op TraceOp, addr uint64, width int, val uint64) {
	if act := failpt.Eval(TraceDropSite); act != nil {
		t.dropped++
		return
	}
	buf := t.threads[t.thread]
	if len(buf) >= t.limit {
		t.truncated = true
		return
	}
	t.threads[t.thread] = append(buf, TraceEvent{
		Seq: t.seq, Op: op, Addr: addr, Width: uint8(width), Val: val,
	})
	t.seq++
}

// Threads returns the number of per-thread buffers.
func (t *TraceRec) Threads() int { return len(t.threads) }

// Thread returns thread tid's events in program order. The slice aliases
// the recorder's buffer; callers must not mutate it.
func (t *TraceRec) Thread(tid int) []TraceEvent { return t.threads[tid] }

// Len returns the total number of retained events.
func (t *TraceRec) Len() uint64 { return t.seq }

// Truncated reports whether any thread's buffer overflowed its bound.
func (t *TraceRec) Truncated() bool { return t.truncated }

// Dropped returns the number of events discarded by the mem/trace-drop
// failpoint.
func (t *TraceRec) Dropped() uint64 { return t.dropped }
