// Package mem implements the simulated flat address space that DPMR-
// transformed programs execute against. Go's runtime and garbage collector
// hide real memory layout, so this package restores the property the paper
// depends on: application objects, replica objects, and shadow objects
// live at concrete addresses in one address space, and out-of-bounds,
// dangling, and wild accesses really corrupt neighbouring bytes, heap
// metadata, and freed buffers.
//
// The layout is:
//
//	[0, 4096)            protected null page      → trap on access
//	[globalsBase, ...)   global variables (bump-allocated at startup)
//	  ... guard gap ...
//	[heapBase, heapEnd)  heap (boundary-tag allocator, size classes)
//	  ... guard gap ...
//	[stackBase, stackTop) stack, grows downward
//
// Accesses to the null page, the guard gaps, or outside the space trap,
// which the interpreter reports as a crash (the paper's "natural
// detection" by signal exit).
package mem

import (
	"encoding/binary"
	"fmt"
)

// Trap is a simulated hardware fault: the memory analogue of SIGSEGV/abort.
type Trap struct {
	Reason string
	Addr   uint64
}

func (t *Trap) Error() string {
	return fmt.Sprintf("trap: %s (addr 0x%x)", t.Reason, t.Addr)
}

// Layout constants.
const (
	nullPageEnd = 4096
	guardGap    = 64 * 1024
)

// Config sizes a Space. The zero value selects defaults.
type Config struct {
	GlobalBytes int // default 256 KiB
	HeapBytes   int // default 16 MiB
	StackBytes  int // default 1 MiB
	// DisableCache turns off the cache cost model (all accesses cost
	// CacheHitCost). Used by ablation benches.
	DisableCache bool
}

// WithDefaults returns the config with zero fields replaced by their
// defaults — the geometry a Space built from c actually gets. Callers
// comparing configs for compatibility (e.g. pool-vs-VM checks) must
// compare normalized forms, since a zero config and a spelled-out default
// config produce identical spaces.
func (c Config) WithDefaults() Config {
	if c.GlobalBytes == 0 {
		c.GlobalBytes = 256 * 1024
	}
	if c.HeapBytes == 0 {
		c.HeapBytes = 16 * 1024 * 1024
	}
	if c.StackBytes == 0 {
		c.StackBytes = 1024 * 1024
	}
	return c
}

// Stats aggregates allocation activity, used by the harness to report
// memory overheads (e.g. SDS 2–4× vs MDS 2×, §4.1).
type Stats struct {
	HeapAllocs    uint64
	HeapFrees     uint64
	HeapLive      uint64 // current live payload bytes
	HeapPeak      uint64 // peak live payload bytes
	HeapRequested uint64 // total payload bytes requested over the run
	Loads         uint64
	Stores        uint64
}

// Space is one simulated address space.
type Space struct {
	data []byte

	globalsBase uint64
	globalsCur  uint64
	globalsEnd  uint64

	heapBase uint64
	heapEnd  uint64

	stackBase uint64
	stackTop  uint64
	sp        uint64

	// Concurrent execution state: the stack segment can be partitioned
	// into per-thread windows (PartitionStack/SwitchStack), in which case
	// spLo is the current window's floor instead of stackBase, and an
	// attached recorder observes every scalar access to the shared tiers
	// (globals + heap; thread-private stacks are not traced).
	spLo    uint64
	windows []stackWin
	curWin  int
	trace   *TraceRec

	// Dirty watermarks for Reset: every byte 0 of data outside
	// [globalsBase, globalsEnd), [heapBase, heapWriteHi), and
	// [stackWriteLo, stackTop) is still in its pristine zero state. All
	// writes — program stores, byte copies, and the heap allocator's
	// inline metadata — pass through noteWrite, so re-zeroing just those
	// ranges restores a factory-fresh space at a fraction of the cost of
	// allocating one.
	heapWriteHi  uint64
	stackWriteLo uint64

	alloc heapAlloc
	cache *Cache
	stats Stats
}

// NewSpace creates a fresh address space.
func NewSpace(cfg Config) *Space {
	cfg = cfg.WithDefaults()
	globalsBase := uint64(nullPageEnd)
	globalsEnd := globalsBase + uint64(cfg.GlobalBytes)
	heapBase := globalsEnd + guardGap
	heapEnd := heapBase + uint64(cfg.HeapBytes)
	stackBase := heapEnd + guardGap
	stackTop := stackBase + uint64(cfg.StackBytes)

	s := &Space{
		data:         make([]byte, stackTop),
		globalsBase:  globalsBase,
		globalsCur:   globalsBase,
		globalsEnd:   globalsEnd,
		heapBase:     heapBase,
		heapEnd:      heapEnd,
		stackBase:    stackBase,
		stackTop:     stackTop,
		sp:           stackTop,
		spLo:         stackBase,
		heapWriteHi:  heapBase,
		stackWriteLo: stackTop,
	}
	s.alloc.init(heapBase, heapEnd)
	if !cfg.DisableCache {
		s.cache = NewCache(DefaultCacheConfig())
	}
	return s
}

// Stats returns a copy of the accumulated statistics.
func (s *Space) Stats() Stats { return s.stats }

// noteWrite records that [addr, addr+n) was written, maintaining the
// dirty watermarks Reset re-zeroes. Globals are not tracked: the segment
// is small and Reset clears it wholesale.
func (s *Space) noteWrite(addr, n uint64) {
	if addr >= s.stackBase {
		if addr < s.stackWriteLo {
			s.stackWriteLo = addr
		}
	} else if addr >= s.heapBase {
		if end := addr + n; end > s.heapWriteHi {
			s.heapWriteHi = end
		}
	}
}

// Reset restores the space to its pristine post-NewSpace state — zeroed
// memory, empty heap, full stack, cold cache, zero statistics — without
// reallocating its backing array. Only the dirtied byte ranges are
// re-zeroed, so resetting after a short run costs proportionally little.
// A reset space is indistinguishable from a new one: allocation addresses,
// trap behavior, cache costs, and statistics all replay identically,
// which is what lets the harness recycle spaces across trials without
// perturbing any recorded result.
func (s *Space) Reset() {
	clear(s.data[s.globalsBase:s.globalsEnd])
	heapHi := s.alloc.cur
	if s.heapWriteHi > heapHi {
		heapHi = s.heapWriteHi
	}
	clear(s.data[s.heapBase:heapHi])
	clear(s.data[s.stackWriteLo:s.stackTop])
	s.globalsCur = s.globalsBase
	s.sp = s.stackTop
	s.spLo = s.stackBase
	s.windows = nil
	s.curWin = 0
	s.trace = nil
	s.heapWriteHi = s.heapBase
	s.stackWriteLo = s.stackTop
	s.alloc.reset()
	if s.cache != nil {
		s.cache.reset()
	}
	s.stats = Stats{}
}

// mapped reports whether [addr, addr+n) lies entirely within one mapped
// segment.
func (s *Space) mapped(addr, n uint64) bool {
	end := addr + n
	if end < addr { // overflow
		return false
	}
	switch {
	case addr >= s.globalsBase && end <= s.globalsEnd:
		return true
	case addr >= s.heapBase && end <= s.heapEnd:
		return true
	case addr >= s.stackBase && end <= s.stackTop:
		return true
	}
	return false
}

// AccessCost returns the cycle cost of touching addr through the cache
// model.
func (s *Space) AccessCost(addr uint64) uint64 {
	if s.cache == nil {
		return CacheHitCost
	}
	return s.cache.Access(addr)
}

// Load reads an n-byte little-endian scalar at addr. n ∈ {1,2,4,8}.
func (s *Space) Load(addr uint64, n int) (uint64, *Trap) {
	if !s.mapped(addr, uint64(n)) {
		return 0, &Trap{Reason: "load from unmapped or protected memory", Addr: addr}
	}
	s.stats.Loads++
	b := s.data[addr : addr+uint64(n)]
	var v uint64
	switch n {
	case 1:
		v = uint64(b[0])
	case 2:
		v = uint64(binary.LittleEndian.Uint16(b))
	case 4:
		v = uint64(binary.LittleEndian.Uint32(b))
	case 8:
		v = binary.LittleEndian.Uint64(b)
	default:
		return 0, &Trap{Reason: fmt.Sprintf("load of unsupported width %d", n), Addr: addr}
	}
	if s.trace != nil && addr < s.stackBase {
		s.trace.record(TraceLoad, addr, n, v)
	}
	return v, nil
}

// LoadCosted is AccessCost followed by Load, fused into one call for the
// interpreter's hot path, with the cache model's MRU-hit case inlined.
// The cost is charged exactly as the separate calls would charge it — the
// cache model is consulted even when the access then traps — and cache
// state, statistics, and trap behavior are identical to AccessCost + Load.
func (s *Space) LoadCosted(addr uint64, n int) (val, cost uint64, trap *Trap) {
	cost = CacheHitCost
	if c := s.cache; c != nil {
		// Cache.Access with its MRU fast path unrolled (Access itself is
		// past the inlining budget); Access documents the line/set/tag
		// encoding this mirrors.
		line := addr >> c.lineShift
		if base, tag := int(line&c.setMask)*c.ways, line|1<<63; c.tags[base] == tag {
			c.hits++
		} else {
			cost = c.accessSlow(base, tag)
		}
	}
	if !s.mapped(addr, uint64(n)) {
		return 0, cost, &Trap{Reason: "load from unmapped or protected memory", Addr: addr}
	}
	s.stats.Loads++
	b := s.data[addr : addr+uint64(n)]
	var v uint64
	switch n {
	case 1:
		v = uint64(b[0])
	case 2:
		v = uint64(binary.LittleEndian.Uint16(b))
	case 4:
		v = uint64(binary.LittleEndian.Uint32(b))
	case 8:
		v = binary.LittleEndian.Uint64(b)
	default:
		return 0, cost, &Trap{Reason: fmt.Sprintf("load of unsupported width %d", n), Addr: addr}
	}
	if s.trace != nil && addr < s.stackBase {
		s.trace.record(TraceLoad, addr, n, v)
	}
	return v, cost, nil
}

// Store writes an n-byte little-endian scalar at addr.
func (s *Space) Store(addr uint64, n int, val uint64) *Trap {
	if !s.mapped(addr, uint64(n)) {
		return &Trap{Reason: "store to unmapped or protected memory", Addr: addr}
	}
	s.stats.Stores++
	s.noteWrite(addr, uint64(n))
	b := s.data[addr : addr+uint64(n)]
	switch n {
	case 1:
		b[0] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(b, val)
	default:
		return &Trap{Reason: fmt.Sprintf("store of unsupported width %d", n), Addr: addr}
	}
	if s.trace != nil && addr < s.stackBase {
		s.trace.record(TraceStore, addr, n, maskWidth(val, n))
	}
	return nil
}

// StoreCosted is AccessCost followed by Store, fused like LoadCosted.
func (s *Space) StoreCosted(addr uint64, n int, val uint64) (cost uint64, trap *Trap) {
	cost = CacheHitCost
	if c := s.cache; c != nil {
		// Cache.Access with its MRU fast path unrolled (Access itself is
		// past the inlining budget); Access documents the line/set/tag
		// encoding this mirrors.
		line := addr >> c.lineShift
		if base, tag := int(line&c.setMask)*c.ways, line|1<<63; c.tags[base] == tag {
			c.hits++
		} else {
			cost = c.accessSlow(base, tag)
		}
	}
	if !s.mapped(addr, uint64(n)) {
		return cost, &Trap{Reason: "store to unmapped or protected memory", Addr: addr}
	}
	s.stats.Stores++
	s.noteWrite(addr, uint64(n))
	b := s.data[addr : addr+uint64(n)]
	switch n {
	case 1:
		b[0] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(b, val)
	default:
		return cost, &Trap{Reason: fmt.Sprintf("store of unsupported width %d", n), Addr: addr}
	}
	if s.trace != nil && addr < s.stackBase {
		s.trace.record(TraceStore, addr, n, maskWidth(val, n))
	}
	return cost, nil
}

// ReadBytes copies n bytes out of the space (used by external function
// wrappers and output). It traps like Load.
func (s *Space) ReadBytes(addr, n uint64) ([]byte, *Trap) {
	if n == 0 {
		return nil, nil
	}
	if !s.mapped(addr, n) {
		return nil, &Trap{Reason: "read from unmapped or protected memory", Addr: addr}
	}
	out := make([]byte, n)
	copy(out, s.data[addr:addr+n])
	return out, nil
}

// WriteBytes copies bytes into the space.
func (s *Space) WriteBytes(addr uint64, b []byte) *Trap {
	if len(b) == 0 {
		return nil
	}
	if !s.mapped(addr, uint64(len(b))) {
		return &Trap{Reason: "write to unmapped or protected memory", Addr: addr}
	}
	s.noteWrite(addr, uint64(len(b)))
	copy(s.data[addr:], b)
	return nil
}

// ---------------------------------------------------------------------------
// Globals

// AllocGlobal reserves size bytes (8-byte aligned) in the globals segment.
// Globals are allocated once at program startup and never freed.
func (s *Space) AllocGlobal(size int) (uint64, error) {
	if size < 1 {
		size = 1
	}
	addr := align8(s.globalsCur)
	end := addr + uint64(size)
	if end > s.globalsEnd {
		return 0, fmt.Errorf("mem: globals segment exhausted (need %d bytes)", size)
	}
	s.globalsCur = end
	return addr, nil
}

// ---------------------------------------------------------------------------
// Stack

// StackMark is an opaque frame marker.
type StackMark uint64

// PushFrame returns a marker for the current stack pointer.
func (s *Space) PushFrame() StackMark { return StackMark(s.sp) }

// PopFrame releases all allocas made since mark.
func (s *Space) PopFrame(m StackMark) { s.sp = uint64(m) }

// Alloca allocates size bytes on the stack (8-byte aligned, growing down).
func (s *Space) Alloca(size uint64) (uint64, *Trap) {
	if size == 0 {
		size = 1
	}
	newSP := (s.sp - size) &^ 7
	if newSP < s.spLo || newSP > s.sp {
		return 0, &Trap{Reason: "stack overflow", Addr: newSP}
	}
	s.sp = newSP
	return newSP, nil
}

// StackPointer exposes the current stack pointer (for diagnostics).
func (s *Space) StackPointer() uint64 { return s.sp }

// ---------------------------------------------------------------------------
// Stack windows (concurrent execution)

// stackWin is one thread's slice of the stack segment.
type stackWin struct {
	lo, top uint64
	sp      uint64
}

// PartitionStack splits the stack segment into n equal per-thread
// windows and selects window 0. Each window is an independent downward-
// growing stack with its own pointer; the interleaving scheduler calls
// SwitchStack before resuming a thread so allocas land in that thread's
// window while the globals and heap tiers stay fully shared. Thread
// stacks remain mapped for every thread (like a real process), so a
// wild cross-stack access reads or corrupts rather than trapping.
// Partitioning requires an empty stack (no live frames) and is undone
// by Reset.
func (s *Space) PartitionStack(n int) error {
	if n < 1 {
		return fmt.Errorf("mem: PartitionStack with %d windows", n)
	}
	if s.sp != s.stackTop || s.windows != nil {
		return fmt.Errorf("mem: PartitionStack on a live stack")
	}
	size := ((s.stackTop - s.stackBase) / uint64(n)) &^ 7
	if size < 64 {
		return fmt.Errorf("mem: stack too small for %d windows", n)
	}
	s.windows = make([]stackWin, n)
	for i := range s.windows {
		lo := s.stackBase + uint64(i)*size
		s.windows[i] = stackWin{lo: lo, top: lo + size, sp: lo + size}
	}
	s.curWin = 0
	s.spLo, s.sp = s.windows[0].lo, s.windows[0].sp
	return nil
}

// SwitchStack makes thread tid's stack window current, saving the
// previous window's stack pointer. No-op on an unpartitioned space.
func (s *Space) SwitchStack(tid int) {
	if s.windows == nil || tid == s.curWin {
		return
	}
	s.windows[s.curWin].sp = s.sp
	w := &s.windows[tid]
	s.curWin = tid
	s.spLo, s.sp = w.lo, w.sp
}

// SetTrace attaches (or, with nil, detaches) a shared-tier access
// recorder. Tracing is purely observational: costs, statistics, and
// trap behavior are unchanged.
func (s *Space) SetTrace(t *TraceRec) { s.trace = t }

// maskWidth truncates val to an n-byte store's significant bits, so
// recorded store values compare equal to what a same-width load of the
// slot returns.
func maskWidth(val uint64, n int) uint64 {
	if n >= 8 {
		return val
	}
	return val & (1<<(uint(n)*8) - 1)
}

// ---------------------------------------------------------------------------
// Heap

// Malloc allocates a heap buffer with at least size payload bytes and
// returns its address. The allocator rounds requests up to its size
// classes (so an under-sized request may still receive enough memory —
// the over-allocation effect the paper notes for heap array resizes,
// §3.7).
func (s *Space) Malloc(size uint64) (uint64, *Trap) {
	addr, trap := s.alloc.malloc(s, size)
	if trap != nil {
		return 0, trap
	}
	s.stats.HeapAllocs++
	s.stats.HeapRequested += size
	payload := s.alloc.payloadSize(s, addr)
	s.stats.HeapLive += payload
	if s.stats.HeapLive > s.stats.HeapPeak {
		s.stats.HeapPeak = s.stats.HeapLive
	}
	return addr, nil
}

// Free releases a heap buffer. Like a real allocator it performs cheap
// sanity checks against its inline metadata: a free of a pointer that does
// not carry a valid in-use header traps ("a crash would occur if error
// checking in the heap allocator detects that the free is invalid", §2.5.3),
// while corrupted-but-plausible metadata can corrupt the heap instead.
func (s *Space) Free(addr uint64) *Trap {
	payload, trap := s.alloc.free(s, addr)
	if trap != nil {
		return trap
	}
	s.stats.HeapFrees++
	if s.stats.HeapLive >= payload {
		s.stats.HeapLive -= payload
	} else {
		s.stats.HeapLive = 0
	}
	return nil
}

// HeapPayloadSize returns the payload size of an in-use heap buffer (the
// paper's heapBufSize()). It traps on anything that does not look like a
// live heap buffer.
func (s *Space) HeapPayloadSize(addr uint64) (uint64, *Trap) {
	return s.alloc.inUsePayload(s, addr)
}

// HeapContains reports whether addr falls inside the heap segment.
func (s *Space) HeapContains(addr uint64) bool {
	return addr >= s.heapBase && addr < s.heapEnd
}

func align8(x uint64) uint64 { return (x + 7) &^ 7 }
