package mem

import (
	"testing"
	"testing/quick"
)

func newTestSpace() *Space {
	return NewSpace(Config{GlobalBytes: 64 * 1024, HeapBytes: 1024 * 1024, StackBytes: 64 * 1024})
}

func TestLoadStoreRoundTrip(t *testing.T) {
	s := newTestSpace()
	addr, trap := s.Malloc(64)
	if trap != nil {
		t.Fatal(trap)
	}
	for _, tc := range []struct {
		n   int
		val uint64
	}{
		{1, 0xAB}, {2, 0xBEEF}, {4, 0xDEADBEEF}, {8, 0x0123456789ABCDEF},
	} {
		if trap := s.Store(addr, tc.n, tc.val); trap != nil {
			t.Fatalf("store %d: %v", tc.n, trap)
		}
		got, trap := s.Load(addr, tc.n)
		if trap != nil {
			t.Fatalf("load %d: %v", tc.n, trap)
		}
		if got != tc.val {
			t.Errorf("width %d: got %#x, want %#x", tc.n, got, tc.val)
		}
	}
}

func TestNullPageTraps(t *testing.T) {
	s := newTestSpace()
	if _, trap := s.Load(0, 8); trap == nil {
		t.Error("load of address 0 must trap")
	}
	if _, trap := s.Load(100, 4); trap == nil {
		t.Error("load inside null page must trap")
	}
	if trap := s.Store(8, 8, 1); trap == nil {
		t.Error("store to null page must trap")
	}
}

func TestGuardGapTraps(t *testing.T) {
	s := newTestSpace()
	// Just past the globals segment lies a guard gap.
	if _, trap := s.Load(s.globalsEnd+8, 8); trap == nil {
		t.Error("load in guard gap must trap")
	}
	if _, trap := s.Load(s.stackTop+1024*1024, 8); trap == nil {
		t.Error("load beyond space must trap")
	}
}

func TestMallocRoundsToClasses(t *testing.T) {
	tests := []struct{ req, class uint64 }{
		{0, 24}, {1, 24}, {16, 24}, {24, 24}, {25, 32}, {33, 48},
		{100, 128}, {1000, 1024}, {5000, 8192}, {4097, 8192},
	}
	for _, tc := range tests {
		if got := ClassFor(tc.req); got != max64(tc.class, minPayload) {
			t.Errorf("ClassFor(%d) = %d, want %d", tc.req, got, tc.class)
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestMallocMinimumSizeMakesSmallResizeBenign(t *testing.T) {
	// The §3.4 example: a 24-byte request resized to 16 bytes still gets
	// 24 bytes — the fault cannot manifest.
	if ClassFor(24) != ClassFor(16) {
		t.Error("24→16 byte resize should land in the same size class")
	}
	if ClassFor(48) == ClassFor(24) {
		t.Error("48→24 byte resize should shrink the buffer")
	}
}

func TestFreeAndReuse(t *testing.T) {
	s := newTestSpace()
	a, _ := s.Malloc(64)
	if trap := s.Free(a); trap != nil {
		t.Fatalf("free: %v", trap)
	}
	b, _ := s.Malloc(64)
	if a != b {
		t.Errorf("same-class malloc after free should reuse the buffer: %#x vs %#x", a, b)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	s := newTestSpace()
	a, _ := s.Malloc(64)
	if trap := s.Free(a); trap != nil {
		t.Fatal(trap)
	}
	trap := s.Free(a)
	if trap == nil {
		t.Fatal("double free must trap")
	}
	if trap.Reason != "double free detected by allocator" {
		t.Errorf("unexpected reason: %s", trap.Reason)
	}
}

func TestInvalidFreeDetected(t *testing.T) {
	s := newTestSpace()
	a, _ := s.Malloc(64)
	// Freeing an interior pointer finds no valid header.
	if trap := s.Free(a + 8); trap == nil {
		t.Error("interior free must trap")
	}
	if trap := s.Free(12); trap == nil {
		t.Error("free of non-heap pointer must trap")
	}
}

func TestFreeWritesMetadataIntoPayload(t *testing.T) {
	s := newTestSpace()
	a, _ := s.Malloc(64)
	if trap := s.Store(a, 8, 0x1111111111111111); trap != nil {
		t.Fatal(trap)
	}
	if trap := s.Free(a); trap != nil {
		t.Fatal(trap)
	}
	got, trap := s.Load(a, 8)
	if trap != nil {
		t.Fatal(trap)
	}
	if got == 0x1111111111111111 {
		t.Error("free must overwrite the first payload word with free-list metadata")
	}
}

func TestHeaderCorruptionDetectedAtFree(t *testing.T) {
	s := newTestSpace()
	_, _ = s.Malloc(64)
	b, _ := s.Malloc(64)
	// Overflow from a into b's header: corrupt b's size but keep a
	// plausible magic... first corrupt size only.
	hdr := b - headerBytes
	s.data[hdr] = 0xFF // size becomes bogus
	trap := s.Free(b)
	if trap == nil {
		t.Fatal("free with corrupted size must trap")
	}
}

func TestOverflowCorruptsNeighbor(t *testing.T) {
	s := newTestSpace()
	a, _ := s.Malloc(24)
	bAddr, _ := s.Malloc(24)
	if trap := s.Store(bAddr, 8, 42); trap != nil {
		t.Fatal(trap)
	}
	// Write 8 bytes starting 16 past a's 24-byte payload: lands in b's
	// payload (a 24-byte class + 16-byte header: offset 24+16=40 from a).
	if trap := s.Store(a+40, 8, 0xBADBADBADBAD); trap != nil {
		t.Fatal(trap)
	}
	got, _ := s.Load(bAddr, 8)
	if got != 0xBADBADBADBAD {
		t.Errorf("overflow did not corrupt neighbour: got %#x", got)
	}
}

func TestHeapPayloadSize(t *testing.T) {
	s := newTestSpace()
	a, _ := s.Malloc(100)
	size, trap := s.HeapPayloadSize(a)
	if trap != nil {
		t.Fatal(trap)
	}
	if size != 128 {
		t.Errorf("payload size = %d, want 128", size)
	}
	_ = s.Free(a)
	if _, trap := s.HeapPayloadSize(a); trap == nil {
		t.Error("heapbufsize of freed buffer must trap")
	}
}

func TestOutOfHeapMemory(t *testing.T) {
	s := NewSpace(Config{HeapBytes: 64 * 1024, GlobalBytes: 4096, StackBytes: 4096})
	var lastTrap *Trap
	for i := 0; i < 100; i++ {
		_, lastTrap = s.Malloc(4096)
		if lastTrap != nil {
			break
		}
	}
	if lastTrap == nil {
		t.Fatal("heap exhaustion must eventually trap")
	}
	if lastTrap.Reason != "out of heap memory" {
		t.Errorf("unexpected reason: %s", lastTrap.Reason)
	}
}

func TestStackAllocaAndFrames(t *testing.T) {
	s := newTestSpace()
	mark := s.PushFrame()
	a, trap := s.Alloca(128)
	if trap != nil {
		t.Fatal(trap)
	}
	if trap := s.Store(a, 8, 7); trap != nil {
		t.Fatal(trap)
	}
	b, _ := s.Alloca(64)
	if b >= a {
		t.Error("stack must grow downward")
	}
	s.PopFrame(mark)
	if s.StackPointer() != uint64(mark) {
		t.Error("pop must restore the stack pointer")
	}
	// Stale stack data is still readable (dangling stack pointer
	// behaviour), not trapped.
	if _, trap := s.Load(a, 8); trap != nil {
		t.Errorf("dangling stack read should not trap: %v", trap)
	}
}

func TestStackOverflowTraps(t *testing.T) {
	s := NewSpace(Config{StackBytes: 4096, HeapBytes: 64 * 1024, GlobalBytes: 4096})
	var trapped bool
	for i := 0; i < 100; i++ {
		if _, trap := s.Alloca(512); trap != nil {
			trapped = true
			break
		}
	}
	if !trapped {
		t.Error("unbounded alloca must trap with stack overflow")
	}
}

func TestGlobalsBumpAllocator(t *testing.T) {
	s := newTestSpace()
	a, err := s.AllocGlobal(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.AllocGlobal(8)
	if err != nil {
		t.Fatal(err)
	}
	if b < a+100 {
		t.Error("globals must not overlap")
	}
	if a%8 != 0 || b%8 != 0 {
		t.Error("globals must be 8-byte aligned")
	}
	if trap := s.Store(a, 8, 1); trap != nil {
		t.Errorf("global store: %v", trap)
	}
}

func TestGlobalsExhaustion(t *testing.T) {
	s := NewSpace(Config{GlobalBytes: 4096, HeapBytes: 64 * 1024, StackBytes: 4096})
	var failed bool
	for i := 0; i < 100; i++ {
		if _, err := s.AllocGlobal(512); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Error("globals segment exhaustion must error")
	}
}

func TestAllocStatsTracked(t *testing.T) {
	s := newTestSpace()
	a, _ := s.Malloc(100) // class 128
	_, _ = s.Malloc(24)
	st := s.Stats()
	if st.HeapAllocs != 2 {
		t.Errorf("allocs = %d, want 2", st.HeapAllocs)
	}
	if st.HeapLive != 128+24 {
		t.Errorf("live = %d, want 152", st.HeapLive)
	}
	_ = s.Free(a)
	st = s.Stats()
	if st.HeapLive != 24 {
		t.Errorf("live after free = %d, want 24", st.HeapLive)
	}
	if st.HeapPeak != 152 {
		t.Errorf("peak = %d, want 152", st.HeapPeak)
	}
}

func TestCacheDeterministicAndLRU(t *testing.T) {
	c := NewCache(CacheConfig{Bytes: 1024, LineBytes: 64, Ways: 2}) // 8 sets
	if cost := c.Access(0); cost != CacheMissCost {
		t.Error("first access must miss")
	}
	if cost := c.Access(8); cost != CacheHitCost {
		t.Error("same-line access must hit")
	}
	// Two distinct lines map to set 0 in an 8-set cache: 0 and 8*64=512.
	c.Access(512)
	if cost := c.Access(0); cost != CacheHitCost {
		t.Error("2-way set must hold both lines")
	}
	c.Access(1024) // third line in set 0 evicts LRU (512)
	if cost := c.Access(512); cost != CacheMissCost {
		t.Error("LRU line must have been evicted")
	}
}

func TestCacheAccessCostDisabled(t *testing.T) {
	s := NewSpace(Config{DisableCache: true, GlobalBytes: 4096, HeapBytes: 64 * 1024, StackBytes: 4096})
	for i := 0; i < 10; i++ {
		if cost := s.AccessCost(uint64(i * 1 << 20)); cost != CacheHitCost {
			t.Fatal("disabled cache must charge flat cost")
		}
	}
}

func TestMallocFreePropertyNoOverlap(t *testing.T) {
	// Property: live buffers never overlap, whatever interleaving of
	// mallocs and frees occurs.
	f := func(ops []uint8) bool {
		s := newTestSpace()
		type buf struct{ addr, size uint64 }
		var live []buf
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op) % len(live)
				if s.Free(live[i].addr) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := uint64(op%200) + 1
			a, trap := s.Malloc(size)
			if trap != nil {
				return false
			}
			live = append(live, buf{a, ClassFor(size)})
		}
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.addr < b.addr+b.size && b.addr < a.addr+a.size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReadWriteBytes(t *testing.T) {
	s := newTestSpace()
	a, _ := s.Malloc(32)
	data := []byte("hello world")
	if trap := s.WriteBytes(a, data); trap != nil {
		t.Fatal(trap)
	}
	got, trap := s.ReadBytes(a, uint64(len(data)))
	if trap != nil {
		t.Fatal(trap)
	}
	if string(got) != "hello world" {
		t.Errorf("got %q", got)
	}
	if _, trap := s.ReadBytes(10, 8); trap == nil {
		t.Error("ReadBytes from null page must trap")
	}
}
