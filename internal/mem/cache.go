package mem

// Cache is a deterministic set-associative data-cache cost model. The
// paper's overhead discussion attributes part of the pad-malloc and
// rearrange-heap cost to worsened locality ("may cause the heap allocator
// to cross cache page boundaries", §3.7); modelling a cache reproduces
// that mechanism without appealing to host hardware.
//
// The default geometry matches the testbed's L2 in Table 3.1: 256 KiB,
// 64-byte lines, 4-way set associative.
type Cache struct {
	lineShift uint
	setMask   uint64
	ways      int
	tags      []uint64 // sets × ways, 0 = empty
	hits      uint64
	misses    uint64
}

// Cycle costs of a cache hit and miss. Exposed so analyses can reason
// about the model.
const (
	CacheHitCost  = 2
	CacheMissCost = 40
)

// CacheConfig sizes a Cache.
type CacheConfig struct {
	Bytes     int
	LineBytes int
	Ways      int
}

// DefaultCacheConfig returns the default geometry: 32 KiB, 64-byte lines,
// 2-way. The Table 3.1 testbed carried a 256 KiB L2, but the workloads
// here are scaled down from the SPEC train inputs by roughly the same
// factor; a proportionally scaled cache preserves the locality effects the
// paper's overhead discussion relies on (replication doubling the working
// set, pad-malloc dispersing it).
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{Bytes: 32 * 1024, LineBytes: 64, Ways: 4}
}

// NewCache builds a cache with the given geometry.
func NewCache(cfg CacheConfig) *Cache {
	sets := cfg.Bytes / cfg.LineBytes / cfg.Ways
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		lineShift: shift,
		setMask:   uint64(sets - 1),
		ways:      cfg.Ways,
		tags:      make([]uint64, sets*cfg.Ways),
	}
}

// Access touches addr and returns the access cost in cycles. Lines are
// maintained in LRU order within each set (move-to-front). The line/set/
// tag encoding here is mirrored by the fused Load/StoreCosted fast paths
// in space.go (Access itself is past their inlining budget); bit 63 marks
// occupancy so line 0 is representable.
func (c *Cache) Access(addr uint64) uint64 {
	line := addr >> c.lineShift
	base := int(line&c.setMask) * c.ways
	tag := line | 1<<63
	if c.tags[base] == tag {
		// MRU hit: the overwhelmingly common case, no reordering needed.
		c.hits++
		return CacheHitCost
	}
	return c.accessSlow(base, tag)
}

// accessSlow handles the non-MRU ways of one set: an LRU-reordering hit
// or a miss with eviction. Split out so Access (and the fused
// Load/StoreCosted fast paths in space.go) stay small.
func (c *Cache) accessSlow(base int, tag uint64) uint64 {
	ws := c.tags[base : base+c.ways]
	for i := 1; i < len(ws); i++ {
		if ws[i] == tag {
			// Hit: move to front.
			copy(ws[1:i+1], ws[:i])
			ws[0] = tag
			c.hits++
			return CacheHitCost
		}
	}
	// Miss: evict LRU (last way).
	copy(ws[1:], ws[:c.ways-1])
	ws[0] = tag
	c.misses++
	return CacheMissCost
}

// reset empties the cache (all sets invalid, zero counters) without
// reallocating, restoring the post-NewCache state for Space.Reset.
func (c *Cache) reset() {
	clear(c.tags)
	c.hits, c.misses = 0, 0
}

// HitRate returns hits/(hits+misses), or 1 when no accesses occurred.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 1
	}
	return float64(c.hits) / float64(total)
}

// Counts returns raw hit/miss counters.
func (c *Cache) Counts() (hits, misses uint64) { return c.hits, c.misses }
