package workloads_test

import (
	"bytes"
	"strings"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/faultinject"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/workloads"
)

func TestWorkloadsBuildVerifyAndRun(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			m := w.Build()
			if err := ir.Verify(m); err != nil {
				t.Fatalf("verify: %v", err)
			}
			res := interp.Run(m, interp.Config{Externs: extlib.Base()})
			if res.Kind != interp.ExitNormal || res.Code != 0 {
				t.Fatalf("golden run: %v code %d (%s)", res.Kind, res.Code, res.Reason)
			}
			if len(res.Output) == 0 {
				t.Error("workload must produce output")
			}
			if res.Steps < 20000 {
				t.Errorf("workload too small: %d steps", res.Steps)
			}
			st := res.Mem
			if st.HeapAllocs < 5 {
				t.Errorf("workload should allocate from several sites: %d allocs", st.HeapAllocs)
			}
			if st.HeapFrees != st.HeapAllocs {
				t.Errorf("leaks: %d allocs vs %d frees", st.HeapAllocs, st.HeapFrees)
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range workloads.All() {
		r1 := interp.Run(w.Build(), interp.Config{Externs: extlib.Base()})
		r2 := interp.Run(w.Build(), interp.Config{Externs: extlib.Base()})
		if !bytes.Equal(r1.Output, r2.Output) || r1.Cycles != r2.Cycles {
			t.Errorf("%s: non-deterministic build or run", w.Name)
		}
	}
}

func TestWorkloadsSatisfyRestrictions(t *testing.T) {
	for _, w := range workloads.All() {
		m := w.Build()
		if err := dpmr.VerifyRestrictions(m, dpmr.SDS); err != nil {
			t.Errorf("%s: SDS restrictions: %v", w.Name, err)
		}
		if err := dpmr.VerifyRestrictions(m, dpmr.MDS); err != nil {
			t.Errorf("%s: MDS restrictions: %v", w.Name, err)
		}
	}
}

func TestWorkloadsEquivalentUnderDPMR(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
			design := design
			t.Run(w.Name+"/"+design.String(), func(t *testing.T) {
				t.Parallel()
				m := w.Build()
				golden := interp.Run(m, interp.Config{Externs: extlib.Base()})
				xm, err := dpmr.Transform(w.Build(), dpmr.Config{Design: design, Seed: 11})
				if err != nil {
					t.Fatalf("transform: %v", err)
				}
				xres := interp.Run(xm, interp.Config{Externs: extlib.Wrapped(design), Seed: 5})
				if xres.Kind != interp.ExitNormal {
					t.Fatalf("transformed: %v (%s)", xres.Kind, xres.Reason)
				}
				if !bytes.Equal(golden.Output, xres.Output) {
					t.Errorf("output diverged:\ngolden: %q\ndpmr:   %q", golden.Output, xres.Output)
				}
				if xres.Cycles <= golden.Cycles {
					t.Errorf("no overhead measured: %d vs %d", xres.Cycles, golden.Cycles)
				}
			})
		}
	}
}

func TestPointerHeavyClassification(t *testing.T) {
	// equake and mcf store pointers in memory (shadow objects exist under
	// SDS); art and bzip2 essentially do not. Verify via SDS shadow
	// allocations.
	for _, w := range workloads.All() {
		xm, err := dpmr.Transform(w.Build(), dpmr.Config{Design: dpmr.SDS})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		text := xm.String()
		hasShadowStructs := strings.Contains(text, ".sdw")
		if w.PointerHeavy && !hasShadowStructs {
			t.Errorf("%s: expected shadow structures", w.Name)
		}
	}
}

func TestWorkloadsHaveInjectableSites(t *testing.T) {
	for _, w := range workloads.All() {
		m := w.Build()
		resize := faultinject.Enumerate(m, faultinject.HeapArrayResize)
		ifree := faultinject.Enumerate(m, faultinject.ImmediateFree)
		if len(resize) == 0 {
			t.Errorf("%s: no heap-array-resize sites", w.Name)
		}
		if len(ifree) < 3 {
			t.Errorf("%s: too few immediate-free sites (%d)", w.Name, len(ifree))
		}
		t.Logf("%s: %d resize sites, %d immediate-free sites", w.Name, len(resize), len(ifree))
	}
}

func TestByName(t *testing.T) {
	if _, err := workloads.ByName("mcf"); err != nil {
		t.Error(err)
	}
	if _, err := workloads.ByName("gcc"); err == nil {
		t.Error("unknown workload must error")
	}
}

// TestFaultInjectionChangesBehaviour samples one injection per workload
// and confirms the campaign machinery observes a successful injection.
func TestFaultInjectionChangesBehaviour(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			golden := interp.Run(w.Build(), interp.Config{Externs: extlib.Base()})
			sites := faultinject.Enumerate(w.Build(), faultinject.ImmediateFree)
			m, err := faultinject.Apply(w.Build(), sites[0])
			if err != nil {
				t.Fatal(err)
			}
			res := interp.Run(m, interp.Config{
				Externs:   extlib.Base(),
				StepLimit: golden.Steps * 20,
			})
			if !res.FaultSeen {
				t.Error("injection did not execute")
			}
		})
	}
}
