package workloads

import "dpmr/internal/ir"

// BuildEquake constructs the equake analogue: seismic wave propagation
// over an unstructured mesh (SPEC 183.equake). Like the original's sparse
// matrix structures, the mesh is pointer-rich: an array of per-node
// structs each holding pointers to its stiffness-coefficient row and its
// neighbour-index row, so the time-stepping loop chases pointers stored in
// memory on every element access — the profile that drives the SDS vs MDS
// overhead gap (§4.5).
func BuildEquake() *ir.Module {
	const (
		nodes = 56
		deg   = 4 // ring ±1 plus chord ±9
		steps = 90
	)
	m := ir.NewModule("equake")
	b := ir.NewBuilder(m)
	mustDeclareExterns(b.M, "exit", "puts")

	// struct ENode { f64 disp; f64 vel; f64 acc; i64 deg; f64* row; i64* neigh }
	enode := ir.NamedStruct("ENode")
	enode.SetBody(ir.F64, ir.F64, ir.F64, ir.I64, ir.Ptr(ir.F64), ir.Ptr(ir.I64))
	np := ir.Ptr(enode)
	const (
		fDisp = iota
		fVel
		fAcc
		fDeg
		fRow
		fNeigh
	)

	// buildMesh allocates the node table and per-node rows.
	bm := b.Function("buildMesh", ir.Ptr(np), nil)
	tbl := b.MallocN(np, b.I64(nodes)) // array of ENode* (pointers in memory)
	rng := newLCG(b, 183)
	b.ForRange("i", b.I64(0), b.I64(nodes), func(i *ir.Reg) {
		nd := b.Malloc(enode)
		b.Store(b.Field(nd, fDisp), b.F64c(0))
		b.Store(b.Field(nd, fVel), b.F64c(0))
		b.Store(b.Field(nd, fAcc), b.F64c(0))
		b.Store(b.Field(nd, fDeg), b.I64(deg))
		row := b.MallocN(ir.F64, b.I64(deg))
		nbr := b.MallocN(ir.I64, b.I64(deg))
		// Stiffness coefficients in (0, 0.25].
		b.ForRange("k", b.I64(0), b.I64(deg), func(k *ir.Reg) {
			c := rng.nextIn(b, 240)
			coef := b.Bin(ir.OpFDiv, b.Convert(b.Add(c, b.I64(10)), ir.F64), b.F64c(1000))
			b.Store(b.Index(row, k), coef)
		})
		// Neighbours: i±1, i±9 (mod nodes).
		offs := []int64{1, nodes - 1, 9, nodes - 9}
		for k, off := range offs {
			idx := b.Bin(ir.OpURem, b.Add(i, b.I64(off)), b.I64(nodes))
			b.Store(b.Index(nbr, b.I64(int64(k))), idx)
		}
		b.Store(b.Field(nd, fRow), row)
		b.Store(b.Field(nd, fNeigh), nbr)
		b.Store(b.Index(tbl, i), nd)
	})
	_ = bm
	b.Ret(tbl)

	// timeStep advances the mesh by one step and returns the |disp| sum.
	ts := b.Function("timeStep", ir.F64, []string{"tbl", "t"}, ir.Ptr(np), ir.I64)
	ttbl, tstep := ts.Params[0], ts.Params[1]
	dt := b.F64c(0.08)
	damp := b.F64c(0.02)
	// Excitation at node 0 during the first 10 steps.
	early := b.Cmp(ir.CmpSLT, tstep, b.I64(10))
	b.If(early, func() {
		n0 := b.Load(b.Index(ttbl, b.I64(0)))
		b.Store(b.Field(n0, fDisp), b.F64c(1.0))
	}, nil)
	// Acceleration pass: acc_i = Σ_k row[k]·(disp[neigh[k]] − disp_i) − damp·vel_i
	b.ForRange("i", b.I64(0), b.I64(nodes), func(i *ir.Reg) {
		nd := b.Load(b.Index(ttbl, i))
		di := b.Load(b.Field(nd, fDisp))
		row := b.Load(b.Field(nd, fRow))
		nbr := b.Load(b.Field(nd, fNeigh))
		dcount := b.Load(b.Field(nd, fDeg))
		acc := b.Reg("acc", ir.F64)
		b.MoveTo(acc, b.F64c(0))
		b.ForRange("k", b.I64(0), dcount, func(k *ir.Reg) {
			j := b.Load(b.Index(nbr, k))
			nj := b.Load(b.Index(ttbl, j))
			dj := b.Load(b.Field(nj, fDisp))
			coef := b.Load(b.Index(row, k))
			b.BinTo(acc, ir.OpFAdd, acc, b.Bin(ir.OpFMul, coef, b.Bin(ir.OpFSub, dj, di)))
		})
		vel := b.Load(b.Field(nd, fVel))
		b.BinTo(acc, ir.OpFSub, acc, b.Bin(ir.OpFMul, damp, vel))
		b.Store(b.Field(nd, fAcc), acc)
	})
	// Integration pass.
	total := b.Reg("total", ir.F64)
	b.MoveTo(total, b.F64c(0))
	b.ForRange("i", b.I64(0), b.I64(nodes), func(i *ir.Reg) {
		nd := b.Load(b.Index(ttbl, i))
		acc := b.Load(b.Field(nd, fAcc))
		vel := b.Load(b.Field(nd, fVel))
		nvel := b.Bin(ir.OpFAdd, vel, b.Bin(ir.OpFMul, dt, acc))
		b.Store(b.Field(nd, fVel), nvel)
		disp := b.Load(b.Field(nd, fDisp))
		ndisp := b.Bin(ir.OpFAdd, disp, b.Bin(ir.OpFMul, dt, nvel))
		b.Store(b.Field(nd, fDisp), ndisp)
		// |disp| accumulation.
		neg := b.Cmp(ir.CmpFLT, ndisp, b.F64c(0))
		mag := b.Reg("mag", ir.F64)
		b.MoveTo(mag, ndisp)
		b.If(neg, func() {
			b.MoveTo(mag, b.Bin(ir.OpFSub, b.F64c(0), ndisp))
		}, nil)
		b.BinTo(total, ir.OpFAdd, total, mag)
	})
	b.Ret(total)

	b.Function("main", ir.I64, nil)
	tblMain := b.Call("buildMesh")
	b.ForRange("t", b.I64(0), b.I64(steps), func(t *ir.Reg) {
		energy := b.Call("timeStep", tblMain, t)
		// Stability check: NaN or blow-up means the simulation state is
		// corrupt (equake aborts on unstable meshes) — natural detection.
		isNaN := b.Cmp(ir.CmpFNE, energy, energy)
		blown := b.Cmp(ir.CmpFGT, energy, b.F64c(1e8))
		bad := b.Bin(ir.OpOr, isNaN, blown)
		b.If(bad, func() {
			msg := buildStringLiteral(b, "equake: simulation unstable")
			b.Call("puts", msg)
			b.Call("exit", b.I64(2))
		}, nil)
		// Report every 30 steps.
		rem := b.Bin(ir.OpSRem, t, b.I64(30))
		report := b.Cmp(ir.CmpEQ, rem, b.I64(0))
		b.If(report, func() {
			b.Out(energy, ir.OutFloat)
		}, nil)
	})
	// Teardown: free rows, nodes, table.
	b.ForRange("i", b.I64(0), b.I64(nodes), func(i *ir.Reg) {
		nd := b.Load(b.Index(tblMain, i))
		b.Free(b.Load(b.Field(nd, fRow)))
		b.Free(b.Load(b.Field(nd, fNeigh)))
		b.Free(nd)
	})
	b.Free(tblMain)
	b.Ret(b.I64(0))
	return m
}
