package workloads

import "dpmr/internal/ir"

// BuildArt constructs the art analogue: an Adaptive-Resonance-style
// neural network scanning a synthetic thermal image (SPEC 179.art). The
// memory profile matches the original: large flat floating point arrays
// (F1/F2 layer weights, activations) with essentially no pointers stored
// in memory, and a compute loop dominated by floating point
// multiply-accumulate over heap arrays.
func BuildArt() *ir.Module {
	const (
		f1     = 64 // input neurons (8×8 window)
		f2     = 12 // category neurons
		images = 18
		epochs = 5
	)
	m := ir.NewModule("art")
	b := ir.NewBuilder(m)
	mustDeclareExterns(b.M, "exit", "puts")

	// trainMatch computes the activation of category j for image base.
	// Signature exercises pointer params + float return.
	match := b.Function("activation", ir.F64, []string{"img", "w", "j"},
		ir.Ptr(ir.F64), ir.Ptr(ir.F64), ir.I64)
	img, w, j := match.Params[0], match.Params[1], match.Params[2]
	acc := b.Reg("acc", ir.F64)
	b.MoveTo(acc, b.F64c(0))
	rowBase := b.Mul(j, b.I64(f1))
	b.ForRange("i", b.I64(0), b.I64(f1), func(i *ir.Reg) {
		x := b.Load(b.Index(img, i))
		wv := b.Load(b.Index(w, b.Add(rowBase, i)))
		b.BinTo(acc, ir.OpFAdd, acc, b.Bin(ir.OpFMul, x, wv))
	})
	b.Ret(acc)

	// updateWeights moves the winner's templates toward the image.
	upd := b.Function("updateWeights", ir.Void, []string{"img", "bu", "td", "w"},
		ir.Ptr(ir.F64), ir.Ptr(ir.F64), ir.Ptr(ir.F64), ir.I64)
	uimg, ubu, utd, uw := upd.Params[0], upd.Params[1], upd.Params[2], upd.Params[3]
	beta := b.F64c(0.2)
	oneMinus := b.F64c(0.8)
	base := b.Mul(uw, b.I64(f1))
	b.ForRange("i", b.I64(0), b.I64(f1), func(i *ir.Reg) {
		x := b.Load(b.Index(uimg, i))
		slot := b.Index(ubu, b.Add(base, i))
		old := b.Load(slot)
		b.Store(slot, b.Bin(ir.OpFAdd, b.Bin(ir.OpFMul, oneMinus, old), b.Bin(ir.OpFMul, beta, x)))
		tslot := b.Index(utd, b.Add(base, i))
		told := b.Load(tslot)
		b.Store(tslot, b.Bin(ir.OpFAdd, b.Bin(ir.OpFMul, oneMinus, told), b.Bin(ir.OpFMul, beta, x)))
	})
	b.Ret(nil)

	b.Function("main", ir.I64, nil)
	// Allocation sites: image bank, bottom-up weights, top-down weights,
	// activations, winner histogram.
	imgBank := b.MallocN(ir.F64, b.I64(images*f1))
	bu := b.MallocN(ir.F64, b.I64(f2*f1))
	td := b.MallocN(ir.F64, b.I64(f2*f1))
	act := b.MallocN(ir.F64, b.I64(f2))
	hist := b.MallocN(ir.I64, b.I64(f2))

	// Synthesize the thermal image bank: blobs of warm pixels.
	rng := newLCG(b, 1770)
	b.ForRange("p", b.I64(0), b.I64(images*f1), func(p *ir.Reg) {
		raw := rng.nextIn(b, 1000)
		v := b.Bin(ir.OpFDiv, b.Convert(raw, ir.F64), b.F64c(997))
		b.Store(b.Index(imgBank, p), v)
	})
	// Initialize weights uniformly.
	b.ForRange("p", b.I64(0), b.I64(f2*f1), func(p *ir.Reg) {
		b.Store(b.Index(bu, p), b.F64c(1.0/f1))
		b.Store(b.Index(td, p), b.F64c(1.0))
	})
	b.ForRange("p", b.I64(0), b.I64(f2), func(p *ir.Reg) {
		b.Store(b.Index(hist, p), b.I64(0))
	})

	// Train: epochs × images: activations, winner-take-all, update.
	b.ForRange("e", b.I64(0), b.I64(epochs), func(e *ir.Reg) {
		b.ForRange("n", b.I64(0), b.I64(images), func(n *ir.Reg) {
			imgPtr := b.Index(imgBank, b.Mul(n, b.I64(f1)))
			b.ForRange("j", b.I64(0), b.I64(f2), func(j *ir.Reg) {
				a := b.Call("activation", imgPtr, bu, j)
				b.Store(b.Index(act, j), a)
			})
			// Winner-take-all scan.
			best := b.Reg("best", ir.I64)
			bestV := b.Reg("bestV", ir.F64)
			b.MoveTo(best, b.I64(0))
			b.MoveTo(bestV, b.Load(b.Index(act, b.I64(0))))
			b.ForRange("j", b.I64(1), b.I64(f2), func(j *ir.Reg) {
				v := b.Load(b.Index(act, j))
				better := b.Cmp(ir.CmpFGT, v, bestV)
				b.If(better, func() {
					b.MoveTo(best, j)
					b.MoveTo(bestV, v)
				}, nil)
			})
			b.Call("updateWeights", imgPtr, bu, td, best)
			slot := b.Index(hist, best)
			b.Store(slot, b.Add(b.Load(slot), b.I64(1)))
		})
		// Per-epoch checksum of the bottom-up weights.
		sum := b.Reg("wsum", ir.F64)
		b.MoveTo(sum, b.F64c(0))
		b.ForRange("p", b.I64(0), b.I64(f2*f1), func(p *ir.Reg) {
			b.BinTo(sum, ir.OpFAdd, sum, b.Load(b.Index(bu, p)))
		})
		// Sanity: a NaN or wildly out-of-range checksum means the network
		// state is corrupt — report and exit(2) (natural detection).
		isNaN := b.Cmp(ir.CmpFNE, sum, sum)
		tooBig := b.Cmp(ir.CmpFGT, sum, b.F64c(1e9))
		bad := b.Bin(ir.OpOr, isNaN, tooBig)
		b.If(bad, func() {
			msg := buildStringLiteral(b, "art: network state corrupt")
			b.Call("puts", msg)
			b.Call("exit", b.I64(2))
		}, nil)
		b.Out(sum, ir.OutFloat)
	})
	// Final recognition histogram.
	b.ForRange("j", b.I64(0), b.I64(f2), func(j *ir.Reg) {
		b.OutInt(b.Load(b.Index(hist, j)))
	})
	b.Free(imgBank)
	b.Free(bu)
	b.Free(td)
	b.Free(act)
	b.Free(hist)
	b.Ret(b.I64(0))
	return m
}
