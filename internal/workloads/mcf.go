package workloads

import "dpmr/internal/ir"

// BuildMcf constructs the mcf analogue: single-depot vehicle scheduling
// solved as a min-cost network flow (SPEC 181.mcf). Like the original's
// network simplex structures, the graph lives in linked structs — nodes
// carry arc-list head pointers and arcs carry head-node and next-arc
// pointers — so nearly every step of the optimization loads pointers from
// memory (the most pointer-heavy workload, §4.5).
func BuildMcf() *ir.Module {
	const (
		nNodes = 64
		passes = nNodes // Bellman-Ford passes
	)
	m := ir.NewModule("mcf")
	b := ir.NewBuilder(m)
	mustDeclareExterns(b.M, "exit", "puts")

	// struct MNode { i64 pot; MArc* first; i64 supply }
	// struct MArc  { i64 cost; i64 cap; i64 flow; MNode* head; MArc* next }
	mnode := ir.NamedStruct("MNode")
	marc := ir.NamedStruct("MArc")
	mnode.SetBody(ir.I64, ir.Ptr(marc), ir.I64)
	marc.SetBody(ir.I64, ir.I64, ir.I64, ir.Ptr(mnode), ir.Ptr(marc))
	npt := ir.Ptr(mnode)
	apt := ir.Ptr(marc)
	const (
		nPot = iota
		nFirst
		nSupply
	)
	const (
		aCost = iota
		aCap
		aFlow
		aHead
		aNext
	)

	// addArc links a new arc from→head into from's adjacency list.
	aa := b.Function("addArc", ir.Void, []string{"from", "head", "cost", "cap"},
		npt, npt, ir.I64, ir.I64)
	from, head, cost, cap := aa.Params[0], aa.Params[1], aa.Params[2], aa.Params[3]
	arc := b.Malloc(marc)
	b.Store(b.Field(arc, aCost), cost)
	b.Store(b.Field(arc, aCap), cap)
	b.Store(b.Field(arc, aFlow), b.I64(0))
	b.Store(b.Field(arc, aHead), head)
	b.Store(b.Field(arc, aNext), b.Load(b.Field(from, nFirst)))
	b.Store(b.Field(from, nFirst), arc)
	b.Ret(nil)

	// buildNetwork allocates the node table and a deterministic arc set.
	b.Function("buildNetwork", ir.Ptr(npt), nil)
	tbl := b.MallocN(npt, b.I64(nNodes))
	b.ForRange("i", b.I64(0), b.I64(nNodes), func(i *ir.Reg) {
		nd := b.Malloc(mnode)
		big := b.I64(1 << 40)
		isRoot := b.Cmp(ir.CmpEQ, i, b.I64(0))
		b.If(isRoot, func() {
			b.Store(b.Field(nd, nPot), b.I64(0))
		}, func() {
			b.Store(b.Field(nd, nPot), big)
		})
		b.Store(b.Field(nd, nFirst), b.Null(apt))
		b.Store(b.Field(nd, nSupply), b.Sub(b.Bin(ir.OpSRem, i, b.I64(5)), b.I64(2)))
		b.Store(b.Index(tbl, i), nd)
	})
	rng := newLCG(b, 181)
	b.ForRange("i", b.I64(0), b.I64(nNodes), func(i *ir.Reg) {
		src := b.Load(b.Index(tbl, i))
		// Ring arc i → i+1.
		ring := b.Bin(ir.OpURem, b.Add(i, b.I64(1)), b.I64(nNodes))
		dst1 := b.Load(b.Index(tbl, ring))
		c1 := b.Add(rng.nextIn(b, 20), b.I64(1))
		b.Call("addArc", src, dst1, c1, b.I64(8))
		// Chord arc i → 7i+3 mod n.
		chord := b.Bin(ir.OpURem, b.Add(b.Mul(i, b.I64(7)), b.I64(3)), b.I64(nNodes))
		dst2 := b.Load(b.Index(tbl, chord))
		c2 := b.Add(rng.nextIn(b, 35), b.I64(2))
		b.Call("addArc", src, dst2, c2, b.I64(5))
	})
	b.Ret(tbl)

	// relaxAll performs one Bellman-Ford pass; returns number of updates.
	rx := b.Function("relaxAll", ir.I64, []string{"tbl"}, ir.Ptr(npt))
	rtbl := rx.Params[0]
	updates := b.Reg("updates", ir.I64)
	b.MoveTo(updates, b.I64(0))
	b.ForRange("i", b.I64(0), b.I64(nNodes), func(i *ir.Reg) {
		nd := b.Load(b.Index(rtbl, i))
		pot := b.Load(b.Field(nd, nPot))
		cur := b.Reg("cur", apt)
		b.MoveTo(cur, b.Load(b.Field(nd, nFirst)))
		b.While("arcs", func() *ir.Reg {
			return b.Cmp(ir.CmpNE, cur, b.Null(apt))
		}, func() {
			cost := b.Load(b.Field(cur, aCost))
			hd := b.Load(b.Field(cur, aHead))
			hpot := b.Load(b.Field(hd, nPot))
			cand := b.Add(pot, cost)
			better := b.Cmp(ir.CmpSLT, cand, hpot)
			b.If(better, func() {
				b.Store(b.Field(hd, nPot), cand)
				b.BinTo(updates, ir.OpAdd, updates, b.I64(1))
			}, nil)
			b.MoveTo(cur, b.Load(b.Field(cur, aNext)))
		})
	})
	b.Ret(updates)

	// assignFlow prices arcs off the potentials and returns total cost.
	af := b.Function("assignFlow", ir.I64, []string{"tbl"}, ir.Ptr(npt))
	atbl := af.Params[0]
	totalCost := b.Reg("totalCost", ir.I64)
	b.MoveTo(totalCost, b.I64(0))
	b.ForRange("i", b.I64(0), b.I64(nNodes), func(i *ir.Reg) {
		nd := b.Load(b.Index(atbl, i))
		pot := b.Load(b.Field(nd, nPot))
		cur := b.Reg("cur", apt)
		b.MoveTo(cur, b.Load(b.Field(nd, nFirst)))
		b.While("arcs", func() *ir.Reg {
			return b.Cmp(ir.CmpNE, cur, b.Null(apt))
		}, func() {
			cost := b.Load(b.Field(cur, aCost))
			hd := b.Load(b.Field(cur, aHead))
			hpot := b.Load(b.Field(hd, nPot))
			// Reduced cost: arcs on shortest paths carry flow.
			reduced := b.Sub(b.Add(pot, cost), hpot)
			tight := b.Cmp(ir.CmpEQ, reduced, b.I64(0))
			b.If(tight, func() {
				cap := b.Load(b.Field(cur, aCap))
				b.Store(b.Field(cur, aFlow), cap)
				b.BinTo(totalCost, ir.OpAdd, totalCost, b.Mul(cap, cost))
			}, nil)
			b.MoveTo(cur, b.Load(b.Field(cur, aNext)))
		})
	})
	b.Ret(totalCost)

	// resetPotentials prepares a new single-source run from root.
	rp := b.Function("resetPotentials", ir.Void, []string{"tbl", "root"}, ir.Ptr(npt), ir.I64)
	ptbl, proot := rp.Params[0], rp.Params[1]
	b.ForRange("i", b.I64(0), b.I64(nNodes), func(i *ir.Reg) {
		nd := b.Load(b.Index(ptbl, i))
		isRoot := b.Cmp(ir.CmpEQ, i, proot)
		b.If(isRoot, func() {
			b.Store(b.Field(nd, nPot), b.I64(0))
		}, func() {
			b.Store(b.Field(nd, nPot), b.I64(1<<40))
		})
	})
	b.Ret(nil)

	b.Function("main", ir.I64, nil)
	tblMain := b.Call("buildNetwork")
	// Price the network from several depots (multi-source scheduling):
	// each root gets its own Bellman-Ford run over the shared structures.
	totalIter := b.Reg("totalIter", ir.I64)
	b.MoveTo(totalIter, b.I64(0))
	grand := b.Reg("grand", ir.I64)
	b.MoveTo(grand, b.I64(0))
	b.ForRange("root", b.I64(0), b.I64(8), func(root *ir.Reg) {
		b.Call("resetPotentials", tblMain, root)
		iter := b.Reg("iter", ir.I64)
		b.MoveTo(iter, b.I64(0))
		changed := b.Reg("changed", ir.I64)
		b.MoveTo(changed, b.I64(1))
		b.While("bf", func() *ir.Reg {
			more := b.Cmp(ir.CmpSGT, changed, b.I64(0))
			inBudget := b.Cmp(ir.CmpSLT, iter, b.I64(passes+2))
			return b.Bin(ir.OpAnd, more, inBudget)
		}, func() {
			b.MoveTo(changed, b.Call("relaxAll", tblMain))
			b.BinTo(iter, ir.OpAdd, iter, b.I64(1))
		})
		// A Bellman-Ford run that never converges means a negative cycle —
		// impossible with these costs, so it indicates corrupted network
		// state: report and exit(2) (mcf's own infeasibility check).
		unconverged := b.Cmp(ir.CmpSGT, changed, b.I64(0))
		b.If(unconverged, func() {
			msg := buildStringLiteral(b, "mcf: network infeasible")
			b.Call("puts", msg)
			b.Call("exit", b.I64(2))
		}, nil)
		b.BinTo(totalIter, ir.OpAdd, totalIter, iter)
		// Shortest-path potentials checksum for this root.
		pcheck := b.Reg("pcheck", ir.I64)
		b.MoveTo(pcheck, b.I64(0))
		b.ForRange("i", b.I64(0), b.I64(nNodes), func(i *ir.Reg) {
			nd := b.Load(b.Index(tblMain, i))
			b.BinTo(pcheck, ir.OpAdd, pcheck, b.Load(b.Field(nd, nPot)))
		})
		b.BinTo(grand, ir.OpAdd, grand, pcheck)
		totalC := b.Call("assignFlow", tblMain)
		b.BinTo(grand, ir.OpAdd, grand, totalC)
	})
	b.OutInt(totalIter)
	b.OutInt(grand)
	// Teardown: free arc lists, nodes, table.
	b.ForRange("i", b.I64(0), b.I64(nNodes), func(i *ir.Reg) {
		nd := b.Load(b.Index(tblMain, i))
		cur := b.Reg("cur", apt)
		b.MoveTo(cur, b.Load(b.Field(nd, nFirst)))
		b.While("freearcs", func() *ir.Reg {
			return b.Cmp(ir.CmpNE, cur, b.Null(apt))
		}, func() {
			nxt := b.Load(b.Field(cur, aNext))
			b.Free(cur)
			b.MoveTo(cur, nxt)
		})
		b.Free(nd)
	})
	b.Free(tblMain)
	b.Ret(b.I64(0))
	return m
}
