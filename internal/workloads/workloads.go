// Package workloads provides the benchmark programs the evaluation runs
// (§3.3): IR analogues of the four SPEC CPU2000 C benchmarks the paper
// uses, matched on the axes that drive DPMR's behaviour — allocation-site
// structure, pointer density in memory (art and bzip2 keep few pointers
// in memory; equake and mcf are pointer-heavy, which drives the SDS/MDS
// overhead gap of §4.5), and load/store mix. Each program is
// deterministic, produces checkable output, performs application-level
// sanity checks that exit nonzero on internal inconsistency (the
// "application-dependent output indicating an error" form of natural
// detection, §3.6), and frees its memory.
package workloads

import (
	"fmt"

	"dpmr/internal/ir"
)

// Workload is one benchmark program.
type Workload struct {
	Name string
	// Description summarizes what the analogue models.
	Description string
	// PointerHeavy marks workloads that keep many pointers in memory
	// (drives the SDS vs MDS comparison).
	PointerHeavy bool
	// Build constructs a fresh module. Builders are deterministic; the
	// harness rebuilds per experiment (per-injection variants, Fig 3.5).
	Build func() *ir.Module
}

// All returns the benchmark suite in the paper's order.
func All() []Workload {
	return []Workload{
		{
			Name:        "art",
			Description: "neural network recognizing objects in a thermal image (floating point)",
			Build:       BuildArt,
		},
		{
			Name:        "bzip2",
			Description: "in-memory block compression with decompress-and-verify (integer)",
			Build:       BuildBzip2,
		},
		{
			Name:         "equake",
			Description:  "seismic wave propagation over an unstructured mesh (floating point)",
			PointerHeavy: true,
			Build:        BuildEquake,
		},
		{
			Name:         "mcf",
			Description:  "vehicle scheduling via min-cost network flow (integer)",
			PointerHeavy: true,
			Build:        BuildMcf,
		},
	}
}

// ByName resolves a workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// lcg is a Knuth MMIX linear congruential generator maintained in an IR
// register, giving workloads deterministic pseudo-random input without
// touching the VM's diversity PRNG.
type lcg struct {
	state *ir.Reg
}

func newLCG(b *ir.Builder, seed int64) *lcg {
	s := b.Reg("lcg", ir.I64)
	b.MoveTo(s, b.I64(seed))
	return &lcg{state: s}
}

// next advances the generator and returns a register holding the new
// state.
func (l *lcg) next(b *ir.Builder) *ir.Reg {
	mul := b.I64(6364136223846793005)
	add := b.I64(1442695040888963407)
	b.BinTo(l.state, ir.OpMul, l.state, mul)
	b.BinTo(l.state, ir.OpAdd, l.state, add)
	v := b.Reg("", ir.I64)
	b.MoveTo(v, l.state)
	return v
}

// nextIn returns a register with a value in [0, n) derived from next.
func (l *lcg) nextIn(b *ir.Builder, n int64) *ir.Reg {
	v := l.next(b)
	shifted := b.Bin(ir.OpLShr, v, b.I64(33))
	return b.Bin(ir.OpURem, shifted, b.I64(n))
}
