package workloads

import "dpmr/internal/ir"

// BuildBzip2 constructs the bzip2 analogue: block compression performed
// entirely in memory (SPEC 256.bzip2 as modified by SPEC). The pipeline is
// run-length encoding followed by move-to-front coding, then decoded back
// and verified against the original input — the verify step is the
// application's own error detector, and a verification failure reports and
// exits nonzero (natural detection). The memory profile matches the
// original: byte buffers and small tables, no pointers stored in memory.
func BuildBzip2() *ir.Module {
	const blockSize = 3000
	m := ir.NewModule("bzip2")
	b := ir.NewBuilder(m)
	mustDeclareExterns(b.M, "memcpy", "puts", "exit")

	i8p := ir.Ptr(ir.I8)

	// rleCompress encodes (runLength, byte) pairs; returns output length.
	rle := b.Function("rleCompress", ir.I64, []string{"in", "n", "out"}, i8p, ir.I64, i8p)
	in, n, out := rle.Params[0], rle.Params[1], rle.Params[2]
	op := b.Reg("op", ir.I64)
	ip := b.Reg("ip", ir.I64)
	b.MoveTo(op, b.I64(0))
	b.MoveTo(ip, b.I64(0))
	b.While("rle", func() *ir.Reg {
		return b.Cmp(ir.CmpSLT, ip, n)
	}, func() {
		cur := b.Load(b.Index(in, ip))
		run := b.Reg("run", ir.I64)
		b.MoveTo(run, b.I64(1))
		b.While("run", func() *ir.Reg {
			nxtIdx := b.Add(ip, run)
			inBounds := b.Cmp(ir.CmpSLT, nxtIdx, n)
			short := b.Cmp(ir.CmpSLT, run, b.I64(120))
			both := b.Bin(ir.OpAnd, inBounds, short)
			same := b.Reg("", ir.I1)
			b.MoveTo(same, b.Const(ir.I1, 0))
			b.If(both, func() {
				nv := b.Load(b.Index(in, b.Add(ip, run)))
				b.MoveTo(same, b.Cmp(ir.CmpEQ, nv, cur))
			}, nil)
			return same
		}, func() {
			b.BinTo(run, ir.OpAdd, run, b.I64(1))
		})
		b.Store(b.Index(out, op), b.Convert(run, ir.I8))
		b.Store(b.Index(out, b.Add(op, b.I64(1))), cur)
		b.BinTo(op, ir.OpAdd, op, b.I64(2))
		b.BinTo(ip, ir.OpAdd, ip, run)
	})
	b.Ret(op)

	// mtfEncode rewrites bytes as move-to-front ranks using a 256-entry
	// table (allocated by the caller).
	mtf := b.Function("mtfEncode", ir.Void, []string{"buf", "n", "table"}, i8p, ir.I64, i8p)
	mbuf, mn, mtab := mtf.Params[0], mtf.Params[1], mtf.Params[2]
	b.ForRange("t", b.I64(0), b.I64(256), func(t *ir.Reg) {
		b.Store(b.Index(mtab, t), b.Convert(t, ir.I8))
	})
	b.ForRange("i", b.I64(0), mn, func(i *ir.Reg) {
		v := b.Load(b.Index(mbuf, i))
		// Find rank of v.
		rank := b.Reg("rank", ir.I64)
		b.MoveTo(rank, b.I64(0))
		b.While("find", func() *ir.Reg {
			tv := b.Load(b.Index(mtab, rank))
			return b.Cmp(ir.CmpNE, tv, v)
		}, func() {
			b.BinTo(rank, ir.OpAdd, rank, b.I64(1))
		})
		// Shift table entries down, put v at front.
		b.ForRange("s", b.I64(0), rank, func(s *ir.Reg) {
			idx := b.Sub(rank, s)
			prev := b.Load(b.Index(mtab, b.Sub(idx, b.I64(1))))
			b.Store(b.Index(mtab, idx), prev)
		})
		b.Store(b.Index(mtab, b.I64(0)), v)
		b.Store(b.Index(mbuf, i), b.Convert(rank, ir.I8))
	})
	b.Ret(nil)

	// mtfDecode inverts mtfEncode.
	mtfd := b.Function("mtfDecode", ir.Void, []string{"buf", "n", "table"}, i8p, ir.I64, i8p)
	dbuf, dn, dtab := mtfd.Params[0], mtfd.Params[1], mtfd.Params[2]
	b.ForRange("t", b.I64(0), b.I64(256), func(t *ir.Reg) {
		b.Store(b.Index(dtab, t), b.Convert(t, ir.I8))
	})
	b.ForRange("i", b.I64(0), dn, func(i *ir.Reg) {
		rank8 := b.Load(b.Index(dbuf, i))
		rank := b.Bin(ir.OpAnd, b.Convert(rank8, ir.I64), b.I64(0xFF))
		v := b.Load(b.Index(dtab, rank))
		b.ForRange("s", b.I64(0), rank, func(s *ir.Reg) {
			idx := b.Sub(rank, s)
			prev := b.Load(b.Index(dtab, b.Sub(idx, b.I64(1))))
			b.Store(b.Index(dtab, idx), prev)
		})
		b.Store(b.Index(dtab, b.I64(0)), v)
		b.Store(b.Index(dbuf, i), v)
	})
	b.Ret(nil)

	// rleDecode expands (run, byte) pairs; returns decoded length.
	rled := b.Function("rleDecode", ir.I64, []string{"in", "n", "out"}, i8p, ir.I64, i8p)
	rin, rn, rout := rled.Params[0], rled.Params[1], rled.Params[2]
	rop := b.Reg("rop", ir.I64)
	b.MoveTo(rop, b.I64(0))
	rip := b.Reg("rip", ir.I64)
	b.MoveTo(rip, b.I64(0))
	b.While("dec", func() *ir.Reg {
		return b.Cmp(ir.CmpSLT, rip, rn)
	}, func() {
		run := b.Bin(ir.OpAnd, b.Convert(b.Load(b.Index(rin, rip)), ir.I64), b.I64(0xFF))
		v := b.Load(b.Index(rin, b.Add(rip, b.I64(1))))
		b.ForRange("w", b.I64(0), run, func(w *ir.Reg) {
			b.Store(b.Index(rout, b.Add(rop, w)), v)
		})
		b.BinTo(rop, ir.OpAdd, rop, run)
		b.BinTo(rip, ir.OpAdd, rip, b.I64(2))
	})
	b.Ret(rop)

	b.Function("main", ir.I64, nil)
	// Allocation sites: input, working copy, RLE buffer, MTF tables (2),
	// decode buffer.
	input := b.MallocN(ir.I8, b.I64(blockSize))
	work := b.MallocN(ir.I8, b.I64(blockSize))
	rleBuf := b.MallocN(ir.I8, b.I64(2*blockSize))
	encTab := b.MallocN(ir.I8, b.I64(256))
	decTab := b.MallocN(ir.I8, b.I64(256))
	decBuf := b.MallocN(ir.I8, b.I64(blockSize))

	// Synthesize compressible input: runs of small symbols.
	rng := newLCG(b, 256256)
	pos := b.Reg("pos", ir.I64)
	b.MoveTo(pos, b.I64(0))
	b.While("gen", func() *ir.Reg {
		return b.Cmp(ir.CmpSLT, pos, b.I64(blockSize))
	}, func() {
		sym := b.Convert(rng.nextIn(b, 14), ir.I8)
		runLen := b.Add(rng.nextIn(b, 9), b.I64(1))
		b.ForRange("g", b.I64(0), runLen, func(g *ir.Reg) {
			idx := b.Add(pos, g)
			ok := b.Cmp(ir.CmpSLT, idx, b.I64(blockSize))
			b.If(ok, func() {
				b.Store(b.Index(input, idx), sym)
			}, nil)
		})
		b.BinTo(pos, ir.OpAdd, pos, runLen)
	})

	// Compress: copy input to the working buffer via the external memcpy
	// (exercising the §2.8 wrapper), RLE, then MTF.
	b.Call("memcpy", work, input, b.I64(blockSize))
	rleLen := b.Call("rleCompress", work, b.I64(blockSize), rleBuf)
	b.OutInt(rleLen) // compressed size
	b.Call("mtfEncode", rleBuf, rleLen, encTab)
	// Compressed checksum.
	ck := b.Reg("ck", ir.I64)
	b.MoveTo(ck, b.I64(0))
	b.ForRange("c", b.I64(0), rleLen, func(c *ir.Reg) {
		v := b.Bin(ir.OpAnd, b.Convert(b.Load(b.Index(rleBuf, c)), ir.I64), b.I64(0xFF))
		b.MoveTo(ck, b.Add(b.Mul(ck, b.I64(131)), v))
	})
	b.OutInt(b.Bin(ir.OpAnd, ck, b.I64(0xFFFFFFF)))

	// Decompress and verify.
	b.Call("mtfDecode", rleBuf, rleLen, decTab)
	decLen := b.Call("rleDecode", rleBuf, rleLen, decBuf)
	okLen := b.Cmp(ir.CmpEQ, decLen, b.I64(blockSize))
	b.If(okLen, nil, func() {
		failStr := buildStringLiteral(b, "bzip2: length mismatch")
		b.Call("puts", failStr)
		b.Call("exit", b.I64(2))
	})
	b.ForRange("v", b.I64(0), b.I64(blockSize), func(v *ir.Reg) {
		a := b.Load(b.Index(input, v))
		d := b.Load(b.Index(decBuf, v))
		bad := b.Cmp(ir.CmpNE, a, d)
		b.If(bad, func() {
			failStr := buildStringLiteral(b, "bzip2: verify failed")
			b.Call("puts", failStr)
			b.Call("exit", b.I64(2))
		}, nil)
	})
	okStr := buildStringLiteral(b, "bzip2: ok")
	b.Call("puts", okStr)
	b.Free(okStr)

	b.Free(input)
	b.Free(work)
	b.Free(rleBuf)
	b.Free(encTab)
	b.Free(decTab)
	b.Free(decBuf)
	b.Ret(b.I64(0))
	return m
}

// buildStringLiteral materializes a NUL-terminated string on the heap and
// returns an i8* register. (A fresh buffer per use keeps the builder
// simple; real programs would use globals.)
func buildStringLiteral(b *ir.Builder, s string) *ir.Reg {
	buf := b.MallocN(ir.I8, b.I64(int64(len(s)+1)))
	for i := 0; i < len(s); i++ {
		b.Store(b.Index(buf, b.I64(int64(i))), b.I8(int64(s[i])))
	}
	b.Store(b.Index(buf, b.I64(int64(len(s)))), b.I8(0))
	return buf
}

func mustDeclareExterns(m *ir.Module, names ...string) {
	// Declared lazily by workload builders; extlib.Declare validates
	// names, and a bad name is a programming error in this package.
	for _, n := range names {
		if m.Func(n) == nil {
			sig, ok := externSigs()[n]
			if !ok {
				panic("workloads: unknown extern " + n)
			}
			m.AddExtern(n, sig)
		}
	}
}

// externSigs mirrors extlib.Sigs for the externs workloads use; kept local
// to avoid a package cycle (extlib depends on dpmr for wrapper naming).
func externSigs() map[string]*ir.FuncType {
	i8p := ir.Ptr(ir.I8)
	return map[string]*ir.FuncType{
		"memcpy": ir.FuncOf(ir.Void, i8p, i8p, ir.I64),
		"memset": ir.FuncOf(ir.Void, i8p, ir.I8, ir.I64),
		"puts":   ir.FuncOf(ir.Void, i8p),
		"exit":   ir.FuncOf(ir.Void, ir.I64),
		"strcpy": ir.FuncOf(i8p, i8p, i8p),
		"strlen": ir.FuncOf(ir.I64, i8p),
	}
}
