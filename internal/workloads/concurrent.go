// Concurrent multi-VM workloads for the interleaving scheduler
// (internal/sched): thread 0 runs main, threads 1..n-1 run worker(tid),
// all sharing one address space. Each workload is data-race-free by
// construction — cross-thread data moves only through atomic operations
// or through plain memory whose ownership is handed over by an atomic
// (publish flags, CAS-claimed slots) — and its output is a commutative
// reduction (sums over a fixed task multiset), so the printed result is
// a pure function of (workload, thread count), identical under every
// interleaving the seeded scheduler draws. That schedule-independence is
// what keeps campaign classification stable: an injection that perturbs
// shared state changes the output or trips a check under any schedule.
//
// Because thread counts are baked into the module, builders take the
// total thread count as a parameter (ConcurrentWorkload.Build), unlike
// the fixed serial suite.
package workloads

import (
	"fmt"

	"dpmr/internal/ir"
)

// ConcurrentWorkload is one concurrent benchmark program.
type ConcurrentWorkload struct {
	Name        string
	Description string
	// Build constructs a fresh module for n total threads (main plus
	// n-1 workers), n >= 1.
	Build func(threads int) *ir.Module
}

// Concurrent returns the concurrent workload suite.
func Concurrent() []ConcurrentWorkload {
	return []ConcurrentWorkload{
		{
			Name:        "chash",
			Description: "hash-table stress: threads scatter atomic adds over shared buckets",
			Build:       BuildCHash,
		},
		{
			Name:        "cpipe",
			Description: "producer/consumer pipeline over a slot-published shared ring",
			Build:       BuildCPipe,
		},
		{
			Name:        "csteal",
			Description: "work-stealing task queues with CAS-claimed entries",
			Build:       BuildCSteal,
		},
	}
}

// ConcurrentByName resolves a concurrent workload.
func ConcurrentByName(name string) (ConcurrentWorkload, error) {
	for _, w := range Concurrent() {
		if w.Name == name {
			return w, nil
		}
	}
	return ConcurrentWorkload{}, fmt.Errorf("workloads: unknown concurrent workload %q", name)
}

// atomicLoad64 is the atomic-load idiom: fetch-add of zero.
func atomicLoad64(b *ir.Builder, p *ir.Reg) *ir.Reg {
	return b.AtomicRMW(ir.AtomicAdd, p, b.I64(0))
}

// spinUntilEq busy-waits until the i64 global named g atomically reads
// want. Every probe is a scheduling point, so spinning threads hand
// control to the scheduler at full granularity.
func spinUntilEq(b *ir.Builder, g string, want int64) {
	b.While("spin."+g, func() *ir.Reg {
		return b.Cmp(ir.CmpNE, atomicLoad64(b, b.GlobalAddr(g)), b.I64(want))
	}, func() {})
}

// threadMix derives a deterministic per-(tid, i) i64 work item.
func threadMix(b *ir.Builder, tid, i *ir.Reg, stride int64) *ir.Reg {
	h := b.Mul(b.Add(b.Mul(tid, b.I64(stride)), i), b.I64(6364136223846793005))
	return b.Bin(ir.OpLShr, h, b.I64(17))
}

// BuildCHash constructs the hash-table stress workload: every thread
// (main included) scatters a deterministic per-thread stream of atomic
// increments over a shared bucket table and accumulates the increments
// it issued into a shared total. Addition commutes, so the final table
// is interleaving-independent, and the closing invariant — table sum
// equals the atomic op total — fails under any lost or corrupted update
// (natural detection via exit(2)).
func BuildCHash(threads int) *ir.Module {
	const (
		buckets = 64
		ops     = 400
	)
	m := ir.NewModule(fmt.Sprintf("chash%d", threads))
	b := ir.NewBuilder(m)
	mustDeclareExterns(b.M, "exit", "puts")
	m.AddGlobal("table", ir.Ptr(ir.I64))
	m.AddGlobal("start", ir.I64)
	m.AddGlobal("done", ir.I64)
	m.AddGlobal("total", ir.I64)

	// thrash is the shared per-thread op loop.
	th := b.Function("thrash", ir.Void, []string{"tid"}, ir.I64)
	tid := th.Params[0]
	tp := b.Load(b.GlobalAddr("table"))
	s := b.Reg("s", ir.I64)
	b.MoveTo(s, b.Add(b.Mul(tid, b.I64(2654435761)), b.I64(0x243F6A88)))
	sum := b.Reg("sum", ir.I64)
	b.MoveTo(sum, b.I64(0))
	b.ForRange("i", b.I64(0), b.I64(ops), func(_ *ir.Reg) {
		b.BinTo(s, ir.OpMul, s, b.I64(6364136223846793005))
		b.BinTo(s, ir.OpAdd, s, b.I64(1442695040888963407))
		k := b.Bin(ir.OpLShr, s, b.I64(33))
		bucket := b.Bin(ir.OpURem, k, b.I64(buckets))
		inc := b.Add(b.Bin(ir.OpAnd, k, b.I64(0xFF)), b.I64(1))
		b.AtomicRMW(ir.AtomicAdd, b.Index(tp, bucket), inc)
		b.BinTo(sum, ir.OpAdd, sum, inc)
	})
	b.AtomicRMW(ir.AtomicAdd, b.GlobalAddr("total"), sum)
	b.AtomicRMW(ir.AtomicAdd, b.GlobalAddr("done"), b.I64(1))
	b.Ret(nil)

	wk := b.Function("worker", ir.Void, []string{"tid"}, ir.I64)
	spinUntilEq(b, "start", 1)
	b.Call("thrash", wk.Params[0])
	b.Ret(nil)

	b.Function("main", ir.I64, nil)
	table := b.MallocN(ir.I64, b.I64(buckets))
	b.ForRange("z", b.I64(0), b.I64(buckets), func(z *ir.Reg) {
		b.Store(b.Index(table, z), b.I64(0))
	})
	b.Store(b.GlobalAddr("table"), table)
	b.AtomicRMW(ir.AtomicXchg, b.GlobalAddr("start"), b.I64(1))
	b.Call("thrash", b.I64(0))
	spinUntilEq(b, "done", int64(threads))
	// Quiescent: every thread published its ops; plain scan is race-free.
	chk := b.Reg("chk", ir.I64)
	b.MoveTo(chk, b.I64(0))
	b.ForRange("j", b.I64(0), b.I64(buckets), func(j *ir.Reg) {
		v := b.Load(b.Index(table, j))
		b.BinTo(chk, ir.OpAdd, chk, v)
		b.OutInt(v)
	})
	tot := atomicLoad64(b, b.GlobalAddr("total"))
	bad := b.Cmp(ir.CmpNE, chk, tot)
	b.If(bad, func() {
		msg := buildStringLiteral(b, "chash: table sum diverges from op total")
		b.Call("puts", msg)
		b.Call("exit", b.I64(2))
	}, nil)
	b.OutInt(chk)
	b.Free(table)
	b.Ret(b.I64(0))
	return m
}

// BuildCPipe constructs the producer/consumer pipeline: producers claim
// globally unique ring slots with an atomic fetch-add, fill them with
// plain stores, and publish each slot with a CAS on its full flag; the
// consumer (main) walks slots in order, spinning on each flag. Which
// producer fills which slot is schedule-dependent, but the value
// multiset is fixed, so the consumer's sum matches a serially computed
// expectation under every interleaving.
func BuildCPipe(threads int) *ir.Module {
	const perProducer = 300
	prodLo, prodHi := 1, threads // producer tids [lo, hi)
	if threads == 1 {
		prodLo, prodHi = 0, 1 // degenerate: main produces, then consumes
	}
	producers := prodHi - prodLo
	slots := int64(producers) * perProducer

	m := ir.NewModule(fmt.Sprintf("cpipe%d", threads))
	b := ir.NewBuilder(m)
	mustDeclareExterns(b.M, "exit", "puts")
	m.AddGlobal("ring", ir.Ptr(ir.I64))
	m.AddGlobal("full", ir.Ptr(ir.I64))
	m.AddGlobal("claim", ir.I64)
	m.AddGlobal("start", ir.I64)

	pr := b.Function("produce", ir.Void, []string{"tid"}, ir.I64)
	ptid := pr.Params[0]
	rp := b.Load(b.GlobalAddr("ring"))
	fp := b.Load(b.GlobalAddr("full"))
	b.ForRange("i", b.I64(0), b.I64(perProducer), func(i *ir.Reg) {
		slot := b.AtomicRMW(ir.AtomicAdd, b.GlobalAddr("claim"), b.I64(1))
		v := threadMix(b, ptid, i, perProducer)
		b.Store(b.Index(rp, slot), v) // exclusive: slot was claimed atomically
		b.AtomicCAS(b.Index(fp, slot), b.I64(0), b.I64(1))
	})
	b.Ret(nil)

	wk := b.Function("worker", ir.Void, []string{"tid"}, ir.I64)
	spinUntilEq(b, "start", 1)
	b.Call("produce", wk.Params[0])
	b.Ret(nil)

	b.Function("main", ir.I64, nil)
	ring := b.MallocN(ir.I64, b.I64(slots))
	full := b.MallocN(ir.I64, b.I64(slots))
	b.ForRange("z", b.I64(0), b.I64(slots), func(z *ir.Reg) {
		b.Store(b.Index(ring, z), b.I64(0))
		b.Store(b.Index(full, z), b.I64(0))
	})
	b.Store(b.GlobalAddr("ring"), ring)
	b.Store(b.GlobalAddr("full"), full)
	b.AtomicRMW(ir.AtomicXchg, b.GlobalAddr("start"), b.I64(1))
	if threads == 1 {
		b.Call("produce", b.I64(0))
	}
	// Consume slots in order; each spin probe is a scheduling point.
	chk := b.Reg("chk", ir.I64)
	b.MoveTo(chk, b.I64(0))
	b.ForRange("slot", b.I64(0), b.I64(slots), func(slot *ir.Reg) {
		b.While("spin.full", func() *ir.Reg {
			return b.Cmp(ir.CmpEQ, atomicLoad64(b, b.Index(full, slot)), b.I64(0))
		}, func() {})
		b.BinTo(chk, ir.OpAdd, chk, b.Load(b.Index(ring, slot)))
	})
	// Serially recompute the expected value multiset sum.
	want := b.Reg("want", ir.I64)
	b.MoveTo(want, b.I64(0))
	b.ForRange("t", b.I64(int64(prodLo)), b.I64(int64(prodHi)), func(t *ir.Reg) {
		b.ForRange("i", b.I64(0), b.I64(perProducer), func(i *ir.Reg) {
			b.BinTo(want, ir.OpAdd, want, threadMix(b, t, i, perProducer))
		})
	})
	bad := b.Cmp(ir.CmpNE, chk, want)
	b.If(bad, func() {
		msg := buildStringLiteral(b, "cpipe: consumed sum diverges from produced sum")
		b.Call("puts", msg)
		b.Call("exit", b.I64(2))
	}, nil)
	b.OutInt(chk)
	b.Free(ring)
	b.Free(full)
	b.Ret(b.I64(0))
	return m
}

// BuildCSteal constructs the work-stealing workload: every thread owns a
// task queue it seeds and drains, stealing from the next queues over
// when its own runs dry. Entries are claimed exclusively with a CAS on
// the queue head (no fetch-add overshoot), task values are plain memory
// handed over by the claim, and a shared remaining counter drives
// termination. The checksum sums a mix of every task exactly once, so
// it is independent of who stole what.
func BuildCSteal(threads int) *ir.Module {
	const perQueue = 250
	n := int64(threads)

	m := ir.NewModule(fmt.Sprintf("csteal%d", threads))
	b := ir.NewBuilder(m)
	mustDeclareExterns(b.M, "exit", "puts")
	m.AddGlobal("tasks", ir.Ptr(ir.I64))
	m.AddGlobal("heads", ir.Ptr(ir.I64))
	m.AddGlobal("tails", ir.Ptr(ir.I64))
	m.AddGlobal("remaining", ir.I64)
	m.AddGlobal("chk", ir.I64)
	m.AddGlobal("procd", ir.I64)
	m.AddGlobal("start", ir.I64)
	m.AddGlobal("done", ir.I64)

	rt := b.Function("runThread", ir.Void, []string{"tid"}, ir.I64)
	tid := rt.Params[0]
	tp := b.Load(b.GlobalAddr("tasks"))
	hp := b.Load(b.GlobalAddr("heads"))
	tlp := b.Load(b.GlobalAddr("tails"))
	// Seed the own queue: plain task writes, each published by an atomic
	// tail bump (stealers read an entry only below the tail).
	myBase := b.Mul(tid, b.I64(perQueue))
	b.ForRange("i", b.I64(0), b.I64(perQueue), func(i *ir.Reg) {
		b.Store(b.Index(tp, b.Add(myBase, i)), threadMix(b, tid, i, perQueue))
		b.AtomicRMW(ir.AtomicAdd, b.Index(tlp, tid), b.I64(1))
	})
	local := b.Reg("local", ir.I64)
	count := b.Reg("count", ir.I64)
	b.MoveTo(local, b.I64(0))
	b.MoveTo(count, b.I64(0))
	b.While("work", func() *ir.Reg {
		return b.Cmp(ir.CmpSGT, atomicLoad64(b, b.GlobalAddr("remaining")), b.I64(0))
	}, func() {
		// Probe own queue first, then victims in ring order.
		got := b.Reg("got", ir.I64)
		b.MoveTo(got, b.I64(0))
		b.ForRange("q", b.I64(0), b.I64(n), func(q *ir.Reg) {
			b.If(b.Cmp(ir.CmpEQ, got, b.I64(0)), func() {
				vq := b.Bin(ir.OpURem, b.Add(tid, q), b.I64(n))
				h := atomicLoad64(b, b.Index(hp, vq))
				t := atomicLoad64(b, b.Index(tlp, vq))
				b.If(b.Cmp(ir.CmpSLT, h, t), func() {
					old := b.AtomicCAS(b.Index(hp, vq), h, b.Add(h, b.I64(1)))
					b.If(b.Cmp(ir.CmpEQ, old, h), func() {
						// Claim won: entry h of queue vq is exclusively ours.
						v := b.Load(b.Index(tp, b.Add(b.Mul(vq, b.I64(perQueue)), h)))
						g := b.Mul(v, b.I64(2862933555777941757))
						g = b.Bin(ir.OpXor, g, b.Bin(ir.OpLShr, g, b.I64(29)))
						b.BinTo(local, ir.OpAdd, local, g)
						b.BinTo(count, ir.OpAdd, count, b.I64(1))
						b.AtomicRMW(ir.AtomicAdd, b.GlobalAddr("remaining"), b.I64(-1))
						b.MoveTo(got, b.I64(1))
					}, nil)
				}, nil)
			}, nil)
		})
	})
	b.AtomicRMW(ir.AtomicAdd, b.GlobalAddr("chk"), local)
	b.AtomicRMW(ir.AtomicAdd, b.GlobalAddr("procd"), count)
	b.AtomicRMW(ir.AtomicAdd, b.GlobalAddr("done"), b.I64(1))
	b.Ret(nil)

	wk := b.Function("worker", ir.Void, []string{"tid"}, ir.I64)
	spinUntilEq(b, "start", 1)
	b.Call("runThread", wk.Params[0])
	b.Ret(nil)

	b.Function("main", ir.I64, nil)
	tasks := b.MallocN(ir.I64, b.I64(n*perQueue))
	heads := b.MallocN(ir.I64, b.I64(n))
	tails := b.MallocN(ir.I64, b.I64(n))
	b.ForRange("z", b.I64(0), b.I64(n), func(z *ir.Reg) {
		b.Store(b.Index(heads, z), b.I64(0))
		b.Store(b.Index(tails, z), b.I64(0))
	})
	b.Store(b.GlobalAddr("tasks"), tasks)
	b.Store(b.GlobalAddr("heads"), heads)
	b.Store(b.GlobalAddr("tails"), tails)
	b.AtomicRMW(ir.AtomicXchg, b.GlobalAddr("remaining"), b.I64(n*perQueue))
	b.AtomicRMW(ir.AtomicXchg, b.GlobalAddr("start"), b.I64(1))
	b.Call("runThread", b.I64(0))
	spinUntilEq(b, "done", n)
	procd := atomicLoad64(b, b.GlobalAddr("procd"))
	bad := b.Cmp(ir.CmpNE, procd, b.I64(n*perQueue))
	b.If(bad, func() {
		msg := buildStringLiteral(b, "csteal: processed count diverges from task count")
		b.Call("puts", msg)
		b.Call("exit", b.I64(2))
	}, nil)
	b.OutInt(atomicLoad64(b, b.GlobalAddr("chk")))
	b.OutInt(procd)
	b.Free(tasks)
	b.Free(heads)
	b.Free(tails)
	b.Ret(b.I64(0))
	return m
}
