package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual form produced by Module.String back into a
// Module, making the printer/parser a round-trip pair. The accepted
// grammar is exactly what the printer emits; the one structural
// requirement beyond that is that a register's defining instruction
// appears textually before its uses (true of all builder- and
// transformer-produced modules, whose entry blocks dominate textually).
//
// Parse never panics: malformed input — including input that would trip
// module-construction invariants like duplicate names or non-scalar
// registers — is reported as an error (fuzzed by FuzzParse).
func Parse(text string) (*Module, error) {
	p := &parser{types: map[string]Type{}}
	if err := p.run(text); err != nil {
		return nil, err
	}
	return p.m, nil
}

type parser struct {
	m     *Module
	types map[string]Type
}

type funcBody struct {
	fn    *Func
	lines []string
}

func (p *parser) run(text string) error {
	raw := strings.Split(text, "\n")
	lines := make([]string, 0, len(raw))
	for _, l := range raw {
		l = strings.TrimRight(l, " \t")
		if strings.TrimSpace(l) == "" {
			continue
		}
		lines = append(lines, l)
	}
	// "module" with no name is accepted: an empty (or all-whitespace)
	// module name prints as "module " which trims back to bare "module",
	// so the printed form of such a module must re-parse.
	if len(lines) == 0 || (lines[0] != "module" && !strings.HasPrefix(lines[0], "module ")) {
		return fmt.Errorf("ir parse: missing module header")
	}
	p.m = NewModule(strings.TrimSpace(strings.TrimPrefix(lines[0], "module")))
	lines = lines[1:]

	// Sweep 1: create opaque named types so bodies can be recursive.
	for _, l := range lines {
		t := strings.TrimSpace(l)
		if !strings.HasPrefix(t, "type %") {
			continue
		}
		name, _, ok := strings.Cut(strings.TrimPrefix(t, "type %"), " =")
		if !ok {
			return fmt.Errorf("ir parse: bad type line %q", l)
		}
		if name == "" || name == "u." {
			return fmt.Errorf("ir parse: bad type line %q: empty type name", l)
		}
		if _, dup := p.types[name]; dup {
			return fmt.Errorf("ir parse: duplicate type %%%s", name)
		}
		if rest, isU := strings.CutPrefix(name, "u."); isU {
			p.types[name] = NamedUnion(rest)
		} else {
			p.types[name] = NamedStruct(name)
		}
	}
	// Sweep 2: fill type bodies.
	for _, l := range lines {
		t := strings.TrimSpace(l)
		if !strings.HasPrefix(t, "type %") {
			continue
		}
		name, body, _ := strings.Cut(strings.TrimPrefix(t, "type %"), " = ")
		if err := p.fillTypeBody(name, body); err != nil {
			return fmt.Errorf("ir parse: type %%%s: %w", name, err)
		}
	}

	// Sweep 3: globals, function headers, and body collection.
	var bodies []*funcBody
	var cur *funcBody
	var lastGlobal *Global
	for _, l := range lines {
		t := strings.TrimSpace(l)
		switch {
		case strings.HasPrefix(t, "type %"):
			// handled above
		case strings.HasPrefix(t, "global @"):
			g, err := p.parseGlobal(t)
			if err != nil {
				return err
			}
			lastGlobal = g
		case strings.HasPrefix(t, "ref "):
			if lastGlobal == nil {
				return fmt.Errorf("ir parse: ref outside global: %q", t)
			}
			if err := p.parseRef(lastGlobal, t); err != nil {
				return err
			}
		case strings.HasPrefix(t, "extern func @"):
			if _, err := p.parseFuncHeader(t, true); err != nil {
				return err
			}
		case strings.HasPrefix(t, "func @"):
			fn, err := p.parseFuncHeader(t, false)
			if err != nil {
				return err
			}
			cur = &funcBody{fn: fn}
			bodies = append(bodies, cur)
		case t == "}":
			cur = nil
		default:
			if cur == nil {
				return fmt.Errorf("ir parse: stray line %q", t)
			}
			cur.lines = append(cur.lines, t)
		}
	}
	for _, fb := range bodies {
		if err := p.parseBody(fb); err != nil {
			return fmt.Errorf("ir parse: @%s: %w", fb.fn.Name, err)
		}
	}
	return nil
}

func (p *parser) fillTypeBody(name, body string) error {
	cur := newCursor(body)
	// A name mismatch between the two sweeps (they split the line on
	// slightly different separators) means the line is malformed.
	switch t := p.types[name].(type) {
	case *UnionType:
		elems, err := p.parseAggregateBody(cur, "union{")
		if err != nil {
			return err
		}
		t.SetBody(elems...)
		return nil
	case *StructType:
		fields, err := p.parseAggregateBody(cur, "{")
		if err != nil {
			return err
		}
		t.SetBody(fields...)
		return nil
	default:
		return fmt.Errorf("malformed type definition")
	}
}

// parseAggregateBody parses "{ T; T; ... }" or "union{ ... }" bodies.
func (p *parser) parseAggregateBody(cur *cursor, open string) ([]Type, error) {
	if !cur.eat(open) {
		return nil, fmt.Errorf("expected %q at %q", open, cur.rest())
	}
	var out []Type
	for {
		cur.skipSpace()
		if cur.eat("}") {
			return out, nil
		}
		t, err := p.parseType(cur)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		cur.skipSpace()
		cur.eat(";")
	}
}

func (p *parser) parseGlobal(line string) (*Global, error) {
	rest := strings.TrimPrefix(line, "global @")
	name, typ, ok := strings.Cut(rest, " : ")
	if !ok {
		return nil, fmt.Errorf("ir parse: bad global line %q", line)
	}
	t, err := p.parseTypeString(typ)
	if err != nil {
		return nil, fmt.Errorf("ir parse: global @%s: %w", name, err)
	}
	if p.m.Global(name) != nil {
		return nil, fmt.Errorf("ir parse: duplicate global @%s", name)
	}
	return p.m.AddGlobal(name, t), nil
}

func (p *parser) parseRef(g *Global, line string) error {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return fmt.Errorf("ir parse: bad ref line %q", line)
	}
	off, err := strconv.Atoi(fields[1])
	if err != nil {
		return err
	}
	ref := RefInit{Offset: off}
	if fn, ok := strings.CutPrefix(fields[2], "@@"); ok {
		ref.Func = fn
	} else {
		ref.Global = strings.TrimPrefix(fields[2], "@")
	}
	g.Refs = append(g.Refs, ref)
	return nil
}

// parseFuncHeader parses:
//
//	func @name(%p.0: i64, %q.1: i8*) i64 {
//	extern func @name(%a0.0: i8*) void
func (p *parser) parseFuncHeader(line string, external bool) (*Func, error) {
	rest := line
	if external {
		rest = strings.TrimPrefix(rest, "extern ")
	}
	rest = strings.TrimPrefix(rest, "func @")
	name, rest, ok := strings.Cut(rest, "(")
	if !ok {
		return nil, fmt.Errorf("ir parse: bad func header %q", line)
	}
	paramsText, rest, ok := cutTopLevel(rest, ')')
	if !ok {
		return nil, fmt.Errorf("ir parse: unterminated params in %q", line)
	}
	retText := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest), "{"))
	ret, err := p.parseTypeString(retText)
	if err != nil {
		return nil, fmt.Errorf("ir parse: @%s return: %w", name, err)
	}
	var paramTypes []Type
	var paramNames []string
	for _, part := range splitTopLevel(paramsText, ',') {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pn, pt, ok := strings.Cut(part, ": ")
		if !ok {
			return nil, fmt.Errorf("ir parse: bad param %q in @%s", part, name)
		}
		t, err := p.parseTypeString(pt)
		if err != nil {
			return nil, fmt.Errorf("ir parse: @%s param %s: %w", name, pn, err)
		}
		if !IsScalar(t) {
			return nil, fmt.Errorf("ir parse: @%s param %s: non-scalar type %s", name, pn, t)
		}
		paramTypes = append(paramTypes, t)
		paramNames = append(paramNames, regNameOf(pn))
	}
	if p.m.Func(name) != nil {
		return nil, fmt.Errorf("ir parse: duplicate function @%s", name)
	}
	fn := p.m.AddFunc(name, FuncOf(ret, paramTypes...), paramNames...)
	fn.External = external
	return fn, nil
}

// regNameOf strips the % sigil and the .ID disambiguator.
func regNameOf(tok string) string {
	tok = strings.TrimPrefix(tok, "%")
	if i := strings.LastIndexByte(tok, '.'); i > 0 {
		if _, err := strconv.Atoi(tok[i+1:]); err == nil {
			return tok[:i]
		}
	}
	return tok
}

// ---------------------------------------------------------------------------
// Function bodies

type bodyParser struct {
	p      *parser
	fn     *Func
	regs   map[string]*Reg
	blocks map[string]*Block
	block  *Block
}

func (p *parser) parseBody(fb *funcBody) error {
	bp := &bodyParser{
		p:      p,
		fn:     fb.fn,
		regs:   map[string]*Reg{},
		blocks: map[string]*Block{},
	}
	// Parameters are pre-bound. Their textual tokens use name.ID with the
	// *new* IDs assigned by AddFunc — but the source text used original
	// IDs. Bind by position instead: the printer emits parameters in
	// order, so the i-th parameter token in the header is fn.Params[i].
	// Since instruction operands reference the token, reconstruct it from
	// the source header later; simplest is to bind both the printed form
	// of the new reg and, during instruction parsing, treat unknown
	// %name.N tokens matching a parameter name as that parameter.
	for _, prm := range fb.fn.Params {
		bp.regs[prm.String()[1:]] = prm
	}
	// Pre-create blocks in order of their labels.
	for _, l := range fb.lines {
		if strings.HasPrefix(l, ".") && strings.HasSuffix(l, ":") {
			name := strings.TrimSuffix(strings.TrimPrefix(l, "."), ":")
			bp.blocks[name] = fb.fn.NewBlock(name)
		}
	}
	for _, l := range fb.lines {
		if strings.HasPrefix(l, ".") && strings.HasSuffix(l, ":") {
			name := strings.TrimSuffix(strings.TrimPrefix(l, "."), ":")
			bp.block = bp.blocks[name]
			continue
		}
		if bp.block == nil {
			return fmt.Errorf("instruction before first block: %q", l)
		}
		if err := bp.parseInstr(l); err != nil {
			return fmt.Errorf("%q: %w", l, err)
		}
	}
	return nil
}

// lookup resolves a register token (without %), falling back to parameter
// names whose printed IDs differ between source and reconstruction.
func (bp *bodyParser) lookup(tok string) (*Reg, error) {
	tok = strings.TrimPrefix(tok, "%")
	if r, ok := bp.regs[tok]; ok {
		return r, nil
	}
	name := regNameOf("%" + tok)
	for _, prm := range bp.fn.Params {
		if prm.Name == name {
			bp.regs[tok] = prm
			return prm, nil
		}
	}
	return nil, fmt.Errorf("use of undefined register %%%s", tok)
}

// define creates (or reuses) the destination register for token tok with
// type t. Reuse happens on reassignment (non-SSA moves/loops).
func (bp *bodyParser) define(tok string, t Type) (*Reg, error) {
	if !IsScalar(t) {
		return nil, fmt.Errorf("register %s of non-scalar type %s", tok, t)
	}
	tok = strings.TrimPrefix(tok, "%")
	if r, ok := bp.regs[tok]; ok {
		if !TypesEqual(r.Type, t) {
			return nil, fmt.Errorf("register %%%s redefined with type %s (was %s)", tok, t, r.Type)
		}
		return r, nil
	}
	r := bp.fn.NewReg(regNameOf("%"+tok), t)
	bp.regs[tok] = r
	return r, nil
}

// pointee returns the pointee type of a pointer-typed register, as an
// error (not a panic) on non-pointers.
func pointee(r *Reg) (Type, error) {
	pt, ok := r.Type.(*PointerType)
	if !ok {
		return nil, fmt.Errorf("%s is not a pointer (type %s)", r, r.Type)
	}
	return pt.Elem, nil
}

func (bp *bodyParser) parseInstr(line string) error {
	line = strings.TrimSpace(line)
	// Strip the allocation-site comment before tokenizing.
	site := -1
	if idx := strings.Index(line, "; site "); idx >= 0 {
		n, err := strconv.Atoi(strings.TrimSpace(line[idx+7:]))
		if err != nil {
			return err
		}
		site = n
		line = strings.TrimSpace(line[:idx])
	}

	var dstTok string
	if strings.HasPrefix(line, "%") {
		if d, rest, ok := strings.Cut(line, " = "); ok {
			dstTok = d
			line = rest
		}
	}
	op, rest, _ := strings.Cut(line, " ")
	emit := func(in Instr) { bp.block.Append(in) }

	switch op {
	case "const":
		typText, valText, ok := strings.Cut(rest, " ")
		if !ok {
			return fmt.Errorf("bad const")
		}
		t, err := bp.p.parseTypeString(typText)
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, t)
		if err != nil {
			return err
		}
		if t.Kind() == KindFloat {
			v, err := strconv.ParseFloat(valText, 64)
			if err != nil {
				return err
			}
			emit(&ConstFloat{Dst: dst, Val: v})
		} else {
			v, err := strconv.ParseInt(valText, 10, 64)
			if err != nil {
				return err
			}
			emit(&ConstInt{Dst: dst, Val: v})
		}
	case "null":
		t, err := bp.p.parseTypeString(rest)
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, t)
		if err != nil {
			return err
		}
		emit(&ConstNull{Dst: dst})
	case "move":
		src, err := bp.lookup(rest)
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, src.Type)
		if err != nil {
			return err
		}
		emit(&Move{Dst: dst, Src: src})
	case "cmp":
		predText, ops, _ := strings.Cut(rest, " ")
		pred, ok := cmpByName[predText]
		if !ok {
			return fmt.Errorf("unknown predicate %q", predText)
		}
		x, y, err := bp.twoRegs(ops)
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, I1)
		if err != nil {
			return err
		}
		emit(&Cmp{Dst: dst, Op: pred, X: x, Y: y})
	case "convert":
		srcTok, typText, ok := strings.Cut(rest, " to ")
		if !ok {
			return fmt.Errorf("bad convert")
		}
		src, err := bp.lookup(srcTok)
		if err != nil {
			return err
		}
		t, err := bp.p.parseTypeString(typText)
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, t)
		if err != nil {
			return err
		}
		emit(&Convert{Dst: dst, Src: src})
	case "malloc", "alloca":
		kind := AllocHeap
		if op == "alloca" {
			kind = AllocStack
		}
		typText := rest
		var count *Reg
		if tt, cTok, ok := cutTopLevelStr(rest, ", count "); ok {
			typText = tt
			c, err := bp.lookup(strings.TrimSpace(cTok))
			if err != nil {
				return err
			}
			count = c
		}
		elem, err := bp.p.parseTypeString(strings.TrimSpace(typText))
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, Ptr(elem))
		if err != nil {
			return err
		}
		emit(&Alloc{Dst: dst, Kind: kind, Elem: elem, Count: count, Site: site})
	case "free":
		ptr, err := bp.lookup(rest)
		if err != nil {
			return err
		}
		emit(&Free{Ptr: ptr})
	case "load":
		typText, ptrTok, ok := cutTopLevelStr(rest, ", ")
		if !ok {
			return fmt.Errorf("bad load")
		}
		t, err := bp.p.parseTypeString(typText)
		if err != nil {
			return err
		}
		ptr, err := bp.lookup(strings.TrimSpace(ptrTok))
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, t)
		if err != nil {
			return err
		}
		emit(&Load{Dst: dst, Ptr: ptr})
	case "store":
		val, ptr, err := bp.twoRegsOrdered(rest)
		if err != nil {
			return err
		}
		emit(&Store{Ptr: ptr, Val: val})
	case "fieldaddr":
		ptrTok, idxText, ok := strings.Cut(rest, ", ")
		if !ok {
			return fmt.Errorf("bad fieldaddr")
		}
		ptr, err := bp.lookup(ptrTok)
		if err != nil {
			return err
		}
		field, err := strconv.Atoi(strings.TrimSpace(idxText))
		if err != nil {
			return err
		}
		pe, err := pointee(ptr)
		if err != nil {
			return err
		}
		var ft Type
		switch agg := pe.(type) {
		case *StructType:
			if field < 0 || field >= agg.NumFields() {
				return fmt.Errorf("fieldaddr field %d out of range for %s", field, agg)
			}
			ft = agg.Field(field)
		case *UnionType:
			if field < 0 || field >= agg.NumElems() {
				return fmt.Errorf("fieldaddr element %d out of range for %s", field, agg)
			}
			ft = agg.Elem(field)
		default:
			return fmt.Errorf("fieldaddr through %s", ptr.Type)
		}
		dst, err := bp.define(dstTok, Ptr(ft))
		if err != nil {
			return err
		}
		emit(&FieldAddr{Dst: dst, Ptr: ptr, Field: field})
	case "indexaddr":
		ptr, idx, err := bp.twoRegsOrdered(rest)
		if err != nil {
			return err
		}
		elem, err := pointee(ptr)
		if err != nil {
			return err
		}
		if at, ok := elem.(*ArrayType); ok {
			elem = at.Elem
		}
		dst, err := bp.define(dstTok, Ptr(elem))
		if err != nil {
			return err
		}
		emit(&IndexAddr{Dst: dst, Ptr: ptr, Index: idx})
	case "bitcast", "inttoptr":
		srcTok, typText, ok := strings.Cut(rest, " to ")
		if !ok {
			return fmt.Errorf("bad %s", op)
		}
		src, err := bp.lookup(srcTok)
		if err != nil {
			return err
		}
		t, err := bp.p.parseTypeString(typText)
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, t)
		if err != nil {
			return err
		}
		if op == "bitcast" {
			emit(&Bitcast{Dst: dst, Src: src})
		} else {
			emit(&IntToPtr{Dst: dst, Src: src})
		}
	case "ptrtoint":
		src, err := bp.lookup(rest)
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, I64)
		if err != nil {
			return err
		}
		emit(&PtrToInt{Dst: dst, Src: src})
	case "funcaddr":
		name := strings.TrimPrefix(rest, "@")
		callee := bp.p.m.Func(name)
		if callee == nil {
			return fmt.Errorf("funcaddr of unknown @%s", name)
		}
		dst, err := bp.define(dstTok, Ptr(callee.Sig))
		if err != nil {
			return err
		}
		emit(&FuncAddr{Dst: dst, Fn: name})
	case "globaladdr":
		name := strings.TrimPrefix(rest, "@")
		g := bp.p.m.Global(name)
		if g == nil {
			return fmt.Errorf("globaladdr of unknown @%s", name)
		}
		dst, err := bp.define(dstTok, Ptr(g.Elem))
		if err != nil {
			return err
		}
		emit(&GlobalAddr{Dst: dst, G: name})
	case "call":
		return bp.parseCall(dstTok, rest, emit)
	case "ret":
		if rest == "" {
			emit(&Ret{})
			return nil
		}
		v, err := bp.lookup(rest)
		if err != nil {
			return err
		}
		emit(&Ret{Val: v})
	case "br":
		blk, ok := bp.blocks[strings.TrimPrefix(rest, ".")]
		if !ok {
			return fmt.Errorf("branch to unknown block %s", rest)
		}
		emit(&Br{Target: blk})
	case "condbr":
		parts := splitTopLevel(rest, ',')
		if len(parts) != 3 {
			return fmt.Errorf("bad condbr")
		}
		cond, err := bp.lookup(strings.TrimSpace(parts[0]))
		if err != nil {
			return err
		}
		tb := bp.blocks[strings.TrimPrefix(strings.TrimSpace(parts[1]), ".")]
		fb := bp.blocks[strings.TrimPrefix(strings.TrimSpace(parts[2]), ".")]
		if tb == nil || fb == nil {
			return fmt.Errorf("condbr to unknown block")
		}
		emit(&CondBr{Cond: cond, True: tb, False: fb})
	case "assert":
		xTok, yTok, ok := strings.Cut(rest, " == ")
		if !ok {
			return fmt.Errorf("bad assert")
		}
		x, err := bp.lookup(xTok)
		if err != nil {
			return err
		}
		y, err := bp.lookup(yTok)
		if err != nil {
			return err
		}
		emit(&Assert{X: x, Y: y})
	case "faultpoint":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return err
		}
		emit(&FaultPoint{Site: n})
	case "randint":
		loText, hiText, ok := strings.Cut(rest, ", ")
		if !ok {
			return fmt.Errorf("bad randint")
		}
		lo, err := strconv.ParseInt(loText, 10, 64)
		if err != nil {
			return err
		}
		hi, err := strconv.ParseInt(hiText, 10, 64)
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, I64)
		if err != nil {
			return err
		}
		emit(&RandInt{Dst: dst, Lo: lo, Hi: hi})
	case "heapbufsize":
		ptr, err := bp.lookup(rest)
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, I64)
		if err != nil {
			return err
		}
		emit(&HeapBufSize{Dst: dst, Ptr: ptr})
	case "atomicrmw":
		opText, ops, _ := strings.Cut(rest, " ")
		akind, ok := atomicByName[opText]
		if !ok {
			return fmt.Errorf("unknown atomic operation %q", opText)
		}
		ops, rptr, err := bp.cutReplica(ops)
		if err != nil {
			return err
		}
		ptr, val, err := bp.twoRegsOrdered(ops)
		if err != nil {
			return err
		}
		elem, err := pointee(ptr)
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, elem)
		if err != nil {
			return err
		}
		emit(&AtomicRMW{Dst: dst, Ptr: ptr, Val: val, Op: akind, RPtr: rptr})
	case "atomiccas":
		ops, rptr, err := bp.cutReplica(rest)
		if err != nil {
			return err
		}
		parts := splitTopLevel(ops, ',')
		if len(parts) != 3 {
			return fmt.Errorf("bad atomiccas")
		}
		ptr, err := bp.lookup(strings.TrimSpace(parts[0]))
		if err != nil {
			return err
		}
		oldV, err := bp.lookup(strings.TrimSpace(parts[1]))
		if err != nil {
			return err
		}
		newV, err := bp.lookup(strings.TrimSpace(parts[2]))
		if err != nil {
			return err
		}
		elem, err := pointee(ptr)
		if err != nil {
			return err
		}
		dst, err := bp.define(dstTok, elem)
		if err != nil {
			return err
		}
		emit(&AtomicCAS{Dst: dst, Ptr: ptr, Old: oldV, New: newV, RPtr: rptr})
	case "fence":
		emit(&Fence{})
	case "output":
		modeText, valTok, ok := strings.Cut(rest, " ")
		if !ok {
			return fmt.Errorf("bad output")
		}
		mode, ok := map[string]OutputMode{"int": OutInt, "float": OutFloat, "byte": OutByte}[modeText]
		if !ok {
			return fmt.Errorf("unknown output mode %q", modeText)
		}
		v, err := bp.lookup(valTok)
		if err != nil {
			return err
		}
		emit(&Output{Val: v, Mode: mode})
	case "exit":
		if rest == "" {
			emit(&Exit{})
			return nil
		}
		v, err := bp.lookup(rest)
		if err != nil {
			return err
		}
		emit(&Exit{Val: v})
	default:
		if bin, ok := binByName[op]; ok {
			x, y, err := bp.twoRegs(rest)
			if err != nil {
				return err
			}
			dst, err := bp.define(dstTok, x.Type)
			if err != nil {
				return err
			}
			emit(&BinOp{Dst: dst, X: x, Y: y, Op: bin})
			return nil
		}
		return fmt.Errorf("unknown instruction %q", op)
	}
	return nil
}

func (bp *bodyParser) parseCall(dstTok, rest string, emit func(Instr)) error {
	calleeText, argsText, ok := strings.Cut(rest, "(")
	if !ok {
		return fmt.Errorf("bad call")
	}
	argsText = strings.TrimSuffix(argsText, ")")
	var args []*Reg
	for _, a := range splitTopLevel(argsText, ',') {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		r, err := bp.lookup(a)
		if err != nil {
			return err
		}
		args = append(args, r)
	}
	call := &Call{Args: args}
	var ret Type = Void
	if name, ok := strings.CutPrefix(calleeText, "@"); ok {
		callee := bp.p.m.Func(name)
		if callee == nil {
			return fmt.Errorf("call to unknown @%s", name)
		}
		call.Callee = name
		ret = callee.Sig.Ret
	} else {
		fp, err := bp.lookup(calleeText)
		if err != nil {
			return err
		}
		call.CalleePtr = fp
		pe, err := pointee(fp)
		if err != nil {
			return err
		}
		ft, ok := pe.(*FuncType)
		if !ok {
			return fmt.Errorf("indirect call through %s", fp.Type)
		}
		ret = ft.Ret
	}
	if dstTok != "" {
		dst, err := bp.define(dstTok, ret)
		if err != nil {
			return err
		}
		call.Dst = dst
	}
	emit(call)
	return nil
}

func (bp *bodyParser) twoRegs(s string) (*Reg, *Reg, error) {
	return bp.twoRegsOrdered(s)
}

func (bp *bodyParser) twoRegsOrdered(s string) (*Reg, *Reg, error) {
	a, b, ok := strings.Cut(s, ", ")
	if !ok {
		return nil, nil, fmt.Errorf("expected two operands in %q", s)
	}
	x, err := bp.lookup(strings.TrimSpace(a))
	if err != nil {
		return nil, nil, err
	}
	y, err := bp.lookup(strings.TrimSpace(b))
	if err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

var binByName = func() map[string]BinKind {
	out := map[string]BinKind{}
	for k, v := range binNames {
		out[v] = k
	}
	return out
}()

var cmpByName = func() map[string]CmpKind {
	out := map[string]CmpKind{}
	for k, v := range cmpNames {
		out[v] = k
	}
	return out
}()

var atomicByName = func() map[string]AtomicOp {
	out := map[string]AtomicOp{}
	for k, v := range atomicNames {
		out[v] = k
	}
	return out
}()

// cutReplica strips a trailing ", replica %reg" from an atomic
// instruction's operand list, resolving the replica register.
func (bp *bodyParser) cutReplica(s string) (string, *Reg, error) {
	ops, repTok, ok := cutTopLevelStr(s, ", replica ")
	if !ok {
		return s, nil, nil
	}
	r, err := bp.lookup(strings.TrimSpace(repTok))
	if err != nil {
		return "", nil, err
	}
	return ops, r, nil
}

// ---------------------------------------------------------------------------
// Type expressions

func (p *parser) parseTypeString(s string) (Type, error) {
	cur := newCursor(s)
	t, err := p.parseType(cur)
	if err != nil {
		return nil, err
	}
	cur.skipSpace()
	if !cur.done() {
		return nil, fmt.Errorf("trailing type text %q", cur.rest())
	}
	return t, nil
}

// parseType parses one type expression, including pointer suffixes and
// function types (ret (params)).
func (p *parser) parseType(cur *cursor) (Type, error) {
	cur.skipSpace()
	var base Type
	switch {
	case cur.eat("union{"):
		cur.unread(len("union{"))
		elems, err := p.parseAggregateBody(cur, "union{")
		if err != nil {
			return nil, err
		}
		base = Union(elems...)
	case cur.peekIs("{"):
		fields, err := p.parseAggregateBody(cur, "{")
		if err != nil {
			return nil, err
		}
		base = Struct(fields...)
	case cur.eat("["):
		nText := cur.until(' ')
		n, err := strconv.Atoi(nText)
		if err != nil {
			return nil, fmt.Errorf("bad array length %q", nText)
		}
		if n < 0 {
			return nil, fmt.Errorf("negative array length %d", n)
		}
		if !cur.eat(" x ") {
			return nil, fmt.Errorf("bad array type at %q", cur.rest())
		}
		elem, err := p.parseType(cur)
		if err != nil {
			return nil, err
		}
		if !cur.eat("]") {
			return nil, fmt.Errorf("unterminated array at %q", cur.rest())
		}
		base = Array(elem, n)
	case cur.eat("%"):
		name := cur.ident()
		t, ok := p.types[name]
		if !ok {
			return nil, fmt.Errorf("unknown named type %%%s", name)
		}
		base = t
	default:
		word := cur.ident()
		switch word {
		case "i1":
			base = I1
		case "i8":
			base = I8
		case "i16":
			base = I16
		case "i32":
			base = I32
		case "i64":
			base = I64
		case "f32":
			base = F32
		case "f64":
			base = F64
		case "void":
			base = Void
		default:
			return nil, fmt.Errorf("unknown type %q", word)
		}
	}
	// Function type: "ret (params)". Save the position locally — this
	// function recurses, so a shared mark would be clobbered.
	pos := cur.i
	cur.skipSpace()
	if cur.eat("(") {
		var params []Type
		for {
			cur.skipSpace()
			if cur.eat(")") {
				break
			}
			pt, err := p.parseType(cur)
			if err != nil {
				return nil, err
			}
			params = append(params, pt)
			cur.skipSpace()
			cur.eat(",")
		}
		base = FuncOf(base, params...)
	} else {
		cur.i = pos
	}
	for cur.eat("*") {
		base = Ptr(base)
	}
	return base, nil
}

// ---------------------------------------------------------------------------
// Cursor and top-level splitting helpers

type cursor struct {
	s string
	i int
}

func newCursor(s string) *cursor { return &cursor{s: s} }

func (c *cursor) done() bool   { return c.i >= len(c.s) }
func (c *cursor) rest() string { return c.s[c.i:] }
func (c *cursor) unread(n int) { c.i -= n }

func (c *cursor) skipSpace() {
	for c.i < len(c.s) && c.s[c.i] == ' ' {
		c.i++
	}
}

func (c *cursor) eat(tok string) bool {
	if strings.HasPrefix(c.s[c.i:], tok) {
		c.i += len(tok)
		return true
	}
	return false
}

func (c *cursor) peekIs(tok string) bool { return strings.HasPrefix(c.s[c.i:], tok) }

func (c *cursor) ident() string {
	start := c.i
	for c.i < len(c.s) {
		ch := c.s[c.i]
		if ch == ' ' || ch == '*' || ch == ';' || ch == ',' || ch == ')' || ch == ']' || ch == '}' || ch == '(' {
			break
		}
		c.i++
	}
	return c.s[start:c.i]
}

func (c *cursor) until(stop byte) string {
	start := c.i
	for c.i < len(c.s) && c.s[c.i] != stop {
		c.i++
	}
	return c.s[start:c.i]
}

// cutTopLevel splits s at the first occurrence of close that is not
// nested inside (), [], or {}.
func cutTopLevel(s string, close byte) (before, after string, ok bool) {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			if depth == 0 && s[i] == close {
				return s[:i], s[i+1:], true
			}
			depth--
		default:
			if depth == 0 && s[i] == close {
				return s[:i], s[i+1:], true
			}
		}
	}
	return s, "", false
}

// cutTopLevelStr splits s at the first top-level occurrence of sep.
func cutTopLevelStr(s, sep string) (before, after string, ok bool) {
	depth := 0
	for i := 0; i+len(sep) <= len(s); i++ {
		switch s[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		}
		if depth == 0 && strings.HasPrefix(s[i:], sep) {
			return s[:i], s[i+len(sep):], true
		}
	}
	return s, "", false
}

// splitTopLevel splits on sep occurrences outside any nesting.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		default:
			if depth == 0 && s[i] == sep {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
