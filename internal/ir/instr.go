package ir

import "fmt"

// Reg is a virtual register. Registers are typed and hold exactly one
// scalar value (integer, float, or pointer). The IR is a conventional
// register machine rather than SSA: a register may be assigned more than
// once, but its type is fixed, which is what the paper's transformation
// rules assume (type() of a register is well defined).
type Reg struct {
	ID   int
	Name string
	Type Type
}

func (r *Reg) String() string {
	if r == nil {
		return "<nil-reg>"
	}
	if r.Name != "" {
		// The ID suffix disambiguates same-named registers (the IR is
		// not SSA and builders reuse loop-variable names), keeping the
		// textual form round-trippable through the parser.
		return fmt.Sprintf("%%%s.%d", r.Name, r.ID)
	}
	return fmt.Sprintf("%%r%d", r.ID)
}

// Elem returns the pointee type of a pointer-typed register.
func (r *Reg) Elem() Type {
	pt, ok := r.Type.(*PointerType)
	if !ok {
		panic(fmt.Sprintf("ir: Elem of non-pointer register %s: %s", r, r.Type))
	}
	return pt.Elem
}

// BinKind enumerates binary arithmetic and bitwise operations.
type BinKind uint8

// Binary operation kinds. Integer operations interpret registers as signed
// two's-complement unless the U-prefixed variant is used.
const (
	OpAdd BinKind = iota + 1
	OpSub
	OpMul
	OpSDiv
	OpUDiv
	OpSRem
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr // logical shift right
	OpAShr // arithmetic shift right
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
)

var binNames = map[BinKind]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpUDiv: "udiv",
	OpSRem: "srem", OpURem: "urem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
}

func (k BinKind) String() string { return binNames[k] }

// IsFloat reports whether the operation is a floating point operation.
func (k BinKind) IsFloat() bool { return k >= OpFAdd }

// CmpKind enumerates comparison predicates.
type CmpKind uint8

// Comparison kinds. Pointer comparisons use the unsigned integer forms.
const (
	CmpEQ CmpKind = iota + 1
	CmpNE
	CmpSLT
	CmpSLE
	CmpSGT
	CmpSGE
	CmpULT
	CmpULE
	CmpUGT
	CmpUGE
	CmpFEQ
	CmpFNE
	CmpFLT
	CmpFLE
	CmpFGT
	CmpFGE
)

var cmpNames = map[CmpKind]string{
	CmpEQ: "eq", CmpNE: "ne", CmpSLT: "slt", CmpSLE: "sle", CmpSGT: "sgt",
	CmpSGE: "sge", CmpULT: "ult", CmpULE: "ule", CmpUGT: "ugt", CmpUGE: "uge",
	CmpFEQ: "feq", CmpFNE: "fne", CmpFLT: "flt", CmpFLE: "fle", CmpFGT: "fgt",
	CmpFGE: "fge",
}

func (k CmpKind) String() string { return cmpNames[k] }

// AllocKind identifies the memory segment an allocation targets.
type AllocKind uint8

// Allocation kinds per the paper: heap (malloc), stack (alloca), and global
// variable memory (declared at module level, so not an instruction kind).
const (
	AllocHeap AllocKind = iota + 1
	AllocStack
)

func (k AllocKind) String() string {
	if k == AllocHeap {
		return "malloc"
	}
	return "alloca"
}

// Instr is an IR instruction.
type Instr interface {
	isInstr()
	String() string
}

// Def returns the register an instruction defines, or nil.
func Def(in Instr) *Reg {
	switch i := in.(type) {
	case *ConstInt:
		return i.Dst
	case *ConstFloat:
		return i.Dst
	case *ConstNull:
		return i.Dst
	case *Move:
		return i.Dst
	case *BinOp:
		return i.Dst
	case *Cmp:
		return i.Dst
	case *Convert:
		return i.Dst
	case *Alloc:
		return i.Dst
	case *Load:
		return i.Dst
	case *FieldAddr:
		return i.Dst
	case *IndexAddr:
		return i.Dst
	case *Bitcast:
		return i.Dst
	case *PtrToInt:
		return i.Dst
	case *IntToPtr:
		return i.Dst
	case *FuncAddr:
		return i.Dst
	case *GlobalAddr:
		return i.Dst
	case *Call:
		return i.Dst
	case *RandInt:
		return i.Dst
	case *HeapBufSize:
		return i.Dst
	case *AtomicRMW:
		return i.Dst
	case *AtomicCAS:
		return i.Dst
	}
	return nil
}

// ---------------------------------------------------------------------------
// Constants and moves

// ConstInt loads the integer immediate Val into Dst.
type ConstInt struct {
	Dst *Reg
	Val int64
}

// ConstFloat loads the float immediate Val into Dst.
type ConstFloat struct {
	Dst *Reg
	Val float64
}

// ConstNull loads a null pointer into the pointer register Dst.
type ConstNull struct{ Dst *Reg }

// Move copies Src into Dst. Both registers must have compatible scalar
// types. Transforms use moves to re-bind replica registers.
type Move struct{ Dst, Src *Reg }

// ---------------------------------------------------------------------------
// Arithmetic

// BinOp computes Dst = X op Y.
type BinOp struct {
	Dst, X, Y *Reg
	Op        BinKind
}

// Cmp computes the i1 predicate Dst = X op Y.
type Cmp struct {
	Dst  *Reg
	Op   CmpKind
	X, Y *Reg
}

// Convert performs a numeric conversion between integer widths, between
// floats, or between int and float, based on the register types.
type Convert struct{ Dst, Src *Reg }

// ---------------------------------------------------------------------------
// Memory

// Alloc allocates memory for Count elements (Count nil means one) of type
// Elem on the heap or stack and stores the address in Dst. Dst must have
// type Elem*. Site is a stable identifier of the allocation site used by
// the fault-injection framework and by DSA.
type Alloc struct {
	Dst   *Reg
	Kind  AllocKind
	Elem  Type
	Count *Reg // nil = scalar allocation of one Elem
	Site  int
}

// Free deallocates the heap buffer pointed to by Ptr.
type Free struct{ Ptr *Reg }

// Load loads a scalar of Dst's type from memory at Ptr.
type Load struct{ Dst, Ptr *Reg }

// Store stores the scalar Val to memory at Ptr.
type Store struct{ Ptr, Val *Reg }

// AtomicOp enumerates atomic read-modify-write combining operations.
type AtomicOp uint8

// Atomic combining kinds. Xchg ignores the old value and stores Val
// unconditionally.
const (
	AtomicAdd AtomicOp = iota + 1
	AtomicAnd
	AtomicOr
	AtomicXor
	AtomicXchg
)

var atomicNames = map[AtomicOp]string{
	AtomicAdd: "add", AtomicAnd: "and", AtomicOr: "or", AtomicXor: "xor",
	AtomicXchg: "xchg",
}

func (k AtomicOp) String() string { return atomicNames[k] }

// AtomicRMW atomically loads the integer at Ptr, combines it with Val
// per Op, stores the result back, and sets Dst to the value read. The
// load-modify-store is one indivisible step: the interleaving scheduler
// never yields inside it, only before it. RPtr, when non-nil, is a
// replica slot bound by the DPMR transformation: the same indivisible
// step performs the identical update on *RPtr and traps with a DPMR
// detection if the two loaded values differ — fusing the check into the
// atomic keeps the instrumentation itself immune to interleaving.
type AtomicRMW struct {
	Dst, Ptr, Val *Reg
	Op            AtomicOp
	RPtr          *Reg // nil until the transform binds replica memory
}

// AtomicCAS atomically loads the integer at Ptr, compares it with Old,
// stores New when they are equal, and sets Dst to the value read either
// way (callers detect success by comparing Dst with Old). RPtr is the
// DPMR replica binding, as in AtomicRMW.
type AtomicCAS struct {
	Dst, Ptr, Old, New *Reg
	RPtr               *Reg
}

// Fence is a scheduler-visible memory fence. Memory state is unchanged
// (the interpreter is sequentially consistent already); under the
// interleaving scheduler it is a pure yield point, letting workloads
// mark back-off spins without touching shared memory.
type Fence struct{}

// FieldAddr computes Dst = &(Ptr->field). Ptr must point to a struct (or a
// union, in which case Field selects the union member and the offset is
// zero).
type FieldAddr struct {
	Dst, Ptr *Reg
	Field    int
}

// IndexAddr computes Dst = &Ptr[Index]. Ptr must point to an array type or
// be treated as a pointer to a sequence of its pointee type (C-style
// pointer indexing).
type IndexAddr struct{ Dst, Ptr, Index *Reg }

// Bitcast reinterprets the pointer Src as Dst's pointer type
// (pointer-to-pointer cast).
type Bitcast struct{ Dst, Src *Reg }

// PtrToInt casts the pointer Src to an integer register Dst.
type PtrToInt struct{ Dst, Src *Reg }

// IntToPtr casts the integer Src to a pointer register Dst. Forbidden by
// the SDS and MDS restriction verifiers; permitted under DSA-refined DPMR
// (Chapter 5).
type IntToPtr struct{ Dst, Src *Reg }

// ---------------------------------------------------------------------------
// Addresses of functions and globals

// FuncAddr loads the address of function Fn into Dst.
type FuncAddr struct {
	Dst *Reg
	Fn  string
}

// GlobalAddr loads the address of global G into Dst.
type GlobalAddr struct {
	Dst *Reg
	G   string
}

// ---------------------------------------------------------------------------
// Calls and control flow

// Call invokes Callee (a direct call if Callee != "", otherwise an indirect
// call through CalleePtr) with Args. Dst receives the return value and is
// nil for void calls.
type Call struct {
	Dst       *Reg
	Callee    string
	CalleePtr *Reg
	Args      []*Reg
}

// Ret returns from the current function with optional value Val.
type Ret struct{ Val *Reg }

// Br branches unconditionally to Target.
type Br struct{ Target *Block }

// CondBr branches to True if Cond is nonzero, else to False.
type CondBr struct {
	Cond        *Reg
	True, False *Block
}

// ---------------------------------------------------------------------------
// DPMR runtime and instrumentation intrinsics

// Assert traps with a DPMR detection if X != Y (bitwise on the scalar
// values). It is the runtime realization of the assert(x == *pr) checks the
// transformation inserts (Table 2.6); using one instruction keeps the
// instrumented instruction stream compact while the interpreter charges it
// the cost of a compare and branch.
type Assert struct{ X, Y *Reg }

// FaultPoint marks the location of injected faulty code. Executing it
// records the cycle of first execution ("successful fault injection",
// §3.6) and has no other effect.
type FaultPoint struct{ Site int }

// RandInt sets Dst to a uniform random integer in [Lo, Hi] drawn from the
// VM's deterministic PRNG. Used by the rearrange-heap diversity
// transformation (Table 2.8).
type RandInt struct {
	Dst    *Reg
	Lo, Hi int64
}

// HeapBufSize sets Dst to the payload size in bytes of the heap buffer
// pointed to by Ptr (the paper's heapBufSize(), Table 2.8).
type HeapBufSize struct{ Dst, Ptr *Reg }

// Output appends the Val register's bytes (formatted per Mode) to the
// program's output stream. Workloads use it to produce checkable output.
type Output struct {
	Val  *Reg
	Mode OutputMode
}

// OutputMode selects the formatting of an Output instruction.
type OutputMode uint8

// Output formatting modes.
const (
	OutInt   OutputMode = iota + 1 // decimal integer + '\n'
	OutFloat                       // %g float + '\n'
	OutByte                        // single raw byte
)

// Exit terminates the program immediately with the code held in Val (or 0
// when Val is nil, distinct from falling off main). A nonzero exit code is
// treated as application-level error signaling (natural detection, §3.6).
type Exit struct{ Val *Reg }

func (*ConstInt) isInstr()    {}
func (*ConstFloat) isInstr()  {}
func (*ConstNull) isInstr()   {}
func (*Move) isInstr()        {}
func (*BinOp) isInstr()       {}
func (*Cmp) isInstr()         {}
func (*Convert) isInstr()     {}
func (*Alloc) isInstr()       {}
func (*Free) isInstr()        {}
func (*Load) isInstr()        {}
func (*Store) isInstr()       {}
func (*FieldAddr) isInstr()   {}
func (*IndexAddr) isInstr()   {}
func (*Bitcast) isInstr()     {}
func (*PtrToInt) isInstr()    {}
func (*IntToPtr) isInstr()    {}
func (*FuncAddr) isInstr()    {}
func (*GlobalAddr) isInstr()  {}
func (*Call) isInstr()        {}
func (*Ret) isInstr()         {}
func (*Br) isInstr()          {}
func (*CondBr) isInstr()      {}
func (*Assert) isInstr()      {}
func (*FaultPoint) isInstr()  {}
func (*RandInt) isInstr()     {}
func (*HeapBufSize) isInstr() {}
func (*Output) isInstr()      {}
func (*Exit) isInstr()        {}
func (*AtomicRMW) isInstr()   {}
func (*AtomicCAS) isInstr()   {}
func (*Fence) isInstr()       {}

func (i *ConstInt) String() string {
	return fmt.Sprintf("%s = const %s %d", i.Dst, i.Dst.Type, i.Val)
}
func (i *ConstFloat) String() string {
	return fmt.Sprintf("%s = const %s %g", i.Dst, i.Dst.Type, i.Val)
}
func (i *ConstNull) String() string { return fmt.Sprintf("%s = null %s", i.Dst, i.Dst.Type) }
func (i *Move) String() string      { return fmt.Sprintf("%s = move %s", i.Dst, i.Src) }
func (i *BinOp) String() string {
	return fmt.Sprintf("%s = %s %s, %s", i.Dst, i.Op, i.X, i.Y)
}
func (i *Cmp) String() string {
	return fmt.Sprintf("%s = cmp %s %s, %s", i.Dst, i.Op, i.X, i.Y)
}
func (i *Convert) String() string {
	return fmt.Sprintf("%s = convert %s to %s", i.Dst, i.Src, i.Dst.Type)
}
func (i *Alloc) String() string {
	if i.Count != nil {
		return fmt.Sprintf("%s = %s %s, count %s ; site %d", i.Dst, i.Kind, i.Elem, i.Count, i.Site)
	}
	return fmt.Sprintf("%s = %s %s ; site %d", i.Dst, i.Kind, i.Elem, i.Site)
}
func (i *Free) String() string { return fmt.Sprintf("free %s", i.Ptr) }
func (i *Load) String() string {
	return fmt.Sprintf("%s = load %s, %s", i.Dst, i.Dst.Type, i.Ptr)
}
func (i *Store) String() string { return fmt.Sprintf("store %s, %s", i.Val, i.Ptr) }
func (i *FieldAddr) String() string {
	return fmt.Sprintf("%s = fieldaddr %s, %d", i.Dst, i.Ptr, i.Field)
}
func (i *IndexAddr) String() string {
	return fmt.Sprintf("%s = indexaddr %s, %s", i.Dst, i.Ptr, i.Index)
}
func (i *Bitcast) String() string {
	return fmt.Sprintf("%s = bitcast %s to %s", i.Dst, i.Src, i.Dst.Type)
}
func (i *PtrToInt) String() string {
	return fmt.Sprintf("%s = ptrtoint %s", i.Dst, i.Src)
}
func (i *IntToPtr) String() string {
	return fmt.Sprintf("%s = inttoptr %s to %s", i.Dst, i.Src, i.Dst.Type)
}
func (i *FuncAddr) String() string   { return fmt.Sprintf("%s = funcaddr @%s", i.Dst, i.Fn) }
func (i *GlobalAddr) String() string { return fmt.Sprintf("%s = globaladdr @%s", i.Dst, i.G) }
func (i *Call) String() string {
	args := ""
	for j, a := range i.Args {
		if j > 0 {
			args += ", "
		}
		args += a.String()
	}
	callee := "@" + i.Callee
	if i.Callee == "" {
		callee = i.CalleePtr.String()
	}
	if i.Dst != nil {
		return fmt.Sprintf("%s = call %s(%s)", i.Dst, callee, args)
	}
	return fmt.Sprintf("call %s(%s)", callee, args)
}
func (i *Ret) String() string {
	if i.Val != nil {
		return fmt.Sprintf("ret %s", i.Val)
	}
	return "ret"
}
func (i *Br) String() string { return fmt.Sprintf("br .%s", i.Target.Name) }
func (i *CondBr) String() string {
	return fmt.Sprintf("condbr %s, .%s, .%s", i.Cond, i.True.Name, i.False.Name)
}
func (i *Assert) String() string     { return fmt.Sprintf("assert %s == %s", i.X, i.Y) }
func (i *FaultPoint) String() string { return fmt.Sprintf("faultpoint %d", i.Site) }
func (i *RandInt) String() string {
	return fmt.Sprintf("%s = randint %d, %d", i.Dst, i.Lo, i.Hi)
}
func (i *HeapBufSize) String() string {
	return fmt.Sprintf("%s = heapbufsize %s", i.Dst, i.Ptr)
}
func (i *Output) String() string {
	mode := map[OutputMode]string{OutInt: "int", OutFloat: "float", OutByte: "byte"}[i.Mode]
	return fmt.Sprintf("output %s %s", mode, i.Val)
}
func (i *Exit) String() string {
	if i.Val == nil {
		return "exit"
	}
	return fmt.Sprintf("exit %s", i.Val)
}

func (i *AtomicRMW) String() string {
	if i.RPtr != nil {
		return fmt.Sprintf("%s = atomicrmw %s %s, %s, replica %s", i.Dst, i.Op, i.Ptr, i.Val, i.RPtr)
	}
	return fmt.Sprintf("%s = atomicrmw %s %s, %s", i.Dst, i.Op, i.Ptr, i.Val)
}
func (i *AtomicCAS) String() string {
	if i.RPtr != nil {
		return fmt.Sprintf("%s = atomiccas %s, %s, %s, replica %s", i.Dst, i.Ptr, i.Old, i.New, i.RPtr)
	}
	return fmt.Sprintf("%s = atomiccas %s, %s, %s", i.Dst, i.Ptr, i.Old, i.New)
}
func (i *Fence) String() string { return "fence" }

// IsTerminator reports whether in ends a basic block.
func IsTerminator(in Instr) bool {
	switch in.(type) {
	case *Ret, *Br, *CondBr, *Exit:
		return true
	}
	return false
}
