package ir

import (
	"strings"
	"testing"
)

// buildSumModule builds a tiny module:
//
//	func sum(n i64) i64 { s := 0; for i in [0,n) { s += i }; return s }
//	func main() i64 { return sum(10) }
func buildSumModule(t *testing.T) *Module {
	t.Helper()
	m := NewModule("sumtest")
	b := NewBuilder(m)

	f := b.Function("sum", I64, []string{"n"}, I64)
	n := f.Params[0]
	s := b.Reg("s", I64)
	zero := b.I64(0)
	b.MoveTo(s, zero)
	b.ForRange("i", b.I64(0), n, func(i *Reg) {
		b.BinTo(s, OpAdd, s, i)
	})
	b.Ret(s)

	b.Function("main", I64, nil)
	r := b.Call("sum", b.I64(10))
	b.Ret(r)

	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestBuilderProducesVerifiableModule(t *testing.T) {
	m := buildSumModule(t)
	if m.Func("sum") == nil || m.Func("main") == nil {
		t.Fatal("functions not registered")
	}
	st := m.CollectStats()
	if st.Funcs != 2 {
		t.Errorf("funcs = %d, want 2", st.Funcs)
	}
	if st.Blocks < 5 {
		t.Errorf("blocks = %d, want >= 5 (loop structure)", st.Blocks)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	b := NewBuilder(m)
	b.Function("main", I64, nil)
	b.I64(1) // no terminator
	err := Verify(m)
	if err == nil {
		t.Fatal("want verify error for missing terminator")
	}
	if !strings.Contains(err.Error(), "terminator") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	m := NewModule("bad")
	b := NewBuilder(m)
	b.Function("main", I64, nil)
	v := b.I64(1)
	blk := b.B
	blk.Append(&Ret{Val: v})
	blk.Append(&Ret{Val: v})
	if err := Verify(m); err == nil {
		t.Fatal("want verify error for terminator in middle of block")
	}
}

func TestVerifyCatchesCallArityMismatch(t *testing.T) {
	m := NewModule("bad")
	b := NewBuilder(m)
	b.Function("callee", I64, nil, I64, I64)
	b.Ret(b.I64(0))
	b.Function("main", I64, nil)
	one := b.I64(1)
	dst := b.Reg("r", I64)
	b.B.Append(&Call{Dst: dst, Callee: "callee", Args: []*Reg{one}})
	b.Ret(dst)
	if err := Verify(m); err == nil {
		t.Fatal("want verify error for arity mismatch")
	}
}

func TestVerifyCatchesReturnTypeMismatch(t *testing.T) {
	m := NewModule("bad")
	b := NewBuilder(m)
	b.Function("main", I64, nil)
	v := b.I32(1)
	b.B.Append(&Ret{Val: v})
	if err := Verify(m); err == nil {
		t.Fatal("want verify error for return type mismatch")
	}
}

func TestVerifyCatchesMissingMain(t *testing.T) {
	m := NewModule("nomain")
	b := NewBuilder(m)
	b.Function("f", Void, nil)
	b.Ret(nil)
	if err := Verify(m); err == nil {
		t.Fatal("want verify error for missing main")
	}
}

func TestVerifyExternalWithBody(t *testing.T) {
	m := NewModule("bad")
	b := NewBuilder(m)
	b.Function("main", I64, nil)
	b.Ret(b.I64(0))
	ext := m.AddExtern("memcpy", FuncOf(Void, Ptr(I8), Ptr(I8), I64))
	ext.Blocks = append(ext.Blocks, &Block{Name: "oops"})
	if err := Verify(m); err == nil {
		t.Fatal("want verify error for external function with body")
	}
}

func TestHeapAllocSitesDeterministic(t *testing.T) {
	m := NewModule("sites")
	b := NewBuilder(m)
	b.Function("main", I64, nil)
	p := b.Malloc(I64)
	q := b.MallocN(I32, b.I64(8))
	b.Free(p)
	b.Free(q)
	b.Ret(b.I64(0))
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	sites := m.HeapAllocSites()
	if len(sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(sites))
	}
	if sites[0].Alloc.Site == sites[1].Alloc.Site {
		t.Error("site ids must be distinct")
	}
	if sites[0].Alloc.Count != nil {
		t.Error("first site is scalar")
	}
	if sites[1].Alloc.Count == nil {
		t.Error("second site is an array site")
	}
}

func TestRenameFunc(t *testing.T) {
	m := buildSumModule(t)
	f := m.Func("main")
	m.RenameFunc(f, "mainAug")
	if m.Func("main") != nil {
		t.Error("old name still resolves")
	}
	if m.Func("mainAug") != f {
		t.Error("new name does not resolve")
	}
}

func TestModulePrinting(t *testing.T) {
	m := buildSumModule(t)
	s := m.String()
	for _, want := range []string{"func @sum", "func @main", ".entry:", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed module missing %q", want)
		}
	}
}

func TestBuilderIfBothArms(t *testing.T) {
	m := NewModule("ifm")
	b := NewBuilder(m)
	b.Function("main", I64, nil)
	r := b.Reg("r", I64)
	c := b.Cmp(CmpSLT, b.I64(1), b.I64(2))
	b.If(c, func() {
		b.MoveTo(r, b.I64(10))
	}, func() {
		b.MoveTo(r, b.I64(20))
	})
	b.Ret(r)
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyCatchesEmptyRandIntRange(t *testing.T) {
	m := NewModule("bad")
	b := NewBuilder(m)
	b.Function("main", I64, nil)
	dst := b.Reg("r", I64)
	b.B.Append(&RandInt{Dst: dst, Lo: 10, Hi: 9})
	b.Ret(dst)
	err := Verify(m)
	if err == nil {
		t.Fatal("want verify error for empty randint range")
	}
	if !strings.Contains(err.Error(), "randint range") {
		t.Errorf("unexpected error: %v", err)
	}
	// A single-value range remains legal.
	m2 := NewModule("ok")
	b2 := NewBuilder(m2)
	b2.Function("main", I64, nil)
	b2.Ret(b2.RandInt(7, 7))
	if err := Verify(m2); err != nil {
		t.Fatalf("verify of randint 7,7: %v", err)
	}
}
