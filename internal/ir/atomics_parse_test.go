package ir

import (
	"strings"
	"testing"
)

// buildAtomicModule covers every textual atomic form: all RMW ops, CAS,
// fence, and the transform's replica clause on both instruction kinds.
func buildAtomicModule() *Module {
	m := NewModule("atoms")
	b := NewBuilder(m)
	b.Function("main", I64, nil)
	p := b.Malloc(I64)
	r := b.Malloc(I64)
	b.Store(p, b.I64(1))
	b.Store(r, b.I64(1))
	b.AtomicRMW(AtomicAdd, p, b.I64(2))
	b.AtomicRMW(AtomicAnd, p, b.I64(3))
	b.AtomicRMW(AtomicOr, p, b.I64(4))
	b.AtomicRMW(AtomicXor, p, b.I64(5))
	old := b.AtomicRMW(AtomicXchg, p, b.I64(6))
	b.Fence()
	cur := b.AtomicCAS(p, old, b.I64(7))
	b.Ret(cur)

	// Bind the last RMW and the CAS to the replica cell, as the DPMR
	// transform would.
	blk := m.Func("main").Blocks[0]
	for _, in := range blk.Instrs {
		switch a := in.(type) {
		case *AtomicRMW:
			if a.Op == AtomicXchg {
				a.RPtr = r
			}
		case *AtomicCAS:
			a.RPtr = r
		}
	}
	return m
}

func TestAtomicsParsePrintRoundTrip(t *testing.T) {
	m := buildAtomicModule()
	text1 := m.String()
	for _, frag := range []string{
		"atomicrmw add", "atomicrmw and", "atomicrmw or", "atomicrmw xor",
		"atomicrmw xchg", "atomiccas", "fence", ", replica %",
	} {
		if !strings.Contains(text1, frag) {
			t.Errorf("printed module lacks %q:\n%s", frag, text1)
		}
	}
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Verify(m2); err != nil {
		t.Fatalf("reparsed module invalid: %v", err)
	}
	text2 := m2.String()
	m3, err := Parse(text2)
	if err != nil {
		t.Fatalf("second parse: %v", err)
	}
	if text3 := m3.String(); text2 != text3 {
		t.Errorf("atomics did not reach a print/parse fixpoint:\n%s\n---\n%s", text2, text3)
	}

	// The replica bindings survive the round trip on both kinds.
	var rmwBound, casBound bool
	for _, blk := range m2.Func("main").Blocks {
		for _, in := range blk.Instrs {
			switch a := in.(type) {
			case *AtomicRMW:
				if a.Op == AtomicXchg && a.RPtr != nil {
					rmwBound = true
				}
			case *AtomicCAS:
				if a.RPtr != nil {
					casBound = true
				}
			}
		}
	}
	if !rmwBound || !casBound {
		t.Errorf("replica clause lost in round trip (rmw %v, cas %v)", rmwBound, casBound)
	}
}

func TestAtomicsCloneAndVerify(t *testing.T) {
	m := buildAtomicModule()
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if err := Verify(c); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if m.String() != c.String() {
		t.Error("clone prints differently")
	}
}

func TestVerifyRejectsNonIntegerAtomicSlot(t *testing.T) {
	// Atomics are integer-memory only; a float cell must be rejected by
	// the verifier even when hand-assembled around the builder's checks.
	m := NewModule("badatom")
	b := NewBuilder(m)
	b.Function("main", I64, nil)
	p := b.Malloc(F64)
	blk := m.Func("main").Blocks[0]
	dst := &Reg{Name: "bad", Type: F64}
	v := b.I64(1)
	blk.Instrs = append(blk.Instrs, &AtomicRMW{Dst: dst, Ptr: p, Val: v, Op: AtomicAdd})
	b.Ret(b.I64(0))
	if err := Verify(m); err == nil {
		t.Fatal("verifier accepted an atomic on float memory")
	}
}
