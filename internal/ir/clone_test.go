package ir

import (
	"strings"
	"testing"
)

// buildCloneFixture builds a module exercising every instruction kind the
// workloads use: globals with refs, control flow, calls, allocs.
func buildCloneFixture() *Module {
	m := NewModule("clonefix")
	g := m.AddGlobal("counter", I64)
	g.Init = []byte{1, 0, 0, 0, 0, 0, 0, 0}
	b := NewBuilder(m)

	b.Function("helper", I64, []string{"x"}, I64)
	x := b.F.Params[0]
	b.Ret(b.Bin(OpAdd, x, b.I64(1)))

	b.Function("main", I64, nil)
	n := b.I64(4)
	arr := b.MallocN(I64, n)
	b.ForRange("i", b.I64(0), n, func(i *Reg) {
		b.Store(b.Index(arr, i), b.Call("helper", i))
	})
	s := b.Reg("s", I64)
	b.MoveTo(s, b.I64(0))
	b.ForRange("j", b.I64(0), n, func(j *Reg) {
		b.BinTo(s, OpAdd, s, b.Load(b.Index(arr, j)))
	})
	gp := b.GlobalAddr("counter")
	b.BinTo(s, OpAdd, s, b.Load(gp))
	b.Free(arr)
	b.Ret(s)
	return m
}

func TestCloneIsDeepAndTextIdentical(t *testing.T) {
	m := buildCloneFixture()
	before := m.String()
	c := m.Clone()
	if got := c.String(); got != before {
		t.Fatalf("clone text differs:\n--- original ---\n%s\n--- clone ---\n%s", before, got)
	}
	if err := Verify(c); err != nil {
		t.Fatalf("clone fails verification: %v", err)
	}
	// Mutating the clone must not perturb the original.
	cm := c.Func("main")
	cm.Blocks[0].Instrs = append([]Instr{&FaultPoint{Site: 99}}, cm.Blocks[0].Instrs...)
	c.Global("counter").Init[0] = 7
	if got := m.String(); got != before {
		t.Error("mutating the clone changed the original module")
	}
	if m.Global("counter").Init[0] != 1 {
		t.Error("clone shares the global init image with the original")
	}
	if !strings.Contains(c.String(), "faultpoint 99") {
		t.Error("clone mutation did not land in the clone")
	}
}

func TestCloneSharesNoInstructions(t *testing.T) {
	m := buildCloneFixture()
	c := m.Clone()
	orig := make(map[Instr]bool)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				orig[in] = true
			}
		}
	}
	for _, f := range c.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if orig[in] {
					t.Fatalf("clone shares instruction %s with original", in)
				}
			}
		}
	}
}

func TestClonePreservesRegAndBlockIdentity(t *testing.T) {
	m := buildCloneFixture()
	c := m.Clone()
	for fi, f := range m.Funcs {
		cf := c.Funcs[fi]
		if cf.NumRegs() != f.NumRegs() {
			t.Errorf("%s: clone has %d regs, want %d", f.Name, cf.NumRegs(), f.NumRegs())
		}
		if len(cf.Blocks) != len(f.Blocks) {
			t.Fatalf("%s: clone has %d blocks, want %d", f.Name, len(cf.Blocks), len(f.Blocks))
		}
		for bi, b := range f.Blocks {
			if cf.Blocks[bi].Name != b.Name || cf.Blocks[bi].Index != b.Index {
				t.Errorf("%s: block %d mismatch: %s/%d vs %s/%d",
					f.Name, bi, cf.Blocks[bi].Name, cf.Blocks[bi].Index, b.Name, b.Index)
			}
		}
	}
	// NewBlock on the clone must continue the original numbering without
	// colliding with existing names.
	cf := c.Func("main")
	nb := cf.NewBlock("entry")
	if nb.Name == "entry" {
		t.Error("clone lost block-name uniqueness state")
	}
}

func TestFrozenModulePanicsOnMutators(t *testing.T) {
	m := buildCloneFixture()
	m.Freeze()
	if !m.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on frozen module did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("AddFunc", func() { m.AddFunc("later", FuncOf(Void)) })
	expectPanic("AddGlobal", func() { m.AddGlobal("later", I64) })
	expectPanic("RenameFunc", func() { m.RenameFunc(m.Func("helper"), "helper2") })
	// The clone of a frozen module is mutable again.
	c := m.Clone()
	if c.Frozen() {
		t.Error("clone inherited frozen state")
	}
	c.AddGlobal("later", I64)
}
