// Package ir defines the typed intermediate representation that DPMR
// transforms operate on. It mirrors the abstract machine assumed by the
// paper (Chapter 2): primitive integer and floating point types of
// predefined sizes, a void type, and five derived types (pointers,
// structures, unions, arrays, and functions). Virtual registers hold only
// scalars (integers, floats, pointers); programs interact with memory
// exclusively through load and store instructions; memory is allocated on
// the heap (malloc), the stack (alloca), or in global variables.
package ir

import (
	"fmt"
	"strings"
)

// PtrBytes is the size of every pointer type. The paper assumes all pointer
// types have the same predefined size.
const PtrBytes = 8

// Kind discriminates the type categories of the IR type system.
type Kind uint8

// Type kinds. They start at one so the zero Kind is invalid.
const (
	KindInt Kind = iota + 1
	KindFloat
	KindVoid
	KindPointer
	KindStruct
	KindUnion
	KindArray
	KindFunc
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindVoid:
		return "void"
	case KindPointer:
		return "pointer"
	case KindStruct:
		return "struct"
	case KindUnion:
		return "union"
	case KindArray:
		return "array"
	case KindFunc:
		return "func"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Type is an IR type. Types are immutable after construction, with the one
// exception of named struct and union bodies, which may be set once after
// creation to permit recursive types (the same mechanism LLVM uses for
// identified structs, and the mechanism the paper's placeholder resolution
// maps onto).
type Type interface {
	Kind() Kind
	// Size returns the number of bytes reserved when the type is allocated,
	// including alignment padding (the paper's sizeof()).
	Size() int
	// Align returns the alignment requirement in bytes.
	Align() int
	// Key returns a canonical string for structural identity. Named structs
	// and unions are nominal: their key is derived from the name only, which
	// makes recursive types finite.
	Key() string
	String() string
}

// IsScalar reports whether t may be held in a virtual register: integers,
// floats, and pointers.
func IsScalar(t Type) bool {
	if t == nil {
		return false
	}
	switch t.Kind() {
	case KindInt, KindFloat, KindPointer:
		return true
	}
	return false
}

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool {
	return t != nil && t.Kind() == KindPointer
}

// TypesEqual reports structural equality (nominal for named aggregates).
func TypesEqual(a, b Type) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Key() == b.Key()
}

// ---------------------------------------------------------------------------
// Primitive types

// IntType is an integer of Bits ∈ {1, 8, 16, 32, 64}. Bits=1 is the boolean
// produced by comparisons; it occupies one byte in memory.
type IntType struct{ Bits int }

// Predefined integer types.
var (
	I1  = &IntType{Bits: 1}
	I8  = &IntType{Bits: 8}
	I16 = &IntType{Bits: 16}
	I32 = &IntType{Bits: 32}
	I64 = &IntType{Bits: 64}
)

func (t *IntType) Kind() Kind { return KindInt }
func (t *IntType) Size() int {
	if t.Bits == 1 {
		return 1
	}
	return t.Bits / 8
}
func (t *IntType) Align() int     { return t.Size() }
func (t *IntType) Key() string    { return fmt.Sprintf("i%d", t.Bits) }
func (t *IntType) String() string { return t.Key() }

// FloatType is a floating point number of Bits ∈ {32, 64}.
type FloatType struct{ Bits int }

// Predefined floating point types.
var (
	F32 = &FloatType{Bits: 32}
	F64 = &FloatType{Bits: 64}
)

func (t *FloatType) Kind() Kind     { return KindFloat }
func (t *FloatType) Size() int      { return t.Bits / 8 }
func (t *FloatType) Align() int     { return t.Bits / 8 }
func (t *FloatType) Key() string    { return fmt.Sprintf("f%d", t.Bits) }
func (t *FloatType) String() string { return t.Key() }

// VoidType is the void type. It has no size and may only appear as a
// function return type or as the pointee of a void pointer.
type VoidType struct{}

// Void is the singleton void type.
var Void = &VoidType{}

func (t *VoidType) Kind() Kind     { return KindVoid }
func (t *VoidType) Size() int      { return 0 }
func (t *VoidType) Align() int     { return 1 }
func (t *VoidType) Key() string    { return "void" }
func (t *VoidType) String() string { return "void" }

// ---------------------------------------------------------------------------
// Derived types

// PointerType is a pointer to Elem. All pointers are PtrBytes wide.
type PointerType struct{ Elem Type }

// Ptr returns a pointer type to elem.
func Ptr(elem Type) *PointerType { return &PointerType{Elem: elem} }

// VoidPtr returns a fresh void* type.
func VoidPtr() *PointerType { return Ptr(Void) }

func (t *PointerType) Kind() Kind     { return KindPointer }
func (t *PointerType) Size() int      { return PtrBytes }
func (t *PointerType) Align() int     { return PtrBytes }
func (t *PointerType) Key() string    { return t.Elem.Key() + "*" }
func (t *PointerType) String() string { return t.Elem.String() + "*" }

// ArrayType is a fixed-length array. Per the paper, square brackets do not
// imply a pointer: struct{i32;i32;i32} is equivalent to [3 x i32].
type ArrayType struct {
	Elem Type
	Len  int
}

// Array returns the type [n x elem].
func Array(elem Type, n int) *ArrayType { return &ArrayType{Elem: elem, Len: n} }

func (t *ArrayType) Kind() Kind { return KindArray }
func (t *ArrayType) Size() int {
	return t.Len * pad(t.Elem.Size(), t.Elem.Align())
}
func (t *ArrayType) Align() int     { return t.Elem.Align() }
func (t *ArrayType) Key() string    { return fmt.Sprintf("[%dx%s]", t.Len, t.Elem.Key()) }
func (t *ArrayType) String() string { return fmt.Sprintf("[%d x %s]", t.Len, t.Elem.String()) }

// StructType is a structure. A StructType with a non-empty Name is an
// identified (nominal) struct whose body may be set once via SetBody; this
// is what allows recursive types such as linked lists. Anonymous structs
// are purely structural.
type StructType struct {
	Name   string
	fields []Type
	set    bool
}

// Struct returns an anonymous struct with the given field types.
func Struct(fields ...Type) *StructType {
	return &StructType{fields: fields, set: true}
}

// NamedStruct creates an identified struct with no body. The body must be
// provided later with SetBody before Size or field access is used.
func NamedStruct(name string) *StructType {
	if name == "" {
		panic("ir: NamedStruct requires a non-empty name")
	}
	return &StructType{Name: name}
}

// SetBody sets the field list of an identified struct. It panics if the
// body was already set (types are immutable once complete).
func (t *StructType) SetBody(fields ...Type) *StructType {
	if t.set {
		panic(fmt.Sprintf("ir: struct %s body already set", t.Name))
	}
	t.fields = fields
	t.set = true
	return t
}

// Opaque reports whether the struct's body has not been set.
func (t *StructType) Opaque() bool { return !t.set }

// NumFields returns the number of fields.
func (t *StructType) NumFields() int { return len(t.fields) }

// Field returns the type of field i.
func (t *StructType) Field(i int) Type { return t.fields[i] }

// Fields returns a copy of the field list.
func (t *StructType) Fields() []Type {
	out := make([]Type, len(t.fields))
	copy(out, t.fields)
	return out
}

// Offset returns the byte offset of field i, accounting for alignment
// padding of all preceding fields.
func (t *StructType) Offset(i int) int {
	off := 0
	for j := 0; j < i; j++ {
		f := t.fields[j]
		off = pad(off, f.Align())
		off += f.Size()
	}
	return pad(off, t.fields[i].Align())
}

func (t *StructType) Kind() Kind { return KindStruct }

func (t *StructType) Size() int {
	if !t.set {
		panic(fmt.Sprintf("ir: sizeof opaque struct %s", t.Name))
	}
	off := 0
	for _, f := range t.fields {
		off = pad(off, f.Align())
		off += f.Size()
	}
	return pad(off, t.Align())
}

func (t *StructType) Align() int {
	a := 1
	for _, f := range t.fields {
		if f.Align() > a {
			a = f.Align()
		}
	}
	return a
}

func (t *StructType) Key() string {
	if t.Name != "" {
		return "%" + t.Name
	}
	keys := make([]string, len(t.fields))
	for i, f := range t.fields {
		keys[i] = f.Key()
	}
	return "{" + strings.Join(keys, ",") + "}"
}

func (t *StructType) String() string {
	if t.Name != "" {
		return "%" + t.Name
	}
	return t.BodyString()
}

// BodyString renders the struct body regardless of naming, for printing
// type definitions.
func (t *StructType) BodyString() string {
	if !t.set {
		return "opaque"
	}
	parts := make([]string, len(t.fields))
	for i, f := range t.fields {
		parts[i] = f.String()
	}
	return "{ " + strings.Join(parts, "; ") + " }"
}

// UnionType is a C-style union: storage is shared among the element types.
type UnionType struct {
	Name  string
	elems []Type
	set   bool
}

// Union returns an anonymous union over the given element types.
func Union(elems ...Type) *UnionType { return &UnionType{elems: elems, set: true} }

// NamedUnion creates an identified union with no body.
func NamedUnion(name string) *UnionType {
	if name == "" {
		panic("ir: NamedUnion requires a non-empty name")
	}
	return &UnionType{Name: name}
}

// SetBody sets the element list of an identified union.
func (t *UnionType) SetBody(elems ...Type) *UnionType {
	if t.set {
		panic(fmt.Sprintf("ir: union %s body already set", t.Name))
	}
	t.elems = elems
	t.set = true
	return t
}

// NumElems returns the number of union members.
func (t *UnionType) NumElems() int { return len(t.elems) }

// Elem returns union member i.
func (t *UnionType) Elem(i int) Type { return t.elems[i] }

func (t *UnionType) Kind() Kind { return KindUnion }

func (t *UnionType) Size() int {
	s := 0
	for _, e := range t.elems {
		if e.Size() > s {
			s = e.Size()
		}
	}
	return pad(s, t.Align())
}

func (t *UnionType) Align() int {
	a := 1
	for _, e := range t.elems {
		if e.Align() > a {
			a = e.Align()
		}
	}
	return a
}

func (t *UnionType) Key() string {
	if t.Name != "" {
		return "%u." + t.Name
	}
	keys := make([]string, len(t.elems))
	for i, e := range t.elems {
		keys[i] = e.Key()
	}
	return "u{" + strings.Join(keys, ",") + "}"
}

func (t *UnionType) String() string {
	if t.Name != "" {
		return "%u." + t.Name
	}
	parts := make([]string, len(t.elems))
	for i, e := range t.elems {
		parts[i] = e.String()
	}
	return "union{ " + strings.Join(parts, "; ") + " }"
}

// FuncType is a function type. Functions return up to one scalar value and
// take scalar parameters (paper Chapter 2 assumptions). Ret is Void for
// functions with no return value.
type FuncType struct {
	Ret    Type
	Params []Type
}

// FuncOf returns the function type ret(params...).
func FuncOf(ret Type, params ...Type) *FuncType {
	return &FuncType{Ret: ret, Params: params}
}

func (t *FuncType) Kind() Kind { return KindFunc }
func (t *FuncType) Size() int  { return 0 }
func (t *FuncType) Align() int { return 1 }

func (t *FuncType) Key() string {
	keys := make([]string, len(t.Params))
	for i, p := range t.Params {
		keys[i] = p.Key()
	}
	return t.Ret.Key() + "(" + strings.Join(keys, ",") + ")"
}

func (t *FuncType) String() string {
	parts := make([]string, len(t.Params))
	for i, p := range t.Params {
		parts[i] = p.String()
	}
	return t.Ret.String() + " (" + strings.Join(parts, ", ") + ")"
}

// pad rounds n up to the next multiple of align.
func pad(n, align int) int {
	if align <= 1 {
		return n
	}
	return (n + align - 1) / align * align
}

// ContainsPointerOutsideFunc reports whether t contains a pointer anywhere
// outside of function types. This is the paper's
// containsPointerOutsideFunType() predicate used to short-circuit shadow
// type construction (Figure 2.5, line 17).
func ContainsPointerOutsideFunc(t Type) bool {
	return containsPtr(t, make(map[string]bool))
}

func containsPtr(t Type, seen map[string]bool) bool {
	switch tt := t.(type) {
	case *PointerType:
		return true
	case *ArrayType:
		return containsPtr(tt.Elem, seen)
	case *StructType:
		if tt.Name != "" {
			if seen[tt.Key()] {
				return false
			}
			seen[tt.Key()] = true
		}
		for _, f := range tt.fields {
			if containsPtr(f, seen) {
				return true
			}
		}
		return false
	case *UnionType:
		if tt.Name != "" {
			if seen[tt.Key()] {
				return false
			}
			seen[tt.Key()] = true
		}
		for _, e := range tt.elems {
			if containsPtr(e, seen) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
