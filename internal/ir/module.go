package ir

import (
	"fmt"
	"sort"
	"strings"
)

// RefInit records that the pointer-sized word at Offset within a global's
// initial image holds the address of another global (Global != "") or of a
// function (Func != ""). This models compile-time global-variable
// initialization containing pointers (§2.4).
type RefInit struct {
	Offset int
	Global string
	Func   string
}

// Global is a module-level variable. Per the paper's assumptions, every
// global variable is a pointer to memory of type Elem; referencing the
// global (GlobalAddr) yields that pointer.
type Global struct {
	Name string
	Elem Type
	// Init is the initial byte image; nil means zero-initialized. If
	// non-nil, len(Init) must equal Elem.Size().
	Init []byte
	// Refs are pointer fixups applied over Init at program start.
	Refs []RefInit
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator.
type Block struct {
	Name   string
	Index  int
	Instrs []Instr
}

// Append adds instructions to the block.
func (b *Block) Append(ins ...Instr) { b.Instrs = append(b.Instrs, ins...) }

// Func is an IR function. External functions have no blocks and are
// resolved against the registered external-function implementations at run
// time (§2.8).
type Func struct {
	Name     string
	Sig      *FuncType
	Params   []*Reg
	Blocks   []*Block
	External bool

	nextReg    int
	nextBlock  int
	blockNames map[string]bool
}

// NewReg creates a fresh register of type t in f.
func (f *Func) NewReg(name string, t Type) *Reg {
	if t == nil {
		panic("ir: NewReg with nil type in " + f.Name)
	}
	if !IsScalar(t) {
		panic(fmt.Sprintf("ir: register %q of non-scalar type %s in %s", name, t, f.Name))
	}
	r := &Reg{ID: f.nextReg, Name: name, Type: t}
	f.nextReg++
	return r
}

// NumRegs returns the number of registers created so far; register IDs are
// dense in [0, NumRegs).
func (f *Func) NumRegs() int { return f.nextReg }

// NewBlock appends a new, empty basic block to f. Names are made unique
// within the function (builders and the DPMR transformer reuse structural
// names like "if.then"), keeping the textual form unambiguous for Parse.
func (f *Func) NewBlock(name string) *Block {
	if name == "" {
		name = fmt.Sprintf("b%d", f.nextBlock)
	}
	if f.blockNames == nil {
		f.blockNames = make(map[string]bool)
	}
	if f.blockNames[name] {
		name = fmt.Sprintf("%s.%d", name, f.nextBlock)
	}
	f.blockNames[name] = true
	b := &Block{Name: name, Index: f.nextBlock}
	f.nextBlock++
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Module is a whole program: globals plus functions.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func

	funcIdx   map[string]*Func
	globalIdx map[string]*Global
	frozen    bool
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:      name,
		funcIdx:   make(map[string]*Func),
		globalIdx: make(map[string]*Global),
	}
}

// AddFunc creates a function with the given signature and adds it to m.
// Parameter registers are created from the signature's parameter types.
func (m *Module) AddFunc(name string, sig *FuncType, paramNames ...string) *Func {
	m.mutable("AddFunc")
	if _, dup := m.funcIdx[name]; dup {
		panic("ir: duplicate function " + name)
	}
	f := &Func{Name: name, Sig: sig}
	for i, pt := range sig.Params {
		pn := fmt.Sprintf("a%d", i)
		if i < len(paramNames) && paramNames[i] != "" {
			pn = paramNames[i]
		}
		f.Params = append(f.Params, f.NewReg(pn, pt))
	}
	m.Funcs = append(m.Funcs, f)
	m.funcIdx[name] = f
	return f
}

// AddExtern declares an external function with the given signature.
func (m *Module) AddExtern(name string, sig *FuncType) *Func {
	f := m.AddFunc(name, sig)
	f.External = true
	return f
}

// AddGlobal adds a zero-initialized global variable of type elem.
func (m *Module) AddGlobal(name string, elem Type) *Global {
	m.mutable("AddGlobal")
	if _, dup := m.globalIdx[name]; dup {
		panic("ir: duplicate global " + name)
	}
	g := &Global{Name: name, Elem: elem}
	m.Globals = append(m.Globals, g)
	m.globalIdx[name] = g
	return g
}

// Func looks up a function by name.
func (m *Module) Func(name string) *Func { return m.funcIdx[name] }

// Global looks up a global by name.
func (m *Module) Global(name string) *Global { return m.globalIdx[name] }

// RenameFunc renames a function, updating the index. Used by the DPMR
// transformation's main() handling (§3.1.1: main is renamed to mainAug).
func (m *Module) RenameFunc(f *Func, newName string) {
	m.mutable("RenameFunc")
	if _, dup := m.funcIdx[newName]; dup {
		panic("ir: rename collides with existing function " + newName)
	}
	delete(m.funcIdx, f.Name)
	f.Name = newName
	m.funcIdx[newName] = f
}

// AllocSites returns the Alloc instructions of the given kind across the
// module in a deterministic order, as (function, block index, instr index)
// references. The fault-injection framework enumerates these.
type AllocSite struct {
	Fn    *Func
	Block int
	Instr int
	Alloc *Alloc
}

// HeapAllocSites returns every heap allocation site in deterministic order.
func (m *Module) HeapAllocSites() []AllocSite {
	var sites []AllocSite
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		for bi, b := range f.Blocks {
			for ii, in := range b.Instrs {
				if a, ok := in.(*Alloc); ok && a.Kind == AllocHeap {
					sites = append(sites, AllocSite{Fn: f, Block: bi, Instr: ii, Alloc: a})
				}
			}
		}
	}
	return sites
}

// String renders the whole module as text, in the form accepted by Parse:
// named-type definitions first, then globals, then functions.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for _, td := range m.namedTypes() {
		switch tt := td.(type) {
		case *StructType:
			fmt.Fprintf(&sb, "type %%%s = %s\n", tt.Name, tt.BodyString())
		case *UnionType:
			parts := make([]string, tt.NumElems())
			for i := range parts {
				parts[i] = tt.Elem(i).String()
			}
			fmt.Fprintf(&sb, "type %%u.%s = union{ %s }\n", tt.Name, strings.Join(parts, "; "))
		}
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global @%s : %s\n", g.Name, g.Elem)
		for _, ref := range g.Refs {
			target := "@" + ref.Global
			if ref.Func != "" {
				target = "@@" + ref.Func
			}
			fmt.Fprintf(&sb, "  ref %d %s\n", ref.Offset, target)
		}
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// namedTypes collects every named struct/union reachable from the
// module's globals, signatures, and instructions, in first-use order.
func (m *Module) namedTypes() []Type {
	var out []Type
	seen := map[string]bool{}
	var visit func(t Type)
	visit = func(t Type) {
		if t == nil {
			return
		}
		switch tt := t.(type) {
		case *PointerType:
			visit(tt.Elem)
		case *ArrayType:
			visit(tt.Elem)
		case *FuncType:
			visit(tt.Ret)
			for _, p := range tt.Params {
				visit(p)
			}
		case *StructType:
			if tt.Name != "" {
				if seen[tt.Name] {
					return
				}
				seen[tt.Name] = true
				out = append(out, tt)
			}
			for _, f := range tt.Fields() {
				visit(f)
			}
		case *UnionType:
			if tt.Name != "" {
				if seen["u."+tt.Name] {
					return
				}
				seen["u."+tt.Name] = true
				out = append(out, tt)
			}
			for i := 0; i < tt.NumElems(); i++ {
				visit(tt.Elem(i))
			}
		}
	}
	for _, g := range m.Globals {
		visit(g.Elem)
	}
	for _, f := range m.Funcs {
		visit(f.Sig)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if a, ok := in.(*Alloc); ok {
					visit(a.Elem)
				}
				if d := Def(in); d != nil {
					visit(d.Type)
				}
			}
		}
	}
	return out
}

// String renders the function as text.
func (f *Func) String() string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s: %s", p, p.Type)
	}
	kind := "func"
	if f.External {
		kind = "extern func"
	}
	fmt.Fprintf(&sb, "%s @%s(%s) %s", kind, f.Name, strings.Join(params, ", "), f.Sig.Ret)
	if f.External {
		sb.WriteString("\n")
		return sb.String()
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, ".%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Stats summarizes a module for reporting.
type Stats struct {
	Funcs      int
	Blocks     int
	Instrs     int
	HeapSites  int
	ArraySites int
	Loads      int
	Stores     int
	Asserts    int
}

// CollectStats walks the module and tallies instruction statistics.
func (m *Module) CollectStats() Stats {
	var s Stats
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		s.Funcs++
		for _, b := range f.Blocks {
			s.Blocks++
			for _, in := range b.Instrs {
				s.Instrs++
				switch i := in.(type) {
				case *Alloc:
					if i.Kind == AllocHeap {
						s.HeapSites++
						if i.Count != nil {
							s.ArraySites++
						}
					}
				case *Load:
					s.Loads++
				case *Store:
					s.Stores++
				case *Assert:
					s.Asserts++
				}
			}
		}
	}
	return s
}

// SortedFuncNames returns the module's function names sorted, for stable
// diagnostics.
func (m *Module) SortedFuncNames() []string {
	names := make([]string, 0, len(m.Funcs))
	for _, f := range m.Funcs {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}
