package ir

import (
	"strings"
	"testing"
)

func TestParseTinyModule(t *testing.T) {
	text := `module tiny
func @main() i64 {
.entry:
  %a.0 = const i64 40
  %b.1 = const i64 2
  %c.2 = add %a.0, %b.1
  ret %c.2
}
`
	m, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	if m.Name != "tiny" {
		t.Errorf("name = %s", m.Name)
	}
	if got := len(m.Func("main").Blocks); got != 1 {
		t.Errorf("blocks = %d", got)
	}
}

func TestParseTypeExpressions(t *testing.T) {
	p := &parser{types: map[string]Type{}}
	ll := NamedStruct("LL")
	ll.SetBody(I32, Ptr(ll))
	p.types["LL"] = ll
	tests := map[string]string{
		"i64":               "i64",
		"i8*":               "i8*",
		"i8**":              "i8**",
		"[4 x i64]":         "[4xi64]",
		"[2 x [3 x f32]]*":  "[2x[3xf32]]*",
		"{ i64; i8* }":      "{i64,i8*}",
		"union{ i64; f64 }": "u{i64,f64}",
		"%LL":               "%LL",
		"%LL*":              "%LL*",
		"i64 (i64, i8*)*":   "i64(i64,i8*)*",
		"void (i8*)*":       "void(i8*)*",
		"{ i8*; void* }*":   "{i8*,void*}*",
	}
	for text, wantKey := range tests {
		got, err := p.parseTypeString(text)
		if err != nil {
			t.Errorf("%q: %v", text, err)
			continue
		}
		if got.Key() != wantKey {
			t.Errorf("%q: key %q, want %q", text, got.Key(), wantKey)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                     // no header
		"module x\nbogus line", // stray line
		"module x\nfunc @f() i64 {\n.e:\n  %a.0 = frob %b.1\n}", // unknown op
		"module x\nfunc @f() i64 {\n.e:\n  ret %nope.9\n}",      // undefined reg
		"module x\nglobal @g : wat",                             // bad type
	}
	for _, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("expected error for %q", text)
		}
	}
}

// buildRich builds a module exercising every instruction the printer can
// emit (except DPMR-inserted ones, covered by the transform round-trip in
// package dpmr's tests).
func buildRich(t *testing.T) *Module {
	t.Helper()
	m := NewModule("rich")
	node := NamedStruct("RNode")
	node.SetBody(I64, Ptr(node), Union(I32, F64))
	g := m.AddGlobal("gv", I64)
	g.Init = nil
	m.AddGlobal("gptr", Ptr(I64))
	m.Global("gptr").Refs = []RefInit{{Offset: 0, Global: "gv"}}
	m.AddExtern("ext", FuncOf(I64, Ptr(I8), I64))

	b := NewBuilder(m)
	helper := b.Function("helper", Ptr(node), []string{"prev"}, Ptr(node))
	n := b.Malloc(node)
	b.Store(b.Field(n, 0), b.I64(5))
	b.Store(b.Field(n, 1), helper.Params[0])
	b.Ret(n)

	b.Function("main", I64, nil)
	acc := b.Reg("acc", I64)
	b.MoveTo(acc, b.I64(0))
	h := b.Call("helper", b.Null(Ptr(node)))
	h2 := b.Call("helper", h)
	b.ForRange("i", b.I64(0), b.I64(4), func(i *Reg) {
		v := b.Load(b.Field(h2, 0))
		b.BinTo(acc, OpAdd, acc, v)
	})
	fv := b.Float(F32, 1.5)
	wide := b.Convert(fv, F64)
	b.BinTo(acc, OpAdd, acc, b.Convert(wide, I64))
	arr := b.AllocaN(I32, b.I64(4))
	b.Store(b.Index(arr, b.I64(2)), b.I32(9))
	b.BinTo(acc, OpAdd, acc, b.Convert(b.Load(b.Index(arr, b.I64(2))), I64))
	gp := b.GlobalAddr("gv")
	b.Store(gp, acc)
	fp := b.FuncAddr("helper")
	h3 := b.CallPtr(fp, h2)
	b.Free(h3)
	b.Free(h2)
	b.Free(h)
	c := b.Cmp(CmpSGT, acc, b.I64(3))
	b.If(c, func() {
		b.BinTo(acc, OpXor, acc, b.I64(1))
	}, nil)
	raw := b.PtrToInt(gp)
	_ = raw
	b.Out(acc, OutInt)
	b.Ret(b.Load(b.GlobalAddr("gv")))
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParsePrintFixpoint(t *testing.T) {
	// Register IDs may be renumbered on the first parse, but
	// Parse∘String must reach a fixpoint after one round.
	m := buildRich(t)
	text1 := m.String()
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("first parse: %v", err)
	}
	if err := Verify(m2); err != nil {
		t.Fatalf("reparsed module invalid: %v", err)
	}
	text2 := m2.String()
	m3, err := Parse(text2)
	if err != nil {
		t.Fatalf("second parse: %v", err)
	}
	text3 := m3.String()
	if text2 != text3 {
		t.Error("printer/parser did not reach a fixpoint")
		for i := 0; i < len(text2) && i < len(text3); i++ {
			if text2[i] != text3[i] {
				lo := i - 50
				if lo < 0 {
					lo = 0
				}
				t.Logf("first divergence near %q vs %q", text2[lo:i+20], text3[lo:i+20])
				break
			}
		}
	}
}

func TestParsePreservesStructure(t *testing.T) {
	m := buildRich(t)
	m2, err := Parse(m.String())
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := m.CollectStats(), m2.CollectStats()
	if s1 != s2 {
		t.Errorf("stats changed: %+v vs %+v", s1, s2)
	}
	if len(m2.Globals) != len(m.Globals) {
		t.Error("globals lost")
	}
	g := m2.Global("gptr")
	if len(g.Refs) != 1 || g.Refs[0].Global != "gv" {
		t.Errorf("refs lost: %+v", g.Refs)
	}
	ext := m2.Func("ext")
	if ext == nil || !ext.External {
		t.Error("extern lost")
	}
	if !strings.Contains(m2.String(), "type %RNode") {
		t.Error("named type definition lost")
	}
}

func TestParseRecursiveNamedType(t *testing.T) {
	text := `module rec
type %LL = { i32; %LL* }
func @main() i64 {
.entry:
  %n.0 = malloc %LL ; site 0
  %f.1 = fieldaddr %n.0, 0
  %c.2 = const i32 7
  store %c.2, %f.1
  %v.3 = load i32, %f.1
  free %n.0
  %w.4 = convert %v.3 to i64
  ret %w.4
}
`
	m, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	ll := m.Func("main").Blocks[0].Instrs[0].(*Alloc).Elem.(*StructType)
	if ll.Name != "LL" {
		t.Errorf("alloc elem = %s", ll.Name)
	}
	inner := ll.Field(1).(*PointerType).Elem.(*StructType)
	if inner != ll {
		t.Error("recursion not tied back to the same named struct")
	}
}
