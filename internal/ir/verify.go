package ir

import (
	"errors"
	"fmt"
)

// VerifyError aggregates all verification failures found in a module.
type VerifyError struct {
	Problems []string
}

func (e *VerifyError) Error() string {
	if len(e.Problems) == 1 {
		return "ir verify: " + e.Problems[0]
	}
	return fmt.Sprintf("ir verify: %d problems, first: %s", len(e.Problems), e.Problems[0])
}

// Verify checks the structural well-formedness of a module: every block
// ends in exactly one terminator, operand and signature types are
// consistent, and instruction operands are sane. It does not enforce the
// DPMR input restrictions of §2.9/§4.4 — those live in package dpmr, since
// programs that violate them are still executable (and Chapter 5 exists to
// admit them).
func Verify(m *Module) error {
	var probs []string
	add := func(f *Func, b *Block, format string, args ...any) {
		loc := ""
		if f != nil {
			loc = "@" + f.Name
			if b != nil {
				loc += "." + b.Name
			}
			loc += ": "
		}
		probs = append(probs, loc+fmt.Sprintf(format, args...))
	}

	if m.Func("main") == nil {
		add(nil, nil, "module has no main function")
	}

	for _, f := range m.Funcs {
		if f.External {
			if len(f.Blocks) != 0 {
				add(f, nil, "external function has a body")
			}
			continue
		}
		if len(f.Blocks) == 0 {
			add(f, nil, "function has no blocks")
			continue
		}
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				add(f, b, "empty block")
				continue
			}
			for k, in := range b.Instrs {
				last := k == len(b.Instrs)-1
				if IsTerminator(in) != last {
					if last {
						add(f, b, "block does not end in a terminator (ends with %s)", in)
					} else {
						add(f, b, "terminator %s in middle of block", in)
					}
				}
				if p := checkInstr(m, f, in); p != "" {
					add(f, b, "%s: %s", in, p)
				}
			}
		}
	}
	if len(probs) == 0 {
		return nil
	}
	return &VerifyError{Problems: probs}
}

func checkInstr(m *Module, f *Func, in Instr) string {
	switch i := in.(type) {
	case *ConstInt:
		if i.Dst.Type.Kind() != KindInt {
			return "integer constant into non-integer register"
		}
	case *ConstFloat:
		if i.Dst.Type.Kind() != KindFloat {
			return "float constant into non-float register"
		}
	case *ConstNull:
		if !IsPointer(i.Dst.Type) {
			return "null into non-pointer register"
		}
	case *Move:
		if i.Dst.Type.Size() != i.Src.Type.Size() || i.Dst.Type.Kind() != i.Src.Type.Kind() {
			return fmt.Sprintf("move between incompatible types %s and %s", i.Src.Type, i.Dst.Type)
		}
	case *BinOp:
		if i.Op.IsFloat() {
			if i.X.Type.Kind() != KindFloat || i.Y.Type.Kind() != KindFloat {
				return "float op on non-float operands"
			}
		} else if i.X.Type.Kind() == KindFloat || i.Y.Type.Kind() == KindFloat {
			return "integer op on float operands"
		}
		if !TypesEqual(i.X.Type, i.Y.Type) && !(IsPointer(i.X.Type) && i.Y.Type.Kind() == KindInt) {
			return fmt.Sprintf("mismatched operand types %s and %s", i.X.Type, i.Y.Type)
		}
	case *Cmp:
		if !TypesEqual(i.Dst.Type, I1) {
			return "cmp result must be i1"
		}
	case *Alloc:
		if !IsPointer(i.Dst.Type) || !TypesEqual(i.Dst.Elem(), i.Elem) {
			return fmt.Sprintf("alloc of %s into register of type %s", i.Elem, i.Dst.Type)
		}
		if i.Count != nil && i.Count.Type.Kind() != KindInt {
			return "alloc count must be an integer"
		}
		if i.Elem.Kind() == KindVoid || i.Elem.Kind() == KindFunc {
			return "cannot allocate void or function type"
		}
	case *Free:
		if !IsPointer(i.Ptr.Type) {
			return "free of non-pointer"
		}
	case *Load:
		if !IsPointer(i.Ptr.Type) {
			return "load through non-pointer"
		}
		if !IsScalar(i.Dst.Type) {
			return "load of non-scalar"
		}
	case *Store:
		if !IsPointer(i.Ptr.Type) {
			return "store through non-pointer"
		}
		if !IsScalar(i.Val.Type) {
			return "store of non-scalar"
		}
	case *FieldAddr:
		switch et := i.Ptr.Elem().(type) {
		case *StructType:
			if i.Field < 0 || i.Field >= et.NumFields() {
				return fmt.Sprintf("field %d out of range for %s", i.Field, et)
			}
			if !TypesEqual(i.Dst.Elem(), et.Field(i.Field)) {
				return "fieldaddr result type mismatch"
			}
		case *UnionType:
			if i.Field < 0 || i.Field >= et.NumElems() {
				return fmt.Sprintf("member %d out of range for %s", i.Field, et)
			}
		default:
			return "fieldaddr through pointer to non-aggregate"
		}
	case *IndexAddr:
		if !IsPointer(i.Ptr.Type) {
			return "indexaddr through non-pointer"
		}
		if i.Index.Type.Kind() != KindInt {
			return "indexaddr with non-integer index"
		}
	case *Bitcast:
		if !IsPointer(i.Src.Type) || !IsPointer(i.Dst.Type) {
			return "bitcast requires pointer operands"
		}
	case *PtrToInt:
		if !IsPointer(i.Src.Type) || i.Dst.Type.Kind() != KindInt {
			return "ptrtoint requires pointer source and integer destination"
		}
	case *IntToPtr:
		if i.Src.Type.Kind() != KindInt || !IsPointer(i.Dst.Type) {
			return "inttoptr requires integer source and pointer destination"
		}
	case *FuncAddr:
		if m.Func(i.Fn) == nil {
			return "address of unknown function " + i.Fn
		}
	case *GlobalAddr:
		if m.Global(i.G) == nil {
			return "address of unknown global " + i.G
		}
	case *Call:
		var sig *FuncType
		if i.Callee != "" {
			callee := m.Func(i.Callee)
			if callee == nil {
				return "call to unknown function " + i.Callee
			}
			sig = callee.Sig
		} else {
			if i.CalleePtr == nil {
				return "call with neither symbol nor pointer"
			}
			ft, ok := i.CalleePtr.Elem().(*FuncType)
			if !ok {
				return "indirect call through non-function pointer"
			}
			sig = ft
		}
		if len(i.Args) != len(sig.Params) {
			return fmt.Sprintf("call arity %d, want %d", len(i.Args), len(sig.Params))
		}
		for k, a := range i.Args {
			if !TypesEqual(a.Type, sig.Params[k]) {
				return fmt.Sprintf("arg %d type %s, want %s", k, a.Type, sig.Params[k])
			}
		}
		if sig.Ret.Kind() == KindVoid {
			if i.Dst != nil {
				return "void call with result register"
			}
		} else if i.Dst != nil && !TypesEqual(i.Dst.Type, sig.Ret) {
			return fmt.Sprintf("call result type %s, want %s", i.Dst.Type, sig.Ret)
		}
	case *Ret:
		want := f.Sig.Ret
		if want.Kind() == KindVoid {
			if i.Val != nil {
				return "return of value from void function"
			}
		} else {
			if i.Val == nil {
				return "missing return value"
			}
			if !TypesEqual(i.Val.Type, want) {
				return fmt.Sprintf("return type %s, want %s", i.Val.Type, want)
			}
		}
	case *CondBr:
		if i.Cond.Type.Kind() != KindInt {
			return "condbr on non-integer condition"
		}
	case *Assert:
		if i.X.Type.Size() != i.Y.Type.Size() {
			return "assert operands of different widths"
		}
	case *HeapBufSize:
		if !IsPointer(i.Ptr.Type) {
			return "heapbufsize of non-pointer"
		}
	case *RandInt:
		if i.Hi < i.Lo {
			return fmt.Sprintf("randint range [%d, %d] is empty", i.Lo, i.Hi)
		}
		if i.Dst.Type.Kind() != KindInt {
			return "randint into non-integer register"
		}
	case *AtomicRMW:
		if p := checkAtomicSlot(i.Ptr, i.Dst, i.RPtr); p != "" {
			return p
		}
		if !TypesEqual(i.Val.Type, i.Dst.Type) {
			return "atomicrmw operand type differs from loaded type"
		}
		if atomicNames[i.Op] == "" {
			return "atomicrmw with unknown operation"
		}
	case *AtomicCAS:
		if p := checkAtomicSlot(i.Ptr, i.Dst, i.RPtr); p != "" {
			return p
		}
		if !TypesEqual(i.Old.Type, i.Dst.Type) || !TypesEqual(i.New.Type, i.Dst.Type) {
			return "atomiccas operand type differs from loaded type"
		}
	}
	return ""
}

// checkAtomicSlot validates the shared operands of the atomic
// instructions: an integer slot (atomics never operate on pointers or
// floats — nothing DPMR's pointer companions would have to mirror
// atomically), a matching destination, and a same-typed replica slot
// when one is bound.
func checkAtomicSlot(ptr, dst, rptr *Reg) string {
	if !IsPointer(ptr.Type) {
		return "atomic through non-pointer"
	}
	elem := ptr.Elem()
	if elem.Kind() != KindInt {
		return "atomic on non-integer memory"
	}
	if !TypesEqual(dst.Type, elem) {
		return "atomic result type differs from pointee"
	}
	if rptr != nil && !TypesEqual(rptr.Type, ptr.Type) {
		return "atomic replica slot type differs from application slot"
	}
	return ""
}

// ErrNoMain is returned by helpers that need an entry point.
var ErrNoMain = errors.New("ir: module has no main function")
