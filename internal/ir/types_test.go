package ir

import (
	"testing"
	"testing/quick"
)

func TestPrimitiveSizes(t *testing.T) {
	tests := []struct {
		t     Type
		size  int
		align int
	}{
		{I1, 1, 1},
		{I8, 1, 1},
		{I16, 2, 2},
		{I32, 4, 4},
		{I64, 8, 8},
		{F32, 4, 4},
		{F64, 8, 8},
		{Void, 0, 1},
		{Ptr(I32), 8, 8},
		{Ptr(Void), 8, 8},
	}
	for _, tc := range tests {
		if got := tc.t.Size(); got != tc.size {
			t.Errorf("%s: size %d, want %d", tc.t, got, tc.size)
		}
		if got := tc.t.Align(); got != tc.align {
			t.Errorf("%s: align %d, want %d", tc.t, got, tc.align)
		}
	}
}

func TestStructLayout(t *testing.T) {
	// struct{ i8; i32; i8; i64 } → offsets 0, 4, 8, 16; size 24.
	s := Struct(I8, I32, I8, I64)
	wantOff := []int{0, 4, 8, 16}
	for i, w := range wantOff {
		if got := s.Offset(i); got != w {
			t.Errorf("offset(%d) = %d, want %d", i, got, w)
		}
	}
	if got := s.Size(); got != 24 {
		t.Errorf("size = %d, want 24", got)
	}
	if got := s.Align(); got != 8 {
		t.Errorf("align = %d, want 8", got)
	}
}

func TestArrayEquivalentToStruct(t *testing.T) {
	// Paper Ch.2: struct{int32; int32; int32;} is equivalent to int32[3]
	// in size.
	s := Struct(I32, I32, I32)
	a := Array(I32, 3)
	if s.Size() != a.Size() {
		t.Errorf("struct size %d != array size %d", s.Size(), a.Size())
	}
	if a.Size() != 12 {
		t.Errorf("array size = %d, want 12", a.Size())
	}
}

func TestUnionLayout(t *testing.T) {
	u := Union(I8, F64, I32)
	if got := u.Size(); got != 8 {
		t.Errorf("union size = %d, want 8", got)
	}
	if got := u.Align(); got != 8 {
		t.Errorf("union align = %d, want 8", got)
	}
}

func TestRecursiveNamedStruct(t *testing.T) {
	// struct LinkedList { int32 data; struct LinkedList* nxt; }
	ll := NamedStruct("LinkedList")
	ll.SetBody(I32, Ptr(ll))
	if got := ll.Size(); got != 16 {
		t.Errorf("linked list size = %d, want 16", got)
	}
	if got := ll.Offset(1); got != 8 {
		t.Errorf("nxt offset = %d, want 8", got)
	}
	if !ContainsPointerOutsideFunc(ll) {
		t.Error("linked list should contain a pointer")
	}
}

func TestTypeKeysNominalVsStructural(t *testing.T) {
	a := Struct(I32, I64)
	b := Struct(I32, I64)
	if !TypesEqual(a, b) {
		t.Error("identical anonymous structs must be equal")
	}
	n1 := NamedStruct("A").SetBody(I32)
	n2 := NamedStruct("B").SetBody(I32)
	if TypesEqual(n1, n2) {
		t.Error("distinct named structs must not be equal")
	}
	if !TypesEqual(Ptr(n1), Ptr(n1)) {
		t.Error("pointers to same named struct must be equal")
	}
}

func TestContainsPointerOutsideFunc(t *testing.T) {
	tests := []struct {
		t    Type
		want bool
	}{
		{I32, false},
		{F64, false},
		{Ptr(I32), true},
		{Array(I32, 4), false},
		{Array(Ptr(I8), 2), true},
		{Struct(I32, F64), false},
		{Struct(I32, Ptr(I8)), true},
		{Union(I32, Ptr(I8)), true},
		{FuncOf(Ptr(I8), Ptr(I8)), false}, // pointers inside function types do not count
		{Struct(I32, FuncOf(Ptr(I8))), false},
	}
	for _, tc := range tests {
		if got := ContainsPointerOutsideFunc(tc.t); got != tc.want {
			t.Errorf("ContainsPointerOutsideFunc(%s) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestScalarPredicate(t *testing.T) {
	if !IsScalar(I32) || !IsScalar(F64) || !IsScalar(Ptr(I8)) {
		t.Error("ints, floats, pointers are scalars")
	}
	if IsScalar(Struct(I32)) || IsScalar(Array(I8, 3)) || IsScalar(Void) || IsScalar(nil) {
		t.Error("aggregates, void, nil are not scalars")
	}
}

func TestStructSizeAlwaysAligned(t *testing.T) {
	// Property: for any combination of primitive fields, struct size is a
	// multiple of its alignment and offsets are monotonically increasing
	// and aligned.
	prims := []Type{I8, I16, I32, I64, F32, F64, Ptr(I8)}
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		if len(picks) > 12 {
			picks = picks[:12]
		}
		fields := make([]Type, len(picks))
		for i, p := range picks {
			fields[i] = prims[int(p)%len(prims)]
		}
		s := Struct(fields...)
		if s.Size()%s.Align() != 0 {
			return false
		}
		prev := -1
		for i := range fields {
			off := s.Offset(i)
			if off <= prev && i > 0 && fields[i-1].Size() > 0 {
				return false
			}
			if off%fields[i].Align() != 0 {
				return false
			}
			prev = off
		}
		return s.Size() >= s.Offset(len(fields)-1)+fields[len(fields)-1].Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFuncTypeString(t *testing.T) {
	ft := FuncOf(Ptr(I8), Ptr(I8), I32)
	want := "i8* (i8*, i32)"
	if got := ft.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestOpaqueStructPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("sizeof opaque struct should panic")
		}
	}()
	_ = NamedStruct("op").Size()
}
