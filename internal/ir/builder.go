package ir

import "fmt"

// Builder provides a cursor-style API for constructing IR. It tracks the
// current module, function, and insertion block, and allocates module-wide
// allocation-site identifiers so the fault injector can address sites
// stably.
type Builder struct {
	M *Module
	F *Func
	B *Block

	nextSite int
}

// NewBuilder returns a builder over module m.
func NewBuilder(m *Module) *Builder { return &Builder{M: m} }

// Function starts a new function with an entry block and positions the
// builder at the entry. It returns the function; parameter registers are
// available as fn.Params.
func (b *Builder) Function(name string, ret Type, paramNames []string, params ...Type) *Func {
	f := b.M.AddFunc(name, FuncOf(ret, params...), paramNames...)
	b.F = f
	b.B = f.NewBlock("entry")
	return f
}

// Block creates a new block in the current function without moving the
// cursor.
func (b *Builder) Block(name string) *Block { return b.F.NewBlock(name) }

// SetBlock moves the insertion cursor to blk.
func (b *Builder) SetBlock(blk *Block) { b.B = blk }

// emit appends an instruction at the cursor.
func (b *Builder) emit(in Instr) {
	if b.B == nil {
		panic("ir: builder has no insertion block")
	}
	b.B.Append(in)
}

// Reg creates a fresh named register in the current function.
func (b *Builder) Reg(name string, t Type) *Reg { return b.F.NewReg(name, t) }

func (b *Builder) tmp(t Type) *Reg { return b.F.NewReg("", t) }

// ---------------------------------------------------------------------------
// Constants

// Const emits an integer constant of type t.
func (b *Builder) Const(t Type, v int64) *Reg {
	r := b.tmp(t)
	b.emit(&ConstInt{Dst: r, Val: v})
	return r
}

// I64 emits an i64 constant.
func (b *Builder) I64(v int64) *Reg { return b.Const(I64, v) }

// I32 emits an i32 constant.
func (b *Builder) I32(v int64) *Reg { return b.Const(I32, v) }

// I8 emits an i8 constant.
func (b *Builder) I8(v int64) *Reg { return b.Const(I8, v) }

// Float emits a floating point constant of type t.
func (b *Builder) Float(t Type, v float64) *Reg {
	r := b.tmp(t)
	b.emit(&ConstFloat{Dst: r, Val: v})
	return r
}

// F64c emits an f64 constant.
func (b *Builder) F64c(v float64) *Reg { return b.Float(F64, v) }

// Null emits a null pointer of type pt.
func (b *Builder) Null(pt Type) *Reg {
	r := b.tmp(pt)
	b.emit(&ConstNull{Dst: r})
	return r
}

// MoveTo emits dst = src.
func (b *Builder) MoveTo(dst, src *Reg) { b.emit(&Move{Dst: dst, Src: src}) }

// ---------------------------------------------------------------------------
// Arithmetic

// Bin emits dst = x op y with dst typed like x.
func (b *Builder) Bin(op BinKind, x, y *Reg) *Reg {
	r := b.tmp(x.Type)
	b.emit(&BinOp{Dst: r, X: x, Y: y, Op: op})
	return r
}

// BinTo emits dst = x op y into an existing register.
func (b *Builder) BinTo(dst *Reg, op BinKind, x, y *Reg) {
	b.emit(&BinOp{Dst: dst, X: x, Y: y, Op: op})
}

// Add emits x + y.
func (b *Builder) Add(x, y *Reg) *Reg { return b.Bin(OpAdd, x, y) }

// Sub emits x - y.
func (b *Builder) Sub(x, y *Reg) *Reg { return b.Bin(OpSub, x, y) }

// Mul emits x * y.
func (b *Builder) Mul(x, y *Reg) *Reg { return b.Bin(OpMul, x, y) }

// Cmp emits the i1 predicate x op y.
func (b *Builder) Cmp(op CmpKind, x, y *Reg) *Reg {
	r := b.tmp(I1)
	b.emit(&Cmp{Dst: r, Op: op, X: x, Y: y})
	return r
}

// Convert emits a numeric conversion of src to type t.
func (b *Builder) Convert(src *Reg, t Type) *Reg {
	r := b.tmp(t)
	b.emit(&Convert{Dst: r, Src: src})
	return r
}

// ---------------------------------------------------------------------------
// Memory

func (b *Builder) site() int {
	s := b.nextSite
	b.nextSite++
	return s
}

// Malloc emits a heap allocation of one elem, returning an elem* register.
func (b *Builder) Malloc(elem Type) *Reg {
	r := b.tmp(Ptr(elem))
	b.emit(&Alloc{Dst: r, Kind: AllocHeap, Elem: elem, Site: b.site()})
	return r
}

// MallocN emits a heap array allocation of count elems.
func (b *Builder) MallocN(elem Type, count *Reg) *Reg {
	r := b.tmp(Ptr(elem))
	b.emit(&Alloc{Dst: r, Kind: AllocHeap, Elem: elem, Count: count, Site: b.site()})
	return r
}

// Alloca emits a stack allocation of one elem.
func (b *Builder) Alloca(elem Type) *Reg {
	r := b.tmp(Ptr(elem))
	b.emit(&Alloc{Dst: r, Kind: AllocStack, Elem: elem, Site: b.site()})
	return r
}

// AllocaN emits a stack array allocation of count elems.
func (b *Builder) AllocaN(elem Type, count *Reg) *Reg {
	r := b.tmp(Ptr(elem))
	b.emit(&Alloc{Dst: r, Kind: AllocStack, Elem: elem, Count: count, Site: b.site()})
	return r
}

// Free emits free(p).
func (b *Builder) Free(p *Reg) { b.emit(&Free{Ptr: p}) }

// Load emits a load of the scalar pointee of p.
func (b *Builder) Load(p *Reg) *Reg {
	elem := p.Elem()
	if !IsScalar(elem) {
		panic(fmt.Sprintf("ir: load of non-scalar %s through %s", elem, p))
	}
	r := b.tmp(elem)
	b.emit(&Load{Dst: r, Ptr: p})
	return r
}

// LoadAs emits a load through p typed as t (for type-generic access).
func (b *Builder) LoadAs(p *Reg, t Type) *Reg {
	r := b.tmp(t)
	b.emit(&Load{Dst: r, Ptr: p})
	return r
}

// LoadTo emits a load into an existing register.
func (b *Builder) LoadTo(dst, p *Reg) { b.emit(&Load{Dst: dst, Ptr: p}) }

// Store emits store v through p.
func (b *Builder) Store(p, v *Reg) { b.emit(&Store{Ptr: p, Val: v}) }

// Field emits &(p->i) for a pointer to struct or union.
func (b *Builder) Field(p *Reg, i int) *Reg {
	var ft Type
	switch et := p.Elem().(type) {
	case *StructType:
		ft = et.Field(i)
	case *UnionType:
		ft = et.Elem(i)
	default:
		panic(fmt.Sprintf("ir: fieldaddr through non-aggregate pointer %s: %s", p, p.Type))
	}
	r := b.tmp(Ptr(ft))
	b.emit(&FieldAddr{Dst: r, Ptr: p, Field: i})
	return r
}

// Index emits &p[i]. If p points to an array the result points to the
// array's element type; otherwise C-style pointer indexing over the pointee
// is performed.
func (b *Builder) Index(p, i *Reg) *Reg {
	elem := p.Elem()
	if at, ok := elem.(*ArrayType); ok {
		elem = at.Elem
	}
	r := b.tmp(Ptr(elem))
	b.emit(&IndexAddr{Dst: r, Ptr: p, Index: i})
	return r
}

// Cast emits a pointer-to-pointer cast of p to elem*.
func (b *Builder) Cast(p *Reg, elem Type) *Reg {
	r := b.tmp(Ptr(elem))
	b.emit(&Bitcast{Dst: r, Src: p})
	return r
}

// PtrToInt emits an integer view of pointer p.
func (b *Builder) PtrToInt(p *Reg) *Reg {
	r := b.tmp(I64)
	b.emit(&PtrToInt{Dst: r, Src: p})
	return r
}

// IntToPtr emits a pointer of type elem* from integer v.
func (b *Builder) IntToPtr(v *Reg, elem Type) *Reg {
	r := b.tmp(Ptr(elem))
	b.emit(&IntToPtr{Dst: r, Src: v})
	return r
}

// FuncAddr emits the address of function fn typed as sig*.
func (b *Builder) FuncAddr(fn string) *Reg {
	f := b.M.Func(fn)
	if f == nil {
		panic("ir: funcaddr of unknown function " + fn)
	}
	r := b.tmp(Ptr(f.Sig))
	b.emit(&FuncAddr{Dst: r, Fn: fn})
	return r
}

// GlobalAddr emits the address of global g.
func (b *Builder) GlobalAddr(g string) *Reg {
	gv := b.M.Global(g)
	if gv == nil {
		panic("ir: globaladdr of unknown global " + g)
	}
	r := b.tmp(Ptr(gv.Elem))
	b.emit(&GlobalAddr{Dst: r, G: g})
	return r
}

// ---------------------------------------------------------------------------
// Calls, control flow, and intrinsics

// Call emits a direct call; it returns the result register, or nil for void
// callees.
func (b *Builder) Call(fn string, args ...*Reg) *Reg {
	f := b.M.Func(fn)
	if f == nil {
		panic("ir: call to unknown function " + fn)
	}
	var dst *Reg
	if f.Sig.Ret.Kind() != KindVoid {
		dst = b.tmp(f.Sig.Ret)
	}
	b.emit(&Call{Dst: dst, Callee: fn, Args: args})
	return dst
}

// CallPtr emits an indirect call through fp, which must have a function
// pointer type.
func (b *Builder) CallPtr(fp *Reg, args ...*Reg) *Reg {
	ft, ok := fp.Elem().(*FuncType)
	if !ok {
		panic("ir: indirect call through non-function pointer " + fp.Type.String())
	}
	var dst *Reg
	if ft.Ret.Kind() != KindVoid {
		dst = b.tmp(ft.Ret)
	}
	b.emit(&Call{Dst: dst, CalleePtr: fp, Args: args})
	return dst
}

// Ret emits a return of v (nil for void).
func (b *Builder) Ret(v *Reg) { b.emit(&Ret{Val: v}) }

// Br emits an unconditional branch.
func (b *Builder) Br(t *Block) { b.emit(&Br{Target: t}) }

// CondBr emits a conditional branch.
func (b *Builder) CondBr(c *Reg, t, f *Block) { b.emit(&CondBr{Cond: c, True: t, False: f}) }

// Assert emits a DPMR equality check.
func (b *Builder) Assert(x, y *Reg) { b.emit(&Assert{X: x, Y: y}) }

// Out emits program output of v.
func (b *Builder) Out(v *Reg, mode OutputMode) { b.emit(&Output{Val: v, Mode: mode}) }

// OutInt is shorthand for integer output.
func (b *Builder) OutInt(v *Reg) { b.Out(v, OutInt) }

// Exit emits program termination with code v.
func (b *Builder) Exit(v *Reg) { b.emit(&Exit{Val: v}) }

// AtomicRMW emits an atomic read-modify-write on the integer pointee of
// p, returning the value read (the "old" value).
func (b *Builder) AtomicRMW(op AtomicOp, p, v *Reg) *Reg {
	elem := p.Elem()
	if elem.Kind() != KindInt {
		panic(fmt.Sprintf("ir: atomicrmw on non-integer memory through %s", p))
	}
	r := b.tmp(elem)
	b.emit(&AtomicRMW{Dst: r, Ptr: p, Val: v, Op: op})
	return r
}

// AtomicCAS emits an atomic compare-and-swap on the integer pointee of
// p, returning the value read (equal to old on success).
func (b *Builder) AtomicCAS(p, old, new *Reg) *Reg {
	elem := p.Elem()
	if elem.Kind() != KindInt {
		panic(fmt.Sprintf("ir: atomiccas on non-integer memory through %s", p))
	}
	r := b.tmp(elem)
	b.emit(&AtomicCAS{Dst: r, Ptr: p, Old: old, New: new})
	return r
}

// Fence emits a scheduler-visible memory fence.
func (b *Builder) Fence() { b.emit(&Fence{}) }

// RandInt emits a deterministic-PRNG random draw in [lo, hi].
func (b *Builder) RandInt(lo, hi int64) *Reg {
	r := b.tmp(I64)
	b.emit(&RandInt{Dst: r, Lo: lo, Hi: hi})
	return r
}

// HeapBufSize emits a query of the heap payload size of p.
func (b *Builder) HeapBufSize(p *Reg) *Reg {
	r := b.tmp(I64)
	b.emit(&HeapBufSize{Dst: r, Ptr: p})
	return r
}

// ---------------------------------------------------------------------------
// Structured control-flow helpers

// ForRange builds a counted loop over [lo, hi) with a fresh i64 induction
// register passed to body. The body callback may emit arbitrary control
// flow but must leave the cursor in a block that falls through (the helper
// appends the back-edge). The cursor ends in the loop exit block.
func (b *Builder) ForRange(name string, lo, hi *Reg, body func(i *Reg)) {
	i := b.Reg(name, I64)
	b.MoveTo(i, lo)
	head := b.Block(name + ".head")
	bodyB := b.Block(name + ".body")
	exit := b.Block(name + ".exit")
	b.Br(head)

	b.SetBlock(head)
	c := b.Cmp(CmpSLT, i, hi)
	b.CondBr(c, bodyB, exit)

	b.SetBlock(bodyB)
	body(i)
	one := b.I64(1)
	b.BinTo(i, OpAdd, i, one)
	b.Br(head)

	b.SetBlock(exit)
}

// While builds a loop that evaluates cond at the head and runs body while
// it is true. cond is re-emitted each iteration via the callback.
func (b *Builder) While(name string, cond func() *Reg, body func()) {
	head := b.Block(name + ".head")
	bodyB := b.Block(name + ".body")
	exit := b.Block(name + ".exit")
	b.Br(head)

	b.SetBlock(head)
	c := cond()
	b.CondBr(c, bodyB, exit)

	b.SetBlock(bodyB)
	body()
	b.Br(head)

	b.SetBlock(exit)
}

// If builds a two-armed conditional. Either arm may be nil. The cursor
// ends in the join block.
func (b *Builder) If(c *Reg, then func(), els func()) {
	thenB := b.Block("if.then")
	join := b.Block("if.join")
	elseB := join
	if els != nil {
		elseB = b.Block("if.else")
	}
	b.CondBr(c, thenB, elseB)

	b.SetBlock(thenB)
	if then != nil {
		then()
	}
	b.Br(join)

	if els != nil {
		b.SetBlock(elseB)
		els()
		b.Br(join)
	}
	b.SetBlock(join)
}
