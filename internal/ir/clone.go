package ir

import "fmt"

// Freeze marks the module immutable. A frozen module backs shared,
// concurrent execution: the campaign engine builds each distinct
// (workload, site, variant) module exactly once, freezes it, and hands
// the same *Module to many VMs at once. Module-level mutators (AddFunc,
// AddExtern, AddGlobal, RenameFunc) panic on a frozen module; passes
// that rewrite function bodies (faultinject, opt) must operate on a
// Clone instead. Types are immutable by construction, so sharing them
// across clones is safe.
func (m *Module) Freeze() { m.frozen = true }

// Frozen reports whether Freeze has been called.
func (m *Module) Frozen() bool { return m.frozen }

func (m *Module) mutable(op string) {
	if m.frozen {
		panic("ir: " + op + " on frozen module " + m.Name)
	}
}

// Clone returns a deep copy of the module: globals, functions, blocks,
// instructions, and registers are all fresh, so mutating the clone never
// perturbs the original. The clone is mutable even when m is frozen.
// Types are shared (they are immutable), and register IDs, block indices,
// and allocation-site IDs are preserved, so site enumeration and the
// textual form of the clone are identical to the original's.
func (m *Module) Clone() *Module {
	out := NewModule(m.Name)
	for _, g := range m.Globals {
		ng := &Global{Name: g.Name, Elem: g.Elem}
		if g.Init != nil {
			ng.Init = append([]byte(nil), g.Init...)
		}
		if g.Refs != nil {
			ng.Refs = append([]RefInit(nil), g.Refs...)
		}
		out.Globals = append(out.Globals, ng)
		out.globalIdx[ng.Name] = ng
	}
	// First pass: create every function shell and its registers/blocks so
	// cross-references (register operands, branch targets) can be remapped
	// in the second pass.
	type fnMaps struct {
		regs   map[*Reg]*Reg
		blocks map[*Block]*Block
	}
	maps := make([]fnMaps, len(m.Funcs))
	for fi, f := range m.Funcs {
		nf := &Func{
			Name:      f.Name,
			Sig:       f.Sig,
			External:  f.External,
			nextReg:   f.nextReg,
			nextBlock: f.nextBlock,
		}
		fm := fnMaps{regs: make(map[*Reg]*Reg, f.nextReg), blocks: make(map[*Block]*Block, len(f.Blocks))}
		cloneReg := func(r *Reg) *Reg {
			nr := &Reg{ID: r.ID, Name: r.Name, Type: r.Type}
			fm.regs[r] = nr
			return nr
		}
		for _, p := range f.Params {
			nf.Params = append(nf.Params, cloneReg(p))
		}
		for _, b := range f.Blocks {
			nb := &Block{Name: b.Name, Index: b.Index}
			fm.blocks[b] = nb
			nf.Blocks = append(nf.Blocks, nb)
		}
		if f.blockNames != nil {
			nf.blockNames = make(map[string]bool, len(f.blockNames))
			for k, v := range f.blockNames {
				nf.blockNames[k] = v
			}
		}
		// Registers defined mid-function (not parameters) are discovered
		// while cloning instructions; cloneReg is re-entered lazily there
		// via the maps captured in fnMaps.
		maps[fi] = fm
		out.Funcs = append(out.Funcs, nf)
		out.funcIdx[nf.Name] = nf
	}
	for fi, f := range m.Funcs {
		fm := maps[fi]
		nf := out.Funcs[fi]
		r := func(old *Reg) *Reg {
			if old == nil {
				return nil
			}
			if nr, ok := fm.regs[old]; ok {
				return nr
			}
			nr := &Reg{ID: old.ID, Name: old.Name, Type: old.Type}
			fm.regs[old] = nr
			return nr
		}
		bl := func(old *Block) *Block {
			nb, ok := fm.blocks[old]
			if !ok {
				panic(fmt.Sprintf("ir: clone of %s references foreign block %s", f.Name, old.Name))
			}
			return nb
		}
		for bi, b := range f.Blocks {
			nb := nf.Blocks[bi]
			nb.Instrs = make([]Instr, len(b.Instrs))
			for ii, in := range b.Instrs {
				nb.Instrs[ii] = cloneInstr(in, r, bl)
			}
		}
	}
	return out
}

// cloneInstr copies one instruction, remapping register and block
// references through r and bl.
func cloneInstr(in Instr, r func(*Reg) *Reg, bl func(*Block) *Block) Instr {
	switch i := in.(type) {
	case *ConstInt:
		return &ConstInt{Dst: r(i.Dst), Val: i.Val}
	case *ConstFloat:
		return &ConstFloat{Dst: r(i.Dst), Val: i.Val}
	case *ConstNull:
		return &ConstNull{Dst: r(i.Dst)}
	case *Move:
		return &Move{Dst: r(i.Dst), Src: r(i.Src)}
	case *BinOp:
		return &BinOp{Dst: r(i.Dst), X: r(i.X), Y: r(i.Y), Op: i.Op}
	case *Cmp:
		return &Cmp{Dst: r(i.Dst), Op: i.Op, X: r(i.X), Y: r(i.Y)}
	case *Convert:
		return &Convert{Dst: r(i.Dst), Src: r(i.Src)}
	case *Alloc:
		return &Alloc{Dst: r(i.Dst), Kind: i.Kind, Elem: i.Elem, Count: r(i.Count), Site: i.Site}
	case *Free:
		return &Free{Ptr: r(i.Ptr)}
	case *Load:
		return &Load{Dst: r(i.Dst), Ptr: r(i.Ptr)}
	case *Store:
		return &Store{Ptr: r(i.Ptr), Val: r(i.Val)}
	case *FieldAddr:
		return &FieldAddr{Dst: r(i.Dst), Ptr: r(i.Ptr), Field: i.Field}
	case *IndexAddr:
		return &IndexAddr{Dst: r(i.Dst), Ptr: r(i.Ptr), Index: r(i.Index)}
	case *Bitcast:
		return &Bitcast{Dst: r(i.Dst), Src: r(i.Src)}
	case *PtrToInt:
		return &PtrToInt{Dst: r(i.Dst), Src: r(i.Src)}
	case *IntToPtr:
		return &IntToPtr{Dst: r(i.Dst), Src: r(i.Src)}
	case *FuncAddr:
		return &FuncAddr{Dst: r(i.Dst), Fn: i.Fn}
	case *GlobalAddr:
		return &GlobalAddr{Dst: r(i.Dst), G: i.G}
	case *Call:
		nc := &Call{Dst: r(i.Dst), Callee: i.Callee, CalleePtr: r(i.CalleePtr)}
		if i.Args != nil {
			nc.Args = make([]*Reg, len(i.Args))
			for k, a := range i.Args {
				nc.Args[k] = r(a)
			}
		}
		return nc
	case *Ret:
		return &Ret{Val: r(i.Val)}
	case *Br:
		return &Br{Target: bl(i.Target)}
	case *CondBr:
		return &CondBr{Cond: r(i.Cond), True: bl(i.True), False: bl(i.False)}
	case *Assert:
		return &Assert{X: r(i.X), Y: r(i.Y)}
	case *FaultPoint:
		return &FaultPoint{Site: i.Site}
	case *RandInt:
		return &RandInt{Dst: r(i.Dst), Lo: i.Lo, Hi: i.Hi}
	case *HeapBufSize:
		return &HeapBufSize{Dst: r(i.Dst), Ptr: r(i.Ptr)}
	case *Output:
		return &Output{Val: r(i.Val), Mode: i.Mode}
	case *Exit:
		return &Exit{Val: r(i.Val)}
	case *AtomicRMW:
		return &AtomicRMW{Dst: r(i.Dst), Ptr: r(i.Ptr), Val: r(i.Val), Op: i.Op, RPtr: r(i.RPtr)}
	case *AtomicCAS:
		return &AtomicCAS{Dst: r(i.Dst), Ptr: r(i.Ptr), Old: r(i.Old), New: r(i.New), RPtr: r(i.RPtr)}
	case *Fence:
		return &Fence{}
	default:
		panic(fmt.Sprintf("ir: cloneInstr: unknown instruction %T", in))
	}
}
