package ir

import (
	"strings"
	"testing"
)

// TestInstructionStrings covers the printer for every instruction kind;
// the parser tests rely on these exact forms.
func TestInstructionStrings(t *testing.T) {
	m := NewModule("s")
	m.AddGlobal("g", I64)
	b := NewBuilder(m)
	f := b.Function("main", I64, nil)
	_ = f
	i64r := b.F.NewReg("x", I64)
	f64r := b.F.NewReg("f", F64)
	ptr := b.F.NewReg("p", Ptr(I64))
	sptr := b.F.NewReg("s", Ptr(Struct(I64, Ptr(I8))))
	i1r := b.F.NewReg("c", I1)
	blk := &Block{Name: "tgt"}

	tests := []struct {
		in   Instr
		want string
	}{
		{&ConstInt{Dst: i64r, Val: 42}, "= const i64 42"},
		{&ConstFloat{Dst: f64r, Val: 1.5}, "= const f64 1.5"},
		{&ConstNull{Dst: ptr}, "= null i64*"},
		{&Move{Dst: i64r, Src: i64r}, "= move"},
		{&BinOp{Dst: i64r, X: i64r, Y: i64r, Op: OpAdd}, "= add"},
		{&BinOp{Dst: f64r, X: f64r, Y: f64r, Op: OpFMul}, "= fmul"},
		{&Cmp{Dst: i1r, Op: CmpSLT, X: i64r, Y: i64r}, "= cmp slt"},
		{&Convert{Dst: f64r, Src: i64r}, "to f64"},
		{&Alloc{Dst: ptr, Kind: AllocHeap, Elem: I64, Site: 3}, "malloc i64 ; site 3"},
		{&Alloc{Dst: ptr, Kind: AllocStack, Elem: I64, Count: i64r, Site: 4}, "alloca i64, count"},
		{&Free{Ptr: ptr}, "free"},
		{&Load{Dst: i64r, Ptr: ptr}, "= load i64,"},
		{&Store{Ptr: ptr, Val: i64r}, "store"},
		{&FieldAddr{Dst: ptr, Ptr: sptr, Field: 0}, "fieldaddr"},
		{&IndexAddr{Dst: ptr, Ptr: ptr, Index: i64r}, "indexaddr"},
		{&Bitcast{Dst: ptr, Src: ptr}, "bitcast"},
		{&PtrToInt{Dst: i64r, Src: ptr}, "ptrtoint"},
		{&IntToPtr{Dst: ptr, Src: i64r}, "inttoptr"},
		{&FuncAddr{Dst: ptr, Fn: "main"}, "funcaddr @main"},
		{&GlobalAddr{Dst: ptr, G: "g"}, "globaladdr @g"},
		{&Call{Dst: i64r, Callee: "main"}, "= call @main()"},
		{&Call{CalleePtr: ptr, Args: []*Reg{i64r}}, "call %p."},
		{&Ret{Val: i64r}, "ret %x"},
		{&Ret{}, "ret"},
		{&Br{Target: blk}, "br .tgt"},
		{&CondBr{Cond: i1r, True: blk, False: blk}, "condbr"},
		{&Assert{X: i64r, Y: i64r}, "assert"},
		{&FaultPoint{Site: 7}, "faultpoint 7"},
		{&RandInt{Dst: i64r, Lo: 1, Hi: 20}, "randint 1, 20"},
		{&HeapBufSize{Dst: i64r, Ptr: ptr}, "heapbufsize"},
		{&Output{Val: i64r, Mode: OutInt}, "output int"},
		{&Output{Val: f64r, Mode: OutFloat}, "output float"},
		{&Exit{Val: i64r}, "exit"},
		{&Exit{}, "exit"},
	}
	for _, tc := range tests {
		got := tc.in.String()
		if !strings.Contains(got, tc.want) {
			t.Errorf("%T: %q does not contain %q", tc.in, got, tc.want)
		}
	}
}

func TestDefCoversAllDefiningInstructions(t *testing.T) {
	m := NewModule("d")
	b := NewBuilder(m)
	b.Function("main", I64, nil)
	r := b.F.NewReg("r", I64)
	p := b.F.NewReg("p", Ptr(I64))
	defining := []Instr{
		&ConstInt{Dst: r}, &ConstFloat{Dst: r}, &ConstNull{Dst: p},
		&Move{Dst: r, Src: r}, &BinOp{Dst: r, X: r, Y: r, Op: OpAdd},
		&Cmp{Dst: r, X: r, Y: r, Op: CmpEQ}, &Convert{Dst: r, Src: r},
		&Alloc{Dst: p, Elem: I64}, &Load{Dst: r, Ptr: p},
		&FieldAddr{Dst: p, Ptr: p}, &IndexAddr{Dst: p, Ptr: p, Index: r},
		&Bitcast{Dst: p, Src: p}, &PtrToInt{Dst: r, Src: p},
		&IntToPtr{Dst: p, Src: r}, &FuncAddr{Dst: p}, &GlobalAddr{Dst: p},
		&Call{Dst: r}, &RandInt{Dst: r}, &HeapBufSize{Dst: r, Ptr: p},
	}
	for _, in := range defining {
		if Def(in) == nil {
			t.Errorf("%T: Def returned nil", in)
		}
	}
	nonDefining := []Instr{
		&Free{Ptr: p}, &Store{Ptr: p, Val: r}, &Ret{}, &Br{},
		&CondBr{Cond: r}, &Assert{X: r, Y: r}, &FaultPoint{},
		&Output{Val: r}, &Exit{},
	}
	for _, in := range nonDefining {
		if Def(in) != nil {
			t.Errorf("%T: Def should be nil", in)
		}
	}
}

func TestIsTerminator(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	b.Function("main", I64, nil)
	r := b.F.NewReg("r", I64)
	terms := []Instr{&Ret{}, &Br{}, &CondBr{Cond: r}, &Exit{}}
	for _, in := range terms {
		if !IsTerminator(in) {
			t.Errorf("%T must be a terminator", in)
		}
	}
	if IsTerminator(&ConstInt{Dst: r}) || IsTerminator(&Free{Ptr: r}) {
		t.Error("non-terminators misclassified")
	}
}
