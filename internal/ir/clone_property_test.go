package ir_test

import (
	"reflect"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/faultinject"
	"dpmr/internal/ir"
	"dpmr/internal/workloads"
)

// propertyModules returns the richest real modules the repo has — every
// workload, a fault-injected build, and a DPMR transformation — so the
// clone properties are checked against all instruction kinds the
// pipeline actually produces, not a hand-picked fixture.
func propertyModules(t *testing.T) map[string]*ir.Module {
	t.Helper()
	out := make(map[string]*ir.Module)
	for _, w := range workloads.All() {
		out[w.Name] = w.Build()
	}
	base := workloads.All()[0].Build()
	if sites := faultinject.Enumerate(base, faultinject.ImmediateFree); len(sites) > 0 {
		base.Freeze()
		fm, err := faultinject.Apply(base, sites[0])
		if err != nil {
			t.Fatal(err)
		}
		out["injected"] = fm
	}
	xm, err := dpmr.Transform(workloads.All()[1].Build(), dpmr.Config{
		Design: dpmr.MDS, Diversity: dpmr.RearrangeHeap{}, Policy: dpmr.TemporalHalf, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["dpmr"] = xm
	return out
}

// mutateEverything perturbs every mutable field reachable from the
// module — every global, function, block, instruction, and register —
// via reflection, so the test keeps covering instruction kinds added
// after it was written. Shared immutable state (ir.Type values) is left
// alone: type sharing across clones is documented behavior.
func mutateEverything(m *ir.Module) {
	seenRegs := make(map[*ir.Reg]bool)
	for _, g := range m.Globals {
		g.Name += "~"
		for i := range g.Init {
			g.Init[i] ^= 0xff
		}
		for i := range g.Refs {
			g.Refs[i].Offset += 1000
			g.Refs[i].Global += "~"
			g.Refs[i].Func += "~"
		}
	}
	for _, f := range m.Funcs {
		f.Name += "~"
		for _, p := range f.Params {
			mutateReg(p, seenRegs)
		}
		for _, b := range f.Blocks {
			b.Name += "~"
			b.Index += 1000
			for _, in := range b.Instrs {
				mutateInstr(in, seenRegs)
			}
		}
	}
}

func mutateReg(r *ir.Reg, seen map[*ir.Reg]bool) {
	if r == nil || seen[r] {
		return
	}
	seen[r] = true
	r.ID += 100000
	r.Name += "~"
}

var regType = reflect.TypeOf((*ir.Reg)(nil))
var blockType = reflect.TypeOf((*ir.Block)(nil))
var typeType = reflect.TypeOf((*ir.Type)(nil)).Elem()

func mutateInstr(in ir.Instr, seen map[*ir.Reg]bool) {
	v := reflect.ValueOf(in).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if !f.CanSet() {
			continue
		}
		switch {
		case f.Type() == regType:
			if !f.IsNil() {
				mutateReg(f.Interface().(*ir.Reg), seen)
			}
		case f.Type() == blockType:
			if !f.IsNil() {
				f.Interface().(*ir.Block).Name += "~"
			}
		case f.Type().Implements(typeType) || f.Type() == typeType:
			// Types are immutable and shared by design; skip.
		case f.Kind() == reflect.Slice && f.Type().Elem() == regType:
			for k := 0; k < f.Len(); k++ {
				if !f.Index(k).IsNil() {
					mutateReg(f.Index(k).Interface().(*ir.Reg), seen)
				}
			}
		case f.Kind() == reflect.String:
			f.SetString(f.String() + "~")
		case f.Kind() == reflect.Bool:
			f.SetBool(!f.Bool())
		case f.Kind() >= reflect.Int && f.Kind() <= reflect.Int64:
			f.SetInt(f.Int() + 1000)
		case f.Kind() >= reflect.Uint && f.Kind() <= reflect.Uint64:
			f.SetUint(f.Uint() + 1)
		case f.Kind() == reflect.Float64 || f.Kind() == reflect.Float32:
			f.SetFloat(f.Float() + 1000)
		}
	}
}

// TestPropertyCloneIsDeep is the clone depth property over real
// pipeline modules: freeze the original, clone it, perturb every field
// of every instruction and global of the clone, and require the frozen
// original's textual form to be byte-stable. Any shallowly copied field
// shows up as a diff here.
func TestPropertyCloneIsDeep(t *testing.T) {
	for name, m := range propertyModules(t) {
		name, m := name, m
		t.Run(name, func(t *testing.T) {
			m.Freeze()
			before := m.String()
			c := m.Clone()
			if got := c.String(); got != before {
				t.Fatalf("clone text differs from original before any mutation")
			}
			if c.Frozen() {
				t.Error("clone of a frozen module must be mutable")
			}
			mutateEverything(c)
			if c.String() == before {
				t.Fatal("mutation did not change the clone; the property would be vacuous")
			}
			if got := m.String(); got != before {
				t.Errorf("mutating the clone perturbed the frozen original:\n--- before ---\n%.2000s\n--- after ---\n%.2000s", before, got)
			}
			if !m.Frozen() {
				t.Error("original lost its frozen mark")
			}
		})
	}
}

// TestPropertyCloneOfMutatedCloneIsIndependent chains the property: a
// clone of a (mutated) clone is again fully independent, so clones can
// seed further build stages without aliasing.
func TestPropertyCloneOfMutatedCloneIsIndependent(t *testing.T) {
	m := workloads.All()[0].Build()
	c1 := m.Clone()
	mutateEverything(c1)
	snap := c1.String()
	c2 := c1.Clone()
	mutateEverything(c2)
	if got := c1.String(); got != snap {
		t.Error("mutating the second-generation clone perturbed the first")
	}
}
