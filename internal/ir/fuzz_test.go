package ir_test

import (
	"os"
	"path/filepath"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/ir"
	"dpmr/internal/workloads"
)

// FuzzParse fuzzes the IR text parser. The contract is the one Parse
// documents: malformed input returns an error, never a panic — including
// input that would trip module-construction invariants (duplicate names,
// non-scalar registers, out-of-range field indices). Accepted input must
// additionally survive the printer/parser round trip: the printed form
// of a parsed module re-parses.
//
// Seeds are the printer's own output over every workload and a DPMR
// transformation of one — the richest real module texts the repo has —
// plus small handwritten texts exercising each grammar production.
func FuzzParse(f *testing.F) {
	for _, w := range workloads.All() {
		f.Add(w.Build().String())
	}
	if xm, err := dpmr.Transform(workloads.All()[0].Build(), dpmr.Config{
		Design: dpmr.SDS, Diversity: dpmr.RearrangeHeap{}, Policy: dpmr.AllLoads{}, Seed: 1,
	}); err == nil {
		f.Add(xm.String())
	}
	// The DPMR golden files are transformed function bodies; as seeds
	// they exercise the instruction grammar even though they lack the
	// module header.
	if goldens, err := filepath.Glob(filepath.Join("..", "dpmr", "testdata", "*.golden")); err == nil {
		for _, g := range goldens {
			if data, err := os.ReadFile(g); err == nil {
				f.Add(string(data))
				f.Add("module g\n" + string(data))
			}
		}
	}
	f.Add("module m\n")
	// Regression: a whitespace-only module name trims to "" whose printed
	// form is bare "module"; both spellings must parse and round-trip.
	f.Add("module \v")
	f.Add("module")
	f.Add("module m\ntype %t = { i64; i8* }\nglobal @g : %t\n  ref 0 @g\n")
	f.Add("module m\ntype %u.v = union{ i64; f64 }\n")
	f.Add("module m\nextern func @e(%p.0: i8*) void\n")
	f.Add("module m\nfunc @f(%x.0: i64) i64 {\n.entry:\n  %r1 = const i64 2\n  %r2 = add %x.0, %r1\n  ret %r2\n}\n")
	f.Add("module m\nfunc @f() void {\n.a:\n  br .b\n.b:\n  %c = const i1 1\n  condbr %c, .a, .b\n}\n")
	f.Add("module m\nfunc @f() void {\n.entry:\n  %n = const i64 3\n  %p = malloc [4 x i64], count %n ; site 7\n  %q = indexaddr %p, %n\n  free %p\n  ret\n}\n")
	f.Add("module m\nfunc @f() void {\n.entry:\n  %x = randint 1, 6\n  output int %x\n  exit %x\n}\n")

	f.Fuzz(func(t *testing.T, text string) {
		m, err := ir.Parse(text)
		if err != nil {
			return
		}
		printed := m.String()
		if _, err := ir.Parse(printed); err != nil {
			t.Fatalf("printed form of accepted input does not re-parse: %v\n--- input ---\n%q\n--- printed ---\n%q", err, text, printed)
		}
	})
}
