// Package consist is the offline consistency checker over the per-thread
// shared-memory traces recorded by mem.TraceRec: the new detection axis
// concurrent trials add on top of the DPMR outcome taxonomy.
//
// The interleaving scheduler serializes all execution, so the recorder's
// global sequence numbers totally order every shared-tier access, and the
// correctness condition is sharp: a read of location (addr, width) must
// return the value of the most recent write to that location in the total
// order. That is strictly stronger than PRAM/causal consistency — any
// PRAM violation over these traces is also a violation here — which is
// exactly what makes it a useful oracle: a fault injection that corrupts
// shared memory between a write and a dependent read surfaces as a named
// violation even when the program then exits normally (a silent failure
// under the paper's §3.6 taxonomy).
//
// Two violation classes are distinguished. A stale read returns a value
// some older write put at the location (the signature of lost updates and
// reordering); a thin-air read returns a value no traced write ever put
// there (the signature of wild corruption, replica divergence, or trace
// loss). A location's reads are unconstrained until its first traced
// write — initial images (zeroed memory, global init bytes) are written
// outside the traced window, so constraining first reads would flag
// correct programs.
//
// The checker is two-valued by construction: a trace either verifies
// clean (no violations) or yields a non-empty violation list. Truncation
// and failpoint drops are surfaced as report metadata, never as a third
// verdict.
package consist

import (
	"fmt"
	"sort"

	"dpmr/internal/mem"
)

// Violation classes.
const (
	ClassStaleRead = "stale-read"
	ClassThinAir   = "thin-air"
)

// Violation is one read that contradicts the traced write history.
type Violation struct {
	Class    string `json:"class"`
	Thread   int    `json:"thread"`
	Seq      uint64 `json:"seq"` // the read's global sequence number
	Addr     uint64 `json:"addr"`
	Width    uint8  `json:"width"`
	Got      uint64 `json:"got"`      // value the read returned
	Want     uint64 `json:"want"`     // most recent write's value
	WriteSeq uint64 `json:"writeSeq"` // that write's sequence number
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: thread %d read [%#x]/%d = %#x at seq %d, want %#x (write seq %d)",
		v.Class, v.Thread, v.Addr, v.Width, v.Got, v.Seq, v.Want, v.WriteSeq)
}

// Report is one trace's checking outcome.
type Report struct {
	Violations []Violation
	Events     uint64 // accesses checked
	Truncated  bool   // a thread's trace buffer overflowed
	Dropped    uint64 // events discarded by the mem/trace-drop failpoint
}

// Clean reports whether the trace verified without violations.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

// Check verifies a recorder's trace. Nil recorders verify clean (tracing
// disabled records nothing to contradict).
func Check(t *mem.TraceRec) *Report {
	if t == nil {
		return &Report{}
	}
	threads := make([][]mem.TraceEvent, t.Threads())
	for i := range threads {
		threads[i] = t.Thread(i)
	}
	r := CheckEvents(threads)
	r.Truncated = t.Truncated()
	r.Dropped = t.Dropped()
	return r
}

// taggedEvent carries an event's thread through the total-order merge.
type taggedEvent struct {
	mem.TraceEvent
	thread int
}

// locKey identifies one checked location. Widths are part of the key:
// the workloads' shared cells are accessed at one fixed width each, and
// folding mixed-width aliasing into byte-granular tracking would buy
// generality the IR's atomics (integer slots, exact-width access) never
// exercise.
type locKey struct {
	addr  uint64
	width uint8
}

// locState is a location's traced write history.
type locState struct {
	cur     uint64 // most recent write's value
	curSeq  uint64
	written bool
	older   map[uint64]struct{} // values of superseded writes
}

// CheckEvents verifies hand-assembled per-thread traces (the test
// surface; Check wraps it for recorder output). Events are merged into
// the global total order by sequence number; within-thread order must
// already be program order.
func CheckEvents(threads [][]mem.TraceEvent) *Report {
	r := &Report{}
	var all []taggedEvent
	for tid, evs := range threads {
		for _, e := range evs {
			all = append(all, taggedEvent{TraceEvent: e, thread: tid})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	locs := make(map[locKey]*locState)
	for _, e := range all {
		r.Events++
		k := locKey{addr: e.Addr, width: e.Width}
		st := locs[k]
		switch e.Op {
		case mem.TraceStore:
			if st == nil {
				st = &locState{}
				locs[k] = st
			}
			if st.written && st.cur != e.Val {
				if st.older == nil {
					st.older = make(map[uint64]struct{})
				}
				st.older[st.cur] = struct{}{}
			}
			st.cur, st.curSeq, st.written = e.Val, e.Seq, true
		case mem.TraceLoad:
			if st == nil || !st.written {
				continue // unconstrained before the first traced write
			}
			if e.Val == st.cur {
				continue
			}
			class := ClassThinAir
			if _, ok := st.older[e.Val]; ok {
				class = ClassStaleRead
			}
			r.Violations = append(r.Violations, Violation{
				Class: class, Thread: e.thread, Seq: e.Seq,
				Addr: e.Addr, Width: e.Width,
				Got: e.Val, Want: st.cur, WriteSeq: st.curSeq,
			})
		}
	}
	return r
}
