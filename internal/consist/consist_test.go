package consist

import (
	"testing"

	"dpmr/internal/mem"
)

func ld(seq, addr uint64, w uint8, val uint64) mem.TraceEvent {
	return mem.TraceEvent{Seq: seq, Op: mem.TraceLoad, Addr: addr, Width: w, Val: val}
}

func st(seq, addr uint64, w uint8, val uint64) mem.TraceEvent {
	return mem.TraceEvent{Seq: seq, Op: mem.TraceStore, Addr: addr, Width: w, Val: val}
}

func TestCleanTrace(t *testing.T) {
	// Two threads, interleaved writes and reads, every read sees the most
	// recent write in seq order.
	r := CheckEvents([][]mem.TraceEvent{
		{st(0, 0x100, 8, 1), ld(2, 0x100, 8, 2), st(4, 0x108, 8, 7)},
		{st(1, 0x100, 8, 2), ld(3, 0x100, 8, 2), ld(5, 0x108, 8, 7)},
	})
	if !r.Clean() {
		t.Fatalf("expected clean, got %v", r.Violations)
	}
	if r.Events != 6 {
		t.Fatalf("want 6 events checked, got %d", r.Events)
	}
}

func TestStaleRead(t *testing.T) {
	// The read at seq 3 returns the superseded value 1: a lost update.
	r := CheckEvents([][]mem.TraceEvent{
		{st(0, 0x200, 8, 1), st(1, 0x200, 8, 2)},
		{ld(3, 0x200, 8, 1)},
	})
	if r.Clean() {
		t.Fatal("expected a violation")
	}
	v := r.Violations[0]
	if v.Class != ClassStaleRead {
		t.Fatalf("want %s, got %s", ClassStaleRead, v.Class)
	}
	if v.Thread != 1 || v.Got != 1 || v.Want != 2 || v.WriteSeq != 1 {
		t.Fatalf("bad violation detail: %+v", v)
	}
}

func TestThinAirRead(t *testing.T) {
	// The read returns 0xdead, which no traced write ever stored.
	r := CheckEvents([][]mem.TraceEvent{
		{st(0, 0x300, 4, 5), ld(1, 0x300, 4, 0xdead)},
	})
	if r.Clean() {
		t.Fatal("expected a violation")
	}
	if got := r.Violations[0].Class; got != ClassThinAir {
		t.Fatalf("want %s, got %s", ClassThinAir, got)
	}
}

func TestFirstReadUnconstrained(t *testing.T) {
	// Reads before the first traced write see the untraced initial image
	// and must not be flagged; once a write lands, reads are constrained.
	r := CheckEvents([][]mem.TraceEvent{
		{ld(0, 0x400, 8, 0xabc), st(1, 0x400, 8, 9), ld(2, 0x400, 8, 0xabc)},
	})
	if len(r.Violations) != 1 {
		t.Fatalf("want exactly the post-write read flagged, got %v", r.Violations)
	}
	if r.Violations[0].Seq != 2 {
		t.Fatalf("wrong read flagged: %+v", r.Violations[0])
	}
}

func TestWidthsAreDistinctLocations(t *testing.T) {
	// A 4-byte read of a cell only ever written at 8 bytes is a different
	// location key: unconstrained, not a violation.
	r := CheckEvents([][]mem.TraceEvent{
		{st(0, 0x500, 8, 0x1122334455667788), ld(1, 0x500, 4, 0x55667788)},
	})
	if !r.Clean() {
		t.Fatalf("expected clean, got %v", r.Violations)
	}
}

func TestRepeatedValueNotStale(t *testing.T) {
	// Writing the same value twice must not register it as "older": a
	// read returning it still matches the current write.
	r := CheckEvents([][]mem.TraceEvent{
		{st(0, 0x600, 8, 3), st(1, 0x600, 8, 3), ld(2, 0x600, 8, 3)},
	})
	if !r.Clean() {
		t.Fatalf("expected clean, got %v", r.Violations)
	}
}

// TestTwoValued: every checked trace is either clean or carries at least
// one named violation — metadata (truncation, drops) never manufactures
// a third verdict.
func TestTwoValued(t *testing.T) {
	s := mem.NewSpace(mem.Config{})
	tr := mem.NewTraceRec(1, 2)
	s.SetTrace(tr)
	addr, trap := s.Malloc(8)
	if trap != nil {
		t.Fatal(trap)
	}
	for i := 0; i < 5; i++ {
		// Overflow the 2-event buffer: the trace truncates.
		if trap := s.Store(addr, 8, uint64(i)); trap != nil {
			t.Fatal(trap)
		}
	}
	r := Check(tr)
	if !r.Truncated {
		t.Fatal("expected truncation metadata")
	}
	if !r.Clean() {
		t.Fatalf("truncation must not be a violation: %v", r.Violations)
	}
}

func TestNilRecorderClean(t *testing.T) {
	if r := Check(nil); !r.Clean() || r.Events != 0 {
		t.Fatalf("nil recorder must verify clean, got %+v", r)
	}
}
