package dpmr

import (
	"errors"
	"fmt"
	"math/rand"

	"dpmr/internal/ir"
	"dpmr/internal/shadow"
)

// Transform applies the DPMR transformation to src and returns a new
// module. The input module is not modified. The transformation implements
// Tables 2.6/2.7 (SDS) and Tables 4.3/4.4 (MDS), the main() handling of
// §3.1.1, the diversity transformations of Table 2.8, and the comparison
// policies of §2.7.
func Transform(src *ir.Module, cfg Config) (*ir.Module, error) {
	cfg = cfg.withDefaults()
	if src.Func(MainAugName) != nil {
		return nil, fmt.Errorf("dpmr: module already carries a %s function — refusing to transform a transformed module", MainAugName)
	}
	if !cfg.SkipRestrictionCheck {
		if err := VerifyRestrictions(src, cfg.Design); err != nil {
			return nil, err
		}
	}
	t := &transformer{
		cfg:  cfg,
		comp: shadow.NewComputer(cfg.Design),
		src:  src,
		dst:  ir.NewModule(src.Name + ".dpmr"),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	t.b = ir.NewBuilder(t.dst)
	cfg.Policy.Prepare(t.dst)
	cfg.Diversity.Prepare(t.dst)

	t.emitGlobals()
	t.declareFuncs()
	for _, f := range src.Funcs {
		if f.External {
			continue
		}
		t.fillBody(f)
	}
	t.synthesizeMain()
	if len(t.errs) > 0 {
		return nil, errors.Join(t.errs...)
	}
	if err := ir.Verify(t.dst); err != nil {
		return nil, fmt.Errorf("dpmr: transformed module fails verification: %w", err)
	}
	return t.dst, nil
}

type transformer struct {
	cfg  Config
	comp *shadow.Computer
	src  *ir.Module
	dst  *ir.Module
	rng  *rand.Rand
	b    *ir.Builder

	// Per-function state.
	srcFn     *ir.Func
	dstFn     *ir.Func
	app       map[int]*ir.Reg
	rop       map[int]*ir.Reg
	nsop      map[int]*ir.Reg
	blockMap  map[*ir.Block]*ir.Block
	rvSlot    *ir.Reg // SDS rvSop / MDS rvRopPtr parameter
	callSlots map[*ir.Call]*ir.Reg

	errs []error
}

func (t *transformer) errf(format string, args ...any) {
	loc := ""
	if t.srcFn != nil {
		loc = "@" + t.srcFn.Name + ": "
	}
	t.errs = append(t.errs, fmt.Errorf("dpmr: "+loc+format, args...))
}

// ins appends an instruction at the builder's current cursor.
func (t *transformer) ins(in ir.Instr) { t.b.B.Append(in) }

func (t *transformer) sds() bool { return t.cfg.Design == SDS }

// excludedReg reports whether an original pointer register is excluded
// from replication (Chapter 5 DSA refinement).
func (t *transformer) excludedReg(r *ir.Reg) bool {
	return t.cfg.Exclude.Reg(t.srcFn.Name, r.ID)
}

// ---------------------------------------------------------------------------
// Register mapping: γ of Equation 2.3/4.1 at the register level.

// x returns the application register mapped from original register r.
func (t *transformer) x(r *ir.Reg) *ir.Reg {
	if m := t.app[r.ID]; m != nil {
		return m
	}
	m := t.dstFn.NewReg(r.Name, t.comp.Aug(r.Type))
	t.app[r.ID] = m
	return m
}

// xr returns the ROP companion of pointer register r.
func (t *transformer) xr(r *ir.Reg) *ir.Reg {
	if m := t.rop[r.ID]; m != nil {
		return m
	}
	name := r.Name
	if name != "" {
		name += "_r"
	}
	m := t.dstFn.NewReg(name, t.comp.Aug(r.Type))
	t.rop[r.ID] = m
	return m
}

// xs returns the NSOP companion of pointer register r (SDS only).
func (t *transformer) xs(r *ir.Reg) *ir.Reg {
	if m := t.nsop[r.ID]; m != nil {
		return m
	}
	pt, ok := r.Type.(*ir.PointerType)
	if !ok {
		panic("dpmr: NSOP of non-pointer register")
	}
	name := r.Name
	if name != "" {
		name += "_s"
	}
	m := t.dstFn.NewReg(name, nsopTypeFor(t.comp, pt))
	t.nsop[r.ID] = m
	return m
}

// nsopIsTyped reports whether r's NSOP companion carries a usable shadow
// struct pointer (rather than void*).
func (t *transformer) nsopIsTyped(r *ir.Reg) bool {
	pt := r.Type.(*ir.PointerType)
	return t.comp.ShadowAug(pt.Elem) != nil
}

// ---------------------------------------------------------------------------
// Globals (§2.4 global variable initialization)

func (t *transformer) emitGlobals() {
	for _, g := range t.src.Globals {
		augElem := t.comp.Aug(g.Elem)
		app := t.dst.AddGlobal(g.Name, augElem)
		app.Init = cloneBytes(g.Init)
		app.Refs = append([]ir.RefInit(nil), g.Refs...)

		rep := t.dst.AddGlobal(g.Name+replicaSuffix, augElem)
		rep.Init = cloneBytes(g.Init)
		for _, ref := range g.Refs {
			nref := ref
			if t.cfg.Design == MDS && ref.Global != "" {
				// MDS replica memory holds replica pointers.
				nref.Global = ref.Global + replicaSuffix
			}
			// SDS replica memory holds identical (comparable) pointers.
			rep.Refs = append(rep.Refs, nref)
		}

		if !t.sds() {
			continue
		}
		sat := t.comp.ShadowAug(g.Elem)
		if sat == nil {
			continue
		}
		sdw := t.dst.AddGlobal(g.Name+shadowSuffix, sat)
		for _, ref := range g.Refs {
			ropOff, nsopOff, ok := shadowRefOffsets(t.comp, g.Elem, ref.Offset)
			if !ok {
				t.errf("global %s: cannot map initializer at offset %d into shadow layout", g.Name, ref.Offset)
				continue
			}
			if ref.Global != "" {
				sdw.Refs = append(sdw.Refs, ir.RefInit{Offset: ropOff, Global: ref.Global + replicaSuffix})
				if target := t.src.Global(ref.Global); target != nil && t.comp.ShadowAug(target.Elem) != nil {
					sdw.Refs = append(sdw.Refs, ir.RefInit{Offset: nsopOff, Global: ref.Global + shadowSuffix})
				}
			} else if ref.Func != "" {
				// Function pointers share the application address as
				// their ROP; the NSOP stays null (§2.4 address of a
				// function).
				sdw.Refs = append(sdw.Refs, ir.RefInit{Offset: ropOff, Func: t.funcName(ref.Func)})
			}
		}
	}
}

// shadowRefOffsets maps the byte offset of a pointer inside type t to the
// byte offsets of its ROP and NSOP inside st(at(t)).
func shadowRefOffsets(comp *shadow.Computer, t ir.Type, off int) (ropOff, nsopOff int, ok bool) {
	sat := comp.ShadowAug(t)
	if sat == nil {
		return 0, 0, false
	}
	switch tt := t.(type) {
	case *ir.PointerType:
		if off != 0 {
			return 0, 0, false
		}
		ss := sat.(*ir.StructType)
		return ss.Offset(0), ss.Offset(1), true
	case *ir.StructType:
		ss := sat.(*ir.StructType)
		for i := 0; i < tt.NumFields(); i++ {
			fo := tt.Offset(i)
			f := tt.Field(i)
			if off < fo || off >= fo+f.Size() {
				continue
			}
			if comp.ShadowAug(f) == nil {
				return 0, 0, false
			}
			si := comp.Phi(tt, i)
			r, n, ok := shadowRefOffsets(comp, f, off-fo)
			if !ok {
				return 0, 0, false
			}
			return ss.Offset(si) + r, ss.Offset(si) + n, true
		}
		return 0, 0, false
	case *ir.ArrayType:
		stride := paddedOf(tt.Elem)
		idx := off / stride
		satArr := sat.(*ir.ArrayType)
		sstride := paddedOf(satArr.Elem)
		r, n, ok := shadowRefOffsets(comp, tt.Elem, off%stride)
		if !ok {
			return 0, 0, false
		}
		return idx*sstride + r, idx*sstride + n, true
	default:
		return 0, 0, false
	}
}

func paddedOf(t ir.Type) int {
	size := t.Size()
	if a := t.Align(); a > 1 {
		size = (size + a - 1) / a * a
	}
	if size == 0 {
		size = 1
	}
	return size
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// ---------------------------------------------------------------------------
// Function declarations

// funcName maps an original callee name into the transformed module.
func (t *transformer) funcName(name string) string {
	if f := t.src.Func(name); f != nil && f.External {
		return t.cfg.WrapperName(name)
	}
	if name == "main" {
		return MainAugName
	}
	return name
}

func (t *transformer) declareFuncs() {
	for _, f := range t.src.Funcs {
		augSig := t.comp.AugFunc(f.Sig)
		if f.External {
			t.dst.AddExtern(t.cfg.WrapperName(f.Name), augSig)
			continue
		}
		names := t.augParamNames(f)
		t.dst.AddFunc(t.funcName(f.Name), augSig, names...)
	}
}

// augParamNames builds parameter names matching the AugFunc expansion
// order: [rvSop|rvRopPtr]? then, per original parameter, app[, rop[, nsop]].
func (t *transformer) augParamNames(f *ir.Func) []string {
	var names []string
	if ir.IsPointer(f.Sig.Ret) {
		if t.sds() {
			names = append(names, "rvSop")
		} else {
			names = append(names, "rvRopPtr")
		}
	}
	for _, p := range f.Params {
		names = append(names, p.Name)
		if ir.IsPointer(p.Type) {
			names = append(names, p.Name+"_r")
			if t.sds() {
				names = append(names, p.Name+"_s")
			}
		}
	}
	return names
}

// ---------------------------------------------------------------------------
// Function bodies

func (t *transformer) fillBody(f *ir.Func) {
	t.srcFn = f
	t.dstFn = t.dst.Func(t.funcName(f.Name))
	t.app = make(map[int]*ir.Reg)
	t.rop = make(map[int]*ir.Reg)
	t.nsop = make(map[int]*ir.Reg)
	t.blockMap = make(map[*ir.Block]*ir.Block, len(f.Blocks))
	t.callSlots = make(map[*ir.Call]*ir.Reg)
	t.rvSlot = nil

	// Bind expanded parameters to the original registers' companions.
	idx := 0
	if ir.IsPointer(f.Sig.Ret) {
		t.rvSlot = t.dstFn.Params[idx]
		idx++
	}
	for _, p := range f.Params {
		t.app[p.ID] = t.dstFn.Params[idx]
		idx++
		if ir.IsPointer(p.Type) {
			t.rop[p.ID] = t.dstFn.Params[idx]
			idx++
			if t.sds() {
				t.nsop[p.ID] = t.dstFn.Params[idx]
				idx++
			}
		}
	}

	for _, blk := range f.Blocks {
		t.blockMap[blk] = t.dstFn.NewBlock(blk.Name)
	}
	t.b.F = t.dstFn
	t.b.SetBlock(t.blockMap[f.Entry()])

	// Hoist per-call-site return-value slots to the entry block so loops
	// do not grow the frame (the paper allocas at call sites; hoisting is
	// the standard strengthening with identical semantics).
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			call, ok := in.(*ir.Call)
			if !ok {
				continue
			}
			ret := t.calleeRet(call)
			if !ir.IsPointer(ret) {
				continue
			}
			var slotElem ir.Type
			if t.sds() {
				slotElem = t.comp.ShadowAug(ret)
			} else {
				slotElem = t.comp.Aug(ret)
			}
			t.callSlots[call] = t.b.Alloca(slotElem)
		}
	}

	for _, blk := range f.Blocks {
		t.b.SetBlock(t.blockMap[blk])
		for _, in := range blk.Instrs {
			t.emit(in)
		}
	}
}

// calleeRet resolves the original return type of a call.
func (t *transformer) calleeRet(call *ir.Call) ir.Type {
	if call.Callee != "" {
		if f := t.src.Func(call.Callee); f != nil {
			return f.Sig.Ret
		}
		return ir.Void
	}
	if ft, ok := call.CalleePtr.Elem().(*ir.FuncType); ok {
		return ft.Ret
	}
	return ir.Void
}

// emit transforms one original instruction (Tables 2.6/2.7 and 4.3/4.4).
func (t *transformer) emit(in ir.Instr) {
	switch i := in.(type) {
	case *ir.ConstInt:
		t.ins(&ir.ConstInt{Dst: t.x(i.Dst), Val: i.Val})
	case *ir.ConstFloat:
		t.ins(&ir.ConstFloat{Dst: t.x(i.Dst), Val: i.Val})
	case *ir.ConstNull:
		t.ins(&ir.ConstNull{Dst: t.x(i.Dst)})
		t.ins(&ir.ConstNull{Dst: t.xr(i.Dst)})
		if t.sds() {
			t.ins(&ir.ConstNull{Dst: t.xs(i.Dst)})
		}
	case *ir.Move:
		t.ins(&ir.Move{Dst: t.x(i.Dst), Src: t.x(i.Src)})
		if ir.IsPointer(i.Dst.Type) {
			t.ins(&ir.Move{Dst: t.xr(i.Dst), Src: t.xr(i.Src)})
			if t.sds() {
				t.ins(&ir.Move{Dst: t.xs(i.Dst), Src: t.xs(i.Src)})
			}
		}
	case *ir.BinOp:
		t.emitBinOp(i)
	case *ir.Cmp:
		t.ins(&ir.Cmp{Dst: t.x(i.Dst), Op: i.Op, X: t.x(i.X), Y: t.x(i.Y)})
	case *ir.Convert:
		t.ins(&ir.Convert{Dst: t.x(i.Dst), Src: t.x(i.Src)})
	case *ir.Alloc:
		t.emitAlloc(i)
	case *ir.Free:
		t.emitFree(i)
	case *ir.Load:
		t.emitLoad(i)
	case *ir.Store:
		t.emitStore(i)
	case *ir.FieldAddr:
		t.emitFieldAddr(i)
	case *ir.IndexAddr:
		t.emitIndexAddr(i)
	case *ir.Bitcast:
		t.emitBitcast(i)
	case *ir.PtrToInt:
		t.ins(&ir.PtrToInt{Dst: t.x(i.Dst), Src: t.x(i.Src)})
	case *ir.IntToPtr:
		// Only reachable in DSA mode (SkipRestrictionCheck); the result
		// register must be excluded, so companions stay null.
		t.ins(&ir.IntToPtr{Dst: t.x(i.Dst), Src: t.x(i.Src)})
	case *ir.FuncAddr:
		name := t.funcName(i.Fn)
		t.ins(&ir.FuncAddr{Dst: t.x(i.Dst), Fn: name})
		// Function pointers use the same value for the ROP and a null
		// NSOP (§2.4 address of a function).
		t.ins(&ir.FuncAddr{Dst: t.xr(i.Dst), Fn: name})
		if t.sds() {
			t.ins(&ir.ConstNull{Dst: t.xs(i.Dst)})
		}
	case *ir.GlobalAddr:
		t.ins(&ir.GlobalAddr{Dst: t.x(i.Dst), G: i.G})
		t.ins(&ir.GlobalAddr{Dst: t.xr(i.Dst), G: i.G + replicaSuffix})
		if t.sds() {
			if t.dst.Global(i.G+shadowSuffix) != nil {
				t.ins(&ir.GlobalAddr{Dst: t.xs(i.Dst), G: i.G + shadowSuffix})
			} else {
				t.ins(&ir.ConstNull{Dst: t.xs(i.Dst)})
			}
		}
	case *ir.Call:
		t.emitCall(i)
	case *ir.Ret:
		t.emitRet(i)
	case *ir.Br:
		t.ins(&ir.Br{Target: t.blockMap[i.Target]})
	case *ir.CondBr:
		t.ins(&ir.CondBr{Cond: t.x(i.Cond), True: t.blockMap[i.True], False: t.blockMap[i.False]})
	case *ir.Assert:
		t.ins(&ir.Assert{X: t.x(i.X), Y: t.x(i.Y)})
	case *ir.FaultPoint:
		t.ins(&ir.FaultPoint{Site: i.Site})
	case *ir.RandInt:
		t.ins(&ir.RandInt{Dst: t.x(i.Dst), Lo: i.Lo, Hi: i.Hi})
	case *ir.HeapBufSize:
		t.ins(&ir.HeapBufSize{Dst: t.x(i.Dst), Ptr: t.x(i.Ptr)})
	case *ir.Output:
		t.ins(&ir.Output{Val: t.x(i.Val), Mode: i.Mode})
	case *ir.AtomicRMW:
		t.emitAtomicRMW(i)
	case *ir.AtomicCAS:
		t.emitAtomicCAS(i)
	case *ir.Fence:
		t.ins(&ir.Fence{})
	case *ir.Exit:
		var v *ir.Reg
		if i.Val != nil {
			v = t.x(i.Val)
		}
		t.ins(&ir.Exit{Val: v})
	default:
		t.errf("unsupported instruction %s", in)
	}
}

func (t *transformer) emitBinOp(i *ir.BinOp) {
	t.ins(&ir.BinOp{Dst: t.x(i.Dst), X: t.x(i.X), Y: t.x(i.Y), Op: i.Op})
	if !ir.IsPointer(i.Dst.Type) {
		return
	}
	// Pointer arithmetic through integer ops: only MDS can mirror it (the
	// replica layout is structurally identical, §4.4); SDS forbids it.
	if t.sds() {
		t.errf("raw pointer arithmetic is not supported under SDS: %s", i)
		return
	}
	if t.excludedReg(i.Dst) {
		return
	}
	xop := t.x(i.X)
	if ir.IsPointer(i.X.Type) {
		xop = t.xr(i.X)
	}
	yop := t.x(i.Y)
	if ir.IsPointer(i.Y.Type) {
		yop = t.xr(i.Y)
	}
	t.ins(&ir.BinOp{Dst: t.xr(i.Dst), X: xop, Y: yop, Op: i.Op})
}

func (t *transformer) emitAlloc(i *ir.Alloc) {
	elemAug := t.comp.Aug(i.Elem)
	var count *ir.Reg
	if i.Count != nil {
		count = t.x(i.Count)
	}
	t.ins(&ir.Alloc{Dst: t.x(i.Dst), Kind: i.Kind, Elem: elemAug, Count: count, Site: i.Site})
	if t.cfg.Exclude.Site(i.Site) || t.excludedReg(i.Dst) {
		return // Chapter 5: unanalyzable memory is not replicated.
	}
	// Replica allocation: diversity applies to heap replicas only
	// (Table 2.8); stack replicas use the standard transformation.
	if i.Kind == ir.AllocHeap {
		pr := t.cfg.Diversity.ReplicaMalloc(t.b, elemAug, count)
		t.ins(&ir.Move{Dst: t.xr(i.Dst), Src: pr})
	} else {
		t.ins(&ir.Alloc{Dst: t.xr(i.Dst), Kind: i.Kind, Elem: elemAug, Count: count, Site: -1})
	}
	if !t.sds() {
		return
	}
	sat := t.comp.ShadowAug(i.Elem)
	if sat == nil {
		t.ins(&ir.ConstNull{Dst: t.xs(i.Dst)})
		return
	}
	if t.cfg.WastefulShadowSizing && i.Kind == ir.AllocHeap {
		// §2.9 ablation: 2×sizeof(at(t)) always suffices.
		stride := int64(paddedOf(elemAug))
		var size *ir.Reg
		if count == nil {
			size = t.b.I64(2 * stride)
		} else {
			c64 := count
			if !ir.TypesEqual(count.Type, ir.I64) {
				c64 = t.b.Convert(count, ir.I64)
			}
			size = t.b.Mul(c64, t.b.I64(2*stride))
		}
		raw := t.b.MallocN(ir.I8, size)
		t.ins(&ir.Move{Dst: t.xs(i.Dst), Src: t.b.Cast(raw, sat)})
		return
	}
	t.ins(&ir.Alloc{Dst: t.xs(i.Dst), Kind: i.Kind, Elem: sat, Count: count, Site: -1})
}

func (t *transformer) emitFree(i *ir.Free) {
	t.ins(&ir.Free{Ptr: t.x(i.Ptr)})
	if t.excludedReg(i.Ptr) {
		return
	}
	t.cfg.Diversity.ReplicaFree(t.b, t.xr(i.Ptr))
	if !t.sds() {
		return
	}
	// if (ps != null) { free(ps) } — the null check is performed at run
	// time in case the static type is not precise enough (§2.4).
	ps := t.xs(i.Ptr)
	null := t.b.Null(ps.Type)
	cond := t.b.Cmp(ir.CmpNE, ps, null)
	t.b.If(cond, func() {
		t.b.Free(ps)
	}, nil)
}

func (t *transformer) emitLoad(i *ir.Load) {
	t.ins(&ir.Load{Dst: t.x(i.Dst), Ptr: t.x(i.Ptr)})
	if t.excludedReg(i.Ptr) {
		return
	}
	if ir.IsPointer(i.Dst.Type) && !t.sds() {
		// MDS: the replica slot holds the ROP; a load comparison never
		// occurs for pointers because the values differ by definition
		// (Table 4.3).
		t.ins(&ir.Load{Dst: t.xr(i.Dst), Ptr: t.xr(i.Ptr)})
		return
	}
	// Policy-gated load check: replica load plus comparison (§2.7).
	t.cfg.Policy.EmitCheck(t.b, t.rng, t.x(i.Dst), t.xr(i.Ptr))
	if !ir.IsPointer(i.Dst.Type) {
		return
	}
	if t.sds() {
		if !t.nsopIsTyped(i.Ptr) {
			t.errf("pointer load through shadow-free pointer %s (SDS restriction)", i.Ptr)
			return
		}
		ps := t.xs(i.Ptr)
		ropAddr := t.b.Field(ps, 0)
		t.ins(&ir.Load{Dst: t.xr(i.Dst), Ptr: ropAddr})
		nsopAddr := t.b.Field(ps, 1)
		t.ins(&ir.Load{Dst: t.xs(i.Dst), Ptr: nsopAddr})
	}
}

func (t *transformer) emitStore(i *ir.Store) {
	t.ins(&ir.Store{Ptr: t.x(i.Ptr), Val: t.x(i.Val)})
	if t.excludedReg(i.Ptr) {
		return
	}
	if !ir.IsPointer(i.Val.Type) {
		t.ins(&ir.Store{Ptr: t.xr(i.Ptr), Val: t.x(i.Val)})
		return
	}
	if t.sds() {
		// Identical pointer value to the replica (comparable pointers,
		// Figure 2.3), ROP and NSOP to the shadow object (Figure 2.4).
		t.ins(&ir.Store{Ptr: t.xr(i.Ptr), Val: t.x(i.Val)})
		if !t.nsopIsTyped(i.Ptr) {
			t.errf("pointer store through shadow-free pointer %s (SDS restriction)", i.Ptr)
			return
		}
		ps := t.xs(i.Ptr)
		t.ins(&ir.Store{Ptr: t.b.Field(ps, 0), Val: t.xr(i.Val)})
		t.ins(&ir.Store{Ptr: t.b.Field(ps, 1), Val: t.xs(i.Val)})
		return
	}
	// MDS: the ROP is stored to replica memory (Table 4.3).
	t.ins(&ir.Store{Ptr: t.xr(i.Ptr), Val: t.xr(i.Val)})
}

// emitAtomicRMW instruments an atomic read-modify-write. Atomics are
// restricted to integer memory (enforced by ir.Verify), so the replica
// slot holds the identical value under both designs and the whole
// check reduces to the load-check pattern of Table 2.6 — except that an
// atomic's load and store must stay one indivisible step even relative
// to its own instrumentation. Emitting a separate replica RMW would
// reintroduce a window where another thread's pair interleaves between
// application and replica update, making the *instrumentation* racy in
// a race-free program. Instead the replica pointer is bound onto the
// instruction itself (RPtr); the interpreter updates both slots in the
// same indivisible step and traps a DPMR detection if the two loaded
// values differ.
func (t *transformer) emitAtomicRMW(i *ir.AtomicRMW) {
	n := &ir.AtomicRMW{Dst: t.x(i.Dst), Ptr: t.x(i.Ptr), Val: t.x(i.Val), Op: i.Op}
	if !t.excludedReg(i.Ptr) {
		n.RPtr = t.xr(i.Ptr)
	}
	t.ins(n)
}

// emitAtomicCAS instruments an atomic compare-and-swap; see
// emitAtomicRMW for why the replica binding is fused.
func (t *transformer) emitAtomicCAS(i *ir.AtomicCAS) {
	n := &ir.AtomicCAS{Dst: t.x(i.Dst), Ptr: t.x(i.Ptr), Old: t.x(i.Old), New: t.x(i.New)}
	if !t.excludedReg(i.Ptr) {
		n.RPtr = t.xr(i.Ptr)
	}
	t.ins(n)
}

func (t *transformer) emitFieldAddr(i *ir.FieldAddr) {
	t.ins(&ir.FieldAddr{Dst: t.x(i.Dst), Ptr: t.x(i.Ptr), Field: i.Field})
	if t.excludedReg(i.Ptr) {
		return
	}
	t.ins(&ir.FieldAddr{Dst: t.xr(i.Dst), Ptr: t.xr(i.Ptr), Field: i.Field})
	if !t.sds() {
		return
	}
	elem := i.Ptr.Elem()
	fieldType := fieldTypeOf(elem, i.Field)
	if t.comp.ShadowAug(fieldType) == nil || !t.nsopIsTyped(i.Ptr) {
		t.ins(&ir.ConstNull{Dst: t.xs(i.Dst)})
		return
	}
	sIdx := t.phiOf(elem, i.Field)
	t.ins(&ir.FieldAddr{Dst: t.xs(i.Dst), Ptr: t.xs(i.Ptr), Field: sIdx})
}

func (t *transformer) emitIndexAddr(i *ir.IndexAddr) {
	t.ins(&ir.IndexAddr{Dst: t.x(i.Dst), Ptr: t.x(i.Ptr), Index: t.x(i.Index)})
	if t.excludedReg(i.Ptr) {
		return
	}
	t.ins(&ir.IndexAddr{Dst: t.xr(i.Dst), Ptr: t.xr(i.Ptr), Index: t.x(i.Index)})
	if !t.sds() {
		return
	}
	elem := i.Ptr.Elem()
	if at, ok := elem.(*ir.ArrayType); ok {
		elem = at.Elem
	}
	if t.comp.ShadowAug(elem) == nil || !t.nsopIsTyped(i.Ptr) {
		t.ins(&ir.ConstNull{Dst: t.xs(i.Dst)})
		return
	}
	t.ins(&ir.IndexAddr{Dst: t.xs(i.Dst), Ptr: t.xs(i.Ptr), Index: t.x(i.Index)})
}

func (t *transformer) emitBitcast(i *ir.Bitcast) {
	t.ins(&ir.Bitcast{Dst: t.x(i.Dst), Src: t.x(i.Src)})
	if t.excludedReg(i.Src) {
		return
	}
	t.ins(&ir.Bitcast{Dst: t.xr(i.Dst), Src: t.xr(i.Src)})
	if t.sds() {
		t.ins(&ir.Bitcast{Dst: t.xs(i.Dst), Src: t.xs(i.Src)})
	}
}

func (t *transformer) emitCall(i *ir.Call) {
	retType := t.calleeRet(i)
	var args []*ir.Reg
	if slot, ok := t.callSlots[i]; ok {
		args = append(args, slot)
	}
	for _, a := range i.Args {
		args = append(args, t.x(a))
		if ir.IsPointer(a.Type) {
			args = append(args, t.xr(a))
			if t.sds() {
				args = append(args, t.xs(a))
			}
		}
	}
	var dst *ir.Reg
	if i.Dst != nil {
		dst = t.x(i.Dst)
	}
	call := &ir.Call{Dst: dst, Args: args}
	if i.Callee != "" {
		call.Callee = t.funcName(i.Callee)
	} else {
		call.CalleePtr = t.x(i.CalleePtr)
	}
	t.ins(call)
	if !ir.IsPointer(retType) || i.Dst == nil {
		return
	}
	slot := t.callSlots[i]
	if t.sds() {
		t.ins(&ir.Load{Dst: t.xr(i.Dst), Ptr: t.b.Field(slot, 0)})
		t.ins(&ir.Load{Dst: t.xs(i.Dst), Ptr: t.b.Field(slot, 1)})
	} else {
		t.ins(&ir.Load{Dst: t.xr(i.Dst), Ptr: slot})
	}
}

func (t *transformer) emitRet(i *ir.Ret) {
	if i.Val == nil || !ir.IsPointer(i.Val.Type) {
		var v *ir.Reg
		if i.Val != nil {
			v = t.x(i.Val)
		}
		t.ins(&ir.Ret{Val: v})
		return
	}
	if t.rvSlot == nil {
		t.errf("pointer return without return-value slot")
		return
	}
	if t.sds() {
		t.ins(&ir.Store{Ptr: t.b.Field(t.rvSlot, 0), Val: t.xr(i.Val)})
		t.ins(&ir.Store{Ptr: t.b.Field(t.rvSlot, 1), Val: t.xs(i.Val)})
	} else {
		t.ins(&ir.Store{Ptr: t.rvSlot, Val: t.xr(i.Val)})
	}
	t.ins(&ir.Ret{Val: t.x(i.Val)})
}

func (t *transformer) phiOf(aggregate ir.Type, field int) int {
	switch agg := aggregate.(type) {
	case *ir.StructType:
		return t.comp.Phi(agg, field)
	case *ir.UnionType:
		idx := 0
		for j := 0; j < field; j++ {
			if t.comp.ShadowAug(agg.Elem(j)) != nil {
				idx++
			}
		}
		return idx
	default:
		t.errf("fieldaddr through non-aggregate %s", aggregate)
		return 0
	}
}

func fieldTypeOf(aggregate ir.Type, field int) ir.Type {
	switch agg := aggregate.(type) {
	case *ir.StructType:
		return agg.Field(field)
	case *ir.UnionType:
		return agg.Elem(field)
	default:
		return ir.Void
	}
}

// ---------------------------------------------------------------------------
// main() handling (§3.1.1)

func (t *transformer) synthesizeMain() {
	origMain := t.src.Func("main")
	if origMain == nil || origMain.External {
		t.errf("module has no transformable main")
		return
	}
	sig := origMain.Sig
	if ir.IsPointer(sig.Ret) {
		t.errf("main returning a pointer is not supported")
		return
	}
	names := make([]string, len(origMain.Params))
	for i, p := range origMain.Params {
		names[i] = p.Name
	}
	newMain := t.dst.AddFunc("main", ir.FuncOf(sig.Ret, sig.Params...), names...)
	t.b.F = newMain
	t.b.SetBlock(newMain.NewBlock("entry"))

	switch {
	case len(sig.Params) == 0:
		r := t.b.Call(MainAugName)
		t.b.Ret(r)
	case len(sig.Params) == 2 && sig.Params[0].Kind() == ir.KindInt && isCharPP(sig.Params[1]):
		// Replica and shadow memory for command-line arguments cannot be
		// created at compile time (§3.1.1, Figure 3.1); runtime support
		// externs build them before mainAug runs.
		argc, argv := newMain.Params[0], newMain.Params[1]
		charPP := sig.Params[1]
		repSig := ir.FuncOf(charPP, sig.Params[0], charPP)
		t.dst.AddExtern(ArgvRepExtern, repSig)
		argvR := t.b.Call(ArgvRepExtern, argc, argv)
		callArgs := []*ir.Reg{argc, argv, argvR}
		if t.sds() {
			// spt(argv): a pointer to the shadow type of argv's pointee
			// (the per-entry {rop, nsop} array of Figure 3.1).
			satPtr := ir.Ptr(t.comp.ShadowAug(charPP.(*ir.PointerType).Elem))
			sdwSig := ir.FuncOf(satPtr, sig.Params[0], charPP, charPP)
			t.dst.AddExtern(ArgvSdwExtern, sdwSig)
			argvS := t.b.Call(ArgvSdwExtern, argc, argv, argvR)
			callArgs = append(callArgs, argvS)
		}
		r := t.b.Call(MainAugName, callArgs...)
		t.b.Ret(r)
	default:
		t.errf("unsupported main signature %s", sig)
	}
}

func isCharPP(t ir.Type) bool {
	p1, ok := t.(*ir.PointerType)
	if !ok {
		return false
	}
	p2, ok := p1.Elem.(*ir.PointerType)
	if !ok {
		return false
	}
	return ir.TypesEqual(p2.Elem, ir.I8)
}
