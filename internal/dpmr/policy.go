package dpmr

import (
	"fmt"
	"math/rand"

	"dpmr/internal/ir"
)

// Policy is a state comparison policy (§2.7): it decides, per load, whether
// and how to emit the replica load and comparison. A load check is a
// replica load plus comparison — "either both the replica load and
// subsequent comparison occur, or neither occurs".
type Policy interface {
	Name() string
	// Prepare may add module-level artifacts (globals) to the output
	// module.
	Prepare(m *ir.Module)
	// EmitCheck emits the (possibly gated, possibly omitted) load check:
	// comparing the application value x against the replica value at
	// address register pr. rng provides compile-time randomness.
	EmitCheck(b *ir.Builder, rng *rand.Rand, x, pr *ir.Reg)
}

// AllLoads replicates and compares every application load — the default
// policy of the standard transformation (Table 2.6).
type AllLoads struct{}

// Name implements Policy.
func (AllLoads) Name() string { return "all loads" }

// Prepare implements Policy.
func (AllLoads) Prepare(*ir.Module) {}

// EmitCheck implements Policy.
func (AllLoads) EmitCheck(b *ir.Builder, _ *rand.Rand, x, pr *ir.Reg) {
	xr := b.LoadAs(pr, x.Type)
	b.Assert(x, xr)
}

// StaticLoadChecking includes each load check at compile time with a given
// probability (§2.7): for each load, generate r in [0,100) and insert the
// check if r ≥ 100−percent.
type StaticLoadChecking struct {
	// Percent of load sites instrumented (10, 50, 90 in the paper).
	Percent int
}

// Name implements Policy.
func (p StaticLoadChecking) Name() string { return fmt.Sprintf("static %d%%", p.Percent) }

// Prepare implements Policy.
func (StaticLoadChecking) Prepare(*ir.Module) {}

// EmitCheck implements Policy.
func (p StaticLoadChecking) EmitCheck(b *ir.Builder, rng *rand.Rand, x, pr *ir.Reg) {
	if rng.Float64()*100 >= float64(p.Percent) {
		return
	}
	AllLoads{}.EmitCheck(b, rng, x, pr)
}

// TemporalLoadChecking checks a temporal fraction of loads at run time by
// cycling a global counter through the bits of a 64-bit mask (Table 2.9).
type TemporalLoadChecking struct {
	// Mask's set bits select which of each 64 consecutive dynamic loads
	// are checked.
	Mask uint64
	// Label distinguishes the paper's named fractions.
	Label string
}

// Temporal masks evaluated in the paper (§2.7): fractions 1/8, 1/2, 7/8.
var (
	TemporalEighth       = TemporalLoadChecking{Mask: 0x8080808080808080, Label: "temporal 1/8"}
	TemporalHalf         = TemporalLoadChecking{Mask: 0xAAAAAAAAAAAAAAAA, Label: "temporal 1/2"}
	TemporalSevenEighths = TemporalLoadChecking{Mask: 0xFEFEFEFEFEFEFEFE, Label: "temporal 7/8"}
)

// Name implements Policy.
func (t TemporalLoadChecking) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return fmt.Sprintf("temporal mask %#x", t.Mask)
}

// Prepare implements Policy: the global mask counter (Table 2.9 top).
func (TemporalLoadChecking) Prepare(m *ir.Module) {
	if m.Global(maskCounterGlobal) == nil {
		m.AddGlobal(maskCounterGlobal, ir.I64)
	}
}

// EmitCheck implements Policy. It emits the Table 2.9 transformation:
//
//	if ((mask << (64 - *maskCounter - 1)) >> (64 - 1)) { assert(x == *pr) }
//	*maskCounter = (*maskCounter + 1) % 64
//
// The extra loads, shifts, and branch are exactly the overhead source the
// paper identifies for temporal checking (§3.8).
func (t TemporalLoadChecking) EmitCheck(b *ir.Builder, rng *rand.Rand, x, pr *ir.Reg) {
	cntPtr := b.GlobalAddr(maskCounterGlobal)
	cnt := b.Load(cntPtr)
	mask := b.I64(int64(t.Mask))
	shL := b.Sub(b.Sub(b.I64(64), cnt), b.I64(1))
	shifted := b.Bin(ir.OpShl, mask, shL)
	bit := b.Bin(ir.OpLShr, shifted, b.I64(63))
	cond := b.Cmp(ir.CmpNE, bit, b.I64(0))
	b.If(cond, func() {
		AllLoads{}.EmitCheck(b, rng, x, pr)
	}, nil)
	next := b.Bin(ir.OpURem, b.Add(cnt, b.I64(1)), b.I64(64))
	b.Store(cntPtr, next)
}

// PeriodicLoadChecking is the Figure 3.16 ablation: temporal checking
// restructured to exploit periodicity. Instead of the mask-shift gate it
// keeps a simple countdown, checking every Period-th load with a much
// cheaper gate (one load, one add, one compare), which is the optimization
// the paper sketches for making temporal checking efficient.
type PeriodicLoadChecking struct {
	// Period: one check per Period dynamic loads (2 ≈ temporal 1/2).
	Period int64
}

// Name implements Policy.
func (p PeriodicLoadChecking) Name() string { return fmt.Sprintf("periodic 1/%d", p.Period) }

// Prepare implements Policy.
func (PeriodicLoadChecking) Prepare(m *ir.Module) {
	if m.Global(maskCounterGlobal) == nil {
		m.AddGlobal(maskCounterGlobal, ir.I64)
	}
}

// EmitCheck implements Policy.
func (p PeriodicLoadChecking) EmitCheck(b *ir.Builder, rng *rand.Rand, x, pr *ir.Reg) {
	cntPtr := b.GlobalAddr(maskCounterGlobal)
	cnt := b.Load(cntPtr)
	next := b.Add(cnt, b.I64(1))
	cond := b.Cmp(ir.CmpSGE, next, b.I64(p.Period))
	b.If(cond, func() {
		AllLoads{}.EmitCheck(b, rng, x, pr)
		b.Store(cntPtr, b.I64(0))
	}, func() {
		b.Store(cntPtr, next)
	})
}

// PolicyByName resolves the paper's policy names.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "all-loads", "all loads", "":
		return AllLoads{}, nil
	case "temporal-1/8", "temporal 1/8":
		return TemporalEighth, nil
	case "temporal-1/2", "temporal 1/2":
		return TemporalHalf, nil
	case "temporal-7/8", "temporal 7/8":
		return TemporalSevenEighths, nil
	case "static-10", "static 10%":
		return StaticLoadChecking{Percent: 10}, nil
	case "static-50", "static 50%":
		return StaticLoadChecking{Percent: 50}, nil
	case "static-90", "static 90%":
		return StaticLoadChecking{Percent: 90}, nil
	case "periodic-2", "periodic 1/2":
		return PeriodicLoadChecking{Period: 2}, nil
	default:
		return nil, fmt.Errorf("dpmr: unknown comparison policy %q", name)
	}
}

// Policies returns the evaluated policy suite in the paper's order
// (Figures 3.11–3.15).
func Policies() []Policy {
	return []Policy{
		AllLoads{},
		TemporalEighth,
		TemporalHalf,
		TemporalSevenEighths,
		StaticLoadChecking{Percent: 10},
		StaticLoadChecking{Percent: 50},
		StaticLoadChecking{Percent: 90},
	}
}
