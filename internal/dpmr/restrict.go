package dpmr

import (
	"fmt"

	"dpmr/internal/ir"
	"dpmr/internal/shadow"
)

// RestrictionError reports violations of the input-program restrictions
// (§2.9 for SDS, §4.4 for MDS).
type RestrictionError struct {
	Design     Design
	Violations []string
}

func (e *RestrictionError) Error() string {
	return fmt.Sprintf("dpmr: %d %s restriction violation(s), first: %s",
		len(e.Violations), e.Design, e.Violations[0])
}

// VerifyRestrictions checks whether a module satisfies the input
// restrictions of the given design. MDS is strictly more permissive than
// SDS (§4.4): it drops the restrictions on non-pointer typing, pointer
// arithmetic, and pointer-to-pointer casts.
func VerifyRestrictions(m *ir.Module, design Design) error {
	comp := shadow.NewComputer(design)
	var v []string
	add := func(fn *ir.Func, format string, args ...any) {
		v = append(v, "@"+fn.Name+": "+fmt.Sprintf(format, args...))
	}
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				switch i := in.(type) {
				case *ir.IntToPtr:
					// Forbidden under both designs (§2.9, §4.4): DPMR
					// has no way to set corresponding ROPs and NSOPs.
					add(f, "int-to-pointer cast %s", i)
				case *ir.Store:
					valPtr := ir.IsPointer(i.Val.Type)
					slotPtr := ir.IsPointer(i.Ptr.Elem())
					if valPtr && !slotPtr {
						add(f, "pointer stored to memory not typed as pointer: %s", i)
					}
					if design == SDS && !valPtr && slotPtr {
						add(f, "non-pointer stored to pointer-typed memory: %s", i)
					}
				case *ir.Load:
					valPtr := ir.IsPointer(i.Dst.Type)
					slotPtr := ir.IsPointer(i.Ptr.Elem())
					if valPtr && !slotPtr {
						add(f, "pointer loaded from memory not typed as pointer: %s", i)
					}
					if design == SDS && !valPtr && slotPtr {
						add(f, "non-pointer loaded from pointer-typed memory: %s", i)
					}
				case *ir.BinOp:
					// Raw pointer arithmetic defeats SDS shadow
					// addressing (§2.9 structure/array pointer
					// arithmetic restriction); MDS mirrors it freely
					// because replica layout is structurally identical
					// (§4.4).
					if design == SDS && (ir.IsPointer(i.X.Type) || ir.IsPointer(i.Y.Type)) {
						add(f, "raw pointer arithmetic under SDS: %s", i)
					}
				case *ir.Bitcast:
					if design != SDS {
						continue
					}
					// §2.9 pointer-to-pointer cast restriction
					// (conservative form): a pointer whose pointee has
					// a null shadow type may not be cast to a type
					// whose pointee has a nonzero-size shadow — the
					// NSOP would be null while shadow data is needed.
					srcSat := comp.ShadowAug(i.Src.Elem())
					dstSat := comp.ShadowAug(i.Dst.Elem())
					if srcSat == nil && dstSat != nil {
						add(f, "cast from shadow-free pointer to shadowed pointer: %s", i)
					}
				}
			}
		}
	}
	if len(v) == 0 {
		return nil
	}
	return &RestrictionError{Design: design, Violations: v}
}
