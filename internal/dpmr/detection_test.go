package dpmr_test

import (
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

// These tests exercise the detection-condition taxonomy of §2.5: which
// manifestations of write, read, and free errors DPMR detects, which it
// cannot, and which crash naturally.

func runSDS(t *testing.T, m *ir.Module, cfg dpmr.Config, seed int64) *interp.Result {
	t.Helper()
	if cfg.Design == 0 {
		cfg.Design = dpmr.SDS
	}
	xm, err := dpmr.Transform(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return interp.Run(xm, interp.Config{Externs: extlib.Wrapped(cfg.Design), Seed: seed})
}

// §2.5.1 unpaired corruption of replicated memory: detected at the next
// checked load of the corrupted pair.
func TestWriteErrorUnpairedCorruptionDetected(t *testing.T) {
	m := ir.NewModule("unpaired")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	x := b.MallocN(ir.I64, b.I64(3))
	b.Store(b.Index(x, b.I64(0)), b.I64(1))
	// x[5] is 40 bytes past x: under DPMR layout that is x's replica.
	b.Store(b.Index(x, b.I64(5)), b.I64(1234))
	b.Ret(b.Load(b.Index(x, b.I64(0))))
	res := runSDS(t, m, dpmr.Config{}, 1)
	if res.Kind != interp.ExitDetect {
		t.Errorf("unpaired corruption: %v (%s), want detection", res.Kind, res.Reason)
	}
}

// §2.5.2 "same incorrect value": an out-of-bounds read whose application
// and replica halves both land on identically-valued bytes (here: the
// allocator headers of same-class neighbours) is not detectable at that
// load — exactly the case the paper says diversity aims to reduce.
func TestReadErrorSameIncorrectValueUndetected(t *testing.T) {
	m := ir.NewModule("samevalue")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	x := b.MallocN(ir.I64, b.I64(3))
	y := b.MallocN(ir.I64, b.I64(3))
	_ = y
	// x[3] reads the neighbour's inline header size field; both the
	// application read (x+24) and the replica read (xr+24) see a header
	// of the same size class.
	v := b.Load(b.Index(x, b.I64(3)))
	b.Ret(v)
	res := runSDS(t, m, dpmr.Config{}, 1)
	if res.Kind != interp.ExitNormal {
		t.Errorf("same-incorrect-value read should pass the comparison: %v (%s)", res.Kind, res.Reason)
	}
	if res.Code == 0 {
		t.Error("the read value should be header garbage, not zero")
	}
}

// §2.5.3 free errors: a double free is caught by the allocator's inline
// metadata checks (natural detection by crash).
func TestDoubleFreeCrashesNaturally(t *testing.T) {
	m := ir.NewModule("doublefree")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	p := b.Malloc(ir.I64)
	b.Free(p)
	b.Free(p)
	b.Ret(b.I64(0))
	res := runSDS(t, m, dpmr.Config{}, 1)
	if res.Kind != interp.ExitTrap {
		t.Errorf("double free: %v (%s), want trap", res.Kind, res.Reason)
	}
}

// Wild pointer use into unmapped memory crashes (natural detection).
func TestWildPointerWriteTraps(t *testing.T) {
	m := ir.NewModule("wild")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	p := b.Malloc(ir.I64)
	// Index far out of any segment.
	wild := b.Index(p, b.I64(1<<40))
	b.Store(wild, b.I64(1))
	b.Ret(b.I64(0))
	res := runSDS(t, m, dpmr.Config{}, 1)
	if res.Kind != interp.ExitTrap {
		t.Errorf("wild write: %v (%s), want trap", res.Kind, res.Reason)
	}
}

// §2.5.3 heap buffer free + reallocation: an erroneously freed buffer
// that gets reallocated leaves a stale replicated pointer pair whose use
// produces detectable errors.
func TestPrematureFreeThenReuseDetected(t *testing.T) {
	m := ir.NewModule("premature")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	a := b.MallocN(ir.I64, b.I64(3))
	b.Store(b.Index(a, b.I64(1)), b.I64(42))
	b.Free(a) // premature: a is still "in use" below
	// The allocator recycles the buffer for c; the program then writes
	// through c and reads through the stale a.
	c := b.MallocN(ir.I64, b.I64(3))
	b.Store(b.Index(c, b.I64(1)), b.I64(7))
	v := b.Load(b.Index(a, b.I64(1))) // dangling read sees c's data
	b.Out(v, ir.OutInt)
	b.Free(c)
	b.Ret(b.I64(0))
	// Under rearrange-heap the replica of c lands elsewhere, so the
	// dangling pair reads divergent values (§2.6 rationale).
	res := runSDS(t, m, dpmr.Config{Diversity: dpmr.RearrangeHeap{}}, 2)
	if res.Kind != interp.ExitDetect {
		t.Errorf("dangling pair after reuse: %v (%s), want detection", res.Kind, res.Reason)
	}
}

// Uninitialized reads of recycled memory: without diversity the recycled
// application/replica pair carries pairwise-identical stale data
// (undetectable); rearrange-heap decorrelates the pair.
func TestUninitializedReadRearrangeHeap(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule("uninit")
		b := ir.NewBuilder(m)
		b.Function("main", ir.I64, nil)
		a := b.MallocN(ir.I64, b.I64(3))
		b.Store(b.Index(a, b.I64(1)), b.I64(111))
		b.Free(a)
		c := b.MallocN(ir.I64, b.I64(3))  // recycles a's buffer
		v := b.Load(b.Index(c, b.I64(1))) // uninitialized read
		b.Out(v, ir.OutInt)
		b.Free(c)
		b.Ret(b.I64(0))
		return m
	}
	plain := runSDS(t, build(), dpmr.Config{}, 1)
	if plain.Kind != interp.ExitNormal {
		t.Fatalf("paired recycle should be silent: %v (%s)", plain.Kind, plain.Reason)
	}
	detected := false
	for seed := int64(1); seed <= 5; seed++ {
		res := runSDS(t, build(), dpmr.Config{Diversity: dpmr.RearrangeHeap{}}, seed)
		if res.Kind == interp.ExitDetect {
			detected = true
			break
		}
	}
	if !detected {
		t.Error("rearrange-heap never decorrelated the recycled pair across 5 seeds")
	}
}

// §2.5.1 shadow object corruption: an overflow that lands in a shadow
// object turns ROPs/NSOPs wild; subsequent uses produce additional,
// detectable-or-crashing errors rather than silent success.
func TestShadowCorruptionLeadsToDetectionOrTrap(t *testing.T) {
	node := ir.NamedStruct("SNode")
	node.SetBody(ir.I64, ir.Ptr(node))
	m := ir.NewModule("shadowcorrupt")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	n1 := b.Malloc(node)
	n2 := b.Malloc(node)
	b.Store(b.Field(n1, 0), b.I64(5))
	b.Store(b.Field(n1, 1), n2)
	b.Store(b.Field(n2, 0), b.I64(6))
	b.Store(b.Field(n2, 1), b.Null(ir.Ptr(node)))
	// Massive overflow out of n1 sweeps across replica and shadow
	// objects.
	asBytes := b.Cast(n1, ir.I8)
	b.ForRange("k", b.I64(16), b.I64(120), func(k *ir.Reg) {
		b.Store(b.Index(asBytes, k), b.I8(0x41))
	})
	// Traverse via the stored pointer: the shadow-held ROP/NSOP are now
	// wild.
	nxt := b.Load(b.Field(n1, 1))
	b.Ret(b.Load(b.Field(nxt, 0)))
	res := runSDS(t, m, dpmr.Config{}, 1)
	if res.Kind != interp.ExitDetect && res.Kind != interp.ExitTrap {
		t.Errorf("shadow corruption: %v (%s), want detection or trap", res.Kind, res.Reason)
	}
}

// Pad-malloc absorbs small replica-side overflows in padding while the
// application-side overflow corrupts real data — manifesting differently
// (§2.6 pad-malloc rationale).
func TestPadMallocAbsorbsReplicaOverflow(t *testing.T) {
	m := ir.NewModule("padabsorb")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	x := b.MallocN(ir.I64, b.I64(3))
	y := b.MallocN(ir.I64, b.I64(3))
	b.Store(b.Index(y, b.I64(0)), b.I64(77))
	b.Store(b.Index(x, b.I64(3)), b.I64(666)) // 1-slot overflow
	v := b.Load(b.Index(y, b.I64(0)))
	b.Out(v, ir.OutInt)
	b.Ret(v)
	res := runSDS(t, m, dpmr.Config{Diversity: dpmr.PadMalloc{Pad: 256}}, 1)
	// The overflow must not silently produce corrupted output: it is
	// either detected or the output is still correct (replica overflow
	// landed in padding).
	switch res.Kind {
	case interp.ExitDetect, interp.ExitTrap:
		// detected — fine
	case interp.ExitNormal:
		if string(res.Output) != "77\n" {
			t.Errorf("silent corruption escaped: output %q", res.Output)
		}
	default:
		t.Errorf("unexpected exit %v (%s)", res.Kind, res.Reason)
	}
}
