package dpmr_test

import (
	"bytes"
	"strings"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

// buildLinkedList reproduces the paper's running example (Figures 2.9,
// 2.10, 4.1, 4.2): createNode builds a list, getSum traverses it.
func buildLinkedList() *ir.Module {
	m := ir.NewModule("linkedlist")
	b := ir.NewBuilder(m)
	ll := ir.NamedStruct("LinkedList")
	ll.SetBody(ir.I32, ir.Ptr(ll))
	llp := ir.Ptr(ll)

	create := b.Function("createNode", llp, []string{"data", "last"}, ir.I32, llp)
	data, last := create.Params[0], create.Params[1]
	n := b.Malloc(ll)
	b.Store(b.Field(n, 0), data)
	b.Store(b.Field(n, 1), b.Null(llp))
	hasLast := b.Cmp(ir.CmpNE, last, b.Null(llp))
	b.If(hasLast, func() {
		b.Store(b.Field(last, 1), n)
	}, nil)
	b.Ret(n)

	getSum := b.Function("getSum", ir.I32, []string{"n"}, llp)
	cur := getSum.Params[0]
	sum := b.Reg("sum", ir.I32)
	b.MoveTo(sum, b.I32(0))
	b.While("walk", func() *ir.Reg {
		return b.Cmp(ir.CmpNE, cur, b.Null(llp))
	}, func() {
		v := b.Load(b.Field(cur, 0))
		b.BinTo(sum, ir.OpAdd, sum, v)
		b.LoadTo(cur, b.Field(cur, 1))
	})
	b.Ret(sum)

	b.Function("main", ir.I64, nil)
	head := b.Reg("head", llp)
	tail := b.Reg("tail", llp)
	b.MoveTo(head, b.Null(llp))
	b.MoveTo(tail, b.Null(llp))
	b.ForRange("i", b.I64(1), b.I64(11), func(i *ir.Reg) {
		node := b.Call("createNode", b.Convert(i, ir.I32), tail)
		b.MoveTo(tail, node)
		isFirst := b.Cmp(ir.CmpEQ, head, b.Null(llp))
		b.If(isFirst, func() { b.MoveTo(head, node) }, nil)
	})
	s := b.Call("getSum", head)
	b.Out(b.Convert(s, ir.I64), ir.OutInt)
	// Free the list.
	b.While("freeing", func() *ir.Reg {
		return b.Cmp(ir.CmpNE, head, b.Null(llp))
	}, func() {
		nxt := b.Load(b.Field(head, 1))
		b.Free(head)
		b.MoveTo(head, nxt)
	})
	b.Ret(b.Convert(s, ir.I64))
	return m
}

func runGolden(t *testing.T, m *ir.Module, seed int64) *interp.Result {
	t.Helper()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("source verify: %v", err)
	}
	res := interp.Run(m, interp.Config{Externs: extlib.Base(), Seed: seed})
	if res.Kind != interp.ExitNormal {
		t.Fatalf("golden run failed: %v (%s)", res.Kind, res.Reason)
	}
	return res
}

func runTransformed(t *testing.T, m *ir.Module, cfg dpmr.Config, seed int64) *interp.Result {
	t.Helper()
	xm, err := dpmr.Transform(m, cfg)
	if err != nil {
		t.Fatalf("transform (%v): %v", cfg.Design, err)
	}
	design := cfg.Design
	if design == 0 {
		design = dpmr.SDS
	}
	return interp.Run(xm, interp.Config{Externs: extlib.Wrapped(design), Seed: seed})
}

// assertEquivalent checks the cardinal DPMR property: under error-free
// execution, application and replica states do not diverge, so the
// transformed program behaves identically to the original.
func assertEquivalent(t *testing.T, golden, xres *interp.Result, label string) {
	t.Helper()
	if xres.Kind != interp.ExitNormal {
		t.Fatalf("%s: transformed run: %v (%s)", label, xres.Kind, xres.Reason)
	}
	if xres.Code != golden.Code {
		t.Errorf("%s: exit code %d, golden %d", label, xres.Code, golden.Code)
	}
	if !bytes.Equal(xres.Output, golden.Output) {
		t.Errorf("%s: output %q, golden %q", label, xres.Output, golden.Output)
	}
}

func TestLinkedListEquivalenceAcrossConfigs(t *testing.T) {
	m := buildLinkedList()
	golden := runGolden(t, m, 1)
	if want := "55\n"; string(golden.Output) != want {
		t.Fatalf("golden output %q, want %q", golden.Output, want)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		for _, div := range dpmr.Diversities() {
			for _, pol := range dpmr.Policies() {
				cfg := dpmr.Config{Design: design, Diversity: div, Policy: pol, Seed: 42}
				label := design.String() + "/" + div.Name() + "/" + pol.Name()
				xres := runTransformed(t, m, cfg, 1)
				assertEquivalent(t, golden, xres, label)
			}
		}
	}
}

func TestTransformedOverheadIsPositive(t *testing.T) {
	m := buildLinkedList()
	golden := runGolden(t, m, 1)
	xres := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS, Seed: 7}, 1)
	if xres.Cycles <= golden.Cycles {
		t.Errorf("transformed cycles %d not above golden %d", xres.Cycles, golden.Cycles)
	}
	if xres.Mem.HeapAllocs <= golden.Mem.HeapAllocs {
		t.Errorf("transformed allocs %d not above golden %d", xres.Mem.HeapAllocs, golden.Mem.HeapAllocs)
	}
}

func TestSDSAllocatesShadowsMDSDoesNot(t *testing.T) {
	m := buildLinkedList()
	sds := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS, Seed: 7}, 1)
	mds := runTransformed(t, m, dpmr.Config{Design: dpmr.MDS, Seed: 7}, 1)
	// LinkedList contains a pointer, so SDS adds a third (shadow) object
	// per node: memory footprint strictly above MDS (§4.1: SDS 2–4×,
	// MDS 2×).
	if sds.Mem.HeapPeak <= mds.Mem.HeapPeak {
		t.Errorf("SDS heap peak %d not above MDS %d", sds.Mem.HeapPeak, mds.Mem.HeapPeak)
	}
	if sds.Mem.HeapAllocs != mds.Mem.HeapAllocs+10+1 { // 10 nodes + argv? no argv: 10 shadow nodes
		t.Logf("allocs: sds=%d mds=%d (informational)", sds.Mem.HeapAllocs, mds.Mem.HeapAllocs)
	}
}

// Figure 2.9/2.10 structural expectations on the transformed text.
func TestTransformedTextSDS(t *testing.T) {
	m := buildLinkedList()
	xm, err := dpmr.Transform(m, dpmr.Config{Design: dpmr.SDS})
	if err != nil {
		t.Fatal(err)
	}
	text := xm.String()
	for _, want := range []string{
		"@mainAug",               // §3.1.1 main renaming
		"rvSop",                  // augmented pointer-return parameter
		"last_r",                 // ROP parameter
		"last_s",                 // NSOP parameter
		"malloc %LinkedList.sdw", // shadow object allocation
		"assert",                 // load checks
	} {
		if !strings.Contains(text, want) {
			t.Errorf("transformed module missing %q", want)
		}
	}
	// New main calls mainAug.
	mainFn := xm.Func("main")
	if mainFn == nil {
		t.Fatal("no synthesized main")
	}
	if !strings.Contains(mainFn.String(), "call @mainAug") {
		t.Error("main must delegate to mainAug")
	}
}

func TestTransformedTextMDS(t *testing.T) {
	m := buildLinkedList()
	xm, err := dpmr.Transform(m, dpmr.Config{Design: dpmr.MDS})
	if err != nil {
		t.Fatal(err)
	}
	text := xm.String()
	if strings.Contains(text, ".sdw") {
		t.Error("MDS must not allocate shadow objects")
	}
	if !strings.Contains(text, "rvRopPtr") {
		t.Error("MDS pointer returns use rvRopPtr")
	}
}

// buildOverflow constructs a program with a deliberate buffer overflow
// whose golden run silently corrupts a neighbour object.
func buildOverflow() *ir.Module {
	m := ir.NewModule("overflow")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	x := b.MallocN(ir.I64, b.I64(3)) // 24-byte class
	y := b.MallocN(ir.I64, b.I64(3))
	b.Store(b.Index(x, b.I64(0)), b.I64(7))
	b.Store(b.Index(y, b.I64(0)), b.I64(5))
	// Out-of-bounds store: x[5] lands 40 bytes past x — in the golden
	// layout that is y[0]; in the DPMR layout it is the replica of x.
	b.Store(b.Index(x, b.I64(5)), b.I64(999))
	v := b.Load(b.Index(x, b.I64(0)))
	w := b.Load(b.Index(y, b.I64(0)))
	b.Out(b.Add(v, w), ir.OutInt)
	b.Ret(b.I64(0))
	return m
}

func TestOverflowDetectedByImplicitDiversity(t *testing.T) {
	m := buildOverflow()
	golden := interp.Run(m, interp.Config{Externs: extlib.Base()})
	if golden.Kind != interp.ExitNormal {
		t.Fatalf("golden: %v (%s)", golden.Kind, golden.Reason)
	}
	// Golden output is corrupted (7+999 instead of 7+5): the bug is
	// silent there.
	if string(golden.Output) != "1006\n" {
		t.Fatalf("golden output %q", golden.Output)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xres := runTransformed(t, m, dpmr.Config{Design: design}, 1)
		if xres.Kind != interp.ExitDetect {
			t.Errorf("%v: overflow not detected: %v (%s) out=%q", design, xres.Kind, xres.Reason, xres.Output)
		}
	}
}

// buildDanglingRead reads a freed buffer at word 1 (word 0 is clobbered by
// allocator metadata, word 1 keeps stale data).
func buildDanglingRead() *ir.Module {
	m := ir.NewModule("dangling")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	x := b.MallocN(ir.I64, b.I64(3))
	b.Store(b.Index(x, b.I64(1)), b.I64(7))
	b.Free(x)
	v := b.Load(b.Index(x, b.I64(1))) // read after free
	b.Out(v, ir.OutInt)
	b.Ret(b.I64(0))
	return m
}

func TestZeroBeforeFreeDetectsDanglingRead(t *testing.T) {
	m := buildDanglingRead()
	// Without diversity both application and replica read the same stale
	// value: undetected (the §2.6 motivation for zero-before-free).
	plain := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS, Diversity: dpmr.NoDiversity{}}, 1)
	if plain.Kind != interp.ExitNormal {
		t.Fatalf("no-diversity: %v (%s)", plain.Kind, plain.Reason)
	}
	// With zero-before-free the replica reads 0 while the application
	// reads 7: detected.
	zbf := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS, Diversity: dpmr.ZeroBeforeFree{}}, 1)
	if zbf.Kind != interp.ExitDetect {
		t.Errorf("zero-before-free: %v (%s), want detection", zbf.Kind, zbf.Reason)
	}
}

func TestRearrangeHeapChangesReplicaPlacement(t *testing.T) {
	m := buildLinkedList()
	golden := runGolden(t, m, 1)
	xres := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS, Diversity: dpmr.RearrangeHeap{}}, 1)
	assertEquivalent(t, golden, xres, "rearrange-heap")
	plain := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS}, 1)
	if xres.Mem.HeapAllocs <= plain.Mem.HeapAllocs {
		t.Error("rearrange-heap must issue extra (dummy) allocations")
	}
}

func TestRestrictionVerifierIntToPtr(t *testing.T) {
	m := ir.NewModule("i2p")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	p := b.Malloc(ir.I64)
	raw := b.PtrToInt(p)
	q := b.IntToPtr(raw, ir.I64)
	b.Ret(b.Load(q))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		if _, err := dpmr.Transform(m, dpmr.Config{Design: design}); err == nil {
			t.Errorf("%v: int-to-pointer cast must be rejected", design)
		}
	}
}

func TestRestrictionVerifierPointerTyping(t *testing.T) {
	m := ir.NewModule("badstore")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	slot := b.Malloc(ir.I64)
	p := b.Malloc(ir.I32)
	// Store a pointer through an i64*-typed slot: forbidden both designs.
	b.Store(slot, b.PtrToInt(p)) // legal: stores an integer
	slotAsPP := b.Cast(slot, ir.Ptr(ir.I32))
	b.Store(slotAsPP, p) // pointer stored through... actually typed fine
	b.Ret(b.I64(0))
	// Build the actual violation: store pointer via integer-typed slot.
	m2 := ir.NewModule("badstore2")
	b2 := ir.NewBuilder(m2)
	b2.Function("main", ir.I64, nil)
	islot := b2.Malloc(ir.I64)
	q := b2.Malloc(ir.I32)
	b2.B.Append(&ir.Store{Ptr: islot, Val: q})
	b2.Ret(b2.I64(0))
	err := dpmr.VerifyRestrictions(m2, dpmr.SDS)
	if err == nil {
		t.Error("SDS: pointer stored as non-pointer must be rejected")
	}
	if err := dpmr.VerifyRestrictions(m2, dpmr.MDS); err == nil {
		t.Error("MDS: pointer stored as non-pointer must be rejected")
	}
}

func TestSDSRejectsNonPointerThroughPointerSlot(t *testing.T) {
	m := ir.NewModule("nonptr")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	pp := b.Malloc(ir.Ptr(ir.I64))
	v := b.I64(7)
	b.B.Append(&ir.Store{Ptr: pp, Val: v})
	b.Ret(b.I64(0))
	if err := dpmr.VerifyRestrictions(m, dpmr.SDS); err == nil {
		t.Error("SDS requires non-pointers typed as non-pointers at stores")
	}
	// §4.4: MDS drops this restriction.
	if err := dpmr.VerifyRestrictions(m, dpmr.MDS); err != nil {
		t.Errorf("MDS should accept: %v", err)
	}
}

func TestMDSAllowsRawPointerArithmeticSDSRejects(t *testing.T) {
	m := ir.NewModule("ptrarith")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	arr := b.MallocN(ir.I64, b.I64(4))
	b.Store(b.Index(arr, b.I64(2)), b.I64(77))
	// Raw pointer arithmetic: p2 = arr + 16 bytes.
	p2 := b.Reg("p2", ir.Ptr(ir.I64))
	b.B.Append(&ir.BinOp{Dst: p2, X: arr, Y: b.I64(16), Op: ir.OpAdd})
	b.Ret(b.Load(p2))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if _, err := dpmr.Transform(m, dpmr.Config{Design: dpmr.SDS}); err == nil {
		t.Error("SDS must reject raw pointer arithmetic")
	}
	xres := runTransformed(t, m, dpmr.Config{Design: dpmr.MDS}, 1)
	if xres.Kind != interp.ExitNormal || xres.Code != 77 {
		t.Errorf("MDS pointer arithmetic: %v code %d (%s)", xres.Kind, xres.Code, xres.Reason)
	}
}

func TestGlobalsReplicatedWithRefs(t *testing.T) {
	m := ir.NewModule("globals")
	cnt := m.AddGlobal("counter", ir.I64)
	cnt.Init = []byte{9, 0, 0, 0, 0, 0, 0, 0}
	holder := m.AddGlobal("holder", ir.Ptr(ir.I64))
	holder.Refs = []ir.RefInit{{Offset: 0, Global: "counter"}}
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	hp := b.GlobalAddr("holder")
	cp := b.Load(hp)
	v := b.Load(cp)
	b.Store(cp, b.Add(v, b.I64(1)))
	b.Ret(b.Load(b.GlobalAddr("counter")))
	golden := runGolden(t, m, 1)
	if golden.Code != 10 {
		t.Fatalf("golden code %d", golden.Code)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xres := runTransformed(t, m, dpmr.Config{Design: design}, 1)
		assertEquivalent(t, golden, xres, design.String()+"/globals")
	}
}

func TestExternWrappersStrcpyPuts(t *testing.T) {
	m := ir.NewModule("externs")
	if err := extlib.Declare(m, "strcpy", "puts", "strlen"); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	src := b.MallocN(ir.I8, b.I64(16))
	for i, c := range []byte("hello") {
		b.Store(b.Index(src, b.I64(int64(i))), b.I8(int64(c)))
	}
	b.Store(b.Index(src, b.I64(5)), b.I8(0))
	dst := b.MallocN(ir.I8, b.I64(16))
	cp := b.Call("strcpy", dst, src)
	b.Call("puts", cp)
	n := b.Call("strlen", cp)
	b.Ret(n)
	golden := runGolden(t, m, 1)
	if string(golden.Output) != "hello\n" || golden.Code != 5 {
		t.Fatalf("golden: %q code %d", golden.Output, golden.Code)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xres := runTransformed(t, m, dpmr.Config{Design: design}, 1)
		assertEquivalent(t, golden, xres, design.String()+"/strcpy")
	}
}

func TestQsortWrapperWithCallback(t *testing.T) {
	m := ir.NewModule("qsort")
	if err := extlib.Declare(m, "qsort_i64"); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(m)
	// Comparator: *a - *b.
	cmp := b.Function("cmpI64", ir.I64, []string{"a", "b"}, ir.Ptr(ir.I64), ir.Ptr(ir.I64))
	av := b.Load(cmp.Params[0])
	bv := b.Load(cmp.Params[1])
	b.Ret(b.Sub(av, bv))

	b.Function("main", ir.I64, nil)
	arr := b.MallocN(ir.I64, b.I64(8))
	vals := []int64{5, 3, 8, 1, 9, 2, 7, 4}
	for i, v := range vals {
		b.Store(b.Index(arr, b.I64(int64(i))), b.I64(v))
	}
	fp := b.FuncAddr("cmpI64")
	b.Call("qsort_i64", arr, b.I64(8), fp)
	b.ForRange("i", b.I64(0), b.I64(8), func(i *ir.Reg) {
		b.OutInt(b.Load(b.Index(arr, i)))
	})
	b.Ret(b.I64(0))

	golden := runGolden(t, m, 1)
	if string(golden.Output) != "1\n2\n3\n4\n5\n7\n8\n9\n" {
		t.Fatalf("golden: %q", golden.Output)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xres := runTransformed(t, m, dpmr.Config{Design: design}, 1)
		assertEquivalent(t, golden, xres, design.String()+"/qsort")
	}
}

func TestFunctionPointerIndirectCalls(t *testing.T) {
	m := ir.NewModule("fnptr")
	b := ir.NewBuilder(m)
	sig := ir.FuncOf(ir.I64, ir.I64)
	b.Function("twice", ir.I64, []string{"x"}, ir.I64)
	b.Ret(b.Mul(b.F.Params[0], b.I64(2)))
	b.Function("thrice", ir.I64, []string{"x"}, ir.I64)
	b.Ret(b.Mul(b.F.Params[0], b.I64(3)))

	b.Function("main", ir.I64, nil)
	slot := b.Malloc(ir.Ptr(sig))
	b.Store(slot, b.FuncAddr("twice"))
	f1 := b.Load(slot)
	r1 := b.CallPtr(f1, b.I64(10))
	b.Store(slot, b.FuncAddr("thrice"))
	f2 := b.Load(slot)
	r2 := b.CallPtr(f2, b.I64(10))
	b.Free(slot)
	b.Ret(b.Add(r1, r2))

	golden := runGolden(t, m, 1)
	if golden.Code != 50 {
		t.Fatalf("golden code %d", golden.Code)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xres := runTransformed(t, m, dpmr.Config{Design: design}, 1)
		assertEquivalent(t, golden, xres, design.String()+"/fnptr")
	}
}

func TestArgvReplication(t *testing.T) {
	m := ir.NewModule("argvprog")
	if err := extlib.Declare(m, "atoi", "puts"); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, []string{"argc", "argv"}, ir.I64, ir.Ptr(ir.Ptr(ir.I8)))
	argc, argv := b.F.Params[0], b.F.Params[1]
	sum := b.Reg("sum", ir.I64)
	b.MoveTo(sum, b.I64(0))
	b.ForRange("i", b.I64(1), argc, func(i *ir.Reg) {
		arg := b.Load(b.Index(argv, i))
		b.Call("puts", arg)
		v := b.Call("atoi", arg)
		b.BinTo(sum, ir.OpAdd, sum, v)
	})
	b.Ret(sum)

	args := []string{"12", "30"}
	golden := interp.Run(m, interp.Config{Externs: extlib.Base(), Args: args})
	if golden.Kind != interp.ExitNormal || golden.Code != 42 {
		t.Fatalf("golden: %v code %d (%s)", golden.Kind, golden.Code, golden.Reason)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xm, err := dpmr.Transform(m, dpmr.Config{Design: design})
		if err != nil {
			t.Fatalf("%v: %v", design, err)
		}
		xres := interp.Run(xm, interp.Config{Externs: extlib.Wrapped(design), Args: args})
		assertEquivalent(t, golden, xres, design.String()+"/argv")
	}
}

func TestWastefulShadowSizingAblation(t *testing.T) {
	m := buildLinkedList()
	golden := runGolden(t, m, 1)
	exact := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS}, 1)
	waste := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS, WastefulShadowSizing: true}, 1)
	assertEquivalent(t, golden, waste, "wasteful sizing")
	if waste.Mem.HeapPeak <= exact.Mem.HeapPeak {
		t.Errorf("wasteful sizing peak %d not above exact %d", waste.Mem.HeapPeak, exact.Mem.HeapPeak)
	}
}

func TestStaticPolicyReducesChecksTemporalAddsWork(t *testing.T) {
	m := buildLinkedList()
	all := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS, Policy: dpmr.AllLoads{}}, 1)
	s10 := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS, Policy: dpmr.StaticLoadChecking{Percent: 10}}, 1)
	tmp := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS, Policy: dpmr.TemporalHalf}, 1)
	if s10.Cycles >= all.Cycles {
		t.Errorf("static 10%% cycles %d not below all-loads %d", s10.Cycles, all.Cycles)
	}
	// §3.8: temporal checking *increases* overhead relative to all loads
	// (gate computation, extra branches).
	if tmp.Cycles <= all.Cycles {
		t.Errorf("temporal 1/2 cycles %d not above all-loads %d", tmp.Cycles, all.Cycles)
	}
}

func TestPeriodicPolicyCheaperThanTemporal(t *testing.T) {
	m := buildLinkedList()
	tmp := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS, Policy: dpmr.TemporalHalf}, 1)
	per := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS, Policy: dpmr.PeriodicLoadChecking{Period: 2}}, 1)
	if per.Cycles >= tmp.Cycles {
		t.Errorf("periodic cycles %d not below temporal %d (Fig 3.16 optimization)", per.Cycles, tmp.Cycles)
	}
}

func TestTemporalPolicyStillDetects(t *testing.T) {
	// A repeated overflow read: even with reduced checking, periodicity
	// of the bug lets temporal checking catch it (§3.8 robustness).
	m := ir.NewModule("periodicbug")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	x := b.MallocN(ir.I64, b.I64(3))
	y := b.MallocN(ir.I64, b.I64(3))
	b.Store(b.Index(y, b.I64(0)), b.I64(1))
	// Corrupt all three words of x's replica (overflow out of x).
	for k := int64(5); k <= 7; k++ {
		b.Store(b.Index(x, b.I64(k)), b.I64(999))
	}
	acc := b.Reg("acc", ir.I64)
	b.MoveTo(acc, b.I64(0))
	b.ForRange("i", b.I64(0), b.I64(200), func(i *ir.Reg) {
		b.BinTo(acc, ir.OpAdd, acc, b.Load(b.Index(x, b.I64(0))))
		b.BinTo(acc, ir.OpAdd, acc, b.Load(b.Index(x, b.I64(1))))
		b.BinTo(acc, ir.OpAdd, acc, b.Load(b.Index(x, b.I64(2))))
	})
	b.Out(acc, ir.OutInt)
	b.Ret(b.I64(0))
	for _, pol := range []dpmr.Policy{dpmr.TemporalEighth, dpmr.StaticLoadChecking{Percent: 50}} {
		xres := runTransformed(t, m, dpmr.Config{Design: dpmr.SDS, Policy: pol, Seed: 2}, 1)
		if xres.Kind != interp.ExitDetect {
			t.Errorf("%s: %v (%s), want detection", pol.Name(), xres.Kind, xres.Reason)
		}
	}
}

func TestStackAllocationsReplicated(t *testing.T) {
	m := ir.NewModule("stack")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	p := b.Alloca(ir.I64)
	b.Store(p, b.I64(11))
	arr := b.AllocaN(ir.I32, b.I64(4))
	b.Store(b.Index(arr, b.I64(2)), b.I32(31))
	v := b.Load(p)
	w := b.Convert(b.Load(b.Index(arr, b.I64(2))), ir.I64)
	b.Ret(b.Add(v, w))
	golden := runGolden(t, m, 1)
	if golden.Code != 42 {
		t.Fatalf("golden code %d", golden.Code)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xres := runTransformed(t, m, dpmr.Config{Design: design}, 1)
		assertEquivalent(t, golden, xres, design.String()+"/stack")
	}
}

func TestDiversityAndPolicyLookups(t *testing.T) {
	for _, name := range []string{"no-diversity", "zero-before-free", "rearrange-heap", "pad-malloc 8", "pad-malloc 1024"} {
		d, err := dpmr.DiversityByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if d.Name() != name && name != "no-diversity" {
			t.Errorf("round trip %q → %q", name, d.Name())
		}
	}
	if _, err := dpmr.DiversityByName("bogus"); err == nil {
		t.Error("bogus diversity must error")
	}
	for _, name := range []string{"all loads", "temporal 1/2", "static 10%", "periodic 1/2"} {
		if _, err := dpmr.PolicyByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := dpmr.PolicyByName("bogus"); err == nil {
		t.Error("bogus policy must error")
	}
}
