package dpmr_test

import (
	"bytes"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/workloads"
)

// TestTransformedModulesSurviveTextRoundTrip prints DPMR-transformed
// workload modules, parses them back, and checks the reparsed program
// runs bit-identically (output, exit code, and cycle-for-cycle) — the
// strongest evidence that the printer/parser pair faithfully carries the
// full instrumented instruction stream, shadow types included.
func TestTransformedModulesSurviveTextRoundTrip(t *testing.T) {
	for _, wname := range []string{"mcf", "bzip2"} {
		wname := wname
		for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
			design := design
			t.Run(wname+"/"+design.String(), func(t *testing.T) {
				t.Parallel()
				w, err := workloads.ByName(wname)
				if err != nil {
					t.Fatal(err)
				}
				xm, err := dpmr.Transform(w.Build(), dpmr.Config{
					Design:    design,
					Diversity: dpmr.ZeroBeforeFree{},
					Policy:    dpmr.StaticLoadChecking{Percent: 50},
					Seed:      5,
				})
				if err != nil {
					t.Fatal(err)
				}
				text := xm.String()
				back, err := ir.Parse(text)
				if err != nil {
					t.Fatalf("parse of transformed module: %v", err)
				}
				if err := ir.Verify(back); err != nil {
					t.Fatalf("reparsed module invalid: %v", err)
				}
				cfg := interp.Config{Externs: extlib.Wrapped(design), Seed: 3}
				r1 := interp.Run(xm, cfg)
				r2 := interp.Run(back, cfg)
				if r1.Kind != interp.ExitNormal {
					t.Fatalf("original: %v (%s)", r1.Kind, r1.Reason)
				}
				if r2.Kind != r1.Kind || r2.Code != r1.Code || !bytes.Equal(r1.Output, r2.Output) {
					t.Errorf("reparsed run diverged: %v/%d vs %v/%d", r1.Kind, r1.Code, r2.Kind, r2.Code)
				}
				if r1.Cycles != r2.Cycles {
					t.Errorf("cycle clocks differ: %d vs %d", r1.Cycles, r2.Cycles)
				}
			})
		}
	}
}

// TestWorkloadSourcesRoundTrip checks untransformed workloads too.
func TestWorkloadSourcesRoundTrip(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			m := w.Build()
			back, err := ir.Parse(m.String())
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			cfg := interp.Config{Externs: extlib.Base()}
			r1 := interp.Run(m, cfg)
			r2 := interp.Run(back, cfg)
			if !bytes.Equal(r1.Output, r2.Output) || r1.Code != r2.Code || r1.Cycles != r2.Cycles {
				t.Error("reparsed workload diverged from original")
			}
		})
	}
}
