package dpmr_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dpmr/internal/dpmr"
)

var updateGolden = flag.Bool("update", false, "rewrite golden transform files")

// TestGoldenTransformFigures pins the transformed form of the paper's
// running example — createNode/getSum under SDS (Figures 2.9/2.10) and MDS
// (Figures 4.1/4.2) — as golden files. Any change to the transformation's
// output shape shows up as a reviewable diff; regenerate intentionally
// with `go test ./internal/dpmr -run Golden -update`.
func TestGoldenTransformFigures(t *testing.T) {
	for _, tc := range []struct {
		design dpmr.Design
		file   string
	}{
		{dpmr.SDS, "linkedlist_sds.golden"},
		{dpmr.MDS, "linkedlist_mds.golden"},
	} {
		tc := tc
		t.Run(tc.design.String(), func(t *testing.T) {
			m := buildLinkedList()
			xm, err := dpmr.Transform(m, dpmr.Config{Design: tc.design})
			if err != nil {
				t.Fatal(err)
			}
			got := xm.Func("createNode").String() + "\n" + xm.Func("getSum").String()
			path := filepath.Join("testdata", tc.file)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("transformed %v output changed; run with -update if intentional.\n--- got ---\n%s\n--- want ---\n%s",
					tc.design, got, want)
			}
		})
	}
}
