// Package dpmr implements Diverse Partial Memory Replication: the paper's
// compiler transformation that replicates a program's data memory inside a
// single address space, diversifies the replica, and inserts state
// comparisons that detect memory safety errors.
//
// The package provides both designs — SDS (Shadow Data Structures,
// Chapter 2) and MDS (Mirrored Data Structures, Chapter 4) — the diversity
// transformations of Table 2.8, the state comparison policies of §2.7, the
// input-program restriction verifiers of §2.9 and §4.4, and the hooks that
// Chapter 5's DSA-refined partial replication uses to exclude
// unanalyzable memory from replication.
package dpmr

import (
	"dpmr/internal/ir"
	"dpmr/internal/shadow"
)

// Design re-exports the two DPMR designs.
type Design = shadow.Design

// Design values.
const (
	SDS = shadow.SDS
	MDS = shadow.MDS
)

// Exclusion tells the transformer which parts of the program must not be
// replicated. Chapter 5 derives it from Data Structure Analysis (markX,
// Figure 5.7); by default nothing is excluded.
type Exclusion interface {
	// Site reports whether the allocation site is excluded from
	// replication.
	Site(site int) bool
	// Reg reports whether the pointer register (by function name and
	// register ID in the *input* module) may point to excluded memory.
	Reg(fn string, regID int) bool
}

// noExclusion replicates everything.
type noExclusion struct{}

func (noExclusion) Site(int) bool        { return false }
func (noExclusion) Reg(string, int) bool { return false }

// Config controls a DPMR transformation.
type Config struct {
	// Design selects SDS or MDS. Zero value means SDS.
	Design Design
	// Diversity is the replica diversity transformation (Table 2.8).
	// Nil means no explicit diversity (implicit diversity only).
	Diversity Diversity
	// Policy is the state comparison policy (§2.7). Nil means all-loads.
	Policy Policy
	// Seed drives compile-time randomness (static load-checking site
	// selection).
	Seed int64
	// SkipRestrictionCheck disables the §2.9/§4.4 input verifier. The
	// DSA-refined pipeline sets this, providing Exclude instead.
	SkipRestrictionCheck bool
	// Exclude marks memory that must not be replicated (Chapter 5).
	Exclude Exclusion
	// WrapperName maps an external function name to the name of its
	// external function wrapper (§2.8). Nil means name + "__dpmr".
	WrapperName func(string) string
	// WastefulShadowSizing allocates 2×sizeof(at(t)) for shadow objects
	// instead of sizeof(st(at(t))) — the §2.9 alternative called out as
	// "quite wasteful"; kept as an ablation.
	WastefulShadowSizing bool
}

func (c Config) withDefaults() Config {
	if c.Design == 0 {
		c.Design = SDS
	}
	if c.Diversity == nil {
		c.Diversity = NoDiversity{}
	}
	if c.Policy == nil {
		c.Policy = AllLoads{}
	}
	if c.Exclude == nil {
		c.Exclude = noExclusion{}
	}
	if c.WrapperName == nil {
		c.WrapperName = DefaultWrapperName
	}
	return c
}

// DefaultWrapperName is the default external-wrapper naming scheme.
func DefaultWrapperName(name string) string { return name + "__dpmr" }

// Names of synthesized module artifacts.
const (
	// MainAugName is what main() is renamed to (§3.1.1).
	MainAugName = "mainAug"
	// maskCounterGlobal backs temporal load-checking (Table 2.9).
	maskCounterGlobal = "dpmr.maskCounter"
	// rearrangeBufGlobal is rearrange-heap's pointer buffer (Table 2.8).
	rearrangeBufGlobal = "dpmr.rearrangeBuf"
	// ArgvRepExtern / ArgvSdwExtern build replica and shadow memory for
	// command-line arguments (Figure 3.1).
	ArgvRepExtern = "dpmr.argv_rep"
	ArgvSdwExtern = "dpmr.argv_sdw"
)

// replicaSuffix / shadowSuffix name replica and shadow globals.
const (
	replicaSuffix = ".rep"
	shadowSuffix  = ".sdw"
)

// nsopTypeFor returns the register type of an NSOP companion for an
// original pointer of type pt: st(at(elem))*, or void* when the shadow is
// null.
func nsopTypeFor(comp *shadow.Computer, pt *ir.PointerType) ir.Type {
	if sat := comp.ShadowAug(pt.Elem); sat != nil {
		return ir.Ptr(sat)
	}
	return ir.VoidPtr()
}
