package dpmr

import (
	"fmt"

	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

// Diversity is a replica diversity transformation (Table 2.8). It rewrites
// the replica's heap allocation and deallocation behaviour; all other
// replica behaviour follows the standard transformation.
type Diversity interface {
	Name() string
	// Prepare may add module-level artifacts (globals) to the output
	// module before any function is transformed.
	Prepare(m *ir.Module)
	// ReplicaMalloc emits IR allocating the replica heap object for
	// count (nil = one) elements of elem, returning a Ptr(elem) register.
	ReplicaMalloc(b *ir.Builder, elem ir.Type, count *ir.Reg) *ir.Reg
	// ReplicaFree emits IR deallocating the replica heap object.
	ReplicaFree(b *ir.Builder, pr *ir.Reg)
}

// NoDiversity performs plain replication: only the implicit diversity of
// interleaved app/replica/shadow allocation applies (§2.1, Figure 2.1).
type NoDiversity struct{}

// Name implements Diversity.
func (NoDiversity) Name() string { return "no-diversity" }

// Prepare implements Diversity.
func (NoDiversity) Prepare(*ir.Module) {}

// ReplicaMalloc implements Diversity.
func (NoDiversity) ReplicaMalloc(b *ir.Builder, elem ir.Type, count *ir.Reg) *ir.Reg {
	if count == nil {
		return b.Malloc(elem)
	}
	return b.MallocN(elem, count)
}

// ReplicaFree implements Diversity.
func (NoDiversity) ReplicaFree(b *ir.Builder, pr *ir.Reg) { b.Free(pr) }

// PadMalloc increases replica heap requests by a static amount of padding
// (pad-malloc-y): xr ← (at(τ)*)malloc(int8[sizeof(at(τ)) + y]). Chosen to
// target buffer overflows: the initial portion of a replica overflow
// writes into unused padding (§2.6).
type PadMalloc struct {
	// Pad is the number of extra bytes (8, 32, 256, 1024 in the paper).
	Pad int
}

// Name implements Diversity.
func (p PadMalloc) Name() string { return fmt.Sprintf("pad-malloc %d", p.Pad) }

// Prepare implements Diversity.
func (PadMalloc) Prepare(*ir.Module) {}

// ReplicaMalloc implements Diversity.
func (p PadMalloc) ReplicaMalloc(b *ir.Builder, elem ir.Type, count *ir.Reg) *ir.Reg {
	stride := int64(interp.PaddedSize(elem))
	var size *ir.Reg
	if count == nil {
		size = b.I64(stride + int64(p.Pad))
	} else {
		c64 := count
		if !ir.TypesEqual(count.Type, ir.I64) {
			c64 = b.Convert(count, ir.I64)
		}
		size = b.Add(b.Mul(c64, b.I64(stride)), b.I64(int64(p.Pad)))
	}
	raw := b.MallocN(ir.I8, size)
	return b.Cast(raw, elem)
}

// ReplicaFree implements Diversity.
func (PadMalloc) ReplicaFree(b *ir.Builder, pr *ir.Reg) { b.Free(pr) }

// ZeroBeforeFree writes zeros over the replica buffer prior to
// deallocation, so reads-after-free of the replica observe zeros while
// the application reads stale data — making dangling pointer errors
// manifest differently (§2.6).
type ZeroBeforeFree struct{}

// Name implements Diversity.
func (ZeroBeforeFree) Name() string { return "zero-before-free" }

// Prepare implements Diversity.
func (ZeroBeforeFree) Prepare(*ir.Module) {}

// ReplicaMalloc implements Diversity.
func (ZeroBeforeFree) ReplicaMalloc(b *ir.Builder, elem ir.Type, count *ir.Reg) *ir.Reg {
	return NoDiversity{}.ReplicaMalloc(b, elem, count)
}

// ReplicaFree implements Diversity (Table 2.8: zero the payload, then
// free).
func (ZeroBeforeFree) ReplicaFree(b *ir.Builder, pr *ir.Reg) {
	size := b.HeapBufSize(pr)
	bytes := b.Cast(pr, ir.I8)
	zero := b.I8(0)
	b.ForRange("zbf", b.I64(0), size, func(i *ir.Reg) {
		b.Store(b.Index(bytes, i), zero)
	})
	b.Free(pr)
}

// RearrangeHeap gives each replica heap object a randomized location by
// allocating 1..20 dummy buffers first and freeing them after (Table 2.8).
// Designed to detect dangling pointers: a reallocated application object
// is unlikely to pair with the memory its stale replica occupied (§2.6).
type RearrangeHeap struct{}

// Name implements Diversity.
func (RearrangeHeap) Name() string { return "rearrange-heap" }

// Prepare implements Diversity: B ← global(void*[20]).
func (RearrangeHeap) Prepare(m *ir.Module) {
	if m.Global(rearrangeBufGlobal) == nil {
		m.AddGlobal(rearrangeBufGlobal, ir.Array(ir.VoidPtr(), 20))
	}
}

// ReplicaMalloc implements Diversity.
func (RearrangeHeap) ReplicaMalloc(b *ir.Builder, elem ir.Type, count *ir.Reg) *ir.Reg {
	n := b.RandInt(1, 20)
	buf := b.GlobalAddr(rearrangeBufGlobal)
	b.ForRange("rhfill", b.I64(0), n, func(i *ir.Reg) {
		var d *ir.Reg
		if count == nil {
			d = b.Malloc(elem)
		} else {
			d = b.MallocN(elem, count)
		}
		b.Store(b.Index(buf, i), b.Cast(d, ir.Void))
	})
	var pr *ir.Reg
	if count == nil {
		pr = b.Malloc(elem)
	} else {
		pr = b.MallocN(elem, count)
	}
	b.ForRange("rhdrain", b.I64(0), n, func(i *ir.Reg) {
		b.Free(b.Load(b.Index(buf, i)))
	})
	return pr
}

// ReplicaFree implements Diversity.
func (RearrangeHeap) ReplicaFree(b *ir.Builder, pr *ir.Reg) { b.Free(pr) }

// DiversityByName resolves the paper's diversity transformation names,
// used by CLIs and the harness.
func DiversityByName(name string) (Diversity, error) {
	switch name {
	case "no-diversity", "", "none":
		return NoDiversity{}, nil
	case "zero-before-free":
		return ZeroBeforeFree{}, nil
	case "rearrange-heap":
		return RearrangeHeap{}, nil
	case "pad-malloc-8", "pad-malloc 8":
		return PadMalloc{Pad: 8}, nil
	case "pad-malloc-32", "pad-malloc 32":
		return PadMalloc{Pad: 32}, nil
	case "pad-malloc-256", "pad-malloc 256":
		return PadMalloc{Pad: 256}, nil
	case "pad-malloc-1024", "pad-malloc 1024":
		return PadMalloc{Pad: 1024}, nil
	default:
		return nil, fmt.Errorf("dpmr: unknown diversity transformation %q", name)
	}
}

// Diversities returns the full evaluated suite in the paper's order
// (Figures 3.6–3.10).
func Diversities() []Diversity {
	return []Diversity{
		NoDiversity{},
		ZeroBeforeFree{},
		RearrangeHeap{},
		PadMalloc{Pad: 8},
		PadMalloc{Pad: 32},
		PadMalloc{Pad: 256},
		PadMalloc{Pad: 1024},
	}
}
