package dpmr_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

// Differential property testing: for randomly generated (but memory-safe)
// programs, the DPMR-transformed variant must be observationally
// equivalent to the original under every design/diversity/policy — the
// paper's core correctness requirement that "the states of the application
// memory and replica memory do not diverge under error-free execution"
// (§1.1).

// genProgram builds a random but well-defined program from a seed: a few
// heap/stack arrays and a linked structure, a loop of random arithmetic,
// stores, and loads, followed by a checksum output and full teardown.
func genProgram(seed int64) *ir.Module {
	rng := rand.New(rand.NewSource(seed))
	m := ir.NewModule("fuzz")
	b := ir.NewBuilder(m)

	node := ir.NamedStruct("FNode")
	node.SetBody(ir.I64, ir.Ptr(node))

	b.Function("main", ir.I64, nil)
	const arrLen = 16
	arrA := b.MallocN(ir.I64, b.I64(arrLen))
	arrB := b.MallocN(ir.F64, b.I64(arrLen))
	arrC := b.AllocaN(ir.I64, b.I64(arrLen))
	// A short linked list exercising pointer stores/loads.
	head := b.Reg("head", ir.Ptr(node))
	b.MoveTo(head, b.Null(ir.Ptr(node)))
	listLen := rng.Intn(4) + 1
	for i := 0; i < listLen; i++ {
		n := b.Malloc(node)
		b.Store(b.Field(n, 0), b.I64(int64(rng.Intn(100))))
		b.Store(b.Field(n, 1), head)
		b.MoveTo(head, n)
	}
	for i := 0; i < arrLen; i++ {
		b.Store(b.Index(arrA, b.I64(int64(i))), b.I64(int64(rng.Intn(1000))))
		b.Store(b.Index(arrB, b.I64(int64(i))), b.Float(ir.F64, rng.Float64()*8))
		b.Store(b.Index(arrC, b.I64(int64(i))), b.I64(int64(rng.Intn(1000))))
	}

	acc := b.Reg("acc", ir.I64)
	b.MoveTo(acc, b.I64(1))
	facc := b.Reg("facc", ir.F64)
	b.MoveTo(facc, b.F64c(0))

	ops := rng.Intn(30) + 10
	for i := 0; i < ops; i++ {
		idx := b.I64(int64(rng.Intn(arrLen)))
		switch rng.Intn(7) {
		case 0: // integer load + mix
			v := b.Load(b.Index(arrA, idx))
			op := []ir.BinKind{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor, ir.OpAnd, ir.OpOr}[rng.Intn(6)]
			b.BinTo(acc, op, acc, v)
		case 1: // integer store derived from acc
			b.Store(b.Index(arrA, idx), b.Add(acc, idx))
		case 2: // float load/accumulate
			v := b.Load(b.Index(arrB, idx))
			b.BinTo(facc, ir.OpFAdd, facc, v)
		case 3: // float store
			b.Store(b.Index(arrB, idx), b.Bin(ir.OpFMul, facc, b.F64c(0.5)))
		case 4: // stack traffic
			v := b.Load(b.Index(arrC, idx))
			b.BinTo(acc, ir.OpAdd, acc, v)
			b.Store(b.Index(arrC, idx), b.Sub(acc, v))
		case 5: // list walk
			cur := b.Reg("", ir.Ptr(node))
			b.MoveTo(cur, head)
			b.While("walk", func() *ir.Reg {
				return b.Cmp(ir.CmpNE, cur, b.Null(ir.Ptr(node)))
			}, func() {
				b.BinTo(acc, ir.OpAdd, acc, b.Load(b.Field(cur, 0)))
				b.LoadTo(cur, b.Field(cur, 1))
			})
		case 6: // control flow on data
			c := b.Cmp(ir.CmpSGT, acc, b.I64(int64(rng.Intn(2000))))
			b.If(c, func() {
				b.BinTo(acc, ir.OpXor, acc, b.I64(0x5A5A))
			}, func() {
				b.BinTo(acc, ir.OpAdd, acc, b.I64(3))
			})
		}
	}
	b.OutInt(acc)
	b.Out(b.Convert(facc, ir.I64), ir.OutInt)
	// Teardown: free the list and heap arrays.
	b.While("freelist", func() *ir.Reg {
		return b.Cmp(ir.CmpNE, head, b.Null(ir.Ptr(node)))
	}, func() {
		nxt := b.Load(b.Field(head, 1))
		b.Free(head)
		b.MoveTo(head, nxt)
	})
	b.Free(arrA)
	b.Free(arrB)
	b.Ret(acc)
	return m
}

func TestDifferentialRandomProgramsSDS(t *testing.T) {
	differential(t, dpmr.Config{Design: dpmr.SDS})
}

func TestDifferentialRandomProgramsMDS(t *testing.T) {
	differential(t, dpmr.Config{Design: dpmr.MDS})
}

func TestDifferentialRandomProgramsDiversityPolicyMix(t *testing.T) {
	// Rotate through diversity/policy combinations by seed.
	divs := dpmr.Diversities()
	pols := dpmr.Policies()
	f := func(seed int64) bool {
		seed &= 0xFFFF
		cfg := dpmr.Config{
			Design:    []dpmr.Design{dpmr.SDS, dpmr.MDS}[seed%2],
			Diversity: divs[int(seed)%len(divs)],
			Policy:    pols[int(seed/2)%len(pols)],
			Seed:      seed,
		}
		return diffOne(t, seed, cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func differential(t *testing.T, cfg dpmr.Config) {
	t.Helper()
	f := func(seed int64) bool {
		return diffOne(t, seed&0xFFFF, cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func diffOne(t *testing.T, seed int64, cfg dpmr.Config) bool {
	t.Helper()
	m := genProgram(seed)
	if err := ir.Verify(m); err != nil {
		t.Logf("seed %d: generated module invalid: %v", seed, err)
		return false
	}
	golden := interp.Run(m, interp.Config{Externs: extlib.Base(), Seed: 9})
	if golden.Kind != interp.ExitNormal {
		t.Logf("seed %d: golden failed: %v (%s)", seed, golden.Kind, golden.Reason)
		return false
	}
	xm, err := dpmr.Transform(genProgram(seed), cfg)
	if err != nil {
		t.Logf("seed %d: transform: %v", seed, err)
		return false
	}
	design := cfg.Design
	if design == 0 {
		design = dpmr.SDS
	}
	res := interp.Run(xm, interp.Config{Externs: extlib.Wrapped(design), Seed: 9})
	if res.Kind != interp.ExitNormal {
		t.Logf("seed %d: transformed run diverged: %v (%s)", seed, res.Kind, res.Reason)
		return false
	}
	if res.Code != golden.Code || !bytes.Equal(res.Output, golden.Output) {
		t.Logf("seed %d: output mismatch: golden code=%d %q, dpmr code=%d %q",
			seed, golden.Code, golden.Output, res.Code, res.Output)
		return false
	}
	return true
}

// The generator itself must be deterministic per seed, or the differential
// comparison would be meaningless.
func TestGenProgramDeterministic(t *testing.T) {
	a := genProgram(7).String()
	b := genProgram(7).String()
	if a != b {
		t.Fatal("generator must be deterministic per seed")
	}
	c := genProgram(8).String()
	if a == c {
		t.Error("different seeds should generally differ")
	}
}
