package dpmr_test

import (
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

// TestStructGlobalWithEmbeddedPointerRef exercises the §2.4 global
// initialization path where a pointer sits at a non-zero offset inside a
// struct-typed global: the transform must map the initializer into the
// shadow global's ROP/NSOP slots (shadowRefOffsets).
func TestStructGlobalWithEmbeddedPointerRef(t *testing.T) {
	m := ir.NewModule("gstruct")
	target := m.AddGlobal("target", ir.I64)
	target.Init = []byte{21, 0, 0, 0, 0, 0, 0, 0}
	holder := m.AddGlobal("holder", ir.Struct(ir.I64, ir.Ptr(ir.I64), ir.F64))
	holder.Refs = []ir.RefInit{{Offset: 8, Global: "target"}}

	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	hp := b.GlobalAddr("holder")
	// Load the embedded pointer, dereference, double it.
	ptr := b.Load(b.Field(hp, 1))
	v := b.Load(ptr)
	b.Store(ptr, b.Mul(v, b.I64(2)))
	b.Ret(b.Load(b.GlobalAddr("target")))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	golden := interp.Run(m, interp.Config{Externs: extlib.Base()})
	if golden.Kind != interp.ExitNormal || golden.Code != 42 {
		t.Fatalf("golden: %v code %d (%s)", golden.Kind, golden.Code, golden.Reason)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xres := runTransformed(t, m, dpmr.Config{Design: design}, 1)
		assertEquivalent(t, golden, xres, design.String()+"/struct-global")
	}
}

// TestArrayOfPointersGlobal covers refs into array elements.
func TestArrayOfPointersGlobal(t *testing.T) {
	m := ir.NewModule("garr")
	a := m.AddGlobal("a", ir.I64)
	a.Init = []byte{10, 0, 0, 0, 0, 0, 0, 0}
	c := m.AddGlobal("c", ir.I64)
	c.Init = []byte{32, 0, 0, 0, 0, 0, 0, 0}
	table := m.AddGlobal("table", ir.Array(ir.Ptr(ir.I64), 2))
	table.Refs = []ir.RefInit{
		{Offset: 0, Global: "a"},
		{Offset: 8, Global: "c"},
	}
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	tp := b.GlobalAddr("table")
	sum := b.Reg("sum", ir.I64)
	b.MoveTo(sum, b.I64(0))
	b.ForRange("i", b.I64(0), b.I64(2), func(i *ir.Reg) {
		p := b.Load(b.Index(tp, i))
		b.BinTo(sum, ir.OpAdd, sum, b.Load(p))
	})
	b.Ret(sum)
	golden := interp.Run(m, interp.Config{Externs: extlib.Base()})
	if golden.Code != 42 {
		t.Fatalf("golden code %d (%s)", golden.Code, golden.Reason)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xres := runTransformed(t, m, dpmr.Config{Design: design}, 1)
		assertEquivalent(t, golden, xres, design.String()+"/array-global")
	}
}

// TestGlobalFunctionPointerRef covers function-pointer initializers: the
// ROP shares the application address and the NSOP stays null (§2.4).
func TestGlobalFunctionPointerRef(t *testing.T) {
	m := ir.NewModule("gfn")
	sig := ir.FuncOf(ir.I64, ir.I64)
	hook := m.AddGlobal("hook", ir.Ptr(sig))
	hook.Refs = []ir.RefInit{{Offset: 0, Func: "double"}}
	b := ir.NewBuilder(m)
	b.Function("double", ir.I64, []string{"x"}, ir.I64)
	b.Ret(b.Mul(b.F.Params[0], b.I64(2)))
	b.Function("main", ir.I64, nil)
	fp := b.Load(b.GlobalAddr("hook"))
	b.Ret(b.CallPtr(fp, b.I64(21)))
	golden := interp.Run(m, interp.Config{Externs: extlib.Base()})
	if golden.Code != 42 {
		t.Fatalf("golden code %d (%s)", golden.Code, golden.Reason)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xres := runTransformed(t, m, dpmr.Config{Design: design}, 1)
		assertEquivalent(t, golden, xres, design.String()+"/fn-global")
	}
}
