package harness

import (
	"testing"

	"dpmr/internal/interp"
)

// TestClassification pins the §3.6 outcome taxonomy against every exit
// kind the interpreter can produce.
func TestClassification(t *testing.T) {
	r := NewRunner()
	golden := &interp.Result{Kind: interp.ExitNormal, Code: 0, Output: []byte("ok\n")}
	tests := []struct {
		name    string
		res     *interp.Result
		co      bool
		nat     bool
		dpmrDet bool
		covered bool
	}{
		{
			name:    "correct output",
			res:     &interp.Result{Kind: interp.ExitNormal, Code: 0, Output: []byte("ok\n"), FaultSeen: true},
			co:      true,
			covered: true,
		},
		{
			name: "wrong output, clean exit — escaped",
			res:  &interp.Result{Kind: interp.ExitNormal, Code: 0, Output: []byte("bad\n"), FaultSeen: true},
		},
		{
			name:    "application error exit",
			res:     &interp.Result{Kind: interp.ExitNormal, Code: 2, Output: []byte("verify failed\n"), FaultSeen: true},
			nat:     true,
			covered: true,
		},
		{
			name:    "crash",
			res:     &interp.Result{Kind: interp.ExitTrap, Reason: "segv", FaultSeen: true, Cycles: 100, FaultCycle: 40},
			nat:     true,
			covered: true,
		},
		{
			name:    "dpmr detection",
			res:     &interp.Result{Kind: interp.ExitDetect, Reason: "mismatch", FaultSeen: true, Cycles: 90, FaultCycle: 50},
			dpmrDet: true,
			covered: true,
		},
		{
			name: "timeout — uncovered",
			res:  &interp.Result{Kind: interp.ExitTimeout, FaultSeen: true},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			o := r.classify(golden, tc.res)
			if o.CO != tc.co || o.NatDet != tc.nat || o.DpmrDet != tc.dpmrDet {
				t.Errorf("got CO=%v Nat=%v Dpmr=%v, want %v/%v/%v",
					o.CO, o.NatDet, o.DpmrDet, tc.co, tc.nat, tc.dpmrDet)
			}
			if o.Covered() != tc.covered {
				t.Errorf("covered = %v, want %v", o.Covered(), tc.covered)
			}
		})
	}
}

func TestT2DComputation(t *testing.T) {
	r := NewRunner()
	golden := &interp.Result{Kind: interp.ExitNormal, Code: 0, Output: []byte("ok\n")}
	res := &interp.Result{Kind: interp.ExitDetect, FaultSeen: true, Cycles: 5_000_000, FaultCycle: 1_000_000}
	o := r.classify(golden, res)
	if o.T2DCycles != 4_000_000 {
		t.Errorf("T2D = %d, want 4000000", o.T2DCycles)
	}
	// 4M cycles at 2 GHz = 2 ms.
	if ms := float64(o.T2DCycles) / CyclesPerMS; ms != 2.0 {
		t.Errorf("ms = %f", ms)
	}
	// Detection without a successful injection carries no latency.
	res2 := &interp.Result{Kind: interp.ExitDetect, FaultSeen: false, Cycles: 100}
	if o2 := r.classify(golden, res2); o2.T2DCycles != 0 {
		t.Error("no injection → no latency")
	}
}
