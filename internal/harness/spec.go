package harness

// Spec is the declarative experiment layer: one serializable value that
// says *what* to run — the paper's experiment tuple (W, C, D, I, RN)
// plus the experiment kind — separated from *how* it runs (worker
// counts, compilation, eviction, sharding: Session options and Runner
// knobs). A Spec is the single input to plan construction and the sole
// source of the SHA-256 plan fingerprint, so two processes holding the
// same Spec compute the same plan, the same trial ranges, and the same
// fingerprint — which is what lets shards, coordinator assignments, and
// -spec files all name an experiment without re-deriving state from
// command lines.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dpmr/internal/dpmr"
	"dpmr/internal/faultinject"
	"dpmr/internal/mem"
	"dpmr/internal/workloads"
)

// SpecKind selects what a Spec describes.
type SpecKind string

// The four experiment kinds.
const (
	// SpecCampaign is a fault-injection campaign: the sites × variants ×
	// runs grid of one injection kind.
	SpecCampaign SpecKind = "campaign"
	// SpecOverhead is an overhead measurement: golden plus one run per
	// DPMR variant, no injections.
	SpecOverhead SpecKind = "overhead"
	// SpecExperiment is a named figure/table of the paper (fig3.7,
	// tab4.6, …), which may run several campaigns and measurements.
	SpecExperiment SpecKind = "experiment"
	// SpecConcurrent is a concurrent-workload campaign: the workloads ×
	// variants × runs grid under the deterministic interleaving
	// scheduler, with trace-checked consistency as an extra detection
	// axis and the schedule seed varied per run instead of a fault kind.
	SpecConcurrent SpecKind = "concurrent"
)

// VariantSpec is the serializable form of a Variant: the design,
// diversity, and policy by their paper names. The zero value is stdapp.
type VariantSpec struct {
	DPMR      bool   `json:"dpmr,omitempty"`
	Design    string `json:"design,omitempty"`    // "sds" or "mds"
	Diversity string `json:"diversity,omitempty"` // dpmr.Diversity name
	Policy    string `json:"policy,omitempty"`    // dpmr.Policy name
}

// Variant resolves the names back to an executable Variant.
func (vs VariantSpec) Variant() (Variant, error) {
	if !vs.DPMR {
		return Stdapp(), nil
	}
	var d dpmr.Design
	switch vs.Design {
	case "sds", "":
		d = dpmr.SDS
	case "mds":
		d = dpmr.MDS
	default:
		return Variant{}, fmt.Errorf("harness: unknown design %q: want sds or mds", vs.Design)
	}
	div, err := dpmr.DiversityByName(vs.Diversity)
	if err != nil {
		return Variant{}, err
	}
	pol, err := dpmr.PolicyByName(vs.Policy)
	if err != nil {
		return Variant{}, err
	}
	return NewVariant(d, div, pol), nil
}

// VariantSpecOf is the inverse of VariantSpec.Variant: the canonical
// serializable name of v.
func VariantSpecOf(v Variant) VariantSpec {
	if !v.DPMR {
		return VariantSpec{}
	}
	return VariantSpec{
		DPMR:      true,
		Design:    v.Design.String(),
		Diversity: v.Diversity.Name(),
		Policy:    v.Policy.Name(),
	}
}

// VariantSpecs maps a variant list to its serializable form.
func VariantSpecs(vs ...Variant) []VariantSpec {
	out := make([]VariantSpec, len(vs))
	for i, v := range vs {
		out[i] = VariantSpecOf(v)
	}
	return out
}

// Spec declaratively describes one experiment. Field applicability by
// Kind:
//
//   - campaign:   Workloads, Variants, Inject, Runs, MaxSites,
//     TimeoutFactor, Mem
//   - overhead:   Workloads, Variants, TimeoutFactor, Mem
//   - experiment: Exp (the figure/table id), plus Quick/Runs/MaxSites/
//     Workloads overriding the generator's defaults
//   - concurrent: Workloads (concurrent set), Variants, Runs, Threads,
//     SchedSeed, TimeoutFactor, Mem
//
// The zero value is not runnable; Normalized fills defaults and
// validates. Specs marshal to JSON (the CLI -spec file format) and the
// canonical JSON of the normalized Spec is what plan fingerprints hash.
type Spec struct {
	Kind      SpecKind      `json:"kind"`
	Exp       string        `json:"exp,omitempty"`
	Workloads []string      `json:"workloads,omitempty"`
	Variants  []VariantSpec `json:"variants,omitempty"`
	// Inject names the fault kind of a campaign
	// ("heap-array-resize", "immediate-free").
	Inject string `json:"inject,omitempty"`
	// Runs per (W, C, D, I) tuple (0 = default 2; 1 in quick mode).
	Runs int `json:"runs,omitempty"`
	// MaxSites caps injection sites per workload (0 = all).
	MaxSites int `json:"maxSites,omitempty"`
	// Threads is the VM count of a concurrent group (0 = default 3).
	Threads int `json:"threads,omitempty"`
	// SchedSeed is the base interleaving seed of a concurrent campaign;
	// run rn explores schedule SchedSeed+rn (0 = default 1).
	SchedSeed int64 `json:"schedSeed,omitempty"`
	// TimeoutFactor multiplies golden steps into the step budget
	// (0 = default 20).
	TimeoutFactor uint64 `json:"timeoutFactor,omitempty"`
	// Quick restricts an experiment to two workloads, few sites, and one
	// run for smoke passes. Normalization resolves it into explicit
	// Workloads/Runs/MaxSites values.
	Quick bool `json:"quick,omitempty"`
	// Mem sizes experiment address spaces (zero = the harness defaults).
	Mem mem.Config `json:"mem"`
}

// CampaignSpec describes the injection campaign (kind, ws, vs) with the
// paper-default runs/timeout/memory; adjust fields on the result as
// needed.
func CampaignSpec(kind faultinject.Kind, ws []workloads.Workload, vs []Variant) Spec {
	return Spec{
		Kind:      SpecCampaign,
		Workloads: workloadNames(ws),
		Variants:  VariantSpecs(vs...),
		Inject:    kind.String(),
	}
}

// OverheadSpec describes the overhead measurement of the variant grid.
func OverheadSpec(ws []workloads.Workload, vs []Variant) Spec {
	return Spec{Kind: SpecOverhead, Workloads: workloadNames(ws), Variants: VariantSpecs(vs...)}
}

// ExperimentSpec describes the named figure/table.
func ExperimentSpec(id string) Spec { return Spec{Kind: SpecExperiment, Exp: id} }

// ConcurrentSpec describes the concurrent campaign of the named
// concurrent workloads over the variant grid, with the default thread
// count and schedule seed; adjust fields on the result as needed.
func ConcurrentSpec(names []string, vs []Variant) Spec {
	return Spec{Kind: SpecConcurrent, Workloads: names, Variants: VariantSpecs(vs...)}
}

func workloadNames(ws []workloads.Workload) []string {
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// defaultMem is the paper-testbed address-space geometry every
// experiment runs under unless the Spec says otherwise.
func defaultMem() mem.Config {
	return mem.Config{
		HeapBytes:   4 * 1024 * 1024,
		StackBytes:  256 * 1024,
		GlobalBytes: 64 * 1024,
	}
}

// parseInject resolves a fault-kind name (faultinject.Kind.String form).
func parseInject(name string) (faultinject.Kind, error) {
	switch name {
	case "heap-array-resize":
		return faultinject.HeapArrayResize, nil
	case "immediate-free":
		return faultinject.ImmediateFree, nil
	default:
		return 0, fmt.Errorf("harness: unknown injection %q: want heap-array-resize or immediate-free", name)
	}
}

// Normalized validates the Spec and returns its canonical form: defaults
// filled (runs, timeout factor, memory geometry, the quick-mode workload
// and site caps resolved into explicit values), variant names resolved
// to their canonical spellings, and kind-inapplicable fields cleared.
// Equal experiments normalize to byte-identical canonical JSON, which is
// what makes Fingerprint (and the plan fingerprints embedding it) stable
// across flag spellings, JSON round trips, and processes.
func (s Spec) Normalized() (Spec, error) {
	n := s
	if n.TimeoutFactor == 0 {
		n.TimeoutFactor = 20
	}
	// Non-positive counts mean "default"/"uncapped" in every spelling;
	// fold them to the canonical zero here so they cannot leak into the
	// canonical JSON and split the fingerprints of equal experiments.
	if n.Runs < 0 {
		n.Runs = 0
	}
	if n.MaxSites < 0 {
		n.MaxSites = 0
	}
	if n.Threads < 0 {
		n.Threads = 0
	}
	if (n.Mem == mem.Config{}) {
		n.Mem = defaultMem()
	}
	canonVariants := func() error {
		if len(n.Variants) == 0 {
			return fmt.Errorf("harness: %s spec: no variants", n.Kind)
		}
		vs := make([]VariantSpec, len(n.Variants))
		for i, v := range n.Variants {
			rv, err := v.Variant()
			if err != nil {
				return err
			}
			vs[i] = VariantSpecOf(rv)
		}
		n.Variants = vs
		return nil
	}
	checkWorkloads := func() error {
		if len(n.Workloads) == 0 {
			return fmt.Errorf("harness: %s spec: no workloads", n.Kind)
		}
		for _, name := range n.Workloads {
			if _, err := workloads.ByName(name); err != nil {
				return err
			}
		}
		return nil
	}
	switch n.Kind {
	case SpecCampaign:
		// Threads and SchedSeed are concurrent-kind knobs: cleared here so
		// two spellings of one campaign cannot fingerprint apart.
		n.Exp, n.Quick, n.Threads, n.SchedSeed = "", false, 0, 0
		if n.Runs <= 0 {
			n.Runs = 2
		}
		if _, err := parseInject(n.Inject); err != nil {
			return Spec{}, err
		}
		if err := checkWorkloads(); err != nil {
			return Spec{}, err
		}
		if err := canonVariants(); err != nil {
			return Spec{}, err
		}
	case SpecOverhead:
		// The overhead plan measures each variant exactly once — Runs is
		// kind-inapplicable and cleared, so two spellings of one
		// measurement cannot fingerprint apart; the concurrency knobs are
		// cleared for the same reason.
		n.Exp, n.Quick, n.Inject, n.MaxSites, n.Runs = "", false, "", 0, 0
		n.Threads, n.SchedSeed = 0, 0
		if err := checkWorkloads(); err != nil {
			return Spec{}, err
		}
		if err := canonVariants(); err != nil {
			return Spec{}, err
		}
	case SpecExperiment:
		// The figure/table id is resolved by Generate at run time (so an
		// id-less merge Spec can take the id from its partials); variants
		// and injection kinds are the generator's business, and the
		// concurrency knobs apply only to the concurrent kind.
		n.Variants, n.Inject = nil, ""
		n.Threads, n.SchedSeed = 0, 0
		if n.Quick {
			if n.Runs == 0 {
				n.Runs = 1
			}
			if n.MaxSites == 0 {
				n.MaxSites = 3
			}
			if len(n.Workloads) == 0 {
				n.Workloads = workloadNames(workloads.All()[:2])
			}
			n.Quick = false
		} else {
			if n.Runs == 0 {
				n.Runs = 2
			}
			if len(n.Workloads) == 0 {
				n.Workloads = workloadNames(workloads.All())
			}
		}
		for _, name := range n.Workloads {
			if _, err := workloads.ByName(name); err != nil {
				return Spec{}, err
			}
		}
	case SpecConcurrent:
		n.Exp, n.Quick, n.Inject, n.MaxSites = "", false, "", 0
		if n.Runs <= 0 {
			n.Runs = 2
		}
		if n.Threads == 0 {
			n.Threads = 3
		}
		if n.SchedSeed == 0 {
			n.SchedSeed = 1
		}
		if len(n.Workloads) == 0 {
			return Spec{}, fmt.Errorf("harness: %s spec: no workloads", n.Kind)
		}
		for _, name := range n.Workloads {
			if _, err := workloads.ConcurrentByName(name); err != nil {
				return Spec{}, err
			}
		}
		if err := canonVariants(); err != nil {
			return Spec{}, err
		}
	default:
		return Spec{}, fmt.Errorf("harness: spec kind %q: want campaign, overhead, experiment, or concurrent", n.Kind)
	}
	return n, nil
}

// normalizedAs normalizes and additionally requires the given kind —
// the guard every kind-specific entry point (RunCampaign, RunOverhead,
// Generate) uses so a Spec cannot be silently run as the wrong thing.
func (s Spec) normalizedAs(kind SpecKind, what string) (Spec, error) {
	n, err := s.Normalized()
	if err != nil {
		return Spec{}, err
	}
	if n.Kind != kind {
		return Spec{}, fmt.Errorf("harness: %s needs a %s spec, got kind %q", what, kind, n.Kind)
	}
	return n, nil
}

// Canonical returns the canonical JSON encoding of the normalized Spec —
// the bytes Fingerprint hashes and plan fingerprints embed.
func (s Spec) Canonical() ([]byte, error) {
	n, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Fingerprint is the SHA-256 of the Spec's canonical JSON: a stable
// identity for "the same experiment", invariant under flag-vs-file
// construction, JSON round trips, and alias spellings of variant names.
// Plan fingerprints embed the canonical JSON, so an unchanged Spec
// fingerprint implies unchanged plan fingerprints.
func (s Spec) Fingerprint() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// resolveWorkloads maps the normalized Spec's workload names back to
// their builders.
func (s Spec) resolveWorkloads() ([]workloads.Workload, error) {
	ws := make([]workloads.Workload, len(s.Workloads))
	for i, name := range s.Workloads {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		ws[i] = w
	}
	return ws, nil
}

// resolveVariants maps the normalized Spec's variant specs back to
// executable Variants.
func (s Spec) resolveVariants() ([]Variant, error) {
	vs := make([]Variant, len(s.Variants))
	for i, v := range s.Variants {
		rv, err := v.Variant()
		if err != nil {
			return nil, err
		}
		vs[i] = rv
	}
	return vs, nil
}

// derive builds a kind sub-Spec of an experiment Spec: the generator's
// campaigns and measurements inherit the experiment's workload set,
// runs, site cap, timeout factor, and memory geometry, so the sub-plans
// (and their fingerprints) are a pure function of the experiment Spec.
func (s Spec) derive(kind SpecKind) Spec {
	d := Spec{
		Kind:          kind,
		Workloads:     s.Workloads,
		Runs:          s.Runs,
		TimeoutFactor: s.TimeoutFactor,
		Mem:           s.Mem,
	}
	if kind == SpecCampaign {
		d.MaxSites = s.MaxSites
	}
	return d
}

// DecodeSpec reads a JSON Spec and normalizes it. Malformed or invalid
// input errors, never panics.
func DecodeSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("harness: decoding spec: %w", err)
	}
	return s.Normalized()
}

// LoadSpec reads a Spec from a JSON file (the CLI -spec flag).
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("harness: loading spec: %w", err)
	}
	defer f.Close()
	s, err := DecodeSpec(f)
	if err != nil {
		return Spec{}, fmt.Errorf("harness: spec %s: %w", path, err)
	}
	return s, nil
}

// Encode writes the Spec's canonical JSON followed by a newline — the
// -spec file format.
func (s Spec) Encode(w io.Writer) error {
	c, err := s.Canonical()
	if err != nil {
		return err
	}
	if _, err := w.Write(append(c, '\n')); err != nil {
		return fmt.Errorf("harness: encoding spec: %w", err)
	}
	return nil
}

// ParseSpecFlags resolves a CLI's declarative inputs to one Spec: either
// the Spec the CLI assembled from its own what-flags (base), or the
// contents of a -spec file — never a silent mix. specFile is the -spec
// flag's value ("" = flags only); whatFlags names the CLI's declarative
// flags, and explicitly setting any of them alongside -spec is a usage
// error (the file is the single source of truth, and merging the two
// would make the effective experiment depend on flag defaults the file
// never saw). The returned Spec is normalized.
func ParseSpecFlags(fs *flag.FlagSet, specFile string, base Spec, whatFlags ...string) (Spec, error) {
	if specFile == "" {
		return base.Normalized()
	}
	var conflict []string
	fs.Visit(func(f *flag.Flag) {
		for _, name := range whatFlags {
			if f.Name == name {
				conflict = append(conflict, "-"+name)
			}
		}
	})
	if len(conflict) > 0 {
		return Spec{}, fmt.Errorf("-spec and %s are mutually exclusive: the spec file is the single source of the experiment description", strings.Join(conflict, ", "))
	}
	return LoadSpec(specFile)
}

// VariantFlags is the -design/-diversity/-policy flag family dpmr-run
// and dpmrc share: one registration, one resolution, no per-binary
// drift in names, defaults, or error text.
type VariantFlags struct {
	Design    string
	Diversity string
	Policy    string
}

// Register declares the family on fs with the shared defaults.
func (f *VariantFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Design, "design", "sds", "DPMR design: sds or mds")
	fs.StringVar(&f.Diversity, "diversity", "no-diversity", "diversity transformation")
	fs.StringVar(&f.Policy, "policy", "all loads", "state comparison policy")
}

// Spec returns the flags as a DPMR VariantSpec (unresolved names).
func (f *VariantFlags) Spec() VariantSpec {
	return VariantSpec{DPMR: true, Design: f.Design, Diversity: f.Diversity, Policy: f.Policy}
}

// Variant resolves the flags, rejecting unknown names.
func (f *VariantFlags) Variant() (Variant, error) {
	return f.Spec().Variant()
}
