package harness

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestPrecompileByteIdentical: pipelined AOT compilation is pure
// execution policy — a campaign with background prefetch workers
// produces the identical result, and the module cache's once-per-key
// build discipline holds (prefetched and demand builds dedup, so the
// build count matches the unprefetched run exactly).
func TestPrecompileByteIdentical(t *testing.T) {
	direct, plain := campaignAt(t, 2)

	s, err := Start(context.Background(), smallCampaign(),
		WithParallel(2), WithPrecompile(2), WithEviction(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Campaign == nil {
		t.Fatal("prefetched whole-plan campaign returned no aggregate")
	}
	if !reflect.DeepEqual(direct.Cells, res.Campaign.Cells) ||
		!reflect.DeepEqual(direct.Conditional, res.Campaign.Conditional) {
		t.Error("campaign result with Precompile differs from the plain run")
	}
	if plainBuilds := plain.CacheStats().Builds; res.Stats.Builds != plainBuilds {
		t.Errorf("prefetch built %d modules, plain run built %d — duplicate or missing builds",
			res.Stats.Builds, plainBuilds)
	}
}

// TestPrecompileBoundsResidency: the prefetch window degrades the
// eviction policy's peak-residency bound by at most the documented
// 2*Precompile+2 admitted-but-unreached modules.
func TestPrecompileBoundsResidency(t *testing.T) {
	run := func(precompile int) CacheStats {
		s, err := Start(context.Background(), smallCampaign(),
			WithParallel(1), WithPrecompile(precompile), WithEviction(true))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	base := run(0)
	pre := run(2)
	window := 2*2 + 2
	if pre.Peak > base.Peak+window {
		t.Errorf("prefetch peak residency %d exceeds evicted baseline %d + window %d",
			pre.Peak, base.Peak, window)
	}
	if pre.Evicted == 0 {
		t.Error("eviction never fired under prefetch")
	}
}

// TestPrecompileCancel: cancelling mid-campaign with AOT prefetch
// running stops admission, drains the prefetch workers with no
// goroutine outliving the session, leaves no half-populated cache
// entry, and still returns the completed-prefix partial with ctx.Err().
func TestPrecompileCancel(t *testing.T) {
	full, err := NewRunner().RunCampaignPartial(context.Background(), smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner()
	s, err := Start(ctx, smallCampaign(), WithRunner(r),
		WithParallel(2), WithPrecompile(2), WithEviction(true))
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for ev := range s.Events() {
		if _, ok := ev.(TrialDone); ok {
			done++
			if done == 3 {
				cancel()
			}
		}
	}
	res, err := s.Wait()
	if err != context.Canceled {
		t.Fatalf("cancelled session err = %v, want context.Canceled", err)
	}
	p := res.CampaignPartial
	if p == nil || len(p.Outcomes) == 0 || p.Hi == p.Total {
		t.Fatalf("cancelled session partial wrong: %+v", p)
	}
	if !reflect.DeepEqual(p.Outcomes, full.Outcomes[p.Lo:p.Hi]) {
		t.Error("completed-prefix outcomes differ from the uncancelled run")
	}

	// Prefetch workers and the windower must not outlive the session.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines leaked after cancel under prefetch: %d before, %d after\n%s",
			before, n, buf[:runtime.Stack(buf, true)])
	}

	// No half-populated cache entry: whatever the aborted prefetch left
	// behind, rerunning the whole plan on the same Runner must reuse or
	// rebuild cleanly and reproduce the uncancelled result exactly.
	rerun, err := r.RunCampaignPartial(context.Background(), smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rerun.Outcomes, full.Outcomes) {
		t.Error("rerun on the cancelled Runner's cache differs from a fresh run")
	}
}
