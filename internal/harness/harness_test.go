package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/faultinject"
	"dpmr/internal/workloads"
)

func TestGoldenCachedAndClean(t *testing.T) {
	r := NewRunner()
	w, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	g1, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("golden results must be cached")
	}
	if g1.Code != 0 || len(g1.Output) == 0 {
		t.Error("golden run must be clean with output")
	}
}

func TestRunOnceNoInjectionIsCorrectOutput(t *testing.T) {
	r := NewRunner()
	w, _ := workloads.ByName("bzip2")
	for _, v := range []Variant{Stdapp(), NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{})} {
		o, err := r.RunOnce(w, v, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", v.Label(), err)
		}
		if !o.CO || o.SF || o.Detected() {
			t.Errorf("%s: clean run misclassified: %+v", v.Label(), o)
		}
	}
}

func TestVariantLabels(t *testing.T) {
	v := NewVariant(dpmr.SDS, dpmr.PadMalloc{Pad: 32}, dpmr.TemporalHalf)
	if v.Label() != "sds/pad-malloc 32/temporal 1/2" {
		t.Errorf("label = %q", v.Label())
	}
	if v.DiversityLabel() != "pad-malloc 32" || v.PolicyLabel() != "temporal 1/2" {
		t.Error("sub-labels wrong")
	}
	if Stdapp().Label() != "stdapp" {
		t.Error("stdapp label")
	}
}

func TestVariantSets(t *testing.T) {
	dv := DiversityVariants(dpmr.SDS)
	if len(dv) != 8 { // stdapp + 7 diversity variants
		t.Errorf("diversity variants = %d, want 8", len(dv))
	}
	pv := PolicyVariants(dpmr.MDS)
	if len(pv) != 8 { // stdapp + 7 policies
		t.Errorf("policy variants = %d, want 8", len(pv))
	}
}

func TestRunOnceWithInjectionClassifies(t *testing.T) {
	r := NewRunner()
	w, _ := workloads.ByName("mcf")
	sites := faultinject.Enumerate(w.Build(), faultinject.ImmediateFree)
	if len(sites) == 0 {
		t.Fatal("no sites")
	}
	o, err := r.RunOnce(w, Stdapp(), &sites[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !o.SF {
		t.Fatal("injection must execute")
	}
	// The outcome must land in exactly one classification bucket.
	count := 0
	if o.CO {
		count++
	}
	if o.NatDet {
		count++
	}
	if o.DpmrDet {
		count++
	}
	if count > 1 {
		t.Errorf("outcome in %d buckets: %+v", count, o)
	}
}

func TestSmallCampaignCoverage(t *testing.T) {
	r := NewRunner()
	w, _ := workloads.ByName("mcf")
	spec := CampaignSpec(faultinject.ImmediateFree, []workloads.Workload{w}, []Variant{
		Stdapp(),
		NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}),
	})
	spec.Runs = 1
	spec.MaxSites = 4
	cr, err := r.RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	std := cr.Cell(Stdapp(), "mcf")
	dp := cr.Cell(NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}), "mcf")
	if std.N == 0 || dp.N == 0 {
		t.Fatalf("no successful injections: std=%d dpmr=%d", std.N, dp.N)
	}
	if dp.Coverage() < std.Coverage() {
		t.Errorf("DPMR coverage %.2f below stdapp %.2f", dp.Coverage(), std.Coverage())
	}
	if dp.DpmrDet < 0 || dp.DpmrDet > 1 {
		t.Errorf("DpmrDet fraction out of range: %f", dp.DpmrDet)
	}
	if std.DpmrDet != 0 {
		t.Error("stdapp cannot have DPMR detections")
	}
}

func TestOverheadRatiosSane(t *testing.T) {
	r := NewRunner()
	ws := []workloads.Workload{mustWorkload(t, "art"), mustWorkload(t, "mcf")}
	or, err := r.RunOverhead(context.Background(), OverheadSpec(ws, []Variant{
		Stdapp(),
		NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
		NewVariant(dpmr.MDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
	}))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range or.Workloads {
		std := or.Ratio["stdapp"][w]
		if std != 1.0 {
			t.Errorf("%s: stdapp ratio %.2f", w, std)
		}
		sds := or.Ratio[NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}).Label()][w]
		if sds < 1.5 || sds > 8 {
			t.Errorf("%s: SDS overhead %.2f outside plausible band", w, sds)
		}
	}
	// Pointer-heavy mcf: MDS must beat SDS (§4.5).
	sds := or.Ratio[NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}).Label()]["mcf"]
	mds := or.Ratio[NewVariant(dpmr.MDS, dpmr.NoDiversity{}, dpmr.AllLoads{}).Label()]["mcf"]
	if mds >= sds {
		t.Errorf("mcf: MDS %.2f not below SDS %.2f", mds, sds)
	}
}

func mustWorkload(t *testing.T, name string) workloads.Workload {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateQuickSmoke(t *testing.T) {
	// Smoke-run one coverage figure, one overhead figure, and the
	// ablation in quick mode.
	for _, id := range []string{"fig3.10", "fig3.16"} {
		var buf bytes.Buffer
		if err := Generate(context.Background(), quickExp(id), &buf, Options{}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := buf.String()
		if !strings.Contains(out, "Figure") {
			t.Errorf("%s: missing title: %s", id, out)
		}
		if !strings.Contains(out, "art") {
			t.Errorf("%s: missing workload column: %s", id, out)
		}
	}
}

func TestGenerateUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Generate(context.Background(), ExperimentSpec("fig9.9"), &buf, Options{}); err == nil {
		t.Error("unknown id must error")
	}
}

func TestExperimentIDsCoverPaper(t *testing.T) {
	ids := ExperimentIDs()
	want := map[string]bool{
		"fig3.6": true, "fig3.10": true, "fig3.16": true, "tab3.3": true,
		"tab3.4": true, "fig4.3": true, "fig4.14": true, "tab4.5": true, "tab4.6": true,
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
		if _, ok := generators()[id]; !ok {
			t.Errorf("id %s has no generator", id)
		}
	}
	for id := range want {
		if !have[id] {
			t.Errorf("missing experiment id %s", id)
		}
	}
	if len(ids) != 27 {
		t.Errorf("experiment count = %d, want 27", len(ids))
	}
}

func TestSampleSites(t *testing.T) {
	sites := make([]faultinject.Site, 10)
	for i := range sites {
		sites[i].ID = i
	}
	out := sampleSites(sites, 3)
	if len(out) != 3 {
		t.Fatalf("sampled %d", len(out))
	}
	if out[0].ID == out[1].ID || out[1].ID == out[2].ID {
		t.Error("sampling must pick distinct sites")
	}
	if got := sampleSites(sites, 0); len(got) != 10 {
		t.Error("0 = no cap")
	}
}
