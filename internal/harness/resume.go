package harness

// Resumable, adaptively sized campaign execution over a crash-safe
// journal (internal/journal). The flow: ResumeCampaign diffs the
// canonical plan against the journal's replayed records by plan
// fingerprint and computes the uncovered gaps; CampaignResume.Spans cuts
// those gaps into explicit trial spans whose sizes follow the observed
// per-trial cost in the journal (slow regions get smaller spans, so a
// straggling span loses less work to the next interruption) — and the
// cut is a pure function of (journal bytes, Spec), so a resumed plan is
// reproducible; the journaled drivers then execute the spans, appending
// each completed partial to the journal before moving on, and finish
// with the ordinary fingerprint-validated exact-tiling merge, which is
// what guarantees a resumed campaign's report is byte-identical to an
// uninterrupted run and that no trial is ever dropped or double-counted.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"dpmr/internal/failpt"
	"dpmr/internal/journal"
)

// Failpoint sites on the session/resume paths: harness/resume fails
// the plan-vs-journal diff (a resume that cannot trust its replay must
// refuse, not guess), harness/span fails one span execution inside a
// journaled run (the retry/refusal behavior of the drivers above it is
// what the drill exercises).
var (
	siteResume = failpt.Register("harness/resume", failpt.KindErr)
	siteSpan   = failpt.Register("harness/span", failpt.KindErr)
)

// DefaultResumeSpans is how many spans a journaled in-process run cuts
// its remaining work into. Deliberately independent of the worker count:
// the re-cut plan — and therefore the journal's record layout — must be
// identical whether the resumed run executes with 1 or 8 workers.
const DefaultResumeSpans = 8

// CampaignResume is the diff of a campaign plan against a journal
// replay: which trial ranges are already covered (Parts) and which still
// need to run (Gaps).
type CampaignResume struct {
	spec  Spec
	plan  *campaignPlan
	cplan *concurrentPlan // set instead of plan by ResumeConcurrent
	// PlanFP is the canonical plan's fingerprint — the key shard records
	// are journaled under.
	PlanFP string
	// Total is the plan's trial count.
	Total int
	// Parts holds the journal's replayed partial results, validated and
	// in ascending range order.
	Parts []*PartialResult
	// Gaps are the uncovered trial ranges, as explicit span ShardSpecs in
	// ascending order. Empty means the journal already covers the plan.
	Gaps []ShardSpec
}

// Done reports how many trials the journal already covers.
func (c *CampaignResume) Done() int {
	done := 0
	for _, p := range c.Parts {
		done += p.Hi - p.Lo
	}
	return done
}

// ResumeCampaign recomputes the campaign Spec's canonical plan and diffs
// it against the journal replay: records journaled under this plan's
// fingerprint are decoded and re-validated (payload shape, fingerprint,
// and the record's range against the payload's — a mismatch means the
// journal was tampered with past its checksums and is refused as
// corrupt); everything the records do not cover becomes a gap. rp may be
// nil (a fresh journal): every trial is then a gap.
func (r *Runner) ResumeCampaign(spec Spec, rp *journal.Replay) (*CampaignResume, error) {
	spec, err := spec.normalizedAs(SpecCampaign, "ResumeCampaign")
	if err != nil {
		return nil, err
	}
	if err := failpt.Err(siteResume); err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	r.applySpec(spec)
	plan, err := r.planCampaign(spec)
	if err != nil {
		return nil, err
	}
	c := &CampaignResume{spec: spec, plan: plan, PlanFP: plan.fingerprint, Total: len(plan.trials)}
	if rp != nil {
		for _, rec := range rp.Plan(plan.fingerprint) {
			p, err := decodeJournaledPartial(rec, plan.fingerprint, len(plan.trials))
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, p)
		}
	}
	c.Gaps, err = rangeGaps(c.Parts, len(plan.trials))
	if err != nil {
		return nil, err
	}
	return c, nil
}

// decodeJournaledPartial decodes one journal record's payload as a
// campaign partial and cross-checks it against the record envelope and
// the plan. The journal's checksum already proved the payload is the
// bytes that were appended; these checks prove those bytes mean what the
// envelope says, so nothing merges on the strength of metadata alone.
func decodeJournaledPartial(rec journal.Record, planFP string, total int) (*PartialResult, error) {
	p, err := DecodePartial(bytes.NewReader(rec.Payload))
	if err != nil {
		return nil, fmt.Errorf("%w: journaled payload for trials [%d, %d): %v", journal.ErrCorrupt, rec.Lo, rec.Hi, err)
	}
	if p.Fingerprint != planFP {
		return nil, fmt.Errorf("%w: journaled payload for trials [%d, %d) was cut from plan %.12s, record claims %.12s",
			journal.ErrCorrupt, rec.Lo, rec.Hi, p.Fingerprint, planFP)
	}
	if p.Lo != rec.Lo || p.Hi != rec.Hi || p.Total != rec.Total || p.Total != total {
		return nil, fmt.Errorf("%w: journaled payload covers [%d, %d) of %d, record claims [%d, %d) of %d",
			journal.ErrCorrupt, p.Lo, p.Hi, p.Total, rec.Lo, rec.Hi, rec.Total)
	}
	return p, nil
}

// rangeGaps returns the sub-ranges of [0, total) that the parts (already
// in ascending order, non-overlapping — the journal enforces both) do
// not cover, as explicit spans.
func rangeGaps[P interface{ span() (lo, hi int) }](parts []P, total int) ([]ShardSpec, error) {
	var gaps []ShardSpec
	next := 0
	for _, p := range parts {
		lo, hi := p.span()
		if lo < next {
			return nil, fmt.Errorf("%w: journaled ranges overlap at trial %d", journal.ErrCorrupt, lo)
		}
		if lo > next {
			gaps = append(gaps, SpanShard(next, lo))
		}
		next = hi
	}
	if next < total {
		gaps = append(gaps, SpanShard(next, total))
	}
	return gaps, nil
}

func (p *PartialResult) span() (int, int)   { return p.Lo, p.Hi }
func (p *OverheadPartial) span() (int, int) { return p.Lo, p.Hi }

// Spans cuts the resume's gaps into at most n explicit spans (at least
// one per gap), sized adaptively from the journal's observed per-trial
// cost: a trial in a region the journal measured as slow gets a smaller
// span, so interruptions near stragglers waste less completed work and
// the coordinator's lease scheduler sees evener span durations. The cut
// is deterministic — a pure function of the replayed records and the
// Spec — which is what makes a resumed plan reproducible: re-planning
// the same journal yields byte-identical spans at any worker count.
func (c *CampaignResume) Spans(n int) []ShardSpec {
	return adaptiveSpans(n, c.Gaps, observedRates(partSpans(c.Parts), c.Total))
}

// Snapshot aggregates the given parts over zero-valued stand-ins for
// the uncovered trials — a structurally complete CampaignResult, the
// data a progressive report renders mid-campaign.
func (c *CampaignResume) Snapshot(parts []*PartialResult) *CampaignResult {
	outcomes := make([]TrialOutcome, c.Total)
	for _, p := range parts {
		copy(outcomes[p.Lo:p.Hi], p.Outcomes)
	}
	return aggregate(c.plan, outcomes)
}

// OpenJournal resolves the CLIs' -journal/-resume flag pair against the
// Spec: without resume it creates a fresh journal in dir (refusing, with
// journal.ErrExists, to clobber one already there); with resume it opens
// the existing journal (journal.ErrNoJournal when there is none) and
// verifies the Spec fingerprint matches (journal.ErrSpecMismatch — a
// journal resumes only the exact experiment that started it). The
// returned replay is nil for a fresh journal.
func OpenJournal(dir string, resume bool, spec Spec) (*journal.Journal, *journal.Replay, error) {
	n, err := spec.Normalized()
	if err != nil {
		return nil, nil, err
	}
	fp, err := n.Fingerprint()
	if err != nil {
		return nil, nil, err
	}
	if resume {
		return journal.Open(dir, fp)
	}
	canon, err := n.Canonical()
	if err != nil {
		return nil, nil, err
	}
	j, err := journal.Create(dir, canon, fp)
	return j, nil, err
}

// AppendCampaignPayload journals one serialized campaign partial — the
// record the coordinator's OnResult hook writes for each first-completed
// shard. The payload's own fingerprint and range become the record
// envelope, so the journal's overlap guard sees the true trial span.
func AppendCampaignPayload(j *journal.Journal, payload []byte) (*PartialResult, error) {
	p, err := DecodePartial(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	return p, j.Append(journal.Record{
		PlanFP: p.Fingerprint, Lo: p.Lo, Hi: p.Hi, Total: p.Total,
		ElapsedMS: p.ElapsedMS, Payload: payload,
	})
}

// costedSpan is one covered range with its observed per-trial cost.
type costedSpan struct {
	lo, hi int
	rate   float64 // ms per trial; 0 = unknown
}

func partSpans(parts []*PartialResult) []costedSpan {
	spans := make([]costedSpan, len(parts))
	for i, p := range parts {
		spans[i] = costedSpan{lo: p.Lo, hi: p.Hi}
		if p.ElapsedMS > 0 && p.Hi > p.Lo {
			spans[i].rate = float64(p.ElapsedMS) / float64(p.Hi-p.Lo)
		}
	}
	return spans
}

// observedRates builds the per-trial cost model over the whole plan:
// covered trials take their recording shard's mean rate; uncovered
// trials interpolate the nearest covered neighbors (mean of both sides,
// one side at the edges), falling back to the global mean, and to a
// uniform 1.0 when the journal holds no timing at all (a fresh journal:
// the adaptive cut then degrades to the uniform cut).
func observedRates(covered []costedSpan, total int) []float64 {
	rates := make([]float64, total)
	sum, nRated := 0.0, 0
	for _, s := range covered {
		if s.rate > 0 {
			sum += s.rate * float64(s.hi-s.lo)
			nRated += s.hi - s.lo
		}
	}
	mean := 1.0
	if nRated > 0 {
		mean = sum / float64(nRated)
	}
	rate := func(s costedSpan) float64 {
		if s.rate > 0 {
			return s.rate
		}
		return mean
	}
	for i := range rates {
		rates[i] = mean
	}
	for _, s := range covered {
		for i := s.lo; i < s.hi && i < total; i++ {
			rates[i] = rate(s)
		}
	}
	// Interpolate uncovered stretches from their covered neighbors.
	next := 0
	for si := 0; si <= len(covered); si++ {
		gapLo, gapHi := next, total
		var left, right *costedSpan
		if si > 0 {
			left = &covered[si-1]
		}
		if si < len(covered) {
			right = &covered[si]
			gapHi = right.lo
			next = right.hi
		}
		if gapLo >= gapHi {
			continue
		}
		est := mean
		switch {
		case left != nil && right != nil:
			est = (rate(*left) + rate(*right)) / 2
		case left != nil:
			est = rate(*left)
		case right != nil:
			est = rate(*right)
		}
		for i := gapLo; i < gapHi && i < total; i++ {
			rates[i] = est
		}
	}
	return rates
}

// adaptiveSpans distributes n spans across the gaps proportionally to
// each gap's estimated cost (largest-remainder rounding, ties to the
// earlier gap; every gap gets at least one span and never more than its
// trial count), then cuts each gap at equal-cost boundaries, so costly
// regions end up in smaller spans.
func adaptiveSpans(n int, gaps []ShardSpec, rates []float64) []ShardSpec {
	if len(gaps) == 0 {
		return nil
	}
	if n < len(gaps) {
		n = len(gaps)
	}
	gapCost := make([]float64, len(gaps))
	totalCost := 0.0
	for gi, g := range gaps {
		for i := g.Lo; i < g.Hi; i++ {
			gapCost[gi] += rates[i]
		}
		totalCost += gapCost[gi]
	}
	// Proportional share, floored, then largest remainders take the rest.
	counts := make([]int, len(gaps))
	type rem struct {
		gi   int
		frac float64
	}
	var rems []rem
	assigned := 0
	for gi, g := range gaps {
		share := float64(n) / float64(len(gaps))
		if totalCost > 0 {
			share = float64(n) * gapCost[gi] / totalCost
		}
		counts[gi] = int(share)
		if counts[gi] < 1 {
			counts[gi] = 1
		}
		if max := g.Hi - g.Lo; counts[gi] > max {
			counts[gi] = max
		}
		assigned += counts[gi]
		rems = append(rems, rem{gi, share - float64(int(share))})
	}
	for assigned < n {
		best := -1
		for _, r := range rems {
			g := gaps[r.gi]
			if counts[r.gi] >= g.Hi-g.Lo {
				continue
			}
			if best < 0 || r.frac > rems[best].frac ||
				(r.frac == rems[best].frac && r.gi < rems[best].gi) {
				best = r.gi
			}
		}
		if best < 0 {
			break // every gap is at one span per trial
		}
		counts[best]++
		rems[best].frac = 0 // one extra each round, round-robin by remainder
		assigned++
	}
	var spans []ShardSpec
	for gi, g := range gaps {
		spans = append(spans, cutByCost(g, counts[gi], rates)...)
	}
	return spans
}

// cutByCost splits one gap into ng spans at equal-cost boundaries: the
// cumulative cost walks forward and each span closes once it holds its
// 1/ng share, while always leaving at least one trial per remaining
// span.
func cutByCost(g ShardSpec, ng int, rates []float64) []ShardSpec {
	trials := g.Hi - g.Lo
	if ng <= 1 || trials <= 1 {
		return []ShardSpec{g}
	}
	if ng > trials {
		ng = trials
	}
	total := 0.0
	for i := g.Lo; i < g.Hi; i++ {
		total += rates[i]
	}
	target := total / float64(ng)
	spans := make([]ShardSpec, 0, ng)
	lo := g.Lo
	acc := 0.0
	for i := g.Lo; i < g.Hi; i++ {
		acc += rates[i]
		remainingSpans := ng - len(spans) - 1
		remainingTrials := g.Hi - (i + 1)
		if remainingSpans > 0 && (acc >= target || remainingTrials <= remainingSpans) && i+1 > lo {
			spans = append(spans, SpanShard(lo, i+1))
			lo = i + 1
			acc = 0
		}
	}
	if lo < g.Hi {
		spans = append(spans, SpanShard(lo, g.Hi))
	}
	return spans
}

// runCampaignJournaled executes a campaign against a journal: replayed
// coverage is kept, the remaining gaps are cut adaptively into spans,
// each span's completed partial is appended (durably) to the journal
// before the next span starts, and the full set merges into the final
// result. onSpan, when non-nil, fires with the accumulated parts — once
// after replay and once per completed span — which is what progressive
// reporting hangs off. The returned int counts trials actually executed
// here (not replayed); on cancellation the completed prefix of the
// in-flight span is journaled before the context error returns.
func (r *Runner) runCampaignJournaled(ctx context.Context, spec Spec, j *journal.Journal, prior *journal.Replay, spans int,
	onSpan func(plan *campaignPlan, parts []*PartialResult)) (*CampaignResult, int, error) {
	c, err := r.ResumeCampaign(spec, prior)
	if err != nil {
		return nil, 0, err
	}
	parts := c.Parts
	if onSpan != nil {
		onSpan(c.plan, parts)
	}
	executed := 0
	for _, span := range c.Spans(spans) {
		p, err := r.runSpan(ctx, c.spec, span)
		if err != nil && (p == nil || !cancelled(ctx, err)) {
			return nil, executed, err
		}
		if p.Hi > p.Lo {
			if aerr := appendCampaignPartial(j, p); aerr != nil {
				return nil, executed, aerr
			}
			executed += p.Hi - p.Lo
			parts = append(parts, p)
			if onSpan != nil {
				onSpan(c.plan, parts)
			}
		}
		if err != nil {
			return nil, executed, err
		}
	}
	merged, err := r.MergeCampaign(c.spec, parts)
	if err != nil {
		return nil, executed, err
	}
	return merged, executed, nil
}

// runSpan executes one explicit span on the Runner, preserving its
// configured Shard around the call.
func (r *Runner) runSpan(ctx context.Context, spec Spec, span ShardSpec) (*PartialResult, error) {
	if err := failpt.Err(siteSpan); err != nil {
		return nil, err
	}
	saved := r.Shard
	r.Shard = span
	p, _, err := r.runCampaignPartial(ctx, spec)
	r.Shard = saved
	return p, err
}

// appendCampaignPartial journals one completed campaign partial.
func appendCampaignPartial(j *journal.Journal, p *PartialResult) error {
	payload, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("harness: encoding journaled partial: %w", err)
	}
	return j.Append(journal.Record{
		PlanFP: p.Fingerprint, Lo: p.Lo, Hi: p.Hi, Total: p.Total,
		ElapsedMS: p.ElapsedMS, Payload: payload,
	})
}

// RunCampaignJournaled is the exported journaled campaign driver. snap,
// when non-nil, receives a progressive snapshot after replay and after
// every completed span: a structurally complete CampaignResult whose
// uncovered trials are zero-valued stand-ins, plus the covered/total
// trial counts — the data a progressive report renders. The final
// result is byte-identical to an uninterrupted RunCampaign; the int
// counts trials executed by this call (excluding replayed coverage).
func (r *Runner) RunCampaignJournaled(ctx context.Context, spec Spec, j *journal.Journal, prior *journal.Replay, spans int,
	snap func(cr *CampaignResult, done, total int)) (*CampaignResult, int, error) {
	var onSpan func(plan *campaignPlan, parts []*PartialResult)
	if snap != nil {
		onSpan = func(plan *campaignPlan, parts []*PartialResult) {
			outcomes := make([]TrialOutcome, len(plan.trials))
			done := 0
			for _, p := range parts {
				copy(outcomes[p.Lo:p.Hi], p.Outcomes)
				done += p.Hi - p.Lo
			}
			snap(aggregate(plan, outcomes), done, len(plan.trials))
		}
	}
	return r.runCampaignJournaled(ctx, spec, j, prior, spans, onSpan)
}

// --------------------------------------------------------------------------
// Overhead analogues: experiments journal their overhead measurement
// plans through the same machinery.

// resumeOverhead diffs an overhead plan against the journal replay.
func (r *Runner) resumeOverhead(spec Spec, rp *journal.Replay) (Spec, *overheadPlan, []*OverheadPartial, []ShardSpec, error) {
	spec, err := spec.normalizedAs(SpecOverhead, "ResumeOverhead")
	if err != nil {
		return spec, nil, nil, nil, err
	}
	if err := r.validate(); err != nil {
		return spec, nil, nil, nil, err
	}
	r.applySpec(spec)
	plan, err := planOverhead(spec)
	if err != nil {
		return spec, nil, nil, nil, err
	}
	var parts []*OverheadPartial
	if rp != nil {
		for _, rec := range rp.Plan(plan.fingerprint) {
			p, err := decodeJournaledOverhead(rec, plan.fingerprint, len(plan.trials))
			if err != nil {
				return spec, nil, nil, nil, err
			}
			parts = append(parts, p)
		}
	}
	gaps, err := rangeGaps(parts, len(plan.trials))
	if err != nil {
		return spec, nil, nil, nil, err
	}
	return spec, plan, parts, gaps, nil
}

func decodeJournaledOverhead(rec journal.Record, planFP string, total int) (*OverheadPartial, error) {
	p, err := DecodeOverheadPartial(bytes.NewReader(rec.Payload))
	if err != nil {
		return nil, fmt.Errorf("%w: journaled overhead payload for trials [%d, %d): %v", journal.ErrCorrupt, rec.Lo, rec.Hi, err)
	}
	if p.Fingerprint != planFP {
		return nil, fmt.Errorf("%w: journaled overhead payload for trials [%d, %d) was cut from plan %.12s, record claims %.12s",
			journal.ErrCorrupt, rec.Lo, rec.Hi, p.Fingerprint, planFP)
	}
	if p.Lo != rec.Lo || p.Hi != rec.Hi || p.Total != rec.Total || p.Total != total {
		return nil, fmt.Errorf("%w: journaled overhead payload covers [%d, %d) of %d, record claims [%d, %d) of %d",
			journal.ErrCorrupt, p.Lo, p.Hi, p.Total, rec.Lo, rec.Hi, rec.Total)
	}
	return p, nil
}

// runOverheadJournaled is the overhead analogue of runCampaignJournaled.
func (r *Runner) runOverheadJournaled(ctx context.Context, spec Spec, j *journal.Journal, prior *journal.Replay, spans int,
	onSpan func(plan *overheadPlan, parts []*OverheadPartial)) (*OverheadResult, int, error) {
	spec, plan, parts, gaps, err := r.resumeOverhead(spec, prior)
	if err != nil {
		return nil, 0, err
	}
	if onSpan != nil {
		onSpan(plan, parts)
	}
	costs := make([]costedSpan, len(parts))
	for i, p := range parts {
		costs[i] = costedSpan{lo: p.Lo, hi: p.Hi}
		if p.ElapsedMS > 0 && p.Hi > p.Lo {
			costs[i].rate = float64(p.ElapsedMS) / float64(p.Hi-p.Lo)
		}
	}
	executed := 0
	for _, span := range adaptiveSpans(spans, gaps, observedRates(costs, len(plan.trials))) {
		saved := r.Shard
		r.Shard = span
		p, _, err := r.runOverheadPartial(ctx, spec)
		r.Shard = saved
		if err != nil && (p == nil || !cancelled(ctx, err)) {
			return nil, executed, err
		}
		if p.Hi > p.Lo {
			payload, merr := json.Marshal(p)
			if merr != nil {
				return nil, executed, fmt.Errorf("harness: encoding journaled overhead partial: %w", merr)
			}
			if aerr := j.Append(journal.Record{
				PlanFP: p.Fingerprint, Lo: p.Lo, Hi: p.Hi, Total: p.Total,
				ElapsedMS: p.ElapsedMS, Payload: payload,
			}); aerr != nil {
				return nil, executed, aerr
			}
			executed += p.Hi - p.Lo
			parts = append(parts, p)
			if onSpan != nil {
				onSpan(plan, parts)
			}
		}
		if err != nil {
			return nil, executed, err
		}
	}
	merged, err := r.MergeOverhead(spec, parts)
	if err != nil {
		return nil, executed, err
	}
	return merged, executed, nil
}

// --------------------------------------------------------------------------
// Journaled experiment generation with progressive reports.

// journalState accumulates the parts every journaled sub-plan of an
// experiment has so far, keyed by plan fingerprint — the state a
// progressive snapshot renders from. The dedicated snapshot Runner keeps
// snapshot rendering from disturbing the live Runner's configuration
// (Options.runner installs event sinks and policy on whichever Runner it
// is given).
type journalState struct {
	campaigns map[string][]*PartialResult
	overheads map[string][]*OverheadPartial
	executed  int
	sr        *Runner
}

// snapshotOptions builds the interposers that render a progressive
// report from the accumulated state without executing a single trial:
// each sub-plan aggregates whatever parts the state holds over
// zero-valued stand-ins for the rest, exactly the GenerateSharded trick.
func (st *journalState) snapshotOptions() Options {
	return Options{
		Runner: st.sr,
		campaignExec: func(_ context.Context, r *Runner, spec Spec) (*CampaignResult, error) {
			r.applySpec(spec)
			plan, err := r.planCampaign(spec)
			if err != nil {
				return nil, err
			}
			outcomes := make([]TrialOutcome, len(plan.trials))
			for _, p := range st.campaigns[plan.fingerprint] {
				copy(outcomes[p.Lo:p.Hi], p.Outcomes)
			}
			return aggregate(plan, outcomes), nil
		},
		overheadExec: func(_ context.Context, r *Runner, spec Spec) (*OverheadResult, error) {
			plan, err := planOverhead(spec)
			if err != nil {
				return nil, err
			}
			cycles := make([]uint64, len(plan.trials))
			for _, p := range st.overheads[plan.fingerprint] {
				copy(cycles[p.Lo:p.Hi], p.Cycles)
			}
			return aggregateOverhead(plan, cycles), nil
		},
	}
}

// done reports covered/total trials across every sub-plan seen so far.
func (st *journalState) done() (done, total int) {
	for _, parts := range st.campaigns {
		for _, p := range parts {
			done += p.Hi - p.Lo
		}
		if len(parts) > 0 {
			total += parts[0].Total
		}
	}
	for _, parts := range st.overheads {
		for _, p := range parts {
			done += p.Hi - p.Lo
		}
		if len(parts) > 0 {
			total += parts[0].Total
		}
	}
	return done, total
}

// GenerateJournaled regenerates the experiment the Spec names with every
// campaign and overhead measurement inside it running through the
// journal: replayed coverage is skipped, gaps execute as adaptively cut
// spans, and each completed span lands in the journal before the next
// starts. The true report is rendered to out (byte-identical to an
// uninterrupted Generate). snap, when non-nil, fires after replay and
// after every completed span with a renderer that writes the current
// progressive report — paper-accurate partial numbers over zero-valued
// stand-ins for the trials still missing — plus covered/total counts.
// The returned int counts trials executed by this call.
func GenerateJournaled(ctx context.Context, spec Spec, j *journal.Journal, prior *journal.Replay, spans int,
	out io.Writer, opts Options, snap func(render func(io.Writer) error, done, total int)) (int, error) {
	n, err := spec.normalizedAs(SpecExperiment, "GenerateJournaled")
	if err != nil {
		return 0, err
	}
	st := &journalState{
		campaigns: make(map[string][]*PartialResult),
		overheads: make(map[string][]*OverheadPartial),
		sr:        NewRunner(),
	}
	emit := func() {
		if snap == nil {
			return
		}
		done, total := st.done()
		snap(func(w io.Writer) error { return Generate(ctx, n, w, st.snapshotOptions()) }, done, total)
	}
	opts.campaignExec = func(ctx context.Context, r *Runner, sub Spec) (*CampaignResult, error) {
		merged, executed, err := r.runCampaignJournaled(ctx, sub, j, prior, spans, func(plan *campaignPlan, parts []*PartialResult) {
			st.campaigns[plan.fingerprint] = parts
			emit()
		})
		st.executed += executed
		return merged, err
	}
	opts.overheadExec = func(ctx context.Context, r *Runner, sub Spec) (*OverheadResult, error) {
		merged, executed, err := r.runOverheadJournaled(ctx, sub, j, prior, spans, func(plan *overheadPlan, parts []*OverheadPartial) {
			st.overheads[plan.fingerprint] = parts
			emit()
		})
		st.executed += executed
		return merged, err
	}
	if err := Generate(ctx, n, out, opts); err != nil {
		return st.executed, err
	}
	return st.executed, nil
}
