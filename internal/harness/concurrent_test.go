package harness

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/failpt"
)

func smallConcurrent() Spec {
	return ConcurrentSpec([]string{"chash", "cpipe"}, []Variant{
		Stdapp(),
		NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
	})
}

func renderConc(cr *ConcurrentResult) string {
	var buf bytes.Buffer
	RenderConcurrent(&buf, cr)
	return buf.String()
}

func concurrentAt(t *testing.T, parallel int) *ConcurrentResult {
	t.Helper()
	r := NewRunner()
	r.Parallel = parallel
	cr, err := r.RunConcurrent(context.Background(), smallConcurrent())
	if err != nil {
		t.Fatal(err)
	}
	return cr
}

// TestConcurrentDeterministicAcrossWorkerCounts is the concurrent kind's
// core contract: same (Spec, schedule seed) ⇒ identical ConcurrentResult
// at any -parallel, down to the rendered report bytes, even though each
// trial itself runs a multi-goroutine scheduled group.
func TestConcurrentDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := concurrentAt(t, 1)
	for _, parallel := range []int{2, 4} {
		p := concurrentAt(t, parallel)
		if !reflect.DeepEqual(serial.Cells, p.Cells) {
			t.Errorf("cells differ between parallel=1 and parallel=%d:\n%+v\nvs\n%+v",
				parallel, serial.Cells, p.Cells)
		}
		if got, want := renderConc(p), renderConc(serial); got != want {
			t.Errorf("rendered reports differ at parallel=%d:\n--- serial ---\n%s--- parallel ---\n%s",
				parallel, want, got)
		}
	}
}

// TestConcurrentReportShape: the rendered summary carries the
// consistency-violation column, every cell observed Runs trials, and the
// fault-free baselines behaved — stdapp rows are all-CO and the clean
// workloads show no consistency violations.
func TestConcurrentReportShape(t *testing.T) {
	cr := concurrentAt(t, 2)
	out := renderConc(cr)
	if !strings.Contains(out, "ConsistViol") {
		t.Fatalf("report lacks the ConsistViol column:\n%s", out)
	}
	if !strings.Contains(out, "concurrent campaign: 3 threads, schedule seed 1") {
		t.Fatalf("report lacks the scheduler header:\n%s", out)
	}
	spec, err := smallConcurrent().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cr.Variants {
		for _, w := range cr.Workloads {
			c := cr.Cell(v, w)
			if c.N != spec.Runs {
				t.Errorf("%s %s: N = %d, want %d", v.Label(), w, c.N, spec.Runs)
			}
			if c.ConsistViol != 0 {
				t.Errorf("%s %s: clean workload flagged ConsistViol %.2f", v.Label(), w, c.ConsistViol)
			}
		}
	}
	for _, w := range cr.Workloads {
		if c := cr.Cell(Stdapp(), w); c.CO != 1 {
			t.Errorf("stdapp %s: CO = %.2f, want 1.00", w, c.CO)
		}
	}
}

// TestConcurrentShardsMergeByteIdentical: the plan cut into shards on
// independent Runners, round-tripped through the partial wire encoding,
// merges into a result byte-identical to the unsharded run — the same
// contract MergeCampaign gives injection campaigns.
func TestConcurrentShardsMergeByteIdentical(t *testing.T) {
	spec := smallConcurrent()
	whole := concurrentAt(t, 2)
	for _, count := range []int{2, 3} {
		var parts []*PartialResult
		for idx := 0; idx < count; idx++ {
			r := NewRunner()
			r.Parallel = 2
			r.Shard = ShardSpec{Index: idx, Count: count}
			p, err := r.RunConcurrentPartial(context.Background(), spec)
			if err != nil {
				t.Fatalf("shard %d/%d: %v", idx, count, err)
			}
			var buf bytes.Buffer
			if err := p.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			rt, err := DecodePartial(&buf)
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, rt)
		}
		// Reversed input order: merge must reassemble by plan range.
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		merged, err := NewRunner().MergeConcurrent(spec, parts)
		if err != nil {
			t.Fatalf("merge %d shards: %v", count, err)
		}
		if got, want := renderConc(merged), renderConc(whole); got != want {
			t.Errorf("%d-shard merge differs from unsharded run:\n--- unsharded ---\n%s--- merged ---\n%s",
				count, want, got)
		}
	}
}

// TestConcurrentSession: the Session layer runs concurrent Specs like any
// other kind — full-plan runs surface both the partial and the aggregate,
// and the aggregate matches a direct RunConcurrent.
func TestConcurrentSession(t *testing.T) {
	s, err := Start(context.Background(), smallConcurrent(), WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Drain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConcurrentPartial == nil || res.Concurrent == nil {
		t.Fatalf("session result incomplete: partial %v aggregate %v",
			res.ConcurrentPartial != nil, res.Concurrent != nil)
	}
	p := res.ConcurrentPartial
	if p.Lo != 0 || p.Hi != p.Total || len(p.Outcomes) != p.Total {
		t.Fatalf("full-plan partial spans [%d, %d) of %d", p.Lo, p.Hi, p.Total)
	}
	if got, want := renderConc(res.Concurrent), renderConc(concurrentAt(t, 1)); got != want {
		t.Errorf("session report differs from direct run:\n--- direct ---\n%s--- session ---\n%s",
			want, got)
	}
}

// TestConcurrentJournaledMatchesDirect: a fresh journaled concurrent run
// produces the identical report as a direct RunConcurrent and executes
// exactly the plan's trials; a second pass over the now-complete journal
// replays everything — zero trials re-executed, same report again.
func TestConcurrentJournaledMatchesDirect(t *testing.T) {
	spec := smallConcurrent()
	want := renderConc(concurrentAt(t, 2))
	j, dir, fp := newTestJournal(t, spec)
	r := NewRunner()
	r.Parallel = 2
	got, executed, err := r.RunConcurrentJournaled(context.Background(), spec, j, nil, DefaultResumeSpans, nil)
	if err != nil {
		t.Fatal(err)
	}
	total, err := NewRunner().PlanTrials(spec)
	if err != nil {
		t.Fatal(err)
	}
	if executed != total {
		t.Errorf("fresh journaled run executed %d trials, want %d", executed, total)
	}
	if renderConc(got) != want {
		t.Errorf("journaled report differs from direct run:\n--- direct ---\n%s--- journaled ---\n%s",
			want, renderConc(got))
	}
	j.Close()

	j2, rp := reopenJournal(t, dir, fp)
	defer j2.Close()
	again, executed2, err := NewRunner().RunConcurrentJournaled(context.Background(), spec, j2, rp, DefaultResumeSpans, nil)
	if err != nil {
		t.Fatal(err)
	}
	if executed2 != 0 {
		t.Errorf("replay of a complete journal re-executed %d trials", executed2)
	}
	if renderConc(again) != want {
		t.Errorf("replayed report differs from direct run")
	}
}

// TestConcurrentConsistViolSurfaces: a recorder fault that silently drops
// one traced store makes the checker flag the trial, and the violation
// reaches the report's ConsistViol column — the end-to-end path of the
// new detection axis. The probe scans drop positions in order; the
// schedule is deterministic, so the first violating position is too.
func TestConcurrentConsistViolSurfaces(t *testing.T) {
	spec := ConcurrentSpec([]string{"chash"}, []Variant{Stdapp()})
	spec.Runs = 1
	t.Cleanup(failpt.Disarm)
	// The early trace prefix is the group's initialization stores, whose
	// dropped values tend to be overwritten before any read; later
	// positions hit the read-back phase. Scan the latter first.
	var positions []int
	for k := 256; k <= 640; k++ {
		positions = append(positions, k)
	}
	for k := 1; k < 256; k++ {
		positions = append(positions, k)
	}
	for _, k := range positions {
		if err := failpt.Arm(fmt.Sprintf("mem/trace-drop=drop@%d", k)); err != nil {
			t.Fatal(err)
		}
		r := NewRunner()
		p, err := r.RunConcurrentPartial(context.Background(), spec)
		failpt.Disarm()
		if err != nil {
			t.Fatal(err)
		}
		viol := false
		for _, o := range p.Outcomes {
			viol = viol || o.ConsistViol
		}
		if !viol {
			continue
		}
		plan, err := planConcurrent(mustNormalize(t, spec))
		if err != nil {
			t.Fatal(err)
		}
		out := renderConc(aggregateConcurrent(plan, p.Outcomes))
		if !strings.Contains(out, "1.00\n") || !strings.Contains(out, "ConsistViol") {
			t.Fatalf("violating trial not visible in report:\n%s", out)
		}
		return
	}
	t.Fatal("no probed trace-drop position provoked a consistency violation")
}

func mustNormalize(t *testing.T, spec Spec) Spec {
	t.Helper()
	n, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	return n
}
