package harness_test

import (
	"bytes"
	"context"
	"fmt"

	"dpmr/internal/dpmr"
	"dpmr/internal/faultinject"
	"dpmr/internal/harness"
	"dpmr/internal/workloads"
)

// ExampleSpec shows the declarative round trip behind the CLIs' -spec
// flag: the Spec a CLI assembles from flags encodes to canonical JSON
// (the -spec file format), decodes back, and keeps its fingerprint —
// the identity plan fingerprints embed, so a flag-driven run, a -spec
// file run, and a coordinator assignment all name the same experiment.
func ExampleSpec() {
	spec := harness.CampaignSpec(
		faultinject.ImmediateFree,
		workloads.All()[:1],
		[]harness.Variant{
			harness.Stdapp(),
			harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}),
		},
	)
	spec.MaxSites = 2

	var file bytes.Buffer
	if err := spec.Encode(&file); err != nil { // flags → Spec → JSON
		fmt.Println(err)
		return
	}
	decoded, err := harness.DecodeSpec(&file) // JSON → Spec
	if err != nil {
		fmt.Println(err)
		return
	}
	fp1, _ := spec.Fingerprint()
	fp2, _ := decoded.Fingerprint()
	fmt.Println("kind:", decoded.Kind)
	fmt.Println("runs default applied:", decoded.Runs)
	fmt.Println("fingerprint unchanged:", fp1 == fp2)
	// Output:
	// kind: campaign
	// runs default applied: 2
	// fingerprint unchanged: true
}

// ExampleStart consumes a Session's typed event stream: TrialDone and
// Progress arrive per completed trial, a final CacheStats snapshot
// closes the stream, and Wait returns the aggregated result. Cancelling
// the context instead would drain in-flight trials and return the
// completed-prefix partial with ctx.Err().
func ExampleStart() {
	spec := harness.CampaignSpec(
		faultinject.ImmediateFree,
		workloads.All()[:1],
		[]harness.Variant{harness.Stdapp()},
	)
	spec.Runs = 1
	spec.MaxSites = 1

	s, err := harness.Start(context.Background(), spec, harness.WithParallel(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	var last harness.TrialDone
	for ev := range s.Events() { // closed when the session finishes
		if td, ok := ev.(harness.TrialDone); ok {
			last = td
		}
	}
	res, err := s.Wait()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("trials: %d of %d\n", last.Done, last.Total)
	fmt.Println("aggregated:", res.Campaign != nil)
	fmt.Println("modules built:", res.Stats.Builds > 0)
	// Output:
	// trials: 1 of 1
	// aggregated: true
	// modules built: true
}
