// Campaign engine internals: the stage-1 module cache and the stage-2
// worker pool. The cache guarantees each distinct (workload, site,
// variant) module is built — parsed, fault-injected, DPMR-transformed,
// optimized — exactly once per Runner, no matter how many of the
// sites × variants × runs trials execute it or from how many goroutines.
// The pool fans trial indices out across Parallel workers; callers
// aggregate the indexed results in canonical order afterwards, which is
// what keeps parallel campaigns byte-identical to serial ones.

package harness

import (
	"sync"

	"dpmr/internal/faultinject"
	"dpmr/internal/ir"
	"dpmr/internal/workloads"
)

// moduleKey identifies one distinct executable module of a campaign.
type moduleKey struct {
	workload string
	site     string // faultinject.Site string, "" = no injection
	variant  string // Variant label
}

// moduleEntry is one cache slot. The sync.Once gives per-key build
// deduplication without holding the cache lock during the (expensive)
// build.
type moduleEntry struct {
	once sync.Once
	m    *ir.Module
	err  error
}

type moduleCache struct {
	mu      sync.Mutex
	entries map[moduleKey]*moduleEntry
}

func newModuleCache() *moduleCache {
	return &moduleCache{entries: make(map[moduleKey]*moduleEntry)}
}

// get returns the module for key, invoking build at most once per key
// across all goroutines. The module returned by build must already be
// frozen; every caller shares it read-only.
func (c *moduleCache) get(key moduleKey, build func() (*ir.Module, error)) (*ir.Module, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &moduleEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.m, e.err = build() })
	return e.m, e.err
}

// size reports how many distinct modules have been built (for tests and
// progress diagnostics).
func (c *moduleCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// trial is one executable experiment (W, C, D, I, RN) of a campaign grid.
type trial struct {
	w   workloads.Workload
	v   Variant
	inj *faultinject.Site
	rn  int
}

// runTrials executes the trial grid on the worker pool and returns the
// per-trial outcomes and errors, indexed like trials.
func (r *Runner) runTrials(trials []trial) ([]Outcome, []error) {
	outcomes := make([]Outcome, len(trials))
	errs := make([]error, len(trials))
	r.fanOut(len(trials), func(i int) {
		t := trials[i]
		outcomes[i], errs[i] = r.RunOnce(t.w, t.v, t.inj, t.rn)
		// Aggregation reads only the classification fields; dropping the
		// raw result here releases each trial's output buffer instead of
		// pinning all of them until the campaign ends.
		outcomes[i].Res = nil
	})
	return outcomes, errs
}

// fanOut runs fn(0..n-1) across the Runner's worker pool. Each index is
// processed exactly once; fn must only write to index-i slots of shared
// slices. Progress (if set) is reported after each completed index.
func (r *Runner) fanOut(n int, fn func(i int)) {
	done := 0
	report := func() {
		if r.Progress == nil {
			return
		}
		r.progressMu.Lock()
		done++
		r.Progress(done, n)
		r.progressMu.Unlock()
	}
	workers := r.Parallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
			report()
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
				report()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// CachedModules reports how many distinct modules the Runner's build
// cache currently holds.
func (r *Runner) CachedModules() int { return r.cache.size() }
