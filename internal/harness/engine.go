// Campaign engine internals: the stage-1 module cache and the stage-2
// worker pool. The cache guarantees each distinct (workload, site,
// variant) module is built — parsed, fault-injected, DPMR-transformed,
// optimized — exactly once per Runner, no matter how many of the
// sites × variants × runs trials execute it or from how many goroutines.
// The pool fans trial indices out across Parallel workers; callers
// aggregate the indexed results in canonical order afterwards, which is
// what keeps parallel campaigns byte-identical to serial ones. The pool
// is context-aware: cancellation stops dispatch and drains in-flight
// trials, so the completed indices always form a prefix of the range
// and no worker goroutine outlives the call.

package harness

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"dpmr/internal/faultinject"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/workloads"
)

// Event is a typed progress notification streamed while an experiment
// executes: TrialDone and Progress per completed trial, ShardMerged per
// merged partial result, CacheStats as a counters snapshot. Subscribe
// through Session.Events, or set Runner.Events / Options.Events for a
// low-level callback sink.
type Event interface{ event() }

// TrialDone reports one completed trial: Done of Total have finished.
// Events arrive in completion order, not trial order. Elapsed is the
// trial's monotonic wall-clock execution time — the observed-cost signal
// the campaign journal and adaptive shard sizing consume.
type TrialDone struct {
	Done    int
	Total   int
	Elapsed time.Duration
}

// Progress is the per-trial rollup the CLIs render: completion count
// plus a module-cache snapshot.
type Progress struct {
	Done  int
	Total int
	Stats CacheStats
}

// ShardMerged reports one partial result folded into a merge: the shard
// and the contiguous trial range [Lo, Hi) of the Total-trial plan it
// covered. Merges emit shards in canonical (range) order. Elapsed is the
// shard's recorded wall-clock execution time (zero when the producing
// process predates the timing stamp or the partial was hand-built).
type ShardMerged struct {
	Shard   ShardSpec
	Lo      int
	Hi      int
	Total   int
	Elapsed time.Duration
}

func (TrialDone) event()   {}
func (Progress) event()    {}
func (ShardMerged) event() {}
func (CacheStats) event()  {}

// moduleKey identifies one distinct executable module of a campaign.
type moduleKey struct {
	workload string
	site     string // faultinject.Site string, "" = no injection
	variant  string // Variant label
}

// moduleEntry is one cache slot: the frozen module plus (with
// Runner.Compile) its pre-decoded interp.Program, compiled once alongside
// the build and shared by every trial of the module. Eviction drops the
// entry whole, so a module and its program always leave the cache
// together. The sync.Once gives per-key build deduplication without
// holding the cache lock during the (expensive) build.
type moduleEntry struct {
	once sync.Once
	m    *ir.Module
	prog *interp.Program
	err  error
}

// CacheStats counts module-cache activity over a Runner's lifetime. The
// residency numbers are what last-trial eviction (Runner.EvictModules)
// bounds: without eviction Peak equals Builds; with it, Peak tracks only
// the modules whose trials are still pending. CacheStats is also an
// Event: sessions emit a final snapshot when an experiment completes.
type CacheStats struct {
	// Builds counts successful module builds. A module evicted before its
	// trials finished would be rebuilt on next use, so Builds exceeding
	// the number of distinct modules is the signature of a premature
	// eviction.
	Builds int
	// Evicted counts modules released after their final trial.
	Evicted int
	// Resident is the number of modules currently held by the cache.
	Resident int
	// Peak is the high-water Resident count.
	Peak int
}

type moduleCache struct {
	mu      sync.Mutex
	entries map[moduleKey]*moduleEntry
	stats   CacheStats
}

func newModuleCache() *moduleCache {
	return &moduleCache{entries: make(map[moduleKey]*moduleEntry)}
}

// get returns the module (and its compiled program, which may be nil) for
// key, invoking build at most once per key across all goroutines. The
// module returned by build must already be frozen; every caller shares it
// — and the program — read-only.
func (c *moduleCache) get(key moduleKey, build func() (*ir.Module, *interp.Program, error)) (*ir.Module, *interp.Program, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &moduleEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.m, e.prog, e.err = build()
		if e.err == nil {
			c.mu.Lock()
			c.stats.Builds++
			c.stats.Resident++
			if c.stats.Resident > c.stats.Peak {
				c.stats.Peak = c.stats.Resident
			}
			c.mu.Unlock()
		}
	})
	return e.m, e.prog, e.err
}

// evict releases key's module. Callers must guarantee no trial still needs
// the module: the campaign engine only evicts a key once the per-key
// pending-trial count reaches zero, which also means the entry's build has
// completed (the evicting goroutine just ran a trial through get).
func (c *moduleCache) evict(key moduleKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return
	}
	delete(c.entries, key)
	if e.m != nil {
		c.stats.Evicted++
		c.stats.Resident--
	}
}

// size reports how many distinct modules are currently resident (for
// tests and progress diagnostics).
func (c *moduleCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *moduleCache) statsSnapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// trial is one executable experiment (W, C, D, I, RN) of a campaign grid.
type trial struct {
	w   workloads.Workload
	v   Variant
	inj *faultinject.Site
	rn  int
}

// key returns the module-cache key the trial executes.
func (t trial) key() moduleKey {
	k := moduleKey{workload: t.w.Name, variant: t.v.Label()}
	if t.inj != nil {
		k.site = t.inj.String()
	}
	return k
}

// runTrials executes the trial grid on the worker pool and returns the
// per-trial classifications and errors, indexed like trials, plus the
// number of completed trials. Trials are dispatched in index order, and
// cancellation only stops dispatch (in-flight trials drain), so the
// completed trials are exactly indices [0, done); done < len(trials)
// means ctx was cancelled. Only the serializable classification fields
// survive: the raw interpreter result is dropped per trial, releasing
// each output buffer instead of pinning all of them until the campaign
// ends.
//
// With EvictModules set, runTrials also releases each injected module
// once its last trial completes. Because a site's trials are contiguous
// in the canonical plan, this bounds peak cache residency at large site
// counts; the per-key pending counters make it order-independent (and
// therefore safe at any worker count): a module is only evicted when no
// trial that uses it remains.
func (r *Runner) runTrials(ctx context.Context, trials []trial) ([]TrialOutcome, []error, int) {
	outcomes := make([]TrialOutcome, len(trials))
	errs := make([]error, len(trials))
	var pending map[moduleKey]*int64
	if r.EvictModules {
		pending = make(map[moduleKey]*int64)
		for _, t := range trials {
			k := t.key()
			if k.site == "" {
				// Uninjected modules (base builds, overhead runs) seed
				// other builds and are shared beyond this trial list;
				// only per-(site, variant) modules are evictable.
				continue
			}
			if c := pending[k]; c != nil {
				*c++
			} else {
				n := int64(1)
				pending[k] = &n
			}
		}
	}
	notifyUse, joinPrefetch := r.startPrefetch(ctx, trials, pending)
	defer joinPrefetch()
	pool := r.spaces()
	done := r.fanOut(ctx, len(trials), func(i int) {
		notifyUse(i)
		t := trials[i]
		o, err := r.runOnce(t.w, t.v, t.inj, t.rn, pool)
		outcomes[i], errs[i] = o.Trial(), err
		if pending != nil {
			if c := pending[t.key()]; c != nil && atomic.AddInt64(c, -1) == 0 {
				r.cache.evict(t.key())
			}
		}
	})
	return outcomes, errs, done
}

// startPrefetch launches the pipelined AOT compilation stage: Precompile
// background workers walk the trial list's distinct modules in first-use
// order and push each through the module cache (build + compile) ahead
// of the execution frontier, so stage-1 work overlaps stage-2 trials
// instead of serializing ahead of each site's first trial. The window is
// bounded in distinct modules, keeping the eviction policy's residency
// bound intact: at most aheadWindow modules sit built-but-unreached at
// any time, admitted as the returned notify func observes each module's
// first trial being dispatched. The sync.Once under moduleCache.get
// makes prefetched and demand builds indistinguishable — whoever arrives
// second reuses the same entry, so no entry is ever half-populated.
//
// Cancellation stops admission and the workers drain without building;
// the returned join blocks until every prefetch goroutine has exited, so
// none outlives runTrials. With Precompile <= 0 both returned funcs are
// no-ops.
func (r *Runner) startPrefetch(ctx context.Context, trials []trial, pending map[moduleKey]*int64) (notify func(i int), join func()) {
	workers := r.Precompile
	if workers <= 0 {
		return func(int) {}, func() {}
	}
	type item struct {
		t trial
		k moduleKey
	}
	var order []item
	firstUse := make([]bool, len(trials))
	seen := make(map[moduleKey]bool)
	for i, t := range trials {
		k := t.key()
		if !seen[k] {
			seen[k] = true
			order = append(order, item{t: t, k: k})
			firstUse[i] = true
		}
	}
	ahead := 2*workers + 2
	// Buffered to every token that can ever be sent, so notify never
	// blocks a trial worker even after the windower has exited.
	used := make(chan struct{}, len(order))
	buildCh := make(chan item)
	var wg sync.WaitGroup
	// Windower: admit module j only once fewer than ahead admitted modules
	// are still unreached by the execution frontier.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(buildCh)
		usedCount := 0
		for j, it := range order {
			for j-usedCount >= ahead {
				select {
				case <-ctx.Done():
					return
				case <-used:
					usedCount++
				}
			}
			select {
			case <-ctx.Done():
				return
			case buildCh <- it:
			}
		}
	}()
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range buildCh {
				if ctx.Err() != nil {
					continue // drain admitted items without building
				}
				if c := pending[it.k]; c != nil && atomic.LoadInt64(c) == 0 {
					// Every trial of this module already completed (and
					// evicted it); building now would resurrect the entry
					// past its eviction.
					continue
				}
				_, _, _ = r.module(it.t.w, it.t.v, it.t.inj)
				if c := pending[it.k]; c != nil && atomic.LoadInt64(c) == 0 {
					// The last trial finished while the build was in
					// flight and its eviction raced the (re)insert;
					// release the module again.
					r.cache.evict(it.k)
				}
			}
		}()
	}
	notify = func(i int) {
		if firstUse[i] {
			used <- struct{}{}
		}
	}
	return notify, wg.Wait
}

// fanOut runs fn(0..n-1) across the Runner's worker pool and returns the
// number of indices completed. Each index is processed at most once; fn
// must only write to index-i slots of shared slices. Indices are
// dispatched in order and cancellation stops only dispatch — every
// dispatched index runs to completion and every worker goroutine exits
// before fanOut returns — so the completed set is always the prefix
// [0, done). TrialDone and Progress events are emitted after each
// completed index.
func (r *Runner) fanOut(ctx context.Context, n int, fn func(i int)) int {
	done := 0
	report := func(elapsed time.Duration) {
		if r.Events == nil {
			return
		}
		r.progressMu.Lock()
		done++
		r.Events(TrialDone{Done: done, Total: n, Elapsed: elapsed})
		r.Events(Progress{Done: done, Total: n, Stats: r.cache.statsSnapshot()})
		r.progressMu.Unlock()
	}
	timed := func(i int) time.Duration {
		start := time.Now()
		fn(i)
		return time.Since(start)
	}
	workers := r.Parallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return i
			}
			report(timed(i))
		}
		return n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				report(timed(i))
			}
		}()
	}
	dispatched := 0
	for i := 0; i < n; i++ {
		// Check cancellation before the blocking select: with a worker
		// already waiting on idx, both select cases would be ready and the
		// runtime picks randomly — which could dispatch a trial under an
		// already-cancelled context.
		if ctx.Err() != nil {
			break
		}
		select {
		case idx <- i:
			dispatched++
			continue
		case <-ctx.Done():
		}
		break
	}
	close(idx)
	wg.Wait()
	return dispatched
}

// CachedModules reports how many distinct modules the Runner's build
// cache currently holds.
func (r *Runner) CachedModules() int { return r.cache.size() }

// CacheStats reports the Runner's module-cache counters: builds,
// evictions, and current/peak residency.
func (r *Runner) CacheStats() CacheStats { return r.cache.statsSnapshot() }
