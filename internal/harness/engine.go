// Campaign engine internals: the stage-1 module cache and the stage-2
// worker pool. The cache guarantees each distinct (workload, site,
// variant) module is built — parsed, fault-injected, DPMR-transformed,
// optimized — exactly once per Runner, no matter how many of the
// sites × variants × runs trials execute it or from how many goroutines.
// The pool fans trial indices out across Parallel workers; callers
// aggregate the indexed results in canonical order afterwards, which is
// what keeps parallel campaigns byte-identical to serial ones.

package harness

import (
	"sync"
	"sync/atomic"

	"dpmr/internal/faultinject"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/workloads"
)

// moduleKey identifies one distinct executable module of a campaign.
type moduleKey struct {
	workload string
	site     string // faultinject.Site string, "" = no injection
	variant  string // Variant label
}

// moduleEntry is one cache slot: the frozen module plus (with
// Runner.Compile) its pre-decoded interp.Program, compiled once alongside
// the build and shared by every trial of the module. Eviction drops the
// entry whole, so a module and its program always leave the cache
// together. The sync.Once gives per-key build deduplication without
// holding the cache lock during the (expensive) build.
type moduleEntry struct {
	once sync.Once
	m    *ir.Module
	prog *interp.Program
	err  error
}

// CacheStats counts module-cache activity over a Runner's lifetime. The
// residency numbers are what last-trial eviction (Runner.EvictModules)
// bounds: without eviction Peak equals Builds; with it, Peak tracks only
// the modules whose trials are still pending.
type CacheStats struct {
	// Builds counts successful module builds. A module evicted before its
	// trials finished would be rebuilt on next use, so Builds exceeding
	// the number of distinct modules is the signature of a premature
	// eviction.
	Builds int
	// Evicted counts modules released after their final trial.
	Evicted int
	// Resident is the number of modules currently held by the cache.
	Resident int
	// Peak is the high-water Resident count.
	Peak int
}

type moduleCache struct {
	mu      sync.Mutex
	entries map[moduleKey]*moduleEntry
	stats   CacheStats
}

func newModuleCache() *moduleCache {
	return &moduleCache{entries: make(map[moduleKey]*moduleEntry)}
}

// get returns the module (and its compiled program, which may be nil) for
// key, invoking build at most once per key across all goroutines. The
// module returned by build must already be frozen; every caller shares it
// — and the program — read-only.
func (c *moduleCache) get(key moduleKey, build func() (*ir.Module, *interp.Program, error)) (*ir.Module, *interp.Program, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &moduleEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.m, e.prog, e.err = build()
		if e.err == nil {
			c.mu.Lock()
			c.stats.Builds++
			c.stats.Resident++
			if c.stats.Resident > c.stats.Peak {
				c.stats.Peak = c.stats.Resident
			}
			c.mu.Unlock()
		}
	})
	return e.m, e.prog, e.err
}

// evict releases key's module. Callers must guarantee no trial still needs
// the module: the campaign engine only evicts a key once the per-key
// pending-trial count reaches zero, which also means the entry's build has
// completed (the evicting goroutine just ran a trial through get).
func (c *moduleCache) evict(key moduleKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return
	}
	delete(c.entries, key)
	if e.m != nil {
		c.stats.Evicted++
		c.stats.Resident--
	}
}

// size reports how many distinct modules are currently resident (for
// tests and progress diagnostics).
func (c *moduleCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *moduleCache) statsSnapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// trial is one executable experiment (W, C, D, I, RN) of a campaign grid.
type trial struct {
	w   workloads.Workload
	v   Variant
	inj *faultinject.Site
	rn  int
}

// key returns the module-cache key the trial executes.
func (t trial) key() moduleKey {
	k := moduleKey{workload: t.w.Name, variant: t.v.Label()}
	if t.inj != nil {
		k.site = t.inj.String()
	}
	return k
}

// runTrials executes the trial grid on the worker pool and returns the
// per-trial classifications and errors, indexed like trials. Only the
// serializable classification fields survive: the raw interpreter result
// is dropped per trial, releasing each output buffer instead of pinning
// all of them until the campaign ends.
//
// With EvictModules set, runTrials also releases each injected module
// once its last trial completes. Because a site's trials are contiguous
// in the canonical plan, this bounds peak cache residency at large site
// counts; the per-key pending counters make it order-independent (and
// therefore safe at any worker count): a module is only evicted when no
// trial that uses it remains.
func (r *Runner) runTrials(trials []trial) ([]TrialOutcome, []error) {
	outcomes := make([]TrialOutcome, len(trials))
	errs := make([]error, len(trials))
	var pending map[moduleKey]*int64
	if r.EvictModules {
		pending = make(map[moduleKey]*int64)
		for _, t := range trials {
			k := t.key()
			if k.site == "" {
				// Uninjected modules (base builds, overhead runs) seed
				// other builds and are shared beyond this trial list;
				// only per-(site, variant) modules are evictable.
				continue
			}
			if c := pending[k]; c != nil {
				*c++
			} else {
				n := int64(1)
				pending[k] = &n
			}
		}
	}
	pool := r.spaces()
	r.fanOut(len(trials), func(i int) {
		t := trials[i]
		o, err := r.runOnce(t.w, t.v, t.inj, t.rn, pool)
		outcomes[i], errs[i] = o.Trial(), err
		if pending != nil {
			if c := pending[t.key()]; c != nil && atomic.AddInt64(c, -1) == 0 {
				r.cache.evict(t.key())
			}
		}
	})
	return outcomes, errs
}

// fanOut runs fn(0..n-1) across the Runner's worker pool. Each index is
// processed exactly once; fn must only write to index-i slots of shared
// slices. Progress (if set) is reported after each completed index.
func (r *Runner) fanOut(n int, fn func(i int)) {
	done := 0
	report := func() {
		if r.Progress == nil {
			return
		}
		r.progressMu.Lock()
		done++
		r.Progress(done, n)
		r.progressMu.Unlock()
	}
	workers := r.Parallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
			report()
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
				report()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// CachedModules reports how many distinct modules the Runner's build
// cache currently holds.
func (r *Runner) CachedModules() int { return r.cache.size() }

// CacheStats reports the Runner's module-cache counters: builds,
// evictions, and current/peak residency.
func (r *Runner) CacheStats() CacheStats { return r.cache.statsSnapshot() }
