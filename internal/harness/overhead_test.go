package harness

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"strings"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/workloads"
)

// smallOverhead is a grid small enough for test time but wide enough to
// exercise golden reuse (the non-DPMR variant) and several DPMR builds.
func smallOverhead() ([]workloads.Workload, []Variant) {
	return workloads.All()[:2], []Variant{
		Stdapp(),
		NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
		NewVariant(dpmr.SDS, dpmr.PadMalloc{Pad: 32}, dpmr.AllLoads{}),
	}
}

// runOverheadShards measures the small grid as n shards (each on its own
// Runner, as separate processes would) and returns the partials in shard
// order, JSON round-tripped so the tests exercise the bytes a sharded
// deployment ships.
func runOverheadShards(t *testing.T, n int) []*OverheadPartial {
	t.Helper()
	ws, vs := smallOverhead()
	parts := make([]*OverheadPartial, n)
	for i := 0; i < n; i++ {
		r := NewRunner()
		r.Parallel = 2
		r.Shard = ShardSpec{Index: i, Count: n}
		p, err := r.RunOverheadPartial(context.Background(), OverheadSpec(ws, vs))
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatalf("shard %d/%d: encode: %v", i, n, err)
		}
		rp, err := DecodeOverheadPartial(&buf)
		if err != nil {
			t.Fatalf("shard %d/%d: decode: %v", i, n, err)
		}
		parts[i] = rp
	}
	return parts
}

// TestOverheadShardMergeByteIdentical is the overhead sharding contract:
// for several shard counts and adversarial merge orders, the merged
// OverheadResult — and the rendered report bytes — are identical to an
// unsharded RunOverhead.
func TestOverheadShardMergeByteIdentical(t *testing.T) {
	ws, vs := smallOverhead()
	r := NewRunner()
	golden, err := r.RunOverhead(context.Background(), OverheadSpec(ws, vs))
	if err != nil {
		t.Fatal(err)
	}
	var goldenBytes bytes.Buffer
	renderOverhead(&goldenBytes, golden, labelDiversity)
	for _, n := range []int{1, 2, 3, 5} {
		parts := runOverheadShards(t, n)
		orders := [][]*OverheadPartial{parts, reversedOv(parts), rotatedOv(parts, n/2)}
		for oi, order := range orders {
			mr := NewRunner()
			merged, err := mr.MergeOverhead(OverheadSpec(ws, vs), order)
			if err != nil {
				t.Fatalf("n=%d order=%d: %v", n, oi, err)
			}
			if !reflect.DeepEqual(golden, merged) {
				t.Errorf("n=%d order=%d: merged overhead differs from unsharded:\n%+v\nvs\n%+v", n, oi, golden, merged)
			}
			var got bytes.Buffer
			renderOverhead(&got, merged, labelDiversity)
			if !bytes.Equal(goldenBytes.Bytes(), got.Bytes()) {
				t.Errorf("n=%d order=%d: rendered overhead differs:\n--- unsharded ---\n%s\n--- merged ---\n%s",
					n, oi, goldenBytes.String(), got.String())
			}
		}
	}
}

func reversedOv(parts []*OverheadPartial) []*OverheadPartial {
	out := make([]*OverheadPartial, len(parts))
	for i, p := range parts {
		out[len(parts)-1-i] = p
	}
	return out
}

func rotatedOv(parts []*OverheadPartial, by int) []*OverheadPartial {
	out := make([]*OverheadPartial, 0, len(parts))
	out = append(out, parts[by:]...)
	return append(out, parts[:by]...)
}

// TestMergeOverheadRejects covers the validation MergeOverhead shares
// with MergeCampaign: duplicated shards, gaps, foreign plans, nils.
func TestMergeOverheadRejects(t *testing.T) {
	ws, vs := smallOverhead()
	parts := runOverheadShards(t, 3)
	r := NewRunner()
	spec := OverheadSpec(ws, vs)
	if _, err := r.MergeOverhead(spec, []*OverheadPartial{parts[0], parts[1], parts[1], parts[2]}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicated shard not rejected: %v", err)
	}
	if _, err := r.MergeOverhead(spec, []*OverheadPartial{parts[0], parts[2]}); err == nil || !strings.Contains(err.Error(), "missing trials") {
		t.Errorf("missing shard not rejected with a named range: %v", err)
	}
	if _, err := r.MergeOverhead(spec, nil); err == nil || !strings.Contains(err.Error(), "no partial results") {
		t.Errorf("empty merge not rejected: %v", err)
	}
	if _, err := r.MergeOverhead(spec, []*OverheadPartial{parts[0], nil, parts[2]}); err == nil || !strings.Contains(err.Error(), "nil partial") {
		t.Errorf("nil partial not rejected: %v", err)
	}
	// A different variant set is a different plan: refused by fingerprint.
	if _, err := r.MergeOverhead(OverheadSpec(ws, vs[:2]), parts); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("foreign-plan merge not rejected by fingerprint: %v", err)
	}
}

// TestRunOverheadRejectsShard: a Runner configured with a proper shard
// must not silently truncate RunOverhead.
func TestRunOverheadRejectsShard(t *testing.T) {
	ws, vs := smallOverhead()
	r := NewRunner()
	r.Shard = ShardSpec{Index: 1, Count: 2}
	if _, err := r.RunOverhead(context.Background(), OverheadSpec(ws, vs)); err == nil || !strings.Contains(err.Error(), "RunOverheadPartial") {
		t.Errorf("sharded RunOverhead: err = %v, want a pointer to RunOverheadPartial", err)
	}
}

// TestDecodeOverheadPartialRejectsMalformed covers the decoder's shape
// checks — malformed input errors, never panics.
func TestDecodeOverheadPartialRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"negative lo":     `{"fingerprint":"f","lo":-1,"hi":0,"total":4,"cycles":[1]}`,
		"hi before lo":    `{"fingerprint":"f","lo":3,"hi":1,"total":4,"cycles":[]}`,
		"hi past total":   `{"fingerprint":"f","lo":0,"hi":9,"total":4,"cycles":[1,2,3,4,5,6,7,8,9]}`,
		"length mismatch": `{"fingerprint":"f","lo":0,"hi":2,"total":4,"cycles":[1]}`,
		"no fingerprint":  `{"lo":0,"hi":1,"total":4,"cycles":[1]}`,
	}
	for name, text := range cases {
		if _, err := DecodeOverheadPartial(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestGenerateShardedOverheadByteIdentical drives the dpmr-exp path for
// an overhead experiment: fig3.16 generated as shards, merged out of
// order, against the bytes an unsharded Generate writes.
func TestGenerateShardedOverheadByteIdentical(t *testing.T) {
	ctx := context.Background()
	spec := quickExp("fig3.16")
	opts := Options{Parallel: 2, Evict: true}
	var golden bytes.Buffer
	if err := Generate(ctx, spec, &golden, opts); err != nil {
		t.Fatal(err)
	}
	const n = 3
	files := make([]bytes.Buffer, n)
	for i := 0; i < n; i++ {
		if err := GenerateSharded(ctx, spec, ShardSpec{Index: i, Count: n}, &files[i], opts); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	var merged bytes.Buffer
	readers := []io.Reader{&files[2], &files[0], &files[1]}
	idless := spec
	idless.Exp = ""
	if err := GenerateMerged(ctx, idless, &merged, readers, opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden.Bytes(), merged.Bytes()) {
		t.Errorf("merged fig3.16 differs from unsharded:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			golden.String(), merged.String())
	}
}

// TestPlanTrials pins the coordinator-facing plan arithmetic: the plan's
// trial count is stable across Runners and matches what the shards tile.
func TestPlanTrials(t *testing.T) {
	r := NewRunner()
	total, err := r.PlanTrials(smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatalf("PlanTrials = %d", total)
	}
	parts := runShards(t, 3)
	if parts[len(parts)-1].Total != total {
		t.Errorf("PlanTrials = %d, shards tile a %d-trial plan", total, parts[len(parts)-1].Total)
	}
}
