package harness

import (
	"context"
	"reflect"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/faultinject"
	"dpmr/internal/interp"
	"dpmr/internal/mem"
	"dpmr/internal/workloads"
)

// differentialVariants is the full Figure 3.x/4.x variant surface: every
// diversity and every policy under both designs, deduplicated by label.
func differentialVariants() []Variant {
	var out []Variant
	seen := map[string]bool{}
	for _, set := range [][]Variant{
		DiversityVariants(dpmr.SDS), PolicyVariants(dpmr.SDS),
		DiversityVariants(dpmr.MDS), PolicyVariants(dpmr.MDS),
	} {
		for _, v := range set {
			if !seen[v.Label()] {
				seen[v.Label()] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// TestCompiledMatchesReference is the compiled interpreter's differential
// harness: every registered workload × variant × fault injection runs
// under both the compiled bytecode (with pooled address spaces, as
// campaigns run it) and the reference tree-walker (fresh spaces), and the
// complete Result — exit kind and code, detection reason, steps, the
// Cycles clock, output bytes, fault timing, and memory statistics — must
// be identical. Identical Results imply identical §3.6 classifications,
// golden reports, shard partials, and merge fingerprints.
func TestCompiledMatchesReference(t *testing.T) {
	variants := differentialVariants()
	memCfg := NewRunner().MemConfig
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			base := w.Build()
			base.Freeze()
			golden := interp.Run(base, interp.Config{Externs: extlib.Base(), Mem: memCfg})
			if golden.Kind != interp.ExitNormal {
				t.Fatalf("golden: %v (%s)", golden.Kind, golden.Reason)
			}
			limit := golden.Steps * 100
			injections := []*faultinject.Site{nil}
			for _, kind := range []faultinject.Kind{faultinject.HeapArrayResize, faultinject.ImmediateFree} {
				for _, s := range sampleSites(faultinject.Enumerate(base, kind), 2) {
					s := s
					injections = append(injections, &s)
				}
			}
			pool := mem.NewPool(memCfg)
			for _, v := range variants {
				for _, inj := range injections {
					m := base
					if inj != nil {
						fm, err := faultinject.Apply(base, *inj)
						if err != nil {
							t.Fatalf("%s %v: %v", v.Label(), inj, err)
						}
						m = fm
					}
					externs := extlib.Base()
					if v.DPMR {
						xm, err := dpmr.Transform(m, dpmr.Config{
							Design: v.Design, Diversity: v.Diversity, Policy: v.Policy, Seed: transformSeed,
						})
						if err != nil {
							t.Fatalf("%s %v: transform: %v", v.Label(), inj, err)
						}
						m = xm
						externs = extlib.Wrapped(v.Design)
					}
					m.Freeze()
					prog, err := interp.Compile(m)
					if err != nil {
						t.Fatalf("%s %v: compile: %v", v.Label(), inj, err)
					}
					cfg := interp.Config{Externs: externs, Mem: memCfg, Seed: 1, StepLimit: limit}
					ref := interp.Run(m, cfg)
					cfg.Prog = prog
					cfg.SpacePool = pool
					got := interp.Run(m, cfg)
					if !reflect.DeepEqual(ref, got) {
						t.Errorf("%s / %s / inj=%v: compiled result diverges\nref: kind=%v code=%d reason=%q steps=%d cycles=%d faultSeen=%v faultCycle=%d mem=%+v\ngot: kind=%v code=%d reason=%q steps=%d cycles=%d faultSeen=%v faultCycle=%d mem=%+v\noutput equal: %v",
							w.Name, v.Label(), inj,
							ref.Kind, ref.Code, ref.Reason, ref.Steps, ref.Cycles, ref.FaultSeen, ref.FaultCycle, ref.Mem,
							got.Kind, got.Code, got.Reason, got.Steps, got.Cycles, got.FaultSeen, got.FaultCycle, got.Mem,
							string(ref.Output) == string(got.Output))
					}
				}
			}
		})
	}
}

// TestCampaignCompiledMatchesReference runs one real (quick) campaign
// both ways end to end and asserts the aggregated CampaignResult — the
// thing reports, shards, and merges are derived from — is identical.
func TestCampaignCompiledMatchesReference(t *testing.T) {
	spec := CampaignSpec(faultinject.ImmediateFree, workloads.All()[:2], []Variant{
		Stdapp(),
		NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}),
	})
	spec.MaxSites = 3
	spec.Runs = 1
	run := func(compile bool) *CampaignResult {
		r := NewRunner()
		r.Compile = compile
		cr, err := r.RunCampaign(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	if ref, got := run(false), run(true); !reflect.DeepEqual(ref, got) {
		t.Fatalf("campaign results diverge between reference and compiled engines")
	}
}

// TestOverheadCompiledMatchesReference does the same for the overhead
// (cycle-ratio) experiments, whose numbers are the most sensitive to any
// cycle-clock divergence.
func TestOverheadCompiledMatchesReference(t *testing.T) {
	ws := workloads.All()[:2]
	variants := []Variant{
		Stdapp(),
		NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
		NewVariant(dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.StaticLoadChecking{Percent: 50}),
	}
	run := func(compile bool) *OverheadResult {
		r := NewRunner()
		r.Compile = compile
		or, err := r.RunOverhead(context.Background(), OverheadSpec(ws, variants))
		if err != nil {
			t.Fatal(err)
		}
		return or
	}
	if ref, got := run(false), run(true); !reflect.DeepEqual(ref, got) {
		t.Fatalf("overhead results diverge between reference and compiled engines")
	}
}
