package harness

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/faultinject"
	"dpmr/internal/workloads"
)

// smallCampaign is a multi-workload, multi-variant grid small enough for
// test time but wide enough to exercise stdapp reuse, DPMR variants, and
// the conditional aggregate.
func smallCampaign() Spec {
	s := CampaignSpec(faultinject.ImmediateFree, workloads.All()[:2], []Variant{
		Stdapp(),
		NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
		NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}),
	})
	s.MaxSites = 3
	return s
}

// quickExp is the experiment Spec the quick-mode CLI assembles.
func quickExp(id string) Spec {
	return Spec{Kind: SpecExperiment, Exp: id, Quick: true}
}

func campaignAt(t *testing.T, parallel int) (*CampaignResult, *Runner) {
	t.Helper()
	r := NewRunner()
	r.Parallel = parallel
	cr, err := r.RunCampaign(context.Background(), smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	return cr, r
}

// TestCampaignDeterministicAcrossWorkerCounts is the engine's core
// contract: same Spec + seed ⇒ identical CampaignResult at parallel=1
// and parallel=8, down to the rendered report bytes.
func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, _ := campaignAt(t, 1)
	parallel, _ := campaignAt(t, 8)
	if !reflect.DeepEqual(serial.Cells, parallel.Cells) {
		t.Errorf("coverage cells differ between parallel=1 and parallel=8:\n%+v\nvs\n%+v",
			serial.Cells, parallel.Cells)
	}
	if !reflect.DeepEqual(serial.Conditional, parallel.Conditional) {
		t.Errorf("conditional cells differ between parallel=1 and parallel=8")
	}
	var bufS, bufP bytes.Buffer
	renderCoverage(&bufS, serial, labelDiversity)
	renderCoverage(&bufP, parallel, labelDiversity)
	if !bytes.Equal(bufS.Bytes(), bufP.Bytes()) {
		t.Errorf("rendered reports differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			bufS.String(), bufP.String())
	}
	var condS, condP bytes.Buffer
	renderConditional(&condS, serial, labelDiversity)
	renderConditional(&condP, parallel, labelDiversity)
	if !bytes.Equal(condS.Bytes(), condP.Bytes()) {
		t.Errorf("rendered conditional reports differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			condS.String(), condP.String())
	}
}

// TestGeneratedReportByteIdenticalAcrossWorkerCounts drives the full
// report path (the bytes dpmr-exp writes) at both worker counts.
func TestGeneratedReportByteIdenticalAcrossWorkerCounts(t *testing.T) {
	render := func(parallel int) []byte {
		var buf bytes.Buffer
		err := Generate(context.Background(), quickExp("fig3.7"), &buf, Options{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("fig3.7 output differs by worker count:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s",
			serial, parallel)
	}
}

// TestOverheadDeterministicAcrossWorkerCounts covers the RunOverhead
// path of the engine.
func TestOverheadDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(parallel int) *OverheadResult {
		r := NewRunner()
		r.Parallel = parallel
		or, err := r.RunOverhead(context.Background(), OverheadSpec(workloads.All()[:2], []Variant{
			Stdapp(),
			NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
			NewVariant(dpmr.SDS, dpmr.PadMalloc{Pad: 32}, dpmr.AllLoads{}),
		}))
		if err != nil {
			t.Fatal(err)
		}
		return or
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("overhead results differ between parallel=1 and parallel=4:\n%+v\nvs\n%+v",
			serial, parallel)
	}
}

// TestCampaignConcurrent exercises the engine under many workers (and,
// in CI, under the race detector): shared frozen modules, the build
// cache, golden memoization, and the typed event stream all run from 8
// goroutines at once.
func TestCampaignConcurrent(t *testing.T) {
	r := NewRunner()
	r.Parallel = 8
	var mu sync.Mutex
	var trialDone, progress, lastTotal int
	maxDone := 0
	r.Events = func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e := ev.(type) {
		case TrialDone:
			trialDone++
			lastTotal = e.Total
			if e.Done > maxDone {
				maxDone = e.Done
			}
		case Progress:
			progress++
		}
	}
	spec := smallCampaign()
	spec.Runs = 1
	cr, err := r.RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Workloads) != 2 {
		t.Fatalf("workloads = %v", cr.Workloads)
	}
	if trialDone == 0 || maxDone != lastTotal {
		t.Errorf("event stream incomplete: %d TrialDone events, max done %d, total %d", trialDone, maxDone, lastTotal)
	}
	if progress != trialDone {
		t.Errorf("every TrialDone should pair with a Progress event: %d vs %d", progress, trialDone)
	}
}

// TestModuleCacheBuildsEachModuleOnce asserts stage 1 of the engine:
// the trial grid executes sites × variants × runs VMs but only
// sites × variants (+ golden-equivalent stdapp) distinct modules are
// ever built.
func TestModuleCacheBuildsEachModuleOnce(t *testing.T) {
	spec := smallCampaign()
	spec.Workloads = spec.Workloads[:1]
	spec.Runs = 3 // more runs than the serial engine needs modules for
	w := workloads.All()[0]
	sites := len(sampleSites(faultinject.Enumerate(w.Build(), faultinject.ImmediateFree), spec.MaxSites))
	r := NewRunner()
	r.Parallel = 4
	if _, err := r.RunCampaign(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	// One frozen base per workload, plus stdapp + 2 DPMR variants per
	// site; non-injected variant modules are not built by the campaign
	// (stdapp reuse covers non-DPMR variants).
	want := 1 + sites*3
	if got := r.CachedModules(); got != want {
		t.Errorf("cache holds %d modules, want %d (base + sites=%d × variants=3)", got, want, sites)
	}
}

// TestEvictionBoundsResidency is the residency contract of last-trial
// eviction: an evicting campaign produces identical results with a
// strictly lower peak module-cache residency, and never evicts a module
// that still has pending trials — asserted through the cache-stats
// counters: a premature eviction would force a rebuild, so Builds
// staying equal to the non-evicting run's count proves no module was
// released early.
func TestEvictionBoundsResidency(t *testing.T) {
	for _, parallel := range []int{1, 8} {
		run := func(evict bool) (*CampaignResult, CacheStats) {
			r := NewRunner()
			r.Parallel = parallel
			r.EvictModules = evict
			cr, err := r.RunCampaign(context.Background(), smallCampaign())
			if err != nil {
				t.Fatal(err)
			}
			return cr, r.CacheStats()
		}
		keepCR, keep := run(false)
		evictCR, evict := run(true)
		if !reflect.DeepEqual(keepCR, evictCR) {
			t.Errorf("parallel=%d: eviction changed campaign results", parallel)
		}
		if keep.Evicted != 0 || keep.Resident != keep.Builds || keep.Peak != keep.Builds {
			t.Errorf("parallel=%d: non-evicting stats inconsistent: %+v", parallel, keep)
		}
		if evict.Builds != keep.Builds {
			t.Errorf("parallel=%d: evicting run built %d modules, non-evicting %d — a module was evicted with pending trials and rebuilt",
				parallel, evict.Builds, keep.Builds)
		}
		if evict.Peak >= keep.Peak {
			t.Errorf("parallel=%d: peak residency with eviction = %d, want strictly below %d", parallel, evict.Peak, keep.Peak)
		}
		if evict.Evicted == 0 || evict.Resident != evict.Builds-evict.Evicted {
			t.Errorf("parallel=%d: eviction counters inconsistent: %+v", parallel, evict)
		}
	}
}

// TestEvictionKeepsSerialResidencyConstant pins the serial residency
// bound: with one worker, a site's modules are released as soon as its
// trials pass, so peak residency is the per-site module count plus the
// shared bases — independent of how many sites the campaign has.
func TestEvictionKeepsSerialResidencyConstant(t *testing.T) {
	peakAt := func(maxSites int) int {
		spec := smallCampaign()
		spec.Workloads = spec.Workloads[:1]
		spec.MaxSites = maxSites
		spec.Runs = 1
		r := NewRunner()
		r.EvictModules = true
		if _, err := r.RunCampaign(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
		return r.CacheStats().Peak
	}
	if p2, p4 := peakAt(2), peakAt(4); p4 != p2 {
		t.Errorf("serial evicting peak residency grew with site count: %d sites → %d, %d sites → %d", 2, p2, 4, p4)
	}
}

// TestRunOnceSharedModuleConcurrently hammers one cached frozen module
// from many goroutines; under -race this is the direct audit that a
// read-only module is safe under concurrent VMs.
func TestRunOnceSharedModuleConcurrently(t *testing.T) {
	r := NewRunner()
	w, err := workloads.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	v := NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{})
	sites := faultinject.Enumerate(w.Build(), faultinject.ImmediateFree)
	if len(sites) == 0 {
		t.Fatal("no sites")
	}
	site := sites[0]
	var wg sync.WaitGroup
	outs := make([]Outcome, 8)
	for i := range outs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			o, err := r.RunOnce(w, v, &site, i%2)
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = o
		}()
	}
	wg.Wait()
	// Same rn ⇒ same outcome, even though all eight runs shared one module.
	for i := 2; i < len(outs); i++ {
		ref := outs[i%2]
		if outs[i].SF != ref.SF || outs[i].CO != ref.CO ||
			outs[i].DpmrDet != ref.DpmrDet || outs[i].NatDet != ref.NatDet ||
			outs[i].T2DCycles != ref.T2DCycles {
			t.Errorf("outcome %d diverged from its seed twin: %+v vs %+v", i, outs[i], ref)
		}
	}
	// The workload's frozen base plus the one injected DPMR module.
	if got := r.CachedModules(); got != 2 {
		t.Errorf("cache holds %d modules, want 2 (base + variant)", got)
	}
}
