package harness

import (
	"bytes"
	"context"
	"flag"
	"os"
	"strings"
	"testing"

	"dpmr/internal/faultinject"
	"dpmr/internal/workloads"
)

// TestSpecRoundTripKeepsFingerprint is the Spec identity contract:
// flags → Spec → JSON → Spec preserves the canonical form, the Spec
// fingerprint, and therefore the plan fingerprint — so a -spec file, a
// flag-driven run, and a coordinator assignment all name the same
// experiment.
func TestSpecRoundTripKeepsFingerprint(t *testing.T) {
	specs := map[string]Spec{
		"campaign":   smallCampaign(),
		"overhead":   func() Spec { ws, vs := smallOverhead(); return OverheadSpec(ws, vs) }(),
		"experiment": quickExp("fig3.7"),
		"exp-full":   ExperimentSpec("tab3.3"),
		"concurrent": smallConcurrent(),
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			fp1, err := spec.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := spec.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeSpec(&buf)
			if err != nil {
				t.Fatal(err)
			}
			fp2, err := decoded.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			if fp1 != fp2 {
				t.Errorf("fingerprint changed across JSON round trip: %s vs %s", fp1, fp2)
			}
			// A second round trip is a fixed point: the normalized form
			// re-encodes to identical bytes.
			c1, _ := spec.Canonical()
			c2, _ := decoded.Canonical()
			if !bytes.Equal(c1, c2) {
				t.Errorf("canonical JSON changed across round trip:\n%s\nvs\n%s", c1, c2)
			}
		})
	}
}

// TestSpecFingerprintSeparatesExperiments: distinct experiments have
// distinct fingerprints; equal experiments spelled differently (defaults
// explicit vs. omitted) have equal fingerprints.
func TestSpecFingerprintSeparatesExperiments(t *testing.T) {
	base := smallCampaign()
	fp := func(s Spec) string {
		t.Helper()
		f, err := s.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	same := base
	same.Runs = 2           // the default, now explicit
	same.TimeoutFactor = 20 // the default, now explicit
	if fp(base) != fp(same) {
		t.Error("explicit defaults changed the fingerprint")
	}
	for name, mutate := range map[string]func(*Spec){
		"runs":     func(s *Spec) { s.Runs = 3 },
		"sites":    func(s *Spec) { s.MaxSites = 1 },
		"inject":   func(s *Spec) { s.Inject = faultinject.HeapArrayResize.String() },
		"workload": func(s *Spec) { s.Workloads = s.Workloads[:1] },
		"variants": func(s *Spec) { s.Variants = s.Variants[:2] },
		"timeout":  func(s *Spec) { s.TimeoutFactor = 10 },
	} {
		other := base
		mutate(&other)
		if fp(base) == fp(other) {
			t.Errorf("%s: a different experiment fingerprints equal", name)
		}
	}
}

// TestSpecNormalizeRejects covers validation: unknown kinds, workloads,
// variants, and injections error — never run, never panic.
func TestSpecNormalizeRejects(t *testing.T) {
	ws := workloads.All()[:1]
	cases := map[string]Spec{
		"unknown kind":     {Kind: "banana"},
		"empty kind":       {},
		"no workloads":     {Kind: SpecCampaign, Inject: "immediate-free", Variants: []VariantSpec{{}}},
		"unknown workload": {Kind: SpecCampaign, Inject: "immediate-free", Workloads: []string{"nope"}, Variants: []VariantSpec{{}}},
		"no variants":      {Kind: SpecCampaign, Inject: "immediate-free", Workloads: []string{ws[0].Name}},
		"unknown inject":   {Kind: SpecCampaign, Inject: "rowhammer", Workloads: []string{ws[0].Name}, Variants: []VariantSpec{{}}},
		"no inject":        {Kind: SpecCampaign, Workloads: []string{ws[0].Name}, Variants: []VariantSpec{{}}},
		"bad design":       {Kind: SpecOverhead, Workloads: []string{ws[0].Name}, Variants: []VariantSpec{{DPMR: true, Design: "tds"}}},
		"bad diversity":    {Kind: SpecOverhead, Workloads: []string{ws[0].Name}, Variants: []VariantSpec{{DPMR: true, Diversity: "nope"}}},
		"bad policy":       {Kind: SpecOverhead, Workloads: []string{ws[0].Name}, Variants: []VariantSpec{{DPMR: true, Policy: "nope"}}},
		"exp bad workload": {Kind: SpecExperiment, Exp: "fig3.7", Workloads: []string{"nope"}},
		// Concurrent specs take the concurrent workload set only; a
		// sequential workload name (or none, or no variants) is refused.
		"conc no workloads": {Kind: SpecConcurrent, Variants: []VariantSpec{{}}},
		"conc seq workload": {Kind: SpecConcurrent, Workloads: []string{ws[0].Name}, Variants: []VariantSpec{{}}},
		"conc bad workload": {Kind: SpecConcurrent, Workloads: []string{"nope"}, Variants: []VariantSpec{{}}},
		"conc no variants":  {Kind: SpecConcurrent, Workloads: []string{"chash"}},
		"conc bad variant":  {Kind: SpecConcurrent, Workloads: []string{"chash"}, Variants: []VariantSpec{{DPMR: true, Design: "tds"}}},
	}
	for name, spec := range cases {
		if _, err := spec.Normalized(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestVariantSpecRoundTrip: every variant of the full differential
// surface survives Variant → VariantSpec → Variant with its label (the
// result-map key) intact.
func TestVariantSpecRoundTrip(t *testing.T) {
	for _, v := range differentialVariants() {
		vs := VariantSpecOf(v)
		back, err := vs.Variant()
		if err != nil {
			t.Fatalf("%s: %v", v.Label(), err)
		}
		if back.Label() != v.Label() {
			t.Errorf("variant label changed across round trip: %q vs %q", v.Label(), back.Label())
		}
	}
}

// TestDecodeSpecRejectsMalformed: the -spec file decoder refuses bad
// JSON, unknown fields (typo protection), and invalid contents.
func TestDecodeSpecRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":      "{",
		"unknown field": `{"kind":"campaign","workloadz":["mcf"]}`,
		"bad kind":      `{"kind":"banana"}`,
		"invalid":       `{"kind":"campaign"}`,
	}
	for name, text := range cases {
		if _, err := DecodeSpec(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestParseSpecFlags: flags-only passes through normalized; -spec with
// any explicitly set what-flag is refused; -spec alone loads the file.
func TestParseSpecFlags(t *testing.T) {
	newFS := func() (*flag.FlagSet, *string, *bool) {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		exp := fs.String("exp", "", "")
		quick := fs.Bool("quick", false, "")
		fs.Int("parallel", 1, "")
		return fs, exp, quick
	}

	// Flags only.
	fs, exp, quick := newFS()
	if err := fs.Parse([]string{"-exp", "fig3.7", "-quick"}); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpecFlags(fs, "", Spec{Kind: SpecExperiment, Exp: *exp, Quick: *quick}, "exp", "quick")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Exp != "fig3.7" || spec.Runs != 1 {
		t.Errorf("flag-built spec not normalized: %+v", spec)
	}

	// Spec file only.
	dir := t.TempDir()
	path := dir + "/spec.json"
	var buf bytes.Buffer
	if err := spec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	fs2, _, _ := newFS()
	if err := fs2.Parse([]string{"-parallel", "4"}); err != nil { // how-flags are fine alongside -spec
		t.Fatal(err)
	}
	loaded, err := ParseSpecFlags(fs2, path, Spec{Kind: SpecExperiment}, "exp", "quick")
	if err != nil {
		t.Fatal(err)
	}
	if f1, _ := spec.Fingerprint(); true {
		if f2, _ := loaded.Fingerprint(); f1 != f2 {
			t.Errorf("spec loaded from file fingerprints differently: %s vs %s", f1, f2)
		}
	}

	// Mixing -spec with an explicit what-flag is a usage error naming it.
	fs3, _, _ := newFS()
	if err := fs3.Parse([]string{"-exp", "fig3.8"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpecFlags(fs3, path, Spec{Kind: SpecExperiment, Exp: "fig3.8"}, "exp", "quick"); err == nil || !strings.Contains(err.Error(), "-exp") {
		t.Errorf("mixed -spec and -exp: err = %v, want the flag named", err)
	}

	// A missing file errors.
	fs4, _, _ := newFS()
	if err := fs4.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpecFlags(fs4, dir+"/absent.json", Spec{Kind: SpecExperiment}, "exp"); err == nil {
		t.Error("missing spec file accepted")
	}
}

// TestPlanFingerprintTracksSpecFingerprint: two Runners planning the
// same Spec (via different spellings) produce one plan fingerprint, and
// a different Spec produces a different one — the property coordinator
// assignments rely on.
func TestPlanFingerprintTracksSpecFingerprint(t *testing.T) {
	ctx := context.Background()
	partialOf := func(s Spec) *PartialResult {
		t.Helper()
		r := NewRunner()
		r.Shard = ShardSpec{Index: 0, Count: 4}
		p, err := r.RunCampaignPartial(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := partialOf(smallCampaign())
	spelled := smallCampaign()
	spelled.Runs = 2 // explicit default
	b := partialOf(spelled)
	if a.Fingerprint != b.Fingerprint {
		t.Error("equal Specs produced different plan fingerprints")
	}
	other := smallCampaign()
	other.Runs = 1
	c := partialOf(other)
	if a.Fingerprint == c.Fingerprint {
		t.Error("different Specs produced one plan fingerprint")
	}
}

// TestSpecNormalizeClampsCounts: negative Runs/MaxSites are alternate
// spellings of the defaults and must fold into the canonical form, so
// they cannot split the fingerprints of equal experiments. Overhead
// Specs clear Runs entirely — the measurement plan has no per-run loop.
func TestSpecNormalizeClampsCounts(t *testing.T) {
	exp, err := Spec{Kind: SpecExperiment, Exp: "fig3.7", Runs: -3, MaxSites: -1}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if exp.Runs != 2 || exp.MaxSites != 0 {
		t.Errorf("negative counts not folded: runs=%d maxSites=%d", exp.Runs, exp.MaxSites)
	}
	canon, err := Spec{Kind: SpecExperiment, Exp: "fig3.7"}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp, _ := (Spec{Kind: SpecExperiment, Exp: "fig3.7", Runs: -3, MaxSites: -1}).Fingerprint(); fp != canon {
		t.Error("negative counts split the fingerprint of an equal experiment")
	}
	quick, err := Spec{Kind: SpecExperiment, Exp: "fig3.7", Quick: true, Runs: -1}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if quick.Runs != 1 {
		t.Errorf("quick with negative runs = %d, want the quick default 1", quick.Runs)
	}

	ws, vs := smallOverhead()
	ov := OverheadSpec(ws, vs)
	base, err := ov.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	withRuns := ov
	withRuns.Runs = 1
	if fp, _ := withRuns.Fingerprint(); fp != base {
		t.Error("Runs (kind-inapplicable) split the fingerprint of an equal overhead measurement")
	}
	n, _ := withRuns.Normalized()
	if n.Runs != 0 {
		t.Errorf("overhead spec kept Runs=%d, want it cleared", n.Runs)
	}
}

// TestSpecClearsConcurrencyFields: Threads and SchedSeed apply only to
// the concurrent kind. Campaign, overhead, and experiment Specs must
// clear them during normalization so two spellings of one experiment —
// with and without stray concurrency knobs — cannot fingerprint apart;
// concurrent Specs fill their defaults instead.
func TestSpecClearsConcurrencyFields(t *testing.T) {
	fp := func(s Spec) string {
		t.Helper()
		f, err := s.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	ws, vs := smallOverhead()
	for name, base := range map[string]Spec{
		"campaign":   smallCampaign(),
		"overhead":   OverheadSpec(ws, vs),
		"experiment": quickExp("fig3.7"),
	} {
		t.Run(name, func(t *testing.T) {
			withKnobs := base
			withKnobs.Threads = 7
			withKnobs.SchedSeed = 42
			if fp(base) != fp(withKnobs) {
				t.Error("kind-inapplicable concurrency fields split the fingerprint of an equal experiment")
			}
			n, err := withKnobs.Normalized()
			if err != nil {
				t.Fatal(err)
			}
			if n.Threads != 0 || n.SchedSeed != 0 {
				t.Errorf("normalized %s spec kept threads=%d schedSeed=%d, want both cleared", name, n.Threads, n.SchedSeed)
			}
		})
	}

	// The concurrent kind fills defaults rather than clearing, and a
	// negative thread count folds to the default spelling.
	conc, err := smallConcurrent().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if conc.Threads != 3 || conc.SchedSeed != 1 || conc.Runs != 2 {
		t.Errorf("concurrent defaults: threads=%d schedSeed=%d runs=%d, want 3/1/2", conc.Threads, conc.SchedSeed, conc.Runs)
	}
	negative := smallConcurrent()
	negative.Threads = -4
	if fp(smallConcurrent()) != fp(negative) {
		t.Error("negative thread count split the fingerprint of an equal concurrent campaign")
	}
	distinct := smallConcurrent()
	distinct.Threads = 2
	if fp(smallConcurrent()) == fp(distinct) {
		t.Error("a different thread count fingerprints equal")
	}
}

// TestGoldenCacheResetsOnGeometryChange: a persistent worker's Runner
// serving Specs of different memory geometries must re-measure goldens
// under the new geometry, not serve the previous Spec's baselines.
func TestGoldenCacheResetsOnGeometryChange(t *testing.T) {
	ctx := context.Background()
	ws, vs := smallOverhead()
	spec := OverheadSpec(ws[:1], vs[:2])
	r := NewRunner()
	if _, err := r.RunOverhead(ctx, spec); err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName(spec.Workloads[0])
	if err != nil {
		t.Fatal(err)
	}
	g1, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	bigger := spec
	bigger.Mem = defaultMem()
	bigger.Mem.HeapBytes *= 2
	if _, err := r.RunOverhead(ctx, bigger); err != nil {
		t.Fatal(err)
	}
	g2, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g2 {
		t.Error("golden cache survived a memory-geometry change")
	}
	// Same geometry again: memoization still applies.
	if _, err := r.RunOverhead(ctx, bigger); err != nil {
		t.Fatal(err)
	}
	if g3, _ := r.Golden(w); g3 != g2 {
		t.Error("golden cache not memoized within one geometry")
	}
}
