package harness

// Session is the context-first execution layer over Spec: Start takes
// the declarative *what* (a Spec) plus functional options for the *how*
// (worker count, compilation, eviction, sharding, space pooling) and
// runs the experiment in the background, streaming typed events —
// TrialDone, Progress, ShardMerged, CacheStats — through a subscription
// channel while it executes. Cancelling the context stops dispatch,
// drains in-flight trials, and Wait returns the completed-prefix
// partial result together with the context's error, so a cancelled
// campaign's finished work is never discarded.

import (
	"context"
	"fmt"
	"io"
	"sync"

	"dpmr/internal/mem"
)

// sessionConfig is the resolved *how* of a Session, accumulated by the
// functional options.
type sessionConfig struct {
	runner      *Runner
	parallel    int
	parallelSet bool
	reference   bool
	evict       bool
	precompile  int
	shard       ShardSpec
	spacePool   *mem.Pool
	report      io.Writer
}

// Option configures how a Session executes. Options carry only
// execution policy — nothing an Option sets can change what runs, the
// plan, or its fingerprint; that is the Spec's job.
type Option func(*sessionConfig)

// WithParallel fans trials across n worker goroutines (default 1 =
// serial). Results are byte-identical at any count; non-positive counts
// are rejected when the session runs.
func WithParallel(n int) Option {
	return func(c *sessionConfig) { c.parallel, c.parallelSet = n, true }
}

// WithReference executes trials on the tree-walking reference
// interpreter instead of compiled module bytecode. Output is
// byte-identical either way; the switch exists for A/B measurement.
func WithReference(on bool) Option { return func(c *sessionConfig) { c.reference = on } }

// WithEviction releases each injected module from the build cache after
// its final trial, bounding peak cache residency on large campaigns.
func WithEviction(on bool) Option { return func(c *sessionConfig) { c.evict = on } }

// WithPrecompile launches n background AOT workers that build and
// compile upcoming modules ahead of the execution frontier, overlapping
// stage-1 module construction with stage-2 trial execution (see
// Runner.Precompile). Results are byte-identical at any n; 0 disables
// prefetching.
func WithPrecompile(n int) Option { return func(c *sessionConfig) { c.precompile = n } }

// WithShard restricts the session to shard Index of Count of the Spec's
// canonical trial plan. Campaign and overhead sessions then produce a
// partial result (Result.CampaignPartial / Result.OverheadPartial);
// experiment sessions write an ExperimentPartial JSON document to the
// report writer.
func WithShard(shard ShardSpec) Option { return func(c *sessionConfig) { c.shard = shard } }

// WithSpacePool draws trial address spaces from p instead of a fresh
// per-Runner pool, so consecutive sessions of one memory geometry
// recycle the same spaces. The pool's geometry must match the Spec's.
func WithSpacePool(p *mem.Pool) Option { return func(c *sessionConfig) { c.spacePool = p } }

// WithRunner executes the session on r instead of a fresh NewRunner, so
// consecutive sessions of one plan reuse its warm module and golden
// caches (a persistent worker). The session still applies its other
// options — and the Spec's declarative fields — to r.
func WithRunner(r *Runner) Option { return func(c *sessionConfig) { c.runner = r } }

// WithReport directs an experiment session's rendered report (or, with
// WithShard, its ExperimentPartial JSON) to w. Campaign and overhead
// sessions return structured results instead and ignore it.
func WithReport(w io.Writer) Option { return func(c *sessionConfig) { c.report = w } }

// Result is what a Session produces; which fields are set depends on
// the Spec's kind and on sharding:
//
//   - campaign:   CampaignPartial, plus Campaign when the whole plan ran
//   - overhead:   OverheadPartial, plus Overhead when the whole plan ran
//   - concurrent: ConcurrentPartial, plus Concurrent when the whole
//     plan ran
//   - experiment: nothing here — the report went to WithReport's writer
//
// A cancelled campaign, overhead, or concurrent session still carries
// the completed-prefix partial of its shard.
type Result struct {
	// Spec is the normalized Spec the session ran.
	Spec Spec
	// Campaign is the aggregated result of a whole-plan campaign run.
	Campaign *CampaignResult
	// CampaignPartial holds the shard's (or cancelled run's prefix of)
	// per-trial outcomes.
	CampaignPartial *PartialResult
	// Overhead is the aggregated result of a whole-plan overhead run.
	Overhead *OverheadResult
	// OverheadPartial holds the shard's (or cancelled run's prefix of)
	// cycle measurements.
	OverheadPartial *OverheadPartial
	// Concurrent is the aggregated result of a whole-plan concurrent run.
	Concurrent *ConcurrentResult
	// ConcurrentPartial holds the shard's (or cancelled run's prefix of)
	// per-trial outcomes of a concurrent run.
	ConcurrentPartial *PartialResult
	// Stats is the final module-cache snapshot.
	Stats CacheStats
}

// Session is a running experiment: a handle to subscribe to its event
// stream and wait for its result. Construct with Start.
type Session struct {
	spec Spec

	done   chan struct{}
	result Result
	err    error

	evMu     sync.Mutex
	evCond   *sync.Cond
	queue    []Event
	finished bool
	evCh     chan Event
}

// Start validates and normalizes the Spec, applies the options, and
// launches the experiment in the background. The returned Session's
// event stream (Events) reports per-trial progress while it runs; Wait
// blocks for the outcome.
//
// Cancelling ctx stops trial dispatch and drains in-flight trials —
// no worker goroutine outlives the session — and Wait then returns the
// completed-prefix partial result together with ctx's error.
func Start(ctx context.Context, spec Spec, opts ...Option) (*Session, error) {
	n, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	var cfg sessionConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.report == nil {
		cfg.report = io.Discard
	}
	r := cfg.runner
	if r == nil {
		r = NewRunner()
	}
	if cfg.parallelSet {
		r.Parallel = cfg.parallel
	}
	r.EvictModules = cfg.evict
	r.Compile = !cfg.reference
	r.Precompile = cfg.precompile
	r.Shard = cfg.shard
	if cfg.spacePool != nil {
		r.mu.Lock()
		r.spacePool = cfg.spacePool
		r.mu.Unlock()
	}
	s := &Session{spec: n, done: make(chan struct{})}
	s.evCond = sync.NewCond(&s.evMu)
	r.Events = s.emit
	go s.run(ctx, r, cfg)
	return s, nil
}

// Spec returns the normalized Spec the session runs.
func (s *Session) Spec() Spec { return s.spec }

// Events returns the session's typed event stream. Events arrive in
// emission order and the channel closes when the session finishes; a
// subscriber must consume until close (Drain does) — abandoning the
// channel mid-stream pins the session's remaining buffered events and
// its pump goroutine for the process lifetime. The stream is buffered
// internally, so the engine never blocks on a slow consumer and a
// session whose stream is never subscribed runs unimpeded.
func (s *Session) Events() <-chan Event {
	s.evMu.Lock()
	if s.evCh == nil {
		s.evCh = make(chan Event)
		go s.pump(s.evCh)
	}
	ch := s.evCh
	s.evMu.Unlock()
	return ch
}

// Wait blocks until the session finishes and returns its Result. On
// cancellation err is the context's error and the Result still carries
// the completed-prefix partial (campaign and overhead kinds). Wait may
// be called from any number of goroutines.
func (s *Session) Wait() (Result, error) {
	<-s.done
	return s.result, s.err
}

// Drain consumes the session's event stream through sink (nil discards)
// until it closes, then waits for and returns the result — the one
// consume-and-wait loop the CLIs share.
func (s *Session) Drain(sink func(Event)) (Result, error) {
	if sink == nil {
		sink = func(Event) {}
	}
	for ev := range s.Events() {
		sink(ev)
	}
	return s.Wait()
}

// RenderProgress returns an event sink that renders Progress and
// ShardMerged events as the CLIs' progress lines on w (conventionally
// stderr, so stdout report pipelines stay clean). Sharing the renderer
// keeps the two binaries' progress output from drifting apart.
func RenderProgress(w io.Writer, label string) func(Event) {
	return func(ev Event) {
		switch p := ev.(type) {
		case Progress:
			fmt.Fprintf(w, "\r%s: %d/%d trials (%d modules resident, peak %d, %d evicted)",
				label, p.Done, p.Total, p.Stats.Resident, p.Stats.Peak, p.Stats.Evicted)
			if p.Done == p.Total {
				fmt.Fprintln(w)
			}
		case ShardMerged:
			fmt.Fprintf(w, "%s: merged shard %s: trials [%d, %d) of %d\n",
				label, p.Shard, p.Lo, p.Hi, p.Total)
		}
	}
}

// emit appends one event to the subscription queue. It is the Runner's
// Events sink, so calls are already serialized.
func (s *Session) emit(ev Event) {
	s.evMu.Lock()
	s.queue = append(s.queue, ev)
	s.evCond.Signal()
	s.evMu.Unlock()
}

// finish marks the stream complete. No emit may follow.
func (s *Session) finish() {
	s.evMu.Lock()
	s.finished = true
	s.evCond.Signal()
	s.evMu.Unlock()
	close(s.done)
}

// pump forwards the queued events to the subscription channel, closing
// it once the session has finished and the queue is drained.
func (s *Session) pump(ch chan Event) {
	for {
		s.evMu.Lock()
		for len(s.queue) == 0 && !s.finished {
			s.evCond.Wait()
		}
		q := s.queue
		s.queue = nil
		fin := s.finished
		s.evMu.Unlock()
		for _, ev := range q {
			ch <- ev
		}
		if fin {
			// finished is set strictly after the last emit, so an empty
			// queue here is final.
			close(ch)
			return
		}
	}
}

// run executes the experiment and resolves the session.
func (s *Session) run(ctx context.Context, r *Runner, cfg sessionConfig) {
	s.result.Spec = s.spec
	switch s.spec.Kind {
	case SpecCampaign:
		p, plan, err := r.runCampaignPartial(ctx, s.spec)
		s.result.CampaignPartial = p
		s.err = err
		if err == nil && p.Lo == 0 && p.Hi == p.Total {
			s.result.Campaign = aggregate(plan, p.Outcomes)
		}
	case SpecOverhead:
		p, plan, err := r.runOverheadPartial(ctx, s.spec)
		s.result.OverheadPartial = p
		s.err = err
		if err == nil && p.Lo == 0 && p.Hi == p.Total {
			s.result.Overhead = aggregateOverhead(plan, p.Cycles)
		}
	case SpecConcurrent:
		p, plan, err := r.runConcurrentPartial(ctx, s.spec)
		s.result.ConcurrentPartial = p
		s.err = err
		if err == nil && p.Lo == 0 && p.Hi == p.Total {
			s.result.Concurrent = aggregateConcurrent(plan, p.Outcomes)
		}
	case SpecExperiment:
		o := Options{Evict: cfg.evict, Reference: cfg.reference, Events: s.emit, Runner: r}
		if cfg.parallel != 0 {
			o.Parallel = cfg.parallel
		}
		if cfg.shard.IsZero() {
			s.err = Generate(ctx, s.spec, cfg.report, o)
		} else {
			r.Shard = ShardSpec{} // GenerateSharded re-shards per sub-plan
			s.err = GenerateSharded(ctx, s.spec, cfg.shard, cfg.report, o)
		}
	}
	s.result.Stats = r.CacheStats()
	s.emit(s.result.Stats)
	s.finish()
}
