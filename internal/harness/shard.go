package harness

// Sharded campaign execution. A campaign's canonical flat trial plan is
// a pure function of its normalized Spec, so any process can recompute
// it and claim a contiguous slice: shard i of N runs trials
// [i·T/N, (i+1)·T/N). Each shard emits a PartialResult — the per-trial
// classifications of its range plus the plan fingerprint — and
// MergeCampaign reassembles the full outcome sequence, refusing
// mismatched fingerprints and overlapping or missing trial ranges, then
// aggregates in canonical order. The merged CampaignResult (and any
// report rendered from it) is byte-identical to an unsharded run.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ShardSpec names one shard of a campaign, in one of two forms. The
// fractional form — Index of Count — cuts the plan uniformly: shard i of
// N covers trials [i·T/N, (i+1)·T/N). The explicit form — Lo/Hi set,
// Index and Count zero — covers exactly the trial range [Lo, Hi); it is
// how adaptively cut resume plans name their uneven spans (see
// CampaignResume.Spans). The zero value means "the whole plan".
type ShardSpec struct {
	Index int `json:"index"`
	Count int `json:"count"`
	// Lo, Hi delimit an explicit trial range [Lo, Hi). When Hi > Lo the
	// spec is an explicit span and Index/Count must be zero.
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
}

// SpanShard names the explicit trial range [lo, hi) as a shard.
func SpanShard(lo, hi int) ShardSpec { return ShardSpec{Lo: lo, Hi: hi} }

// IsZero reports whether the spec is the unsharded zero value.
func (s ShardSpec) IsZero() bool { return s == ShardSpec{} }

// explicit reports whether the spec names an explicit trial range
// rather than a fractional Index/Count cut.
func (s ShardSpec) explicit() bool { return s.Lo != 0 || s.Hi != 0 }

// Explicit reports whether the spec names an explicit [Lo, Hi) trial
// span — the form journaled resumes cut — rather than a fractional
// Index/Count cut.
func (s ShardSpec) Explicit() bool { return s.explicit() }

// String renders the spec: the CLI's i/N form for fractional shards,
// [lo,hi) for explicit spans.
func (s ShardSpec) String() string {
	if s.explicit() {
		return fmt.Sprintf("[%d,%d)", s.Lo, s.Hi)
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Validate rejects fractional specs outside [0, Count), explicit spans
// with an empty or negative range, and mixtures of the two forms. The
// zero value is valid (unsharded).
func (s ShardSpec) Validate() error {
	if s.IsZero() {
		return nil
	}
	if s.explicit() {
		if s.Index != 0 || s.Count != 0 {
			return fmt.Errorf("harness: shard %s: explicit trial span cannot also set index/count %d/%d", s, s.Index, s.Count)
		}
		if s.Lo < 0 || s.Hi <= s.Lo {
			return fmt.Errorf("harness: shard: invalid explicit trial span [%d, %d)", s.Lo, s.Hi)
		}
		return nil
	}
	if s.Count < 1 {
		return fmt.Errorf("harness: shard %s: count must be at least 1", s)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("harness: shard %s out of range: index must be in [0, %d)", s, s.Count)
	}
	return nil
}

// ParseShard parses the CLI "i/N" form into a validated ShardSpec.
func ParseShard(text string) (ShardSpec, error) {
	iText, nText, ok := strings.Cut(text, "/")
	if !ok {
		return ShardSpec{}, fmt.Errorf("harness: shard %q: want i/N (e.g. 0/3)", text)
	}
	i, err := strconv.Atoi(strings.TrimSpace(iText))
	if err != nil {
		return ShardSpec{}, fmt.Errorf("harness: shard %q: bad index: %v", text, err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(nText))
	if err != nil {
		return ShardSpec{}, fmt.Errorf("harness: shard %q: bad count: %v", text, err)
	}
	s := ShardSpec{Index: i, Count: n}
	if n < 1 {
		return ShardSpec{}, fmt.Errorf("harness: shard %s: count must be at least 1", s)
	}
	if err := s.Validate(); err != nil {
		return ShardSpec{}, err
	}
	return s, nil
}

// PartialResult is one shard's output: the classifications of the
// contiguous trial range [Lo, Hi) of a campaign plan identified by
// Fingerprint. It is the serialization unit of sharded campaigns —
// JSON-encoded by the shard process, decoded and merged by the
// coordinator.
type PartialResult struct {
	// Fingerprint identifies the canonical plan this shard was cut from;
	// MergeCampaign refuses partials whose fingerprint differs from the
	// plan it recomputes locally.
	Fingerprint string    `json:"fingerprint"`
	Shard       ShardSpec `json:"shard"`
	// Lo, Hi delimit the shard's trial range [Lo, Hi) in the canonical
	// plan; Total is the plan's trial count.
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	Total int `json:"total"`
	// Outcomes holds one entry per trial, Outcomes[k] classifying
	// canonical trial Lo+k.
	Outcomes []TrialOutcome `json:"outcomes"`
	// ElapsedMS is the shard's wall-clock execution time in milliseconds
	// — observed-cost metadata for the campaign journal and adaptive
	// shard sizing. It never participates in merging or fingerprints, so
	// merged reports stay byte-identical whatever the timings were.
	ElapsedMS int64 `json:"elapsedMS,omitempty"`
}

// check validates the partial's internal shape (independent of any
// plan). Decoded partials are checked before use so malformed input
// surfaces as an error, never a panic.
func (p *PartialResult) check() error {
	if p.Lo < 0 || p.Hi < p.Lo || p.Total < p.Hi {
		return fmt.Errorf("harness: partial result: invalid trial range [%d, %d) of %d", p.Lo, p.Hi, p.Total)
	}
	if len(p.Outcomes) != p.Hi-p.Lo {
		return fmt.Errorf("harness: partial result: %d outcomes for trial range [%d, %d)", len(p.Outcomes), p.Lo, p.Hi)
	}
	if p.Fingerprint == "" {
		return fmt.Errorf("harness: partial result: missing plan fingerprint")
	}
	return nil
}

// Encode writes the partial result as JSON.
func (p *PartialResult) Encode(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("harness: encoding partial result: %w", err)
	}
	return nil
}

// DecodePartial reads a JSON partial result and validates its shape. It
// never panics on malformed input.
func DecodePartial(r io.Reader) (*PartialResult, error) {
	var p PartialResult
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("harness: decoding partial result: %w", err)
	}
	if err := p.check(); err != nil {
		return nil, err
	}
	return &p, nil
}

// shardRange slices [0, total) into the spec's contiguous range.
// Fractional shards tile the plan exactly: shard i ends where shard i+1
// begins. Explicit spans cover their stated range, clamped to the plan.
func (s ShardSpec) shardRange(total int) (lo, hi int) {
	if s.explicit() {
		lo, hi = s.Lo, s.Hi
		if hi > total {
			hi = total
		}
		if lo > hi {
			lo = hi
		}
		return lo, hi
	}
	return s.Index * total / s.Count, (s.Index + 1) * total / s.Count
}

// RunCampaignPartial executes only the Runner's shard of the campaign
// Spec's canonical trial plan and returns the indexed partial result. A
// zero Shard runs the whole plan as shard 0/1. Combine the shards with
// MergeCampaign.
//
// Cancelling ctx stops dispatch, drains in-flight trials, and returns
// the completed-prefix partial (Hi trimmed to the last finished trial)
// together with ctx's error — both non-nil — so a cancelled run's
// finished work is never discarded.
func (r *Runner) RunCampaignPartial(ctx context.Context, spec Spec) (*PartialResult, error) {
	p, _, err := r.runCampaignPartial(ctx, spec)
	return p, err
}

// runCampaignPartial also exposes the plan, for callers (GenerateSharded,
// Session) that need a structurally complete stand-in result or the full
// aggregation.
func (r *Runner) runCampaignPartial(ctx context.Context, spec Spec) (*PartialResult, *campaignPlan, error) {
	spec, err := spec.normalizedAs(SpecCampaign, "RunCampaignPartial")
	if err != nil {
		return nil, nil, err
	}
	if err := r.validate(); err != nil {
		return nil, nil, err
	}
	shard := r.Shard
	if shard.IsZero() {
		shard = ShardSpec{Index: 0, Count: 1}
	}
	r.applySpec(spec)
	plan, err := r.planCampaign(spec)
	if err != nil {
		return nil, nil, err
	}
	lo, hi := shard.shardRange(len(plan.trials))
	start := time.Now()
	outcomes, err := r.execTrials(ctx, plan, lo, hi)
	if err != nil && !cancelled(ctx, err) {
		return nil, nil, err
	}
	return &PartialResult{
		Fingerprint: plan.fingerprint,
		Shard:       shard,
		Lo:          lo,
		Hi:          lo + len(outcomes),
		Total:       len(plan.trials),
		Outcomes:    outcomes,
		ElapsedMS:   time.Since(start).Milliseconds(),
	}, plan, err
}

// planSpan is the plan-identity and range header shared by every partial
// kind (campaign PartialResult, OverheadPartial): which plan the shard
// was cut from and which contiguous trial range it covers.
type planSpan struct {
	shard       ShardSpec
	lo, hi      int
	total       int
	fingerprint string
}

// tileSpans validates a set of shard spans against a plan identity
// (fingerprint + trial count) and returns the span indices ordered so
// their ranges tile [0, total) exactly. Mismatched fingerprints,
// overlapping ranges (a duplicated shard), and gaps (a missing shard)
// are rejected with the offending shard or trial range named; what names
// the calling merge in errors.
func tileSpans(what, fingerprint string, total int, spans []planSpan) ([]int, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("harness: %s: no partial results", what)
	}
	for _, s := range spans {
		if s.fingerprint != fingerprint {
			return nil, fmt.Errorf("harness: %s: shard %s was cut from a different plan (fingerprint %.12s, want %.12s): spec, runs, or site enumeration differ",
				what, s.shard, s.fingerprint, fingerprint)
		}
		if s.total != total {
			return nil, fmt.Errorf("harness: %s: shard %s covers a %d-trial plan, this plan has %d trials", what, s.shard, s.total, total)
		}
	}
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if spans[order[a]].lo != spans[order[b]].lo {
			return spans[order[a]].lo < spans[order[b]].lo
		}
		return spans[order[a]].hi < spans[order[b]].hi
	})
	next := 0
	for _, i := range order {
		s := spans[i]
		if s.lo < next {
			return nil, fmt.Errorf("harness: %s: shard %s overlaps already-merged trials [%d, %d): duplicate shard?", what, s.shard, s.lo, min(s.hi, next))
		}
		if s.lo > next {
			return nil, fmt.Errorf("harness: %s: missing trials [%d, %d): no shard covers them", what, next, s.lo)
		}
		next = s.hi
	}
	if next != total {
		return nil, fmt.Errorf("harness: %s: missing trials [%d, %d): no shard covers them", what, next, total)
	}
	return order, nil
}

// MergeCampaign reassembles a full CampaignResult from the partial
// results of a sharded run. The Spec must reproduce the plan the shards
// were cut from (same workloads, variants, injection kind, runs, site
// enumeration); the plan fingerprint enforces this. Partials may arrive
// in any order, but their ranges must tile [0, total) exactly:
// overlapping ranges (e.g. a duplicated shard) and gaps (a missing
// shard) are rejected with the offending trial range named. The merged
// result is byte-identical to an unsharded run of the same Spec. One
// ShardMerged event is emitted per partial, in canonical range order.
func (r *Runner) MergeCampaign(spec Spec, parts []*PartialResult) (*CampaignResult, error) {
	spec, err := spec.normalizedAs(SpecCampaign, "MergeCampaign")
	if err != nil {
		return nil, err
	}
	r.applySpec(spec)
	plan, err := r.planCampaign(spec)
	if err != nil {
		return nil, err
	}
	total := len(plan.trials)
	spans := make([]planSpan, len(parts))
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("harness: MergeCampaign: nil partial result")
		}
		if err := p.check(); err != nil {
			return nil, err
		}
		spans[i] = planSpan{shard: p.Shard, lo: p.Lo, hi: p.Hi, total: p.Total, fingerprint: p.Fingerprint}
	}
	order, err := tileSpans("MergeCampaign", plan.fingerprint, total, spans)
	if err != nil {
		return nil, err
	}
	outcomes := make([]TrialOutcome, total)
	for _, i := range order {
		copy(outcomes[parts[i].Lo:parts[i].Hi], parts[i].Outcomes)
		r.notify(ShardMerged{Shard: parts[i].Shard, Lo: parts[i].Lo, Hi: parts[i].Hi, Total: parts[i].Total,
			Elapsed: time.Duration(parts[i].ElapsedMS) * time.Millisecond})
	}
	return aggregate(plan, outcomes), nil
}

// ShardPayload executes one shard of any Spec kind and returns its
// serialized partial result — the JSON document the coordinator's
// streaming protocol carries: a PartialResult for campaign and
// concurrent Specs, an OverheadPartial for overhead Specs, an
// ExperimentPartial for experiment Specs. It is the one worker-side entry point behind
// `dpmr-exp -worker` and `dpmr-run -worker`, which is why a worker
// process serves whatever Spec its Assignment carries instead of
// re-deriving an experiment from argv. A cancelled ctx fails the shard:
// the coordinator must retry it, not merge a prefix as if it covered
// the range.
func ShardPayload(ctx context.Context, spec Spec, shard ShardSpec, opts Options) ([]byte, error) {
	n, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	switch n.Kind {
	case SpecCampaign, SpecOverhead, SpecConcurrent:
		r := opts.runner()
		r.Shard = shard
		switch n.Kind {
		case SpecCampaign:
			p, err := r.RunCampaignPartial(ctx, n)
			if err != nil {
				return nil, err
			}
			if err := p.Encode(&buf); err != nil {
				return nil, err
			}
		case SpecConcurrent:
			p, err := r.RunConcurrentPartial(ctx, n)
			if err != nil {
				return nil, err
			}
			if err := p.Encode(&buf); err != nil {
				return nil, err
			}
		default:
			p, err := r.RunOverheadPartial(ctx, n)
			if err != nil {
				return nil, err
			}
			if err := p.Encode(&buf); err != nil {
				return nil, err
			}
		}
	case SpecExperiment:
		if err := GenerateSharded(ctx, n, shard, &buf, opts); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}
