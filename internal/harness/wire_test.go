package harness

import (
	"reflect"
	"testing"
	"time"
)

// TestEventWireRoundTrip: every event type a Session emits survives the
// wire encoding exactly — including duration stamps, which the adaptive
// shard sizing downstream consumes.
func TestEventWireRoundTrip(t *testing.T) {
	events := []Event{
		TrialDone{Done: 3, Total: 40, Elapsed: 1500 * time.Microsecond},
		Progress{Done: 7, Total: 40, Stats: CacheStats{Builds: 4, Evicted: 1, Resident: 3, Peak: 4}},
		ShardMerged{Shard: ShardSpec{Index: 1, Count: 3}, Lo: 13, Hi: 26, Total: 40, Elapsed: 2 * time.Millisecond},
		ShardMerged{Shard: SpanShard(5, 9), Lo: 5, Hi: 9, Total: 40},
		CacheStats{Builds: 12, Evicted: 12, Resident: 0, Peak: 3},
	}
	for _, ev := range events {
		data, err := EncodeEvent(ev)
		if err != nil {
			t.Fatalf("EncodeEvent(%#v): %v", ev, err)
		}
		got, err := DecodeEvent(data)
		if err != nil {
			t.Fatalf("DecodeEvent(%s): %v", data, err)
		}
		if !reflect.DeepEqual(got, ev) {
			t.Errorf("round trip changed the event:\n sent %#v\n got  %#v", ev, got)
		}
	}
}

// TestEventWireRejectsMalformed: frames carrying zero or several event
// variants, or an unknown Event implementation, error by name instead of
// decoding to something misleading.
func TestEventWireRejectsMalformed(t *testing.T) {
	if _, err := DecodeEvent([]byte(`{}`)); err == nil {
		t.Error("empty event frame decoded without error")
	}
	if _, err := DecodeEvent([]byte(`{"trialDone":{},"progress":{}}`)); err == nil {
		t.Error("double-tagged event frame decoded without error")
	}
	if _, err := DecodeEvent([]byte(`not json`)); err == nil {
		t.Error("non-JSON event frame decoded without error")
	}
	type rogue struct{ Event }
	if _, err := EncodeEvent(rogue{}); err == nil {
		t.Error("unknown event type encoded without error")
	}
}
