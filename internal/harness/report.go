package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dpmr/internal/dpmr"
	"dpmr/internal/faultinject"
)

// Options tunes *how* experiment regeneration executes. What to run —
// workloads, runs, site caps, the experiment id — lives in the Spec;
// Options carries only execution policy, so a worker process and the
// coordinator that spawned it can hold different Options while sharing
// one Spec (and therefore one plan fingerprint).
type Options struct {
	// Parallel is the campaign worker count (0 = default 1 = serial).
	// Output is byte-identical at any worker count.
	Parallel int
	// Evict releases each injected module from the build cache after its
	// final trial, bounding peak module residency on large campaigns.
	Evict bool
	// Reference forces every trial onto the tree-walking reference
	// interpreter instead of the compiled module bytecode (CLI
	// -compile=false). Output is byte-identical either way; the switch
	// exists for A/B measurement and debugging.
	Reference bool
	// Precompile launches that many background AOT workers that build
	// and compile upcoming modules ahead of the execution frontier (see
	// Runner.Precompile). 0 disables prefetching; output is
	// byte-identical at any value.
	Precompile int
	// Events, when non-nil, receives the engine's typed event stream
	// (TrialDone, Progress, ShardMerged). Session installs its channel
	// sink here; direct callers may install a callback.
	Events func(Event)
	// Runner, when non-nil, executes the experiments instead of a fresh
	// NewRunner per generator invocation. A persistent worker serving
	// several shard assignments of one plan sets this so the module and
	// golden caches stay warm across assignments.
	Runner *Runner

	// campaign/overhead interpose on experiment execution; they are how
	// GenerateSharded and GenerateMerged reroute the campaigns inside a
	// generator through partial runs and merges without the generator
	// knowing.
	campaignExec func(ctx context.Context, r *Runner, spec Spec) (*CampaignResult, error)
	overheadExec func(ctx context.Context, r *Runner, spec Spec) (*OverheadResult, error)
}

func (o Options) runner() *Runner {
	r := o.Runner
	if r == nil {
		r = NewRunner()
	}
	if o.Parallel != 0 {
		r.Parallel = o.Parallel
	}
	r.EvictModules = o.Evict
	r.Compile = !o.Reference
	r.Precompile = o.Precompile
	r.Events = o.Events
	return r
}

// campaign runs (or reroutes) one campaign of an experiment.
func (o Options) campaign(ctx context.Context, r *Runner, spec Spec) (*CampaignResult, error) {
	if o.campaignExec != nil {
		return o.campaignExec(ctx, r, spec)
	}
	return r.RunCampaign(ctx, spec)
}

// overhead runs (or reroutes) one overhead measurement of an experiment.
func (o Options) overhead(ctx context.Context, r *Runner, spec Spec) (*OverheadResult, error) {
	if o.overheadExec != nil {
		return o.overheadExec(ctx, r, spec)
	}
	return r.RunOverhead(ctx, spec)
}

// campaignSpec derives the generator's campaign sub-Spec from the
// normalized experiment Spec.
func campaignSpec(exp Spec, kind faultinject.Kind, variants []Variant) Spec {
	s := exp.derive(SpecCampaign)
	s.Inject = kind.String()
	s.Variants = VariantSpecs(variants...)
	return s
}

// overheadSpec derives the generator's overhead sub-Spec from the
// normalized experiment Spec.
func overheadSpec(exp Spec, variants []Variant) Spec {
	s := exp.derive(SpecOverhead)
	s.Variants = VariantSpecs(variants...)
	return s
}

// ExperimentIDs lists every regenerable table/figure id in paper order.
func ExperimentIDs() []string {
	return []string{
		"fig3.6", "fig3.7", "fig3.8", "fig3.9", "fig3.10",
		"tab3.3", "fig3.11", "fig3.12", "fig3.13", "fig3.14",
		"fig3.15", "fig3.16", "tab3.4",
		"fig4.3", "fig4.4", "fig4.5", "fig4.6",
		"fig4.7", "fig4.8", "fig4.9", "fig4.10",
		"fig4.11", "fig4.12", "fig4.13", "fig4.14",
		"tab4.5", "tab4.6",
	}
}

// Generate regenerates the table/figure the experiment Spec names
// (spec.Exp), writing its data to w. Cancelling ctx stops the
// experiment's campaigns mid-grid and returns ctx's error.
func Generate(ctx context.Context, spec Spec, w io.Writer, opts Options) error {
	n, err := spec.normalizedAs(SpecExperiment, "Generate")
	if err != nil {
		return err
	}
	gen, ok := generators()[n.Exp]
	if !ok {
		return fmt.Errorf("harness: unknown experiment id %q (known: %s)",
			n.Exp, strings.Join(ExperimentIDs(), ", "))
	}
	return gen(ctx, n, w, opts)
}

// genFunc renders one experiment from its normalized experiment Spec.
type genFunc func(ctx context.Context, spec Spec, w io.Writer, opts Options) error

func generators() map[string]genFunc {
	g := map[string]genFunc{}

	// Chapter 3 (SDS) — diversity transformations.
	g["fig3.6"] = coverageGen("Figure 3.6: Mean heap array resize coverage of diversity transformations (SDS)",
		dpmr.SDS, faultinject.HeapArrayResize, DiversityVariants, false, labelDiversity)
	g["fig3.7"] = coverageGen("Figure 3.7: Mean immediate free coverage of diversity transformations (SDS)",
		dpmr.SDS, faultinject.ImmediateFree, DiversityVariants, false, labelDiversity)
	g["fig3.8"] = coverageGen("Figure 3.8: Mean heap array resize conditional coverage of diversity transformations (SDS)",
		dpmr.SDS, faultinject.HeapArrayResize, DiversityVariants, true, labelDiversity)
	g["fig3.9"] = coverageGen("Figure 3.9: Mean immediate free conditional coverage of diversity transformations (SDS)",
		dpmr.SDS, faultinject.ImmediateFree, DiversityVariants, true, labelDiversity)
	g["fig3.10"] = overheadGen("Figure 3.10: Overhead of diversity transformations (SDS, ×golden)",
		func() []Variant { return DiversityVariants(dpmr.SDS) }, labelDiversity)
	g["tab3.3"] = latencyGen("Table 3.3: Mean time to detection of diversity transformations (SDS, ms)",
		dpmr.SDS, DiversityVariants, labelDiversity)

	// Chapter 3 (SDS) — comparison policies.
	g["fig3.11"] = coverageGen("Figure 3.11: Mean heap array resize coverage of state comparison policies (SDS, rearrange-heap)",
		dpmr.SDS, faultinject.HeapArrayResize, PolicyVariants, false, labelPolicy)
	g["fig3.12"] = coverageGen("Figure 3.12: Mean immediate free coverage of state comparison policies (SDS, rearrange-heap)",
		dpmr.SDS, faultinject.ImmediateFree, PolicyVariants, false, labelPolicy)
	g["fig3.13"] = coverageGen("Figure 3.13: Mean heap array resize conditional coverage of state comparison policies (SDS)",
		dpmr.SDS, faultinject.HeapArrayResize, PolicyVariants, true, labelPolicy)
	g["fig3.14"] = coverageGen("Figure 3.14: Mean immediate free conditional coverage of state comparison policies (SDS)",
		dpmr.SDS, faultinject.ImmediateFree, PolicyVariants, true, labelPolicy)
	g["fig3.15"] = overheadGen("Figure 3.15: Overhead of state comparison policies (SDS, rearrange-heap, ×golden)",
		func() []Variant { return PolicyVariants(dpmr.SDS) }, labelPolicy)
	g["fig3.16"] = fig316
	g["tab3.4"] = latencyGen("Table 3.4: Mean time to detection of state comparison policies (SDS, ms)",
		dpmr.SDS, PolicyVariants, labelPolicy)

	// Chapter 4 (MDS).
	g["fig4.3"] = fig43
	g["fig4.4"] = fig44
	g["fig4.5"] = overheadGen("Figure 4.5: MDS overhead of diversity transformations (×golden)",
		func() []Variant { return DiversityVariants(dpmr.MDS) }, labelDiversity)
	g["fig4.6"] = overheadGen("Figure 4.6: MDS overhead of state comparison policies (rearrange-heap, ×golden)",
		func() []Variant { return PolicyVariants(dpmr.MDS) }, labelPolicy)
	g["fig4.7"] = coverageGen("Figure 4.7: Mean MDS heap array resize coverage of diversity transformations",
		dpmr.MDS, faultinject.HeapArrayResize, DiversityVariants, false, labelDiversity)
	g["fig4.8"] = coverageGen("Figure 4.8: Mean MDS immediate free coverage of diversity transformations",
		dpmr.MDS, faultinject.ImmediateFree, DiversityVariants, false, labelDiversity)
	g["fig4.9"] = coverageGen("Figure 4.9: Mean MDS heap array resize conditional coverage of diversity transformations",
		dpmr.MDS, faultinject.HeapArrayResize, DiversityVariants, true, labelDiversity)
	g["fig4.10"] = coverageGen("Figure 4.10: Mean MDS immediate free conditional coverage of diversity transformations",
		dpmr.MDS, faultinject.ImmediateFree, DiversityVariants, true, labelDiversity)
	g["fig4.11"] = coverageGen("Figure 4.11: Mean MDS heap array resize coverage of state comparison policies",
		dpmr.MDS, faultinject.HeapArrayResize, PolicyVariants, false, labelPolicy)
	g["fig4.12"] = coverageGen("Figure 4.12: Mean MDS immediate free coverage of state comparison policies",
		dpmr.MDS, faultinject.ImmediateFree, PolicyVariants, false, labelPolicy)
	g["fig4.13"] = coverageGen("Figure 4.13: Mean MDS heap array resize conditional coverage of state comparison policies",
		dpmr.MDS, faultinject.HeapArrayResize, PolicyVariants, true, labelPolicy)
	g["fig4.14"] = coverageGen("Figure 4.14: Mean MDS immediate free conditional coverage of state comparison policies",
		dpmr.MDS, faultinject.ImmediateFree, PolicyVariants, true, labelPolicy)
	g["tab4.5"] = latencyGen("Table 4.5: Mean time to detection of diversity transformations under MDS (ms)",
		dpmr.MDS, DiversityVariants, labelDiversity)
	g["tab4.6"] = latencyGen("Table 4.6: Mean time to detection of state comparison policies under MDS (ms)",
		dpmr.MDS, PolicyVariants, labelPolicy)
	return g
}

type labelFunc func(Variant) string

func labelDiversity(v Variant) string { return v.DiversityLabel() }
func labelPolicy(v Variant) string    { return v.PolicyLabel() }

// ---------------------------------------------------------------------------
// Generators

func coverageGen(title string, design dpmr.Design, kind faultinject.Kind,
	variantsOf func(dpmr.Design) []Variant, conditional bool, lbl labelFunc) genFunc {
	return func(ctx context.Context, spec Spec, w io.Writer, opts Options) error {
		r := opts.runner()
		cr, err := opts.campaign(ctx, r, campaignSpec(spec, kind, variantsOf(design)))
		if err != nil {
			return err
		}
		fmt.Fprintln(w, title)
		if conditional {
			renderConditional(w, cr, lbl)
		} else {
			renderCoverage(w, cr, lbl)
		}
		return nil
	}
}

func renderCoverage(w io.Writer, cr *CampaignResult, lbl labelFunc) {
	fmt.Fprintf(w, "%-20s", "variant")
	for _, name := range cr.Workloads {
		fmt.Fprintf(w, " %26s", name+" (CO/Nat/Dpmr=cov)")
	}
	fmt.Fprintln(w)
	for _, v := range cr.Variants {
		fmt.Fprintf(w, "%-20s", lbl(v))
		for _, name := range cr.Workloads {
			c := cr.Cells[v.Label()][name]
			fmt.Fprintf(w, " %10s", "")
			fmt.Fprintf(w, "%.2f/%.2f/%.2f=%.2f", c.CO, c.NatDet, c.DpmrDet, c.Coverage())
		}
		fmt.Fprintln(w)
	}
}

func renderConditional(w io.Writer, cr *CampaignResult, lbl labelFunc) {
	fmt.Fprintf(w, "%-20s %8s %8s %8s %8s %6s\n", "variant", "CO", "NatDet", "DpmrDet", "coverage", "n")
	for _, v := range cr.Variants {
		c := cr.Conditional[v.Label()]
		fmt.Fprintf(w, "%-20s %8.2f %8.2f %8.2f %8.2f %6d\n",
			lbl(v), c.CO, c.NatDet, c.DpmrDet, c.Coverage(), c.N)
	}
}

func overheadGen(title string, variantsOf func() []Variant, lbl labelFunc) genFunc {
	return func(ctx context.Context, spec Spec, w io.Writer, opts Options) error {
		r := opts.runner()
		or, err := opts.overhead(ctx, r, overheadSpec(spec, variantsOf()))
		if err != nil {
			return err
		}
		fmt.Fprintln(w, title)
		renderOverhead(w, or, lbl)
		return nil
	}
}

func renderOverhead(w io.Writer, or *OverheadResult, lbl labelFunc) {
	fmt.Fprintf(w, "%-20s", "variant")
	for _, name := range or.Workloads {
		fmt.Fprintf(w, " %8s", name)
	}
	fmt.Fprintln(w)
	for _, v := range or.Variants {
		fmt.Fprintf(w, "%-20s", lbl(v))
		for _, name := range or.Workloads {
			fmt.Fprintf(w, " %8.2f", or.Ratio[v.Label()][name])
		}
		fmt.Fprintln(w)
	}
}

func latencyGen(title string, design dpmr.Design, variantsOf func(dpmr.Design) []Variant, lbl labelFunc) genFunc {
	return func(ctx context.Context, spec Spec, w io.Writer, opts Options) error {
		r := opts.runner()
		fmt.Fprintln(w, title)
		for _, kind := range []faultinject.Kind{faultinject.HeapArrayResize, faultinject.ImmediateFree} {
			cr, err := opts.campaign(ctx, r, campaignSpec(spec, kind, variantsOf(design)))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "-- %s --\n", kind)
			fmt.Fprintf(w, "%-20s", "variant")
			for _, name := range cr.Workloads {
				fmt.Fprintf(w, " %10s", name)
			}
			fmt.Fprintln(w)
			for _, v := range cr.Variants {
				if !v.DPMR {
					continue // the tables list DPMR variants only
				}
				fmt.Fprintf(w, "%-20s", lbl(v))
				for _, name := range cr.Workloads {
					fmt.Fprintf(w, " %10.3f", cr.Cells[v.Label()][name].MeanT2DMS)
				}
				fmt.Fprintln(w)
			}
		}
		return nil
	}
}

// fig316 is the Figure 3.16 ablation: naive temporal checking vs. the
// periodicity-exploiting gate.
func fig316(ctx context.Context, spec Spec, w io.Writer, opts Options) error {
	r := opts.runner()
	variants := []Variant{
		Stdapp(),
		NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}),
		NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.TemporalHalf),
		NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.PeriodicLoadChecking{Period: 2}),
	}
	or, err := opts.overhead(ctx, r, overheadSpec(spec, variants))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 3.16: Exploiting periodicity to improve temporal load-checking overhead (SDS, ×golden)")
	renderOverhead(w, or, labelPolicy)
	return nil
}

// fig43 renders the side-by-side SDS/MDS diversity overhead comparison.
func fig43(ctx context.Context, spec Spec, w io.Writer, opts Options) error {
	divs := []dpmr.Diversity{
		dpmr.NoDiversity{}, dpmr.ZeroBeforeFree{}, dpmr.RearrangeHeap{}, dpmr.PadMalloc{Pad: 32},
	}
	fmt.Fprintln(w, "Figure 4.3: Side-by-side diversity transformation overheads of SDS and MDS (×golden)")
	return sideBySide(ctx, spec, w, opts, func(design dpmr.Design) []Variant {
		var vs []Variant
		for _, d := range divs {
			vs = append(vs, NewVariant(design, d, dpmr.AllLoads{}))
		}
		return vs
	}, labelDiversity)
}

// fig44 renders the side-by-side SDS/MDS policy overhead comparison
// (static policies plus all-loads; temporal is excluded as in the paper,
// §4.5).
func fig44(ctx context.Context, spec Spec, w io.Writer, opts Options) error {
	pols := []dpmr.Policy{
		dpmr.StaticLoadChecking{Percent: 10},
		dpmr.StaticLoadChecking{Percent: 50},
		dpmr.StaticLoadChecking{Percent: 90},
		dpmr.AllLoads{},
	}
	fmt.Fprintln(w, "Figure 4.4: Side-by-side comparison policy overheads of SDS and MDS (rearrange-heap, ×golden)")
	return sideBySide(ctx, spec, w, opts, func(design dpmr.Design) []Variant {
		var vs []Variant
		for _, p := range pols {
			vs = append(vs, NewVariant(design, dpmr.RearrangeHeap{}, p))
		}
		return vs
	}, labelPolicy)
}

func sideBySide(ctx context.Context, spec Spec, w io.Writer, opts Options,
	variantsOf func(dpmr.Design) []Variant, lbl labelFunc) error {
	r := opts.runner()
	sds, err := opts.overhead(ctx, r, overheadSpec(spec, variantsOf(dpmr.SDS)))
	if err != nil {
		return err
	}
	mds, err := opts.overhead(ctx, r, overheadSpec(spec, variantsOf(dpmr.MDS)))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-26s", "variant")
	for _, name := range sds.Workloads {
		fmt.Fprintf(w, " %8s", name)
	}
	fmt.Fprintln(w)
	for i, v := range sds.Variants {
		fmt.Fprintf(w, "SDS %-22s", lbl(v))
		for _, name := range sds.Workloads {
			fmt.Fprintf(w, " %8.2f", sds.Ratio[v.Label()][name])
		}
		fmt.Fprintln(w)
		mv := mds.Variants[i]
		fmt.Fprintf(w, "MDS %-22s", lbl(mv))
		for _, name := range mds.Workloads {
			fmt.Fprintf(w, " %8.2f", mds.Ratio[mv.Label()][name])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Sharded experiment generation

// ExperimentPartial is the partial-result file one shard of a sharded
// dpmr-exp run emits: one PartialResult per injection campaign and one
// OverheadPartial per overhead measurement the experiment executes, each
// in execution order (latency tables run two campaigns; coverage figures
// run one campaign; overhead figures run one or more measurements).
type ExperimentPartial struct {
	Exp       string             `json:"exp"`
	Shard     ShardSpec          `json:"shard"`
	Campaigns []*PartialResult   `json:"campaigns,omitempty"`
	Overheads []*OverheadPartial `json:"overheads,omitempty"`
}

// DecodeExperimentPartial reads a JSON experiment partial and validates
// its shape. It never panics on malformed input.
func DecodeExperimentPartial(r io.Reader) (*ExperimentPartial, error) {
	var ep ExperimentPartial
	if err := json.NewDecoder(r).Decode(&ep); err != nil {
		return nil, fmt.Errorf("harness: decoding experiment partial: %w", err)
	}
	if ep.Exp == "" {
		return nil, fmt.Errorf("harness: experiment partial: missing experiment id")
	}
	if len(ep.Campaigns) == 0 && len(ep.Overheads) == 0 {
		return nil, fmt.Errorf("harness: experiment partial %s: no campaigns or overhead measurements", ep.Exp)
	}
	for _, p := range ep.Campaigns {
		if p == nil {
			return nil, fmt.Errorf("harness: experiment partial %s: nil campaign", ep.Exp)
		}
		if err := p.check(); err != nil {
			return nil, err
		}
	}
	for _, p := range ep.Overheads {
		if p == nil {
			return nil, fmt.Errorf("harness: experiment partial %s: nil overhead measurement", ep.Exp)
		}
		if err := p.check(); err != nil {
			return nil, err
		}
	}
	return &ep, nil
}

// GenerateSharded runs shard `shard` of the Spec-named experiment's
// injection campaigns and overhead measurements and JSON-encodes the
// resulting ExperimentPartial to out. Every experiment in the suite is
// shardable; merge the shards' outputs with GenerateMerged. A cancelled
// ctx fails the shard (a worker must not emit an incomplete partial as
// if it covered its range).
func GenerateSharded(ctx context.Context, spec Spec, shard ShardSpec, out io.Writer, opts Options) error {
	if shard.Count < 1 {
		return fmt.Errorf("harness: GenerateSharded: shard %s: count must be at least 1", shard)
	}
	if err := shard.Validate(); err != nil {
		return err
	}
	n, err := spec.normalizedAs(SpecExperiment, "GenerateSharded")
	if err != nil {
		return err
	}
	ep := &ExperimentPartial{Exp: n.Exp, Shard: shard}
	opts.campaignExec = func(ctx context.Context, r *Runner, spec Spec) (*CampaignResult, error) {
		r.Shard = shard
		p, plan, err := r.runCampaignPartial(ctx, spec)
		if err != nil {
			return nil, err
		}
		ep.Campaigns = append(ep.Campaigns, p)
		// Rendering goes to io.Discard; a structurally complete stand-in
		// (all cells present, zero-valued) keeps the generator's render
		// path happy without running the other shards' trials.
		return aggregate(plan, make([]TrialOutcome, len(plan.trials))), nil
	}
	opts.overheadExec = func(ctx context.Context, r *Runner, spec Spec) (*OverheadResult, error) {
		r.Shard = shard
		p, plan, err := r.runOverheadPartial(ctx, spec)
		if err != nil {
			return nil, err
		}
		ep.Overheads = append(ep.Overheads, p)
		// Same stand-in trick: zero cycles render as 0/NaN ratios into
		// io.Discard without running the other shards' measurements.
		return aggregateOverhead(plan, make([]uint64, len(plan.trials))), nil
	}
	if err := Generate(ctx, n, io.Discard, opts); err != nil {
		return err
	}
	if len(ep.Campaigns) == 0 && len(ep.Overheads) == 0 {
		return fmt.Errorf("harness: experiment %s runs no campaign or overhead measurement; nothing to shard", n.Exp)
	}
	if err := json.NewEncoder(out).Encode(ep); err != nil {
		return fmt.Errorf("harness: encoding experiment partial: %w", err)
	}
	return nil
}

// GenerateMerged merges the shards of a sharded experiment run and
// renders the report to out, byte-identical to an unsharded Generate of
// the same Spec. Each reader supplies one shard's ExperimentPartial.
// spec.Exp may be "" to take the experiment id from the partials; when
// given, it must match them. One ShardMerged event is emitted per
// partial per merged plan.
func GenerateMerged(ctx context.Context, spec Spec, out io.Writer, partials []io.Reader, opts Options) error {
	if len(partials) == 0 {
		return fmt.Errorf("harness: GenerateMerged: no partial results")
	}
	id := spec.Exp
	eps := make([]*ExperimentPartial, len(partials))
	for i, rd := range partials {
		ep, err := DecodeExperimentPartial(rd)
		if err != nil {
			return err
		}
		if id == "" {
			id = ep.Exp
		}
		if ep.Exp != id {
			return fmt.Errorf("harness: GenerateMerged: partial %d is shard %s of experiment %s, want %s", i, ep.Shard, ep.Exp, id)
		}
		if i > 0 && len(ep.Campaigns) != len(eps[0].Campaigns) {
			return fmt.Errorf("harness: GenerateMerged: partial %d holds %d campaigns, partial 0 holds %d", i, len(ep.Campaigns), len(eps[0].Campaigns))
		}
		if i > 0 && len(ep.Overheads) != len(eps[0].Overheads) {
			return fmt.Errorf("harness: GenerateMerged: partial %d holds %d overhead measurements, partial 0 holds %d", i, len(ep.Overheads), len(eps[0].Overheads))
		}
		eps[i] = ep
	}
	spec.Exp = id
	nCampaigns, nOverheads := len(eps[0].Campaigns), len(eps[0].Overheads)
	ci, oi := 0, 0
	opts.campaignExec = func(_ context.Context, r *Runner, spec Spec) (*CampaignResult, error) {
		if ci >= nCampaigns {
			return nil, fmt.Errorf("harness: experiment %s runs more than the %d campaigns the partials hold", id, nCampaigns)
		}
		parts := make([]*PartialResult, len(eps))
		for j, ep := range eps {
			parts[j] = ep.Campaigns[ci]
		}
		ci++
		return r.MergeCampaign(spec, parts)
	}
	opts.overheadExec = func(_ context.Context, r *Runner, spec Spec) (*OverheadResult, error) {
		if oi >= nOverheads {
			return nil, fmt.Errorf("harness: experiment %s runs more than the %d overhead measurements the partials hold", id, nOverheads)
		}
		parts := make([]*OverheadPartial, len(eps))
		for j, ep := range eps {
			parts[j] = ep.Overheads[oi]
		}
		oi++
		return r.MergeOverhead(spec, parts)
	}
	if err := Generate(ctx, spec, out, opts); err != nil {
		return err
	}
	if ci != nCampaigns {
		return fmt.Errorf("harness: partials hold %d campaigns but experiment %s ran only %d", nCampaigns, id, ci)
	}
	if oi != nOverheads {
		return fmt.Errorf("harness: partials hold %d overhead measurements but experiment %s ran only %d", nOverheads, id, oi)
	}
	return nil
}

// GenerateAll regenerates every experiment in order, using spec (whose
// Exp field is overridden per experiment) for the shared declarative
// parameters.
func GenerateAll(ctx context.Context, spec Spec, w io.Writer, opts Options) error {
	ids := ExperimentIDs()
	sort.SliceStable(ids, func(i, j int) bool { return false }) // keep paper order
	for _, id := range ids {
		s := spec
		s.Exp = id
		if err := Generate(ctx, s, w, opts); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
