package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dpmr/internal/journal"
)

// newTestJournal creates a fresh journal for the Spec in a temp dir and
// returns it with the dir and the Spec fingerprint.
func newTestJournal(t *testing.T, spec Spec) (*journal.Journal, string, string) {
	t.Helper()
	n, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	canon, err := n.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := n.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	j, err := journal.Create(dir, canon, fp)
	if err != nil {
		t.Fatal(err)
	}
	return j, dir, fp
}

// reopenJournal opens the journal for appending and returns it with the
// replayed state.
func reopenJournal(t *testing.T, dir, fp string) (*journal.Journal, *journal.Replay) {
	t.Helper()
	j, rp, err := journal.Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	return j, rp
}

// TestJournaledCampaignMatchesDirect: a fresh journaled run produces the
// identical CampaignResult as a direct RunCampaign, executes exactly the
// plan's trial count, and a second pass over the now-complete journal
// replays everything — zero trials re-executed, same result again.
func TestJournaledCampaignMatchesDirect(t *testing.T) {
	spec := smallCampaign()
	direct, _ := campaignAt(t, 1)

	j, dir, fp := newTestJournal(t, spec)
	r := NewRunner()
	got, executed, err := r.RunCampaignJournaled(context.Background(), spec, j, nil, DefaultResumeSpans, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, got) {
		t.Error("journaled campaign result differs from direct RunCampaign")
	}

	c, err := NewRunner().ResumeCampaign(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if executed != c.Total {
		t.Errorf("fresh journaled run executed %d trials, plan holds %d", executed, c.Total)
	}

	// Resume of a complete journal: full replay, nothing executed.
	j2, rp := reopenJournal(t, dir, fp)
	defer j2.Close()
	again, executed2, err := NewRunner().RunCampaignJournaled(context.Background(), spec, j2, rp, DefaultResumeSpans, nil)
	if err != nil {
		t.Fatal(err)
	}
	if executed2 != 0 {
		t.Errorf("resume of a complete journal re-executed %d trials", executed2)
	}
	if !reflect.DeepEqual(direct, again) {
		t.Error("replayed campaign result differs from direct RunCampaign")
	}
}

// TestJournaledCampaignResumeAfterCancel is the crash harness's
// in-process arm: cancel the journaled run after k completed trials for
// sampled k, then resume from the journal on a fresh Runner. The resume
// must re-execute exactly the missing trials (journaled + resumed ==
// plan total: nothing dropped, nothing double-counted) and the merged
// result must be identical to an uninterrupted run.
func TestJournaledCampaignResumeAfterCancel(t *testing.T) {
	spec := smallCampaign()
	direct, _ := campaignAt(t, 1)
	total := func() int {
		c, err := NewRunner().ResumeCampaign(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		return c.Total
	}()

	for _, k := range []int{1, 3, total - 2} {
		t.Run(fmt.Sprintf("cancel-after-%d", k), func(t *testing.T) {
			j, dir, fp := newTestJournal(t, spec)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			r := NewRunner()
			done := 0
			r.Events = func(ev Event) {
				if _, ok := ev.(TrialDone); ok {
					done++
					if done == k {
						cancel()
					}
				}
			}
			_, executed1, err := r.RunCampaignJournaled(ctx, spec, j, nil, DefaultResumeSpans, nil)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled journaled run err = %v, want context.Canceled", err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if executed1 >= total {
				t.Fatalf("cancelled run claims %d of %d trials executed", executed1, total)
			}

			j2, rp := reopenJournal(t, dir, fp)
			defer j2.Close()
			c, err := NewRunner().ResumeCampaign(spec, rp)
			if err != nil {
				t.Fatal(err)
			}
			if c.Done() != executed1 {
				t.Errorf("journal covers %d trials, cancelled run reported %d executed", c.Done(), executed1)
			}
			got, executed2, err := NewRunner().RunCampaignJournaled(context.Background(), spec, j2, rp, DefaultResumeSpans, nil)
			if err != nil {
				t.Fatal(err)
			}
			if executed1+executed2 != total {
				t.Errorf("journaled %d + resumed %d trials != plan total %d", executed1, executed2, total)
			}
			if !reflect.DeepEqual(direct, got) {
				t.Error("resumed campaign result differs from the uninterrupted run")
			}
		})
	}
}

// TestResumeCorruptionMatrix damages a completed journal at and around
// every record boundary — truncations and byte flips — and asserts the
// all-or-nothing recovery contract: either Open succeeds and the resumed
// campaign is identical to the uninterrupted run (re-executing only what
// the surviving records leave uncovered), or Open refuses with one of
// the journal's named errors. No third outcome: a damaged journal never
// silently drops or double-counts a trial.
func TestResumeCorruptionMatrix(t *testing.T) {
	spec := smallCampaign()
	direct, _ := campaignAt(t, 1)

	j, dir, fp := newTestJournal(t, spec)
	if _, _, err := NewRunner().RunCampaignJournaled(context.Background(), spec, j, nil, DefaultResumeSpans, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(filepath.Join(dir, journal.FileName))
	if err != nil {
		t.Fatal(err)
	}

	// Damage points: every record boundary, and a probe shortly after
	// each (mid-record).
	var points []int
	for i, b := range pristine {
		if b == '\n' {
			points = append(points, i+1)
			if i+8 < len(pristine) {
				points = append(points, i+8)
			}
		}
	}
	points = append(points, 0, 1)

	check := func(t *testing.T, damaged []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journal.FileName), damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		j, rp, err := journal.Open(dir, fp)
		if err != nil {
			if !errors.Is(err, journal.ErrCorrupt) && !errors.Is(err, journal.ErrSpecMismatch) &&
				!errors.Is(err, journal.ErrNoJournal) {
				t.Fatalf("damaged journal rejected with unnamed error: %v", err)
			}
			return
		}
		defer j.Close()
		got, _, err := NewRunner().RunCampaignJournaled(context.Background(), spec, j, rp, DefaultResumeSpans, nil)
		if err != nil {
			if !errors.Is(err, journal.ErrCorrupt) {
				t.Fatalf("resume from damaged journal failed with unnamed error: %v", err)
			}
			return
		}
		if !reflect.DeepEqual(direct, got) {
			t.Error("resume from damaged journal silently produced a different result")
		}
	}

	for _, p := range points {
		p := p
		t.Run(fmt.Sprintf("truncate-%d", p), func(t *testing.T) {
			check(t, pristine[:p])
		})
		if p < len(pristine) {
			t.Run(fmt.Sprintf("flip-%d", p), func(t *testing.T) {
				damaged := append([]byte(nil), pristine...)
				damaged[p] ^= 0x20
				check(t, damaged)
			})
		}
	}
}

// TestResumeRejectsForgedEnvelope: a record whose envelope range was
// edited — with the checksum recomputed, so the journal layer cannot
// object — still fails resume with ErrCorrupt, because the envelope is
// cross-checked against the decoded payload's own range.
func TestResumeRejectsForgedEnvelope(t *testing.T) {
	spec := smallCampaign()
	j, dir, fp := newTestJournal(t, spec)
	if _, _, err := NewRunner().RunCampaignJournaled(context.Background(), spec, j, nil, 4, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, journal.FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("journal holds %d records, want header + shards", len(lines))
	}
	// Shift the first shard record's range up by one trial and move the
	// later records aside so the forged range is free — the envelope
	// stays internally consistent and correctly checksummed, only the
	// payload disagrees.
	var rec journal.Record
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	forged := rec
	forged.Lo, forged.Hi = rec.Hi, rec.Hi+(rec.Hi-rec.Lo)
	out, err := json.Marshal(forged)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(lines[0]+"\n"+string(out)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rp, err := journal.Open(dir, fp)
	if err != nil {
		t.Fatalf("forged envelope must pass the journal layer, got %v", err)
	}
	defer j2.Close()
	_, _, err = NewRunner().RunCampaignJournaled(context.Background(), spec, j2, rp, 4, nil)
	if !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("resume over forged envelope err = %v, want ErrCorrupt", err)
	}
}

// TestAdaptiveResumeDeterministicAcrossWorkers: the re-cut plan is a
// pure function of (journal, Spec) — the same interrupted journal
// resumed at 1, 2, and 4 workers cuts identical spans and merges
// byte-identical results.
func TestAdaptiveResumeDeterministicAcrossWorkers(t *testing.T) {
	spec := smallCampaign()
	direct, _ := campaignAt(t, 1)

	// Interrupt a journaled run partway to get a journal with real
	// coverage, timing, and gaps.
	j, dir, fp := newTestJournal(t, spec)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner()
	done := 0
	r.Events = func(ev Event) {
		if _, ok := ev.(TrialDone); ok {
			if done++; done == 4 {
				cancel()
			}
		}
	}
	if _, _, err := r.RunCampaignJournaled(ctx, spec, j, nil, DefaultResumeSpans, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupting run: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	snapshot, err := os.ReadFile(filepath.Join(dir, journal.FileName))
	if err != nil {
		t.Fatal(err)
	}

	var spans [][]ShardSpec
	var results []*CampaignResult
	for _, workers := range []int{1, 2, 4} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journal.FileName), snapshot, 0o644); err != nil {
			t.Fatal(err)
		}
		j, rp := reopenJournal(t, dir, fp)
		r := NewRunner()
		r.Parallel = workers
		c, err := r.ResumeCampaign(spec, rp)
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, c.Spans(DefaultResumeSpans))
		got, _, err := r.RunCampaignJournaled(context.Background(), spec, j, rp, DefaultResumeSpans, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		results = append(results, got)
	}
	for i := 1; i < len(spans); i++ {
		if !reflect.DeepEqual(spans[0], spans[i]) {
			t.Errorf("re-cut plan differs across worker counts:\n1 worker: %v\n%d workers: %v",
				spans[0], []int{1, 2, 4}[i], spans[i])
		}
	}
	for i, got := range results {
		if !reflect.DeepEqual(direct, got) {
			t.Errorf("resumed result at %d workers differs from the uninterrupted run", []int{1, 2, 4}[i])
		}
	}
}

// TestSpansAdaptiveSizing: unit contract of the adaptive cut. Spans must
// exactly tile the gaps in order, honor the requested count, degrade to
// a uniform cut when the journal holds no timing, and give a region the
// journal measured as slow more (hence smaller) spans than an equally
// sized cheap region.
func TestSpansAdaptiveSizing(t *testing.T) {
	tile := func(t *testing.T, spans, gaps []ShardSpec) {
		t.Helper()
		gi, next := 0, -1
		for _, s := range spans {
			if s.Hi <= s.Lo {
				t.Fatalf("empty span %v", s)
			}
			if next == -1 || next == gaps[gi].Hi {
				if next == gaps[gi].Hi {
					gi++
				}
				if gi >= len(gaps) || s.Lo != gaps[gi].Lo {
					t.Fatalf("span %v does not start gap %d of %v", s, gi, gaps)
				}
			} else if s.Lo != next {
				t.Fatalf("span %v leaves hole after trial %d", s, next)
			}
			next = s.Hi
		}
		if next != gaps[len(gaps)-1].Hi {
			t.Fatalf("spans end at %d, last gap ends at %d", next, gaps[len(gaps)-1].Hi)
		}
	}

	t.Run("uniform-when-untimed", func(t *testing.T) {
		c := &CampaignResume{Total: 40, Gaps: []ShardSpec{SpanShard(0, 40)}}
		spans := c.Spans(4)
		tile(t, spans, c.Gaps)
		want := []ShardSpec{SpanShard(0, 10), SpanShard(10, 20), SpanShard(20, 30), SpanShard(30, 40)}
		if !reflect.DeepEqual(spans, want) {
			t.Errorf("untimed cut = %v, want uniform %v", spans, want)
		}
	})

	t.Run("skewed-cost", func(t *testing.T) {
		// Two equal-size gaps; the journal measured the region adjoining
		// the second gap as 10x slower, so it must receive more spans.
		parts := []*PartialResult{
			{Lo: 20, Hi: 30, ElapsedMS: 10},  // 1 ms/trial next to gap [0,20)
			{Lo: 50, Hi: 60, ElapsedMS: 100}, // 10 ms/trial next to gap [30,50)
		}
		c := &CampaignResume{Total: 60, Parts: parts,
			Gaps: []ShardSpec{SpanShard(0, 20), SpanShard(30, 50)}}
		spans := c.Spans(8)
		tile(t, spans, c.Gaps)
		if len(spans) != 8 {
			t.Fatalf("cut %d spans, want 8", len(spans))
		}
		cheap, costly := 0, 0
		for _, s := range spans {
			if s.Hi <= 20 {
				cheap++
			} else {
				costly++
			}
		}
		if costly <= cheap {
			t.Errorf("slow region got %d spans, cheap region %d — adaptive sizing inverted", costly, cheap)
		}
	})

	t.Run("at-least-one-span-per-gap", func(t *testing.T) {
		c := &CampaignResume{Total: 10,
			Gaps: []ShardSpec{SpanShard(0, 1), SpanShard(3, 4), SpanShard(6, 10)}}
		spans := c.Spans(2) // fewer than gaps: every gap still covered
		tile(t, spans, c.Gaps)
	})

	t.Run("spans-capped-by-trials", func(t *testing.T) {
		c := &CampaignResume{Total: 3, Gaps: []ShardSpec{SpanShard(0, 3)}}
		spans := c.Spans(8)
		tile(t, spans, c.Gaps)
		if len(spans) > 3 {
			t.Errorf("cut %d spans from 3 trials", len(spans))
		}
	})
}

// TestGenerateJournaledMatchesGenerate: an experiment regenerated
// through the journal writes byte-identical output, the progressive
// snapshots march monotonically to done==total, the final snapshot
// renders the same bytes as the real report, and resuming the completed
// journal replays everything. fig3.7 exercises the campaign path,
// fig3.16 the overhead path.
func TestGenerateJournaledMatchesGenerate(t *testing.T) {
	for _, id := range []string{"fig3.7", "fig3.16"} {
		t.Run(id, func(t *testing.T) {
			ctx := context.Background()
			spec := quickExp(id)
			var golden bytes.Buffer
			if err := Generate(ctx, spec, &golden, Options{}); err != nil {
				t.Fatal(err)
			}

			j, dir, fp := newTestJournal(t, spec)
			var out, lastSnap bytes.Buffer
			prevDone, snaps := -1, 0
			executed, err := GenerateJournaled(ctx, spec, j, nil, 4, &out, Options{},
				func(render func(io.Writer) error, done, total int) {
					snaps++
					if done < prevDone {
						t.Errorf("progressive snapshot went backwards: %d after %d", done, prevDone)
					}
					prevDone = done
					lastSnap.Reset()
					if err := render(&lastSnap); err != nil {
						t.Fatalf("progressive render: %v", err)
					}
				})
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if executed == 0 || snaps == 0 {
				t.Fatalf("journaled generate executed %d trials over %d snapshots", executed, snaps)
			}
			if !bytes.Equal(golden.Bytes(), out.Bytes()) {
				t.Errorf("journaled %s differs from direct Generate:\n--- direct ---\n%s\n--- journaled ---\n%s",
					id, golden.String(), out.String())
			}
			if !bytes.Equal(golden.Bytes(), lastSnap.Bytes()) {
				t.Errorf("final progressive snapshot differs from the real report:\n--- report ---\n%s\n--- snapshot ---\n%s",
					golden.String(), lastSnap.String())
			}

			// Resume of the finished journal: pure replay.
			j2, rp := reopenJournal(t, dir, fp)
			defer j2.Close()
			var again bytes.Buffer
			executed2, err := GenerateJournaled(ctx, spec, j2, rp, 4, &again, Options{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if executed2 != 0 {
				t.Errorf("resume of a complete experiment journal re-executed %d trials", executed2)
			}
			if !bytes.Equal(golden.Bytes(), again.Bytes()) {
				t.Errorf("resumed %s report differs from direct Generate", id)
			}
		})
	}
}

// TestGenerateJournaledResumeAfterCancel: interrupt an experiment
// mid-generation, resume from its journal, and the final report is
// byte-identical with the replayed trials skipped.
func TestGenerateJournaledResumeAfterCancel(t *testing.T) {
	ctx := context.Background()
	spec := quickExp("fig3.7")
	var golden bytes.Buffer
	if err := Generate(ctx, spec, &golden, Options{}); err != nil {
		t.Fatal(err)
	}

	j, dir, fp := newTestJournal(t, spec)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fired := 0
	var discard bytes.Buffer
	executed1, err := GenerateJournaled(cctx, spec, j, nil, 6, &discard, Options{},
		func(render func(io.Writer) error, done, total int) {
			if fired++; fired == 3 {
				cancel()
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled journaled generate err = %v, want context.Canceled", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rp := reopenJournal(t, dir, fp)
	defer j2.Close()
	var out bytes.Buffer
	executed2, err := GenerateJournaled(ctx, spec, j2, rp, 6, &out, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if executed1 == 0 || executed2 == 0 {
		t.Fatalf("cancel/resume split executed %d then %d trials — the interruption landed outside the run", executed1, executed2)
	}
	if !bytes.Equal(golden.Bytes(), out.Bytes()) {
		t.Errorf("resumed experiment report differs from direct Generate:\n--- direct ---\n%s\n--- resumed ---\n%s",
			golden.String(), out.String())
	}
}
