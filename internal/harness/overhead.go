package harness

// Overhead experiments (no injections), with the same plan/partial/merge
// treatment as injection campaigns: the canonical flat measurement plan —
// per workload, its golden (stdapp) run followed by one run per DPMR
// variant — is a pure function of the normalized overhead Spec, so any
// process can recompute it and claim a contiguous slice. Shard i of N
// measures trials [i·T/N, (i+1)·T/N) and emits an OverheadPartial (cycle
// counts plus the plan fingerprint); MergeOverhead validates the tiling
// and aggregates in canonical order, so the merged OverheadResult — and
// any report rendered from it — is byte-identical to an unsharded run.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/workloads"
)

// OverheadResult maps variant label → workload → overhead (×golden,
// Equation 3.1).
type OverheadResult struct {
	Workloads []string
	Variants  []Variant
	Ratio     map[string]map[string]float64
	// Cycles carries the raw per-variant cycles for benches.
	Cycles map[string]map[string]uint64
}

// overheadTrial is one measurement of an overhead plan: the golden
// (stdapp) run of a workload, or one DPMR variant run of it.
type overheadTrial struct {
	w workloads.Workload
	v Variant // v.DPMR == false ⇒ the workload's golden run
}

// overheadPlan is the canonical flat measurement layout of an overhead
// experiment. Like campaignPlan it is a pure function of its normalized
// Spec, so contiguous index ranges are a host-independent sharding unit
// and the fingerprint lets MergeOverhead refuse partials cut from a
// different plan.
type overheadPlan struct {
	workloads   []string
	variants    []Variant
	trials      []overheadTrial
	goldenIdx   []int // per workload: index of its golden trial
	fingerprint string
}

// planOverhead lays the measurement grid out flat in canonical order
// from the normalized overhead Spec: for each workload, its golden run,
// then one trial per DPMR variant in variant order (non-DPMR variants
// reuse the golden measurement).
func planOverhead(spec Spec) (*overheadPlan, error) {
	ws, err := spec.resolveWorkloads()
	if err != nil {
		return nil, err
	}
	variants, err := spec.resolveVariants()
	if err != nil {
		return nil, err
	}
	canon, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	p := &overheadPlan{variants: variants}
	h := sha256.New()
	fmt.Fprintf(h, "dpmr overhead plan v2\nspec %s\n", canon)
	for _, w := range ws {
		p.workloads = append(p.workloads, w.Name)
		p.goldenIdx = append(p.goldenIdx, len(p.trials))
		p.trials = append(p.trials, overheadTrial{w: w, v: Stdapp()})
		for _, v := range variants {
			if v.DPMR {
				p.trials = append(p.trials, overheadTrial{w: w, v: v})
			}
		}
	}
	fmt.Fprintf(h, "trials %d\n", len(p.trials))
	p.fingerprint = hex.EncodeToString(h.Sum(nil))
	return p, nil
}

// execOverheadTrials measures plan.trials[lo:hi] on the worker pool and
// returns their cycle counts, failing with the canonical naming of the
// first errored trial. Golden measurements go through the Runner's
// memoized golden cache, so a workload's golden executes once no matter
// how many ratios (or shards on this Runner) need it. When ctx is
// cancelled mid-range, the completed prefix of measurements is returned
// together with ctx.Err() (see execTrials).
func (r *Runner) execOverheadTrials(ctx context.Context, plan *overheadPlan, lo, hi int) ([]uint64, error) {
	cycles := make([]uint64, hi-lo)
	errs := make([]error, hi-lo)
	pool := r.spaces()
	done := r.fanOut(ctx, hi-lo, func(i int) {
		t := plan.trials[lo+i]
		if !t.v.DPMR {
			g, err := r.Golden(t.w)
			if err != nil {
				errs[i] = err
				return
			}
			cycles[i] = g.Cycles
			return
		}
		m, prog, err := r.module(t.w, t.v, nil)
		if err != nil {
			errs[i] = err
			return
		}
		res := interp.Run(m, interp.Config{
			Externs:   extlib.Wrapped(t.v.Design),
			Mem:       r.MemConfig,
			Seed:      1,
			Prog:      prog,
			SpacePool: pool,
		})
		if res.Kind != interp.ExitNormal {
			errs[i] = fmt.Errorf("%v (%s)", res.Kind, res.Reason)
			return
		}
		cycles[i] = res.Cycles
	})
	for i := 0; i < done; i++ {
		if err := errs[i]; err != nil {
			t := plan.trials[lo+i]
			return nil, fmt.Errorf("overhead trial %d: %s/%s: %w", lo+i, t.w.Name, t.v.Label(), err)
		}
	}
	if done < hi-lo {
		return cycles[:done], context.Cause(ctx)
	}
	return cycles, nil
}

// aggregateOverhead folds the full plan's cycle measurements into an
// OverheadResult in canonical order — identical iteration (and float
// division) whether the cycles came from one process or merged shards.
func aggregateOverhead(plan *overheadPlan, cycles []uint64) *OverheadResult {
	or := &OverheadResult{
		Workloads: plan.workloads,
		Variants:  plan.variants,
		Ratio:     make(map[string]map[string]float64),
		Cycles:    make(map[string]map[string]uint64),
	}
	for _, v := range plan.variants {
		or.Ratio[v.Label()] = make(map[string]float64)
		or.Cycles[v.Label()] = make(map[string]uint64)
	}
	for wi, wname := range plan.workloads {
		golden := cycles[plan.goldenIdx[wi]]
		ti := plan.goldenIdx[wi] + 1
		for _, v := range plan.variants {
			if !v.DPMR {
				or.Ratio[v.Label()][wname] = 1.0
				or.Cycles[v.Label()][wname] = golden
				continue
			}
			or.Ratio[v.Label()][wname] = float64(cycles[ti]) / float64(golden)
			or.Cycles[v.Label()][wname] = cycles[ti]
			ti++
		}
	}
	return or
}

// RunOverhead measures execution-time overhead for each variant of the
// overhead Spec. Like RunCampaign, the measurement grid executes on the
// worker pool and results are recorded in canonical grid order;
// cancelling ctx stops dispatch, drains in-flight measurements, and
// returns ctx's error.
//
// RunOverhead runs the whole plan: a Runner configured with a proper
// shard (Count > 1) is refused rather than silently truncated — use
// RunOverheadPartial and MergeOverhead for sharded execution.
func (r *Runner) RunOverhead(ctx context.Context, spec Spec) (*OverheadResult, error) {
	spec, err := spec.normalizedAs(SpecOverhead, "RunOverhead")
	if err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	if !r.Shard.IsZero() && r.Shard != (ShardSpec{Index: 0, Count: 1}) {
		return nil, fmt.Errorf("harness: RunOverhead with Shard %s: a shard covers only part of the plan; use RunOverheadPartial and MergeOverhead", r.Shard)
	}
	r.applySpec(spec)
	plan, err := planOverhead(spec)
	if err != nil {
		return nil, err
	}
	cycles, err := r.execOverheadTrials(ctx, plan, 0, len(plan.trials))
	if err != nil {
		return nil, err
	}
	return aggregateOverhead(plan, cycles), nil
}

// OverheadPartial is one shard's output of a sharded overhead
// experiment: the cycle measurements of the contiguous trial range
// [Lo, Hi) of an overhead plan identified by Fingerprint. It serializes
// exactly like PartialResult and merges with MergeOverhead.
type OverheadPartial struct {
	Fingerprint string    `json:"fingerprint"`
	Shard       ShardSpec `json:"shard"`
	Lo          int       `json:"lo"`
	Hi          int       `json:"hi"`
	Total       int       `json:"total"`
	// Cycles holds one entry per trial, Cycles[k] measuring canonical
	// trial Lo+k.
	Cycles []uint64 `json:"cycles"`
	// ElapsedMS is the shard's wall-clock execution time in milliseconds
	// (cost metadata only; merging ignores it).
	ElapsedMS int64 `json:"elapsedMS,omitempty"`
}

// check validates the partial's internal shape (independent of any
// plan), so malformed input surfaces as an error, never a panic.
func (p *OverheadPartial) check() error {
	if p.Lo < 0 || p.Hi < p.Lo || p.Total < p.Hi {
		return fmt.Errorf("harness: overhead partial: invalid trial range [%d, %d) of %d", p.Lo, p.Hi, p.Total)
	}
	if len(p.Cycles) != p.Hi-p.Lo {
		return fmt.Errorf("harness: overhead partial: %d measurements for trial range [%d, %d)", len(p.Cycles), p.Lo, p.Hi)
	}
	if p.Fingerprint == "" {
		return fmt.Errorf("harness: overhead partial: missing plan fingerprint")
	}
	return nil
}

// Encode writes the partial result as JSON.
func (p *OverheadPartial) Encode(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("harness: encoding overhead partial: %w", err)
	}
	return nil
}

// DecodeOverheadPartial reads a JSON overhead partial and validates its
// shape. It never panics on malformed input.
func DecodeOverheadPartial(r io.Reader) (*OverheadPartial, error) {
	var p OverheadPartial
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("harness: decoding overhead partial: %w", err)
	}
	if err := p.check(); err != nil {
		return nil, err
	}
	return &p, nil
}

// RunOverheadPartial measures only the Runner's shard of the overhead
// plan and returns the indexed partial result. A zero Shard runs the
// whole plan as shard 0/1. Combine the shards with MergeOverhead.
//
// Cancelling ctx drains in-flight measurements and returns the
// completed-prefix partial (Hi trimmed to the last finished trial)
// together with ctx's error — both non-nil.
func (r *Runner) RunOverheadPartial(ctx context.Context, spec Spec) (*OverheadPartial, error) {
	p, _, err := r.runOverheadPartial(ctx, spec)
	return p, err
}

// runOverheadPartial also exposes the plan, for callers (GenerateSharded,
// Session) that need a structurally complete stand-in result or the full
// aggregation.
func (r *Runner) runOverheadPartial(ctx context.Context, spec Spec) (*OverheadPartial, *overheadPlan, error) {
	spec, err := spec.normalizedAs(SpecOverhead, "RunOverheadPartial")
	if err != nil {
		return nil, nil, err
	}
	if err := r.validate(); err != nil {
		return nil, nil, err
	}
	shard := r.Shard
	if shard.IsZero() {
		shard = ShardSpec{Index: 0, Count: 1}
	}
	r.applySpec(spec)
	plan, err := planOverhead(spec)
	if err != nil {
		return nil, nil, err
	}
	lo, hi := shard.shardRange(len(plan.trials))
	start := time.Now()
	cycles, err := r.execOverheadTrials(ctx, plan, lo, hi)
	if err != nil && !cancelled(ctx, err) {
		return nil, nil, err
	}
	return &OverheadPartial{
		Fingerprint: plan.fingerprint,
		Shard:       shard,
		Lo:          lo,
		Hi:          lo + len(cycles),
		Total:       len(plan.trials),
		Cycles:      cycles,
		ElapsedMS:   time.Since(start).Milliseconds(),
	}, plan, err
}

// MergeOverhead reassembles a full OverheadResult from the partial
// results of a sharded overhead run. The Spec must reproduce the plan
// the shards were cut from; the plan fingerprint enforces this. Partials
// may arrive in any order, but their ranges must tile [0, total) exactly
// — duplicated and missing shards are rejected with the offending trial
// range named. The merged result is byte-identical to an unsharded
// RunOverhead of the same Spec. One ShardMerged event is emitted per
// partial, in canonical range order.
func (r *Runner) MergeOverhead(spec Spec, parts []*OverheadPartial) (*OverheadResult, error) {
	spec, err := spec.normalizedAs(SpecOverhead, "MergeOverhead")
	if err != nil {
		return nil, err
	}
	plan, err := planOverhead(spec)
	if err != nil {
		return nil, err
	}
	spans := make([]planSpan, len(parts))
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("harness: MergeOverhead: nil partial result")
		}
		if err := p.check(); err != nil {
			return nil, err
		}
		spans[i] = planSpan{shard: p.Shard, lo: p.Lo, hi: p.Hi, total: p.Total, fingerprint: p.Fingerprint}
	}
	order, err := tileSpans("MergeOverhead", plan.fingerprint, len(plan.trials), spans)
	if err != nil {
		return nil, err
	}
	cycles := make([]uint64, len(plan.trials))
	for _, i := range order {
		copy(cycles[parts[i].Lo:parts[i].Hi], parts[i].Cycles)
		r.notify(ShardMerged{Shard: parts[i].Shard, Lo: parts[i].Lo, Hi: parts[i].Hi, Total: parts[i].Total,
			Elapsed: time.Duration(parts[i].ElapsedMS) * time.Millisecond})
	}
	return aggregateOverhead(plan, cycles), nil
}
