package harness

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"dpmr/internal/faultinject"
	"dpmr/internal/workloads"
)

// fuzzMergeState shares one Runner, campaign Spec, and a genuine
// partial result across fuzz iterations: the Runner memoizes the base
// module build, keeping per-exec plan recomputation cheap, and the real
// partial seeds the corpus with bytes that pass every validation layer.
var fuzzMergeState struct {
	once sync.Once
	r    *Runner
	spec Spec
	seed []byte
	err  error
}

func fuzzMergeSetup() (*Runner, Spec, []byte, error) {
	s := &fuzzMergeState
	s.once.Do(func() {
		s.r = NewRunner()
		s.spec = CampaignSpec(faultinject.ImmediateFree, workloads.All()[:1], []Variant{Stdapp()})
		s.spec.Runs = 1
		s.spec.MaxSites = 2
		p, err := s.r.RunCampaignPartial(context.Background(), s.spec)
		if err != nil {
			s.err = err
			return
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			s.err = err
			return
		}
		s.seed = buf.Bytes()
	})
	return s.r, s.spec, s.seed, s.err
}

// FuzzMergeCampaign fuzzes the partial-result decoder and the merge
// validation stack: arbitrary bytes must either decode into a partial
// that MergeCampaign accepts or be rejected with an error — never a
// panic, and never an allocation sized by attacker-controlled fields
// (the merge buffer is sized by the locally recomputed plan, not the
// file's Total).
func FuzzMergeCampaign(f *testing.F) {
	_, _, seed, err := fuzzMergeSetup()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"fingerprint":"f","shard":{"index":0,"count":1},"lo":0,"hi":1,"total":1,"outcomes":[{"sf":true}]}`))
	f.Add([]byte(`{"fingerprint":"f","lo":0,"hi":0,"total":0,"outcomes":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"lo":-5,"hi":2,"total":99999999999,"outcomes":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePartial(bytes.NewReader(data))
		if err != nil {
			return
		}
		r, spec, _, err := fuzzMergeSetup()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.MergeCampaign(spec, []*PartialResult{p}); err == nil {
			// A single accepted partial must have covered the whole plan.
			if p.Lo != 0 || p.Hi != p.Total {
				t.Fatalf("merge accepted a partial covering [%d, %d) of %d", p.Lo, p.Hi, p.Total)
			}
		}
	})
}

// TestFuzzMergeSeedRoundTrips pins the seed partial's behavior outside
// fuzzing mode: a genuine encoded partial decodes and merges cleanly.
func TestFuzzMergeSeedRoundTrips(t *testing.T) {
	r, spec, seed, err := fuzzMergeSetup()
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodePartial(bytes.NewReader(seed))
	if err != nil {
		t.Fatal(err)
	}
	cr, err := r.MergeCampaign(spec, []*PartialResult{p})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := r.RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	renderCoverage(&a, cr, labelDiversity)
	renderCoverage(&b, direct, labelDiversity)
	if a.String() != b.String() {
		t.Errorf("merged single-shard report differs from direct run:\n%s\nvs\n%s", a.String(), b.String())
	}
}
