package harness

// Wire form of the Session event stream. A remote campaign service
// (internal/coord/net) streams the same typed events a local Session
// emits — TrialDone, Progress, ShardMerged, CacheStats — back to its
// client, so a -remote run renders progress exactly like a local one.
// Events cross the network as a tagged JSON union: exactly one field of
// wireEvent is set, named after the event type. Durations travel as
// int64 nanoseconds (encoding/json's time.Duration form), so elapsed
// stamps round-trip exactly.

import (
	"encoding/json"
	"fmt"
)

// wireEvent is the tagged union an Event marshals to: exactly one
// pointer is non-nil.
type wireEvent struct {
	TrialDone   *TrialDone   `json:"trialDone,omitempty"`
	Progress    *Progress    `json:"progress,omitempty"`
	ShardMerged *ShardMerged `json:"shardMerged,omitempty"`
	CacheStats  *CacheStats  `json:"cacheStats,omitempty"`
}

// EncodeEvent marshals a Session event for the wire. Every event type a
// Session emits is encodable; an unknown Event implementation (there are
// none outside this package) is an error, not a silent drop.
func EncodeEvent(ev Event) ([]byte, error) {
	var w wireEvent
	switch e := ev.(type) {
	case TrialDone:
		w.TrialDone = &e
	case Progress:
		w.Progress = &e
	case ShardMerged:
		w.ShardMerged = &e
	case CacheStats:
		w.CacheStats = &e
	default:
		return nil, fmt.Errorf("harness: encoding event: unknown type %T", ev)
	}
	return json.Marshal(w)
}

// DecodeEvent unmarshals one wire event back to its typed form. A frame
// carrying no event — or more than one — is malformed: the sender is
// speaking a different schema, and naming that beats misrendering it.
func DecodeEvent(data []byte) (Event, error) {
	var w wireEvent
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("harness: decoding event: %w", err)
	}
	var ev Event
	n := 0
	if w.TrialDone != nil {
		ev, n = *w.TrialDone, n+1
	}
	if w.Progress != nil {
		ev, n = *w.Progress, n+1
	}
	if w.ShardMerged != nil {
		ev, n = *w.ShardMerged, n+1
	}
	if w.CacheStats != nil {
		ev, n = *w.CacheStats, n+1
	}
	if n != 1 {
		return nil, fmt.Errorf("harness: decoding event: %d event variants set, want exactly 1", n)
	}
	return ev, nil
}
