package harness

// Concurrent campaigns: multi-VM workloads under the deterministic
// interleaving scheduler (internal/sched), with the offline consistency
// checker (internal/consist) as an extra detection axis. The canonical
// flat trial plan — per concurrent workload, every variant, Runs runs,
// run rn exploring schedule SchedSeed+rn — is a pure function of the
// normalized concurrent Spec, exactly like campaign and overhead plans,
// so the whole shard/merge/journal/coordinator machinery applies
// unchanged: shards emit ordinary PartialResults and MergeConcurrent
// reassembles a result byte-identical to an unsharded run.
//
// Concurrent trials always execute on the tree-walking reference
// interpreter: the scheduler's yield hook routes every VM through the
// walker loop, which keeps the walker the oracle for interleaved
// execution and makes compiled-engine divergence structurally unable to
// leak into concurrent results — so concurrent modules are cached
// without a compiled program.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"time"

	"dpmr/internal/consist"
	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/failpt"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/journal"
	"dpmr/internal/sched"
	"dpmr/internal/workloads"
)

// concurrentTrial is one scheduled group run of a concurrent plan.
type concurrentTrial struct {
	w  workloads.ConcurrentWorkload
	v  Variant
	rn int // run number; the trial explores schedule SchedSeed+rn
}

// concurrentPlan is the canonical flat trial layout of a concurrent
// campaign. Like campaignPlan it is a pure function of its normalized
// Spec, so contiguous index ranges are a host-independent sharding unit
// and the fingerprint lets MergeConcurrent refuse partials cut from a
// different plan.
type concurrentPlan struct {
	workloads   []string
	variants    []Variant
	threads     int
	schedSeed   int64
	runs        int
	trials      []concurrentTrial
	fingerprint string
}

// planConcurrent lays the (workload, variant, run) grid out flat in
// canonical order from the normalized concurrent Spec. Unlike campaign
// plans, stdapp rows get their own trials: with no injection the
// interesting axis is the schedule, and every variant — stdapp included
// — runs each of the Runs schedules.
func planConcurrent(spec Spec) (*concurrentPlan, error) {
	variants, err := spec.resolveVariants()
	if err != nil {
		return nil, err
	}
	canon, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	p := &concurrentPlan{
		variants:  variants,
		threads:   spec.Threads,
		schedSeed: spec.SchedSeed,
		runs:      spec.Runs,
	}
	h := sha256.New()
	fmt.Fprintf(h, "dpmr concurrent plan v1\nspec %s\n", canon)
	for _, name := range spec.Workloads {
		w, err := workloads.ConcurrentByName(name)
		if err != nil {
			return nil, err
		}
		p.workloads = append(p.workloads, w.Name)
		fmt.Fprintf(h, "workload %s\n", w.Name)
		for _, v := range variants {
			for rn := 0; rn < spec.Runs; rn++ {
				p.trials = append(p.trials, concurrentTrial{w: w, v: v, rn: rn})
			}
		}
	}
	fmt.Fprintf(h, "trials %d\n", len(p.trials))
	p.fingerprint = hex.EncodeToString(h.Sum(nil))
	return p, nil
}

// concurrentModule returns the cached executable module of (workload,
// variant) built for the given thread count. The thread count is folded
// into the cache key because Build(threads) bakes the worker count into
// the module. No compiled program is produced: the scheduler's yield
// hook runs every concurrent VM on the reference walker.
func (r *Runner) concurrentModule(w workloads.ConcurrentWorkload, v Variant, threads int) (*ir.Module, error) {
	key := moduleKey{workload: w.Name + "#t" + strconv.Itoa(threads), variant: v.Label()}
	m, _, err := r.cache.get(key, func() (*ir.Module, *interp.Program, error) {
		m := w.Build(threads)
		if v.DPMR {
			xm, err := dpmr.Transform(m, dpmr.Config{
				Design:    v.Design,
				Diversity: v.Diversity,
				Policy:    v.Policy,
				Seed:      transformSeed,
			})
			if err != nil {
				return nil, nil, err
			}
			m = xm
		}
		m.Freeze()
		return m, nil, nil
	})
	return m, err
}

// concurrentGolden runs (and caches) the fault-free stdapp group of w
// under the base schedule seed. The memo key includes the thread count
// and schedule seed, and the cache is the Runner's golden map, so a
// memory-geometry change invalidates concurrent goldens exactly like
// sequential ones (applySpec drops the map).
func (r *Runner) concurrentGolden(w workloads.ConcurrentWorkload, threads int, schedSeed int64) (*interp.Result, error) {
	key := "concurrent:" + w.Name + ":t" + strconv.Itoa(threads) + ":s" + strconv.FormatInt(schedSeed, 10)
	r.mu.Lock()
	g, ok := r.golden[key]
	if !ok {
		g = &goldenInfo{}
		r.golden[key] = g
	}
	r.mu.Unlock()
	g.once.Do(func() {
		m, err := r.concurrentModule(w, Stdapp(), threads)
		if err != nil {
			g.err = err
			return
		}
		res := sched.Run(m, sched.Config{
			Threads:       threads,
			Seed:          schedSeed,
			TraceDisabled: true,
			VM:            interp.Config{Externs: extlib.Base(), Mem: r.MemConfig},
		})
		c := res.Combined
		if c.Kind != interp.ExitNormal || c.Code != 0 {
			g.err = fmt.Errorf("harness: concurrent golden %s (%d threads, schedule %d) failed: %v code %d (%s)",
				w.Name, threads, schedSeed, c.Kind, c.Code, c.Reason)
			return
		}
		g.res = c
	})
	return g.res, g.err
}

// runConcurrentOnce executes one concurrent trial: the workload's group
// under schedule SchedSeed+rn, classified against the golden group plus
// the consistency checker's verdict over the recorded trace.
func (r *Runner) runConcurrentOnce(w workloads.ConcurrentWorkload, v Variant, threads int, schedSeed int64, rn int) (Outcome, error) {
	golden, err := r.concurrentGolden(w, threads, schedSeed)
	if err != nil {
		return Outcome{}, err
	}
	m, err := r.concurrentModule(w, v, threads)
	if err != nil {
		return Outcome{}, err
	}
	externs := extlib.Base()
	if v.DPMR {
		externs = extlib.Wrapped(v.Design)
	}
	res := sched.Run(m, sched.Config{
		Threads: threads,
		Seed:    schedSeed + int64(rn),
		VM: interp.Config{
			Externs:   externs,
			Mem:       r.MemConfig,
			Seed:      int64(rn) + 1,
			StepLimit: golden.Steps * r.TimeoutFactor * 5, // group steps sum over threads
		},
	})
	o := r.classify(golden, res.Combined)
	o.ConsistViol = !consist.Check(res.Trace).Clean()
	return o, nil
}

// execConcurrentTrials runs plan.trials[lo:hi] on the worker pool and
// returns their classifications, with the same completed-prefix
// cancellation contract as execTrials.
func (r *Runner) execConcurrentTrials(ctx context.Context, plan *concurrentPlan, lo, hi int) ([]TrialOutcome, error) {
	outcomes := make([]TrialOutcome, hi-lo)
	errs := make([]error, hi-lo)
	done := r.fanOut(ctx, hi-lo, func(i int) {
		t := plan.trials[lo+i]
		o, err := r.runConcurrentOnce(t.w, t.v, plan.threads, plan.schedSeed, t.rn)
		if err != nil {
			errs[i] = err
			return
		}
		outcomes[i] = o.Trial()
	})
	for i := 0; i < done; i++ {
		if err := errs[i]; err != nil {
			t := plan.trials[lo+i]
			return nil, fmt.Errorf("concurrent trial %d: %s %s run %d: %w", lo+i, t.v.Label(), t.w.Name, t.rn, err)
		}
	}
	if done < hi-lo {
		return outcomes[:done], context.Cause(ctx)
	}
	return outcomes, nil
}

// ---------------------------------------------------------------------------
// Aggregation

// ConcurrentCell aggregates one (workload, variant) pair of a concurrent
// campaign: fractions of all trials (there is no injection, so unlike
// CoverageCell nothing conditions on SF). CO/NatDet/DpmrDet follow the
// §3.6 priority; ConsistViol is the independent trace-checker axis and
// can overlap any of them — a consistency violation under literal
// correct output is precisely the silent failure the checker exists to
// surface.
type ConcurrentCell struct {
	N           int     // trials observed
	CO          float64 // correct output
	NatDet      float64 // natural detection (and not CO)
	DpmrDet     float64 // DPMR detection (and not CO)
	ConsistViol float64 // trace checker flagged the trial (any class)
}

func (c *ConcurrentCell) add(o TrialOutcome) {
	c.N++
	switch {
	case o.CO:
		c.CO++
	case o.DpmrDet:
		c.DpmrDet++
	case o.NatDet:
		c.NatDet++
	}
	if o.ConsistViol {
		c.ConsistViol++
	}
}

func (c *ConcurrentCell) finalize() {
	if c.N > 0 {
		c.CO /= float64(c.N)
		c.NatDet /= float64(c.N)
		c.DpmrDet /= float64(c.N)
		c.ConsistViol /= float64(c.N)
	}
}

// ConcurrentResult holds per-(workload, variant) outcome fractions of a
// concurrent campaign.
type ConcurrentResult struct {
	Workloads []string
	Variants  []Variant
	Threads   int
	SchedSeed int64
	Cells     map[string]map[string]*ConcurrentCell // variant label → workload → cell
}

// Cell retrieves one aggregation cell.
func (cr *ConcurrentResult) Cell(variant Variant, workload string) *ConcurrentCell {
	return cr.Cells[variant.Label()][workload]
}

// aggregateConcurrent folds the full plan's trial outcomes into a
// ConcurrentResult in canonical order — identical iteration whether the
// outcomes came from one process or merged shards.
func aggregateConcurrent(plan *concurrentPlan, outcomes []TrialOutcome) *ConcurrentResult {
	cr := &ConcurrentResult{
		Workloads: plan.workloads,
		Variants:  plan.variants,
		Threads:   plan.threads,
		SchedSeed: plan.schedSeed,
		Cells:     make(map[string]map[string]*ConcurrentCell),
	}
	for _, v := range plan.variants {
		cr.Cells[v.Label()] = make(map[string]*ConcurrentCell)
		for _, wname := range plan.workloads {
			cr.Cells[v.Label()][wname] = &ConcurrentCell{}
		}
	}
	for i, t := range plan.trials {
		cr.Cells[t.v.Label()][t.w.Name].add(outcomes[i])
	}
	for _, byW := range cr.Cells {
		for _, c := range byW {
			c.finalize()
		}
	}
	return cr
}

// RenderConcurrent writes the concurrent campaign summary — the report
// block the CLI, merge path, and CI drills all share, so the
// consistency-violation column renders identically everywhere.
func RenderConcurrent(w io.Writer, cr *ConcurrentResult) {
	fmt.Fprintf(w, "concurrent campaign: %d threads, schedule seed %d\n", cr.Threads, cr.SchedSeed)
	fmt.Fprintf(w, "%-28s %-8s %6s %8s %8s %8s %12s\n",
		"variant", "workload", "n", "CO", "NatDet", "DpmrDet", "ConsistViol")
	for _, v := range cr.Variants {
		for _, wname := range cr.Workloads {
			c := cr.Cells[v.Label()][wname]
			fmt.Fprintf(w, "%-28s %-8s %6d %8.2f %8.2f %8.2f %12.2f\n",
				v.Label(), wname, c.N, c.CO, c.NatDet, c.DpmrDet, c.ConsistViol)
		}
	}
}

// ---------------------------------------------------------------------------
// Entry points

// RunConcurrent executes the full concurrent campaign the Spec
// describes: every concurrent workload × every variant × Runs scheduled
// group runs. Like RunCampaign, trials execute on the worker pool and
// outcomes aggregate in canonical order, so the result is byte-identical
// at every worker count; a Runner configured with a proper shard is
// refused — use RunConcurrentPartial and MergeConcurrent.
func (r *Runner) RunConcurrent(ctx context.Context, spec Spec) (*ConcurrentResult, error) {
	spec, err := spec.normalizedAs(SpecConcurrent, "RunConcurrent")
	if err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	if !r.Shard.IsZero() && r.Shard != (ShardSpec{Index: 0, Count: 1}) {
		return nil, fmt.Errorf("harness: RunConcurrent with Shard %s: a shard covers only part of the plan; use RunConcurrentPartial and MergeConcurrent", r.Shard)
	}
	r.applySpec(spec)
	plan, err := planConcurrent(spec)
	if err != nil {
		return nil, err
	}
	outcomes, err := r.execConcurrentTrials(ctx, plan, 0, len(plan.trials))
	if err != nil {
		return nil, err
	}
	return aggregateConcurrent(plan, outcomes), nil
}

// RunConcurrentPartial executes only the Runner's shard of the
// concurrent plan and returns the indexed partial result — an ordinary
// PartialResult, so the coordinator protocol, journal records, and
// partial files carry concurrent shards without a new wire shape. A zero
// Shard runs the whole plan as shard 0/1; combine shards with
// MergeConcurrent. Cancellation returns the completed-prefix partial
// together with ctx's error.
func (r *Runner) RunConcurrentPartial(ctx context.Context, spec Spec) (*PartialResult, error) {
	p, _, err := r.runConcurrentPartial(ctx, spec)
	return p, err
}

// runConcurrentPartial also exposes the plan, for Session and the
// journaled driver.
func (r *Runner) runConcurrentPartial(ctx context.Context, spec Spec) (*PartialResult, *concurrentPlan, error) {
	spec, err := spec.normalizedAs(SpecConcurrent, "RunConcurrentPartial")
	if err != nil {
		return nil, nil, err
	}
	if err := r.validate(); err != nil {
		return nil, nil, err
	}
	shard := r.Shard
	if shard.IsZero() {
		shard = ShardSpec{Index: 0, Count: 1}
	}
	r.applySpec(spec)
	plan, err := planConcurrent(spec)
	if err != nil {
		return nil, nil, err
	}
	lo, hi := shard.shardRange(len(plan.trials))
	start := time.Now()
	outcomes, err := r.execConcurrentTrials(ctx, plan, lo, hi)
	if err != nil && !cancelled(ctx, err) {
		return nil, nil, err
	}
	return &PartialResult{
		Fingerprint: plan.fingerprint,
		Shard:       shard,
		Lo:          lo,
		Hi:          lo + len(outcomes),
		Total:       len(plan.trials),
		Outcomes:    outcomes,
		ElapsedMS:   time.Since(start).Milliseconds(),
	}, plan, err
}

// MergeConcurrent reassembles a full ConcurrentResult from the partial
// results of a sharded concurrent run, with the same fingerprint and
// exact-tiling validation as MergeCampaign. The merged result is
// byte-identical to an unsharded RunConcurrent of the same Spec; one
// ShardMerged event is emitted per partial, in canonical range order.
func (r *Runner) MergeConcurrent(spec Spec, parts []*PartialResult) (*ConcurrentResult, error) {
	spec, err := spec.normalizedAs(SpecConcurrent, "MergeConcurrent")
	if err != nil {
		return nil, err
	}
	r.applySpec(spec)
	plan, err := planConcurrent(spec)
	if err != nil {
		return nil, err
	}
	total := len(plan.trials)
	spans := make([]planSpan, len(parts))
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("harness: MergeConcurrent: nil partial result")
		}
		if err := p.check(); err != nil {
			return nil, err
		}
		spans[i] = planSpan{shard: p.Shard, lo: p.Lo, hi: p.Hi, total: p.Total, fingerprint: p.Fingerprint}
	}
	order, err := tileSpans("MergeConcurrent", plan.fingerprint, total, spans)
	if err != nil {
		return nil, err
	}
	outcomes := make([]TrialOutcome, total)
	for _, i := range order {
		copy(outcomes[parts[i].Lo:parts[i].Hi], parts[i].Outcomes)
		r.notify(ShardMerged{Shard: parts[i].Shard, Lo: parts[i].Lo, Hi: parts[i].Hi, Total: parts[i].Total,
			Elapsed: time.Duration(parts[i].ElapsedMS) * time.Millisecond})
	}
	return aggregateConcurrent(plan, outcomes), nil
}

// ---------------------------------------------------------------------------
// Journaled execution: the concurrent kind rides the campaign journal
// machinery (resume.go) unchanged — concurrent shards are ordinary
// PartialResults, so record decoding, gap computation, and adaptive span
// cutting are shared; only the plan and merge are kind-specific.

// ResumeConcurrent recomputes the concurrent Spec's canonical plan and
// diffs it against the journal replay, exactly like ResumeCampaign.
func (r *Runner) ResumeConcurrent(spec Spec, rp *journal.Replay) (*CampaignResume, error) {
	spec, err := spec.normalizedAs(SpecConcurrent, "ResumeConcurrent")
	if err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	r.applySpec(spec)
	plan, err := planConcurrent(spec)
	if err != nil {
		return nil, err
	}
	c := &CampaignResume{spec: spec, cplan: plan, PlanFP: plan.fingerprint, Total: len(plan.trials)}
	if rp != nil {
		for _, rec := range rp.Plan(plan.fingerprint) {
			p, err := decodeJournaledPartial(rec, plan.fingerprint, len(plan.trials))
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, p)
		}
	}
	c.Gaps, err = rangeGaps(c.Parts, len(plan.trials))
	if err != nil {
		return nil, err
	}
	return c, nil
}

// SnapshotConcurrent aggregates the given parts over zero-valued
// stand-ins for the uncovered trials — the progressive mid-campaign view
// of a journaled or coordinated concurrent run, the concurrent analogue
// of Snapshot. It requires a resume built by ResumeConcurrent.
func (c *CampaignResume) SnapshotConcurrent(parts []*PartialResult) *ConcurrentResult {
	outcomes := make([]TrialOutcome, c.Total)
	for _, p := range parts {
		copy(outcomes[p.Lo:p.Hi], p.Outcomes)
	}
	return aggregateConcurrent(c.cplan, outcomes)
}

// RunConcurrentJournaled executes a concurrent campaign against a
// journal: replayed coverage is kept, the remaining gaps run as
// adaptively cut spans, each completed span is appended durably before
// the next starts, and the full set merges into a final result
// byte-identical to an uninterrupted RunConcurrent. The returned int
// counts trials executed by this call (excluding replayed coverage).
// snap, when non-nil, receives a structurally complete progressive
// result after every durable span, exactly like RunCampaignJournaled.
func (r *Runner) RunConcurrentJournaled(ctx context.Context, spec Spec, j *journal.Journal, prior *journal.Replay, spans int,
	snap func(cr *ConcurrentResult, done, total int)) (*ConcurrentResult, int, error) {
	c, err := r.ResumeConcurrent(spec, prior)
	if err != nil {
		return nil, 0, err
	}
	parts := c.Parts
	executed := 0
	for _, span := range c.Spans(spans) {
		if err := failpt.Err(siteSpan); err != nil {
			return nil, executed, err
		}
		saved := r.Shard
		r.Shard = span
		p, _, err := r.runConcurrentPartial(ctx, c.spec)
		r.Shard = saved
		if err != nil && (p == nil || !cancelled(ctx, err)) {
			return nil, executed, err
		}
		if p.Hi > p.Lo {
			if aerr := appendCampaignPartial(j, p); aerr != nil {
				return nil, executed, aerr
			}
			executed += p.Hi - p.Lo
			parts = append(parts, p)
			if snap != nil {
				done := 0
				for _, q := range parts {
					done += q.Hi - q.Lo
				}
				snap(c.SnapshotConcurrent(parts), done, c.Total)
			}
		}
		if err != nil {
			return nil, executed, err
		}
	}
	merged, err := r.MergeConcurrent(c.spec, parts)
	if err != nil {
		return nil, executed, err
	}
	return merged, executed, nil
}
