package harness

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestSessionCampaignMatchesRunner: a whole-plan campaign Session
// produces the identical CampaignResult the Runner API computes, emits a
// gapless completion-ordered event stream, and closes it.
func TestSessionCampaignMatchesRunner(t *testing.T) {
	direct, _ := campaignAt(t, 2)

	s, err := Start(context.Background(), smallCampaign(), WithParallel(2), WithEviction(true))
	if err != nil {
		t.Fatal(err)
	}
	var trialDone, progress, stats int
	lastDone, total := 0, -1
	for ev := range s.Events() {
		switch e := ev.(type) {
		case TrialDone:
			trialDone++
			lastDone, total = e.Done, e.Total
		case Progress:
			progress++
		case CacheStats:
			stats++
		}
	}
	res, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Campaign == nil || res.CampaignPartial == nil {
		t.Fatalf("whole-plan campaign session result incomplete: %+v", res)
	}
	if !reflect.DeepEqual(direct.Cells, res.Campaign.Cells) ||
		!reflect.DeepEqual(direct.Conditional, res.Campaign.Conditional) {
		t.Error("session campaign result differs from Runner.RunCampaign")
	}
	if res.CampaignPartial.Lo != 0 || res.CampaignPartial.Hi != res.CampaignPartial.Total {
		t.Errorf("whole-plan partial covers [%d, %d) of %d", res.CampaignPartial.Lo, res.CampaignPartial.Hi, res.CampaignPartial.Total)
	}
	if trialDone != total || lastDone != total || trialDone != progress {
		t.Errorf("event stream incomplete: %d TrialDone, %d Progress, last done %d, total %d",
			trialDone, progress, lastDone, total)
	}
	if stats != 1 {
		t.Errorf("want one final CacheStats event, got %d", stats)
	}
	if res.Stats.Builds == 0 {
		t.Error("final stats snapshot empty")
	}
}

// TestSessionOverheadAndShard: an overhead Session aggregates like the
// Runner API, and a sharded Session returns the shard's partial without
// an aggregate.
func TestSessionOverheadAndShard(t *testing.T) {
	ctx := context.Background()
	ws, vs := smallOverhead()
	spec := OverheadSpec(ws, vs)
	r := NewRunner()
	direct, err := r.RunOverhead(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Start(ctx, spec, WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Wait() // never subscribing to Events must not block the run
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, res.Overhead) {
		t.Error("session overhead result differs from Runner.RunOverhead")
	}

	shard := ShardSpec{Index: 1, Count: 3}
	s2, err := Start(ctx, smallCampaign(), WithShard(shard))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Campaign != nil {
		t.Error("sharded session must not aggregate a whole-plan result")
	}
	p := res2.CampaignPartial
	if p == nil || p.Shard != shard || p.Hi-p.Lo != len(p.Outcomes) {
		t.Fatalf("sharded session partial wrong: %+v", p)
	}
}

// TestSessionExperimentReport: an experiment Session renders the same
// bytes Generate writes, into the WithReport writer.
func TestSessionExperimentReport(t *testing.T) {
	ctx := context.Background()
	spec := quickExp("fig3.16")
	var direct bytes.Buffer
	if err := Generate(ctx, spec, &direct, Options{Parallel: 2}); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	s, err := Start(ctx, spec, WithParallel(2), WithReport(&got))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), got.Bytes()) {
		t.Errorf("session report differs from Generate:\n--- Generate ---\n%s\n--- Session ---\n%s",
			direct.String(), got.String())
	}
}

// TestSessionRejectsInvalidSpec: Start validates synchronously.
func TestSessionRejectsInvalidSpec(t *testing.T) {
	if _, err := Start(context.Background(), Spec{Kind: "banana"}); err == nil {
		t.Error("invalid spec accepted")
	}
}

// TestSessionCancelReturnsCompletedPrefix is the graceful-cancellation
// contract: cancelling mid-campaign stops dispatch, drains in-flight
// trials, leaks no worker goroutines, and Wait returns the
// completed-prefix partial together with ctx.Err(). The prefix outcomes
// must equal the same trials of an uncancelled run.
func TestSessionCancelReturnsCompletedPrefix(t *testing.T) {
	full, err := NewRunner().RunCampaignPartial(context.Background(), smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	s, err := Start(ctx, smallCampaign(), WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	// Cancel partway through the stream, then drain it: it must close.
	cut := full.Total / 3
	for ev := range s.Events() {
		if td, ok := ev.(TrialDone); ok && td.Done == cut {
			cancel()
		}
	}
	res, err := s.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
	p := res.CampaignPartial
	if p == nil {
		t.Fatal("cancelled session lost its completed prefix")
	}
	if p.Hi-p.Lo != len(p.Outcomes) || p.Lo != 0 {
		t.Fatalf("prefix partial inconsistent: [%d, %d) with %d outcomes", p.Lo, p.Hi, len(p.Outcomes))
	}
	if len(p.Outcomes) >= full.Total {
		t.Errorf("cancellation did not stop dispatch: %d of %d trials ran", len(p.Outcomes), full.Total)
	}
	if len(p.Outcomes) < cut {
		t.Errorf("completed prefix %d shorter than the %d trials observed done", len(p.Outcomes), cut)
	}
	// The completed prefix is byte-for-byte the canonical plan's prefix.
	if !reflect.DeepEqual(p.Outcomes, full.Outcomes[:len(p.Outcomes)]) {
		t.Error("cancelled prefix outcomes differ from the uncancelled run")
	}
	cancel()

	// Drained trials and closed streams mean no engine goroutines outlive
	// the session (allow unrelated runtime noise a little slack).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		buf := make([]byte, 1<<16)
		t.Errorf("worker goroutines leaked after cancel: %d before, %d after\n%s",
			before, n, buf[:runtime.Stack(buf, true)])
	}
}

// TestCancelledShardsStillMerge: a coordinator-style deployment where
// one shard is cancelled mid-run can still merge cleanly once the lost
// range is re-run — the cancelled shard's prefix is NOT silently
// accepted as covering its range.
func TestCancelledShardsStillMerge(t *testing.T) {
	bg := context.Background()
	spec := smallCampaign()
	const n = 3
	parts := make([]*PartialResult, 0, n)
	for i := 0; i < n; i++ {
		r := NewRunner()
		r.Parallel = 2
		r.Shard = ShardSpec{Index: i, Count: n}
		ctx := bg
		var cancel context.CancelFunc
		if i == 1 {
			// Kill shard 1 before it can finish.
			ctx, cancel = context.WithCancel(bg)
			cancel()
		}
		p, err := r.RunCampaignPartial(ctx, spec)
		if i == 1 {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled shard error = %v", err)
			}
			if p.Hi != p.Lo {
				t.Fatalf("immediately cancelled shard claims trials [%d, %d)", p.Lo, p.Hi)
			}
			// The surviving prefix does not tile the plan: the merge must
			// name the gap rather than fabricate coverage.
			survivors := append(append([]*PartialResult{}, parts...), p)
			if _, err := NewRunner().MergeCampaign(spec, survivors); err == nil || !strings.Contains(err.Error(), "missing trials") {
				t.Fatalf("merge of cancelled shard set: err = %v, want the missing range named", err)
			}
			// Re-run the lost shard to completion (the recovery path the
			// coordinator automates).
			r2 := NewRunner()
			r2.Parallel = 2
			r2.Shard = ShardSpec{Index: i, Count: n}
			p, err = r2.RunCampaignPartial(bg, spec)
			if err != nil {
				t.Fatal(err)
			}
		} else if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	merged, err := NewRunner().MergeCampaign(spec, parts)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := campaignAt(t, 2)
	if !reflect.DeepEqual(direct.Cells, merged.Cells) {
		t.Error("merge after shard recovery differs from unsharded run")
	}
}

// TestOverheadCancelReturnsPrefix covers the overhead engine's
// completed-prefix contract through the Runner surface.
func TestOverheadCancelReturnsPrefix(t *testing.T) {
	ws, vs := smallOverhead()
	spec := OverheadSpec(ws, vs)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner()
	p, err := r.RunOverheadPartial(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if p == nil || p.Lo != 0 || p.Hi != 0 || len(p.Cycles) != 0 {
		t.Fatalf("pre-cancelled overhead partial should be an empty prefix: %+v", p)
	}
	// And a cancelled whole-plan RunOverhead fails without a result.
	if _, err := NewRunner().RunOverhead(ctx, spec); err == nil {
		t.Error("cancelled RunOverhead returned nil error")
	}
}

// TestCancelledSessionEmitsFinalStats: a run that ends by cancellation
// still emits the final CacheStats snapshot (exactly one) — journal and
// adaptive-sizing consumers must see cache state even for interrupted
// campaigns — and every TrialDone carries a monotonic wall-clock
// duration stamp.
func TestCancelledSessionEmitsFinalStats(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := Start(ctx, smallCampaign(), WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	stats, trialDone, badElapsed := 0, 0, 0
	for ev := range s.Events() {
		switch e := ev.(type) {
		case TrialDone:
			trialDone++
			if e.Elapsed <= 0 {
				badElapsed++
			}
			if e.Done == 2 {
				cancel()
			}
		case CacheStats:
			stats++
		}
	}
	res, err := s.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
	if stats != 1 {
		t.Errorf("cancelled session emitted %d CacheStats events, want exactly 1", stats)
	}
	if res.Stats.Builds == 0 {
		t.Error("cancelled session's final stats snapshot is empty")
	}
	if trialDone == 0 {
		t.Fatal("no TrialDone events before cancellation")
	}
	if badElapsed > 0 {
		t.Errorf("%d of %d TrialDone events missing a positive Elapsed stamp", badElapsed, trialDone)
	}
	cancel()
}

// TestShardMergedCarriesElapsed: merges propagate the partials' recorded
// wall-clock into ShardMerged events (the adaptive-sizing cost signal).
func TestShardMergedCarriesElapsed(t *testing.T) {
	spec := smallCampaign()
	var parts []*PartialResult
	for i := 0; i < 2; i++ {
		r := NewRunner()
		r.Shard = ShardSpec{Index: i, Count: 2}
		p, err := r.RunCampaignPartial(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		p.ElapsedMS = int64(100 * (i + 1)) // pin for determinism
		parts = append(parts, p)
	}
	var merged []ShardMerged
	r := NewRunner()
	r.Events = func(ev Event) {
		if sm, ok := ev.(ShardMerged); ok {
			merged = append(merged, sm)
		}
	}
	if _, err := r.MergeCampaign(spec, parts); err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("%d ShardMerged events, want 2", len(merged))
	}
	for i, sm := range merged {
		if want := time.Duration(100*(i+1)) * time.Millisecond; sm.Elapsed != want {
			t.Errorf("shard %d merged with Elapsed %v, want %v", i, sm.Elapsed, want)
		}
	}
}

// TestSessionEventsAfterFinish: subscribing after completion still
// replays the buffered stream and closes.
func TestSessionEventsAfterFinish(t *testing.T) {
	s, err := Start(context.Background(), smallCampaign(), WithParallel(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	count := 0
	for range s.Events() {
		count++
	}
	if count == 0 {
		t.Error("late subscriber saw no events")
	}
}
