package harness

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// runShards executes the small campaign as n shards (each on its own
// Runner, as separate processes would) and returns the partials in shard
// order, JSON round-tripped through Encode/DecodePartial so the tests
// exercise exactly the bytes a sharded deployment ships.
func runShards(t *testing.T, n int) []*PartialResult {
	t.Helper()
	parts := make([]*PartialResult, n)
	for i := 0; i < n; i++ {
		r := NewRunner()
		r.Parallel = 2
		r.EvictModules = true
		r.Shard = ShardSpec{Index: i, Count: n}
		p, err := r.RunCampaignPartial(context.Background(), smallCampaign())
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatalf("shard %d/%d: encode: %v", i, n, err)
		}
		rp, err := DecodePartial(&buf)
		if err != nil {
			t.Fatalf("shard %d/%d: decode: %v", i, n, err)
		}
		parts[i] = rp
	}
	return parts
}

func mergeShards(t *testing.T, parts []*PartialResult) *CampaignResult {
	t.Helper()
	r := NewRunner()
	cr, err := r.MergeCampaign(smallCampaign(), parts)
	if err != nil {
		t.Fatal(err)
	}
	return cr
}

func renderedReport(t *testing.T, cr *CampaignResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	renderCoverage(&buf, cr, labelDiversity)
	renderConditional(&buf, cr, labelDiversity)
	return buf.Bytes()
}

// TestShardMergeByteIdentical is the sharding contract: for several
// shard counts, merging the shards' partial results reconstructs a
// CampaignResult — and rendered report bytes — identical to an unsharded
// run, with the shards merged out of order.
func TestShardMergeByteIdentical(t *testing.T) {
	golden, _ := campaignAt(t, 4)
	goldenBytes := renderedReport(t, golden)
	for _, n := range []int{1, 2, 3, 7} {
		parts := runShards(t, n)
		// Adversarial merge order: reversed, then middle-out rotation.
		orders := [][]*PartialResult{parts, reversed(parts), rotated(parts, n/2)}
		for oi, order := range orders {
			cr := mergeShards(t, order)
			if !reflect.DeepEqual(golden.Cells, cr.Cells) {
				t.Errorf("n=%d order=%d: merged cells differ from unsharded", n, oi)
			}
			if !reflect.DeepEqual(golden.Conditional, cr.Conditional) {
				t.Errorf("n=%d order=%d: merged conditional cells differ from unsharded", n, oi)
			}
			if got := renderedReport(t, cr); !bytes.Equal(goldenBytes, got) {
				t.Errorf("n=%d order=%d: merged report bytes differ:\n--- unsharded ---\n%s\n--- merged ---\n%s",
					n, oi, goldenBytes, got)
			}
		}
	}
}

func reversed(parts []*PartialResult) []*PartialResult {
	out := make([]*PartialResult, len(parts))
	for i, p := range parts {
		out[len(parts)-1-i] = p
	}
	return out
}

func rotated(parts []*PartialResult, by int) []*PartialResult {
	out := make([]*PartialResult, 0, len(parts))
	out = append(out, parts[by:]...)
	return append(out, parts[:by]...)
}

// TestShardRangesTileThePlan asserts the host-independent slicing: the
// shards' [Lo, Hi) ranges are contiguous, exhaustive, and sized within
// one trial of each other.
func TestShardRangesTileThePlan(t *testing.T) {
	parts := runShards(t, 7)
	next := 0
	total := parts[0].Total
	for i, p := range parts {
		if p.Lo != next {
			t.Errorf("shard %d starts at %d, want %d", i, p.Lo, next)
		}
		if size := p.Hi - p.Lo; size < total/7 || size > total/7+1 {
			t.Errorf("shard %d has %d trials, want %d or %d", i, size, total/7, total/7+1)
		}
		next = p.Hi
	}
	if next != total {
		t.Errorf("shards cover [0, %d), plan has %d trials", next, total)
	}
}

// TestMergeRejectsDuplicateShard: merging the same shard twice must fail
// with the overlap named, not double-count trials.
func TestMergeRejectsDuplicateShard(t *testing.T) {
	parts := runShards(t, 3)
	r := NewRunner()
	_, err := r.MergeCampaign(smallCampaign(), []*PartialResult{parts[0], parts[1], parts[1], parts[2]})
	if err == nil {
		t.Fatal("duplicated shard accepted")
	}
	if !strings.Contains(err.Error(), "overlaps") || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate-shard error does not name the overlap: %v", err)
	}
}

// TestMergeRejectsMissingShard: a gap must be rejected with the missing
// trial range named.
func TestMergeRejectsMissingShard(t *testing.T) {
	parts := runShards(t, 3)
	r := NewRunner()
	_, err := r.MergeCampaign(smallCampaign(), []*PartialResult{parts[0], parts[2]})
	if err == nil {
		t.Fatal("missing shard accepted")
	}
	want := "missing trials [" + strconv.Itoa(parts[1].Lo) + ", " + strconv.Itoa(parts[1].Hi) + ")"
	if !strings.Contains(err.Error(), want) {
		t.Errorf("missing-shard error %q does not name the range %q", err, want)
	}
	// Missing tail shard.
	_, err = r.MergeCampaign(smallCampaign(), []*PartialResult{parts[0], parts[1]})
	if err == nil || !strings.Contains(err.Error(), "missing trials") {
		t.Errorf("missing tail shard not rejected with a named range: %v", err)
	}
}

// TestMergeRejectsForeignPlan: partial results from a different plan
// (here: a Spec with different Runs) must be refused by fingerprint.
func TestMergeRejectsForeignPlan(t *testing.T) {
	parts := runShards(t, 2) // Runs = 2 (the normalized default)
	r := NewRunner()
	foreign := smallCampaign()
	foreign.Runs = 1 // different plan
	if _, err := r.MergeCampaign(foreign, parts); err == nil {
		t.Fatal("partials from a different plan accepted")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("foreign-plan error does not mention the fingerprint: %v", err)
	}
	// Corrupted fingerprint on one shard.
	parts[1].Fingerprint = "deadbeef"
	r2 := NewRunner()
	if _, err := r2.MergeCampaign(smallCampaign(), parts); err == nil {
		t.Fatal("corrupted fingerprint accepted")
	}
}

// TestDecodePartialRejectsMalformed covers the decoder's shape checks.
func TestDecodePartialRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"negative lo":     `{"fingerprint":"f","lo":-1,"hi":0,"total":4,"outcomes":[{}]}`,
		"hi before lo":    `{"fingerprint":"f","lo":3,"hi":1,"total":4,"outcomes":[]}`,
		"hi past total":   `{"fingerprint":"f","lo":0,"hi":9,"total":4,"outcomes":[{},{},{},{},{},{},{},{},{}]}`,
		"length mismatch": `{"fingerprint":"f","lo":0,"hi":2,"total":4,"outcomes":[{}]}`,
		"no fingerprint":  `{"lo":0,"hi":1,"total":4,"outcomes":[{}]}`,
	}
	for name, text := range cases {
		if _, err := DecodePartial(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestGenerateShardedMergedByteIdentical drives the dpmr-exp path: the
// full experiment generator run as shards, merged, against the bytes an
// unsharded Generate writes.
func TestGenerateShardedMergedByteIdentical(t *testing.T) {
	ctx := context.Background()
	spec := quickExp("fig3.7")
	opts := Options{Parallel: 2, Evict: true}
	var golden bytes.Buffer
	if err := Generate(ctx, spec, &golden, opts); err != nil {
		t.Fatal(err)
	}
	const n = 3
	files := make([]bytes.Buffer, n)
	for i := 0; i < n; i++ {
		if err := GenerateSharded(ctx, spec, ShardSpec{Index: i, Count: n}, &files[i], opts); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	// Merge out of order; the id is taken from the partials.
	var merged bytes.Buffer
	readers := []io.Reader{&files[2], &files[0], &files[1]}
	idless := spec
	idless.Exp = ""
	if err := GenerateMerged(ctx, idless, &merged, readers, opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden.Bytes(), merged.Bytes()) {
		t.Errorf("merged fig3.7 differs from unsharded:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			golden.String(), merged.String())
	}
}

// TestRunnerValidation is the table-driven Runner.RunCampaign /
// RunCampaignPartial / RunOverhead validation contract: out-of-range
// shards and non-positive worker counts error instead of silently
// truncating or serializing.
func TestRunnerValidation(t *testing.T) {
	cases := []struct {
		name     string
		parallel int
		shard    ShardSpec
		wantErr  string
	}{
		{"zero workers", 0, ShardSpec{}, "at least 1 worker"},
		{"negative workers", -3, ShardSpec{}, "at least 1 worker"},
		{"shard index past count", 1, ShardSpec{Index: 3, Count: 3}, "out of range"},
		{"negative shard index", 1, ShardSpec{Index: -1, Count: 3}, "out of range"},
		{"zero count with index", 1, ShardSpec{Index: 2, Count: 0}, "count must be at least 1"},
		{"negative count", 1, ShardSpec{Index: 0, Count: -2}, "count must be at least 1"},
	}
	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRunner()
			r.Parallel = tc.parallel
			r.Shard = tc.shard
			if _, err := r.RunCampaign(ctx, smallCampaign()); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("RunCampaign: err = %v, want %q", err, tc.wantErr)
			}
			if _, err := r.RunCampaignPartial(ctx, smallCampaign()); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("RunCampaignPartial: err = %v, want %q", err, tc.wantErr)
			}
		})
	}
	// A sharded Runner must not silently truncate RunCampaign.
	r := NewRunner()
	r.Shard = ShardSpec{Index: 1, Count: 2}
	if _, err := r.RunCampaign(ctx, smallCampaign()); err == nil || !strings.Contains(err.Error(), "RunCampaignPartial") {
		t.Errorf("sharded RunCampaign: err = %v, want a pointer to RunCampaignPartial", err)
	}
	// RunOverhead shares the worker validation.
	r2 := NewRunner()
	r2.Parallel = 0
	ws, vs := smallOverhead()
	if _, err := r2.RunOverhead(ctx, OverheadSpec(ws, vs)); err == nil || !strings.Contains(err.Error(), "at least 1 worker") {
		t.Errorf("RunOverhead: err = %v, want worker validation", err)
	}
	// A Spec that cannot normalize is refused before any execution.
	r3 := NewRunner()
	if _, err := r3.RunOverhead(ctx, Spec{Kind: SpecOverhead}); err == nil || !strings.Contains(err.Error(), "no workloads") {
		t.Errorf("RunOverhead empty spec: err = %v, want normalization error", err)
	}
	if _, err := r3.RunCampaign(ctx, OverheadSpec(ws, vs)); err == nil || !strings.Contains(err.Error(), "needs a campaign spec") {
		t.Errorf("RunCampaign with overhead spec: err = %v, want kind guard", err)
	}
}

// TestParseShard covers the CLI "i/N" syntax both ways.
func TestParseShard(t *testing.T) {
	good := map[string]ShardSpec{
		"0/1": {Index: 0, Count: 1},
		"0/3": {Index: 0, Count: 3},
		"2/3": {Index: 2, Count: 3},
		"6/7": {Index: 6, Count: 7},
	}
	for text, want := range good {
		got, err := ParseShard(text)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", text, got, err, want)
		}
	}
	bad := []string{"", "3", "a/b", "1/0", "0/0", "-1/3", "3/3", "1/-1", "1/2/3"}
	for _, text := range bad {
		if _, err := ParseShard(text); err == nil {
			t.Errorf("ParseShard(%q) accepted", text)
		}
	}
}

// TestSpanShardValidate covers the explicit trial-span form of
// ShardSpec: validation, rendering, and range clamping.
func TestSpanShardValidate(t *testing.T) {
	good := []ShardSpec{SpanShard(0, 5), SpanShard(3, 4), SpanShard(10, 200)}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("SpanShard %s rejected: %v", s, err)
		}
	}
	bad := []ShardSpec{
		SpanShard(-1, 5),                   // negative lo
		SpanShard(5, 5),                    // empty
		SpanShard(5, 3),                    // inverted
		{Index: 1, Count: 2, Lo: 0, Hi: 5}, // mixed forms
		{Lo: 0, Hi: -3},                    // negative hi
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid span %+v accepted", s)
		}
	}
	if got := SpanShard(3, 9).String(); got != "[3,9)" {
		t.Errorf("SpanShard String = %q", got)
	}
	if lo, hi := SpanShard(2, 50).shardRange(10); lo != 2 || hi != 10 {
		t.Errorf("span range clamps to plan: got [%d, %d), want [2, 10)", lo, hi)
	}
	if lo, hi := SpanShard(20, 50).shardRange(10); lo != hi {
		t.Errorf("out-of-plan span must clamp empty: got [%d, %d)", lo, hi)
	}
}

// TestSpanShardsMergeIdentical cuts a campaign into uneven explicit
// spans and merges them; the result must match the unsharded run — the
// property adaptive resume plans rely on.
func TestSpanShardsMergeIdentical(t *testing.T) {
	spec := smallCampaign()
	total, err := NewRunner().PlanTrials(spec)
	if err != nil {
		t.Fatal(err)
	}
	if total < 4 {
		t.Fatalf("campaign too small to span-cut: %d trials", total)
	}
	cuts := []int{0, 1, total / 3, total}
	var parts []*PartialResult
	for i := 0; i+1 < len(cuts); i++ {
		r := NewRunner()
		r.Shard = SpanShard(cuts[i], cuts[i+1])
		p, err := r.RunCampaignPartial(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if p.Lo != cuts[i] || p.Hi != cuts[i+1] {
			t.Fatalf("span %s produced range [%d, %d)", r.Shard, p.Lo, p.Hi)
		}
		parts = append(parts, p)
	}
	merged, err := NewRunner().MergeCampaign(spec, parts)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := campaignAt(t, 1)
	if !reflect.DeepEqual(direct.Cells, merged.Cells) || !reflect.DeepEqual(direct.Conditional, merged.Conditional) {
		t.Error("span-cut merge differs from unsharded campaign")
	}
	// A span JSON round trip survives the coordinator wire format.
	var buf bytes.Buffer
	if err := parts[1].Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePartial(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Shard != parts[1].Shard {
		t.Errorf("span shard %+v round-tripped to %+v", parts[1].Shard, back.Shard)
	}
}
