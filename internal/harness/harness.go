// Package harness implements the paper's experimental framework
// (§3.3–§3.6): variant builds (Figure 3.5), the experiment tuple
// (W, C, D, I, RN), and the evaluation metrics — overhead, coverage,
// conditional coverage, and detection latency — together with the
// campaign drivers and renderers that regenerate every table and figure
// of the evaluation chapters.
//
// The package separates *what* an experiment is from *how* it executes:
//
//   - Spec (spec.go) is the declarative, JSON-serializable experiment
//     description — the single input to plan construction and the sole
//     source of every plan fingerprint.
//   - Session (session.go) is the context-first execution handle:
//     Start(ctx, spec, opts...) with functional options for worker
//     counts, compilation, eviction, and sharding, streaming typed
//     events (TrialDone, Progress, ShardMerged, CacheStats) while the
//     experiment runs.
//   - Runner (below) is the mid-level two-stage campaign engine both
//     are built on.
package harness

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/faultinject"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/mem"
	"dpmr/internal/opt"
	"dpmr/internal/workloads"
)

// CyclesPerMS converts the deterministic cycle clock to "milliseconds" of
// the Table 3.1 testbed (2 GHz CPU).
const CyclesPerMS = 2_000_000

// transformSeed fixes compile-time randomness (static load-checking site
// selection) so every run of a variant executes the same binary.
const transformSeed = 12345

// Variant is one build configuration (Figure 3.5): the standard
// application, or a DPMR build identified by design, diversity
// transformation, and comparison policy.
type Variant struct {
	DPMR      bool
	Design    dpmr.Design
	Diversity dpmr.Diversity
	Policy    dpmr.Policy
}

// Stdapp is the untransformed application variant.
func Stdapp() Variant { return Variant{} }

// NewVariant builds a DPMR variant.
func NewVariant(design dpmr.Design, div dpmr.Diversity, pol dpmr.Policy) Variant {
	return Variant{DPMR: true, Design: design, Diversity: div, Policy: pol}
}

// Label uniquely identifies the variant (used as the result-map key).
func (v Variant) Label() string {
	if !v.DPMR {
		return "stdapp"
	}
	return v.Design.String() + "/" + v.Diversity.Name() + "/" + v.Policy.Name()
}

// DiversityLabel is the per-diversity short label used in Figures
// 3.6–3.10.
func (v Variant) DiversityLabel() string {
	if !v.DPMR {
		return "stdapp"
	}
	return v.Diversity.Name()
}

// PolicyLabel is the per-policy short label used in Figures 3.11–3.15.
func (v Variant) PolicyLabel() string {
	if !v.DPMR {
		return "stdapp"
	}
	return v.Policy.Name()
}

// DiversityVariants returns the Figure 3.6–3.10 variant set: stdapp plus
// one DPMR variant per diversity transformation, all using the all-loads
// policy.
func DiversityVariants(design dpmr.Design) []Variant {
	out := []Variant{Stdapp()}
	for _, d := range dpmr.Diversities() {
		out = append(out, NewVariant(design, d, dpmr.AllLoads{}))
	}
	return out
}

// PolicyVariants returns the Figure 3.11–3.15 variant set: stdapp plus one
// DPMR variant per comparison policy, all using rearrange-heap (the
// best-performing diversity, §3.8).
func PolicyVariants(design dpmr.Design) []Variant {
	out := []Variant{Stdapp()}
	for _, p := range dpmr.Policies() {
		out = append(out, NewVariant(design, dpmr.RearrangeHeap{}, p))
	}
	return out
}

// Runner executes experiments. The zero value is not usable; construct
// with NewRunner.
//
// A Runner is a two-stage campaign engine. Stage 1 (build) produces each
// distinct (workload, site, variant) module exactly once — built,
// fault-injected, DPMR-transformed, optimized, and frozen — in a cache
// shared by every trial that executes that module. Stage 2 (execute)
// fans the trial grid out across Parallel worker goroutines; each trial
// runs its own VM over the shared read-only module (per-VM RNG, output,
// and address space), and outcomes are aggregated in canonical trial
// order so results are byte-identical at any worker count.
//
// The campaign entry points (RunCampaign, RunCampaignPartial,
// RunOverhead, …) take a Spec: the Spec's declarative fields (runs,
// timeout factor, memory geometry) are applied to the Runner before the
// plan is built, so the plan — and its fingerprint — is a pure function
// of the Spec. The Runner's remaining fields tune only *how* trials
// execute.
type Runner struct {
	// Runs per (W, C, D, I) tuple; each run RN seeds the VM differently.
	// Overwritten from the Spec by the campaign entry points.
	Runs int
	// TimeoutFactor multiplies golden steps into the step budget
	// ("approximately 20 times the normal running time", §3.6).
	// Overwritten from the Spec by the campaign entry points.
	TimeoutFactor uint64
	// MemConfig sizes experiment address spaces. Overwritten from the
	// Spec by the campaign entry points.
	MemConfig mem.Config
	// Optimize runs the post-transform optimizer stage on every variant
	// build, golden included (Figure 3.5 applies an optimize stage to all
	// compilation paths). Off by default so recorded numbers stay stable;
	// the optimizer ablation bench flips it.
	Optimize bool
	// Parallel is the number of worker goroutines campaign drivers fan
	// trials out across. 1 runs serially; any value produces identical
	// results, Parallel only changes wall-clock time. Campaign drivers
	// reject values < 1 rather than silently running serially.
	Parallel int
	// Shard selects a contiguous slice of the canonical flat trial plan
	// for RunCampaignPartial: shard Index of Count. The zero value means
	// the whole plan. The slicing is host-independent, so Count processes
	// each running one shard cover every trial exactly once and
	// MergeCampaign reassembles a result byte-identical to an unsharded
	// run.
	Shard ShardSpec
	// EvictModules releases each injected module from the build cache
	// after its final trial completes, bounding peak cache residency on
	// large campaigns (see CacheStats). Off by default: with it off, every
	// built module stays resident for the Runner's lifetime.
	EvictModules bool
	// Compile lowers every frozen module to the interpreter's pre-decoded
	// register bytecode (interp.Compile) as part of the stage-1 build; the
	// module's trials then execute the compiled program instead of
	// tree-walking the IR. Results are bit-identical either way (asserted
	// by the compiled-vs-reference differential test), so the flag only
	// trades a one-time compile per module for much cheaper per-trial
	// dispatch. On by default via NewRunner; turn it off to run the
	// tree-walker as the reference implementation (CLI -compile=false).
	Compile bool
	// Precompile, when positive, launches that many background AOT
	// workers per trial batch: they walk the batch's distinct modules in
	// first-use order and push each through the build+compile cache ahead
	// of the execution frontier, overlapping stage-1 module construction
	// with stage-2 trial execution. Results are byte-identical at any
	// value (the cache's once-per-key build discipline makes prefetched
	// and demand builds indistinguishable); the prefetch window is
	// bounded, so EvictModules' peak-residency guarantee degrades by at
	// most 2*Precompile+2 modules. 0 (the default) disables prefetching.
	Precompile int
	// Events, when non-nil, receives the engine's typed event stream:
	// TrialDone and Progress after each completed trial, ShardMerged per
	// merged partial. Calls are serialized (never concurrent) but arrive
	// in completion order, not trial order. Session wraps this sink in a
	// channel subscription; set it directly only for low-level embedding.
	Events func(Event)

	mu         sync.Mutex // guards golden and spacePool
	progressMu sync.Mutex // serializes Events callbacks
	golden     map[string]*goldenInfo
	cache      *moduleCache
	spacePool  *mem.Pool
}

type goldenInfo struct {
	once sync.Once
	res  *interp.Result
	err  error
}

// NewRunner returns a Runner with the paper-matching defaults.
func NewRunner() *Runner {
	return &Runner{
		Runs:          2,
		TimeoutFactor: 20,
		MemConfig:     defaultMem(),
		Parallel:      1,
		Compile:       true,
		golden:        make(map[string]*goldenInfo),
		cache:         newModuleCache(),
	}
}

// applySpec copies the normalized Spec's declarative execution
// parameters onto the Runner, making the Spec the single source of the
// values plan construction and trial execution read. A persistent
// worker's Runner may serve Specs of different memory geometries across
// assignments: golden results are memoized under the geometry they ran
// with, so a geometry change drops the golden cache (like spaces()
// rebuilds the space pool) rather than serving baselines measured under
// a different address-space layout. Built modules are geometry-
// independent and stay cached.
func (r *Runner) applySpec(spec Spec) {
	r.Runs = spec.Runs
	r.TimeoutFactor = spec.TimeoutFactor
	if r.MemConfig != spec.Mem {
		r.mu.Lock()
		r.golden = make(map[string]*goldenInfo)
		r.mu.Unlock()
		r.MemConfig = spec.Mem
	}
}

// notify forwards one event to the Events sink, serialized.
func (r *Runner) notify(ev Event) {
	if r.Events == nil {
		return
	}
	r.progressMu.Lock()
	r.Events(ev)
	r.progressMu.Unlock()
}

// spaces returns the Runner's address-space pool for its current
// MemConfig. Trial VMs draw their spaces from it and return them after
// each run, so a campaign allocates roughly Parallel spaces total instead
// of one per trial; a reset space replays runs identically to a fresh one
// (mem.Space.Reset), so results are unaffected.
func (r *Runner) spaces() *mem.Pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spacePool == nil || r.spacePool.Config() != r.MemConfig.WithDefaults() {
		r.spacePool = mem.NewPool(r.MemConfig)
	}
	return r.spacePool
}

// compileModule lowers a frozen module for the fast interpreter path. A
// compile failure is not fatal — the module's trials simply run on the
// reference tree-walker, which is always semantically authoritative — so
// malformed-but-executable IR behaves exactly as it always has.
func (r *Runner) compileModule(m *ir.Module) *interp.Program {
	if !r.Compile {
		return nil
	}
	prog, err := interp.Compile(m)
	if err != nil {
		return nil
	}
	return prog
}

// Golden runs (and caches) the fault-free standard build of w. Safe for
// concurrent use; the build-and-run happens exactly once per workload.
func (r *Runner) Golden(w workloads.Workload) (*interp.Result, error) {
	r.mu.Lock()
	g, ok := r.golden[w.Name]
	if !ok {
		g = &goldenInfo{}
		r.golden[w.Name] = g
	}
	r.mu.Unlock()
	g.once.Do(func() {
		m, prog, err := r.base(w)
		if err != nil {
			g.err = err
			return
		}
		if r.Optimize {
			m = m.Clone()
			opt.Run(m)
			m.Freeze()
			prog = r.compileModule(m)
		}
		res := interp.Run(m, interp.Config{Externs: extlib.Base(), Mem: r.MemConfig, Prog: prog, SpacePool: r.spaces()})
		if res.Kind != interp.ExitNormal || res.Code != 0 {
			g.err = fmt.Errorf("harness: golden %s failed: %v code %d (%s)", w.Name, res.Kind, res.Code, res.Reason)
			return
		}
		g.res = res
	})
	return g.res, g.err
}

// module returns the cached executable module for (workload, variant,
// injection) and its compiled program (nil with Compile off), building
// both on first use (stage 1 of the engine). The returned module is
// frozen and, like the program, may back concurrent VMs.
func (r *Runner) module(w workloads.Workload, v Variant, inj *faultinject.Site) (*ir.Module, *interp.Program, error) {
	key := moduleKey{workload: w.Name, variant: v.Label()}
	if inj != nil {
		key.site = inj.String()
	}
	return r.cache.get(key, func() (*ir.Module, *interp.Program, error) { return r.buildVariant(w, v, inj) })
}

// base returns the cached untransformed, uninjected module of w, frozen
// and compiled. It seeds every variant build (faultinject.Apply clones
// it, Transform reads it) and site enumeration, so each workload is built
// from source exactly once per Runner.
func (r *Runner) base(w workloads.Workload) (*ir.Module, *interp.Program, error) {
	return r.cache.get(moduleKey{workload: w.Name, variant: "base"}, func() (*ir.Module, *interp.Program, error) {
		m := w.Build()
		m.Freeze()
		return m, r.compileModule(m), nil
	})
}

// buildVariant produces the executable module for (workload, variant,
// injection): inject (a clone of base), transform, optimize, freeze,
// compile. The stdapp/no-injection case returns the shared base (and its
// already-compiled program) rather than rebuilding it.
func (r *Runner) buildVariant(w workloads.Workload, v Variant, inj *faultinject.Site) (*ir.Module, *interp.Program, error) {
	bm, bprog, err := r.base(w)
	if err != nil {
		return nil, nil, err
	}
	m := bm
	if inj != nil {
		m, err = faultinject.Apply(m, *inj)
		if err != nil {
			return nil, nil, err
		}
	}
	if v.DPMR {
		xm, err := dpmr.Transform(m, dpmr.Config{
			Design:    v.Design,
			Diversity: v.Diversity,
			Policy:    v.Policy,
			Seed:      transformSeed,
		})
		if err != nil {
			return nil, nil, err
		}
		m = xm
	}
	if r.Optimize && m.Frozen() {
		// Uninjected, untransformed variant: the optimizer needs its own
		// mutable copy of the shared base.
		m = m.Clone()
	}
	if r.Optimize {
		opt.Run(m)
	}
	if m == bm {
		return bm, bprog, nil
	}
	m.Freeze()
	return m, r.compileModule(m), nil
}

// Outcome classifies one experiment run per §3.6.
type Outcome struct {
	Res *interp.Result
	// SF: the injected fault code executed at least once.
	SF bool
	// CO: literal correct output — the run produced exactly the golden
	// run's output and exit status.
	CO bool
	// NatDet: natural detection — a crash (trap) or application-level
	// error signalling (nonzero, non-golden exit code).
	NatDet bool
	// DpmrDet: DPMR replica-comparison detection.
	DpmrDet bool
	// T2DCycles: time to fault detection (total − time to first
	// successful injection), valid when Detected() and SF.
	T2DCycles uint64
	// ConsistViol: the offline consistency checker flagged the trial's
	// shared-memory trace (concurrent kind only). Independent of the
	// §3.6 classes above — a violating trial can still be CO, which is
	// exactly the silent failure the trace checker surfaces.
	ConsistViol bool
}

// Covered reports CO ∨ NatDet ∨ DpmrDet (Equation 3.2).
func (o Outcome) Covered() bool { return o.CO || o.NatDet || o.DpmrDet }

// Detected reports any detection.
func (o Outcome) Detected() bool { return o.NatDet || o.DpmrDet }

// Trial reduces the outcome to its serializable classification fields —
// everything campaign aggregation reads, and exactly what a sharded run
// ships between processes.
func (o Outcome) Trial() TrialOutcome {
	return TrialOutcome{SF: o.SF, CO: o.CO, NatDet: o.NatDet, DpmrDet: o.DpmrDet, T2DCycles: o.T2DCycles, ConsistViol: o.ConsistViol}
}

// TrialOutcome is the §3.6 classification of one campaign trial in
// serializable form. It is the unit of the partial-result format: a shard
// runs a contiguous range of the canonical trial plan and emits one
// TrialOutcome per trial; MergeCampaign aggregates the reassembled
// sequence exactly as an unsharded run would, so the classification here
// must carry every field aggregation touches (and nothing run-local like
// raw output buffers).
type TrialOutcome struct {
	SF        bool   `json:"sf,omitempty"`
	CO        bool   `json:"co,omitempty"`
	NatDet    bool   `json:"natDet,omitempty"`
	DpmrDet   bool   `json:"dpmrDet,omitempty"`
	T2DCycles uint64 `json:"t2dCycles,omitempty"`
	// ConsistViol is the concurrent kind's trace-checker verdict; always
	// false for injection-campaign trials.
	ConsistViol bool `json:"consistViol,omitempty"`
}

// Covered reports CO ∨ NatDet ∨ DpmrDet (Equation 3.2).
func (o TrialOutcome) Covered() bool { return o.CO || o.NatDet || o.DpmrDet }

// Detected reports any detection.
func (o TrialOutcome) Detected() bool { return o.NatDet || o.DpmrDet }

// RunOnce executes one experiment (W, C, D, I, RN). Safe for concurrent
// use: the module comes from the shared build cache and every run gets
// its own VM.
func (r *Runner) RunOnce(w workloads.Workload, v Variant, inj *faultinject.Site, rn int) (Outcome, error) {
	return r.runOnce(w, v, inj, rn, r.spaces())
}

// runOnce is RunOnce with the space pool resolved by the caller, so the
// campaign loops pay the Runner-mutex lookup once per batch rather than
// once per trial.
func (r *Runner) runOnce(w workloads.Workload, v Variant, inj *faultinject.Site, rn int, pool *mem.Pool) (Outcome, error) {
	golden, err := r.Golden(w)
	if err != nil {
		return Outcome{}, err
	}
	m, prog, err := r.module(w, v, inj)
	if err != nil {
		return Outcome{}, err
	}
	externs := extlib.Base()
	if v.DPMR {
		externs = extlib.Wrapped(v.Design)
	}
	res := interp.Run(m, interp.Config{
		Externs:   externs,
		Mem:       r.MemConfig,
		Seed:      int64(rn) + 1,
		StepLimit: golden.Steps * r.TimeoutFactor * 5, // DPMR variants are slower per step budget
		Prog:      prog,
		SpacePool: pool,
	})
	return r.classify(golden, res), nil
}

func (r *Runner) classify(golden, res *interp.Result) Outcome {
	o := Outcome{Res: res, SF: res.FaultSeen}
	switch res.Kind {
	case interp.ExitNormal:
		if res.Code == golden.Code && bytes.Equal(res.Output, golden.Output) {
			o.CO = true
		} else if res.Code != 0 && res.Code != golden.Code {
			// Application-dependent error signalling (§3.6 natural
			// detection: "an exit with an error-identifying return
			// value").
			o.NatDet = true
		}
	case interp.ExitTrap:
		o.NatDet = true
	case interp.ExitDetect:
		o.DpmrDet = true
	case interp.ExitTimeout:
		// Neither covered nor detected.
	case interp.ExitError:
		// Harness bug: surface loudly via NatDet=false, CO=false.
	}
	if o.Detected() && res.FaultSeen && res.Cycles >= res.FaultCycle {
		o.T2DCycles = res.Cycles - res.FaultCycle
	}
	return o
}

// ---------------------------------------------------------------------------
// Aggregated metrics

// CoverageCell aggregates coverage for one (workload, variant) pair:
// disjoint fractions of successfully injected experiments (Figures
// 3.6–3.9 stacked bars).
type CoverageCell struct {
	N       int     // successful injections observed
	CO      float64 // correct output
	NatDet  float64 // natural detection (and not CO)
	DpmrDet float64 // DPMR detection (and not CO)
	// MeanT2DMS averages detection latency over detected runs
	// (Tables 3.3/3.4/4.5/4.6).
	MeanT2DMS float64
	detN      int
}

// Coverage returns total coverage.
func (c CoverageCell) Coverage() float64 { return c.CO + c.NatDet + c.DpmrDet }

func (c *CoverageCell) add(o TrialOutcome) {
	if !o.SF {
		return
	}
	c.N++
	switch {
	case o.CO:
		c.CO++
	case o.DpmrDet:
		c.DpmrDet++
	case o.NatDet:
		c.NatDet++
	}
	if o.Detected() && !o.CO {
		c.MeanT2DMS += float64(o.T2DCycles) / CyclesPerMS
		c.detN++
	}
}

func (c *CoverageCell) finalize() {
	if c.N > 0 {
		c.CO /= float64(c.N)
		c.NatDet /= float64(c.N)
		c.DpmrDet /= float64(c.N)
	}
	if c.detN > 0 {
		c.MeanT2DMS /= float64(c.detN)
	}
}

// CampaignResult holds per-(workload, variant) coverage plus the
// conditional-coverage aggregate (Figures 3.8/3.9: combined across
// applications, conditioned on StdNotAllDet).
type CampaignResult struct {
	Kind        faultinject.Kind
	Workloads   []string
	Variants    []Variant
	Cells       map[string]map[string]*CoverageCell // variant label → workload → cell
	Conditional map[string]*CoverageCell            // variant label → aggregate
}

// Cell retrieves a coverage cell.
func (cr *CampaignResult) Cell(variant Variant, workload string) *CoverageCell {
	return cr.Cells[variant.Label()][workload]
}

// siteJob records where one injection site's trials live in the flat
// canonical plan.
type siteJob struct {
	site faultinject.Site
	std  int   // index of the first stdapp trial
	vars []int // per variant: first trial index, or -1 (reuses stdapp)
}

// campaignPlan is the canonical flat trial layout of a campaign. It is a
// pure function of the normalized campaign Spec: two processes planning
// the same Spec produce identical plans, which is what makes contiguous
// index ranges a host-independent sharding unit. The fingerprint hashes
// the Spec's canonical JSON plus the enumerated sites, so MergeCampaign
// can refuse partial results produced from a different plan.
type campaignPlan struct {
	kind        faultinject.Kind
	runs        int
	workloads   []string
	variants    []Variant
	trials      []trial
	jobs        [][]siteJob // per workload, in workload order
	fingerprint string
}

// planCampaign lays the (workload, site, variant, run) grid out flat in
// canonical order from the normalized campaign Spec. Each site gets Runs
// stdapp trials (they feed both the stdapp rows and the StdNotAllDet
// condition) plus Runs trials per DPMR variant; non-DPMR variants reuse
// the stdapp outcomes exactly as the serial engine always did.
func (r *Runner) planCampaign(spec Spec) (*campaignPlan, error) {
	ws, err := spec.resolveWorkloads()
	if err != nil {
		return nil, err
	}
	variants, err := spec.resolveVariants()
	if err != nil {
		return nil, err
	}
	kind, err := parseInject(spec.Inject)
	if err != nil {
		return nil, err
	}
	canon, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	p := &campaignPlan{kind: kind, runs: spec.Runs, variants: variants, jobs: make([][]siteJob, len(ws))}
	h := sha256.New()
	fmt.Fprintf(h, "dpmr campaign plan v2\nspec %s\n", canon)
	for wi, w := range ws {
		p.workloads = append(p.workloads, w.Name)
		bm, _, err := r.base(w)
		if err != nil {
			return nil, err
		}
		sites := sampleSites(faultinject.Enumerate(bm, kind), spec.MaxSites)
		fmt.Fprintf(h, "workload %s\n", w.Name)
		for _, site := range sites {
			site := site
			fmt.Fprintf(h, "site %s\n", site)
			job := siteJob{site: site, std: len(p.trials), vars: make([]int, len(variants))}
			for rn := 0; rn < spec.Runs; rn++ {
				p.trials = append(p.trials, trial{w: w, v: Stdapp(), inj: &site, rn: rn})
			}
			for vi, v := range variants {
				job.vars[vi] = -1
				if v.DPMR {
					job.vars[vi] = len(p.trials)
					for rn := 0; rn < spec.Runs; rn++ {
						p.trials = append(p.trials, trial{w: w, v: v, inj: &site, rn: rn})
					}
				}
			}
			p.jobs[wi] = append(p.jobs[wi], job)
		}
	}
	fmt.Fprintf(h, "trials %d\n", len(p.trials))
	p.fingerprint = hex.EncodeToString(h.Sum(nil))
	return p, nil
}

// execTrials runs plan.trials[lo:hi] on the worker pool and returns their
// classifications, failing with the canonical (variant, workload, site)
// naming of the first errored trial. When ctx is cancelled mid-range,
// dispatch stops, in-flight trials drain, and execTrials returns the
// completed prefix of outcomes together with ctx.Err() — the
// completed-prefix contract graceful cancellation is built on.
func (r *Runner) execTrials(ctx context.Context, plan *campaignPlan, lo, hi int) ([]TrialOutcome, error) {
	trials := plan.trials[lo:hi]
	outcomes, errs, done := r.runTrials(ctx, trials)
	for i := 0; i < done; i++ {
		if err := errs[i]; err != nil {
			t := trials[i]
			return nil, fmt.Errorf("trial %d: %s %s %s: %w", lo+i, t.v.Label(), t.w.Name, *t.inj, err)
		}
	}
	if done < len(trials) {
		return outcomes[:done], context.Cause(ctx)
	}
	return outcomes, nil
}

// aggregate folds the full plan's trial outcomes into a CampaignResult in
// canonical order: identical iteration order (and thus identical
// floating-point accumulation) to the serial engine, regardless of how
// the outcomes were produced — one process, many workers, or merged
// shards.
func aggregate(plan *campaignPlan, outcomes []TrialOutcome) *CampaignResult {
	cr := &CampaignResult{
		Kind:        plan.kind,
		Workloads:   plan.workloads,
		Variants:    plan.variants,
		Cells:       make(map[string]map[string]*CoverageCell),
		Conditional: make(map[string]*CoverageCell),
	}
	for _, v := range plan.variants {
		cr.Cells[v.Label()] = make(map[string]*CoverageCell)
		cr.Conditional[v.Label()] = &CoverageCell{}
		for _, wname := range plan.workloads {
			cr.Cells[v.Label()][wname] = &CoverageCell{}
		}
	}
	for wi, wname := range plan.workloads {
		for _, job := range plan.jobs[wi] {
			stdOutcomes := outcomes[job.std : job.std+plan.runs]
			// Per-injection StdNotAllDet: at least one stdapp run with
			// incorrect output and no natural detection (Table 3.2).
			stdNotAllDet := false
			for _, o := range stdOutcomes {
				if o.SF && !o.CO && !o.NatDet {
					stdNotAllDet = true
				}
			}
			for vi, v := range plan.variants {
				outs := stdOutcomes
				if job.vars[vi] >= 0 {
					outs = outcomes[job.vars[vi] : job.vars[vi]+plan.runs]
				}
				cell := cr.Cells[v.Label()][wname]
				cond := cr.Conditional[v.Label()]
				for _, o := range outs {
					cell.add(o)
					if stdNotAllDet {
						cond.add(o)
					}
				}
			}
		}
	}
	for _, byW := range cr.Cells {
		for _, c := range byW {
			c.finalize()
		}
	}
	for _, c := range cr.Conditional {
		c.finalize()
	}
	return cr
}

// validate rejects Runner configurations the campaign drivers would
// otherwise silently misinterpret: a non-positive worker count, or a
// shard outside [0, Count).
func (r *Runner) validate() error {
	if r.Parallel < 1 {
		return fmt.Errorf("harness: Parallel = %d: campaigns need at least 1 worker", r.Parallel)
	}
	return r.Shard.Validate()
}

// cancelled reports whether err is the context's cancellation (rather
// than a trial failure).
func cancelled(ctx context.Context, err error) bool {
	return ctx.Err() != nil && errors.Is(err, context.Cause(ctx))
}

// RunCampaign executes the full injection campaign the Spec describes:
// for every workload, every enumerated site of the fault kind, every
// variant, Runs runs. Trials execute on the Runner's worker pool
// (Parallel goroutines), and outcomes are aggregated in canonical trial
// order, so the result — and any report rendered from it — is
// byte-identical at every worker count.
//
// Cancelling ctx stops dispatch, drains in-flight trials, and returns
// ctx's error; callers that want the completed-prefix partial result of
// a cancelled campaign use RunCampaignPartial (or a Session, which does
// so automatically).
//
// RunCampaign runs the whole plan: a Runner configured with a proper
// shard (Count > 1) is refused rather than silently truncated — use
// RunCampaignPartial and MergeCampaign for sharded execution.
func (r *Runner) RunCampaign(ctx context.Context, spec Spec) (*CampaignResult, error) {
	spec, err := spec.normalizedAs(SpecCampaign, "RunCampaign")
	if err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	if !r.Shard.IsZero() && r.Shard != (ShardSpec{Index: 0, Count: 1}) {
		return nil, fmt.Errorf("harness: RunCampaign with Shard %s: a shard covers only part of the plan; use RunCampaignPartial and MergeCampaign", r.Shard)
	}
	r.applySpec(spec)
	plan, err := r.planCampaign(spec)
	if err != nil {
		return nil, err
	}
	outcomes, err := r.execTrials(ctx, plan, 0, len(plan.trials))
	if err != nil {
		return nil, err
	}
	return aggregate(plan, outcomes), nil
}

func sampleSites(sites []faultinject.Site, max int) []faultinject.Site {
	if max <= 0 || len(sites) <= max {
		return sites
	}
	out := make([]faultinject.Site, 0, max)
	step := float64(len(sites)) / float64(max)
	for i := 0; i < max; i++ {
		out = append(out, sites[int(float64(i)*step)])
	}
	return out
}

// PlanTrials reports the trial count of the Spec's canonical flat plan —
// the unit sharding and the coordinator schedule over. Campaign,
// overhead, and concurrent Specs all plan; experiment Specs run several
// plans and are refused.
func (r *Runner) PlanTrials(spec Spec) (int, error) {
	n, err := spec.Normalized()
	if err != nil {
		return 0, err
	}
	switch n.Kind {
	case SpecCampaign:
		r.applySpec(n)
		plan, err := r.planCampaign(n)
		if err != nil {
			return 0, err
		}
		return len(plan.trials), nil
	case SpecOverhead:
		plan, err := planOverhead(n)
		if err != nil {
			return 0, err
		}
		return len(plan.trials), nil
	case SpecConcurrent:
		plan, err := planConcurrent(n)
		if err != nil {
			return 0, err
		}
		return len(plan.trials), nil
	default:
		return 0, fmt.Errorf("harness: PlanTrials: %s specs run several plans; plan their campaigns/measurements individually", n.Kind)
	}
}
