package extlib_test

import (
	"strings"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

// vmWith builds a VM over an empty module with the given externs and a
// few heap strings prepared.
func vmWith(t *testing.T, externs map[string]interp.Extern) *interp.VM {
	t.Helper()
	m := ir.NewModule("ext")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	b.Ret(b.I64(0))
	vm, err := interp.NewVM(m, interp.Config{Externs: externs})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func putString(t *testing.T, vm *interp.VM, s string) uint64 {
	t.Helper()
	addr, trap := vm.Space.Malloc(uint64(len(s)) + 1)
	if trap != nil {
		t.Fatal(trap)
	}
	if trap := vm.Space.WriteBytes(addr, append([]byte(s), 0)); trap != nil {
		t.Fatal(trap)
	}
	return addr
}

func TestSigsDeclare(t *testing.T) {
	m := ir.NewModule("decl")
	if err := extlib.Declare(m, "memcpy", "strcpy", "qsort_i64"); err != nil {
		t.Fatal(err)
	}
	if m.Func("memcpy") == nil || !m.Func("memcpy").External {
		t.Error("memcpy not declared external")
	}
	if err := extlib.Declare(m, "frobnicate"); err == nil {
		t.Error("unknown extern must error")
	}
	// Redeclaring is idempotent.
	if err := extlib.Declare(m, "memcpy"); err != nil {
		t.Error(err)
	}
}

func TestBaseStrcmpSemantics(t *testing.T) {
	base := extlib.Base()
	vm := vmWith(t, base)
	a := putString(t, vm, "apple")
	b2 := putString(t, vm, "apricot")
	eq := putString(t, vm, "apple")
	r, err := base["strcmp"](vm, []uint64{a, b2})
	if err != nil {
		t.Fatal(err)
	}
	if int64(r) >= 0 {
		t.Errorf("strcmp(apple, apricot) = %d, want < 0", int64(r))
	}
	r, err = base["strcmp"](vm, []uint64{a, eq})
	if err != nil || r != 0 {
		t.Errorf("strcmp equal = %d (%v)", int64(r), err)
	}
	r, err = base["strcmp"](vm, []uint64{b2, a})
	if err != nil || int64(r) <= 0 {
		t.Errorf("strcmp(apricot, apple) = %d, want > 0", int64(r))
	}
}

func TestBaseAtoiParsing(t *testing.T) {
	base := extlib.Base()
	vm := vmWith(t, base)
	tests := map[string]int64{
		"42":      42,
		"  -17xy": -17,
		"+8":      8,
		"abc":     0,
		"":        0,
	}
	for s, want := range tests {
		addr := putString(t, vm, s)
		r, err := base["atoi"](vm, []uint64{addr})
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if int64(r) != want {
			t.Errorf("atoi(%q) = %d, want %d", s, int64(r), want)
		}
	}
}

func TestBaseStrcpyAndStrlen(t *testing.T) {
	base := extlib.Base()
	vm := vmWith(t, base)
	src := putString(t, vm, "hello")
	dst, _ := vm.Space.Malloc(16)
	r, err := base["strcpy"](vm, []uint64{dst, src})
	if err != nil {
		t.Fatal(err)
	}
	if r != dst {
		t.Error("strcpy must return dest")
	}
	n, err := base["strlen"](vm, []uint64{dst})
	if err != nil || n != 5 {
		t.Errorf("strlen after copy = %d (%v)", n, err)
	}
}

func TestBaseExitAndAbort(t *testing.T) {
	base := extlib.Base()
	vm := vmWith(t, base)
	_, err := base["exit"](vm, []uint64{3})
	req, ok := err.(*interp.ExitRequest)
	if !ok || req.Code != 3 {
		t.Errorf("exit: %v", err)
	}
	_, err = base["abort"](vm, nil)
	if _, ok := err.(*interp.ExitRequest); !ok {
		t.Errorf("abort: %v", err)
	}
}

func TestWrappedStrcmpDetectsReplicaMismatch(t *testing.T) {
	// The SDS strcmp wrapper checks exactly the bytes it reads against
	// the replica strings (§3.1.5): a mismatched replica byte within the
	// compared prefix is a detection; one beyond it is not.
	w := extlib.Wrapped(dpmr.SDS)
	vm := vmWith(t, w)
	a := putString(t, vm, "abcdef")
	aRep := putString(t, vm, "abcdef")
	b2 := putString(t, vm, "abX")
	bRep := putString(t, vm, "abX")
	name := dpmr.DefaultWrapperName("strcmp")
	// Clean: no detection.
	if _, err := w[name](vm, []uint64{a, aRep, 0, b2, bRep, 0}); err != nil {
		t.Fatalf("clean strcmp: %v", err)
	}
	// Corrupt a's replica inside the compared prefix (index 2; comparison
	// stops at index 2 where 'c' != 'X').
	if trap := vm.Space.Store(aRep+2, 1, 'z'); trap != nil {
		t.Fatal(trap)
	}
	_, err := w[name](vm, []uint64{a, aRep, 0, b2, bRep, 0})
	if _, ok := err.(*interp.Detection); !ok {
		t.Errorf("corrupted replica prefix must detect, got %v", err)
	}
	// Restore, then corrupt beyond the compared prefix: not read, so not
	// detected (exactly the emulation subtlety the paper describes).
	_ = vm.Space.Store(aRep+2, 1, 'c')
	_ = vm.Space.Store(aRep+5, 1, 'z')
	if _, err := w[name](vm, []uint64{a, aRep, 0, b2, bRep, 0}); err != nil {
		t.Errorf("mismatch beyond compared prefix must not detect: %v", err)
	}
}

func TestWrappedStrcpyDeliversROP(t *testing.T) {
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		w := extlib.Wrapped(design)
		vm := vmWith(t, w)
		src := putString(t, vm, "hi")
		srcRep := putString(t, vm, "hi")
		dst, _ := vm.Space.Malloc(8)
		dstRep, _ := vm.Space.Malloc(8)
		slot, _ := vm.Space.Malloc(16) // rvSop / rvRopPtr
		name := dpmr.DefaultWrapperName("strcpy")
		var args []uint64
		if design == dpmr.SDS {
			args = []uint64{slot, dst, dstRep, 0, src, srcRep, 0}
		} else {
			args = []uint64{slot, dst, dstRep, src, srcRep}
		}
		r, err := w[name](vm, args)
		if err != nil {
			t.Fatalf("%v: %v", design, err)
		}
		if r != dst {
			t.Errorf("%v: return %#x, want dest", design, r)
		}
		rop, _ := vm.Space.Load(slot, 8)
		if rop != dstRep {
			t.Errorf("%v: rop = %#x, want dest replica %#x", design, rop, dstRep)
		}
		// Replica must carry the copied bytes.
		got, _ := vm.Space.ReadBytes(dstRep, 3)
		if string(got) != "hi\x00" {
			t.Errorf("%v: replica content %q", design, got)
		}
	}
}

func TestWrappedMemcpyChecksSource(t *testing.T) {
	w := extlib.Wrapped(dpmr.MDS)
	vm := vmWith(t, w)
	src, _ := vm.Space.Malloc(8)
	srcRep, _ := vm.Space.Malloc(8)
	dst, _ := vm.Space.Malloc(8)
	dstRep, _ := vm.Space.Malloc(8)
	_ = vm.Space.Store(src, 8, 0x1122)
	_ = vm.Space.Store(srcRep, 8, 0x1122)
	name := dpmr.DefaultWrapperName("memcpy")
	if _, err := w[name](vm, []uint64{dst, dstRep, src, srcRep, 8}); err != nil {
		t.Fatal(err)
	}
	v, _ := vm.Space.Load(dstRep, 8)
	if v != 0x1122 {
		t.Error("replica dest not mirrored")
	}
	// Diverged source replica → detection.
	_ = vm.Space.Store(srcRep, 8, 0x9999)
	_, err := w[name](vm, []uint64{dst, dstRep, src, srcRep, 8})
	if _, ok := err.(*interp.Detection); !ok {
		t.Errorf("diverged source must detect, got %v", err)
	}
}

func TestArgvExterns(t *testing.T) {
	w := extlib.Wrapped(dpmr.SDS)
	vm := vmWith(t, w)
	// Fake argv with two strings.
	s0 := putString(t, vm, "prog")
	s1 := putString(t, vm, "arg1")
	argv, _ := vm.Space.Malloc(16)
	_ = vm.Space.Store(argv, 8, s0)
	_ = vm.Space.Store(argv+8, 8, s1)

	rep, err := w[dpmr.ArgvRepExtern](vm, []uint64{2, argv})
	if err != nil {
		t.Fatal(err)
	}
	// SDS: replica argv holds identical pointer values (Figure 3.1).
	p0, _ := vm.Space.Load(rep, 8)
	if p0 != s0 {
		t.Errorf("SDS argv_r[0] = %#x, want %#x", p0, s0)
	}
	sdw, err := w[dpmr.ArgvSdwExtern](vm, []uint64{2, argv, rep})
	if err != nil {
		t.Fatal(err)
	}
	// Shadow entry 1 ROP points at a replica of "arg1".
	rop, _ := vm.Space.Load(sdw+16, 8)
	if rop == s1 || rop == 0 {
		t.Errorf("shadow rop must point at a fresh replica string, got %#x", rop)
	}
	got, trap := vm.Space.ReadBytes(rop, 5)
	if trap != nil || string(got) != "arg1\x00" {
		t.Errorf("replica string = %q (%v)", got, trap)
	}

	// MDS: replica argv holds pointers to replica strings.
	wm := extlib.Wrapped(dpmr.MDS)
	repM, err := wm[dpmr.ArgvRepExtern](vm, []uint64{2, argv})
	if err != nil {
		t.Fatal(err)
	}
	pm, _ := vm.Space.Load(repM, 8)
	if pm == s0 {
		t.Error("MDS argv_r[0] must be a replica pointer, not the app pointer")
	}
}

func TestWrapperSetCoversAllExterns(t *testing.T) {
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		w := extlib.Wrapped(design)
		for name := range extlib.Sigs() {
			wn := dpmr.DefaultWrapperName(name)
			if _, ok := w[wn]; !ok {
				t.Errorf("%v: missing wrapper for %s", design, name)
			}
		}
	}
}

func TestExternsFor(t *testing.T) {
	if m := extlib.ExternsFor(false, dpmr.SDS); m["memcpy"] == nil {
		t.Error("base map must carry plain names")
	}
	if m := extlib.ExternsFor(true, dpmr.MDS); m[dpmr.DefaultWrapperName("memcpy")] == nil {
		t.Error("wrapped map must carry wrapper names")
	}
}

func TestUnterminatedStringErrors(t *testing.T) {
	base := extlib.Base()
	vm := vmWith(t, base)
	// A string that runs into the guard gap traps rather than hanging.
	addr, _ := vm.Space.Malloc(64)
	for i := uint64(0); i < 64; i++ {
		_ = vm.Space.Store(addr+i, 1, 'x')
	}
	_, err := base["strlen"](vm, []uint64{addr})
	if err == nil {
		t.Skip("string found a terminator in adjacent heap bytes (acceptable)")
	}
	if !strings.Contains(err.Error(), "trap") && !strings.Contains(err.Error(), "unterminated") {
		t.Errorf("unexpected error: %v", err)
	}
}
