package extlib_test

import (
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

func TestBaseMemcmp(t *testing.T) {
	base := extlib.Base()
	vm := vmWith(t, base)
	a := putString(t, vm, "abcdef")
	b2 := putString(t, vm, "abcxef")
	r, err := base["memcmp"](vm, []uint64{a, b2, 3})
	if err != nil || r != 0 {
		t.Errorf("equal prefix: %d (%v)", int64(r), err)
	}
	r, err = base["memcmp"](vm, []uint64{a, b2, 6})
	if err != nil || int64(r) >= 0 {
		t.Errorf("differing region: %d (%v)", int64(r), err)
	}
}

func TestBaseStrcatAndCalloc(t *testing.T) {
	base := extlib.Base()
	vm := vmWith(t, base)
	dst, _ := vm.Space.Malloc(32)
	_ = vm.Space.WriteBytes(dst, append([]byte("foo"), 0))
	src := putString(t, vm, "bar")
	r, err := base["strcat"](vm, []uint64{dst, src})
	if err != nil || r != dst {
		t.Fatalf("strcat: %v", err)
	}
	got, _ := vm.Space.ReadBytes(dst, 7)
	if string(got) != "foobar\x00" {
		t.Errorf("strcat result %q", got)
	}
	addr, err := base["calloc"](vm, []uint64{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i += 8 {
		v, _ := vm.Space.Load(addr+i, 8)
		if v != 0 {
			t.Errorf("calloc byte %d not zeroed", i)
		}
	}
}

func TestWrappedCallocAllocatesReplica(t *testing.T) {
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		w := extlib.Wrapped(design)
		vm := vmWith(t, w)
		slot, _ := vm.Space.Malloc(16)
		app, err := w[dpmr.DefaultWrapperName("calloc")](vm, []uint64{slot, 3, 8})
		if err != nil {
			t.Fatalf("%v: %v", design, err)
		}
		rop, _ := vm.Space.Load(slot, 8)
		if rop == 0 || rop == app {
			t.Errorf("%v: replica pointer %#x invalid (app %#x)", design, rop, app)
		}
		v, trap := vm.Space.Load(rop, 8)
		if trap != nil || v != 0 {
			t.Errorf("%v: replica not zeroed", design)
		}
	}
}

func TestWrappedMemcmpChecksOnlyReadBytes(t *testing.T) {
	w := extlib.Wrapped(dpmr.MDS)
	vm := vmWith(t, w)
	a := putString(t, vm, "axz")
	aR := putString(t, vm, "axz")
	b2 := putString(t, vm, "ayz")
	bR := putString(t, vm, "ayz")
	name := dpmr.DefaultWrapperName("memcmp")
	// Comparison stops at index 1 ('x' vs 'y'): a replica mismatch at
	// index 2 is never read, so no detection.
	_ = vm.Space.Store(aR+2, 1, 'Q')
	r, err := w[name](vm, []uint64{a, aR, b2, bR, 3})
	if err != nil {
		t.Fatalf("unread replica byte must not detect: %v", err)
	}
	if int64(r) >= 0 {
		t.Errorf("memcmp sign: %d", int64(r))
	}
	// A mismatch inside the read prefix detects.
	_ = vm.Space.Store(aR, 1, 'Z')
	if _, err := w[name](vm, []uint64{a, aR, b2, bR, 3}); err == nil {
		t.Error("read replica mismatch must detect")
	}
}

// End-to-end: a program using the batch-2 externs behaves identically
// under DPMR.
func TestExtraExternsEndToEnd(t *testing.T) {
	m := ir.NewModule("extra")
	if err := extlib.Declare(m, "calloc", "strcat", "memcmp", "memmove", "puts"); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	buf := b.Call("calloc", b.I64(4), b.I64(8))
	for i, c := range []byte("hi") {
		b.Store(b.Index(buf, b.I64(int64(i))), b.I8(int64(c)))
	}
	tail := b.MallocN(ir.I8, b.I64(8))
	for i, c := range []byte("-there") {
		b.Store(b.Index(tail, b.I64(int64(i))), b.I8(int64(c)))
	}
	b.Store(b.Index(tail, b.I64(6)), b.I8(0))
	cat := b.Call("strcat", buf, tail)
	b.Call("puts", cat)
	// memmove within the same buffer (overlapping regions).
	b.Call("memmove", b.Index(buf, b.I64(2)), buf, b.I64(8))
	b.Call("puts", buf)
	cmp := b.Call("memcmp", buf, tail, b.I64(3))
	b.Free(buf)
	b.Free(tail)
	b.Ret(cmp)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	golden := interp.Run(m, interp.Config{Externs: extlib.Base()})
	if golden.Kind != interp.ExitNormal {
		t.Fatalf("golden: %v (%s)", golden.Kind, golden.Reason)
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xm, err := dpmr.Transform(m, dpmr.Config{Design: design})
		if err != nil {
			t.Fatalf("%v: %v", design, err)
		}
		res := interp.Run(xm, interp.Config{Externs: extlib.Wrapped(design)})
		if res.Kind != interp.ExitNormal || res.Code != golden.Code ||
			string(res.Output) != string(golden.Output) {
			t.Errorf("%v: diverged: %v code %d out %q (golden %d %q) %s",
				design, res.Kind, res.Code, res.Output, golden.Code, golden.Output, res.Reason)
		}
	}
}
