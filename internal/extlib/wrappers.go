package extlib

import (
	"fmt"

	"dpmr/internal/dpmr"
	"dpmr/internal/interp"
	"dpmr/internal/shadow"
)

// Wrapped returns the external function implementations for a
// DPMR-transformed module under the given design, keyed by wrapper name
// (dpmr.DefaultWrapperName). It also includes the runtime argv support
// externs of §3.1.1.
//
// Wrapper argument layouts follow the augmented function types exactly:
// under SDS every pointer parameter p expands to (p, p_r, p_s) and
// pointer-returning functions receive a leading rvSop; under MDS p expands
// to (p, p_r) with a leading rvRopPtr (§2.8, §4.3).
func Wrapped(design shadow.Design) map[string]interp.Extern {
	sds := design == shadow.SDS
	w := func(name string) string { return dpmr.DefaultWrapperName(name) }

	// idx computes positional offsets: a pointer param occupies k slots.
	k := 2
	if sds {
		k = 3
	}

	m := map[string]interp.Extern{}

	// memcpy(dest, src, n): reads src (load-checked), writes dest
	// (mirrored to dest_r). Copying pointer-containing memory would need
	// the §3.1.5 shadow-size parameter; this library's memcpy supports
	// byte data, which is all the workloads move.
	m[w("memcpy")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		dest, destR := a[0], a[1]
		src, srcR := a[k], a[k+1]
		n := a[2*k]
		if sds && a[2] != 0 {
			return 0, fmt.Errorf("memcpy wrapper: pointer-bearing destination unsupported (needs sdwSize, §3.1.5)")
		}
		if err := checkRegion(vm, "memcpy", src, srcR, n); err != nil {
			return 0, err
		}
		if err := copyRegion(vm, dest, src, n); err != nil {
			return 0, err
		}
		return 0, copyRegion(vm, destR, dest, n)
	}

	// memset(dest, c, n): mirrored store.
	m[w("memset")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		dest, destR := a[0], a[1]
		c := byte(a[k])
		n := a[k+1]
		if err := memsetRegion(vm, dest, c, n); err != nil {
			return 0, err
		}
		return 0, memsetRegion(vm, destR, c, n)
	}

	// strcpy(dest, src) → dest: Figure 2.11 verbatim — verify src against
	// its replica, perform the copy, mirror the write, deliver the return
	// value's ROP/NSOP.
	m[w("strcpy")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		// SDS: rvSop, dest, dest_r, dest_s, src, src_r, src_s
		// MDS: rvRopPtr, dest, dest_r, src, src_r
		rv := a[0]
		dest, destR := a[1], a[2]
		src, srcR := a[1+k], a[2+k]
		s, err := readCString(vm, src)
		if err != nil {
			return 0, err
		}
		if err := checkRegion(vm, "strcpy", src, srcR, uint64(len(s))+1); err != nil {
			return 0, err
		}
		if trap := vm.Space.WriteBytes(dest, append(s, 0)); trap != nil {
			return 0, trap
		}
		if trap := vm.Space.WriteBytes(destR, append(s, 0)); trap != nil {
			return 0, trap
		}
		vm.Charge(uint64(len(s)))
		if sds {
			destS := a[3]
			if trap := vm.Space.Store(rv, 8, destR); trap != nil { // rvSop->rop
				return 0, trap
			}
			if trap := vm.Space.Store(rv+8, 8, destS); trap != nil { // rvSop->nsop
				return 0, trap
			}
		} else {
			if trap := vm.Space.Store(rv, 8, destR); trap != nil { // *rvRopPtr
				return 0, trap
			}
		}
		return dest, nil
	}

	// strlen(s): reads s up to and including the terminator.
	m[w("strlen")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		s, sR := a[0], a[1]
		str, err := readCString(vm, s)
		if err != nil {
			return 0, err
		}
		if err := checkRegion(vm, "strlen", s, sR, uint64(len(str))+1); err != nil {
			return 0, err
		}
		return uint64(len(str)), nil
	}

	// strcmp(a, b): emulates the parse so it checks exactly the bytes
	// read (§3.1.5 — input strings need not be terminated).
	m[w("strcmp")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		return strcmpImpl(vm, a[0], a[k], a[1], a[k+1], true)
	}

	// puts(s): reads s, checks it, emits output.
	m[w("puts")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		s, sR := a[0], a[1]
		str, err := readCString(vm, s)
		if err != nil {
			return 0, err
		}
		if err := checkRegion(vm, "puts", s, sR, uint64(len(str))+1); err != nil {
			return 0, err
		}
		vm.AppendOutput(append(str, '\n'))
		return 0, nil
	}

	// atoi(s): checks exactly the consumed prefix.
	m[w("atoi")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		s, sR := a[0], a[1]
		str, err := readCString(vm, s)
		if err != nil {
			return 0, err
		}
		v, consumed := atoiParse(str)
		if err := checkRegion(vm, "atoi", s, sR, uint64(consumed)); err != nil {
			return 0, err
		}
		return uint64(v), nil
	}

	m[w("abort")] = Base()["abort"]
	m[w("exit")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		return 0, &interp.ExitRequest{Code: int64(a[0])}
	}

	// qsort_i64(base, n, cmp): sorts the application array, mirroring
	// every swap into the replica array; the comparator is transformed
	// code, so its loads carry their own checks (§3.1.5/§4.3 note that
	// qsort's load comparisons can be left to the comparison function).
	m[w("qsort_i64")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		base, baseR := a[0], a[1]
		n := a[k]
		cmp := a[k+1]
		return 0, qsortRun(vm, base, baseR, n, cmp, design)
	}

	wrapExtra(m, sds, k, w)

	// Runtime argv support (§3.1.1, Figure 3.1).
	m[dpmr.ArgvRepExtern] = argvRep(design)
	if sds {
		m[dpmr.ArgvSdwExtern] = argvSdw()
	}
	return m
}

// argvRep builds the replica argv array. Under SDS the replica array
// holds pointer values identical to argv's (comparable pointers); under
// MDS it holds pointers to replica copies of each argument string.
func argvRep(design shadow.Design) interp.Extern {
	return func(vm *interp.VM, a []uint64) (uint64, error) {
		argc, argv := a[0], a[1]
		arr, trap := vm.Space.Malloc(argc * 8)
		if trap != nil {
			return 0, trap
		}
		for i := uint64(0); i < argc; i++ {
			p, trap := vm.Space.Load(argv+i*8, 8)
			if trap != nil {
				return 0, trap
			}
			val := p
			if design == shadow.MDS {
				rep, err := replicateString(vm, p)
				if err != nil {
					return 0, err
				}
				val = rep
			}
			if trap := vm.Space.Store(arr+i*8, 8, val); trap != nil {
				return 0, trap
			}
		}
		return arr, nil
	}
}

// argvSdw builds the SDS shadow argv array: per entry a {rop, nsop} pair
// whose ROP points to a replica of the i-th argument string and whose
// NSOP is null (byte strings have no shadow).
func argvSdw() interp.Extern {
	return func(vm *interp.VM, a []uint64) (uint64, error) {
		argc, argv := a[0], a[1]
		arr, trap := vm.Space.Malloc(argc * 16)
		if trap != nil {
			return 0, trap
		}
		for i := uint64(0); i < argc; i++ {
			p, trap := vm.Space.Load(argv+i*8, 8)
			if trap != nil {
				return 0, trap
			}
			rep, err := replicateString(vm, p)
			if err != nil {
				return 0, err
			}
			if trap := vm.Space.Store(arr+i*16, 8, rep); trap != nil {
				return 0, trap
			}
			if trap := vm.Space.Store(arr+i*16+8, 8, 0); trap != nil {
				return 0, trap
			}
		}
		return arr, nil
	}
}

func replicateString(vm *interp.VM, p uint64) (uint64, error) {
	s, err := readCString(vm, p)
	if err != nil {
		return 0, err
	}
	buf, trap := vm.Space.Malloc(uint64(len(s)) + 1)
	if trap != nil {
		return 0, trap
	}
	if trap := vm.Space.WriteBytes(buf, append(s, 0)); trap != nil {
		return 0, trap
	}
	return buf, nil
}

// ExternsFor returns the full extern map for a variant: Base() for
// untransformed modules, Wrapped(design) for transformed ones.
func ExternsFor(transformed bool, design shadow.Design) map[string]interp.Extern {
	if transformed {
		return Wrapped(design)
	}
	return Base()
}
