package extlib

import (
	"fmt"

	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

// Additional libc-analogue functions (§3.1.5 discusses memmove alongside
// memcpy and qsort). Base implementations live here; design-specific
// wrappers are added by wrapExtra from wrappers.go.

// extraSigs extends Sigs with the second batch of external functions.
func extraSigs() map[string]*ir.FuncType {
	i8p := ir.Ptr(ir.I8)
	return map[string]*ir.FuncType{
		"memmove": ir.FuncOf(ir.Void, i8p, i8p, ir.I64),
		"memcmp":  ir.FuncOf(ir.I64, i8p, i8p, ir.I64),
		"strcat":  ir.FuncOf(i8p, i8p, i8p),
		"calloc":  ir.FuncOf(i8p, ir.I64, ir.I64),
	}
}

func extraBase() map[string]interp.Extern {
	return map[string]interp.Extern{
		// memmove: overlap-safe copy (ReadBytes snapshots the source, so
		// overlap is handled by construction).
		"memmove": func(vm *interp.VM, a []uint64) (uint64, error) {
			return 0, copyRegion(vm, a[0], a[1], a[2])
		},
		"memcmp": func(vm *interp.VM, a []uint64) (uint64, error) {
			return memcmpImpl(vm, a[0], a[1], 0, 0, a[2], false)
		},
		"strcat": func(vm *interp.VM, a []uint64) (uint64, error) {
			dst, err := readCString(vm, a[0])
			if err != nil {
				return 0, err
			}
			src, err := readCString(vm, a[1])
			if err != nil {
				return 0, err
			}
			if trap := vm.Space.WriteBytes(a[0]+uint64(len(dst)), append(src, 0)); trap != nil {
				return 0, trap
			}
			vm.Charge(uint64(len(src)))
			return a[0], nil
		},
		// calloc(nmemb, size): zeroed heap allocation.
		"calloc": func(vm *interp.VM, a []uint64) (uint64, error) {
			total := a[0] * a[1]
			addr, trap := vm.Space.Malloc(total)
			if trap != nil {
				return 0, trap
			}
			if err := memsetRegion(vm, addr, 0, total); err != nil {
				return 0, err
			}
			return addr, nil
		},
	}
}

// memcmpImpl compares byte regions, emulating the early-exit parse like
// strcmp (§3.1.5): when check is true, only bytes actually read are
// verified against their replicas.
func memcmpImpl(vm *interp.VM, x, y, xr, yr, n uint64, check bool) (uint64, error) {
	for off := uint64(0); off < n; off++ {
		a, trap := vm.Space.Load(x+off, 1)
		if trap != nil {
			return 0, trap
		}
		b, trap := vm.Space.Load(y+off, 1)
		if trap != nil {
			return 0, trap
		}
		if check {
			if err := checkByte(vm, "memcmp", x, xr, off); err != nil {
				return 0, err
			}
			if err := checkByte(vm, "memcmp", y, yr, off); err != nil {
				return 0, err
			}
		}
		if a != b {
			if a < b {
				return uint64(^uint64(0)), nil
			}
			return 1, nil
		}
	}
	return 0, nil
}

// wrapExtra adds the SDS/MDS wrappers for the second batch. k is the
// pointer-parameter stride (3 under SDS, 2 under MDS).
func wrapExtra(m map[string]interp.Extern, sds bool, k int, w func(string) string) {
	// memmove(dest, src, n): same wrapper obligations as memcpy.
	m[w("memmove")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		dest, destR := a[0], a[1]
		src, srcR := a[k], a[k+1]
		n := a[2*k]
		if sds && a[2] != 0 {
			return 0, fmt.Errorf("memmove wrapper: pointer-bearing destination unsupported (needs sdwSize, §3.1.5)")
		}
		if err := checkRegion(vm, "memmove", src, srcR, n); err != nil {
			return 0, err
		}
		if err := copyRegion(vm, dest, src, n); err != nil {
			return 0, err
		}
		return 0, copyRegion(vm, destR, dest, n)
	}
	// memcmp(a, b, n): read-only; checks exactly the bytes compared.
	m[w("memcmp")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		return memcmpImpl(vm, a[0], a[k], a[1], a[k+1], a[2*k], true)
	}
	// strcat(dest, src) → dest: reads dest's tail and src, appends to
	// both copies, and returns dest with its ROP/NSOP.
	m[w("strcat")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		rv := a[0]
		dest, destR := a[1], a[2]
		src, srcR := a[1+k], a[2+k]
		dstStr, err := readCString(vm, dest)
		if err != nil {
			return 0, err
		}
		if err := checkRegion(vm, "strcat", dest, destR, uint64(len(dstStr))+1); err != nil {
			return 0, err
		}
		srcStr, err := readCString(vm, src)
		if err != nil {
			return 0, err
		}
		if err := checkRegion(vm, "strcat", src, srcR, uint64(len(srcStr))+1); err != nil {
			return 0, err
		}
		tail := append(srcStr, 0)
		if trap := vm.Space.WriteBytes(dest+uint64(len(dstStr)), tail); trap != nil {
			return 0, trap
		}
		if trap := vm.Space.WriteBytes(destR+uint64(len(dstStr)), tail); trap != nil {
			return 0, trap
		}
		if trap := vm.Space.Store(rv, 8, destR); trap != nil { // rop
			return 0, trap
		}
		if sds {
			if trap := vm.Space.Store(rv+8, 8, a[3]); trap != nil { // nsop = dest_s
				return 0, trap
			}
		}
		return dest, nil
	}
	// calloc(nmemb, size) → ptr: the wrapper must allocate the replica
	// (and would allocate shadow memory if byte buffers carried any,
	// §2.8 responsibility 1) and zero both.
	m[w("calloc")] = func(vm *interp.VM, a []uint64) (uint64, error) {
		rv := a[0]
		total := a[1] * a[2]
		app, trap := vm.Space.Malloc(total)
		if trap != nil {
			return 0, trap
		}
		rep, trap := vm.Space.Malloc(total)
		if trap != nil {
			return 0, trap
		}
		if err := memsetRegion(vm, app, 0, total); err != nil {
			return 0, err
		}
		if err := memsetRegion(vm, rep, 0, total); err != nil {
			return 0, err
		}
		if trap := vm.Space.Store(rv, 8, rep); trap != nil { // rop
			return 0, trap
		}
		if sds {
			if trap := vm.Space.Store(rv+8, 8, 0); trap != nil { // nsop: null
				return 0, trap
			}
		}
		return app, nil
	}
}
