// Package extlib is DPMR's external code support library (§2.8, §3.1).
// It provides a small libc-analogue: base implementations used by
// untransformed (golden / fault-injection stdapp) variants, and external
// function wrappers for DPMR-transformed variants. A wrapper performs the
// external function's behaviour plus the application-visible DPMR
// behaviour the transformation would have added: replica/shadow
// maintenance for stores, load checks for reads, and ROP/NSOP delivery
// for pointer returns (Figure 2.11; §4.3 for MDS).
package extlib

import (
	"fmt"

	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/shadow"
)

// maxCString bounds C-string scans so a lost terminator turns into a trap
// rather than an unbounded walk.
const maxCString = 1 << 20

// cmpFuncType is the comparator signature used by qsort_i64.
func cmpFuncType() *ir.FuncType {
	return ir.FuncOf(ir.I64, ir.Ptr(ir.I64), ir.Ptr(ir.I64))
}

// Sigs returns the canonical signature of every external function the
// library provides.
func Sigs() map[string]*ir.FuncType {
	i8p := ir.Ptr(ir.I8)
	out := map[string]*ir.FuncType{
		"memcpy":    ir.FuncOf(ir.Void, i8p, i8p, ir.I64),
		"memset":    ir.FuncOf(ir.Void, i8p, ir.I8, ir.I64),
		"strcpy":    ir.FuncOf(i8p, i8p, i8p),
		"strlen":    ir.FuncOf(ir.I64, i8p),
		"strcmp":    ir.FuncOf(ir.I64, i8p, i8p),
		"puts":      ir.FuncOf(ir.Void, i8p),
		"atoi":      ir.FuncOf(ir.I64, i8p),
		"abort":     ir.FuncOf(ir.Void),
		"exit":      ir.FuncOf(ir.Void, ir.I64),
		"qsort_i64": ir.FuncOf(ir.Void, ir.Ptr(ir.I64), ir.I64, ir.Ptr(cmpFuncType())),
	}
	for name, sig := range extraSigs() {
		out[name] = sig
	}
	return out
}

// Declare adds extern declarations for the named functions to a module
// being built. Workload builders call this for the externs they use.
func Declare(m *ir.Module, names ...string) error {
	sigs := Sigs()
	for _, n := range names {
		sig, ok := sigs[n]
		if !ok {
			return fmt.Errorf("extlib: unknown external function %q", n)
		}
		if m.Func(n) == nil {
			m.AddExtern(n, sig)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Shared helpers

func readCString(vm *interp.VM, addr uint64) ([]byte, error) {
	var out []byte
	for i := uint64(0); i < maxCString; i++ {
		b, trap := vm.Space.Load(addr+i, 1)
		if trap != nil {
			return nil, trap
		}
		if b == 0 {
			return out, nil
		}
		out = append(out, byte(b))
	}
	return nil, fmt.Errorf("extlib: unterminated string at %#x", addr)
}

// checkRegion compares n bytes of application memory against replica
// memory and raises a DPMR detection on mismatch — the wrapper-side load
// check of §2.8.
func checkRegion(vm *interp.VM, what string, app, rep, n uint64) error {
	a, trap := vm.Space.ReadBytes(app, n)
	if trap != nil {
		return trap
	}
	r, trap := vm.Space.ReadBytes(rep, n)
	if trap != nil {
		return trap
	}
	for i := range a {
		if a[i] != r[i] {
			return &interp.Detection{
				Reason: fmt.Sprintf("wrapper %s: replica mismatch at byte %d", what, i),
			}
		}
	}
	vm.Charge(n / 2)
	return nil
}

// checkByte compares one application byte against its replica counterpart.
// Wrappers that emulate string parsing (§3.1.5 strcmp/atof discussion)
// compare exactly as much of the input as the external function read.
func checkByte(vm *interp.VM, what string, app, rep uint64, off uint64) error {
	a, trap := vm.Space.Load(app+off, 1)
	if trap != nil {
		return trap
	}
	r, trap := vm.Space.Load(rep+off, 1)
	if trap != nil {
		return trap
	}
	if a != r {
		return &interp.Detection{
			Reason: fmt.Sprintf("wrapper %s: replica mismatch at byte %d", what, off),
		}
	}
	return nil
}

func copyRegion(vm *interp.VM, dst, src, n uint64) error {
	b, trap := vm.Space.ReadBytes(src, n)
	if trap != nil {
		return trap
	}
	if trap := vm.Space.WriteBytes(dst, b); trap != nil {
		return trap
	}
	vm.Charge(n / 2)
	return nil
}

// atoiParse emulates atoi's parsing, returning the value and the number of
// bytes consumed.
func atoiParse(s []byte) (int64, int) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	neg := false
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		neg = s[i] == '-'
		i++
	}
	var v int64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + int64(s[i]-'0')
		i++
	}
	if neg {
		v = -v
	}
	return v, i
}

// qsortCallArgs builds comparator arguments for one design: the app
// element addresses plus ROP (and null NSOP) companions.
func qsortCallArgs(design shadow.Design, a, ar, b, br uint64) []uint64 {
	if design == shadow.SDS {
		return []uint64{a, ar, 0, b, br, 0}
	}
	return []uint64{a, ar, b, br}
}

// qsortRun insertion-sorts n 8-byte elements at base, mirroring every swap
// at mirror (0 = none), using comparator fn invoked through the VM with
// design-appropriate argument expansion (design 0 = untransformed).
func qsortRun(vm *interp.VM, base, mirror uint64, n uint64, fnAddr uint64, design shadow.Design) error {
	fn, ok := vm.FuncByAddr(fnAddr)
	if !ok {
		return fmt.Errorf("qsort: invalid comparator pointer %#x", fnAddr)
	}
	swap := func(region uint64, i, j uint64) error {
		x, trap := vm.Space.Load(region+i*8, 8)
		if trap != nil {
			return trap
		}
		y, trap := vm.Space.Load(region+j*8, 8)
		if trap != nil {
			return trap
		}
		if trap := vm.Space.Store(region+i*8, 8, y); trap != nil {
			return trap
		}
		if trap := vm.Space.Store(region+j*8, 8, x); trap != nil {
			return trap
		}
		return nil
	}
	for i := uint64(1); i < n; i++ {
		for j := i; j > 0; j-- {
			a := base + (j-1)*8
			b := base + j*8
			var args []uint64
			if design == 0 {
				args = []uint64{a, b}
			} else {
				args = qsortCallArgs(design, a, mirror+(j-1)*8, b, mirror+j*8)
			}
			r, err := vm.Call(fn, args)
			if err != nil {
				return err
			}
			if int64(r) <= 0 {
				break
			}
			if err := swap(base, j-1, j); err != nil {
				return err
			}
			if mirror != 0 {
				if err := swap(mirror, j-1, j); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Base implementations (golden / stdapp variants)

// Base returns the plain external function implementations.
func Base() map[string]interp.Extern {
	out := map[string]interp.Extern{
		"memcpy": func(vm *interp.VM, a []uint64) (uint64, error) {
			return 0, copyRegion(vm, a[0], a[1], a[2])
		},
		"memset": func(vm *interp.VM, a []uint64) (uint64, error) {
			return 0, memsetRegion(vm, a[0], byte(a[1]), a[2])
		},
		"strcpy": func(vm *interp.VM, a []uint64) (uint64, error) {
			s, err := readCString(vm, a[1])
			if err != nil {
				return 0, err
			}
			if trap := vm.Space.WriteBytes(a[0], append(s, 0)); trap != nil {
				return 0, trap
			}
			vm.Charge(uint64(len(s)))
			return a[0], nil
		},
		"strlen": func(vm *interp.VM, a []uint64) (uint64, error) {
			s, err := readCString(vm, a[0])
			if err != nil {
				return 0, err
			}
			vm.Charge(uint64(len(s)))
			return uint64(len(s)), nil
		},
		"strcmp": func(vm *interp.VM, a []uint64) (uint64, error) {
			return strcmpImpl(vm, a[0], a[1], 0, 0, false)
		},
		"puts": func(vm *interp.VM, a []uint64) (uint64, error) {
			s, err := readCString(vm, a[0])
			if err != nil {
				return 0, err
			}
			vm.AppendOutput(append(s, '\n'))
			return 0, nil
		},
		"atoi": func(vm *interp.VM, a []uint64) (uint64, error) {
			s, err := readCString(vm, a[0])
			if err != nil {
				return 0, err
			}
			v, _ := atoiParse(s)
			return uint64(v), nil
		},
		"abort": func(vm *interp.VM, a []uint64) (uint64, error) {
			return 0, &interp.ExitRequest{Code: 134} // SIGABRT-style
		},
		"exit": func(vm *interp.VM, a []uint64) (uint64, error) {
			return 0, &interp.ExitRequest{Code: int64(a[0])}
		},
		"qsort_i64": func(vm *interp.VM, a []uint64) (uint64, error) {
			return 0, qsortRun(vm, a[0], 0, a[1], a[2], 0)
		},
	}
	for name, impl := range extraBase() {
		out[name] = impl
	}
	return out
}

func memsetRegion(vm *interp.VM, dst uint64, c byte, n uint64) error {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	if trap := vm.Space.WriteBytes(dst, b); trap != nil {
		return trap
	}
	vm.Charge(n / 2)
	return nil
}

// strcmpImpl emulates strcmp's parsing (§3.1.5): it reads only as many
// bytes as needed to decide, and when check is true it verifies exactly
// those bytes against the replica strings.
func strcmpImpl(vm *interp.VM, x, y, xr, yr uint64, check bool) (uint64, error) {
	for off := uint64(0); off < maxCString; off++ {
		a, trap := vm.Space.Load(x+off, 1)
		if trap != nil {
			return 0, trap
		}
		b, trap := vm.Space.Load(y+off, 1)
		if trap != nil {
			return 0, trap
		}
		if check {
			if err := checkByte(vm, "strcmp", x, xr, off); err != nil {
				return 0, err
			}
			if err := checkByte(vm, "strcmp", y, yr, off); err != nil {
				return 0, err
			}
		}
		if a != b {
			if a < b {
				return uint64(^uint64(0)), nil // -1
			}
			return 1, nil
		}
		if a == 0 {
			return 0, nil
		}
	}
	return 0, fmt.Errorf("strcmp: unterminated strings")
}
