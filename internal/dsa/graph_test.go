package dsa_test

import (
	"strings"
	"testing"

	"dpmr/internal/dsa"
	"dpmr/internal/ir"
)

func TestDumpGraphRendersNodesAndCells(t *testing.T) {
	m := ir.NewModule("g")
	m.AddGlobal("gv", ir.I64)
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	p := b.Malloc(ir.I64) // site 0
	b.Store(p, b.I64(1))
	q := b.IntToPtr(b.PtrToInt(p), ir.I64)
	_ = q
	gp := b.GlobalAddr("gv")
	b.Store(gp, b.I64(2))
	b.Free(p)
	b.Ret(b.I64(0))
	res := dsa.Analyze(m)
	out := res.DumpGraph()
	for _, want := range []string{
		"ds-graph:",
		"sites=[0]",
		"globals=[gv]",
		"@main:",
		" X ", // the laundered node is marked excluded
	} {
		if !strings.Contains(out, want) {
			t.Errorf("graph missing %q in:\n%s", want, out)
		}
	}
	if res.ExcludedCount() == 0 {
		t.Error("expected at least one excluded node")
	}
}

func TestDumpGraphStable(t *testing.T) {
	build := func() string {
		m := ir.NewModule("stable")
		b := ir.NewBuilder(m)
		b.Function("main", ir.I64, nil)
		x := b.Malloc(ir.I64)
		y := b.Malloc(ir.I64)
		b.Store(x, b.I64(1))
		b.Store(y, b.I64(2))
		b.Free(x)
		b.Free(y)
		b.Ret(b.I64(0))
		return dsa.Analyze(m).DumpGraph()
	}
	if build() != build() {
		t.Error("graph rendering must be deterministic")
	}
}

func TestGraphFlagsString(t *testing.T) {
	f := dsa.FlagHeap | dsa.FlagArray | dsa.FlagUnknown
	s := f.String()
	for _, c := range []string{"H", "A", "U"} {
		if !strings.Contains(s, c) {
			t.Errorf("flags %q missing %s", s, c)
		}
	}
	if dsa.Flags(0).String() != "-" {
		t.Error("empty flags render as -")
	}
}
