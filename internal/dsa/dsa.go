// Package dsa implements the pointer analysis that Chapter 5 uses to
// extend DPMR's scope to programs the §2.9/§4.4 restriction verifiers
// reject. It is a whole-program, flow-insensitive, unification-based
// points-to analysis in the spirit of Data Structure Analysis, maintaining
// the DS-node flags of §5.1 (heap/stack/global segments, array, collapsed,
// pointer-to-int, int-to-pointer, unknown, completeness). Two
// simplifications relative to full DSA are deliberate and documented in
// DESIGN.md: the analysis is context-insensitive (one graph for the whole
// program rather than per-acyclic-call-path heap cloning) and
// field-insensitive (a derived pointer aliases its base object), both of
// which only make the markX exclusion more conservative, never unsound.
//
// Its product is the markX set (Figure 5.7): memory that DPMR must not
// replicate because its pointer behaviour cannot be reasoned about —
// int-to-pointer casts, pointers masquerading as integers, and unknown
// allocation sources. The dpmr.Exclusion implementation returned by
// Exclusion() feeds directly into the transformer, realizing the
// refined partial replication of §5.3.
package dsa

import (
	"fmt"
	"sort"

	"dpmr/internal/dpmr"
	"dpmr/internal/ir"
)

// Flags are DS node flags (§5.1).
type Flags uint16

// Flag values. They start at 1<<0 and mirror the paper's letters.
const (
	FlagHeap       Flags = 1 << iota // H
	FlagStack                        // S
	FlagGlobal                       // G
	FlagArray                        // A
	FlagCollapsed                    // O
	FlagPtrToInt                     // P
	FlagIntToPtr                     // 2
	FlagUnknown                      // U
	FlagIncomplete                   // I (¬C)
	FlagFunc
)

func (f Flags) String() string {
	out := ""
	add := func(b Flags, c string) {
		if f&b != 0 {
			out += c
		}
	}
	add(FlagHeap, "H")
	add(FlagStack, "S")
	add(FlagGlobal, "G")
	add(FlagArray, "A")
	add(FlagCollapsed, "O")
	add(FlagPtrToInt, "P")
	add(FlagIntToPtr, "2")
	add(FlagUnknown, "U")
	add(FlagIncomplete, "I")
	add(FlagFunc, "F")
	if out == "" {
		return "-"
	}
	return out
}

// Node is a DS node: a set of memory objects the program may treat
// uniformly. Nodes form union-find trees; always operate on find(n).
type Node struct {
	id     int
	parent *Node
	flags  Flags
	points *Node // single outgoing points-to edge (unification-based)

	Globals []string
	Funcs   []string
	Sites   []int
}

// Flags returns the node's flag set.
func (n *Node) Flags() Flags { return n.find().flags }

func (n *Node) find() *Node {
	root := n
	for root.parent != nil {
		root = root.parent
	}
	// Path compression.
	for n.parent != nil {
		next := n.parent
		n.parent = root
		n = next
	}
	return root
}

// Result is the analysis output.
type Result struct {
	nodes    []*Node
	regNode  map[regKey]*Node
	siteNode map[int]*Node
	globNode map[string]*Node
	excluded map[*Node]bool
	nextID   int
}

type regKey struct {
	fn  string
	reg int
}

// Analyze runs the analysis over a whole module.
func Analyze(m *ir.Module) *Result {
	r := &Result{
		regNode:  make(map[regKey]*Node),
		siteNode: make(map[int]*Node),
		globNode: make(map[string]*Node),
		excluded: make(map[*Node]bool),
	}
	// Global variable nodes.
	for _, g := range m.Globals {
		n := r.newNode()
		n.flags |= FlagGlobal
		n.Globals = append(n.Globals, g.Name)
		r.globNode[g.Name] = n
		// Pointer initializers give the global's cell outgoing edges.
		for _, ref := range g.Refs {
			if ref.Global != "" {
				r.addEdge(n, r.globalNode(ref.Global))
			}
		}
	}
	// Process every instruction of every function (flow-insensitive).
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				r.process(m, f, in)
			}
		}
	}
	r.markX()
	return r
}

func (r *Result) newNode() *Node {
	n := &Node{id: r.nextID}
	r.nextID++
	r.nodes = append(r.nodes, n)
	return n
}

func (r *Result) globalNode(name string) *Node {
	if n, ok := r.globNode[name]; ok {
		return n.find()
	}
	n := r.newNode()
	n.flags |= FlagGlobal
	r.globNode[name] = n
	return n
}

func (r *Result) reg(f *ir.Func, reg *ir.Reg) *Node {
	k := regKey{fn: f.Name, reg: reg.ID}
	if n, ok := r.regNode[k]; ok {
		return n.find()
	}
	n := r.newNode()
	r.regNode[k] = n
	return n
}

// pts returns (creating on demand) the points-to target of n.
func (r *Result) pts(n *Node) *Node {
	n = n.find()
	if n.points == nil {
		n.points = r.newNode()
	}
	return n.points.find()
}

// addEdge unifies n's points-to target with target.
func (r *Result) addEdge(n, target *Node) {
	n = n.find()
	target = target.find()
	if n.points == nil {
		n.points = target
		return
	}
	r.unify(n.points, target)
}

// unify merges two nodes (Steensgaard-style), merging flags, members, and
// recursively their points-to targets.
func (r *Result) unify(a, b *Node) *Node {
	a, b = a.find(), b.find()
	if a == b {
		return a
	}
	// Merge b into a.
	b.parent = a
	a.flags |= b.flags
	a.Globals = append(a.Globals, b.Globals...)
	a.Funcs = append(a.Funcs, b.Funcs...)
	a.Sites = append(a.Sites, b.Sites...)
	bp := b.points
	b.points = nil
	if bp != nil {
		if a.points == nil {
			a.points = bp
		} else {
			r.unify(a.points, bp)
		}
	}
	return a
}

func (r *Result) process(m *ir.Module, f *ir.Func, in ir.Instr) {
	switch i := in.(type) {
	case *ir.Alloc:
		target := r.pts(r.reg(f, i.Dst))
		switch i.Kind {
		case ir.AllocHeap:
			target.find().flags |= FlagHeap
		default:
			target.find().flags |= FlagStack
		}
		if i.Count != nil {
			target.find().flags |= FlagArray
		}
		target = target.find()
		target.Sites = append(target.Sites, i.Site)
		r.siteNode[i.Site] = target
	case *ir.GlobalAddr:
		r.addEdge(r.reg(f, i.Dst), r.globalNode(i.G))
	case *ir.FuncAddr:
		fn := r.pts(r.reg(f, i.Dst))
		fn = fn.find()
		fn.flags |= FlagFunc
		fn.Funcs = append(fn.Funcs, i.Fn)
	case *ir.Move:
		r.unify(r.reg(f, i.Dst), r.reg(f, i.Src))
	case *ir.Bitcast:
		r.unify(r.reg(f, i.Dst), r.reg(f, i.Src))
	case *ir.FieldAddr:
		// Field-insensitive: the derived pointer aliases the base.
		r.unify(r.reg(f, i.Dst), r.reg(f, i.Ptr))
	case *ir.IndexAddr:
		r.unify(r.reg(f, i.Dst), r.reg(f, i.Ptr))
		r.pts(r.reg(f, i.Ptr)).find().flags |= FlagArray
	case *ir.Load:
		obj := r.pts(r.reg(f, i.Ptr))
		slotPtr := ir.IsPointer(i.Ptr.Elem())
		switch {
		case ir.IsPointer(i.Dst.Type) && slotPtr:
			// dst = *ptr: dst points wherever the stored pointers point.
			r.addEdge(r.reg(f, i.Dst), r.pts(obj))
		case ir.IsPointer(i.Dst.Type) && !slotPtr:
			// A pointer loaded from memory not typed as a pointer: its
			// targets cannot be tracked (§5.2).
			r.addEdge(r.reg(f, i.Dst), r.pts(obj))
			r.pts(obj).find().flags |= FlagUnknown
			obj.find().flags |= FlagCollapsed
		case !ir.IsPointer(i.Dst.Type) && slotPtr:
			// A pointer read as an integer (Figure 5.1(b) layered
			// pointer-to-int): the stored pointers' targets escape into
			// integers — poison them.
			obj.find().flags |= FlagCollapsed | FlagPtrToInt
			r.pts(obj).find().flags |= FlagUnknown | FlagPtrToInt
		}
	case *ir.Store:
		obj := r.pts(r.reg(f, i.Ptr))
		slotPtr := ir.IsPointer(i.Ptr.Elem())
		switch {
		case ir.IsPointer(i.Val.Type) && slotPtr:
			// *ptr = v: pointers stored in obj point where v points.
			r.addEdge(obj, r.pts(r.reg(f, i.Val)))
		case ir.IsPointer(i.Val.Type) && !slotPtr:
			// Pointer stored through non-pointer-typed memory (§5.2):
			// collapsed object; the pointee can no longer be maintained.
			r.addEdge(obj, r.pts(r.reg(f, i.Val)))
			obj.find().flags |= FlagCollapsed | FlagPtrToInt
			r.pts(r.reg(f, i.Val)).find().flags |= FlagUnknown
		default:
			cell := r.reg(f, i.Val)
			if cell.find().flags&FlagPtrToInt != 0 {
				// A pointer masquerading as an integer is stored to
				// memory (Figure 5.3): DSA does not track pointers
				// through integers, so the target must be excluded.
				r.pts(cell).find().flags |= FlagUnknown
			}
			if slotPtr {
				// Integer overwrites a pointer slot: what is read back
				// as a pointer is untracked (update omission risk,
				// Figure 5.4).
				r.pts(obj).find().flags |= FlagUnknown | FlagIntToPtr
			}
		}
	case *ir.PtrToInt:
		// Keep register-level lineage so a register round-trip is
		// recognized; flag the cell as carrying a pointer-as-integer.
		r.unify(r.reg(f, i.Dst), r.reg(f, i.Src))
		r.reg(f, i.Dst).find().flags |= FlagPtrToInt
	case *ir.IntToPtr:
		// DSA does not track pointers through integers (§5.1): the
		// result's target is int-to-pointer + unknown. Register-level
		// lineage (from PtrToInt) makes the original target the one that
		// gets poisoned, which is exactly what soundness requires.
		r.unify(r.reg(f, i.Dst), r.reg(f, i.Src))
		t := r.pts(r.reg(f, i.Dst)).find()
		t.flags |= FlagIntToPtr | FlagUnknown
	case *ir.BinOp:
		if ir.IsPointer(i.Dst.Type) {
			if ir.IsPointer(i.X.Type) {
				r.unify(r.reg(f, i.Dst), r.reg(f, i.X))
			}
			if ir.IsPointer(i.Y.Type) {
				r.unify(r.reg(f, i.Dst), r.reg(f, i.Y))
			}
		}
	case *ir.Call:
		r.processCall(m, f, i)
	case *ir.Ret:
		if i.Val != nil && ir.IsPointer(i.Val.Type) {
			r.unify(r.retNode(f), r.reg(f, i.Val))
		}
	}
}

func (r *Result) retNode(f *ir.Func) *Node {
	return r.reg(f, &ir.Reg{ID: -1}) // reserved key for the return cell
}

func (r *Result) processCall(m *ir.Module, f *ir.Func, call *ir.Call) {
	var callees []*ir.Func
	if call.Callee != "" {
		if cf := m.Func(call.Callee); cf != nil {
			callees = append(callees, cf)
		}
	} else {
		// Indirect call: all functions whose address is taken and unified
		// into the callee pointer's target.
		t := r.pts(r.reg(f, call.CalleePtr)).find()
		seen := map[string]bool{}
		for _, name := range t.Funcs {
			if seen[name] {
				continue
			}
			seen[name] = true
			if cf := m.Func(name); cf != nil {
				callees = append(callees, cf)
			}
		}
	}
	for _, cf := range callees {
		if cf.External {
			// External functions are covered by wrappers (§5.4), so
			// their pointer arguments remain analyzable; nothing new
			// escapes. Pointer returns, however, come from wrapper
			// logic: treat them as aliases of the pointer arguments.
			for _, a := range call.Args {
				if ir.IsPointer(a.Type) && call.Dst != nil && ir.IsPointer(call.Dst.Type) {
					r.unify(r.reg(f, call.Dst), r.reg(f, a))
				}
			}
			continue
		}
		for k, a := range call.Args {
			if k >= len(cf.Params) {
				break
			}
			if ir.IsPointer(a.Type) || ir.IsPointer(cf.Params[k].Type) {
				r.unify(r.reg(f, a), r.reg(cf, cf.Params[k]))
			}
		}
		if call.Dst != nil && ir.IsPointer(call.Dst.Type) {
			r.unify(r.reg(f, call.Dst), r.retNode(cf))
		}
	}
}

// markX computes the exclusion set (Figure 5.7): nodes whose pointer
// behaviour DSA cannot vouch for — unknown, int-to-pointer, or collapsed
// pointer-to-int — plus everything reachable from them, since memory
// reachable only through untracked pointers cannot keep its replica and
// shadow structures consistent (update omission, Figure 5.4).
func (r *Result) markX() {
	var work []*Node
	seen := map[*Node]bool{}
	for _, n := range r.nodes {
		root := n.find()
		if seen[root] {
			continue
		}
		seen[root] = true
		if root.flags&(FlagUnknown|FlagIntToPtr) != 0 {
			r.excluded[root] = true
			work = append(work, root)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if n.points == nil {
			continue
		}
		t := n.points.find()
		if !r.excluded[t] {
			r.excluded[t] = true
			work = append(work, t)
		}
	}
}

// NodeOfSite returns the node of an allocation site.
func (r *Result) NodeOfSite(site int) (*Node, bool) {
	n, ok := r.siteNode[site]
	if !ok {
		return nil, false
	}
	return n.find(), true
}

// NodeOfReg returns the points-to target node of a register.
func (r *Result) NodeOfReg(fn string, regID int) (*Node, bool) {
	n, ok := r.regNode[regKey{fn: fn, reg: regID}]
	if !ok {
		return nil, false
	}
	return r.pts(n), true
}

// ExcludedSites lists excluded allocation sites (sorted, for diagnostics).
func (r *Result) ExcludedSites() []int {
	var out []int
	for site, n := range r.siteNode {
		if r.excluded[n.find()] {
			out = append(out, site)
		}
	}
	sort.Ints(out)
	return out
}

// Stats summarizes the analysis.
func (r *Result) Stats() string {
	roots := map[*Node]bool{}
	for _, n := range r.nodes {
		roots[n.find()] = true
	}
	return fmt.Sprintf("dsa: %d cells, %d nodes, %d excluded", len(r.nodes), len(roots), len(r.excluded))
}

// ---------------------------------------------------------------------------
// Exclusion bridge into the transformer

// Exclusion returns the dpmr.Exclusion view of the markX set.
func (r *Result) Exclusion() dpmr.Exclusion { return exclusion{r} }

type exclusion struct{ r *Result }

func (e exclusion) Site(site int) bool {
	n, ok := e.r.siteNode[site]
	return ok && e.r.excluded[n.find()]
}

func (e exclusion) Reg(fn string, regID int) bool {
	n, ok := e.r.regNode[regKey{fn: fn, reg: regID}]
	if !ok {
		return false
	}
	return e.r.excluded[e.r.pts(n).find()]
}

// Transform is the Chapter 5 pipeline: analyze, compute markX, and apply
// DPMR with restriction checking replaced by DSA-refined partial
// replication (§5.3).
func Transform(m *ir.Module, cfg dpmr.Config) (*ir.Module, *Result, error) {
	res := Analyze(m)
	cfg.SkipRestrictionCheck = true
	cfg.Exclude = res.Exclusion()
	out, err := dpmr.Transform(m, cfg)
	if err != nil {
		return nil, res, err
	}
	return out, res, nil
}
