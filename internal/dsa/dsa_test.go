package dsa_test

import (
	"bytes"
	"testing"

	"dpmr/internal/dpmr"
	"dpmr/internal/dsa"
	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

func TestCleanProgramNothingExcluded(t *testing.T) {
	m := ir.NewModule("clean")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	p := b.Malloc(ir.I64)
	b.Store(p, b.I64(1))
	q := b.MallocN(ir.I64, b.I64(4))
	b.Store(b.Index(q, b.I64(0)), b.Load(p))
	b.Free(p)
	b.Free(q)
	b.Ret(b.I64(0))
	res := dsa.Analyze(m)
	if got := res.ExcludedSites(); len(got) != 0 {
		t.Errorf("clean program excludes sites %v", got)
	}
}

func TestSiteFlags(t *testing.T) {
	m := ir.NewModule("flags")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	h := b.Malloc(ir.I64)
	arr := b.MallocN(ir.I64, b.I64(4))
	s := b.Alloca(ir.I64)
	b.Store(h, b.I64(1))
	b.Store(b.Index(arr, b.I64(0)), b.I64(1))
	b.Store(s, b.I64(1))
	b.Free(h)
	b.Free(arr)
	b.Ret(b.I64(0))
	res := dsa.Analyze(m)
	n0, ok := res.NodeOfSite(0)
	if !ok || n0.Flags()&dsa.FlagHeap == 0 {
		t.Error("site 0 must be a heap node")
	}
	n1, _ := res.NodeOfSite(1)
	if n1.Flags()&dsa.FlagArray == 0 {
		t.Error("site 1 must carry the array flag")
	}
	n2, ok := res.NodeOfSite(2)
	if !ok || n2.Flags()&dsa.FlagStack == 0 {
		t.Error("site 2 must be a stack node")
	}
}

func TestIntToPtrRoundTripExcludesTarget(t *testing.T) {
	m := ir.NewModule("roundtrip")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	p := b.Malloc(ir.I64) // site 0
	b.Store(p, b.I64(7))
	raw := b.PtrToInt(p)
	q := b.IntToPtr(raw, ir.I64) // register round-trip: lineage kept
	v := b.Load(q)
	clean := b.Malloc(ir.I64) // site 1: unrelated, stays replicated
	b.Store(clean, v)
	b.Free(clean)
	b.Free(p)
	b.Ret(b.I64(0))
	res := dsa.Analyze(m)
	excl := res.ExcludedSites()
	if len(excl) != 1 || excl[0] != 0 {
		t.Fatalf("excluded sites = %v, want [0]", excl)
	}
	// Both p and q (aliases of the excluded object) must be excluded regs.
	e := res.Exclusion()
	if !e.Reg("main", p.ID) || !e.Reg("main", q.ID) {
		t.Error("p and q must both be excluded")
	}
	if e.Reg("main", clean.ID) {
		t.Error("clean must not be excluded")
	}
}

func TestMasqueradingStorePoisonsTarget(t *testing.T) {
	// Figure 5.3: a pointer converted to an integer and stored to plain
	// integer memory — the pointed-to object must be excluded.
	m := ir.NewModule("masq")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	obj := b.Malloc(ir.I64)  // site 0: the target
	slot := b.Malloc(ir.I64) // site 1: integer memory holding the disguised pointer
	raw := b.PtrToInt(obj)
	b.Store(slot, raw)
	back := b.Load(slot)
	q := b.IntToPtr(back, ir.I64)
	b.Store(q, b.I64(9))
	b.Free(slot)
	b.Ret(b.I64(0))
	res := dsa.Analyze(m)
	e := res.Exclusion()
	if !e.Site(0) {
		t.Errorf("masqueraded target must be excluded; excluded = %v", res.ExcludedSites())
	}
}

func TestDSATransformRunsIntToPtrProgram(t *testing.T) {
	// A program plain DPMR rejects: pointer laundered through an integer
	// register. Under DSA-refined DPMR it transforms and runs correctly.
	build := func() *ir.Module {
		m := ir.NewModule("launder")
		b := ir.NewBuilder(m)
		b.Function("main", ir.I64, nil)
		p := b.Malloc(ir.I64)
		b.Store(p, b.I64(40))
		raw := b.PtrToInt(p)
		q := b.IntToPtr(raw, ir.I64)
		v := b.Load(q)
		// Replicated region continues to work normally.
		r2 := b.Malloc(ir.I64)
		b.Store(r2, b.Add(v, b.I64(2)))
		out := b.Load(r2)
		b.Free(r2)
		b.Free(p)
		b.Ret(out)
		return m
	}
	if _, err := dpmr.Transform(build(), dpmr.Config{Design: dpmr.MDS}); err == nil {
		t.Fatal("plain MDS must reject int-to-pointer")
	}
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xm, res, err := dsa.Transform(build(), dpmr.Config{Design: design})
		if err != nil {
			t.Fatalf("%v: %v", design, err)
		}
		if len(res.ExcludedSites()) == 0 {
			t.Fatalf("%v: expected exclusions", design)
		}
		out := interp.Run(xm, interp.Config{Externs: extlib.Wrapped(design)})
		if out.Kind != interp.ExitNormal || out.Code != 42 {
			t.Errorf("%v: %v code %d (%s)", design, out.Kind, out.Code, out.Reason)
		}
	}
}

func TestDSATransformStillDetectsInReplicatedRegion(t *testing.T) {
	// Errors in replicated memory are still detected even though an
	// excluded region exists (refined partial replication, §5.3).
	m := ir.NewModule("partial")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	// Excluded corner: a laundered pointer.
	p := b.Malloc(ir.I64)
	b.Store(p, b.I64(1))
	q := b.IntToPtr(b.PtrToInt(p), ir.I64)
	_ = q
	// Replicated region with an overflow corrupting its replica.
	x := b.MallocN(ir.I64, b.I64(3))
	y := b.MallocN(ir.I64, b.I64(3))
	b.Store(b.Index(y, b.I64(0)), b.I64(5))
	b.Store(b.Index(x, b.I64(0)), b.I64(7))
	b.Store(b.Index(x, b.I64(5)), b.I64(999)) // overflow
	v := b.Load(b.Index(x, b.I64(0)))
	b.Ret(v)
	xm, res, err := dsa.Transform(m, dpmr.Config{Design: dpmr.SDS})
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Exclusion(); !e.Reg("main", p.ID) {
		t.Fatal("laundered pointer must be excluded")
	}
	out := interp.Run(xm, interp.Config{Externs: extlib.Wrapped(dpmr.SDS)})
	if out.Kind != interp.ExitDetect {
		t.Errorf("overflow in replicated region not detected: %v (%s)", out.Kind, out.Reason)
	}
}

func TestDSAWritesThroughExcludedDoNotFalselyDetect(t *testing.T) {
	// Soundness: stores through the laundered alias write only app
	// memory; because the whole aliased object is excluded, later reads
	// through the original pointer must not trip a replica comparison.
	m := ir.NewModule("nofalse")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	p := b.Malloc(ir.I64)
	b.Store(p, b.I64(1))
	q := b.IntToPtr(b.PtrToInt(p), ir.I64)
	b.Store(q, b.I64(2)) // via alias
	v := b.Load(p)       // via original pointer
	b.Free(p)
	b.Ret(v)
	for _, design := range []dpmr.Design{dpmr.SDS, dpmr.MDS} {
		xm, _, err := dsa.Transform(m, dpmr.Config{Design: design})
		if err != nil {
			t.Fatalf("%v: %v", design, err)
		}
		out := interp.Run(xm, interp.Config{Externs: extlib.Wrapped(design)})
		if out.Kind != interp.ExitNormal || out.Code != 2 {
			t.Errorf("%v: false detection or wrong result: %v code %d (%s)",
				design, out.Kind, out.Code, out.Reason)
		}
	}
}

func TestDSAOnCleanProgramMatchesPlainTransform(t *testing.T) {
	// With no exclusions the DSA pipeline must behave exactly like the
	// restricted pipeline.
	build := func() *ir.Module {
		m := ir.NewModule("same")
		b := ir.NewBuilder(m)
		b.Function("main", ir.I64, nil)
		arr := b.MallocN(ir.I64, b.I64(8))
		b.ForRange("i", b.I64(0), b.I64(8), func(i *ir.Reg) {
			b.Store(b.Index(arr, i), b.Mul(i, i))
		})
		s := b.Reg("s", ir.I64)
		b.MoveTo(s, b.I64(0))
		b.ForRange("i", b.I64(0), b.I64(8), func(i *ir.Reg) {
			b.BinTo(s, ir.OpAdd, s, b.Load(b.Index(arr, i)))
		})
		b.Free(arr)
		b.Ret(s)
		return m
	}
	plain, err := dpmr.Transform(build(), dpmr.Config{Design: dpmr.SDS})
	if err != nil {
		t.Fatal(err)
	}
	viaDSA, res, err := dsa.Transform(build(), dpmr.Config{Design: dpmr.SDS})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ExcludedSites()) != 0 {
		t.Errorf("unexpected exclusions: %v", res.ExcludedSites())
	}
	r1 := interp.Run(plain, interp.Config{Externs: extlib.Wrapped(dpmr.SDS)})
	r2 := interp.Run(viaDSA, interp.Config{Externs: extlib.Wrapped(dpmr.SDS)})
	if r1.Code != r2.Code || !bytes.Equal(r1.Output, r2.Output) || r1.Cycles != r2.Cycles {
		t.Error("DSA pipeline with empty markX must match plain transform")
	}
}

func TestIndirectCallUnification(t *testing.T) {
	m := ir.NewModule("icall")
	b := ir.NewBuilder(m)
	sig := ir.FuncOf(ir.Void, ir.Ptr(ir.I64))
	cb := b.Function("writer", ir.Void, []string{"p"}, ir.Ptr(ir.I64))
	b.Store(cb.Params[0], b.I64(5))
	b.Ret(nil)
	b.Function("main", ir.I64, nil)
	buf := b.Malloc(ir.I64) // site 0
	fp := b.FuncAddr("writer")
	fpT := b.Cast(fp, sig) // identity-ish cast for typing
	_ = fpT
	b.CallPtr(fp, buf)
	v := b.Load(buf)
	b.Free(buf)
	b.Ret(v)
	res := dsa.Analyze(m)
	// The callee's parameter and main's buf must share a node.
	nBuf, _ := res.NodeOfReg("main", buf.ID)
	cbf := m.Func("writer")
	nParam, ok := res.NodeOfReg("writer", cbf.Params[0].ID)
	if !ok || nBuf != nParam {
		t.Error("indirect call must unify arguments with parameters")
	}
}

func TestStatsString(t *testing.T) {
	m := ir.NewModule("stats")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	b.Ret(b.I64(0))
	res := dsa.Analyze(m)
	if res.Stats() == "" {
		t.Error("stats must render")
	}
}
