package dsa

import (
	"fmt"
	"sort"
	"strings"
)

// DumpGraph renders the analysis result as a textual DS graph in the
// spirit of the paper's Figures 5.5/5.6: one line per representative node
// with its flags, member allocation sites/globals/functions, and its
// points-to edge, followed by the register cells grouped by function.
func (r *Result) DumpGraph() string {
	// Collect representatives and assign stable display ids.
	repIdx := map[*Node]int{}
	var reps []*Node
	for _, n := range r.nodes {
		root := n.find()
		if _, ok := repIdx[root]; !ok {
			repIdx[root] = len(reps)
			reps = append(reps, root)
		}
	}
	var sb strings.Builder
	sb.WriteString("ds-graph:\n")
	for i, n := range reps {
		fmt.Fprintf(&sb, "  n%-3d [%s]", i, n.flags)
		if r.excluded[n] {
			sb.WriteString(" X")
		}
		if len(n.Sites) > 0 {
			sites := append([]int(nil), n.Sites...)
			sort.Ints(sites)
			fmt.Fprintf(&sb, " sites=%v", sites)
		}
		if len(n.Globals) > 0 {
			gs := append([]string(nil), n.Globals...)
			sort.Strings(gs)
			fmt.Fprintf(&sb, " globals=%v", gs)
		}
		if len(n.Funcs) > 0 {
			fs := append([]string(nil), n.Funcs...)
			sort.Strings(fs)
			fmt.Fprintf(&sb, " funcs=%v", fs)
		}
		if n.points != nil {
			fmt.Fprintf(&sb, " -> n%d", repIdx[n.points.find()])
		}
		sb.WriteString("\n")
	}
	// Register cells, grouped and sorted for stable output.
	keys := make([]regKey, 0, len(r.regNode))
	for k := range r.regNode {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].fn != keys[j].fn {
			return keys[i].fn < keys[j].fn
		}
		return keys[i].reg < keys[j].reg
	})
	cur := ""
	for _, k := range keys {
		if k.fn != cur {
			cur = k.fn
			fmt.Fprintf(&sb, "  @%s:\n", cur)
		}
		label := fmt.Sprintf("r%d", k.reg)
		if k.reg == -1 {
			label = "ret"
		}
		fmt.Fprintf(&sb, "    %-6s cell n%d\n", label, repIdx[r.regNode[k].find()])
	}
	return sb.String()
}

// ExcludedCount returns the number of excluded representative nodes.
func (r *Result) ExcludedCount() int { return len(r.excluded) }
