package shadow

import (
	"testing"

	"dpmr/internal/ir"
)

// Table 2.2, example 1: st(int8[]*) = struct{ int8[]* rop; void* nsop }.
func TestShadowOfByteArrayPointer(t *testing.T) {
	c := NewComputer(SDS)
	bap := ir.Ptr(ir.Array(ir.I8, 16))
	st := c.Shadow(bap)
	ss, ok := st.(*ir.StructType)
	if !ok {
		t.Fatalf("st(int8[]*) = %v, want struct", st)
	}
	if ss.NumFields() != 2 {
		t.Fatalf("fields = %d, want 2", ss.NumFields())
	}
	if !ir.TypesEqual(ss.Field(0), bap) {
		t.Errorf("rop type = %s, want %s", ss.Field(0), bap)
	}
	if !ir.TypesEqual(ss.Field(1), ir.VoidPtr()) {
		t.Errorf("nsop type = %s, want void*", ss.Field(1))
	}
}

// Table 2.2, example 2: st(int8[]**) nests the first shadow type.
func TestShadowOfPointerToPointer(t *testing.T) {
	c := NewComputer(SDS)
	bap := ir.Ptr(ir.Array(ir.I8, 16))
	bapp := ir.Ptr(bap)
	st := c.Shadow(bapp).(*ir.StructType)
	if !ir.TypesEqual(st.Field(0), bapp) {
		t.Errorf("rop = %s, want %s", st.Field(0), bapp)
	}
	nsop, ok := st.Field(1).(*ir.PointerType)
	if !ok {
		t.Fatalf("nsop not a pointer: %s", st.Field(1))
	}
	if !ir.TypesEqual(nsop.Elem, c.Shadow(bap)) {
		t.Errorf("nsop pointee = %s, want st(int8[]*)", nsop.Elem)
	}
}

// Table 2.2, example 3: the recursive linked list.
func TestShadowOfLinkedList(t *testing.T) {
	c := NewComputer(SDS)
	ll := ir.NamedStruct("LinkedList")
	ll.SetBody(ir.I32, ir.Ptr(ll))

	st := c.Shadow(ll)
	ss, ok := st.(*ir.StructType)
	if !ok {
		t.Fatalf("st(LinkedList) = %v, want struct", st)
	}
	if ss.Name != "LinkedList.sdw" {
		t.Errorf("name = %s", ss.Name)
	}
	// int32 drops out: one field, the nxt shadow object.
	if ss.NumFields() != 1 {
		t.Fatalf("fields = %d, want 1", ss.NumFields())
	}
	nxtSdw, ok := ss.Field(0).(*ir.StructType)
	if !ok {
		t.Fatalf("nxtSdwObj = %s, want struct", ss.Field(0))
	}
	if !ir.TypesEqual(nxtSdw.Field(0), ir.Ptr(ll)) {
		t.Errorf("rop = %s, want LinkedList*", nxtSdw.Field(0))
	}
	nsop := nxtSdw.Field(1).(*ir.PointerType)
	if !ir.TypesEqual(nsop.Elem, ss) {
		t.Errorf("nsop pointee = %s, want LinkedList.sdw (recursive)", nsop.Elem)
	}
	// Memoization: recomputation returns the identical type.
	if c.Shadow(ll) != st {
		t.Error("shadow types must be memoized")
	}
}

// Table 2.2, example 4: struct file with multiple pointers; non-pointer
// fields drop out of the shadow type.
func TestShadowOfFileStruct(t *testing.T) {
	c := NewComputer(SDS)
	dir := ir.NamedStruct("dir")
	file := ir.NamedStruct("file")
	namep := ir.Ptr(ir.Array(ir.I8, 32))
	file.SetBody(namep, ir.I32, ir.Ptr(dir))
	dir.SetBody(ir.Ptr(file)) // give dir a body so its shadow exists

	st := c.Shadow(file).(*ir.StructType)
	if st.NumFields() != 2 {
		t.Fatalf("fields = %d, want 2 (int32 dropped)", st.NumFields())
	}
	nameSdw := st.Field(0).(*ir.StructType)
	if !ir.TypesEqual(nameSdw.Field(0), namep) {
		t.Errorf("name rop = %s", nameSdw.Field(0))
	}
	parentSdw := st.Field(1).(*ir.StructType)
	if !ir.TypesEqual(parentSdw.Field(0), ir.Ptr(dir)) {
		t.Errorf("parent rop = %s", parentSdw.Field(0))
	}
	nsop := parentSdw.Field(1).(*ir.PointerType)
	dirSdw, ok := nsop.Elem.(*ir.StructType)
	if !ok || dirSdw.Name != "dir.sdw" {
		t.Errorf("parent nsop pointee = %s, want dir.sdw", nsop.Elem)
	}
}

func TestShadowNullForPointerFreeTypes(t *testing.T) {
	c := NewComputer(SDS)
	for _, tt := range []ir.Type{
		ir.I8, ir.I32, ir.I64, ir.F32, ir.F64, ir.Void,
		ir.Array(ir.I32, 8),
		ir.Struct(ir.I32, ir.F64, ir.Array(ir.I8, 4)),
		ir.Union(ir.I32, ir.F64),
		ir.FuncOf(ir.Ptr(ir.I8), ir.Ptr(ir.I8)), // function type: null shadow
	} {
		if st := c.Shadow(tt); st != nil {
			t.Errorf("st(%s) = %s, want null", tt, st)
		}
	}
}

func TestShadowOfUnionWithPointer(t *testing.T) {
	c := NewComputer(SDS)
	u := ir.Union(ir.I64, ir.Ptr(ir.I32))
	st := c.Shadow(u)
	su, ok := st.(*ir.UnionType)
	if !ok {
		t.Fatalf("st(union) = %v, want union", st)
	}
	if su.NumElems() != 1 {
		t.Errorf("elems = %d, want 1 (i64 dropped)", su.NumElems())
	}
}

func TestShadowOfFunctionPointerHasVoidNSOP(t *testing.T) {
	// Function pointers: st(fn*) = struct{ fn*; void* } since st(fn) = ∅.
	c := NewComputer(SDS)
	fp := ir.Ptr(ir.FuncOf(ir.I32, ir.I32))
	st := c.Shadow(fp).(*ir.StructType)
	if !ir.TypesEqual(st.Field(1), ir.VoidPtr()) {
		t.Errorf("nsop = %s, want void*", st.Field(1))
	}
}

// Table 2.4: the SDS augmented function type.
func TestAugFuncSDS(t *testing.T) {
	c := NewComputer(SDS)
	bap := ir.Ptr(ir.Array(ir.I8, 16))
	ft := ir.FuncOf(bap, bap, bap)
	aug := c.AugFunc(ft)
	// rvSop, s1, s1Rop, s1Nsop, s2, s2Rop, s2Nsop
	if len(aug.Params) != 7 {
		t.Fatalf("params = %d, want 7: %s", len(aug.Params), aug)
	}
	rvSop := aug.Params[0].(*ir.PointerType)
	if !ir.TypesEqual(rvSop.Elem, c.ShadowAug(bap)) {
		t.Errorf("rvSop pointee = %s", rvSop.Elem)
	}
	if !ir.TypesEqual(aug.Params[1], bap) || !ir.TypesEqual(aug.Params[2], bap) {
		t.Error("s1 and s1Rop must keep the original pointer type")
	}
	if !ir.TypesEqual(aug.Params[3], ir.VoidPtr()) {
		t.Errorf("s1Nsop = %s, want void* (st of pointee is null)", aug.Params[3])
	}
	if !ir.TypesEqual(aug.Ret, bap) {
		t.Errorf("ret = %s, want %s", aug.Ret, bap)
	}
}

// Table 4.2: the MDS augmented function type.
func TestAugFuncMDS(t *testing.T) {
	c := NewComputer(MDS)
	bap := ir.Ptr(ir.Array(ir.I8, 16))
	ft := ir.FuncOf(bap, bap, bap)
	aug := c.AugFunc(ft)
	// rvRopPtr, s1, s1Rop, s2, s2Rop
	if len(aug.Params) != 5 {
		t.Fatalf("params = %d, want 5: %s", len(aug.Params), aug)
	}
	rvRopPtr := aug.Params[0].(*ir.PointerType)
	if !ir.TypesEqual(rvRopPtr.Elem, bap) {
		t.Errorf("rvRopPtr = %s, want %s*", aug.Params[0], bap)
	}
}

func TestAugFuncNonPointerParamsUnchanged(t *testing.T) {
	for _, d := range []Design{SDS, MDS} {
		c := NewComputer(d)
		ft := ir.FuncOf(ir.I64, ir.I64, ir.F64)
		aug := c.AugFunc(ft)
		if len(aug.Params) != 2 {
			t.Errorf("%v: params = %d, want 2", d, len(aug.Params))
		}
		if !ir.TypesEqual(aug.Ret, ir.I64) {
			t.Errorf("%v: ret changed", d)
		}
	}
}

func TestAugFuncMixedParams(t *testing.T) {
	c := NewComputer(SDS)
	// int32 f(int32 data, LL* last) → Figure 2.9's createNode shape.
	ll := ir.NamedStruct("LL2")
	ll.SetBody(ir.I32, ir.Ptr(ll))
	ft := ir.FuncOf(ir.Ptr(ll), ir.I32, ir.Ptr(ll))
	aug := c.AugFunc(ft)
	// rvSop, data, last, lastRop, lastNsop
	if len(aug.Params) != 5 {
		t.Fatalf("params = %d, want 5: %s", len(aug.Params), aug)
	}
	if !ir.TypesEqual(aug.Params[1], ir.I32) {
		t.Error("non-pointer param must stay put with no companions")
	}
	nsop := aug.Params[4].(*ir.PointerType)
	if ss, ok := nsop.Elem.(*ir.StructType); !ok || ss.Name != "LL2.sdw" {
		t.Errorf("lastNsop pointee = %s, want LL2.sdw", nsop.Elem)
	}
}

func TestAugIdentityForFunctionFreeTypes(t *testing.T) {
	c := NewComputer(SDS)
	ll := ir.NamedStruct("LL3")
	ll.SetBody(ir.I32, ir.Ptr(ll))
	for _, tt := range []ir.Type{ir.I32, ir.F64, ir.Ptr(ir.I8), ll, ir.Array(ir.Ptr(ir.I8), 4)} {
		if at := c.Aug(tt); !ir.TypesEqual(at, tt) {
			t.Errorf("at(%s) = %s, want identity", tt, at)
		}
	}
}

func TestAugRewritesEmbeddedFunctionPointers(t *testing.T) {
	c := NewComputer(SDS)
	cb := ir.FuncOf(ir.I32, ir.Ptr(ir.I8))
	s := ir.NamedStruct("Handler")
	s.SetBody(ir.I64, ir.Ptr(cb))
	at := c.Aug(s).(*ir.StructType)
	if at.Name != "Handler.aug" {
		t.Errorf("name = %s", at.Name)
	}
	fp := at.Field(1).(*ir.PointerType)
	augCb := fp.Elem.(*ir.FuncType)
	// i32 cb(i8* p) → i32 cb(i8* p, i8* pRop, void* pNsop)
	if len(augCb.Params) != 3 {
		t.Errorf("embedded callback params = %d, want 3", len(augCb.Params))
	}
}

// Table 2.5: (st∘at) composition matches computing shadow-of-augmented.
func TestShadowAugComposition(t *testing.T) {
	c := NewComputer(SDS)
	cb := ir.Ptr(ir.FuncOf(ir.I32, ir.Ptr(ir.I8)))
	s := ir.Struct(ir.I32, cb, ir.Ptr(ir.I64))
	sat := c.ShadowAug(s)
	ss, ok := sat.(*ir.StructType)
	if !ok {
		t.Fatalf("st(at(...)) = %v", sat)
	}
	// i32 drops, cb and i64* remain: 2 fields.
	if ss.NumFields() != 2 {
		t.Fatalf("fields = %d, want 2", ss.NumFields())
	}
	// The cb shadow entry's ROP must use the *augmented* callback type.
	cbSdw := ss.Field(0).(*ir.StructType)
	rop := cbSdw.Field(0).(*ir.PointerType)
	augCb := rop.Elem.(*ir.FuncType)
	if len(augCb.Params) != 3 {
		t.Errorf("st(at) must shadow the augmented function type, got %s", rop.Elem)
	}
}

func TestPhiMapping(t *testing.T) {
	c := NewComputer(SDS)
	// struct{ i8*; i32; i64*; f64; i8* } → shadow indices 0,_,1,_,2
	s := ir.Struct(ir.Ptr(ir.I8), ir.I32, ir.Ptr(ir.I64), ir.F64, ir.Ptr(ir.I8))
	wants := map[int]int{0: 0, 2: 1, 4: 2}
	for fi, want := range wants {
		if got := c.Phi(s, fi); got != want {
			t.Errorf("phi(%d) = %d, want %d", fi, got, want)
		}
	}
	ss := c.ShadowAug(s).(*ir.StructType)
	if ss.NumFields() != 3 {
		t.Errorf("shadow fields = %d, want 3", ss.NumFields())
	}
}

func TestHasShadow(t *testing.T) {
	c := NewComputer(SDS)
	if c.HasShadow(ir.I64) {
		t.Error("i64 has no shadow")
	}
	if !c.HasShadow(ir.Ptr(ir.I64)) {
		t.Error("pointers always have shadows")
	}
	if c.HasShadow(ir.Struct(ir.I32, ir.F64)) {
		t.Error("pointer-free struct has no shadow")
	}
}

func TestShadowSizeBoundedByTwiceAug(t *testing.T) {
	// §2.9: allocating 2×sizeof(at(t)) always suffices for the shadow
	// object. Verify the bound for a gallery of types.
	c := NewComputer(SDS)
	ll := ir.NamedStruct("LL4")
	ll.SetBody(ir.I32, ir.Ptr(ll))
	gallery := []ir.Type{
		ir.Ptr(ir.I8),
		ll,
		ir.Struct(ir.Ptr(ir.I8), ir.Ptr(ir.I8), ir.Ptr(ir.I8)),
		ir.Array(ir.Ptr(ir.I64), 7),
		ir.Struct(ir.I32, ir.Ptr(ir.I8), ir.F64),
	}
	for _, tt := range gallery {
		sat := c.ShadowAug(tt)
		if sat == nil {
			continue
		}
		if sat.Size() > 2*c.Aug(tt).Size() {
			t.Errorf("st(at(%s)).size = %d exceeds 2×%d", tt, sat.Size(), c.Aug(tt).Size())
		}
	}
}
