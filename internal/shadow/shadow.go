// Package shadow implements the paper's type algebra: shadow types st()
// (Table 2.1, Figure 2.5), augmented types at() for both the SDS design
// (Table 2.3, Figures 2.6–2.8) and the MDS design (Table 4.1), the
// composition (st∘at) (Table 2.5), and the φ field-index mapping
// (Equation 2.2).
//
// The paper resolves recursive types with explicit placeholders; here the
// same role is played by identified (named) struct types whose bodies are
// set after the recursive computation completes, which is the natural Go
// realization of placeholder resolution ("assigning a unique type name to
// the type ... and replacing instances of the placeholder with that
// name", §2.2).
package shadow

import (
	"fmt"

	"dpmr/internal/ir"
)

// Design selects the pointer-in-memory strategy.
type Design uint8

// The two DPMR designs.
const (
	SDS Design = iota + 1 // Shadow Data Structures (Chapter 2)
	MDS                   // Mirrored Data Structures (Chapter 4)
)

func (d Design) String() string {
	if d == MDS {
		return "mds"
	}
	return "sds"
}

// Computer memoizes shadow and augmented type computations, mirroring the
// paper's dynamic-programming maps ST, AT, and SAT.
type Computer struct {
	design Design
	st     map[string]ir.Type // Key(t) → st(t); entry may be nil (null type)
	at     map[string]ir.Type // Key(t) → at(t)
	sat    map[string]ir.Type // Key(t) → st(at(t))
}

// NewComputer returns a Computer for the given design. The design only
// affects augmented function types; shadow types are design-independent.
func NewComputer(d Design) *Computer {
	return &Computer{
		design: d,
		st:     make(map[string]ir.Type),
		at:     make(map[string]ir.Type),
		sat:    make(map[string]ir.Type),
	}
}

// Design returns the computer's design.
func (c *Computer) Design() Design { return c.design }

// ---------------------------------------------------------------------------
// Shadow types: st()

// Shadow returns st(t), or nil when the shadow type is null (the paper's
// ∅). Primitive, void, and function types have null shadow types; derived
// types without pointers (outside function types) are null by the
// short-circuit rule of Figure 2.5 line 17; null elements drop out of
// derived types.
func (c *Computer) Shadow(t ir.Type) ir.Type {
	key := t.Key()
	if st, ok := c.st[key]; ok {
		return st
	}
	if pt, ok := t.(*ir.PointerType); ok {
		return c.shadowPointer(key, pt)
	}
	if !ir.ContainsPointerOutsideFunc(t) {
		c.st[key] = nil
		return nil
	}
	var rv ir.Type
	switch tt := t.(type) {
	case *ir.ArrayType:
		est := c.Shadow(tt.Elem)
		if est == nil {
			rv = nil
		} else {
			rv = ir.Array(est, tt.Len)
		}
	case *ir.StructType:
		if tt.Name != "" {
			named := ir.NamedStruct(tt.Name + ".sdw")
			c.st[key] = named // placeholder: body set after recursion
			named.SetBody(c.shadowFields(tt.Fields())...)
			return named
		}
		rv = ir.Struct(c.shadowFields(tt.Fields())...)
	case *ir.UnionType:
		elems := c.shadowFields(unionElems(tt))
		if tt.Name != "" {
			named := ir.NamedUnion(tt.Name + ".sdw")
			c.st[key] = named
			named.SetBody(elems...)
			return named
		}
		rv = ir.Union(elems...)
	default:
		rv = nil
	}
	c.st[key] = rv
	return rv
}

// shadowPointer builds st(τ*) = struct{τ*; st(τ)*} (or void* NSOP when
// st(τ) is null). The in-progress entry for recursive pointees is handled
// by the named-struct placeholder created in Shadow.
func (c *Computer) shadowPointer(key string, pt *ir.PointerType) ir.Type {
	// Reserve the slot eagerly with a named placeholder only when
	// recursion is possible (pointee is a named aggregate); anonymous
	// pointees cannot recurse.
	var nsop ir.Type
	est := c.Shadow(pt.Elem)
	if est == nil {
		nsop = ir.VoidPtr()
	} else {
		nsop = ir.Ptr(est)
	}
	rv := ir.Struct(pt, nsop)
	c.st[key] = rv
	return rv
}

// shadowFields maps element types to their shadow types, dropping null
// entries (the drop-out rule).
func (c *Computer) shadowFields(fields []ir.Type) []ir.Type {
	out := make([]ir.Type, 0, len(fields))
	for _, f := range fields {
		if sf := c.Shadow(f); sf != nil {
			out = append(out, sf)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Augmented types: at()

// Aug returns at(t). Only types containing function types change; all
// others are returned unchanged (Table 2.3/4.1: primitives, void, and
// pointer/aggregate shapes are preserved, with function types rewritten).
func (c *Computer) Aug(t ir.Type) ir.Type {
	key := t.Key()
	if at, ok := c.at[key]; ok {
		return at
	}
	if !containsFuncType(t, map[string]bool{}) {
		c.at[key] = t
		return t
	}
	var rv ir.Type
	switch tt := t.(type) {
	case *ir.FuncType:
		rv = c.AugFunc(tt)
	case *ir.PointerType:
		rv = ir.Ptr(c.Aug(tt.Elem))
		c.at[key] = rv
		return rv
	case *ir.ArrayType:
		rv = ir.Array(c.Aug(tt.Elem), tt.Len)
	case *ir.StructType:
		if tt.Name != "" {
			named := ir.NamedStruct(tt.Name + ".aug")
			c.at[key] = named
			fields := tt.Fields()
			augFields := make([]ir.Type, len(fields))
			for i, f := range fields {
				augFields[i] = c.Aug(f)
			}
			named.SetBody(augFields...)
			return named
		}
		fields := tt.Fields()
		augFields := make([]ir.Type, len(fields))
		for i, f := range fields {
			augFields[i] = c.Aug(f)
		}
		rv = ir.Struct(augFields...)
	case *ir.UnionType:
		elems := unionElems(tt)
		augElems := make([]ir.Type, len(elems))
		for i, e := range elems {
			augElems[i] = c.Aug(e)
		}
		if tt.Name != "" {
			named := ir.NamedUnion(tt.Name + ".aug")
			c.at[key] = named
			named.SetBody(augElems...)
			return named
		}
		rv = ir.Union(augElems...)
	default:
		rv = t
	}
	c.at[key] = rv
	return rv
}

// AugFunc returns the augmented function type per the active design.
//
// SDS (Table 2.3): at(r)(st(at(r))*, at(τ0), rpt(τ0), spt(τ0), ...) where
// the leading shadow-object pointer parameter appears only for pointer
// returns (π, Equation 2.4) and rpt/spt appear only for pointer params.
//
// MDS (Table 4.1): at(r)(rpt(r)*, at(τ0), rpt(τ0), ...) with the leading
// ROP-pointer parameter only for pointer returns.
func (c *Computer) AugFunc(ft *ir.FuncType) *ir.FuncType {
	ret := c.Aug(ft.Ret)
	params := make([]ir.Type, 0, 3*len(ft.Params)+1)
	if ir.IsPointer(ft.Ret) {
		if c.design == SDS {
			params = append(params, ir.Ptr(c.ShadowAug(ft.Ret)))
		} else {
			params = append(params, ir.Ptr(ret)) // rvRopPtr: at(r)*
		}
	}
	for _, p := range ft.Params {
		ap := c.Aug(p)
		params = append(params, ap)
		if !ir.IsPointer(p) {
			continue
		}
		params = append(params, ap) // rpt(p): the ROP has type at(p)
		if c.design == SDS {
			params = append(params, c.sptOf(p))
		}
	}
	return ir.FuncOf(ret, params...)
}

// sptOf returns spt(τ*) per Table 2.3: st(at(τ))* when st(τ) ≠ ∅, void*
// otherwise.
func (c *Computer) sptOf(p ir.Type) ir.Type {
	pt := p.(*ir.PointerType)
	if est := c.ShadowAug(pt.Elem); est != nil {
		return ir.Ptr(est)
	}
	return ir.VoidPtr()
}

// ---------------------------------------------------------------------------
// Composition: (st ∘ at)

// ShadowAug returns st(at(t)), or nil when it is null. It corresponds to
// the paper's getShadowAugType (Figure 2.8); composing the memoized Aug
// and Shadow passes is the named-struct equivalent of the single fused
// calculation.
func (c *Computer) ShadowAug(t ir.Type) ir.Type {
	key := t.Key()
	if sat, ok := c.sat[key]; ok {
		return sat
	}
	rv := c.Shadow(c.Aug(t))
	c.sat[key] = rv
	return rv
}

// HasShadow reports whether st(at(t)) is non-null, i.e. whether DPMR must
// carry shadow metadata for values of type t.
func (c *Computer) HasShadow(t ir.Type) bool { return c.ShadowAug(t) != nil }

// ---------------------------------------------------------------------------
// φ: structure index mapping (Equation 2.2)

// Phi converts the field index fi of struct type t into the corresponding
// field index in t's shadow struct: the number of preceding fields with
// non-null st(at(τj)).
func (c *Computer) Phi(t *ir.StructType, fi int) int {
	idx := 0
	for j := 0; j < fi; j++ {
		if c.ShadowAug(t.Field(j)) != nil {
			idx++
		}
	}
	return idx
}

// ShadowStructOf returns the shadow struct type of t along with a mapping
// check; it panics if st(at(t)) is not a struct (programming error in the
// transform).
func (c *Computer) ShadowStructOf(t *ir.StructType) *ir.StructType {
	sat := c.ShadowAug(t)
	ss, ok := sat.(*ir.StructType)
	if !ok {
		panic(fmt.Sprintf("shadow: st(at(%s)) is %v, not a struct", t, sat))
	}
	return ss
}

// ---------------------------------------------------------------------------
// Helpers

func unionElems(u *ir.UnionType) []ir.Type {
	out := make([]ir.Type, u.NumElems())
	for i := range out {
		out[i] = u.Elem(i)
	}
	return out
}

func containsFuncType(t ir.Type, seen map[string]bool) bool {
	switch tt := t.(type) {
	case *ir.FuncType:
		return true
	case *ir.PointerType:
		return containsFuncType(tt.Elem, seen)
	case *ir.ArrayType:
		return containsFuncType(tt.Elem, seen)
	case *ir.StructType:
		if tt.Name != "" {
			if seen[tt.Key()] {
				return false
			}
			seen[tt.Key()] = true
		}
		for _, f := range tt.Fields() {
			if containsFuncType(f, seen) {
				return true
			}
		}
		return false
	case *ir.UnionType:
		if tt.Name != "" {
			if seen[tt.Key()] {
				return false
			}
			seen[tt.Key()] = true
		}
		for _, e := range unionElems(tt) {
			if containsFuncType(e, seen) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
