package shadow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dpmr/internal/ir"
)

// genType builds a random type of bounded depth. Named structs are
// generated occasionally (non-recursive here; recursion is covered by the
// dedicated linked-list tests).
func genType(rng *rand.Rand, depth int, nameCounter *int) ir.Type {
	prims := []ir.Type{ir.I8, ir.I16, ir.I32, ir.I64, ir.F32, ir.F64}
	if depth <= 0 {
		return prims[rng.Intn(len(prims))]
	}
	switch rng.Intn(7) {
	case 0, 1:
		return prims[rng.Intn(len(prims))]
	case 2:
		return ir.Ptr(genType(rng, depth-1, nameCounter))
	case 3:
		return ir.Array(genType(rng, depth-1, nameCounter), rng.Intn(5)+1)
	case 4:
		n := rng.Intn(4) + 1
		fields := make([]ir.Type, n)
		for i := range fields {
			fields[i] = genType(rng, depth-1, nameCounter)
		}
		return ir.Struct(fields...)
	case 5:
		n := rng.Intn(3) + 1
		elems := make([]ir.Type, n)
		for i := range elems {
			elems[i] = genType(rng, depth-1, nameCounter)
		}
		return ir.Union(elems...)
	default:
		// A function pointer, so at() has something to rewrite.
		n := rng.Intn(3)
		params := make([]ir.Type, n)
		for i := range params {
			if rng.Intn(2) == 0 {
				params[i] = ir.Ptr(genType(rng, depth-1, nameCounter))
			} else {
				params[i] = prims[rng.Intn(len(prims))]
			}
		}
		var ret ir.Type = ir.Void
		if rng.Intn(2) == 0 {
			ret = ir.I64
		}
		return ir.Ptr(ir.FuncOf(ret, params...))
	}
}

func TestPropertyShadowNullIffNoPointers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nc := 0
		c := NewComputer(SDS)
		for i := 0; i < 8; i++ {
			tt := genType(rng, 3, &nc)
			isNull := c.Shadow(tt) == nil
			wantNull := !ir.ContainsPointerOutsideFunc(tt)
			if isNull != wantNull {
				t.Logf("st(%s): null=%v, want %v", tt, isNull, wantNull)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAugIdentityWithoutFuncTypes(t *testing.T) {
	// at(t) = t whenever t contains no function types (Table 2.3).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nc := 0
		c := NewComputer(SDS)
		for i := 0; i < 8; i++ {
			tt := genType(rng, 3, &nc)
			at := c.Aug(tt)
			if !containsFuncType(tt, map[string]bool{}) && !ir.TypesEqual(at, tt) {
				t.Logf("at(%s) = %s, want identity", tt, at)
				return false
			}
			// at() must always preserve size for non-function types
			// (only function signatures change).
			if tt.Kind() != ir.KindFunc && at.Size() != tt.Size() {
				t.Logf("at(%s) changed size %d → %d", tt, tt.Size(), at.Size())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyShadowSizeBound(t *testing.T) {
	// §2.9: 2×sizeof(at(t)) always suffices for st(at(t)).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nc := 0
		c := NewComputer(SDS)
		for i := 0; i < 8; i++ {
			tt := genType(rng, 3, &nc)
			sat := c.ShadowAug(tt)
			if sat == nil {
				continue
			}
			if sat.Size() > 2*c.Aug(tt).Size() {
				t.Logf("st(at(%s)).size=%d > 2×%d", tt, sat.Size(), c.Aug(tt).Size())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPhiConsistentWithShadowStruct(t *testing.T) {
	// For any struct s: the shadow struct has exactly Σ I(st(at(fi)) ≠ ∅)
	// fields, φ is strictly monotone over shadowed fields, and every φ
	// value is in range.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nc := 0
		c := NewComputer(SDS)
		for i := 0; i < 8; i++ {
			n := rng.Intn(5) + 1
			fields := make([]ir.Type, n)
			for j := range fields {
				fields[j] = genType(rng, 2, &nc)
			}
			s := ir.Struct(fields...)
			sat := c.ShadowAug(s)
			shadowed := 0
			prev := -1
			for j := 0; j < n; j++ {
				if c.ShadowAug(fields[j]) == nil {
					continue
				}
				idx := c.Phi(s, j)
				if idx != shadowed {
					t.Logf("φ(%s, %d) = %d, want %d", s, j, idx, shadowed)
					return false
				}
				if idx <= prev {
					return false
				}
				prev = idx
				shadowed++
			}
			if shadowed == 0 {
				if sat != nil {
					return false
				}
				continue
			}
			ss, ok := sat.(*ir.StructType)
			if !ok || ss.NumFields() != shadowed {
				t.Logf("st(at(%s)) fields = %v, want %d", s, sat, shadowed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMemoizationStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nc := 0
		c := NewComputer(SDS)
		for i := 0; i < 5; i++ {
			tt := genType(rng, 3, &nc)
			a1, a2 := c.Aug(tt), c.Aug(tt)
			s1, s2 := c.Shadow(tt), c.Shadow(tt)
			if a1 != a2 {
				return false
			}
			if (s1 == nil) != (s2 == nil) {
				return false
			}
			if s1 != nil && s1 != s2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAugFuncParamCount(t *testing.T) {
	// Param expansion: SDS adds 2 companions per pointer param, MDS adds
	// 1; both add a leading slot only for pointer returns.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPtr := rng.Intn(4)
		nInt := rng.Intn(4)
		params := make([]ir.Type, 0, nPtr+nInt)
		for i := 0; i < nPtr; i++ {
			params = append(params, ir.Ptr(ir.I64))
		}
		for i := 0; i < nInt; i++ {
			params = append(params, ir.I64)
		}
		var ret ir.Type = ir.I64
		retPtr := rng.Intn(2) == 0
		if retPtr {
			ret = ir.Ptr(ir.I32)
		}
		ft := ir.FuncOf(ret, params...)
		sds := NewComputer(SDS).AugFunc(ft)
		mds := NewComputer(MDS).AugFunc(ft)
		lead := 0
		if retPtr {
			lead = 1
		}
		if len(sds.Params) != lead+3*nPtr+nInt {
			t.Logf("SDS params = %d", len(sds.Params))
			return false
		}
		if len(mds.Params) != lead+2*nPtr+nInt {
			t.Logf("MDS params = %d", len(mds.Params))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
