package failpt

import (
	"errors"
	"strings"
	"sync"
	"syscall"
	"testing"
)

// Test sites registered once for the whole file; production sites live
// in their own layers and are exercised by those layers' tests.
var (
	tSiteErr   = Register("test/err", KindErr)
	tSiteMulti = Register("test/multi", KindErr, KindSever, KindStall, KindTorn, KindDrop)
)

func arm(t *testing.T, sched string) {
	t.Helper()
	if err := Arm(sched); err != nil {
		t.Fatalf("Arm(%q): %v", sched, err)
	}
	t.Cleanup(Disarm)
}

func TestDisarmedEvalIsNil(t *testing.T) {
	Disarm()
	if act := Eval(tSiteErr); act != nil {
		t.Fatalf("disarmed Eval returned %+v", act)
	}
	if err := Err(tSiteErr); err != nil {
		t.Fatalf("disarmed Err returned %v", err)
	}
}

func TestExactHitTriggering(t *testing.T) {
	arm(t, "test/err=err(EIO)@3")
	for i := 1; i <= 5; i++ {
		err := Err(tSiteErr)
		if (i == 3) != (err != nil) {
			t.Errorf("hit %d: err = %v, want failure exactly at hit 3", i, err)
		}
		if i == 3 && !errors.Is(err, syscall.EIO) {
			t.Errorf("hit 3: %v does not wrap EIO", err)
		}
	}
	if got := Hits(tSiteErr); got != 5 {
		t.Errorf("Hits = %d, want 5", got)
	}
}

func TestOpenEndedAndEveryHit(t *testing.T) {
	arm(t, "test/err=err(ENOSPC)@2+")
	if Err(tSiteErr) != nil {
		t.Error("hit 1 fired under @2+")
	}
	for i := 2; i <= 4; i++ {
		if err := Err(tSiteErr); !errors.Is(err, syscall.ENOSPC) {
			t.Errorf("hit %d under @2+: %v, want ENOSPC", i, err)
		}
	}

	arm(t, "test/err=err")
	for i := 1; i <= 3; i++ {
		if Err(tSiteErr) == nil {
			t.Errorf("hit %d under bare action never fired", i)
		}
	}
}

func TestActionArguments(t *testing.T) {
	arm(t, "test/multi=torn(7)@1;test/multi=stall(12)@2;test/multi=sever@3;test/multi=drop@4")
	want := []Action{
		{Kind: KindTorn, N: 7},
		{Kind: KindStall, N: 12},
		{Kind: KindSever},
		{Kind: KindDrop},
	}
	for i, w := range want {
		act := Eval(tSiteMulti)
		if act == nil {
			t.Fatalf("hit %d: no action", i+1)
		}
		if act.Kind != w.Kind || act.N != w.N {
			t.Errorf("hit %d: got %+v, want kind %s n %d", i+1, act, w.Kind, w.N)
		}
	}
	if act := Eval(tSiteMulti); act != nil {
		t.Errorf("hit 5: unexpected action %+v", act)
	}
}

func TestArmRejectsBadSchedules(t *testing.T) {
	defer Disarm()
	for _, sched := range []string{
		"nosuch/site=err@1",       // unknown site
		"test/err=sever@1",        // kind the site does not honor
		"test/err=frob@1",         // unknown action
		"test/err=err@0",          // hits are 1-based
		"test/err=err@x",          // malformed hit
		"test/err=torn@1",         // torn needs an argument
		"test/multi=stall(-3)@1",  // negative argument
		"test/multi=sever(oops)",  // sever takes no argument
		"test/multi=stall(2oops)", // malformed argument
		"garbage",                 // no =
		";;",                      // empty
	} {
		if err := Arm(sched); err == nil {
			t.Errorf("Arm(%q) accepted a bad schedule", sched)
			Disarm()
		}
	}
	if Enabled() {
		t.Error("a rejected schedule left the registry armed")
	}
}

func TestArmResetsCounters(t *testing.T) {
	arm(t, "test/err=err@1")
	Err(tSiteErr)
	arm(t, "test/err=err@2")
	if got := Hits(tSiteErr); got != 0 {
		t.Errorf("Hits after re-arm = %d, want 0", got)
	}
	if Err(tSiteErr) != nil {
		t.Error("hit 1 fired under @2 — counters not reset by Arm")
	}
}

func TestRandomScheduleIsDeterministicAndArms(t *testing.T) {
	a := RandomSchedule(42, 6)
	b := RandomSchedule(42, 6)
	if a != b {
		t.Errorf("same seed produced different schedules:\n%s\n%s", a, b)
	}
	if c := RandomSchedule(43, 6); c == a {
		t.Errorf("different seeds produced the identical schedule %q", a)
	}
	if err := Arm(a); err != nil {
		t.Errorf("RandomSchedule produced an unarmable schedule %q: %v", a, err)
	}
	Disarm()
}

func TestConcurrentEval(t *testing.T) {
	arm(t, "test/err=err@50")
	var wg sync.WaitGroup
	fired := make(chan struct{}, 100)
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if Err(tSiteErr) != nil {
					fired <- struct{}{}
				}
			}
		}()
	}
	wg.Wait()
	close(fired)
	n := 0
	for range fired {
		n++
	}
	if n != 1 {
		t.Errorf("@50 fired %d times across 100 concurrent hits, want exactly 1", n)
	}
	if got := Hits(tSiteErr); got != 100 {
		t.Errorf("Hits = %d, want 100", got)
	}
}

func TestSitesExported(t *testing.T) {
	arm(t, "test/err=err@1")
	Err(tSiteErr)
	m := Sites()
	if m["test/err"] != 1 {
		t.Errorf("Sites()[test/err] = %d, want 1", m["test/err"])
	}
	if _, ok := m["test/multi"]; !ok {
		t.Error("Sites() does not enumerate registered-but-unhit sites")
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "test/err=err(ENOSPC)@1")
	sched, err := ArmFromEnv()
	if err != nil || sched == "" {
		t.Fatalf("ArmFromEnv: %q, %v", sched, err)
	}
	defer Disarm()
	if !errors.Is(Err(tSiteErr), syscall.ENOSPC) {
		t.Error("env-armed schedule did not fire")
	}

	t.Setenv(EnvVar, "")
	Disarm()
	if sched, err := ArmFromEnv(); err != nil || sched != "" || Enabled() {
		t.Errorf("empty env armed something: %q, %v, enabled=%v", sched, err, Enabled())
	}

	t.Setenv(EnvVar, "nosuch/site=err")
	if _, err := ArmFromEnv(); err == nil {
		t.Error("bad env schedule accepted")
	}
}

func TestErrSpelling(t *testing.T) {
	arm(t, "test/err=err(custom-cause)")
	err := Err(tSiteErr)
	if err == nil || !strings.Contains(err.Error(), "custom-cause") || !strings.Contains(err.Error(), "test/err") {
		t.Errorf("injected error %v does not name its cause and site", err)
	}
}

func BenchmarkFailpointDisabled(b *testing.B) {
	Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if act := Eval(tSiteErr); act != nil {
			b.Fatal("armed?")
		}
	}
}
