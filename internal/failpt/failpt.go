// Package failpt is a deterministic failpoint registry: named fault
// sites compiled permanently into the four layers that have failure
// behavior (journal I/O, coordinator scheduling, network framing,
// harness resume), armed at runtime by a textual schedule that says
// exactly which hit of which site misbehaves and how.
//
// The design constraints, in order:
//
//  1. Zero cost when disarmed. Every site evaluation is one atomic
//     load and a predictable branch; no map lookup, no lock, no
//     allocation. The registry ships in release binaries — a fault
//     drill must exercise the exact code that runs in production, not
//     a build-tagged cousin — so the disarmed path is gated in CI
//     (BenchmarkFailpointDisabled, see bench_test.go).
//  2. Deterministic. A schedule triggers on exact per-site hit
//     counts, so the same binary, schedule, and workload misbehave at
//     the same place every run; RandomSchedule derives a schedule
//     from a seed, so a failed torture run replays from one integer.
//  3. Observable. Per-site hit counters are exported (Hits, Sites)
//     so tests can assert a drill actually exercised the site it
//     aimed at, instead of passing vacuously.
//
// Schedule syntax — entries separated by ';', each entry one site:
//
//	journal/fsync=err(ENOSPC)@3;net/frame-write=sever@7
//
//	site=action            every hit
//	site=action@N          hit N only (1-based)
//	site=action@N+         every hit from N on
//
// Actions: err(ERRNO) (fail with the named errno: ENOSPC, EIO, or
// free text), sever (transport cut), stall(MS) (delay MS
// milliseconds), torn(N) (write only N bytes, then fail), drop
// (swallow a message: keepalive blackhole, completion loss). Which
// kinds a site honors is declared when the site registers; Arm
// refuses a schedule naming an unknown site or an inapplicable kind,
// so a typo is a loud error, not a drill that silently never fires.
package failpt

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// EnvVar is the environment variable the CLIs arm a schedule from at
// startup, so spawned worker processes and daemons can be drilled
// without code changes: DPMR_FAILPOINTS="journal/fsync=err(ENOSPC)@2".
const EnvVar = "DPMR_FAILPOINTS"

// Action kinds a site may honor.
const (
	KindErr   = "err"   // return the named error
	KindSever = "sever" // cut the transport
	KindStall = "stall" // delay N milliseconds
	KindTorn  = "torn"  // write only N bytes, then fail
	KindDrop  = "drop"  // swallow the message
)

// Action is what an armed site evaluation tells its caller to do.
type Action struct {
	Kind string
	// Errno names the error for KindErr (ENOSPC and EIO map to the
	// real syscall errnos, anything else is a plain error string).
	Errno string
	// N is the millisecond delay for stall, the byte budget for torn.
	N int
	// Site is the evaluating site, for error wrapping.
	Site string
}

// Err materializes the action as an error: the injected failure a
// site returns in place of the real operation's result. ENOSPC and
// EIO wrap the genuine syscall errnos so errors.Is classification
// downstream (journal.ErrNoSpace) treats an injected disk-full
// exactly like a real one.
func (a *Action) Err() error {
	switch a.Errno {
	case "ENOSPC":
		return fmt.Errorf("failpt %s: injected: %w", a.Site, syscall.ENOSPC)
	case "EIO":
		return fmt.Errorf("failpt %s: injected: %w", a.Site, syscall.EIO)
	case "":
		return fmt.Errorf("failpt %s: injected failure", a.Site)
	default:
		return fmt.Errorf("failpt %s: injected: %s", a.Site, a.Errno)
	}
}

// Sleep performs a stall action's delay.
func (a *Action) Sleep() {
	if a.Kind == KindStall && a.N > 0 {
		time.Sleep(time.Duration(a.N) * time.Millisecond)
	}
}

// trigger is one armed schedule entry: fire action on hits [from, to].
type trigger struct {
	act      Action
	from, to int // 1-based hit interval, inclusive; to = maxInt for open
}

const maxHit = int(^uint(0) >> 1)

// armed is the global registry state. Sites are registered once at
// package init of their layer; schedules come and go per drill.
var (
	enabled atomic.Bool

	mu       sync.Mutex
	sites    = map[string][]string{} // site -> applicable kinds
	hits     = map[string]int{}
	schedule = map[string][]trigger{}
)

// Register declares a failpoint site and the action kinds it honors.
// Called from package-level vars at init; returns the name so the
// site constant and its registration are one declaration. Registering
// the same name twice widens the kind set (harmless, supports tests).
func Register(name string, kinds ...string) string {
	mu.Lock()
	defer mu.Unlock()
	sites[name] = append(sites[name], kinds...)
	return name
}

// Arm parses and installs a schedule, replacing any previous one and
// resetting hit counters. An empty schedule disarms. Unknown sites,
// unknown or inapplicable action kinds, and malformed hit specs are
// named errors — an armed drill that cannot fire is worse than one
// that fails to arm.
func Arm(sched string) error {
	sched = strings.TrimSpace(sched)
	if sched == "" {
		Disarm()
		return nil
	}
	parsed := map[string][]trigger{}
	for _, entry := range strings.Split(sched, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, tr, err := parseEntry(entry)
		if err != nil {
			return fmt.Errorf("failpt: %q: %w", entry, err)
		}
		parsed[site] = append(parsed[site], tr)
	}
	if len(parsed) == 0 {
		return errors.New("failpt: schedule holds no entries")
	}
	mu.Lock()
	defer mu.Unlock()
	for site, trs := range parsed {
		kinds, ok := sites[site]
		if !ok {
			return fmt.Errorf("failpt: unknown site %q (known: %s)", site, strings.Join(siteNamesLocked(), ", "))
		}
		for _, tr := range trs {
			if !contains(kinds, tr.act.Kind) {
				return fmt.Errorf("failpt: site %s does not honor %q (honors: %s)", site, tr.act.Kind, strings.Join(kinds, ", "))
			}
		}
	}
	schedule = parsed
	hits = map[string]int{}
	enabled.Store(true)
	return nil
}

// ArmFromEnv arms the schedule in $DPMR_FAILPOINTS, if set. Returns
// the schedule it armed ("" when the variable is unset or empty).
func ArmFromEnv() (string, error) {
	sched := strings.TrimSpace(os.Getenv(EnvVar))
	if sched == "" {
		return "", nil
	}
	if err := Arm(sched); err != nil {
		return "", err
	}
	return sched, nil
}

// Disarm removes the schedule; every site returns to the zero-cost
// disabled path. Hit counters are preserved for post-drill assertions
// until the next Arm.
func Disarm() {
	enabled.Store(false)
	mu.Lock()
	schedule = map[string][]trigger{}
	mu.Unlock()
}

// Enabled reports whether a schedule is armed.
func Enabled() bool { return enabled.Load() }

// Eval is the site hook: the n-th call for a site under an armed
// schedule returns the action scheduled for hit n, or nil. Disarmed,
// it is a single atomic load — the hot path every layer pays always.
func Eval(site string) *Action {
	if !enabled.Load() {
		return nil
	}
	return evalSlow(site)
}

func evalSlow(site string) *Action {
	mu.Lock()
	defer mu.Unlock()
	hits[site]++
	n := hits[site]
	for _, tr := range schedule[site] {
		if n >= tr.from && n <= tr.to {
			act := tr.act
			act.Site = site
			return &act
		}
	}
	return nil
}

// Err evaluates a site and returns the injected error if the
// scheduled action is err-kind — the one-liner for sites whose only
// failure mode is an error return.
func Err(site string) error {
	act := Eval(site)
	if act == nil || act.Kind != KindErr {
		return nil
	}
	return act.Err()
}

// Hits reports how many times a site has been evaluated under the
// current (or, after Disarm, the last) schedule.
func Hits(site string) int {
	mu.Lock()
	defer mu.Unlock()
	return hits[site]
}

// Sites returns every registered site and its hit count — the
// assertion surface for drills and the enumeration RandomSchedule
// draws from.
func Sites() map[string]int {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]int, len(sites))
	for name := range sites {
		out[name] = hits[name]
	}
	return out
}

// RandomSchedule derives a schedule of n entries from a seed: random
// registered sites, random applicable kinds, random small arguments
// and hit counts. The draw is deterministic — sites are iterated in
// sorted order and all randomness flows from one source — so a
// torture run's whole fault pattern replays from the seed alone.
func RandomSchedule(seed int64, n int) string {
	rng := rand.New(rand.NewSource(seed))
	mu.Lock()
	names := siteNamesLocked()
	kindsOf := make(map[string][]string, len(sites))
	for name, kinds := range sites {
		kindsOf[name] = append([]string(nil), kinds...)
	}
	mu.Unlock()
	if len(names) == 0 || n < 1 {
		return ""
	}
	var entries []string
	for i := 0; i < n; i++ {
		site := names[rng.Intn(len(names))]
		kinds := kindsOf[site]
		kind := kinds[rng.Intn(len(kinds))]
		var act string
		switch kind {
		case KindErr:
			act = fmt.Sprintf("err(%s)", []string{"ENOSPC", "EIO"}[rng.Intn(2)])
		case KindStall:
			act = fmt.Sprintf("stall(%d)", 1+rng.Intn(50))
		case KindTorn:
			act = fmt.Sprintf("torn(%d)", 1+rng.Intn(32))
		default:
			act = kind
		}
		hit := 1 + rng.Intn(8)
		switch rng.Intn(3) {
		case 0:
			entries = append(entries, fmt.Sprintf("%s=%s@%d", site, act, hit))
		case 1:
			entries = append(entries, fmt.Sprintf("%s=%s@%d+", site, act, hit))
		default:
			// Every hit — only for one-shot-safe kinds; an every-hit
			// err on a retried path would starve every retry, turning
			// "retryable" into "always refused", which is still a legal
			// outcome but drills less.
			entries = append(entries, fmt.Sprintf("%s=%s@%d", site, act, hit))
		}
	}
	return strings.Join(entries, ";")
}

func siteNamesLocked() []string {
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// parseEntry parses one "site=action@hits" schedule entry.
func parseEntry(entry string) (site string, tr trigger, err error) {
	eq := strings.Index(entry, "=")
	if eq <= 0 {
		return "", tr, errors.New("want site=action")
	}
	site = strings.TrimSpace(entry[:eq])
	rest := strings.TrimSpace(entry[eq+1:])
	actPart := rest
	tr.from, tr.to = 1, maxHit
	if at := strings.LastIndex(rest, "@"); at >= 0 {
		actPart = strings.TrimSpace(rest[:at])
		hitSpec := strings.TrimSpace(rest[at+1:])
		open := strings.HasSuffix(hitSpec, "+")
		hitSpec = strings.TrimSuffix(hitSpec, "+")
		n, perr := strconv.Atoi(hitSpec)
		if perr != nil || n < 1 {
			return "", tr, fmt.Errorf("bad hit spec %q: want a positive hit number, optionally followed by +", rest[at+1:])
		}
		tr.from = n
		if !open {
			tr.to = n
		}
	}
	tr.act, err = parseAction(actPart)
	return site, tr, err
}

// parseAction parses "kind" or "kind(arg)".
func parseAction(s string) (Action, error) {
	name, arg := s, ""
	if open := strings.Index(s, "("); open >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Action{}, fmt.Errorf("unbalanced parens in action %q", s)
		}
		name = s[:open]
		arg = s[open+1 : len(s)-1]
	}
	switch name {
	case KindErr:
		if arg == "" {
			arg = "EIO"
		}
		return Action{Kind: KindErr, Errno: arg}, nil
	case KindSever, KindDrop:
		if arg != "" {
			return Action{}, fmt.Errorf("action %s takes no argument", name)
		}
		return Action{Kind: name}, nil
	case KindStall, KindTorn:
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return Action{}, fmt.Errorf("action %s needs a non-negative integer argument, got %q", name, arg)
		}
		return Action{Kind: name, N: n}, nil
	default:
		return Action{}, fmt.Errorf("unknown action %q (want err, sever, stall, torn, drop)", name)
	}
}
