package coord_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"dpmr/internal/coord"
	"dpmr/internal/harness"
)

// TestMain doubles as the worker executable for the Proc tests: the test
// binary re-executed with a recognized first argument becomes a protocol
// worker instead of running the suite.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve-worker":
			// A well-behaved worker; with "slow" it lingers per shard so
			// kills land mid-run.
			err := coord.Serve(os.Stdin, os.Stdout, func(spec harness.Spec, s harness.ShardSpec) ([]byte, error) {
				if len(os.Args) > 2 && os.Args[2] == "slow" {
					time.Sleep(150 * time.Millisecond)
				}
				// Echo the spec's experiment id so tests can assert the
				// assignment carried it over the wire.
				return []byte(fmt.Sprintf(`{"index":%d,"count":%d,"exp":%q}`, s.Index, s.Count, spec.Exp)), nil
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			os.Exit(0)
		case "crash-worker":
			// Reads one assignment, then dies without answering — a crash
			// mid-shard from the coordinator's point of view.
			var a coord.Assignment
			_ = json.NewDecoder(os.Stdin).Decode(&a)
			os.Exit(3)
		case "flaky-worker":
			// Fails its first assignment in-band (the process stays
			// alive), then behaves.
			first := true
			err := coord.Serve(os.Stdin, os.Stdout, func(_ harness.Spec, s harness.ShardSpec) ([]byte, error) {
				if first {
					first = false
					return nil, fmt.Errorf("transient shard failure (injected)")
				}
				return []byte(fmt.Sprintf(`{"index":%d,"count":%d,"exp":""}`, s.Index, s.Count)), nil
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			os.Exit(0)
		}
	}
	os.Exit(m.Run())
}

// TestProcWorkerRoundTrip: a spawned process worker serves several
// assignments over its lifetime and closes cleanly.
func TestProcWorkerRoundTrip(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	p, err := coord.NewProc(nil, exe, "serve-worker")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	spec := harness.ExperimentSpec("fig3.9")
	for i := 0; i < 3; i++ {
		shard := harness.ShardSpec{Index: i, Count: 3}
		payload, err := p.Run(context.Background(), spec, shard)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if want := fmt.Sprintf(`{"index":%d,"count":3,"exp":"fig3.9"}`, i); string(payload) != want {
			t.Errorf("shard %d payload = %s, want %s", i, payload, want)
		}
	}
}

// TestProcWorkerCrashSurfacesAndRetries: the first fleet slot is a
// process that dies mid-shard; the coordinator reports the death,
// respawns the slot (a healthy worker the second time), and completes
// every shard.
func TestProcWorkerCrashSurfacesAndRetries(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	crashed := false
	spawn := func(id int) (coord.Worker, error) {
		if id == 0 && !crashed {
			crashed = true
			return coord.NewProc(nil, exe, "crash-worker")
		}
		return coord.NewProc(nil, exe, "serve-worker")
	}
	co, err := coord.New(coord.Config{Shards: 4, Workers: 2, Spawn: spawn})
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if want := fmt.Sprintf(`{"index":%d,"count":4,"exp":""}`, i); string(p) != want {
			t.Errorf("payload %d = %s, want %s", i, p, want)
		}
	}
	if !crashed {
		t.Error("the crashing slot was never spawned")
	}
}

// TestProcWorkerInBandErrorKeepsProcess: a shard error answered in-band
// by a live worker retries the shard without killing or respawning the
// process — warm worker state survives transient shard failures.
func TestProcWorkerInBandErrorKeepsProcess(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spawns := 0
	spawn := func(int) (coord.Worker, error) {
		spawns++
		return coord.NewProc(nil, exe, "flaky-worker")
	}
	co, err := coord.New(coord.Config{Shards: 3, Workers: 1, Spawn: spawn})
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if want := fmt.Sprintf(`{"index":%d,"count":3,"exp":""}`, i); string(p) != want {
			t.Errorf("payload %d = %s, want %s", i, p, want)
		}
	}
	if spawns != 1 {
		t.Errorf("in-band error respawned the worker: %d spawns, want 1", spawns)
	}
}

// TestProcWorkerChaosKill: the coordinator's own fault drill hard-kills
// a worker process shortly after its first lease — mid-run, since the
// worker lingers on each shard — and the retried fleet still returns
// every shard's result.
func TestProcWorkerChaosKill(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spawn := func(int) (coord.Worker, error) { return coord.NewProc(nil, exe, "serve-worker", "slow") }
	var logs []string
	co, err := coord.New(coord.Config{
		Shards: 4, Workers: 2, Chaos: 1, Spawn: spawn,
		Log: func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if want := fmt.Sprintf(`{"index":%d,"count":4,"exp":""}`, i); string(p) != want {
			t.Errorf("payload %d = %s, want %s", i, p, want)
		}
	}
	if !strings.Contains(strings.Join(logs, "\n"), "chaos kill armed") {
		t.Errorf("chaos drill never armed; logs:\n%s", strings.Join(logs, "\n"))
	}
}
