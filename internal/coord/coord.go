// Package coord schedules the shards of a canonical experiment plan
// across a fleet of workers and collects their streamed partial results.
//
// The coordinator turns manual sharding (start N processes by hand, merge
// the files, hope none dies) into a supervised fleet: it cuts the plan
// into M shards (M ≥ worker count), leases each shard to a worker,
// reassigns a shard whose lease expires (straggler speculation) or whose
// worker dies (crash retry), and keeps the first-completed result per
// shard — deterministically safe, because every shard of a plan is a pure
// function of its range, so speculative duplicates are byte-identical.
// Results are opaque serialized partials (harness.PartialResult,
// harness.ExperimentPartial), so one scheduler drives single campaigns,
// whole experiments, and sharded overhead runs alike; the harness merge
// layer's fingerprint and gap/overlap validation stays in place
// downstream as the end-to-end safety net under the coordinator's
// bookkeeping. This metadata-light division of labor — tiny per-shard
// state, global consistency enforced at merge — follows the partial
// replication coordination regime of Xiang & Vaidya (2016, 2017).
//
// Workers are either in-process (Func: a fleet of goroutines) or spawned
// worker processes (Proc: `dpmr-exp -worker`, `dpmr-run -worker`)
// speaking the JSON-lines Assignment/Completion protocol over stdio;
// Serve is the worker side of that protocol.
package coord

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dpmr/internal/failpt"
	"dpmr/internal/harness"
)

// Failpoint sites: the scheduler's own failure shapes, drillable by
// name. coord/dispatch misbehaves as the attempt starts (err = the
// worker crashed taking the assignment; stall = the attempt wedges
// long enough to blow its lease); coord/completion swallows a
// finished shard's first result, exercising the retry path a lost
// completion would take.
var (
	siteDispatch   = failpt.Register("coord/dispatch", failpt.KindErr, failpt.KindStall)
	siteCompletion = failpt.Register("coord/completion", failpt.KindDrop)
)

// PoisonShardError is the named refusal for a poison shard: one whose
// attempts failed on PoisonK distinct worker incarnations. The shard
// is isolated (the run stops retrying it) and the refusal names it,
// because a shard that kills every worker it touches is a defect in
// the plan or the workload, not transient bad luck — retrying forever
// would grind the fleet down worker by worker.
type PoisonShardError struct {
	Shard, Of   int   // shard index, total shards
	Workers     int   // distinct worker incarnations it failed
	Attempts    int   // dispatches consumed
	LastFailure error // the final attempt's error
}

func (e *PoisonShardError) Error() string {
	return fmt.Sprintf("coord: shard %d/%d is poison: failed %d distinct workers in %d attempts, isolating it; last failure: %v",
		e.Shard, e.Of, e.Workers, e.Attempts, e.LastFailure)
}

func (e *PoisonShardError) Unwrap() error { return e.LastFailure }

// chaosKillDelay is how long after its first dispatch a chaos-targeted
// worker is killed: long enough for the assignment to reach the process
// and the shard to start, short enough to land mid-run on any real shard.
// Every interleaving (kill before, during, or after the shard completes)
// is safe — retry plus first-result-wins keeps the output identical.
const chaosKillDelay = 25 * time.Millisecond

// Worker executes shard assignments for a Coordinator.
type Worker interface {
	// Run executes one shard of the Spec's canonical plan and returns
	// the shard's serialized partial result. Run is called serially per
	// worker; an error means this attempt is lost (the coordinator
	// reassigns the shard and replaces the worker).
	Run(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error)
	// Close releases the worker. For process-backed workers it kills the
	// process; Close may be called concurrently with Run (failing the
	// in-flight attempt) and more than once.
	Close() error
}

// Func adapts an in-process function to a Worker — the goroutine fleet.
// The function must be safe for concurrent calls: the same Func may back
// several fleet slots at once.
type Func func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error)

// Run implements Worker.
func (f Func) Run(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
	return f(ctx, spec, shard)
}

// Close implements Worker; an in-process worker holds nothing.
func (Func) Close() error { return nil }

// Config parameterizes a Coordinator.
type Config struct {
	// Spec is the declarative experiment description every assignment
	// carries; workers recompute the identical plan (and fingerprint)
	// from it rather than re-deriving state from their argv.
	Spec harness.Spec
	// Shards is M, the number of contiguous plan slices to schedule.
	// More shards than workers (M ≥ Workers is enforced) keeps the fleet
	// busy when shards finish unevenly and bounds the work lost to a
	// crash or straggler at 1/M of the plan.
	Shards int
	// Spans, when non-nil, replaces the uniform Index/Count cut with an
	// explicit span list: shard i executes trial range Spans[i]. This is
	// how a journaled resume leases exactly its uncovered ranges, sized
	// adaptively from the journal's observed per-shard wall-clock so the
	// lease scheduler sees evener attempt durations. Shards must be 0 or
	// len(Spans), and the M ≥ Workers rule is waived — a nearly complete
	// journal can leave fewer gaps than the fleet has workers.
	Spans []harness.ShardSpec
	// Workers is the fleet size.
	Workers int
	// Lease bounds how long one shard assignment may run before the
	// coordinator speculatively reassigns it to another worker (the
	// original attempt keeps running; the first completion wins).
	// 0 disables lease expiry.
	Lease time.Duration
	// MaxAttempts caps dispatches per shard, counting speculative
	// reassignments; 0 means the default of 3.
	MaxAttempts int
	// PoisonK is the poison-shard threshold: a shard whose attempts
	// fail on this many distinct worker incarnations is isolated and
	// the run refuses with a named PoisonShardError instead of
	// retrying further. 0 means the default of 3; it cannot exceed
	// MaxAttempts meaningfully (attempts exhaust first).
	PoisonK int
	// Quarantine is the base backoff before respawning a worker slot
	// whose attempt died on a transport error. Repeated deaths double
	// it (capped at 5s) with jitter — the circuit breaker that stops a
	// persistent fault from hot-looping respawns. 0 means the 50ms
	// default; negative disables quarantine entirely.
	Quarantine time.Duration
	// Spawn constructs the worker for fleet slot id, both for the
	// initial fleet and to replace a worker whose attempt failed. It
	// must be safe for concurrent use.
	Spawn func(id int) (Worker, error)
	// Chaos is a fault drill for the retry path: this many workers are
	// hard-killed (Worker.Close) shortly after their first assignment.
	// Workers whose Close releases nothing (Func) are unaffected.
	Chaos int
	// OnResult, when non-nil, observes each shard's first completed
	// payload from inside the scheduling loop, before the shard is
	// marked done — the journaling hook. Duplicate (speculative)
	// completions are never delivered. An error aborts the run: a
	// journaled resume must not race past a payload it failed to make
	// durable.
	OnResult func(shard int, payload []byte) error
	// Log, when non-nil, receives scheduling diagnostics (dispatches,
	// retries, lease expiries, kills). Calls are serialized.
	Log func(format string, args ...any)
}

// Coordinator schedules shards onto a worker fleet. Construct with New;
// a Coordinator is single-use (one Run).
type Coordinator struct {
	cfg   Config
	logMu sync.Mutex // serializes Log across the loop and worker goroutines
}

// New validates the configuration and returns a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("coord: %d workers: the fleet needs at least 1", cfg.Workers)
	}
	if len(cfg.Spans) > 0 {
		if cfg.Shards != 0 && cfg.Shards != len(cfg.Spans) {
			return nil, fmt.Errorf("coord: %d shards but %d explicit spans", cfg.Shards, len(cfg.Spans))
		}
		cfg.Shards = len(cfg.Spans)
		for i, s := range cfg.Spans {
			if err := s.Validate(); err != nil {
				return nil, fmt.Errorf("coord: span %d: %w", i, err)
			}
			if !s.Explicit() {
				return nil, fmt.Errorf("coord: span %d (%s): explicit [lo,hi) trial spans only", i, s)
			}
		}
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("coord: %d shards: the plan needs at least 1 slice", cfg.Shards)
	}
	if cfg.Shards < cfg.Workers && cfg.Spans == nil {
		return nil, fmt.Errorf("coord: %d shards for %d workers: cut the plan at least as fine as the fleet", cfg.Shards, cfg.Workers)
	}
	if cfg.Lease < 0 {
		return nil, fmt.Errorf("coord: negative lease %v", cfg.Lease)
	}
	if cfg.MaxAttempts < 0 {
		return nil, fmt.Errorf("coord: negative MaxAttempts %d", cfg.MaxAttempts)
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.PoisonK < 0 {
		return nil, fmt.Errorf("coord: negative PoisonK %d", cfg.PoisonK)
	}
	if cfg.PoisonK == 0 {
		cfg.PoisonK = 3
	}
	if cfg.Quarantine == 0 {
		cfg.Quarantine = DefaultQuarantine
	}
	if cfg.Spawn == nil {
		return nil, fmt.Errorf("coord: no Spawn factory")
	}
	return &Coordinator{cfg: cfg}, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log == nil {
		return
	}
	c.logMu.Lock()
	defer c.logMu.Unlock()
	c.cfg.Log(format, args...)
}

// completion is one attempt's outcome, posted by a worker goroutine.
type completion struct {
	shard   int
	worker  int // worker incarnation that ran the attempt, for poison tracking
	payload []byte
	err     error
}

// FleetOptions is the CLI-shaped fleet description dpmr-exp and dpmr-run
// share: the Spec to schedule, how many workers and shards, the
// straggler lease, and whether workers are in-process or spawned
// processes.
type FleetOptions struct {
	// Spec is the declarative experiment description carried by every
	// shard assignment (see Config.Spec).
	Spec harness.Spec
	// Workers is the fleet size; Shards defaults to 2×Workers when 0.
	Workers, Shards int
	// Spans, when non-nil, leases these explicit trial spans instead of
	// the uniform Shards-way cut (see Config.Spans); Shards is ignored.
	Spans []harness.ShardSpec
	// OnResult observes each shard's first completed payload before it
	// is marked done (see Config.OnResult).
	OnResult func(shard int, payload []byte) error
	// Lease is the straggler lease (see Config.Lease).
	Lease time.Duration
	// SpawnArgv, when non-nil, runs workers as spawned processes of this
	// executable re-invoked with these arguments; nil runs Local
	// goroutine workers instead.
	SpawnArgv []string
	// Stderr receives spawned workers' diagnostics (nil = os.Stderr).
	Stderr io.Writer
	// Chaos is the fault drill (see Config.Chaos).
	Chaos int
	// Local is the in-process worker used when SpawnArgv is nil.
	Local Func
	// Log receives scheduling diagnostics (see Config.Log).
	Log func(format string, args ...any)
}

// RunFleet is the one-call fleet path behind the CLIs' -coord flags:
// build the Coordinator from CLI-shaped options, run it, and return the
// payloads in shard order. Keeping the defaults (shard count, process
// re-exec) here means the two binaries cannot drift apart.
func RunFleet(ctx context.Context, o FleetOptions) ([][]byte, error) {
	shards := o.Shards
	if o.Spans != nil {
		shards = len(o.Spans)
	} else if shards == 0 {
		shards = 2 * o.Workers
	}
	var spawn func(id int) (Worker, error)
	if o.SpawnArgv != nil {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("coord: resolving worker executable: %w", err)
		}
		spawn = func(int) (Worker, error) { return NewProc(o.Stderr, exe, o.SpawnArgv...) }
	} else {
		if o.Local == nil {
			return nil, fmt.Errorf("coord: RunFleet without SpawnArgv needs a Local worker")
		}
		spawn = func(int) (Worker, error) { return o.Local, nil }
	}
	co, err := New(Config{
		Spec: o.Spec, Shards: shards, Workers: o.Workers, Lease: o.Lease,
		Spans: o.Spans, OnResult: o.OnResult,
		Spawn: spawn, Chaos: o.Chaos, Log: o.Log,
	})
	if err != nil {
		return nil, err
	}
	return co.Run(ctx)
}

// Run executes the fleet until every shard has a result and returns the
// payloads indexed by shard — the deterministic merge order, independent
// of completion order. It fails if a shard exhausts MaxAttempts (its
// attempts all erroring, or — with a Lease set — all outliving their
// leases, i.e. a wedged shard) or if the whole fleet dies and cannot be
// respawned; duplicated work from speculative retries is discarded
// (first completion wins), and the caller's merge layer re-validates the
// tiling regardless.
func (c *Coordinator) Run(ctx context.Context) ([][]byte, error) {
	cfg := c.cfg
	ctx, cancel := context.WithCancel(ctx)
	m := cfg.Shards

	assignCh := make(chan int)
	events := make(chan completion)
	expiries := make(chan int)
	retired := make(chan int)
	loopDone := make(chan struct{})

	chaos := int64(cfg.Chaos)
	var spawnSeq int64 // worker incarnations: a respawn is a new worker
	quarBase := cfg.Quarantine
	if quarBase < 0 {
		quarBase = 0
	}
	var wg sync.WaitGroup

	// shutdown stops the fleet: stray timers and posts unblock on
	// loopDone, in-flight attempts that honor ctx are cancelled (Proc
	// kills its process), and the assignment channel closing ends each
	// worker loop.
	var shutdownOnce sync.Once
	shutdown := func() {
		shutdownOnce.Do(func() {
			close(loopDone)
			cancel()
			close(assignCh)
		})
	}
	defer func() {
		shutdown()
		wg.Wait()
	}()

	worker := func(id, wid int, w Worker) {
		defer wg.Done()
		defer func() { _ = w.Close() }()
		br := NewBreaker(quarBase)
		post := func(ev completion) {
			select {
			case events <- ev:
			case <-loopDone:
			}
		}
		first := true
		for shard := range assignCh {
			if first && atomic.AddInt64(&chaos, -1) >= 0 {
				c.logf("worker %d: chaos kill armed", id)
				w := w
				time.AfterFunc(chaosKillDelay, func() { _ = w.Close() })
			}
			first = false
			assignment := harness.ShardSpec{Index: shard, Count: m}
			if cfg.Spans != nil {
				assignment = cfg.Spans[shard]
			}
			var payload []byte
			var err error
			if act := failpt.Eval(siteDispatch); act != nil {
				act.Sleep() // a stalled dispatch outlives its lease
				err = act.Err()
			}
			if err == nil {
				payload, err = w.Run(ctx, cfg.Spec, assignment)
			}
			post(completion{shard: shard, worker: wid, payload: payload, err: err})
			if err == nil {
				br.OK()
				continue
			}
			// An in-band shard error came from a live worker: keep
			// its warm state, retry elsewhere.
			var inBand *ShardError
			if errors.As(err, &inBand) {
				continue
			}
			// Otherwise the worker may be dead (a killed process);
			// replace it. At shutdown the error is just the
			// cancellation — don't spawn a process nobody will use.
			_ = w.Close()
			if ctx.Err() != nil {
				return
			}
			// A slot whose workers keep dying is quarantined before the
			// respawn — backoff with jitter instead of a hot respawn
			// loop against a persistent fault.
			if d := br.Fail(); d > 0 {
				c.logf("worker %d: quarantined for %v (health %.2f)", id, d.Round(time.Millisecond), br.Score())
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return
				}
			}
			nw, serr := cfg.Spawn(id)
			if serr != nil {
				c.logf("worker %d: respawn failed, retiring slot: %v", id, serr)
				select {
				case retired <- id:
				case <-loopDone:
				}
				return
			}
			wid = int(atomic.AddInt64(&spawnSeq, 1))
			c.logf("worker %d: respawned", id)
			w = nw
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		w, err := cfg.Spawn(i)
		if err != nil {
			return nil, fmt.Errorf("coord: spawning worker %d: %w", i, err)
		}
		wg.Add(1)
		go worker(i, int(atomic.AddInt64(&spawnSeq, 1)), w)
	}

	results := make([][]byte, m)
	done := make([]bool, m)
	queued := make([]bool, m)
	attempts := make([]int, m)
	inflight := make([]int, m)
	expired := make([]int, m) // leases expired per shard; expired == attempts ⇒ every attempt presumed lost
	failedBy := make([]map[int]struct{}, m)
	queue := make([]int, 0, m)
	for i := 0; i < m; i++ {
		queue = append(queue, i)
		queued[i] = true
	}
	remaining := m
	live := cfg.Workers

	for remaining > 0 {
		if live == 0 {
			return nil, fmt.Errorf("coord: all %d workers retired with %d of %d shards unfinished", cfg.Workers, remaining, m)
		}
		// A queued shard whose earlier attempt completed in the meantime
		// (a speculative requeue overtaken by its original) needs no
		// third run — drop it instead of burning a worker on it.
		for len(queue) > 0 && done[queue[0]] {
			queued[queue[0]] = false
			queue = queue[1:]
		}
		// Only arm the dispatch case while something is queued; a nil
		// channel send never fires.
		var sendCh chan int
		var next int
		if len(queue) > 0 {
			next = queue[0]
			sendCh = assignCh
		}
		select {
		case sendCh <- next:
			queue = queue[1:]
			queued[next] = false
			attempts[next]++
			inflight[next]++
			c.logf("shard %d/%d: attempt %d leased", next, m, attempts[next])
			if cfg.Lease > 0 {
				s := next
				time.AfterFunc(cfg.Lease, func() {
					select {
					case expiries <- s:
					case <-loopDone:
					}
				})
			}
		case s := <-expiries:
			if done[s] {
				break
			}
			expired[s]++
			if !queued[s] && attempts[s] < cfg.MaxAttempts {
				c.logf("shard %d/%d: lease expired after %v, reassigning straggler", s, m, cfg.Lease)
				queue = append(queue, s)
				queued[s] = true
				break
			}
			// Attempts exhausted and every one of them has now outlived
			// its lease: the shard is wedged, not merely slow — failing
			// loudly beats hanging the fleet forever. (An attempt that
			// errors instead of wedging aborts through the events case.)
			if attempts[s] >= cfg.MaxAttempts && expired[s] >= attempts[s] {
				return nil, fmt.Errorf("coord: shard %d/%d: all %d attempts exceeded their %v lease", s, m, attempts[s], cfg.Lease)
			}
		case <-retired:
			live--
		case ev := <-events:
			inflight[ev.shard]--
			// The completion-loss drill: a finished shard's result is
			// swallowed here, exactly as if the worker died between
			// computing it and delivering it — the retry path must
			// recover it or refuse by name.
			if ev.err == nil && !done[ev.shard] {
				if act := failpt.Eval(siteCompletion); act != nil && act.Kind == failpt.KindDrop {
					c.logf("shard %d/%d: completion dropped (failpoint %s)", ev.shard, m, siteCompletion)
					ev.err = fmt.Errorf("coord: shard %d completion lost (failpoint %s)", ev.shard, siteCompletion)
					ev.payload = nil
				}
			}
			switch {
			case ev.err != nil:
				if done[ev.shard] {
					break // a speculative sibling already finished it
				}
				c.logf("shard %d/%d: attempt failed: %v", ev.shard, m, ev.err)
				if failedBy[ev.shard] == nil {
					failedBy[ev.shard] = map[int]struct{}{}
				}
				failedBy[ev.shard][ev.worker] = struct{}{}
				// Poison check first: "failed K distinct workers" is the
				// sharper refusal than "attempts exhausted" when both hold.
				if len(failedBy[ev.shard]) >= cfg.PoisonK {
					return nil, &PoisonShardError{
						Shard: ev.shard, Of: m,
						Workers: len(failedBy[ev.shard]), Attempts: attempts[ev.shard],
						LastFailure: ev.err,
					}
				}
				if queued[ev.shard] || inflight[ev.shard] > 0 {
					break // a retry is already queued or running
				}
				if attempts[ev.shard] >= cfg.MaxAttempts {
					return nil, fmt.Errorf("coord: shard %d/%d failed after %d attempts: %w", ev.shard, m, attempts[ev.shard], ev.err)
				}
				queue = append(queue, ev.shard)
				queued[ev.shard] = true
			case done[ev.shard]:
				c.logf("shard %d/%d: duplicate completion discarded (first result won)", ev.shard, m)
			default:
				if cfg.OnResult != nil {
					if err := cfg.OnResult(ev.shard, ev.payload); err != nil {
						return nil, fmt.Errorf("coord: shard %d/%d result sink: %w", ev.shard, m, err)
					}
				}
				done[ev.shard] = true
				results[ev.shard] = ev.payload
				remaining--
				c.logf("shard %d/%d: complete, %d remaining", ev.shard, m, remaining)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return results, nil
}
